module pado

go 1.22
