// ALS: trains the paper's alternating-least-squares recommender (§5.1.3,
// Figure 3(c)) on the Pado engine under the medium eviction rate and
// prints sample item recommendations with their predicted ratings.
//
//	go run ./examples/als
package main

import (
	"context"
	"fmt"
	"log"
	"sort"
	"time"

	"pado/internal/cluster"
	"pado/internal/dag"
	"pado/internal/data"
	"pado/internal/linalg"
	"pado/internal/runtime"
	"pado/internal/trace"
	"pado/internal/vtime"
	"pado/internal/workloads"
)

func main() {
	cfg := workloads.ALSConfig{
		Partitions:     12,
		RatingsPerPart: 700,
		Users:          300,
		Items:          80,
		Rank:           6,
		Iterations:     6,
		Lambda:         0.1,
		Seed:           31,
	}

	cl, err := cluster.New(cluster.Config{
		Transient: 10,
		Reserved:  3,
		Lifetimes: trace.Lifetimes(trace.RateMedium),
		Scale:     vtime.NewScale(40 * time.Millisecond),
		Seed:      4,
	})
	if err != nil {
		log.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	start := time.Now()
	res, err := runtime.Run(ctx, cl, workloads.ALS(cfg).Graph(), runtime.Config{})
	if err != nil {
		log.Fatal(err)
	}

	itemFactors := factorMap(res.Outputs)
	fmt.Printf("factorized %d users x %d items (rank %d) in %v; %d evictions survived\n\n",
		cfg.Users, cfg.Items, cfg.Rank, time.Since(start).Round(time.Millisecond),
		res.Metrics.Evictions)

	// Rebuild user factors from the learned item factors and the user's
	// ratings, then recommend unseen items.
	userRatings := make(map[int64][]workloads.Entry)
	src := workloads.ALSSource(cfg)
	for p := 0; p < cfg.Partitions; p++ {
		it, _ := src.Open(p)
		for {
			r, ok, _ := it.Next()
			if !ok {
				break
			}
			v := r.Value.(workloads.Rating)
			userRatings[v.User] = append(userRatings[v.User], workloads.Entry{ID: v.Item, Score: v.Score})
		}
		it.Close()
	}

	for _, user := range []int64{1, 7, 42} {
		uf, err := workloads.SolveFactor(userRatings[user], itemFactors, cfg.Rank, cfg.Lambda)
		if err != nil {
			log.Fatal(err)
		}
		seen := make(map[int64]bool)
		for _, e := range userRatings[user] {
			seen[e.ID] = true
		}
		type rec struct {
			item  int64
			score float64
		}
		var recs []rec
		for item, f := range itemFactors {
			if !seen[item] {
				recs = append(recs, rec{item: item, score: linalg.Dot(uf, f)})
			}
		}
		sort.Slice(recs, func(i, j int) bool { return recs[i].score > recs[j].score })
		fmt.Printf("user %d: rated %d items; top recommendations:", user, len(userRatings[user]))
		for i := 0; i < 3 && i < len(recs); i++ {
			fmt.Printf("  item %d (%.2f)", recs[i].item, recs[i].score)
		}
		fmt.Println()
	}
}

func factorMap(outputs map[dag.VertexID][]data.Record) map[int64][]float64 {
	m := make(map[int64][]float64)
	for _, recs := range outputs {
		for _, r := range recs {
			m[r.Key.(int64)] = r.Value.([]float64)
		}
	}
	return m
}
