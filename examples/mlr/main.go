// MLR: trains the paper's multinomial-logistic-regression workload
// (§5.1.3, Figure 3(b)) on the Pado engine under the high eviction rate,
// then evaluates the learned model's training accuracy and verifies it
// against the sequential reference implementation.
//
//	go run ./examples/mlr
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"time"

	"pado/internal/cluster"
	"pado/internal/dag"
	"pado/internal/data"
	"pado/internal/runtime"
	"pado/internal/trace"
	"pado/internal/vtime"
	"pado/internal/workloads"
)

func main() {
	cfg := workloads.MLRConfig{
		Partitions:     24,
		SamplesPerPart: 50,
		Features:       128,
		Classes:        8,
		NonZeros:       16,
		Iterations:     5,
		LearningRate:   0.5,
		Seed:           21,
	}

	cl, err := cluster.New(cluster.Config{
		Transient: 12,
		Reserved:  3,
		Lifetimes: trace.Lifetimes(trace.RateHigh),
		Scale:     vtime.NewScale(40 * time.Millisecond),
		Seed:      9,
	})
	if err != nil {
		log.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	start := time.Now()
	res, err := runtime.Run(ctx, cl, workloads.MLR(cfg).Graph(), runtime.Config{})
	if err != nil {
		log.Fatal(err)
	}
	model := singleVector(res.Outputs)

	ref := workloads.MLRReference(cfg)
	var maxDiff float64
	for i := range model {
		if d := math.Abs(model[i] - ref[i]); d > maxDiff {
			maxDiff = d
		}
	}

	fmt.Printf("trained %d-class model over %d features in %v (%d evictions, %d relaunches)\n",
		cfg.Classes, cfg.Features, time.Since(start).Round(time.Millisecond),
		res.Metrics.Evictions, res.Metrics.RelaunchedTasks)
	fmt.Printf("max |distributed - sequential| coefficient difference: %.2e\n", maxDiff)
	fmt.Printf("training accuracy: %.1f%%\n", accuracy(cfg, model)*100)
}

// singleVector extracts the final model from the job's single terminal
// output.
func singleVector(outputs map[dag.VertexID][]data.Record) []float64 {
	for _, recs := range outputs {
		if len(recs) != 1 {
			log.Fatalf("expected one model record, got %d", len(recs))
		}
		return recs[0].Value.([]float64)
	}
	log.Fatal("no terminal output")
	return nil
}

func accuracy(cfg workloads.MLRConfig, model []float64) float64 {
	src := workloads.MLRSource(cfg)
	correct, total := 0, 0
	for p := 0; p < cfg.Partitions; p++ {
		it, err := src.Open(p)
		if err != nil {
			log.Fatal(err)
		}
		for {
			r, ok, err := it.Next()
			if err != nil {
				log.Fatal(err)
			}
			if !ok {
				break
			}
			s := r.Value.(workloads.Sample)
			best, bestScore := int64(0), math.Inf(-1)
			for c := 0; c < cfg.Classes; c++ {
				row := model[c*cfg.Features : (c+1)*cfg.Features]
				var score float64
				for j, idx := range s.Idx {
					score += row[idx] * s.Val[j]
				}
				if score > bestScore {
					best, bestScore = int64(c), score
				}
			}
			if best == s.Label {
				correct++
			}
			total++
		}
		it.Close()
	}
	return float64(correct) / float64(total)
}
