// Pageviews: the paper's Map-Reduce evaluation workload (§5.1.3) end to
// end — summing synthetic Wikipedia-style hourly page-view counts per
// document — run on all three engines under a chosen eviction rate, so
// the engines' different behaviors under eviction are directly visible.
//
//	go run ./examples/pageviews -rate high
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	"pado/internal/cluster"
	"pado/internal/dag"
	"pado/internal/data"
	"pado/internal/engines/sparklike"
	"pado/internal/runtime"
	"pado/internal/trace"
	"pado/internal/vtime"
	"pado/internal/workloads"
)

func main() {
	rateName := flag.String("rate", "high", "eviction rate: none, low, medium, high")
	flag.Parse()
	var rate trace.Rate
	switch *rateName {
	case "none":
		rate = trace.RateNone
	case "low":
		rate = trace.RateLow
	case "medium":
		rate = trace.RateMedium
	case "high":
		rate = trace.RateHigh
	default:
		log.Fatalf("unknown rate %q", *rateName)
	}

	cfg := workloads.MRConfig{Partitions: 16, LinesPerPart: 4000, Docs: 8000, Seed: 5}
	want := workloads.MRReference(cfg)
	scale := vtime.NewScale(50 * time.Millisecond)

	newCluster := func(seed int64) *cluster.Cluster {
		cl, err := cluster.New(cluster.Config{
			Transient:   12,
			Reserved:    3,
			TransientBW: 3 << 20,
			ReservedBW:  6 << 20,
			MasterBW:    12 << 20,
			Lifetimes:   trace.Lifetimes(rate),
			Scale:       scale,
			Seed:        seed,
		})
		if err != nil {
			log.Fatal(err)
		}
		return cl
	}

	check := func(name string, jct time.Duration, relaunched int64) {
		fmt.Printf("%-17s jct=%-6.1f paper-min  relaunched=%d\n", name, scale.Minutes(jct), relaunched)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	// Pado.
	res, err := runtime.Run(ctx, newCluster(1), workloads.MR(cfg).Graph(), runtime.Config{})
	if err != nil {
		log.Fatalf("pado: %v", err)
	}
	verify(res.Outputs, want)
	check("Pado", res.Metrics.JCT, res.Metrics.RelaunchedTasks)

	// Plain Spark-like.
	sres, err := sparklike.Run(ctx, newCluster(2), workloads.MR(cfg).Graph(), sparklike.Config{})
	if err != nil {
		log.Fatalf("spark: %v", err)
	}
	verify(sres.Outputs, want)
	check("Spark", sres.Metrics.JCT, sres.Metrics.RelaunchedTasks)

	// Checkpointing Spark-like.
	cres, err := sparklike.Run(ctx, newCluster(3), workloads.MR(cfg).Graph(), sparklike.Config{Checkpoint: true})
	if err != nil {
		log.Fatalf("spark-checkpoint: %v", err)
	}
	verify(cres.Outputs, want)
	check("Spark-checkpoint", cres.Metrics.JCT, cres.Metrics.RelaunchedTasks)

	fmt.Println("\nall three engines produced the exact reference sums")
}

// verify asserts that the single terminal output matches the reference
// sums exactly.
func verify(outputs map[dag.VertexID][]data.Record, want map[string]int64) {
	if len(outputs) != 1 {
		log.Fatalf("expected one terminal output, got %d", len(outputs))
	}
	for _, recs := range outputs {
		if len(recs) != len(want) {
			log.Fatalf("got %d documents, want %d", len(recs), len(want))
		}
		for _, r := range recs {
			if want[r.Key.(string)] != r.Value.(int64) {
				log.Fatalf("doc %v: got %d want %d", r.Key, r.Value, want[r.Key.(string)])
			}
		}
	}
}
