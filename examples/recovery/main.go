// Recovery: demonstrates the two failure-handling paths of the Pado
// runtime on one job.
//
// First it runs an iterative job under continuous transient-container
// evictions (§3.2.5: only uncommitted tasks of the running stage are
// relaunched). Then, mid-run, it injects a *reserved*-container machine
// fault (§3.2.6): the stage outputs that lived on that container are
// lost, and the master recomputes exactly the ancestor stages whose
// intermediate results became unavailable. The job still produces the
// exact sequential-reference model.
//
//	go run ./examples/recovery
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"time"

	"pado/internal/cluster"
	"pado/internal/runtime"
	"pado/internal/trace"
	"pado/internal/vtime"
	"pado/internal/workloads"
)

func main() {
	cfg := workloads.MLRConfig{
		Partitions:     16,
		SamplesPerPart: 40,
		Features:       64,
		Classes:        4,
		NonZeros:       12,
		Iterations:     4,
		LearningRate:   0.5,
		Seed:           8,
	}

	cl, err := cluster.New(cluster.Config{
		Transient: 8,
		Reserved:  3,
		Lifetimes: trace.Lifetimes(trace.RateHigh),
		Scale:     vtime.NewScale(40 * time.Millisecond),
		Seed:      2,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Fail one reserved container shortly after the job starts; a
	// replacement reserved container is allocated, and §3.2.6 recovery
	// recomputes the stages whose outputs were lost.
	go func() {
		time.Sleep(150 * time.Millisecond)
		for _, c := range cl.Containers(cluster.Reserved) {
			fmt.Printf(">> injecting machine fault on reserved container %s\n", c.ID)
			if err := cl.FailReserved(c.ID, true); err != nil {
				fmt.Printf("   (fault not injected: %v)\n", err)
			}
			return
		}
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	res, err := runtime.Run(ctx, cl, workloads.MLR(cfg).Graph(), runtime.Config{})
	if err != nil {
		log.Fatal(err)
	}

	var model []float64
	for _, recs := range res.Outputs {
		model = recs[0].Value.([]float64)
	}
	ref := workloads.MLRReference(cfg)
	var maxDiff float64
	for i := range model {
		if d := math.Abs(model[i] - ref[i]); d > maxDiff {
			maxDiff = d
		}
	}
	fmt.Printf("job completed: %d transient evictions + 1 reserved fault survived\n", res.Metrics.Evictions)
	fmt.Printf("relaunched tasks (evictions + recovery recomputation): %d\n", res.Metrics.RelaunchedTasks)
	fmt.Printf("max deviation from sequential reference: %.2e\n", maxDiff)
	if maxDiff > 1e-9 {
		log.Fatal("recovered result deviates from reference")
	}
	fmt.Println("result is exact despite the reserved-container failure")
}
