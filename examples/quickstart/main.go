// Quickstart: a word-count-style job on the Pado engine.
//
// It builds the simplest interesting pipeline — Read, ParDo, keyed
// combine — runs it on a small simulated cluster WITH aggressive
// transient-container evictions, and shows that the result is exact
// anyway: the reduce operator runs on reserved containers and every map
// output escapes eviction by being pushed there as soon as it exists.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"
	"time"

	"pado"
	"pado/internal/data"
	"pado/internal/dataflow"
	"pado/internal/vtime"
)

var docs = []string{
	"the quick brown fox jumps over the lazy dog",
	"the dog barks and the fox runs",
	"pado harnesses transient resources in the datacenter",
	"evictions occur but the answer stays exact",
	"the quick fox likes the quick dog",
}

func main() {
	// A source with one partition per document; each record is a line.
	src := &dataflow.FuncSource{
		Partitions: len(docs),
		Gen: func(p int) []pado.Record {
			return []pado.Record{{Value: docs[p]}}
		},
	}
	lineCoder := data.KVCoder{K: data.NilCoder, V: data.StringCoder}
	countCoder := data.KVCoder{K: data.StringCoder, V: data.Int64Coder}

	p := pado.NewPipeline()
	words := p.Read("read-docs", src, lineCoder).
		ParDo("split", dataflow.DoFunc(func(r pado.Record, _ dataflow.SideValues, emit dataflow.Emit) error {
			for _, w := range strings.Fields(r.Value.(string)) {
				emit(pado.KV(w, int64(1)))
			}
			return nil
		}), countCoder)
	words.CombinePerKey("count", pado.SumInt64Fn{}, countCoder,
		dataflow.WithAccumulatorCoder(countCoder))

	// A small cluster under the paper's HIGH eviction rate: transient
	// containers live only a couple of (scaled) minutes.
	cl, err := pado.NewCluster(pado.ClusterConfig{
		Transient: 4,
		Reserved:  2,
		Lifetimes: pado.EvictionLifetimes(pado.EvictionHigh),
		Scale:     vtime.NewScale(50 * time.Millisecond),
		Seed:      1,
	})
	if err != nil {
		log.Fatal(err)
	}

	// A tracer records the run's structured event stream; at the end we
	// print the per-stage timeline it captured.
	tracer := pado.NewTracer()
	res, err := pado.Run(context.Background(), cl, p, pado.Config{Tracer: tracer})
	if err != nil {
		log.Fatal(err)
	}

	var out []pado.Record
	for _, recs := range res.Outputs {
		out = recs
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Value.(int64) != out[j].Value.(int64) {
			return out[i].Value.(int64) > out[j].Value.(int64)
		}
		return out[i].Key.(string) < out[j].Key.(string)
	})
	fmt.Println("word counts (computed under transient-container evictions):")
	for _, r := range out {
		fmt.Printf("  %-12s %d\n", r.Key, r.Value)
	}
	fmt.Printf("\njct=%v evictions=%d relaunched tasks=%d\n",
		res.Metrics.JCT, res.Metrics.Evictions, res.Metrics.RelaunchedTasks)

	fmt.Println()
	if err := pado.WriteTimeline(os.Stdout, tracer.Events(), vtime.Scale{}); err != nil {
		log.Fatal(err)
	}
}
