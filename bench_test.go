// Benchmarks regenerating every table and figure of the paper's
// evaluation (see DESIGN.md §3 for the index). Each benchmark runs its
// experiment sweep once per iteration and reports the headline numbers
// as custom metrics; the full-size sweeps with nicely formatted tables
// are available via `go run ./cmd/padobench -figure all` and
// `go run ./cmd/tracecdf`.
//
// Benchmarks run single repeats at the calibrated scale (60ms per paper
// minute — the time scale fixes the eviction-rate-to-transfer-time ratio
// and must not be changed independently of the bandwidth constants), so
// one full pass takes a few minutes of wall time.
package pado

import (
	"fmt"
	"testing"
	"time"

	"pado/internal/harness"
	"pado/internal/runtime"
	"pado/internal/trace"
	"pado/internal/vtime"
)

// benchParams returns the single-repeat experiment base configuration.
func benchParams() harness.Params {
	return harness.Params{
		Scale:          vtime.NewScale(60 * time.Millisecond),
		TimeoutMinutes: 90,
		Size:           1.0,
		Seed:           11,
	}
}

// BenchmarkFigure1LifetimeCDFs regenerates the transient-container
// lifetime CDFs (Figure 1) from the synthesized trace.
func BenchmarkFigure1LifetimeCDFs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		u := trace.Synthesize(trace.DefaultSynthConfig())
		for _, m := range []trace.SafetyMargin{trace.MarginAggressive, trace.MarginModerate, trace.MarginCautious} {
			d := trace.NewLifetimeDist(u.Lifetimes(m))
			if d.Len() == 0 {
				b.Fatal("no lifetimes derived")
			}
			if i == 0 {
				cdf := d.CDF([]float64{10, 30, 60})
				b.Logf("margin %.1f%%: CDF@10=%0.2f @30=%0.2f @60=%0.2f",
					float64(m)*100, cdf[0], cdf[1], cdf[2])
			}
		}
	}
}

// BenchmarkTable1LifetimePercentiles regenerates the lifetime percentile
// table (Table 1).
func BenchmarkTable1LifetimePercentiles(b *testing.B) {
	for i := 0; i < b.N; i++ {
		u := trace.CanonicalUsage()
		for _, m := range []trace.SafetyMargin{trace.MarginAggressive, trace.MarginModerate, trace.MarginCautious} {
			d := trace.NewLifetimeDist(u.Lifetimes(m))
			p10, p50, p90 := d.Percentile(10), d.Percentile(50), d.Percentile(90)
			if i == 0 {
				b.Logf("margin %.1f%%: p10=%.0f p50=%.0f p90=%.0f min", float64(m)*100, p10, p50, p90)
				b.ReportMetric(p50, fmt.Sprintf("p50_m%.1f%%", float64(m)*100))
			}
		}
	}
}

// BenchmarkTable2CollectedMemory regenerates the collected-idle-memory
// table (Table 2).
func BenchmarkTable2CollectedMemory(b *testing.B) {
	for i := 0; i < b.N; i++ {
		u := trace.CanonicalUsage()
		baseline := u.CollectedMemory(-1)
		if i == 0 {
			b.Logf("baseline: %.1f%%", baseline*100)
			b.ReportMetric(baseline*100, "baseline_%")
		}
		for _, m := range []trace.SafetyMargin{trace.MarginAggressive, trace.MarginModerate, trace.MarginCautious} {
			c := u.CollectedMemory(m)
			if c <= 0 || c > baseline {
				b.Fatalf("collected memory %.3f out of range (baseline %.3f)", c, baseline)
			}
			if i == 0 {
				b.Logf("margin %.1f%%: %.1f%%", float64(m)*100, c*100)
			}
		}
	}
}

// evictionSweep runs one of Figures 5-7 and reports each engine's JCT at
// the high eviction rate plus the Pado-vs-baseline speedups.
func evictionSweep(b *testing.B, w harness.Workload) {
	for i := 0; i < b.N; i++ {
		t := harness.EvictionSweep(w, benchParams())
		if i > 0 {
			continue
		}
		b.Log("\n" + t.String())
		at := func(e harness.Engine, r trace.Rate) float64 {
			out, ok := t.Get(func(p harness.Params) bool { return p.Engine == e && p.Rate == r })
			if !ok {
				b.Fatalf("missing outcome for %v/%v", e, r)
			}
			return out.JCTMinutes
		}
		pado := at(harness.EnginePado, trace.RateHigh)
		spark := at(harness.EngineSpark, trace.RateHigh)
		ck := at(harness.EngineSparkCheckpoint, trace.RateHigh)
		b.ReportMetric(pado, "pado_high_min")
		b.ReportMetric(spark/pado, "speedup_vs_spark")
		b.ReportMetric(ck/pado, "speedup_vs_ck")
	}
}

// BenchmarkFigure5ALSEvictionRates regenerates Figure 5.
func BenchmarkFigure5ALSEvictionRates(b *testing.B) { evictionSweep(b, harness.WorkloadALS) }

// BenchmarkFigure6MLREvictionRates regenerates Figure 6.
func BenchmarkFigure6MLREvictionRates(b *testing.B) { evictionSweep(b, harness.WorkloadMLR) }

// BenchmarkFigure7MREvictionRates regenerates Figure 7.
func BenchmarkFigure7MREvictionRates(b *testing.B) { evictionSweep(b, harness.WorkloadMR) }

// BenchmarkFigure8ReservedRatio regenerates Figure 8: JCT with 3-7
// reserved containers under the high eviction rate.
func BenchmarkFigure8ReservedRatio(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := harness.Figure8(benchParams())
		if i > 0 {
			continue
		}
		b.Log("\n" + t.String())
		for _, w := range []harness.Workload{harness.WorkloadALS, harness.WorkloadMLR, harness.WorkloadMR} {
			at := func(e harness.Engine, reserved int) (float64, bool) {
				out, ok := t.Get(func(p harness.Params) bool {
					return p.Engine == e && p.Workload == w && p.Reserved == reserved
				})
				return out.JCTMinutes, ok
			}
			if p3, ok := at(harness.EnginePado, 3); ok {
				if p7, ok := at(harness.EnginePado, 7); ok && p7 > 0 {
					b.ReportMetric(p3/p7, fmt.Sprintf("%s_pado_slowdown_3v7", w))
				}
			}
		}
	}
}

// BenchmarkFigure9Scalability regenerates Figure 9: Pado's JCT at a
// fixed 8:1 transient:reserved ratio.
func BenchmarkFigure9Scalability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := harness.Figure9(benchParams())
		if i > 0 {
			continue
		}
		b.Log("\n" + t.String())
		for _, w := range []harness.Workload{harness.WorkloadALS, harness.WorkloadMLR, harness.WorkloadMR} {
			small, ok1 := t.Get(func(p harness.Params) bool { return p.Workload == w && p.Transient == 24 })
			large, ok2 := t.Get(func(p harness.Params) bool { return p.Workload == w && p.Transient == 56 })
			if ok1 && ok2 && large.JCTMinutes > 0 {
				b.ReportMetric(small.JCTMinutes/large.JCTMinutes, fmt.Sprintf("%s_scaling_27v63", w))
			}
		}
	}
}

// ablation runs Pado's MLR under the high eviction rate with a runtime
// configuration tweak and reports the JCT ratio vs the default.
func ablation(b *testing.B, w harness.Workload, mutate func(*runtime.Config)) {
	for i := 0; i < b.N; i++ {
		base := benchParams()
		base.Engine = harness.EnginePado
		base.Workload = w
		base.Rate = trace.RateHigh
		def, err := harness.Run(base)
		if err != nil {
			b.Fatal(err)
		}
		mod := base
		prev := mod.PadoConfig
		mod.PadoConfig = func(cfg *runtime.Config) {
			if prev != nil {
				prev(cfg)
			}
			mutate(cfg)
		}
		abl, err := harness.Run(mod)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("default: %s", def)
			b.Logf("ablated: %s", abl)
			if def.JCTMinutes > 0 {
				b.ReportMetric(abl.JCTMinutes/def.JCTMinutes, "ablated_over_default")
			}
		}
	}
}

// BenchmarkAblationPartialAggregation disables §3.2.7 partial
// aggregation on MLR, the workload it helps most.
func BenchmarkAblationPartialAggregation(b *testing.B) {
	ablation(b, harness.WorkloadMLR, func(cfg *runtime.Config) { cfg.DisablePartialAggregation = true })
}

// BenchmarkAblationInputCaching disables §3.2.7 task input caching on
// ALS, whose iterations re-read grouped rating data.
func BenchmarkAblationInputCaching(b *testing.B) {
	ablation(b, harness.WorkloadALS, func(cfg *runtime.Config) { cfg.DisableCache = true })
}

// BenchmarkAblationPushVsPull replaces Pado's push-based boundaries with
// pull-based ones on MR, exposing map outputs to evictions the way
// shuffle files are.
func BenchmarkAblationPushVsPull(b *testing.B) {
	ablation(b, harness.WorkloadMR, func(cfg *runtime.Config) { cfg.PullBoundaries = true })
}
