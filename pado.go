// Package pado is the public API of the Pado reproduction: a
// general-purpose distributed data processing engine that harnesses
// transient datacenter resources (Yang et al., EuroSys 2017).
//
// A job is authored against the Beam-style dataflow API, compiled by the
// Pado compiler — which places recomputation-prone operators on reserved
// containers (Algorithm 1) and partitions the DAG into stages
// (Algorithm 2) — and executed by the Pado runtime on a simulated
// datacenter whose transient containers are evicted according to
// trace-derived lifetime distributions.
//
// Quickstart:
//
//	p := pado.NewPipeline()
//	lines := p.Read("read", source, coder)
//	lines.ParDo("parse", fn, outCoder).
//	      CombinePerKey("sum", pado.SumInt64Fn{}, outCoder)
//
//	cl, _ := pado.NewCluster(pado.ClusterConfig{Transient: 8, Reserved: 2})
//	res, _ := pado.Run(context.Background(), cl, p, pado.Config{})
//
// The subsystems are exposed for advanced use: internal/core (compiler),
// internal/runtime (engine), internal/engines/sparklike (the evaluation
// baselines), internal/cluster, internal/simnet, internal/trace, and
// internal/harness (the paper's experiments).
package pado

import (
	"context"

	"pado/internal/cluster"
	"pado/internal/core"
	"pado/internal/data"
	"pado/internal/dataflow"
	"pado/internal/obs"
	"pado/internal/runtime"
	"pado/internal/storage"
	"pado/internal/trace"
)

// Re-exported dataflow types: the job-authoring surface.
type (
	// Pipeline builds a logical DAG of operators.
	Pipeline = dataflow.Pipeline
	// Collection is a distributed dataset handle.
	Collection = dataflow.Collection
	// Record is a key/value element.
	Record = data.Record
	// Coder serializes records for transfer.
	Coder = data.Coder
	// Source is a partitioned external input.
	Source = dataflow.Source
	// DoFn is ParDo's per-record function.
	DoFn = dataflow.DoFn
	// CombineFn is a commutative, associative aggregation.
	CombineFn = dataflow.CombineFn
	// SideInput is a broadcast input to a ParDo.
	SideInput = dataflow.SideInput
	// SumInt64Fn sums int64 values per key.
	SumInt64Fn = dataflow.SumInt64Fn
	// SumFloat64sFn sums float64 vectors elementwise.
	SumFloat64sFn = dataflow.SumFloat64sFn
)

// Re-exported cluster and engine configuration.
type (
	// ClusterConfig sizes the simulated datacenter.
	ClusterConfig = cluster.Config
	// Cluster is a simulated datacenter for one job.
	Cluster = cluster.Cluster
	// Config parameterizes the Pado runtime.
	Config = runtime.Config
	// Result carries a finished job's outputs and metrics.
	Result = runtime.Result
	// EvictionRate selects a trace-derived eviction regime.
	EvictionRate = trace.Rate
)

// Re-exported observability types: set Config.Tracer to a NewTracer
// value to record the run's event stream, then export it with
// WriteChromeTrace or WriteTimeline.
type (
	// Tracer records a job's structured event stream.
	Tracer = obs.Tracer
	// TraceEvent is one recorded runtime event.
	TraceEvent = obs.Event
)

// NewTracer returns a tracer whose clock starts now. Pass it in
// Config.Tracer before Run; read the merged stream with Events().
func NewTracer() *Tracer { return obs.New() }

// WriteChromeTrace exports recorded events in Chrome trace_event JSON
// (chrome://tracing, ui.perfetto.dev). A zero Scale keeps wall-clock
// microsecond timestamps.
var WriteChromeTrace = obs.WriteChromeTrace

// WriteTimeline exports recorded events as a plain-text per-stage
// timeline and summary table.
var WriteTimeline = obs.WriteTimeline

// Eviction rates derived from the calibrated datacenter trace analysis
// (§2.1): low = 5% safety margin, medium = 1%, high = 0.1%.
const (
	EvictionNone   = trace.RateNone
	EvictionLow    = trace.RateLow
	EvictionMedium = trace.RateMedium
	EvictionHigh   = trace.RateHigh
)

// CommitStore is a content-addressed store of committed stage outputs.
// Hand the same store to successive runs via Config.Commits and
// unchanged stages and tasks are served from history instead of
// recomputed (incremental re-execution, DESIGN.md §14). Sources opt in
// by implementing FingerprintedSource.
type CommitStore = storage.CommitStore

// NewCommitStore returns an empty commit store.
func NewCommitStore() *CommitStore { return storage.NewCommitStore() }

// FingerprintedSource is a Source whose partitions declare stable
// content fingerprints, which is what keys commit-store caching;
// sources that do not implement it disable caching downstream.
type FingerprintedSource = dataflow.FingerprintedSource

// NewPipeline returns an empty pipeline.
func NewPipeline() *Pipeline { return dataflow.NewPipeline() }

// NewCluster builds a simulated datacenter. Set Lifetimes with
// EvictionLifetimes to enable evictions.
func NewCluster(cfg ClusterConfig) (*Cluster, error) { return cluster.New(cfg) }

// EvictionLifetimes returns the canonical transient-container lifetime
// distribution for a rate, for use in ClusterConfig.Lifetimes.
func EvictionLifetimes(rate EvictionRate) *trace.LifetimeDist { return trace.Lifetimes(rate) }

// Run compiles the pipeline with the Pado compiler and executes it on the
// cluster, which is consumed (one job per cluster).
func Run(ctx context.Context, cl *Cluster, p *Pipeline, cfg Config) (*Result, error) {
	return runtime.Run(ctx, cl, p.Graph(), cfg)
}

// Compile runs only the Pado compiler — placement, stage partitioning,
// physical planning — and returns the plan for inspection.
func Compile(p *Pipeline, cfg core.PlanConfig) (*core.Plan, error) {
	return core.Compile(p.Graph(), cfg)
}

// KV constructs a Record.
func KV(key, value any) Record { return data.KV(key, value) }
