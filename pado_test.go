package pado_test

import (
	"context"
	"testing"
	"time"

	"pado"
	"pado/internal/core"
	"pado/internal/data"
	"pado/internal/dataflow"
	"pado/internal/vtime"
)

// TestFacadeQuickstart exercises the public API end to end: author a
// pipeline, run it under evictions, check the result.
func TestFacadeQuickstart(t *testing.T) {
	src := &dataflow.FuncSource{
		Partitions: 4,
		Gen: func(p int) []pado.Record {
			return []pado.Record{
				pado.KV("k", int64(p)),
				pado.KV("only", int64(1)),
			}
		},
	}
	kv := data.KVCoder{K: data.StringCoder, V: data.Int64Coder}
	p := pado.NewPipeline()
	p.Read("read", src, kv).
		ParDo("id", dataflow.MapFunc(func(r pado.Record) pado.Record { return r }), kv).
		CombinePerKey("sum", pado.SumInt64Fn{}, kv)

	cl, err := pado.NewCluster(pado.ClusterConfig{
		Transient: 3,
		Reserved:  2,
		Lifetimes: pado.EvictionLifetimes(pado.EvictionHigh),
		Scale:     vtime.NewScale(30 * time.Millisecond),
		Seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	res, err := pado.Run(ctx, cl, p, pado.Config{})
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]int64{}
	for _, recs := range res.Outputs {
		for _, r := range recs {
			got[r.Key.(string)] = r.Value.(int64)
		}
	}
	if got["k"] != 6 || got["only"] != 4 {
		t.Errorf("outputs = %v", got)
	}
}

// TestFacadeCompile checks the plan-inspection entry point.
func TestFacadeCompile(t *testing.T) {
	src := &dataflow.FuncSource{Partitions: 2, Gen: func(int) []pado.Record { return nil }}
	kv := data.KVCoder{K: data.StringCoder, V: data.Int64Coder}
	p := pado.NewPipeline()
	p.Read("read", src, kv).CombinePerKey("sum", pado.SumInt64Fn{}, kv)
	plan, err := pado.Compile(p, core.PlanConfig{ReduceParallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Stages) != 1 || !plan.Stages[0].RootReserved {
		t.Errorf("unexpected plan shape: %d stages", len(plan.Stages))
	}
}

func TestEvictionLifetimes(t *testing.T) {
	if pado.EvictionLifetimes(pado.EvictionNone) != nil {
		t.Error("none rate should have nil lifetimes")
	}
	if pado.EvictionLifetimes(pado.EvictionHigh).Empty() {
		t.Error("high rate distribution empty")
	}
}
