// Command padoreport renders and diffs analyzer reports (the
// .report.json files written by padorun -report and padobench
// -reportdir; see internal/obs/analyze).
//
//	padoreport run.report.json                 # render one report
//	padoreport BENCH_seed.json fresh.json      # diff: fresh vs. baseline
//	padoreport -json base.json cur.json        # machine-readable diff
//
// With two arguments the exit status reports the benchmark trajectory:
// 0 when the current run's JCT is within -max-jct-regress percent of
// the baseline (default: warn-only, always 0), 1 when the gate trips.
// CI diffs fresh runs against the committed BENCH_*.json baselines.
package main

import (
	"flag"
	"fmt"
	"os"

	"pado/internal/obs/analyze"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit JSON instead of text (report render or diff)")
	maxRegress := flag.Float64("max-jct-regress", 0,
		"fail (exit 1) when the current JCT regresses more than this percent over the baseline; 0 = warn only")
	flag.Parse()

	switch flag.NArg() {
	case 1:
		rep, err := analyze.Load(flag.Arg(0))
		if err != nil {
			fatalf("%v", err)
		}
		if *jsonOut {
			if err := rep.WriteJSON(os.Stdout); err != nil {
				fatalf("%v", err)
			}
			return
		}
		if err := rep.WriteText(os.Stdout); err != nil {
			fatalf("%v", err)
		}

	case 2:
		base, err := analyze.Load(flag.Arg(0))
		if err != nil {
			fatalf("%v", err)
		}
		cur, err := analyze.Load(flag.Arg(1))
		if err != nil {
			fatalf("%v", err)
		}
		if base.Engine != cur.Engine || base.Workload != cur.Workload || base.Rate != cur.Rate {
			fmt.Fprintf(os.Stderr, "warning: comparing different cells: %s/%s/%s vs %s/%s/%s\n",
				base.Engine, base.Workload, base.Rate, cur.Engine, cur.Workload, cur.Rate)
		} else if base.Policy != cur.Policy {
			fmt.Fprintf(os.Stderr, "note: comparing placement policies: %s vs %s\n",
				orDash(base.Policy), orDash(cur.Policy))
		}
		d := analyze.DiffReports(base, cur, flag.Arg(0), flag.Arg(1))
		if *jsonOut {
			if err := writeDiffJSON(d); err != nil {
				fatalf("%v", err)
			}
		} else if err := d.WriteText(os.Stdout); err != nil {
			fatalf("%v", err)
		}
		if *maxRegress > 0 && d.JCTDeltaPct > *maxRegress {
			fmt.Fprintf(os.Stderr, "FAIL: jct regressed %.1f%% (> %.1f%% allowed)\n",
				d.JCTDeltaPct, *maxRegress)
			os.Exit(1)
		}

	default:
		fmt.Fprintln(os.Stderr, "usage: padoreport [-json] report.json            render one report")
		fmt.Fprintln(os.Stderr, "       padoreport [flags] base.json cur.json     diff two reports")
		flag.PrintDefaults()
		os.Exit(2)
	}
}

func writeDiffJSON(d *analyze.Diff) error {
	b, err := analyze.MarshalDiff(d)
	if err != nil {
		return err
	}
	_, err = os.Stdout.Write(b)
	return err
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
