// Command padorun runs one of the built-in workloads on a chosen engine
// and cluster shape, printing the compiled plan, the job metrics, and a
// sample of the output — a quick way to poke at the system.
//
//	padorun -workload mr -engine pado -rate high -plan
//	padorun -trace out.json -timeline -
//
// -trace writes the run's event stream in Chrome trace_event format
// (load it at chrome://tracing or https://ui.perfetto.dev); -timeline
// writes a plain-text per-stage timeline ("-" for stdout).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"pado/internal/chaos"
	"pado/internal/cluster"
	"pado/internal/core"
	"pado/internal/dag"
	"pado/internal/data"
	"pado/internal/dataflow"
	"pado/internal/engines/sparklike"
	"pado/internal/introspect"
	"pado/internal/metrics"
	"pado/internal/obs"
	"pado/internal/obs/analyze"
	"pado/internal/profile"
	"pado/internal/runtime"
	"pado/internal/storage"
	"pado/internal/trace"
	"pado/internal/vtime"
	"pado/internal/workloads"
)

func main() {
	engine := flag.String("engine", "pado", "engine: pado, spark, spark-checkpoint")
	workload := flag.String("workload", "mr", "workload: mr, mlr, als")
	rate := flag.String("rate", "medium", "eviction rate: none, low, medium, high")
	transient := flag.Int("transient", 12, "transient containers")
	reserved := flag.Int("reserved", 3, "reserved containers")
	scaleMS := flag.Int("scale", 50, "wall milliseconds per paper minute")
	seed := flag.Int64("seed", 1, "seed")
	policy := flag.String("policy", "", "placement policy for the pado engine: "+
		strings.Join(core.PolicyNames(), ", ")+" (default: paper)")
	showPlan := flag.Bool("plan", false, "print the compiled plan (placements and stages)")
	dot := flag.Bool("dot", false, "print the placed logical DAG in Graphviz format")
	sample := flag.Int("sample", 5, "output records to print")
	traceOut := flag.String("trace", "", "write a Chrome trace_event JSON of the run to this file (\"-\" for stdout)")
	timelineOut := flag.String("timeline", "", "write a plain-text per-stage timeline to this file (\"-\" for stdout)")
	reportOut := flag.String("report", "", "write the analyzer report JSON (critical path, eviction costs, stage latencies) to this file (\"-\" for stdout); render it with padoreport")
	chaosPlan := flag.String("chaos", "", "run under the scripted fault schedule in this plan JSON file (see examples/chaos/)")
	heartbeat := flag.Duration("heartbeat", 0, "executor heartbeat period for the failure detector (0 = default 100ms)")
	suspectAfter := flag.Duration("suspect-after", 0, "heartbeat staleness that marks a node suspect (0 = 4x heartbeat)")
	deadAfter := flag.Duration("dead-after", 0, "heartbeat staleness that declares a node dead and triggers recovery; raise on loaded hosts to avoid false positives (0 = 15x heartbeat)")
	rpcDeadline := flag.Duration("rpc-deadline", 0, "per-attempt deadline on data-plane RPCs (0 = no deadline; recovery then relies on heartbeats)")
	noDetector := flag.Bool("no-detector", false, "disable heartbeats and the failure detector (announced failures only)")
	noRPCPolicy := flag.Bool("no-rpc-policy", false, "disable the RPC retry/backoff/breaker layer")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile to this file on exit")
	httpAddr := flag.String("http", "",
		"serve the live introspection plane on this address while the run is up "+
			"(pado engine only; e.g. 127.0.0.1:7777, :0 picks a port; monitor with padotop)")
	incremental := flag.Bool("incremental", false,
		"pado engine only: prime a commit store with one identical run, then run (and report) "+
			"the incremental rerun against it — unchanged stages and tasks are served from the store")
	delta := flag.Float64("delta", 0,
		"with -incremental: fraction of the MR input partitions changed between the priming "+
			"run and the rerun (0 = identical input)")
	flag.Parse()

	prof, err := profile.Start(*cpuProfile, *memProfile)
	if err != nil {
		fatalf("%v", err)
	}
	defer func() {
		if err := prof.Stop(); err != nil {
			fatalf("%v", err)
		}
	}()

	var plan *chaos.Plan
	if *chaosPlan != "" {
		var err error
		if plan, err = chaos.Load(*chaosPlan); err != nil {
			fatalf("chaos: %v", err)
		}
	}

	var r trace.Rate
	switch strings.ToLower(*rate) {
	case "none":
		r = trace.RateNone
	case "low":
		r = trace.RateLow
	case "medium":
		r = trace.RateMedium
	case "high":
		r = trace.RateHigh
	default:
		fatalf("unknown rate %q", *rate)
	}

	if *incremental && strings.ToLower(*engine) != "pado" {
		fatalf("-incremental needs -engine pado (the baselines have no commit store)")
	}
	if *delta != 0 && !*incremental {
		fatalf("-delta only makes sense with -incremental")
	}
	if !isWorkload(*workload) {
		fatalf("unknown workload %q", *workload)
	}
	// The reported run carries the input delta (dirty partitions salted);
	// the priming run below always sees the clean input.
	pipe := buildPipe(*workload, *delta, 1)

	pol, err := core.PolicyByName(*policy)
	if err != nil {
		fatalf("%v", err)
	}

	scale := vtime.NewScale(time.Duration(*scaleMS) * time.Millisecond)
	clCfg := cluster.Config{
		Transient: *transient,
		Reserved:  *reserved,
		Lifetimes: trace.Lifetimes(r),
		Scale:     scale,
		Seed:      *seed,
	}
	cl, err := cluster.New(clCfg)
	if err != nil {
		fatalf("cluster: %v", err)
	}
	planCfg := core.PlanConfig{
		ReduceParallelism: 2 * *reserved,
		Policy:            pol,
		Env:               clCfg.PlacementEnv(),
	}

	if *showPlan || *dot {
		plan, err := core.Compile(buildPipe(*workload, *delta, 1).Graph(), planCfg)
		if err != nil {
			fatalf("compile: %v", err)
		}
		if *dot {
			fmt.Println(plan.Graph.DOT())
		}
		if *showPlan {
			printPlan(plan)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	var tracer *obs.Tracer
	if *traceOut != "" || *timelineOut != "" || *reportOut != "" || plan != nil ||
		(*httpAddr != "" && strings.ToLower(*engine) == "pado") {
		tracer = obs.New()
	}

	var chaosEngine *chaos.Engine
	if plan != nil {
		chaosEngine = chaos.NewEngine(plan, cl)
		chaosEngine.Attach(tracer)
		defer chaosEngine.Stop()
	}

	var outputs map[dag.VertexID][]data.Record
	var jct time.Duration
	var relaunched, evictions int64
	var report *chaos.Report
	var snap metrics.Snapshot
	var stageParents map[int][]int
	switch strings.ToLower(*engine) {
	case "pado":
		cfg := runtime.Config{
			Plan:   planCfg,
			Tracer: tracer,
			Failure: runtime.FailureConfig{
				DisableDetector:  *noDetector,
				HeartbeatEvery:   *heartbeat,
				SuspectAfter:     *suspectAfter,
				DeadAfter:        *deadAfter,
				DisableRPCPolicy: *noRPCPolicy,
				RPCDeadline:      *rpcDeadline,
			},
		}
		if chaosEngine != nil {
			cfg.Chaos = chaosEngine
		}
		if *incremental {
			store := storage.NewCommitStore()
			cfg.Commits = store
			// Task-level commits need content-stable boundary payloads, so
			// the incremental path runs on raw boundaries.
			cfg.DisablePartialAggregation = true
			// Prime: an identical clean-input run on its own cluster fills
			// the store, then the reported run below reruns against it.
			primeCfg := cfg
			primeCfg.Tracer = nil
			primeCfg.Chaos = nil
			primeCl, err := cluster.New(clCfg)
			if err != nil {
				fatalf("cluster: %v", err)
			}
			res, err := runtime.Run(ctx, primeCl, buildPipe(*workload, 0, 0).Graph(), primeCfg)
			if err != nil {
				fatalf("priming run: %v", err)
			}
			st := store.Stats()
			fmt.Fprintf(os.Stderr, "primed commit store: %v wall, %d manifests, %d chunks, %d bytes\n",
				res.Metrics.JCT.Round(time.Millisecond), st.Manifests, st.Chunks, st.UsedBytes)
		}
		if *httpAddr != "" {
			// The manager only exists inside runtime.Run; OnManager hands
			// it to the introspection plane as soon as it starts.
			var srv *introspect.Server
			defer func() { srv.Close() }()
			cfg.OnManager = func(jm *runtime.JobManager) {
				var err error
				srv, err = introspect.Start(introspect.Options{
					Addr: *httpAddr, Manager: jm, Tracer: tracer,
				})
				if err != nil {
					fmt.Fprintf(os.Stderr, "introspection plane: %v\n", err)
					return
				}
				fmt.Fprintf(os.Stderr, "introspection plane listening on http://%s\n", srv.Addr())
			}
		}
		res, err := runtime.Run(ctx, cl, pipe.Graph(), cfg)
		if err != nil {
			fatalf("run: %v", err)
		}
		outputs, jct, snap = res.Outputs, res.Metrics.JCT, res.Metrics
		relaunched, evictions = res.Metrics.RelaunchedTasks, res.Metrics.Evictions
		stageParents = make(map[int][]int, len(res.Plan.Stages))
		for _, ps := range res.Plan.Stages {
			stageParents[ps.ID] = ps.Parents
		}
		if chaosEngine != nil {
			chaosEngine.Stop()
			report = chaos.Check(tracer.Events(), stageParents)
		}
	case "spark", "spark-checkpoint":
		res, err := sparklike.Run(ctx, cl, pipe.Graph(), sparklike.Config{
			Checkpoint: strings.Contains(*engine, "checkpoint"),
			Plan:       core.PlanConfig{ReduceParallelism: 2 * *reserved},
			Tracer:     tracer,
		})
		if err != nil {
			fatalf("run: %v", err)
		}
		outputs, jct, snap = res.Outputs, res.Metrics.JCT, res.Metrics
		relaunched, evictions = res.Metrics.RelaunchedTasks, res.Metrics.Evictions
		stageParents = make(map[int][]int, len(res.Plan.Stages))
		for _, ps := range res.Plan.Stages {
			stageParents[ps.ID] = ps.Parents
		}
	default:
		fatalf("unknown engine %q", *engine)
	}

	if tracer != nil {
		events := tracer.Events()
		if *traceOut != "" {
			if err := writeExport(*traceOut, func(w *os.File) error {
				return obs.WriteChromeTrace(w, events, scale)
			}); err != nil {
				fatalf("trace: %v", err)
			}
		}
		if *timelineOut != "" {
			if err := writeExport(*timelineOut, func(w *os.File) error {
				return obs.WriteTimeline(w, events, scale)
			}); err != nil {
				fatalf("timeline: %v", err)
			}
		}
		if *reportOut != "" {
			opts := analyze.Options{
				StageParents: stageParents,
				Scale:        analyze.ScaleInfo{WallPerMinute: scale.WallPerMinute},
				JCT:          jct,
				TimedOut:     snap.TimedOut,
				Engine:       strings.ToLower(*engine),
				Workload:     strings.ToLower(*workload),
				Rate:         r.String(),
				Seed:         *seed,
				Snapshot:     &snap,
			}
			if strings.ToLower(*engine) == "pado" {
				opts.Policy = pol.Name()
			}
			rep := analyze.Analyze(events, opts)
			if err := writeExport(*reportOut, func(w *os.File) error {
				return rep.WriteJSON(w)
			}); err != nil {
				fatalf("report: %v", err)
			}
		}
	}

	fmt.Printf("engine=%s workload=%s rate=%s: jct=%.1f paper-min (%v wall), evictions=%d, relaunched=%d\n",
		*engine, *workload, r, scale.Minutes(jct), jct.Round(time.Millisecond), evictions, relaunched)
	if *incremental {
		fmt.Printf("incremental rerun (delta=%.0f%%): %d/%d probes hit, %d stages + %d tasks skipped, "+
			"%d tasks of compute avoided, %dB served from the commit store\n",
			*delta*100,
			snap.Named[metrics.NameCommitHits], snap.Named[metrics.NameCommitProbes],
			snap.Named[metrics.NameStagesSkipped], snap.Named[metrics.NameTasksSkipped],
			snap.Named[metrics.NameComputeAvoidedTasks], snap.Named[metrics.NameCASBytesServed])
	}
	if chaosEngine != nil {
		chaosEngine.Stop()
		for _, inj := range chaosEngine.Injections() {
			fmt.Printf("chaos injected: %s\n", inj)
		}
		if report != nil {
			fmt.Println(report)
			fmt.Printf("chaos digest: %s\n", report.Digest(chaos.Canonical(outputs)))
		}
	}
	for vid, recs := range outputs {
		fmt.Printf("output vertex %d: %d records\n", vid, len(recs))
		show := recs
		sort.Slice(show, func(i, j int) bool {
			return fmt.Sprint(show[i].Key) < fmt.Sprint(show[j].Key)
		})
		for i := 0; i < *sample && i < len(show); i++ {
			fmt.Printf("  %v\n", summarize(show[i]))
		}
	}
}

func isWorkload(name string) bool {
	switch strings.ToLower(name) {
	case "mr", "mlr", "als":
		return true
	}
	return false
}

// buildPipe builds a fresh pipeline for the workload (plans mutate vertex
// state, so every compile or run gets its own graph). deltaFrac/salt dirty
// that fraction of the MR input between incremental runs; the iterative
// workloads' inputs aren't partition-versioned and ignore them.
func buildPipe(workload string, deltaFrac float64, salt int64) *dataflow.Pipeline {
	switch strings.ToLower(workload) {
	case "mlr":
		cfg := workloads.DefaultMLRConfig()
		cfg.Partitions, cfg.SamplesPerPart = 16, 40
		return workloads.MLR(cfg)
	case "als":
		cfg := workloads.DefaultALSConfig()
		cfg.Partitions, cfg.RatingsPerPart = 16, 600
		return workloads.ALS(cfg)
	default:
		cfg := workloads.DefaultMRConfig()
		cfg.Partitions, cfg.LinesPerPart = 16, 2000
		cfg.DeltaFrac = deltaFrac
		cfg.DeltaSalt = salt
		return workloads.MR(cfg)
	}
}

func summarize(r data.Record) string {
	if v, ok := r.Value.([]float64); ok && len(v) > 4 {
		return fmt.Sprintf("(%v, [%.3f %.3f ... %d values])", r.Key, v[0], v[1], len(v))
	}
	return r.String()
}

func printPlan(plan *core.Plan) {
	g := plan.Graph
	fmt.Printf("operator placement (policy %s):\n", plan.Policy)
	order, _ := g.TopoSort()
	for _, id := range order {
		v := g.Vertex(id)
		fmt.Printf("  %-28s %-10s parallelism=%d\n", v.Name, v.Placement, v.Parallelism)
	}
	fmt.Println("stages (Algorithm 2):")
	for _, ps := range plan.Stages {
		kind := "reserved-root"
		if !ps.RootReserved {
			kind = "terminal-transient"
		}
		fmt.Printf("  stage %d: root=%s (%s, %d tasks), %d fragment(s), %d cross-stage input(s)\n",
			ps.ID, g.Vertex(ps.Root).Name, kind, ps.RootParallelism, len(ps.Fragments), len(ps.Inputs))
	}
}

func writeExport(path string, write func(*os.File) error) error {
	if path == "-" {
		return write(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
