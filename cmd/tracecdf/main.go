// Command tracecdf regenerates the paper's cluster-trace analysis from
// the canonical Google-trace-derived usage model (internal/trace): the
// numbers motivating Pado's transient/reserved split.
//
//	tracecdf            # Tables 1-2 plus the Figure 1 CDF series
//	tracecdf -cdf=false # the tables only
//
// It prints, in order:
//
//   - Table 1: transient container lifetime percentiles (p10/p50/p90,
//     paper minutes) per eviction safety margin
//   - Table 2: collected idle memory as a fraction of the memory
//     allocated to latency-critical jobs, per safety margin
//   - Figure 1: the lifetime CDF at minute granularity over 0..60
//     paper minutes, one column per margin (suppress with -cdf=false)
//
// Output is aligned plain text on stdout, stable across runs (the
// usage model is deterministic), so diffs against committed baselines
// are meaningful. These distributions are the same ones the simulated
// cluster draws container lifetimes from (cluster.Config.Lifetimes),
// which is what ties the harness's eviction rates back to the paper's
// trace study.
package main

import (
	"flag"
	"fmt"
	"os"

	"pado/internal/trace"
)

func main() {
	full := flag.Bool("cdf", true, "print the Figure 1 CDF series (0..60 paper minutes, one column per safety margin)")
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "tracecdf: unexpected arguments %v (the trace model is built in; see -h)\n", flag.Args())
		os.Exit(2)
	}

	u := trace.CanonicalUsage()
	margins := []struct {
		name string
		m    trace.SafetyMargin
	}{
		{"0.1%", trace.MarginAggressive},
		{"1%", trace.MarginModerate},
		{"5%", trace.MarginCautious},
	}

	fmt.Println("Table 1: transient container lifetime percentiles (minutes)")
	fmt.Printf("%-16s %8s %8s %8s\n", "Safety Margin", "p10", "p50", "p90")
	dists := make([]*trace.LifetimeDist, len(margins))
	for i, mg := range margins {
		dists[i] = trace.NewLifetimeDist(u.Lifetimes(mg.m))
		fmt.Printf("%-16s %8.0f %8.0f %8.0f\n", mg.name,
			dists[i].Percentile(10), dists[i].Percentile(50), dists[i].Percentile(90))
	}

	fmt.Println()
	fmt.Println("Table 2: collected idle memory (% of memory allocated to LC jobs)")
	fmt.Printf("%-16s %10s\n", "Safety Margin", "Collected")
	fmt.Printf("%-16s %9.1f%%\n", "baseline", u.CollectedMemory(-1)*100)
	for _, mg := range margins {
		fmt.Printf("%-16s %9.1f%%\n", mg.name, u.CollectedMemory(mg.m)*100)
	}

	if *full {
		fmt.Println()
		fmt.Println("Figure 1: CDF of transient container lifetimes (%), 0..60 minutes")
		xs := make([]float64, 61)
		for i := range xs {
			xs[i] = float64(i)
		}
		fmt.Printf("%-8s %14s %14s %14s\n", "minutes", "high(0.1%)", "medium(1%)", "low(5%)")
		high := dists[0].CDF(xs)
		med := dists[1].CDF(xs)
		low := dists[2].CDF(xs)
		for i := range xs {
			fmt.Printf("%-8.0f %13.1f%% %13.1f%% %13.1f%%\n", xs[i], high[i]*100, med[i]*100, low[i]*100)
		}
	}
	os.Exit(0)
}
