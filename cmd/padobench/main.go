// Command padobench regenerates the paper's evaluation figures (5-9) on
// the simulated datacenter, or runs a single experiment.
//
//	padobench -figure 5           # ALS eviction-rate sweep
//	padobench -figure all         # everything
//	padobench -single -engine pado -workload mlr -rate high
//	padobench -jobs 3 -mix mr,mr,mlr -rate medium
//
// -single exits non-zero when the run times out or aborts. -jobs runs N
// concurrent jobs on one shared cluster under the multi-job manager and
// exits non-zero unless every job completes with its invariants intact
// (and, with -require-speedup, unless sharing beats the serial baseline).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"pado/internal/core"
	"pado/internal/harness"
	"pado/internal/metrics"
	"pado/internal/profile"
	"pado/internal/runtime"
	"pado/internal/storage"
	"pado/internal/trace"
	"pado/internal/vtime"
)

func main() {
	figure := flag.String("figure", "", "figure to regenerate: 5, 6, 7, 8, 9, or all")
	single := flag.Bool("single", false, "run a single experiment")
	engine := flag.String("engine", "pado", "single: engine (spark, spark-checkpoint, pado)")
	workload := flag.String("workload", "mr", "single: workload (als, mlr, mr)")
	rate := flag.String("rate", "none", "single: eviction rate (none, low, medium, high)")
	transient := flag.Int("transient", 40, "transient containers")
	reserved := flag.Int("reserved", 5, "reserved containers")
	size := flag.Float64("size", 1.0, "workload size factor")
	tasks := flag.Int("tasks", 1,
		"task fan-out multiplier: N times the partitions, each 1/N the records, "+
			"holding data volume constant (control-plane scale cells)")
	scaleMS := flag.Int("scale", 60, "wall milliseconds per paper minute")
	timeout := flag.Float64("timeout", 90, "timeout in paper minutes")
	seed := flag.Int64("seed", 424242, "experiment seed")
	policy := flag.String("policy", "", "placement policy for the pado engine: "+
		strings.Join(core.PolicyNames(), ", ")+" (default: paper)")
	repeats := flag.Int("repeats", 1, "average each cell over this many seeds")
	traceDir := flag.String("tracedir", "", "write per-run Chrome traces and timelines into this directory")
	reportDir := flag.String("reportdir", "", "write one analyzer report JSON per experiment cell into this directory (render/diff with padoreport)")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile to this file on exit")
	jobs := flag.Int("jobs", 0, "run N concurrent jobs on one shared cluster (multi-job manager)")
	mix := flag.String("mix", "mr,mr,mlr",
		"multi-job: comma-separated workload[:weight] cycle assigned round-robin (e.g. mlr:8,mr,mr)")
	stagger := flag.Float64("stagger", 0, "multi-job: paper minutes between successive submissions")
	requireSpeedup := flag.Float64("require-speedup", 0,
		"multi-job: also run the serial one-job-per-cluster baseline and fail unless makespan speedup >= this")
	noAgg := flag.Bool("pado-noagg", false, "disable Pado partial aggregation")
	noCache := flag.Bool("pado-nocache", false, "disable Pado task input caching")
	pull := flag.Bool("pado-pull", false, "Pado ablation: pull-based stage boundaries")
	aggMax := flag.Int("pado-aggmax", 0, "Pado executor-level aggregation task limit (0 = default)")
	padoReduce := flag.Int("pado-reduce", 0, "override Pado reduce parallelism")
	httpAddr := flag.String("http", "",
		"serve the live introspection plane on this address while the run is up "+
			"(pado engine only; e.g. 127.0.0.1:7777, :0 picks a port; monitor with padotop)")
	incr := flag.Bool("incr", false,
		"delta-rerun cell: run pado/mr once to prime a commit store, change -incr-delta of the "+
			"input, rerun against the store, and fail unless the rerun launched under 10% of the "+
			"first run's tasks (the report, if -reportdir is set, is the rerun's)")
	incrDelta := flag.Float64("incr-delta", 0.02,
		"with -incr: fraction of the input partitions changed between the two runs")
	flag.Parse()

	prof, err := profile.Start(*cpuProfile, *memProfile)
	if err != nil {
		fatalf("%v", err)
	}
	defer func() {
		if err := prof.Stop(); err != nil {
			fatalf("%v", err)
		}
	}()

	if _, err := core.PolicyByName(*policy); err != nil {
		fatalf("%v", err)
	}

	base := harness.Params{
		Transient:      *transient,
		Reserved:       *reserved,
		Size:           *size,
		Tasks:          *tasks,
		Scale:          vtime.NewScale(time.Duration(*scaleMS) * time.Millisecond),
		TimeoutMinutes: *timeout,
		Seed:           *seed,
		Repeats:        *repeats,
		Policy:         *policy,
		TraceDir:       *traceDir,
		ReportDir:      *reportDir,
		HTTPAddr:       *httpAddr,
	}
	if *noAgg || *noCache || *pull || *aggMax != 0 || *padoReduce != 0 {
		base.PadoConfig = func(cfg *runtime.Config) {
			cfg.DisablePartialAggregation = *noAgg
			cfg.DisableCache = *noCache
			cfg.PullBoundaries = *pull
			if *aggMax != 0 {
				cfg.AggMaxTasks = *aggMax
			}
			if *padoReduce != 0 {
				cfg.Plan.ReduceParallelism = *padoReduce
			}
		}
	}

	if *jobs > 0 {
		runJobs(base, *jobs, *mix, *rate, *stagger, *requireSpeedup)
		return
	}

	if *incr {
		runIncr(base, *rate, *incrDelta)
		return
	}

	if *single {
		p := base
		var ok bool
		if p.Engine, ok = parseEngine(*engine); !ok {
			fatalf("unknown engine %q", *engine)
		}
		if p.Workload, ok = parseWorkload(*workload); !ok {
			fatalf("unknown workload %q", *workload)
		}
		if p.Rate, ok = parseRate(*rate); !ok {
			fatalf("unknown rate %q", *rate)
		}
		out, err := harness.Run(p)
		if err != nil {
			fatalf("run: %v", err)
		}
		fmt.Println(out)
		fmt.Printf("  %s\n", out.Metrics)
		if out.ReportPath != "" {
			fmt.Printf("  report: %s\n", out.ReportPath)
		}
		if out.TimedOut {
			fatalf("FAIL: run timed out after %.0f paper minutes", p.TimeoutMinutes)
		}
		if out.Chaos != nil && !out.Chaos.OK() {
			fatalf("FAIL: %d invariant violation(s)", len(out.Chaos.Violations))
		}
		return
	}

	run := func(name string, f func(harness.Params) *harness.Table) {
		fmt.Printf("=== Figure %s ===\n", name)
		start := time.Now()
		fmt.Print(f(base))
		fmt.Printf("(%.1fs)\n\n", time.Since(start).Seconds())
	}

	switch *figure {
	case "5":
		run("5 (ALS)", harness.Figure5)
	case "6":
		run("6 (MLR)", harness.Figure6)
	case "7":
		run("7 (MR)", harness.Figure7)
	case "8":
		run("8 (reserved ratio)", harness.Figure8)
	case "9":
		run("9 (scalability)", harness.Figure9)
	case "all":
		run("5 (ALS)", harness.Figure5)
		run("6 (MLR)", harness.Figure6)
		run("7 (MR)", harness.Figure7)
		run("8 (reserved ratio)", harness.Figure8)
		run("9 (scalability)", harness.Figure9)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// runIncr drives the delta-rerun cell: two pado/mr runs against one
// commit store, the second with a fraction of the input changed. The
// gate is the tentpole's acceptance bound — the rerun may launch fewer
// than 10% of the priming run's tasks; everything else is served from
// the store.
func runIncr(base harness.Params, rate string, delta float64) {
	p := base
	p.Engine = harness.EnginePado
	p.Workload = harness.WorkloadMR
	p.Repeats = 1 // repeats reseed the input, which would defeat the store
	// The launch gate needs the traced obs.task_launched counter:
	// OriginalTasks counts a stage's full task total at schedule time,
	// before skips are applied, so it is blind to incremental reruns.
	p.ForceTrace = true
	var ok bool
	if p.Rate, ok = parseRate(rate); !ok {
		fatalf("unknown rate %q", rate)
	}
	store := storage.NewCommitStore()
	p.CommitStore = store

	prime := p
	prime.ReportDir = "" // the cell's report is the rerun's
	out1, err := harness.Run(prime)
	if err != nil {
		fatalf("priming run: %v", err)
	}
	st := store.Stats()
	fmt.Printf("prime: %s\n  store: %d manifests, %d chunks, %d bytes\n", out1, st.Manifests, st.Chunks, st.UsedBytes)
	if out1.TimedOut {
		fatalf("FAIL: priming run timed out")
	}

	p.InputDelta = delta
	p.DeltaSalt = 1
	out2, err := harness.Run(p)
	if err != nil {
		fatalf("delta rerun: %v", err)
	}
	m := out2.Metrics.Named
	launched1 := out1.Metrics.Named["obs.task_launched"]
	launched2 := m["obs.task_launched"]
	fmt.Printf("rerun: %s\n", out2)
	fmt.Printf("  delta=%.1f%%: launched %d of %d tasks; %d/%d probes hit, %d stages + %d tasks skipped, %dB served\n",
		delta*100, launched2, launched1,
		m[metrics.NameCommitHits], m[metrics.NameCommitProbes],
		m[metrics.NameStagesSkipped], m[metrics.NameTasksSkipped], m[metrics.NameCASBytesServed])
	if out2.ReportPath != "" {
		fmt.Printf("  report: %s\n", out2.ReportPath)
	}
	if out2.TimedOut {
		fatalf("FAIL: delta rerun timed out")
	}
	if m[metrics.NameTasksSkipped]+m[metrics.NameStagesSkipped] == 0 {
		fatalf("FAIL: delta rerun skipped nothing")
	}
	if launched2*10 >= launched1 {
		fatalf("FAIL: delta rerun launched %d of %d tasks (bound: under 10%%)",
			launched2, launched1)
	}
}

// runJobs drives the multi-job path: n concurrent jobs drawn round-robin
// from the mix cycle, all sharing one cluster under the job manager.
func runJobs(base harness.Params, n int, mix, rate string, stagger, requireSpeedup float64) {
	p := base
	p.Engine = harness.EnginePado
	var ok bool
	if p.Rate, ok = parseRate(rate); !ok {
		fatalf("unknown rate %q", rate)
	}
	cycle := strings.Split(mix, ",")
	for i := 0; i < n; i++ {
		name := strings.TrimSpace(cycle[i%len(cycle)])
		weight := 0.0
		if at := strings.IndexByte(name, ':'); at >= 0 {
			if _, err := fmt.Sscanf(name[at+1:], "%g", &weight); err != nil || weight <= 0 {
				fatalf("bad weight in -mix entry %q", name)
			}
			name = name[:at]
		}
		w, ok := parseWorkload(name)
		if !ok {
			fatalf("unknown workload %q in -mix", name)
		}
		p.Jobs = append(p.Jobs, harness.JobSpec{
			Workload:       w,
			Weight:         weight,
			StaggerMinutes: float64(i) * stagger,
		})
	}

	out, err := harness.RunJobs(p)
	if err != nil {
		fatalf("multi-job run: %v", err)
	}
	fmt.Println(out)
	for _, j := range out.Jobs {
		if j.ReportPath != "" {
			fmt.Printf("  report: %s\n", j.ReportPath)
		}
	}
	if out.AggregatePath != "" {
		fmt.Printf("  aggregate report: %s\n", out.AggregatePath)
	}
	if !out.OK() {
		fatalf("FAIL: a job timed out, errored, or violated an invariant")
	}

	if requireSpeedup > 0 {
		_, serial, err := harness.RunJobsSerial(p)
		if err != nil {
			fatalf("serial baseline: %v", err)
		}
		sp := out.Speedup(serial)
		fmt.Printf("serial total=%.1f min  speedup=%.2fx\n", serial, sp)
		if sp < requireSpeedup {
			fatalf("FAIL: speedup %.2fx below required %.2fx", sp, requireSpeedup)
		}
	}
}

func parseEngine(s string) (harness.Engine, bool) {
	switch strings.ToLower(s) {
	case "spark":
		return harness.EngineSpark, true
	case "spark-checkpoint", "ck", "checkpoint":
		return harness.EngineSparkCheckpoint, true
	case "pado":
		return harness.EnginePado, true
	}
	return 0, false
}

func parseWorkload(s string) (harness.Workload, bool) {
	switch strings.ToLower(s) {
	case "als":
		return harness.WorkloadALS, true
	case "mlr":
		return harness.WorkloadMLR, true
	case "mr":
		return harness.WorkloadMR, true
	}
	return 0, false
}

func parseRate(s string) (trace.Rate, bool) {
	switch strings.ToLower(s) {
	case "none":
		return trace.RateNone, true
	case "low":
		return trace.RateLow, true
	case "medium", "med":
		return trace.RateMedium, true
	case "high":
		return trace.RateHigh, true
	}
	return 0, false
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
