// Command padotop is a terminal monitor for a live pado master, in the
// spirit of top(1): point it at a process serving the introspection
// plane (padorun/padobench with -http) and it polls /state, rendering
// the admitted jobs, admission queue, node fleet, failure detector,
// and breakers in place once per interval.
//
// Usage:
//
//	padotop -addr 127.0.0.1:7777
//	padotop -addr 127.0.0.1:7777 -once        # one plain frame, no ANSI
//	padotop -addr 127.0.0.1:7777 -count 5     # five frames, then exit
//	padotop -addr 127.0.0.1:7777 -lint        # validate /metrics, exit
//
// -lint fetches the Prometheus page and runs the repo's text-format
// linter over it, exiting non-zero on violations — CI's http-smoke
// lane uses it as a scrape-compatibility check without needing
// promtool.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"pado/internal/metrics"
	"pado/internal/runtime"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7777", "introspection plane address (host:port)")
	interval := flag.Duration("interval", time.Second, "refresh interval")
	count := flag.Int("count", 0, "exit after this many frames (0 = run until interrupted)")
	once := flag.Bool("once", false, "print a single frame without clearing the screen and exit")
	lint := flag.Bool("lint", false, "fetch /metrics, lint the Prometheus text format, and exit")
	flag.Parse()

	if *lint {
		os.Exit(lintMetrics(*addr))
	}
	frames := *count
	if *once {
		frames = 1
	}
	client := &http.Client{Timeout: 10 * time.Second}
	for n := 0; frames == 0 || n < frames; n++ {
		if n > 0 {
			time.Sleep(*interval)
		}
		st, err := fetchState(client, *addr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "padotop: %v\n", err)
			os.Exit(1)
		}
		if !*once {
			// Home the cursor and clear below: repaint without flicker.
			fmt.Print("\x1b[H\x1b[2J")
		}
		render(os.Stdout, *addr, st)
	}
}

func lintMetrics(addr string) int {
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		fmt.Fprintf(os.Stderr, "padotop: fetch /metrics: %v\n", err)
		return 1
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		fmt.Fprintf(os.Stderr, "padotop: read /metrics: %v\n", err)
		return 1
	}
	if resp.StatusCode != http.StatusOK {
		fmt.Fprintf(os.Stderr, "padotop: /metrics = %d\n%s", resp.StatusCode, body)
		return 1
	}
	if err := metrics.LintPrometheus(strings.NewReader(string(body))); err != nil {
		fmt.Fprintf(os.Stderr, "padotop: /metrics lint failed:\n%v\n", err)
		return 1
	}
	fmt.Printf("padotop: /metrics OK (%d bytes, valid Prometheus text)\n", len(body))
	return 0
}

func fetchState(client *http.Client, addr string) (*runtime.ManagerState, error) {
	resp, err := client.Get("http://" + addr + "/state")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("/state = %d: %s", resp.StatusCode, strings.TrimSpace(string(body)))
	}
	var st runtime.ManagerState
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, fmt.Errorf("decode /state: %w", err)
	}
	return &st, nil
}

func render(w io.Writer, addr string, st *runtime.ManagerState) {
	fmt.Fprintf(w, "pado @ %s — %s — budget %d/%d reserved slots free",
		addr, st.TakenAt.Format("15:04:05.000"), st.BudgetFree, st.BudgetTotal)
	if st.Broken != "" {
		fmt.Fprintf(w, " — BROKEN: %s", st.Broken)
	}
	fmt.Fprintf(w, "\n\n")

	fmt.Fprintf(w, "JOBS (%d running, %d queued)\n", len(st.Jobs), len(st.Queue))
	fmt.Fprintf(w, "  %3s  %-14s %-6s %4s  %7s  %-18s %12s  %9s\n",
		"ID", "NAME", "POLICY", "WT", "STAGES", "TASKS w/r/c/C", "P95 COMPUTE", "RUNNING")
	for _, j := range st.Jobs {
		done := 0
		for _, stg := range j.Stages {
			if stg.Status == "done" {
				done++
			}
		}
		p95 := "-"
		if h, ok := j.Hists["task_compute_ns"]; ok && h.Count > 0 {
			p95 = fmtNanos(h.QuantileInterp(0.95))
		}
		fmt.Fprintf(w, "  %3d  %-14s %-6s %4.1f  %3d/%-3d  %-18s %12s  %9s\n",
			j.ID, clip(j.Name, 14), j.Policy, j.Weight, done, len(j.Stages),
			fmt.Sprintf("%d/%d/%d/%d", j.TasksWaiting, j.TasksRunning, j.TasksComputed, j.TasksCommitted),
			p95, fmtNanos(int64(j.RunningFor)))
	}
	for _, q := range st.Queue {
		fmt.Fprintf(w, "  %3d  %-14s queued (position %d, priority %d, demand %d)\n",
			q.ID, clip(q.Name, 14), q.Position, q.Priority, q.Demand)
	}

	// Scheduler efficiency: tasks scanned per scheduling round is the
	// per-event control-plane cost; with the incremental scheduler it
	// tracks actual launches, not job size.
	perRound := 0.0
	if st.Sched.Rounds > 0 {
		perRound = float64(st.Sched.TasksScanned) / float64(st.Sched.Rounds)
	}
	fmt.Fprintf(w, "\nSCHED  rounds=%d scanned=%d (%.2f/round)  slot-index hits=%d  runnable backlog=%d\n",
		st.Sched.Rounds, st.Sched.TasksScanned, perRound,
		st.Sched.SlotIndexHits, st.Sched.RunnableTasks)

	if s := st.Store; s != nil {
		hitRate := 0.0
		if s.Hits+s.Misses > 0 {
			hitRate = 100 * float64(s.Hits) / float64(s.Hits+s.Misses)
		}
		fmt.Fprintf(w, "\nSTORE  %d chunks / %d manifests, %s resident  probes %d hit / %d miss (%.0f%%)  commits=%d dedup=%d  gc %d runs / %d collected\n",
			s.Chunks, s.Manifests, fmtBytes(s.UsedBytes),
			s.Hits, s.Misses, hitRate, s.Commits, s.DedupPuts, s.GCRuns, s.GCCollected)
	}

	byKind := map[string][]runtime.NodeState{}
	for _, n := range st.Nodes {
		byKind[n.Kind] = append(byKind[n.Kind], n)
	}
	kinds := make([]string, 0, len(byKind))
	for k := range byKind {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	fmt.Fprintf(w, "\nNODES (%d)\n", len(st.Nodes))
	for _, k := range kinds {
		ns := byKind[k]
		free, running, suspects := 0, 0, 0
		for _, n := range ns {
			free += n.SlotsFree
			running += n.RunningTasks
			if n.Detector == "suspect" {
				suspects++
			}
		}
		fmt.Fprintf(w, "  %-9s %3d nodes  %3d slots free  %3d tasks running",
			k, len(ns), free, running)
		if suspects > 0 {
			fmt.Fprintf(w, "  [%d SUSPECT]", suspects)
		}
		fmt.Fprintln(w)
	}
	for _, n := range st.Nodes {
		if n.Detector == "suspect" {
			fmt.Fprintf(w, "  suspect: %s (last heartbeat %s ago, reports open: %s)\n",
				n.ID, fmtNanos(int64(n.LastBeatAge)), strings.Join(n.ReportedOpen, ","))
		}
	}

	openers := 0
	for _, b := range st.Breakers {
		if b.State != "closed" {
			openers++
		}
	}
	fmt.Fprintf(w, "\nBREAKERS (%d tracked, %d open)\n", len(st.Breakers), openers)
	for _, b := range st.Breakers {
		if b.State == "closed" {
			continue
		}
		fmt.Fprintf(w, "  %-12s %-9s fails=%d retry-budget=%.2f\n",
			b.Dest, b.State, b.Fails, b.RetryBudget)
	}
}

// fmtBytes renders a byte count compactly.
func fmtBytes(b int64) string {
	switch {
	case b >= 10<<20:
		return fmt.Sprintf("%.1fMiB", float64(b)/(1<<20))
	case b >= 10<<10:
		return fmt.Sprintf("%.1fKiB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}

// fmtNanos renders a nanosecond count as a compact duration.
func fmtNanos(ns int64) string {
	d := time.Duration(ns)
	switch {
	case d >= time.Minute:
		return d.Truncate(time.Second).String()
	case d >= time.Second:
		return d.Truncate(10 * time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Truncate(10 * time.Microsecond).String()
	}
	return d.String()
}

func clip(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}
