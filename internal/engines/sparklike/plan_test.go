package sparklike

import (
	"testing"

	"pado/internal/core"
	"pado/internal/dag"
	"pado/internal/workloads"
)

func TestPlanMRStages(t *testing.T) {
	cfg := workloads.MRConfig{Partitions: 6, LinesPerPart: 5, Docs: 10, Seed: 1}
	plan, err := BuildPlan(workloads.MR(cfg).Graph(), core.PlanConfig{ReduceParallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Classic shuffle split: map stage (read+parse fused), reduce stage.
	if len(plan.Stages) != 2 {
		t.Fatalf("stages = %d, want 2", len(plan.Stages))
	}
	mapStage, reduceStage := plan.Stages[0], plan.Stages[1]
	if len(mapStage.Ops) != 2 || mapStage.Parallelism != 6 {
		t.Errorf("map stage ops=%d P=%d", len(mapStage.Ops), mapStage.Parallelism)
	}
	if len(mapStage.OutBuckets) != 1 || mapStage.OutBuckets[0].N != 4 {
		t.Errorf("map stage buckets = %+v", mapStage.OutBuckets)
	}
	if mapStage.OutWhole {
		t.Error("map stage should not need whole outputs")
	}
	if reduceStage.Parallelism != 4 || !reduceStage.OutWhole || !reduceStage.Terminal() {
		t.Errorf("reduce stage = %+v", reduceStage)
	}
	if len(reduceStage.Inputs) != 1 || reduceStage.Inputs[0].Dep != dag.ManyToMany {
		t.Errorf("reduce inputs = %+v", reduceStage.Inputs)
	}
	if mapStage.Driver || reduceStage.Driver {
		t.Error("MR stages should not be driver-resident")
	}
}

func TestPlanMLRDriverStages(t *testing.T) {
	cfg := workloads.MLRConfig{Partitions: 4, SamplesPerPart: 4, Features: 8,
		Classes: 2, NonZeros: 2, Iterations: 1, LearningRate: 0.1, Seed: 1}
	plan, err := BuildPlan(workloads.MLR(cfg).Graph(), core.PlanConfig{ReduceParallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	g := plan.Graph
	byRoot := map[string]*SStage{}
	for _, s := range plan.Stages {
		byRoot[g.Vertex(s.Root).Name] = s
	}
	// Parallelism-1 stages (model creation, global aggregation, model
	// update) run on the driver like Spark's treeAggregate tail.
	for _, name := range []string{"create-1st-model", "aggregate-gradients-1", "compute-model-2"} {
		s := byRoot[name]
		if s == nil {
			t.Fatalf("no stage rooted at %s (have %v)", name, keys(byRoot))
		}
		if !s.Driver {
			t.Errorf("%s should be driver-resident", name)
		}
	}
	grad := byRoot["compute-gradient-1"]
	if grad == nil || grad.Driver {
		t.Fatal("gradient stage missing or driver-resident")
	}
	// The gradient stage re-runs the read in its fragment.
	if len(grad.Ops) != 2 {
		t.Errorf("gradient stage ops = %d, want 2 (read fused)", len(grad.Ops))
	}
	// Its model input is a broadcast from the driver stage.
	foundSide := false
	for _, in := range grad.Inputs {
		if in.Dep == dag.OneToMany {
			foundSide = true
		}
	}
	if !foundSide {
		t.Error("gradient stage missing broadcast input")
	}
}

func keys(m map[string]*SStage) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

func TestPlanParentChildLinks(t *testing.T) {
	cfg := workloads.ALSConfig{Partitions: 4, RatingsPerPart: 10, Users: 5,
		Items: 4, Rank: 2, Iterations: 1, Lambda: 0.1, Seed: 1}
	plan, err := BuildPlan(workloads.ALS(cfg).Graph(), core.PlanConfig{ReduceParallelism: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range plan.Stages {
		for _, pid := range s.Parents {
			if pid >= s.ID {
				t.Errorf("stage %d has non-topological parent %d", s.ID, pid)
			}
			found := false
			for _, cid := range plan.Stages[pid].Children {
				if cid == s.ID {
					found = true
				}
			}
			if !found {
				t.Errorf("stage %d missing child link to %d", pid, s.ID)
			}
		}
	}
	if len(plan.TerminalStages()) != 1 {
		t.Errorf("terminal stages = %v", plan.TerminalStages())
	}
}
