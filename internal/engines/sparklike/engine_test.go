package sparklike

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"pado/internal/cluster"
	"pado/internal/data"
	"pado/internal/dataflow"
	"pado/internal/trace"
	"pado/internal/vtime"
)

func buildWordCount(parts, recsPerPart int) (*dataflow.Pipeline, map[string]int64) {
	src := &dataflow.FuncSource{
		Partitions: parts,
		Gen: func(p int) []data.Record {
			rng := rand.New(rand.NewSource(int64(p) + 1))
			recs := make([]data.Record, recsPerPart)
			for i := range recs {
				recs[i] = data.KV(fmt.Sprintf("w%03d", rng.Intn(100)), int64(rng.Intn(10)))
			}
			return recs
		},
	}
	expect := make(map[string]int64)
	for p := 0; p < parts; p++ {
		for _, r := range src.Gen(p) {
			expect[r.Key.(string)] += r.Value.(int64)
		}
	}
	kv := data.KVCoder{K: data.StringCoder, V: data.Int64Coder}
	p := dataflow.NewPipeline()
	c := p.Read("read", src, kv)
	c.ParDo("map", dataflow.MapFunc(func(r data.Record) data.Record { return r }), kv).
		CombinePerKey("sum", dataflow.SumInt64Fn{}, kv)
	return p, expect
}

func newTestCluster(t *testing.T, transient, reserved int, rate trace.Rate) *cluster.Cluster {
	t.Helper()
	cl, err := cluster.New(cluster.Config{
		Transient:   transient,
		Reserved:    reserved,
		Slots:       4,
		Lifetimes:   trace.Lifetimes(rate),
		Scale:       vtime.NewScale(50 * time.Millisecond),
		MinLifetime: 30 * time.Millisecond,
		Seed:        7,
	})
	if err != nil {
		t.Fatalf("cluster: %v", err)
	}
	return cl
}

func checkWordCount(t *testing.T, res *Result, expect map[string]int64) {
	t.Helper()
	var recs []data.Record
	for _, out := range res.Outputs {
		recs = out
	}
	if len(recs) != len(expect) {
		t.Fatalf("got %d keys, want %d", len(recs), len(expect))
	}
	for _, r := range recs {
		if expect[r.Key.(string)] != r.Value.(int64) {
			t.Errorf("key %v: got %d want %d", r.Key, r.Value, expect[r.Key.(string)])
		}
	}
}

func TestWordCountPlain(t *testing.T) {
	p, expect := buildWordCount(8, 500)
	cl := newTestCluster(t, 4, 2, trace.RateNone)
	res, err := Run(context.Background(), cl, p.Graph(), Config{})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	checkWordCount(t, res, expect)
}

func TestWordCountPlainEvictions(t *testing.T) {
	p, expect := buildWordCount(8, 500)
	cl := newTestCluster(t, 4, 2, trace.RateLow)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	res, err := Run(ctx, cl, p.Graph(), Config{})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.Metrics.TimedOut {
		t.Fatal("timed out")
	}
	checkWordCount(t, res, expect)
}

func TestWordCountCheckpoint(t *testing.T) {
	p, expect := buildWordCount(8, 500)
	cl := newTestCluster(t, 4, 2, trace.RateNone)
	res, err := Run(context.Background(), cl, p.Graph(), Config{Checkpoint: true})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	checkWordCount(t, res, expect)
	if res.Metrics.BytesCheckpointed == 0 {
		t.Error("expected checkpoint traffic")
	}
}

func TestWordCountCheckpointEvictions(t *testing.T) {
	p, expect := buildWordCount(8, 500)
	cl := newTestCluster(t, 4, 2, trace.RateHigh)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	res, err := Run(ctx, cl, p.Graph(), Config{Checkpoint: true})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.Metrics.TimedOut {
		t.Fatal("timed out")
	}
	checkWordCount(t, res, expect)
}
