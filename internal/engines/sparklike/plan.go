// Package sparklike implements the baseline data processing engine of the
// paper's evaluation (§5.1.2): a Spark-2.0-style runtime with
// shuffle-boundary stages, map outputs kept on executor-local storage,
// pull-based shuffles, and lineage-driven recomputation of lost
// partitions — the mechanism that produces cascading recomputations
// ("critical chains") under frequent evictions.
//
// Checkpoint mode reproduces the paper's Spark-checkpoint baseline, which
// encompasses Flint's ideas: every stage output is asynchronously copied
// to a stable-storage service hosted on the reserved nodes, and child
// stages pull their inputs from that storage, trading cascades for
// checkpoint traffic funneled through a handful of storage nodes.
package sparklike

import (
	"fmt"
	"sort"

	"pado/internal/core"
	"pado/internal/dag"
)

// SInput is a cross-stage dependency of one operator in a stage.
type SInput struct {
	ToOp       dag.VertexID
	FromStage  int
	FromVertex dag.VertexID
	Dep        dag.DepType
	Tag        string
}

// BucketSpec asks a stage to write its output bucketed for a shuffle
// consumer.
type BucketSpec struct {
	Consumer dag.VertexID
	N        int // consumer parallelism
}

// SStage is a Spark-style stage: a fused chain of narrow (one-to-one)
// operators ending at a root whose output is materialized, expanded into
// Parallelism tasks.
type SStage struct {
	ID   int
	Root dag.VertexID
	// Ops in topological order, root last. Operators shared with other
	// stages (e.g. a Read feeding several iterations) are recomputed by
	// each stage, or served from the executor cache when marked cached.
	Ops         []dag.VertexID
	Parallelism int
	// Driver marks parallelism-1 stages that run on the master process,
	// like Spark's driver-side aggregations and broadcasts; the master
	// is never evicted (§5.2.2).
	Driver bool
	// Inputs are cross-stage dependencies of any operator in the stage.
	Inputs []SInput
	// OutWhole asks for whole output partitions (consumed by o-o, o-m,
	// m-o edges, or job collection).
	OutWhole bool
	// OutBuckets lists shuffle consumers needing bucketed output.
	OutBuckets []BucketSpec
	Parents    []int
	Children   []int
}

// Terminal reports whether the stage output is the job output.
func (s *SStage) Terminal() bool { return len(s.Children) == 0 }

// InputsTo returns the cross-stage inputs of op.
func (s *SStage) InputsTo(op dag.VertexID) []SInput {
	var out []SInput
	for _, in := range s.Inputs {
		if in.ToOp == op {
			out = append(out, in)
		}
	}
	return out
}

// SPlan is the engine's physical plan.
type SPlan struct {
	Graph  *dag.Graph
	Stages []*SStage
}

// TerminalStages lists sink stage ids.
func (p *SPlan) TerminalStages() []int {
	var out []int
	for _, s := range p.Stages {
		if s.Terminal() {
			out = append(out, s.ID)
		}
	}
	return out
}

// isRoot decides whether a vertex materializes a stage output: it
// consumes a shuffle/broadcast/aggregation, feeds one, or is a sink.
func isRoot(g *dag.Graph, id dag.VertexID) bool {
	for _, e := range g.InEdges(id) {
		if e.Dep != dag.OneToOne {
			return true
		}
	}
	for _, e := range g.OutEdges(id) {
		if e.Dep != dag.OneToOne {
			return true
		}
	}
	return len(g.OutEdges(id)) == 0
}

// BuildPlan partitions the logical DAG at shuffle boundaries and resolves
// stage inputs and output formats.
func BuildPlan(g *dag.Graph, cfg core.PlanConfig) (*SPlan, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if err := core.ResolveParallelism(g, cfg); err != nil {
		return nil, err
	}
	order, err := g.TopoSort()
	if err != nil {
		return nil, err
	}

	plan := &SPlan{Graph: g}
	stageOf := make(map[dag.VertexID]*SStage)
	for _, id := range order {
		if !isRoot(g, id) {
			continue
		}
		st := &SStage{ID: len(plan.Stages), Root: id}
		plan.Stages = append(plan.Stages, st)
		stageOf[id] = st

		inStage := make(map[dag.VertexID]bool)
		parents := make(map[int]bool)
		var add func(op dag.VertexID)
		add = func(op dag.VertexID) {
			if inStage[op] {
				return
			}
			inStage[op] = true
			for _, e := range g.InEdges(op) {
				from := e.From
				if e.Dep == dag.OneToOne && !isRoot(g, from) {
					add(from)
					continue
				}
				// Cross-stage input from a root's materialized output.
				ps, ok := stageOf[from]
				if !ok {
					panic(fmt.Sprintf("sparklike: parent %q of %q has no stage",
						g.Vertex(from).Name, g.Vertex(op).Name))
				}
				st.Inputs = append(st.Inputs, SInput{
					ToOp: op, FromStage: ps.ID, FromVertex: from, Dep: e.Dep, Tag: e.Tag,
				})
				parents[ps.ID] = true
			}
			st.Ops = append(st.Ops, op)
		}
		add(id)
		st.Parallelism = g.Vertex(id).Parallelism
		st.Driver = st.Parallelism == 1
		for pid := range parents {
			st.Parents = append(st.Parents, pid)
		}
		sort.Ints(st.Parents)
		for _, pid := range st.Parents {
			plan.Stages[pid].Children = append(plan.Stages[pid].Children, st.ID)
		}
	}

	// Verify intra-stage parallelism and resolve output formats.
	for _, st := range plan.Stages {
		for _, op := range st.Ops {
			if p := g.Vertex(op).Parallelism; p != st.Parallelism {
				return nil, fmt.Errorf("sparklike: stage %d op %q parallelism %d != stage %d",
					st.ID, g.Vertex(op).Name, p, st.Parallelism)
			}
		}
		out := g.OutEdges(st.Root)
		if len(out) == 0 {
			st.OutWhole = true
		}
		seen := map[dag.VertexID]bool{}
		for _, e := range out {
			if e.Dep == dag.ManyToMany {
				if !seen[e.To] {
					seen[e.To] = true
					st.OutBuckets = append(st.OutBuckets, BucketSpec{
						Consumer: e.To, N: g.Vertex(e.To).Parallelism,
					})
				}
			} else {
				st.OutWhole = true
			}
		}
	}
	return plan, nil
}
