package sparklike

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"pado/internal/dag"
	"pado/internal/data"
	"pado/internal/dataflow"
	"pado/internal/exec"
	"pado/internal/metrics"
	"pado/internal/obs"
	"pado/internal/recache"
	"pado/internal/simnet"
	"pado/internal/storage"
)

// Block fetch wire protocol (the engine's only data-plane RPC; shuffles
// are pull-based).
const (
	frameFetch = 'F'
	respOK     = 'K'
	respNo     = 'N'
)

var errBlockNotFound = errors.New("sparklike: block not found")

// storageLoc is the location sentinel for checkpointed blocks.
const storageLoc = "@storage"

// driverLoc is the location of driver-resident stage outputs.
const driverLoc = "master"

func wholeID(stage, part int) string { return fmt.Sprintf("sw/%d/%d", stage, part) }
func bucketID(stage, part int, consumer dag.VertexID, bucket int) string {
	return fmt.Sprintf("sb/%d/%d/%d/%d", stage, part, consumer, bucket)
}

// serveStore answers block-fetch requests from a local store until stop.
func serveStore(l *simnet.Listener, store *storage.LocalStore, stop <-chan struct{}) {
	for {
		conn, err := l.Accept(stop)
		if err != nil {
			return
		}
		go func(conn *simnet.Conn) {
			defer conn.Close()
			d := data.NewDecoder(conn)
			e := data.NewEncoder(conn)
			for {
				op, err := d.Byte()
				if err != nil || op != frameFetch {
					return
				}
				id, err := d.String()
				if err != nil {
					return
				}
				payload, ok := store.Get(id)
				if !ok {
					if e.Byte(respNo) != nil || e.Flush() != nil {
						return
					}
					continue
				}
				if e.Byte(respOK) != nil || e.Bytes(payload) != nil || e.Flush() != nil {
					return
				}
			}
		}(conn)
	}
}

// fetchFrom pulls a block from a peer's local store.
func fetchFrom(net *simnet.Network, from, owner, id string) ([]byte, error) {
	conn, err := net.Dial(from, owner)
	if err != nil {
		return nil, fmt.Errorf("fetch %q from %s: %w", id, owner, err)
	}
	defer conn.Close()
	e := data.NewEncoder(conn)
	if err := e.Byte(frameFetch); err != nil {
		return nil, err
	}
	if err := e.String(id); err != nil {
		return nil, err
	}
	if err := e.Flush(); err != nil {
		return nil, err
	}
	d := data.NewDecoder(conn)
	resp, err := d.Byte()
	if err != nil {
		return nil, fmt.Errorf("fetch %q from %s: %w", id, owner, err)
	}
	if resp != respOK {
		return nil, fmt.Errorf("fetch %q from %s: %w", id, owner, errBlockNotFound)
	}
	return d.Bytes(0)
}

// sTaskSpec describes one task attempt handed to an executor (or run on
// the driver for parallelism-1 stages).
type sTaskSpec struct {
	Stage   int
	Index   int
	Attempt int
	// InputLocs maps parent stage id to the executor holding each
	// partition ("@storage" in checkpoint mode, "master" for driver
	// stage outputs).
	InputLocs map[int][]string
}

type taskRef struct {
	Stage, Index, Attempt int
}

func (s sTaskSpec) ref() taskRef { return taskRef{Stage: s.Stage, Index: s.Index, Attempt: s.Attempt} }

// executor runs stage tasks: it fetches inputs (shuffle pulls,
// broadcasts, aligned partitions), interprets the fused operator chain,
// and materializes the output blocks in its local store — where they
// remain until pulled, and die with the container on eviction.
type executor struct {
	id     string
	node   *simnet.Node
	net    *simnet.Network
	plan   *SPlan
	cfg    Config
	met    *metrics.Job
	tr     *obs.Buf // per-executor trace buffer (nil = tracing off)
	events chan<- event
	store  *storage.LocalStore
	cache  *recache.Cache
	flight *recache.Flight
	cpu    *simnet.Limiter // nil = unlimited compute capacity
	ck     *storage.Client // non-nil in checkpoint mode

	stop     chan struct{}
	stopOnce sync.Once
}

func newExecutor(id string, node *simnet.Node, net *simnet.Network, plan *SPlan, cfg Config,
	met *metrics.Job, events chan<- event, ck *storage.Client, cpu *simnet.Limiter) (*executor, error) {

	ex := &executor{
		id: id, node: node, net: net, plan: plan, cfg: cfg, met: met,
		tr:     cfg.Tracer.Buf(),
		events: events,
		store:  storage.NewLocalStore(),
		cache:  recache.New(cfg.cacheCapacity()),
		flight: recache.NewFlight(),
		cpu:    cpu,
		ck:     ck,
		stop:   make(chan struct{}),
	}
	l, err := node.Listen()
	if err != nil {
		return nil, err
	}
	go serveStore(l, ex.store, ex.stop)
	go func() {
		<-node.Down()
		ex.shutdown()
	}()
	return ex, nil
}

func (ex *executor) shutdown() {
	ex.stopOnce.Do(func() { close(ex.stop) })
}

func (ex *executor) stopped() bool {
	select {
	case <-ex.stop:
		return true
	default:
		return false
	}
}

func (ex *executor) send(ev event) {
	select {
	case ex.events <- ev:
	case <-ex.stop:
	}
}

// Launch runs a task attempt on its own goroutine.
func (ex *executor) Launch(spec sTaskSpec) {
	go func() {
		if err := runTask(taskEnv{
			execID: ex.id, net: ex.net, plan: ex.plan, cfg: ex.cfg, met: ex.met, tr: ex.tr,
			store: ex.store, cache: ex.cache, flight: ex.flight, cpu: ex.cpu, ck: ex.ck,
			stop: ex.stop, send: ex.send, stopped: ex.stopped, cacheable: true,
		}, spec); err != nil && !ex.stopped() {
			reportTaskError(ex.send, spec, ex.id, err)
		}
	}()
}

// taskEnv abstracts where a task runs: a regular executor or the driver.
type taskEnv struct {
	execID    string
	net       *simnet.Network
	plan      *SPlan
	cfg       Config
	met       *metrics.Job
	tr        *obs.Buf
	store     *storage.LocalStore
	cache     *recache.Cache
	flight    *recache.Flight
	cpu       *simnet.Limiter
	ck        *storage.Client
	stop      <-chan struct{}
	send      func(event)
	stopped   func() bool
	cacheable bool
}

// fetchFailure marks a failed pull so the master can resubmit the lost
// parent partition (the lineage/cascade path). Owner names the executor
// the stale location pointed at, so the master can unregister everything
// it held, like Spark's MapOutputTracker does on a FetchFailed.
type fetchFailure struct {
	FromStage int
	Part      int
	Owner     string
	Err       error
}

func (f *fetchFailure) Error() string {
	return fmt.Sprintf("input stage %d partition %d unavailable: %v", f.FromStage, f.Part, f.Err)
}

func reportTaskError(send func(event), spec sTaskSpec, exec string, err error) {
	var ff *fetchFailure
	if errors.As(err, &ff) {
		send(evFetchFailed{ref: spec.ref(), Exec: exec, FromStage: ff.FromStage, Part: ff.Part, Owner: ff.Owner})
		return
	}
	send(evTaskFailed{ref: spec.ref(), Exec: exec, Err: err, Fatal: isFatal(err)})
}

func isFatal(err error) bool {
	for _, t := range []error{simnet.ErrNodeDown, simnet.ErrNoSuchNode, simnet.ErrConnClosed,
		simnet.ErrNotListening, simnet.ErrLimiterClosed, simnet.ErrInjected, errBlockNotFound} {
		if errors.Is(err, t) {
			return false
		}
	}
	return true
}

// runTask executes one stage task end to end.
func runTask(env taskEnv, spec sTaskSpec) error {
	st := env.plan.Stages[spec.Stage]
	g := env.plan.Graph

	in := exec.Inputs{
		Ext:   make(map[dag.VertexID]map[string][]data.Record),
		Sides: make(map[dag.VertexID]map[string][]data.Record),
		Read:  make(map[dag.VertexID]func() (dataflow.Iterator, error)),
	}
	for _, opID := range st.Ops {
		if rd, ok := g.Vertex(opID).Op.(*dataflow.ReadOp); ok {
			opID, rd := opID, rd
			in.Read[opID] = func() (dataflow.Iterator, error) { return env.openRead(st.ID, opID, rd, spec.Index) }
		}
		for _, si := range st.InputsTo(opID) {
			if err := env.fetchInput(st, si, spec, in); err != nil {
				return err
			}
		}
	}

	if env.cpu != nil {
		in.Throttle = func(records int) error { return env.cpu.Acquire(records, env.stop) }
	}
	outs, err := exec.RunFragment(g, st.Ops, in)
	if err != nil {
		return err
	}

	// Materialize output blocks.
	root := outs[st.Root]
	coder, err := dataflow.OutputCoder(g.Vertex(st.Root))
	if err != nil {
		return err
	}
	var ckBlocks []string
	if st.OutWhole {
		payload, err := data.EncodeAll(coder, root)
		if err != nil {
			return err
		}
		id := wholeID(st.ID, spec.Index)
		env.store.Put(id, payload)
		ckBlocks = append(ckBlocks, id)
	}
	for _, bs := range st.OutBuckets {
		groups := make([][]data.Record, bs.N)
		for _, r := range root {
			p := data.Partition(r.Key, bs.N)
			groups[p] = append(groups[p], r)
		}
		for b := range groups {
			payload, err := data.EncodeAll(coder, groups[b])
			if err != nil {
				return err
			}
			id := bucketID(st.ID, spec.Index, bs.Consumer, b)
			env.store.Put(id, payload)
			ckBlocks = append(ckBlocks, id)
		}
	}

	env.send(evTaskDone{ref: spec.ref(), Exec: env.execID})

	// Checkpoint mode: asynchronously copy the blocks to stable storage
	// (§5.1.2, task-level asynchronous checkpointing at shuffle
	// boundaries). The commit event fires only when all copies landed.
	if env.ck != nil && !st.Driver {
		go func() {
			env.tr.Emit(obs.Event{Kind: obs.PushStarted, Stage: spec.Stage, Task: spec.Index,
				Attempt: spec.Attempt, Exec: env.execID, Note: "checkpoint"})
			for _, id := range ckBlocks {
				payload, ok := env.store.Get(id)
				if !ok {
					return // evicted mid-checkpoint
				}
				if err := env.ck.Put(id, payload); err != nil {
					return
				}
				env.met.BytesCheckpointed.Add(int64(len(payload)))
			}
			env.send(evCheckpointed{ref: spec.ref()})
		}()
	}
	return nil
}

func (env taskEnv) openRead(stage int, opID dag.VertexID, rd *dataflow.ReadOp, part int) (dataflow.Iterator, error) {
	useCache := rd.Cached && !env.cfg.DisableCache && env.cacheable
	key := recache.Key{Vertex: opID, Partition: part}
	if useCache {
		if recs, ok := env.cache.Get(key); ok {
			env.met.CacheHits.Add(1)
			env.tr.Emit(obs.Event{Kind: obs.CacheHit, Stage: stage, Task: part,
				Exec: env.execID, Note: "read"})
			return (&dataflow.SliceSource{Parts: [][]data.Record{recs}}).Open(0)
		}
		env.met.CacheMisses.Add(1)
		env.tr.Emit(obs.Event{Kind: obs.CacheMiss, Stage: stage, Task: part,
			Exec: env.execID, Note: "read"})
	}
	it, err := rd.Source.Open(part)
	if err != nil {
		return nil, err
	}
	defer it.Close()
	var recs []data.Record
	for {
		r, ok, err := it.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		recs = append(recs, r)
	}
	// External reads cost real capacity, paid on actual reads only.
	if env.cpu != nil {
		cost := 1
		if rd.Cost > 0 {
			cost = rd.Cost
		}
		if err := env.cpu.Acquire(len(recs)*cost, env.stop); err != nil {
			return nil, err
		}
	}
	if useCache {
		env.cache.Put(key, recs)
		env.send(evCached{Exec: env.execID, Key: key})
	}
	return (&dataflow.SliceSource{Parts: [][]data.Record{recs}}).Open(0)
}

// fetchInput resolves one cross-stage input of a task.
func (env taskEnv) fetchInput(st *SStage, si SInput, spec sTaskSpec, in exec.Inputs) error {
	locs, ok := spec.InputLocs[si.FromStage]
	if !ok {
		return fmt.Errorf("sparklike: missing locations for stage %d", si.FromStage)
	}
	coder, err := dataflow.OutputCoder(env.plan.Graph.Vertex(si.FromVertex))
	if err != nil {
		return err
	}

	fetchOne := func(part int, id string) ([]data.Record, error) {
		// Spark-style fetch retries: the location may be stale (the
		// executor was evicted); the failure is only reported after
		// the configured retries, each preceded by a wait.
		env.tr.Emit(obs.Event{Kind: obs.FetchStarted, Stage: si.FromStage, Frag: part,
			Task: part, Exec: env.execID})
		var payload []byte
		var err error
		for attempt := 0; ; attempt++ {
			payload, err = env.fetchBlock(locs[part], id)
			if err == nil {
				break
			}
			if attempt >= env.cfg.FetchRetries || env.stopped() {
				return nil, &fetchFailure{FromStage: si.FromStage, Part: part, Owner: locs[part], Err: err}
			}
			select {
			case <-time.After(env.cfg.FetchRetryWait):
			case <-env.stop:
				return nil, &fetchFailure{FromStage: si.FromStage, Part: part, Owner: locs[part], Err: err}
			}
		}
		env.met.BytesFetched.Add(int64(len(payload)))
		env.tr.Emit(obs.Event{Kind: obs.FetchDone, Stage: si.FromStage, Frag: part,
			Task: part, Exec: env.execID, Bytes: int64(len(payload))})
		return data.DecodeAll(coder, payload)
	}

	fetchAllWhole := func() ([]data.Record, error) {
		return fetchParallel(len(locs), func(p int) ([]data.Record, error) {
			return fetchOne(p, wholeID(si.FromStage, p))
		})
	}

	var recs []data.Record
	switch si.Dep {
	case dag.OneToOne:
		recs, err = fetchOne(spec.Index, wholeID(si.FromStage, spec.Index))
	case dag.OneToMany:
		// Broadcasts are cached per executor, like Spark's broadcast
		// variables: concurrent slots share one fetch.
		if env.cacheable && !env.cfg.DisableCache && env.flight != nil {
			key := recache.Key{Vertex: si.FromVertex, Partition: -1}
			if cached, ok := env.cache.Get(key); ok {
				env.met.CacheHits.Add(1)
				env.tr.Emit(obs.Event{Kind: obs.CacheHit, Stage: si.FromStage, Frag: -1,
					Task: -1, Exec: env.execID, Note: "broadcast"})
				recs = cached
				break
			}
			env.met.CacheMisses.Add(1)
			env.tr.Emit(obs.Event{Kind: obs.CacheMiss, Stage: si.FromStage, Frag: -1,
				Task: -1, Exec: env.execID, Note: "broadcast"})
			recs, _, err = env.flight.Do(key, func() ([]data.Record, error) {
				out, e := fetchAllWhole()
				if e != nil {
					return nil, e
				}
				env.cache.Put(key, out)
				return out, nil
			})
			break
		}
		recs, err = fetchAllWhole()
	case dag.ManyToOne:
		recs, err = fetchAllWhole()
	case dag.ManyToMany:
		// Shuffle reads pull buckets from every map location with
		// bounded parallelism, like Spark's shuffle fetcher.
		recs, err = fetchParallel(len(locs), func(p int) ([]data.Record, error) {
			return fetchOne(p, bucketID(si.FromStage, p, si.ToOp, spec.Index))
		})
	}
	if err != nil {
		return err
	}
	if si.Dep == dag.OneToMany {
		if m := in.Sides[si.ToOp]; m == nil {
			in.Sides[si.ToOp] = map[string][]data.Record{si.Tag: recs}
		} else {
			m[si.Tag] = append(m[si.Tag], recs...)
		}
		return nil
	}
	if m := in.Ext[si.ToOp]; m == nil {
		in.Ext[si.ToOp] = map[string][]data.Record{si.Tag: recs}
	} else {
		m[si.Tag] = append(m[si.Tag], recs...)
	}
	return nil
}

func (env taskEnv) fetchBlock(owner, id string) ([]byte, error) {
	if owner == storageLoc {
		return env.ck.Get(id)
	}
	return fetchFrom(env.net, env.execID, owner, id)
}

// fetchParallel pulls n partitions with bounded concurrency, preserving
// partition order in the concatenated result.
func fetchParallel(n int, fetch func(p int) ([]data.Record, error)) ([]data.Record, error) {
	const maxInFlight = 8
	type res struct {
		p    int
		recs []data.Record
	}
	sem := make(chan struct{}, maxInFlight)
	results := make(chan res, n)
	errs := make(chan error, n)
	for p := 0; p < n; p++ {
		sem <- struct{}{}
		go func(p int) {
			defer func() { <-sem }()
			recs, err := fetch(p)
			if err != nil {
				errs <- err
				return
			}
			results <- res{p: p, recs: recs}
		}(p)
	}
	parts := make([]res, 0, n)
	for i := 0; i < n; i++ {
		select {
		case err := <-errs:
			return nil, err
		case r := <-results:
			parts = append(parts, r)
		}
	}
	sort.Slice(parts, func(i, j int) bool { return parts[i].p < parts[j].p })
	var out []data.Record
	for _, r := range parts {
		out = append(out, r.recs...)
	}
	return out, nil
}
