package sparklike

import (
	"context"
	"fmt"
	"time"

	"pado/internal/cluster"
	"pado/internal/core"
	"pado/internal/dag"
	"pado/internal/data"
	"pado/internal/dataflow"
	"pado/internal/metrics"
	"pado/internal/obs"
	"pado/internal/recache"
	"pado/internal/simnet"
	"pado/internal/storage"
)

// Config parameterizes the baseline engine.
type Config struct {
	// Plan carries physical-planning knobs (reduce parallelism).
	Plan core.PlanConfig
	// Tracer, when non-nil, records the run's structured event stream
	// with the same schema the Pado runtime emits, so traces from both
	// engines are directly comparable. Nil disables tracing.
	Tracer *obs.Tracer
	// Checkpoint enables the Spark-checkpoint baseline: stage outputs
	// are asynchronously checkpointed to a stable-storage service on
	// the reserved nodes, and children pull from that service. Without
	// it, executors run on both container kinds and lost partitions are
	// recomputed through lineage (plain Spark).
	Checkpoint bool
	// StorageDiskBW limits each storage node's disk bandwidth in
	// checkpoint mode (bytes/second; 0 = unlimited).
	StorageDiskBW int64
	// FetchRetries and FetchRetryWait model Spark's shuffle-fetch retry
	// behavior (spark.shuffle.io.maxRetries / retryWait): a fetch from
	// a lost executor is retried before the task reports the failure,
	// which is how lost outputs are discovered — the driver's map
	// output locations go stale silently.
	FetchRetries   int
	FetchRetryWait time.Duration
	// DisableCache turns off RDD-style caching of Read sources.
	DisableCache  bool
	CacheCapacity int64
	EventQueue    int
}

func (c Config) cacheCapacity() int64 {
	if c.CacheCapacity <= 0 {
		return 64 << 20
	}
	return c.CacheCapacity
}

func (c Config) eventQueue() int {
	if c.EventQueue <= 0 {
		return 8192
	}
	return c.EventQueue
}

// Result mirrors the Pado runtime's result shape.
type Result struct {
	Outputs map[dag.VertexID][]data.Record
	Metrics metrics.Snapshot
	Plan    *SPlan
}

// Events.
type event interface{}

type evLaunched struct{ C *cluster.Container }
type evGone struct{ C *cluster.Container } // eviction or failure

type evTaskDone struct {
	ref  taskRef
	Exec string
}

type evCheckpointed struct{ ref taskRef }

type evTaskFailed struct {
	ref   taskRef
	Exec  string
	Err   error
	Fatal bool
}

// evFetchFailed reports a lost input partition; the master resubmits the
// producing task, which may in turn fail its own fetches — the cascading
// recomputation chain of §2.2.
type evFetchFailed struct {
	ref       taskRef
	Exec      string
	FromStage int
	Part      int
	// Owner is the stale location the fetch targeted.
	Owner string
}

type evCached struct {
	Exec string
	Key  recache.Key
}

type evCollected struct {
	outputs map[dag.VertexID][]data.Record
	err     error
	failed  []evFetchFailed
}

// Task state.
type tState int

const (
	tWaiting tState = iota
	tRunning
	tDone
)

type sTask struct {
	state   tState
	exec    string
	attempt int
	fails   int
	ck      bool // checkpoint landed (checkpoint mode only)
}

type sStageRun struct {
	ps      *SStage
	tasks   []*sTask
	started bool
}

// master drives the baseline engine's DAG scheduler.
type master struct {
	cfg  Config
	plan *SPlan
	cl   *cluster.Cluster
	net  *simnet.Network
	met  *metrics.Job
	tr   *obs.Buf // trace buffer (nil = tracing off); Emit is mutex-guarded

	events chan event

	execs       map[string]*executor
	order       []string
	rr          int
	slotsFree   map[string]int
	assignments map[taskRef]string
	cacheIndex  map[recache.Key]map[string]bool

	stages []*sStageRun

	driverStore *storage.LocalStore
	driverCk    *storage.Client
	ckSvc       *storage.Service

	collecting bool
	finished   bool
	failErr    error
	outputs    map[dag.VertexID][]data.Record
}

const maxTaskFailures = 1000

// Run compiles the logical DAG at shuffle boundaries and executes it.
// Like the Pado runtime, Run owns the cluster: one job per cluster value.
func Run(ctx context.Context, cl *cluster.Cluster, g *dag.Graph, cfg Config) (*Result, error) {
	plan, err := BuildPlan(g, cfg.Plan)
	if err != nil {
		return nil, err
	}
	met := &metrics.Job{}
	cfg.Tracer.FeedCounters(met)
	m := &master{
		cfg: cfg, plan: plan, cl: cl, net: cl.Net(), met: met,
		tr:          cfg.Tracer.Buf(),
		events:      make(chan event, cfg.eventQueue()),
		execs:       make(map[string]*executor),
		slotsFree:   make(map[string]int),
		assignments: make(map[taskRef]string),
		cacheIndex:  make(map[recache.Key]map[string]bool),
		driverStore: storage.NewLocalStore(),
	}
	m.stages = make([]*sStageRun, len(plan.Stages))
	for i, ps := range plan.Stages {
		s := &sStageRun{ps: ps, tasks: make([]*sTask, ps.Parallelism)}
		for j := range s.tasks {
			s.tasks[j] = &sTask{state: tWaiting}
		}
		m.stages[i] = s
	}
	defer cl.Stop()

	// Serve driver-resident stage outputs from the master node.
	mn := cl.MasterNode()
	l, err := mn.Listen()
	if err != nil {
		return nil, err
	}
	stopServe := make(chan struct{})
	defer close(stopServe)
	go serveStore(l, m.driverStore, stopServe)

	if err := cl.Start(m); err != nil {
		return nil, err
	}

	// Checkpoint mode: the reserved containers host the stable-storage
	// service instead of executors (§5.1.2: "uses reserved containers
	// to run a non-replicated GlusterFS cluster").
	if cfg.Checkpoint {
		var nodes []*simnet.Node
		for _, c := range cl.Containers(cluster.Reserved) {
			nodes = append(nodes, c.Node)
		}
		if len(nodes) == 0 {
			return nil, fmt.Errorf("sparklike: checkpoint mode needs reserved containers")
		}
		m.ckSvc = storage.NewServiceDisk(nodes, cfg.StorageDiskBW)
		if err := m.ckSvc.Start(); err != nil {
			return nil, err
		}
		// Pooled transport: checkpoint traffic reuses one stream per
		// storage node instead of dialing per block.
		ckt := storage.NewPoolTransport(m.net, "master")
		defer ckt.Close()
		m.driverCk = storage.NewClientTransport(ckt, m.ckSvc)
	}

	start := time.Now()
	timedOut := false
loop:
	for !m.finished {
		select {
		case <-ctx.Done():
			timedOut = true
			break loop
		case ev := <-m.events:
			m.handle(ev)
		}
	}
	jct := time.Since(start)

	if m.failErr != nil {
		return nil, m.failErr
	}
	if m.ckSvc != nil {
		met.Gauge(metrics.GaugeStorageUsedBytes).Set(m.ckSvc.UsedBytes())
	}
	res := &Result{Plan: plan, Metrics: met.Snapshot(jct, timedOut)}
	if timedOut {
		return res, nil
	}
	res.Outputs = m.outputs
	return res, nil
}

func (m *master) ContainerLaunched(c *cluster.Container) { m.events <- evLaunched{C: c} }
func (m *master) ContainerEvicted(c *cluster.Container)  { m.events <- evGone{C: c} }
func (m *master) ContainerFailed(c *cluster.Container)   { m.events <- evGone{C: c} }

func (m *master) abort(err error) {
	if m.failErr == nil {
		m.failErr = err
	}
	m.finished = true
}

func (m *master) handle(ev event) {
	switch e := ev.(type) {
	case evLaunched:
		m.onLaunched(e.C)
	case evGone:
		m.onGone(e.C)
	case evTaskDone:
		m.onTaskDone(e)
	case evCheckpointed:
		m.onCheckpointed(e)
	case evTaskFailed:
		m.onTaskFailed(e)
	case evFetchFailed:
		m.onFetchFailed(e)
	case evCached:
		m.onCached(e)
	case evCollected:
		m.onCollected(e)
	}
	if !m.finished {
		m.schedule()
	}
}

func (m *master) onLaunched(c *cluster.Container) {
	// Checkpoint mode keeps executors off the reserved (storage) nodes.
	if m.cfg.Checkpoint && c.Kind == cluster.Reserved {
		return
	}
	var ck *storage.Client
	if m.ckSvc != nil {
		// Per-executor pooled transport; its streams die with the
		// container's node, so eviction cleans up naturally.
		ck = storage.NewClientTransport(storage.NewPoolTransport(m.net, c.ID), m.ckSvc)
	}
	ex, err := newExecutor(c.ID, c.Node, m.net, m.plan, m.cfg, m.met, m.events, ck, c.CPU)
	if err != nil {
		return
	}
	m.tr.Emit(obs.Event{Kind: obs.ContainerUp, Exec: c.ID, Note: c.Kind.String()})
	m.execs[c.ID] = ex
	m.order = append(m.order, c.ID)
	m.slotsFree[c.ID] = c.Slots
}

func (m *master) onGone(c *cluster.Container) {
	if _, ok := m.execs[c.ID]; !ok {
		return
	}
	m.met.Evictions.Add(1)
	m.tr.Emit(obs.Event{Kind: obs.ContainerEvicted, Exec: c.ID})
	if ex := m.execs[c.ID]; ex != nil {
		ex.shutdown()
	}
	delete(m.execs, c.ID)
	delete(m.slotsFree, c.ID)
	m.order = removeString(m.order, c.ID)
	for key, set := range m.cacheIndex {
		delete(set, c.ID)
		if len(set) == 0 {
			delete(m.cacheIndex, key)
		}
	}
	for ref, exec := range m.assignments {
		if exec == c.ID {
			delete(m.assignments, ref)
		}
	}
	// The driver learns of the executor loss from the resource manager
	// (Spark's onExecutorLost) and unregisters everything it held:
	// running tasks and finished-but-unpulled outputs go back to
	// waiting. Recomputation stays lazy — a lost partition is rebuilt
	// only when lineage demands it — and tasks already in flight race
	// the notification and burn shuffle-fetch retries against the dead
	// node first.
	for _, s := range m.stages {
		for i, t := range s.tasks {
			if t.exec != c.ID {
				continue
			}
			switch {
			case t.state == tRunning:
				m.requeue(s.ps.ID, i, t)
			case t.state == tDone && !(m.cfg.Checkpoint && t.ck):
				m.requeue(s.ps.ID, i, t)
			}
		}
	}
}

func removeString(s []string, v string) []string {
	out := s[:0]
	for _, x := range s {
		if x != v {
			out = append(out, x)
		}
	}
	return out
}

func (m *master) requeue(stage, index int, t *sTask) {
	t.state = tWaiting
	t.exec = ""
	t.ck = false
	t.attempt++
	m.met.RelaunchedTasks.Add(1)
	m.tr.Emit(obs.Event{Kind: obs.TaskRelaunched, Stage: stage, Task: index, Attempt: t.attempt})
}

func (m *master) taskAt(ref taskRef) (*sStageRun, *sTask) {
	if ref.Stage < 0 || ref.Stage >= len(m.stages) {
		return nil, nil
	}
	s := m.stages[ref.Stage]
	if ref.Index >= len(s.tasks) {
		return nil, nil
	}
	t := s.tasks[ref.Index]
	if t.attempt != ref.Attempt {
		return nil, nil
	}
	return s, t
}

func (m *master) freeSlot(ref taskRef) {
	if exec, ok := m.assignments[ref]; ok {
		delete(m.assignments, ref)
		if _, alive := m.slotsFree[exec]; alive {
			m.slotsFree[exec]++
		}
	}
}

func (m *master) onTaskDone(e evTaskDone) {
	m.freeSlot(e.ref)
	_, t := m.taskAt(e.ref)
	if t == nil || t.state != tRunning {
		return
	}
	t.state = tDone
	t.exec = e.Exec
	m.tr.Emit(obs.Event{Kind: obs.TaskFinished, Stage: e.ref.Stage, Task: e.ref.Index,
		Attempt: e.ref.Attempt, Exec: e.Exec})
	if s, _ := m.taskAt(e.ref); s != nil {
		done := true
		for _, st := range s.tasks {
			if st.state != tDone {
				done = false
				break
			}
		}
		if done {
			m.tr.Emit(obs.Event{Kind: obs.StageComplete, Stage: s.ps.ID})
		}
	}
	m.checkDone()
}

func (m *master) onCheckpointed(e evCheckpointed) {
	_, t := m.taskAt(e.ref)
	if t == nil || t.state != tDone {
		return
	}
	t.ck = true
	m.tr.Emit(obs.Event{Kind: obs.PushCommitted, Stage: e.ref.Stage, Task: e.ref.Index,
		Attempt: e.ref.Attempt, Exec: t.exec, Note: "checkpoint"})
}

func (m *master) onTaskFailed(e evTaskFailed) {
	m.freeSlot(e.ref)
	if e.Fatal {
		m.abort(fmt.Errorf("sparklike: task %v failed: %w", e.ref, e.Err))
		return
	}
	_, t := m.taskAt(e.ref)
	if t == nil || t.state != tRunning {
		return
	}
	t.fails++
	if t.fails > maxTaskFailures {
		m.abort(fmt.Errorf("sparklike: task %v failed %d times: %w", e.ref, t.fails, e.Err))
		return
	}
	m.tr.Emit(obs.Event{Kind: obs.TaskFailed, Stage: e.ref.Stage, Task: e.ref.Index,
		Attempt: e.ref.Attempt, Exec: e.Exec, Note: e.Err.Error()})
	m.requeue(e.ref.Stage, e.ref.Index, t)
}

// onFetchFailed is the lineage path: the consumer retries and the lost
// producer partition is resubmitted, possibly cascading further when the
// producer's own inputs turn out to be lost.
func (m *master) onFetchFailed(e evFetchFailed) {
	m.freeSlot(e.ref)
	if s, t := m.taskAt(e.ref); t != nil && t.state == tRunning {
		t.fails++
		if t.fails > maxTaskFailures {
			m.abort(fmt.Errorf("sparklike: task %v exceeded fetch retries", e.ref))
			return
		}
		// A FetchFailed fails the whole stage attempt (Spark 2.0's
		// DAGScheduler): sibling tasks still running under this
		// attempt are abandoned and re-run after the parents are
		// fixed. Their in-flight work is wasted.
		for i, st := range s.tasks {
			if st.state == tRunning {
				m.requeue(s.ps.ID, i, st)
			}
		}
	}
	// A fetch failure against a vanished executor reveals that the
	// executor is gone: unregister every finished output it held, as
	// Spark's MapOutputTracker does on a FetchFailed, so one failure
	// resubmits all co-located losses instead of discovering them one
	// round trip at a time.
	if e.Owner != "" && e.Owner != driverLoc && e.Owner != storageLoc {
		if _, alive := m.execs[e.Owner]; !alive {
			for _, s := range m.stages {
				if s.ps.Driver {
					continue
				}
				for i, t := range s.tasks {
					if t.exec == e.Owner && t.state == tDone && !(m.cfg.Checkpoint && t.ck) {
						m.requeue(s.ps.ID, i, t)
					}
				}
			}
			return
		}
	}
	if e.FromStage < 0 || e.FromStage >= len(m.stages) {
		return
	}
	ps := m.stages[e.FromStage]
	if e.Part < 0 || e.Part >= len(ps.tasks) {
		return
	}
	pt := ps.tasks[e.Part]
	// Only resubmit if the block is actually unavailable: the producer
	// is done but its executor has vanished (or its checkpoint never
	// landed). A live producer means the consumer just raced a restart.
	if pt.state == tDone {
		available := false
		if m.cfg.Checkpoint {
			available = pt.ck || m.plan.Stages[e.FromStage].Driver
		} else {
			_, available = m.execs[pt.exec]
			if m.plan.Stages[e.FromStage].Driver {
				available = true
			}
		}
		if !available {
			m.requeue(e.FromStage, e.Part, pt)
		}
	}
}

func (m *master) onCached(e evCached) {
	set := m.cacheIndex[e.Key]
	if set == nil {
		set = make(map[string]bool)
		m.cacheIndex[e.Key] = set
	}
	set[e.Exec] = true
}

func (m *master) onCollected(e evCollected) {
	m.collecting = false
	if e.err != nil {
		m.abort(e.err)
		return
	}
	if len(e.failed) > 0 {
		for _, f := range e.failed {
			m.onFetchFailed(f)
		}
		return
	}
	m.outputs = e.outputs
	m.finished = true
}

// inputsReady reports whether task i of stage s can start, and gathers
// the input locations.
func (m *master) inputsReady(s *sStageRun, i int) (map[int][]string, bool) {
	locs := make(map[int][]string)
	for _, si := range s.ps.Inputs {
		if _, ok := locs[si.FromStage]; ok {
			continue
		}
		ps := m.stages[si.FromStage]
		need := allPartsOf(si.Dep, i, len(ps.tasks))
		ls := make([]string, len(ps.tasks))
		for _, p := range need {
			t := ps.tasks[p]
			if t.state != tDone {
				return nil, false
			}
			switch {
			case m.plan.Stages[si.FromStage].Driver:
				ls[p] = driverLoc
			case m.cfg.Checkpoint:
				if !t.ck {
					if _, alive := m.execs[t.exec]; !alive {
						// The un-checkpointed output died with its
						// executor; rewrite it.
						m.requeue(si.FromStage, p, t)
					}
					return nil, false
				}
				ls[p] = storageLoc
			default:
				// Brief stale window only: executor losses are
				// unregistered when the resource manager's
				// notification arrives.
				ls[p] = t.exec
			}
		}
		locs[si.FromStage] = ls
	}
	return locs, true
}

func allPartsOf(dep dag.DepType, taskIdx, parentParts int) []int {
	if dep == dag.OneToOne {
		return []int{taskIdx}
	}
	out := make([]int, parentParts)
	for i := range out {
		out[i] = i
	}
	return out
}

// demanded computes which stages lineage actually requires right now:
// incomplete terminal stages, and — transitively — parents of demanded
// incomplete stages. Spark recomputes lost partitions lazily, on demand,
// which is exactly what serializes cascading recomputations (§2.2): a
// lost partition is only rebuilt when a consumer needs it, and the
// consumer waits.
func (m *master) demanded() []bool {
	d := make([]bool, len(m.stages))
	complete := make([]bool, len(m.stages))
	for i, s := range m.stages {
		complete[i] = true
		for _, t := range s.tasks {
			if t.state != tDone {
				complete[i] = false
				break
			}
		}
		_ = s
	}
	for i := len(m.stages) - 1; i >= 0; i-- {
		s := m.stages[i]
		if s.ps.Terminal() && !complete[i] {
			d[i] = true
		}
		if d[i] && !complete[i] {
			for _, pid := range s.ps.Parents {
				d[pid] = true
			}
		}
	}
	// Propagate demand down chains of incomplete parents.
	changed := true
	for changed {
		changed = false
		for i := len(m.stages) - 1; i >= 0; i-- {
			if d[i] && !complete[i] {
				for _, pid := range m.stages[i].ps.Parents {
					if !d[pid] {
						d[pid] = true
						changed = true
					}
				}
			}
		}
	}
	return d
}

// schedule launches every runnable task that lineage demands.
func (m *master) schedule() {
	demanded := m.demanded()
	for _, s := range m.stages {
		if !demanded[s.ps.ID] {
			continue
		}
		for i, t := range s.tasks {
			if t.state != tWaiting {
				continue
			}
			locs, ready := m.inputsReady(s, i)
			if !ready {
				continue
			}
			if !s.started {
				s.started = true
				m.met.OriginalTasks.Add(int64(len(s.tasks)))
				m.tr.Emit(obs.Event{Kind: obs.StageScheduled, Stage: s.ps.ID})
			}
			spec := sTaskSpec{Stage: s.ps.ID, Index: i, Attempt: t.attempt, InputLocs: locs}
			if s.ps.Driver {
				t.state = tRunning
				t.exec = driverLoc
				m.tr.Emit(obs.Event{Kind: obs.TaskLaunched, Stage: s.ps.ID, Task: i,
					Attempt: t.attempt, Exec: driverLoc})
				m.runDriverTask(spec)
				continue
			}
			exec := m.pickExecutor(s.ps, i)
			if exec == "" {
				return // no free slots
			}
			t.state = tRunning
			t.exec = exec
			m.slotsFree[exec]--
			m.tr.Emit(obs.Event{Kind: obs.TaskLaunched, Stage: s.ps.ID, Task: i,
				Attempt: t.attempt, Exec: exec})
			m.assignments[spec.ref()] = exec
			m.execs[exec].Launch(spec)
		}
	}
	m.checkDone()
}

func (m *master) pickExecutor(ps *SStage, taskIdx int) string {
	if !m.cfg.DisableCache {
		for _, opID := range ps.Ops {
			if rd, ok := m.plan.Graph.Vertex(opID).Op.(*dataflow.ReadOp); ok && rd.Cached {
				key := recache.Key{Vertex: opID, Partition: taskIdx}
				for exID := range m.cacheIndex[key] {
					if m.slotsFree[exID] > 0 {
						return exID
					}
				}
			}
		}
	}
	for i := 0; i < len(m.order); i++ {
		exID := m.order[m.rr%len(m.order)]
		m.rr++
		if m.slotsFree[exID] > 0 {
			return exID
		}
	}
	return ""
}

// runDriverTask executes a parallelism-1 stage on the master process,
// like Spark's driver-side aggregation; the driver is never evicted.
func (m *master) runDriverTask(spec sTaskSpec) {
	env := taskEnv{
		execID: driverLoc, net: m.net, plan: m.plan, cfg: m.cfg, met: m.met, tr: m.tr,
		store: m.driverStore, cache: nil, ck: m.driverCk,
		send:      func(ev event) { m.events <- ev },
		stopped:   func() bool { return false },
		cacheable: false,
	}
	go func() {
		if err := runTask(env, spec); err != nil {
			reportTaskError(env.send, spec, driverLoc, err)
		}
	}()
}

// checkDone starts output collection once every terminal task is done
// (and checkpointed where applicable).
func (m *master) checkDone() {
	if m.collecting || m.finished {
		return
	}
	type fetchSpec struct {
		stage int
		root  dag.VertexID
		locs  []string
	}
	var fetches []fetchSpec
	for _, s := range m.stages {
		if !s.ps.Terminal() {
			continue
		}
		locs := make([]string, len(s.tasks))
		for i, t := range s.tasks {
			if t.state != tDone {
				return
			}
			switch {
			case s.ps.Driver:
				locs[i] = driverLoc
			case m.cfg.Checkpoint:
				if !t.ck {
					if _, alive := m.execs[t.exec]; !alive {
						m.requeue(s.ps.ID, i, t)
					}
					return
				}
				locs[i] = storageLoc
			default:
				locs[i] = t.exec
			}
		}
		fetches = append(fetches, fetchSpec{stage: s.ps.ID, root: s.ps.Root, locs: locs})
	}

	m.collecting = true
	driverStore, driverCk := m.driverStore, m.driverCk
	net, plan, met := m.net, m.plan, m.met
	go func() {
		outputs := make(map[dag.VertexID][]data.Record)
		var failed []evFetchFailed
		for _, f := range fetches {
			coder, err := dataflow.OutputCoder(plan.Graph.Vertex(f.root))
			if err != nil {
				m.events <- evCollected{err: err}
				return
			}
			var recs []data.Record
			for p, owner := range f.locs {
				var payload []byte
				var ok bool
				switch owner {
				case driverLoc:
					payload, ok = driverStore.Get(wholeID(f.stage, p))
					if !ok {
						err = errBlockNotFound
					}
				case storageLoc:
					payload, err = driverCk.Get(wholeID(f.stage, p))
				default:
					payload, err = fetchFrom(net, "master", owner, wholeID(f.stage, p))
				}
				if err != nil {
					// Stage -1 marks a collection fetch: there is no
					// consumer task to requeue, only the producer.
					failed = append(failed, evFetchFailed{ref: taskRef{Stage: -1}, FromStage: f.stage, Part: p})
					err = nil
					continue
				}
				met.BytesFetched.Add(int64(len(payload)))
				part, derr := data.DecodeAll(coder, payload)
				if derr != nil {
					m.events <- evCollected{err: derr}
					return
				}
				recs = append(recs, part...)
			}
			outputs[f.root] = recs
		}
		if len(failed) > 0 {
			m.events <- evCollected{failed: failed}
			return
		}
		m.events <- evCollected{outputs: outputs}
	}()
}
