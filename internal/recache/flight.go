package recache

import (
	"sync"

	"pado/internal/data"
)

// Flight deduplicates concurrent fetches of the same cacheable input on
// one executor: when several task slots need the same broadcast at once,
// only one fetch goes over the network and the rest share its result —
// the behavior of Spark's per-executor broadcast and the intent of the
// paper's task input caching ("it only needs to be sent once to the
// executors", §3.2.7).
type Flight struct {
	mu    sync.Mutex
	calls map[Key]*flightCall
}

type flightCall struct {
	done chan struct{}
	recs []data.Record
	err  error
}

// NewFlight returns an empty flight group.
func NewFlight() *Flight {
	return &Flight{calls: make(map[Key]*flightCall)}
}

// Do invokes fn once per key among concurrent callers; latecomers block
// and share the first caller's result. shared reports whether the result
// came from another caller's fetch.
func (f *Flight) Do(key Key, fn func() ([]data.Record, error)) (recs []data.Record, shared bool, err error) {
	f.mu.Lock()
	if c, ok := f.calls[key]; ok {
		f.mu.Unlock()
		<-c.done
		return c.recs, true, c.err
	}
	c := &flightCall{done: make(chan struct{})}
	f.calls[key] = c
	f.mu.Unlock()

	c.recs, c.err = fn()
	close(c.done)

	f.mu.Lock()
	delete(f.calls, key)
	f.mu.Unlock()
	return c.recs, false, c.err
}
