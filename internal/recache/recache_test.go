package recache

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"pado/internal/dag"
	"pado/internal/data"
)

func recsOfSize(n int) []data.Record {
	recs := make([]data.Record, n)
	for i := range recs {
		recs[i] = data.KV(int64(i), int64(i))
	}
	return recs
}

func TestCachePutGet(t *testing.T) {
	c := New(1 << 20)
	key := Key{Vertex: 1, Partition: 2}
	if _, ok := c.Get(key); ok {
		t.Fatal("empty cache hit")
	}
	recs := recsOfSize(10)
	if !c.Put(key, recs) {
		t.Fatal("put rejected")
	}
	got, ok := c.Get(key)
	if !ok || len(got) != 10 {
		t.Fatalf("get = %v, %v", got, ok)
	}
	hits, misses := c.Stats()
	if hits != 1 || misses != 1 {
		t.Errorf("stats = %d/%d", hits, misses)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// Each 10-record entry is ~640 estimated bytes; cap fits ~3.
	c := New(2000)
	for i := 0; i < 5; i++ {
		c.Put(Key{Vertex: dag.VertexID(i), Partition: 0}, recsOfSize(10))
	}
	// Oldest entries must be gone; newest present.
	if _, ok := c.Get(Key{Vertex: dag.VertexID(0), Partition: 0}); ok {
		t.Error("oldest entry survived beyond budget")
	}
	if _, ok := c.Get(Key{Vertex: dag.VertexID(4), Partition: 0}); !ok {
		t.Error("newest entry evicted")
	}
}

func TestCacheTouchOnGet(t *testing.T) {
	c := New(2000)
	a := Key{Vertex: 1}
	c.Put(a, recsOfSize(10))
	c.Put(Key{Vertex: 2}, recsOfSize(10))
	c.Put(Key{Vertex: 3}, recsOfSize(10))
	c.Get(a) // touch a so it is most recent
	c.Put(Key{Vertex: 4}, recsOfSize(10))
	c.Put(Key{Vertex: 5}, recsOfSize(10))
	if _, ok := c.Get(a); !ok {
		t.Error("recently used entry was evicted")
	}
}

func TestCacheOversizedEntry(t *testing.T) {
	c := New(100)
	if c.Put(Key{Vertex: 1}, recsOfSize(1000)) {
		t.Error("oversized entry should not be cached")
	}
}

func TestCacheReplace(t *testing.T) {
	c := New(1 << 20)
	k := Key{Vertex: 1}
	c.Put(k, recsOfSize(10))
	c.Put(k, recsOfSize(20))
	got, _ := c.Get(k)
	if len(got) != 20 {
		t.Errorf("replacement not visible, len=%d", len(got))
	}
	if n := len(c.Keys()); n != 1 {
		t.Errorf("keys = %d, want 1", n)
	}
}

func TestEstimateSizeGrowsWithContent(t *testing.T) {
	small := EstimateSize([]data.Record{{Key: "k", Value: "v"}})
	big := EstimateSize([]data.Record{{Key: "k", Value: make([]float64, 1000)}})
	if big <= small {
		t.Errorf("size estimate ignores content: %d vs %d", small, big)
	}
	grouped := EstimateSize([]data.Record{{Key: "k", Value: []any{"aa", "bb"}}})
	if grouped <= 48 {
		t.Errorf("grouped value size too small: %d", grouped)
	}
}

func TestFlightDeduplicates(t *testing.T) {
	f := NewFlight()
	var calls atomic.Int32
	var started atomic.Int32
	gate := make(chan struct{})
	var wg sync.WaitGroup
	const callers = 16
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			started.Add(1)
			recs, _, err := f.Do(Key{Vertex: 7}, func() ([]data.Record, error) {
				calls.Add(1)
				<-gate // hold the in-flight call until all callers queue up
				return recsOfSize(3), nil
			})
			if err != nil || len(recs) != 3 {
				t.Errorf("do: %v %v", recs, err)
			}
		}()
	}
	for started.Load() < callers {
		// Let every caller reach Do before releasing the first fetch.
		runtimeGosched()
	}
	close(gate)
	wg.Wait()
	// Callers queued while the first fetch was in flight must share it;
	// only stragglers that had not yet called Do may fetch again (they
	// find the gate open and return instantly).
	if n := calls.Load(); n > 3 {
		t.Errorf("fetch called %d times, want <=3", n)
	}
	shared := 0
	_, wasShared, _ := f.Do(Key{Vertex: 7}, func() ([]data.Record, error) { return nil, nil })
	if wasShared {
		shared++
	}
	_ = shared
}

func runtimeGosched() { runtime.Gosched() }

func TestFlightPropagatesErrors(t *testing.T) {
	f := NewFlight()
	boom := errors.New("boom")
	_, _, err := f.Do(Key{Vertex: 1}, func() ([]data.Record, error) { return nil, boom })
	if !errors.Is(err, boom) {
		t.Errorf("got %v", err)
	}
	// After an error the key is retryable.
	recs, _, err := f.Do(Key{Vertex: 1}, func() ([]data.Record, error) { return recsOfSize(1), nil })
	if err != nil || len(recs) != 1 {
		t.Errorf("retry after error failed: %v %v", recs, err)
	}
}

func TestFlightDistinctKeysIndependent(t *testing.T) {
	f := NewFlight()
	var calls atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			f.Do(Key{Vertex: dag.VertexID(i)}, func() ([]data.Record, error) {
				calls.Add(1)
				return nil, nil
			})
		}(i)
	}
	wg.Wait()
	if calls.Load() != 8 {
		t.Errorf("distinct keys collapsed: %d calls", calls.Load())
	}
}

func TestKeyString(t *testing.T) {
	k := Key{Vertex: 3, Partition: -1}
	if k.String() != fmt.Sprintf("%d/%d", 3, -1) {
		t.Errorf("Key.String = %q", k.String())
	}
}
