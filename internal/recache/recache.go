// Package recache provides the per-executor task-input cache used by both
// engines (paper §3.2.7): an LRU over decoded record partitions with a
// byte budget, plus footprint estimation for decoded records.
package recache

import (
	"container/list"
	"fmt"
	"sync"

	"pado/internal/dag"
	"pado/internal/data"
)

// Key identifies a cacheable task input: a read source partition, an
// aligned stage-output partition, or a whole broadcast (partition == -1).
type Key struct {
	Vertex    dag.VertexID
	Partition int
}

// String renders the key for the master's cache index.
func (k Key) String() string { return fmt.Sprintf("%d/%d", k.Vertex, k.Partition) }

// Cache is a per-executor LRU task input cache (§3.2.7). Entries hold
// decoded records; sizes are estimates of in-memory footprint. Safe for
// concurrent use.
type Cache struct {
	mu       sync.Mutex
	capacity int64
	used     int64
	ll       *list.List // front = most recent
	entries  map[Key]*list.Element
	hits     int64
	misses   int64
}

type cacheEntry struct {
	key  Key
	recs []data.Record
	size int64
}

func New(capacity int64) *Cache {
	return &Cache{
		capacity: capacity,
		ll:       list.New(),
		entries:  make(map[Key]*list.Element),
	}
}

// Get returns the cached records for key, if present.
func (c *Cache) Get(key Key) ([]data.Record, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).recs, true
}

// Put inserts records under key, evicting least-recently-used entries
// until the budget holds. Oversized single entries are not cached.
func (c *Cache) Put(key Key, recs []data.Record) bool {
	size := EstimateSize(recs)
	if size > c.capacity {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		old := el.Value.(*cacheEntry)
		c.used += size - old.size
		old.recs, old.size = recs, size
		c.ll.MoveToFront(el)
	} else {
		el := c.ll.PushFront(&cacheEntry{key: key, recs: recs, size: size})
		c.entries[key] = el
		c.used += size
	}
	for c.used > c.capacity {
		back := c.ll.Back()
		if back == nil {
			break
		}
		ent := back.Value.(*cacheEntry)
		c.ll.Remove(back)
		delete(c.entries, ent.key)
		c.used -= ent.size
	}
	return true
}

// Keys returns the currently cached keys (for the master's cache index).
func (c *Cache) Keys() []Key {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Key, 0, len(c.entries))
	for k := range c.entries {
		out = append(out, k)
	}
	return out
}

// Stats returns hit/miss counters.
func (c *Cache) Stats() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// estimateSize approximates the in-memory footprint of decoded records.
func EstimateSize(recs []data.Record) int64 {
	var sz int64
	for _, r := range recs {
		sz += 48 // record overhead + small scalar values
		sz += valueSize(r.Key)
		sz += valueSize(r.Value)
	}
	return sz
}

func valueSize(v any) int64 {
	switch x := v.(type) {
	case string:
		return int64(len(x))
	case []byte:
		return int64(len(x))
	case []float64:
		return int64(8 * len(x))
	case []any:
		var sz int64
		for _, e := range x {
			sz += 16 + valueSize(e)
		}
		return sz
	default:
		return 8
	}
}
