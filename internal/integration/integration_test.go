// Package integration runs every workload on every engine configuration
// and checks the results against the sequential reference
// implementations, with and without evictions. These are the
// correctness-under-failure tests backing the performance experiments.
package integration

import (
	"context"
	"math"
	"testing"
	"time"

	"pado/internal/cluster"
	"pado/internal/dag"
	"pado/internal/data"
	"pado/internal/engines/sparklike"
	"pado/internal/runtime"
	"pado/internal/trace"
	"pado/internal/vtime"
	"pado/internal/workloads"
)

func testCluster(t *testing.T, transient, reserved int, rate trace.Rate, seed int64) *cluster.Cluster {
	t.Helper()
	cl, err := cluster.New(cluster.Config{
		Transient:   transient,
		Reserved:    reserved,
		Slots:       4,
		Lifetimes:   trace.Lifetimes(rate),
		Scale:       vtime.NewScale(40 * time.Millisecond),
		MinLifetime: 40 * time.Millisecond,
		Seed:        seed,
	})
	if err != nil {
		t.Fatalf("cluster: %v", err)
	}
	return cl
}

type engineRun func(t *testing.T, g *dag.Graph, rate trace.Rate, seed int64) map[dag.VertexID][]data.Record

func padoRun(t *testing.T, g *dag.Graph, rate trace.Rate, seed int64) map[dag.VertexID][]data.Record {
	cl := testCluster(t, 6, 2, rate, seed)
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	res, err := runtime.Run(ctx, cl, g, runtime.Config{})
	if err != nil {
		t.Fatalf("pado run: %v", err)
	}
	if res.Metrics.TimedOut {
		t.Fatalf("pado run timed out: %v", res.Metrics)
	}
	return res.Outputs
}

func sparkRun(ck bool) engineRun {
	return func(t *testing.T, g *dag.Graph, rate trace.Rate, seed int64) map[dag.VertexID][]data.Record {
		cl := testCluster(t, 6, 2, rate, seed)
		ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
		defer cancel()
		res, err := sparklike.Run(ctx, cl, g, sparklike.Config{Checkpoint: ck})
		if err != nil {
			t.Fatalf("sparklike run (ck=%v): %v", ck, err)
		}
		if res.Metrics.TimedOut {
			t.Fatalf("sparklike run (ck=%v) timed out: %v", ck, res.Metrics)
		}
		return res.Outputs
	}
}

var engines = []struct {
	name string
	run  engineRun
}{
	{"pado", padoRun},
	{"spark", sparkRun(false)},
	{"spark-checkpoint", sparkRun(true)},
}

func singleOutput(t *testing.T, outs map[dag.VertexID][]data.Record) []data.Record {
	t.Helper()
	if len(outs) != 1 {
		t.Fatalf("expected a single terminal output, got %d", len(outs))
	}
	for _, recs := range outs {
		return recs
	}
	return nil
}

func TestMRAllEngines(t *testing.T) {
	cfg := workloads.MRConfig{Partitions: 10, LinesPerPart: 800, Docs: 2000, Seed: 3}
	want := workloads.MRReference(cfg)
	for _, rate := range []trace.Rate{trace.RateNone, trace.RateMedium} {
		for _, eng := range engines {
			eng := eng
			rate := rate
			t.Run(eng.name+"/"+rate.String(), func(t *testing.T) {
				t.Parallel()
				recs := singleOutput(t, eng.run(t, workloads.MR(cfg).Graph(), rate, 101))
				if len(recs) != len(want) {
					t.Fatalf("got %d docs, want %d", len(recs), len(want))
				}
				for _, r := range recs {
					if want[r.Key.(string)] != r.Value.(int64) {
						t.Fatalf("doc %v: got %d want %d", r.Key, r.Value, want[r.Key.(string)])
					}
				}
			})
		}
	}
}

func TestMLRAllEngines(t *testing.T) {
	cfg := workloads.MLRConfig{
		Partitions: 10, SamplesPerPart: 40, Features: 64, Classes: 4,
		NonZeros: 8, Iterations: 3, LearningRate: 0.5, Seed: 5,
	}
	want := workloads.MLRReference(cfg)
	for _, rate := range []trace.Rate{trace.RateNone, trace.RateMedium} {
		for _, eng := range engines {
			eng := eng
			rate := rate
			t.Run(eng.name+"/"+rate.String(), func(t *testing.T) {
				t.Parallel()
				recs := singleOutput(t, eng.run(t, workloads.MLR(cfg).Graph(), rate, 202))
				if len(recs) != 1 {
					t.Fatalf("expected 1 model record, got %d", len(recs))
				}
				got := recs[0].Value.([]float64)
				if len(got) != len(want) {
					t.Fatalf("model size %d, want %d", len(got), len(want))
				}
				for i := range got {
					if math.Abs(got[i]-want[i]) > 1e-6+1e-4*math.Abs(want[i]) {
						t.Fatalf("model[%d]: got %g want %g", i, got[i], want[i])
					}
				}
			})
		}
	}
}

func TestALSAllEngines(t *testing.T) {
	cfg := workloads.ALSConfig{
		Partitions: 10, RatingsPerPart: 400, Users: 200, Items: 50,
		Rank: 4, Iterations: 3, Lambda: 0.1, Seed: 7,
	}
	want := workloads.ALSReference(cfg)
	for _, rate := range []trace.Rate{trace.RateNone, trace.RateMedium} {
		for _, eng := range engines {
			eng := eng
			rate := rate
			t.Run(eng.name+"/"+rate.String(), func(t *testing.T) {
				t.Parallel()
				recs := singleOutput(t, eng.run(t, workloads.ALS(cfg).Graph(), rate, 303))
				if len(recs) != len(want) {
					t.Fatalf("got %d item factors, want %d", len(recs), len(want))
				}
				for _, r := range recs {
					id := r.Key.(int64)
					got := r.Value.([]float64)
					ref := want[id]
					for k := range got {
						if math.Abs(got[k]-ref[k]) > 1e-5+1e-3*math.Abs(ref[k]) {
							t.Fatalf("item %d factor[%d]: got %g want %g", id, k, got[k], ref[k])
						}
					}
				}
			})
		}
	}
}
