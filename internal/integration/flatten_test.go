package integration

import (
	"fmt"
	"testing"

	"pado/internal/data"
	"pado/internal/dataflow"
	"pado/internal/trace"
)

// TestFlattenAllEngines unions two sources and reduces over the union on
// every engine, under evictions — exercising multi-source fragments.
func TestFlattenAllEngines(t *testing.T) {
	kv := data.KVCoder{K: data.StringCoder, V: data.Int64Coder}
	mkSrc := func(base int) *dataflow.FuncSource {
		return &dataflow.FuncSource{
			Partitions: 4,
			Gen: func(p int) []data.Record {
				recs := make([]data.Record, 100)
				for i := range recs {
					recs[i] = data.KV(fmt.Sprintf("k%02d", (base+i)%20), int64(base+i))
				}
				return recs
			},
		}
	}
	build := func() *dataflow.Pipeline {
		p := dataflow.NewPipeline()
		a := p.Read("a", mkSrc(0), kv)
		b := p.Read("b", mkSrc(7), kv)
		dataflow.Flatten("union", a, b).
			CombinePerKey("sum", dataflow.SumInt64Fn{}, kv,
				dataflow.WithAccumulatorCoder(kv))
		return p
	}
	want := map[string]int64{}
	for _, base := range []int{0, 7} {
		src := mkSrc(base)
		for p := 0; p < 4; p++ {
			for _, r := range src.Gen(p) {
				want[r.Key.(string)] += r.Value.(int64)
			}
		}
	}

	for _, eng := range engines {
		eng := eng
		t.Run(eng.name, func(t *testing.T) {
			t.Parallel()
			recs := singleOutput(t, eng.run(t, build().Graph(), trace.RateMedium, 404))
			if len(recs) != len(want) {
				t.Fatalf("got %d keys, want %d", len(recs), len(want))
			}
			for _, r := range recs {
				if want[r.Key.(string)] != r.Value.(int64) {
					t.Fatalf("key %v: got %d want %d", r.Key, r.Value, want[r.Key.(string)])
				}
			}
		})
	}
}
