// Package profile wires the standard pprof CPU and heap profilers into
// command-line binaries with two flags' worth of code. The simulator's
// hot paths (the cluster's token-bucket transfers, the master event
// loops, tracer emission) are exactly the kind of code whose costs only
// show up under a profiler, and both cmd/padorun and cmd/padobench
// expose these via -cpuprofile/-memprofile.
package profile

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Session holds the open profile outputs; Stop finishes them.
type Session struct {
	cpu     *os.File
	memPath string
}

// Start begins CPU profiling to cpuPath (when non-empty) and arranges
// for a heap profile at memPath (when non-empty) when Stop is called.
func Start(cpuPath, memPath string) (*Session, error) {
	s := &Session{memPath: memPath}
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		s.cpu = f
	}
	return s, nil
}

// Stop ends CPU profiling and writes the heap profile, if requested.
// Safe to call on a nil session.
func (s *Session) Stop() error {
	if s == nil {
		return nil
	}
	if s.cpu != nil {
		pprof.StopCPUProfile()
		if err := s.cpu.Close(); err != nil {
			return err
		}
		s.cpu = nil
	}
	if s.memPath != "" {
		f, err := os.Create(s.memPath)
		if err != nil {
			return fmt.Errorf("memprofile: %w", err)
		}
		runtime.GC() // flush allocations so the heap profile reflects live data
		if err := pprof.WriteHeapProfile(f); err != nil {
			f.Close()
			return fmt.Errorf("memprofile: %w", err)
		}
		if err := f.Close(); err != nil {
			return err
		}
		s.memPath = ""
	}
	return nil
}
