package workloads

import (
	"fmt"
	"math/rand"

	"pado/internal/data"
	"pado/internal/dataflow"
	"pado/internal/linalg"
)

// ALSConfig sizes the alternating-least-squares workload (the stand-in
// for the paper's 10GB Yahoo! Music ratings: 717M ratings of 136K songs
// by 1.8M users, rank 50, 10 iterations — here scaled down with the same
// alternating user/item factor structure and long dependency chains).
type ALSConfig struct {
	Partitions     int
	RatingsPerPart int
	Users          int
	Items          int
	Rank           int
	Iterations     int
	Lambda         float64
	// SolveCost is the CPU tokens per grouped entity charged for the
	// per-entity normal-equation solve (rank^3-ish work; default 1).
	SolveCost int
	// ReadCost is the CPU tokens per rating charged when reading the
	// dataset from external storage (default 1).
	ReadCost int
	Seed     int64
}

// DefaultALSConfig returns a laptop-scale ALS workload.
func DefaultALSConfig() ALSConfig {
	return ALSConfig{
		Partitions:     40,
		RatingsPerPart: 1800,
		Users:          1200,
		Items:          250,
		Rank:           8,
		Iterations:     10,
		Lambda:         0.1,
		SolveCost:      70,
		ReadCost:       2,
		Seed:           17,
	}
}

// ALSSource generates synthetic ratings from hidden user/item factors.
func ALSSource(cfg ALSConfig) dataflow.Source {
	return &dataflow.FuncSource{
		Partitions: cfg.Partitions,
		Gen: func(p int) []data.Record {
			rng := rand.New(rand.NewSource(cfg.Seed + int64(p)*15485863))
			recs := make([]data.Record, cfg.RatingsPerPart)
			for i := range recs {
				u := int64(rng.Intn(cfg.Users))
				it := int64(rng.Intn(cfg.Items))
				// Hidden preference structure plus noise.
				score := 3 + 1.5*hiddenAffinity(u, it, cfg.Rank) + 0.3*rng.NormFloat64()
				recs[i] = data.Record{Value: Rating{User: u, Item: it, Score: score}}
			}
			return recs
		},
	}
}

func hiddenAffinity(u, it int64, rank int) float64 {
	var s float64
	for k := 0; k < rank; k++ {
		uf := hashUnit(u*31 + int64(k))
		vf := hashUnit(it*37 + int64(k))
		s += uf * vf
	}
	return s / float64(rank)
}

// hashUnit maps an integer to a deterministic value in [-1, 1).
func hashUnit(x int64) float64 {
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	return float64(uint64(x)%2000000)/1000000 - 1
}

// collectEntriesFn groups ratings into per-key Entry lists (the Aggregate
// User/Item Data operators). Its accumulators are the lists themselves;
// as the paper notes for ALS, partial aggregation does not shrink the
// data but still lets reserved executors merge on the fly (§5.2.1).
type collectEntriesFn struct{}

func (collectEntriesFn) CreateAccumulator() any { return []Entry(nil) }
func (collectEntriesFn) AddInput(acc any, r data.Record) any {
	return append(acc.([]Entry), r.Value.(Entry))
}
func (collectEntriesFn) MergeAccumulators(a, b any) any {
	return append(a.([]Entry), b.([]Entry)...)
}
func (collectEntriesFn) ExtractOutput(key, acc any) data.Record {
	return data.Record{Key: key, Value: acc.([]Entry)}
}

// keepFactorFn is a pass-through keyed combine that lands computed
// factors on reserved containers (the Aggregate Nth User Factor
// operators of Figure 3(c)).
type keepFactorFn struct{}

func (keepFactorFn) CreateAccumulator() any { return []float64(nil) }
func (keepFactorFn) AddInput(acc any, r data.Record) any {
	return r.Value.([]float64)
}
func (keepFactorFn) MergeAccumulators(a, b any) any {
	if bv := b.([]float64); bv != nil {
		return bv
	}
	return a
}
func (keepFactorFn) ExtractOutput(key, acc any) data.Record {
	return data.Record{Key: key, Value: acc.([]float64)}
}

// keyByUserFn and keyByItemFn re-key ratings for the two groupings.
type keyByUserFn struct{}

func (keyByUserFn) Process(r data.Record, _ dataflow.SideValues, emit dataflow.Emit) error {
	v := r.Value.(Rating)
	emit(data.KV(v.User, Entry{ID: v.Item, Score: v.Score}))
	return nil
}

type keyByItemFn struct{}

func (keyByItemFn) Process(r data.Record, _ dataflow.SideValues, emit dataflow.Emit) error {
	v := r.Value.(Rating)
	emit(data.KV(v.Item, Entry{ID: v.User, Score: v.Score}))
	return nil
}

// entryKVCoder encodes the re-keyed (id, Entry) records.
type entryKVCoder struct{}

func (entryKVCoder) Name() string { return "kv<int64,entry>" }
func (entryKVCoder) EncodeRecord(e *data.Encoder, r data.Record) error {
	if err := e.Varint(r.Key.(int64)); err != nil {
		return err
	}
	en := r.Value.(Entry)
	if err := e.Varint(en.ID); err != nil {
		return err
	}
	return e.Float64(en.Score)
}
func (entryKVCoder) DecodeRecord(d *data.Decoder) (data.Record, error) {
	key, err := d.Varint()
	if err != nil {
		return data.Record{}, err
	}
	var en Entry
	if en.ID, err = d.Varint(); err != nil {
		return data.Record{}, err
	}
	if en.Score, err = d.Float64(); err != nil {
		return data.Record{}, err
	}
	return data.Record{Key: key, Value: en}, nil
}

// EntryKVCoder is the coder for re-keyed rating records.
var EntryKVCoder data.Coder = entryKVCoder{}

// initItemFactorFn deterministically seeds item factors from the grouped
// item data (Compute 1st Item Factor, reserved by the locality rule).
type initItemFactorFn struct{ rank int }

func (f initItemFactorFn) Process(r data.Record, _ dataflow.SideValues, emit dataflow.Emit) error {
	id := r.Key.(int64)
	factor := make([]float64, f.rank)
	for k := range factor {
		factor[k] = 0.5 + 0.1*hashUnit(id*1000003+int64(k))
	}
	emit(data.KV(id, factor))
	return nil
}

// solveFactorFn solves one side's least-squares update: for each entity
// (user or item), solve (Q^T Q + lambda*n*I) x = Q^T r over the entity's
// ratings, where Q rows are the counterpart factors from the broadcast
// side input.
type solveFactorFn struct {
	rank   int
	lambda float64
	side   string
}

// Process is unused; ProcessBundle builds the counterpart index once.
func (f solveFactorFn) Process(data.Record, dataflow.SideValues, dataflow.Emit) error {
	return fmt.Errorf("workloads: solveFactorFn processes bundles")
}

// ProcessBundle implements dataflow.BundleDoFn.
func (f solveFactorFn) ProcessBundle(recs []data.Record, sides dataflow.SideValues, emit dataflow.Emit) error {
	counterpart := make(map[int64][]float64)
	for _, r := range sides.Get(f.side) {
		counterpart[r.Key.(int64)] = r.Value.([]float64)
	}
	for _, r := range recs {
		id := r.Key.(int64)
		entries := r.Value.([]Entry)
		factor, err := SolveFactor(entries, counterpart, f.rank, f.lambda)
		if err != nil {
			return fmt.Errorf("workloads: solving factor for %d: %w", id, err)
		}
		emit(data.KV(id, factor))
	}
	return nil
}

// SolveFactor solves one entity's regularized least-squares update given
// its rating entries and the counterpart factors: the per-user/per-item
// kernel of ALS, exported for downstream use (e.g. folding in a new
// user).
func SolveFactor(entries []Entry, counterpart map[int64][]float64, rank int, lambda float64) ([]float64, error) {
	a := linalg.Zeros(rank)
	b := make([]float64, rank)
	n := 0
	for _, en := range entries {
		q, ok := counterpart[en.ID]
		if !ok {
			continue // counterpart unseen on the other side
		}
		linalg.AddOuter(a, q, 1)
		linalg.AXPY(en.Score, q, b)
		n++
	}
	if n == 0 {
		return make([]float64, rank), nil
	}
	reg := lambda * float64(n)
	for i := 0; i < rank; i++ {
		a[i][i] += reg
	}
	return linalg.Solve(a, b)
}

// ALS builds the unrolled alternating pipeline of Figure 3(c).
func ALS(cfg ALSConfig) *dataflow.Pipeline {
	p := dataflow.NewPipeline()
	ratings := p.Read("read-ratings", ALSSource(cfg), RatingCoder).Cached().ReadCost(cfg.ReadCost)

	userData := ratings.
		ParDo("key-by-user", keyByUserFn{}, EntryKVCoder).
		CombinePerKey("aggregate-user-data", collectEntriesFn{}, EntryListCoder,
			dataflow.WithAccumulatorCoder(EntryListCoder))
	itemData := ratings.
		ParDo("key-by-item", keyByItemFn{}, EntryKVCoder).
		CombinePerKey("aggregate-item-data", collectEntriesFn{}, EntryListCoder,
			dataflow.WithAccumulatorCoder(EntryListCoder))

	itemFactors := itemData.ParDo("compute-1st-item-factor",
		initItemFactorFn{rank: cfg.Rank}, FactorCoder)

	for it := 1; it <= cfg.Iterations; it++ {
		uSide := fmt.Sprintf("item-factors-%d", it)
		userFactors := userData.
			ParDo(fmt.Sprintf("compute-user-factor-%d", it),
				solveFactorFn{rank: cfg.Rank, lambda: cfg.Lambda, side: uSide}, FactorCoder,
				dataflow.WithSide(dataflow.SideInput{Name: uSide, From: itemFactors, Cached: true}),
				dataflow.WithInputCache(),
				dataflow.WithCost(cfg.SolveCost)).
			CombinePerKey(fmt.Sprintf("aggregate-user-factor-%d", it),
				keepFactorFn{}, FactorCoder,
				dataflow.WithAccumulatorCoder(FactorCoder))

		iSide := fmt.Sprintf("user-factors-%d", it)
		itemFactors = itemData.
			ParDo(fmt.Sprintf("compute-item-factor-%d", it+1),
				solveFactorFn{rank: cfg.Rank, lambda: cfg.Lambda, side: iSide}, FactorCoder,
				dataflow.WithSide(dataflow.SideInput{Name: iSide, From: userFactors, Cached: true}),
				dataflow.WithInputCache(),
				dataflow.WithCost(cfg.SolveCost)).
			CombinePerKey(fmt.Sprintf("aggregate-item-factor-%d", it+1),
				keepFactorFn{}, FactorCoder,
				dataflow.WithAccumulatorCoder(FactorCoder))
	}
	return p
}

// ALSReference computes the final item factors sequentially.
func ALSReference(cfg ALSConfig) map[int64][]float64 {
	src := ALSSource(cfg).(*dataflow.FuncSource)
	user := make(map[int64][]Entry)
	item := make(map[int64][]Entry)
	for p := 0; p < cfg.Partitions; p++ {
		for _, r := range src.Gen(p) {
			v := r.Value.(Rating)
			user[v.User] = append(user[v.User], Entry{ID: v.Item, Score: v.Score})
			item[v.Item] = append(item[v.Item], Entry{ID: v.User, Score: v.Score})
		}
	}
	itemF := make(map[int64][]float64)
	for id := range item {
		factor := make([]float64, cfg.Rank)
		for k := range factor {
			factor[k] = 0.5 + 0.1*hashUnit(id*1000003+int64(k))
		}
		itemF[id] = factor
	}
	for it := 0; it < cfg.Iterations; it++ {
		userF := make(map[int64][]float64)
		for id, entries := range user {
			f, err := SolveFactor(entries, itemF, cfg.Rank, cfg.Lambda)
			if err != nil {
				panic(err)
			}
			userF[id] = f
		}
		next := make(map[int64][]float64)
		for id, entries := range item {
			f, err := SolveFactor(entries, userF, cfg.Rank, cfg.Lambda)
			if err != nil {
				panic(err)
			}
			next[id] = f
		}
		itemF = next
	}
	return itemF
}
