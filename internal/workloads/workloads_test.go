package workloads

import (
	"fmt"
	"math"
	"reflect"
	"testing"
	"testing/quick"

	"pado/internal/data"
	"pado/internal/dataflow"
)

func TestRatingCoderRoundTrip(t *testing.T) {
	err := quick.Check(func(user, item int64, score float64) bool {
		if math.IsNaN(score) {
			return true
		}
		in := data.Record{Value: Rating{User: user, Item: item, Score: score}}
		payload, err := data.EncodeAll(RatingCoder, []data.Record{in})
		if err != nil {
			return false
		}
		out, err := data.DecodeAll(RatingCoder, payload)
		return err == nil && len(out) == 1 && out[0].Value.(Rating) == in.Value.(Rating)
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Error(err)
	}
}

func TestEntryListCoderRoundTrip(t *testing.T) {
	in := []data.Record{
		{Key: int64(7), Value: []Entry{{ID: 1, Score: 2.5}, {ID: -3, Score: 0}}},
		{Key: int64(-1), Value: []Entry{}},
	}
	payload, err := data.EncodeAll(EntryListCoder, in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := data.DecodeAll(EntryListCoder, payload)
	if err != nil {
		t.Fatal(err)
	}
	if out[0].Key.(int64) != 7 || !reflect.DeepEqual(out[0].Value.([]Entry), in[0].Value.([]Entry)) {
		t.Errorf("got %v", out[0])
	}
	if len(out[1].Value.([]Entry)) != 0 {
		t.Errorf("empty list corrupted: %v", out[1])
	}
}

func TestSampleCoderRoundTrip(t *testing.T) {
	in := data.Record{Value: Sample{Label: 3, Idx: []int64{1, 5, 9}, Val: []float64{0.1, -2, 3}}}
	payload, err := data.EncodeAll(SampleCoder, []data.Record{in})
	if err != nil {
		t.Fatal(err)
	}
	out, err := data.DecodeAll(SampleCoder, payload)
	if err != nil {
		t.Fatal(err)
	}
	got := out[0].Value.(Sample)
	want := in.Value.(Sample)
	if got.Label != want.Label || !reflect.DeepEqual(got.Idx, want.Idx) || !reflect.DeepEqual(got.Val, want.Val) {
		t.Errorf("got %+v", got)
	}
}

func TestSampleCoderRejectsMismatchedLengths(t *testing.T) {
	bad := data.Record{Value: Sample{Idx: []int64{1}, Val: []float64{1, 2}}}
	if _, err := data.EncodeAll(SampleCoder, []data.Record{bad}); err == nil {
		t.Error("expected length-mismatch error")
	}
}

func TestSourcesDeterministic(t *testing.T) {
	mr := MRConfig{Partitions: 3, LinesPerPart: 50, Docs: 100, Seed: 2}
	s1 := MRSource(mr).(*dataflow.FuncSource)
	s2 := MRSource(mr).(*dataflow.FuncSource)
	if !reflect.DeepEqual(s1.Gen(1), s2.Gen(1)) {
		t.Error("MR source not deterministic")
	}

	als := ALSConfig{Partitions: 3, RatingsPerPart: 20, Users: 10, Items: 5, Rank: 2, Seed: 2}
	a1 := ALSSource(als).(*dataflow.FuncSource)
	a2 := ALSSource(als).(*dataflow.FuncSource)
	if !reflect.DeepEqual(a1.Gen(2), a2.Gen(2)) {
		t.Error("ALS source not deterministic")
	}

	mlr := MLRConfig{Partitions: 3, SamplesPerPart: 10, Features: 16, Classes: 2, NonZeros: 4, Seed: 2}
	m1 := MLRSource(mlr).(*dataflow.FuncSource)
	m2 := MLRSource(mlr).(*dataflow.FuncSource)
	if !reflect.DeepEqual(m1.Gen(0), m2.Gen(0)) {
		t.Error("MLR source not deterministic")
	}
}

func TestMRReferenceMatchesManualSum(t *testing.T) {
	cfg := MRConfig{Partitions: 2, LinesPerPart: 30, Docs: 10, Seed: 4}
	ref := MRReference(cfg)
	var total int64
	for _, v := range ref {
		total += v
	}
	// Recompute the grand total directly from the source.
	src := MRSource(cfg).(*dataflow.FuncSource)
	var want int64
	for p := 0; p < cfg.Partitions; p++ {
		for _, r := range src.Gen(p) {
			line := r.Value.(string)
			var doc string
			var n int64
			if _, err := fmt.Sscanf(line, "%s %d", &doc, &n); err != nil {
				t.Fatal(err)
			}
			want += n
		}
	}
	if total != want {
		t.Errorf("reference total %d != %d", total, want)
	}
}

func TestMLRReferenceLearns(t *testing.T) {
	cfg := MLRConfig{Partitions: 4, SamplesPerPart: 30, Features: 32, Classes: 4,
		NonZeros: 8, Iterations: 4, LearningRate: 0.5, Seed: 6}
	model := MLRReference(cfg)
	if len(model) != cfg.Classes*cfg.Features {
		t.Fatalf("model size %d", len(model))
	}
	// The trained model must classify the training set far better than
	// chance (25% for 4 classes).
	src := MLRSource(cfg).(*dataflow.FuncSource)
	correct, total := 0, 0
	for p := 0; p < cfg.Partitions; p++ {
		for _, r := range src.Gen(p) {
			s := r.Value.(Sample)
			best, score := int64(0), math.Inf(-1)
			for c := 0; c < cfg.Classes; c++ {
				row := model[c*cfg.Features : (c+1)*cfg.Features]
				var sc float64
				for j, idx := range s.Idx {
					sc += row[idx] * s.Val[j]
				}
				if sc > score {
					best, score = int64(c), sc
				}
			}
			if best == s.Label {
				correct++
			}
			total++
		}
	}
	if acc := float64(correct) / float64(total); acc < 0.5 {
		t.Errorf("training accuracy %.2f; model did not learn", acc)
	}
}

func TestALSReferenceReducesError(t *testing.T) {
	cfg := ALSConfig{Partitions: 4, RatingsPerPart: 100, Users: 30, Items: 10,
		Rank: 4, Iterations: 5, Lambda: 0.1, Seed: 8}
	itemF := ALSReference(cfg)
	if len(itemF) == 0 {
		t.Fatal("no item factors")
	}
	// Reconstruct user factors and check the training RMSE is decent.
	user := map[int64][]Entry{}
	src := ALSSource(cfg).(*dataflow.FuncSource)
	var ratings []Rating
	for p := 0; p < cfg.Partitions; p++ {
		for _, r := range src.Gen(p) {
			v := r.Value.(Rating)
			ratings = append(ratings, v)
			user[v.User] = append(user[v.User], Entry{ID: v.Item, Score: v.Score})
		}
	}
	userF := map[int64][]float64{}
	for id, entries := range user {
		f, err := SolveFactor(entries, itemF, cfg.Rank, cfg.Lambda)
		if err != nil {
			t.Fatal(err)
		}
		userF[id] = f
	}
	var sse, sst, mean float64
	for _, r := range ratings {
		mean += r.Score
	}
	mean /= float64(len(ratings))
	for _, r := range ratings {
		var pred float64
		uf, vf := userF[r.User], itemF[r.Item]
		for k := range uf {
			pred += uf[k] * vf[k]
		}
		sse += (pred - r.Score) * (pred - r.Score)
		sst += (r.Score - mean) * (r.Score - mean)
	}
	if sse >= sst {
		t.Errorf("factorization no better than the mean: sse=%.2f sst=%.2f", sse, sst)
	}
}

func TestSolveFactorEmptyEntries(t *testing.T) {
	f, err := SolveFactor(nil, map[int64][]float64{}, 3, 0.1)
	if err != nil || len(f) != 3 {
		t.Errorf("empty solve = %v, %v", f, err)
	}
	for _, v := range f {
		if v != 0 {
			t.Error("empty solve should be zero vector")
		}
	}
}
