// Package workloads implements the paper's three evaluation applications
// (§5.1.3) against the dataflow API, with deterministic synthetic dataset
// generators standing in for the Wikipedia page-view dump, the
// Petuum-style sparse training matrix, and the Yahoo! Music ratings:
//
//   - MR: page-view count aggregation (Map-Reduce);
//   - MLR: multinomial logistic regression by mini-batch-free full
//     gradient descent with per-partition gradient aggregation;
//   - ALS: alternating least squares matrix factorization.
//
// Every workload provides a Reference implementation — a sequential
// in-memory evaluation of the same pipeline — used by tests to verify
// that each engine computes the right answer under evictions.
package workloads

import (
	"fmt"

	"pado/internal/data"
)

// Rating is one (user, item, score) observation of the ALS dataset.
type Rating struct {
	User  int64
	Item  int64
	Score float64
}

// RatingCoder encodes Record{Key: nil, Value: Rating}.
var RatingCoder data.Coder = ratingCoder{}

type ratingCoder struct{}

func (ratingCoder) Name() string { return "rating" }
func (ratingCoder) EncodeRecord(e *data.Encoder, r data.Record) error {
	v, ok := r.Value.(Rating)
	if !ok {
		return fmt.Errorf("workloads: expected Rating, got %T", r.Value)
	}
	if err := e.Varint(v.User); err != nil {
		return err
	}
	if err := e.Varint(v.Item); err != nil {
		return err
	}
	return e.Float64(v.Score)
}
func (ratingCoder) DecodeRecord(d *data.Decoder) (data.Record, error) {
	var v Rating
	var err error
	if v.User, err = d.Varint(); err != nil {
		return data.Record{}, err
	}
	if v.Item, err = d.Varint(); err != nil {
		return data.Record{}, err
	}
	if v.Score, err = d.Float64(); err != nil {
		return data.Record{}, err
	}
	return data.Record{Value: v}, nil
}

// Entry is an (id, score) pair: an item rating grouped under a user, or a
// user rating grouped under an item.
type Entry struct {
	ID    int64
	Score float64
}

// EntryListCoder encodes Record{Key: int64, Value: []Entry} — the grouped
// rating lists produced by the ALS aggregation operators.
var EntryListCoder data.Coder = entryListCoder{}

type entryListCoder struct{}

func (entryListCoder) Name() string { return "kv<int64,[]entry>" }
func (entryListCoder) EncodeRecord(e *data.Encoder, r data.Record) error {
	key, ok := r.Key.(int64)
	if !ok {
		return fmt.Errorf("workloads: expected int64 key, got %T", r.Key)
	}
	list, ok := r.Value.([]Entry)
	if !ok {
		return fmt.Errorf("workloads: expected []Entry, got %T", r.Value)
	}
	if err := e.Varint(key); err != nil {
		return err
	}
	if err := e.Uvarint(uint64(len(list))); err != nil {
		return err
	}
	for _, en := range list {
		if err := e.Varint(en.ID); err != nil {
			return err
		}
		if err := e.Float64(en.Score); err != nil {
			return err
		}
	}
	return nil
}
func (entryListCoder) DecodeRecord(d *data.Decoder) (data.Record, error) {
	key, err := d.Varint()
	if err != nil {
		return data.Record{}, err
	}
	n, err := d.Uvarint()
	if err != nil {
		return data.Record{}, err
	}
	if n > 1<<28 {
		return data.Record{}, fmt.Errorf("workloads: entry list too long")
	}
	list := make([]Entry, n)
	for i := range list {
		if list[i].ID, err = d.Varint(); err != nil {
			return data.Record{}, err
		}
		if list[i].Score, err = d.Float64(); err != nil {
			return data.Record{}, err
		}
	}
	return data.Record{Key: key, Value: list}, nil
}

// Sample is one sparse training sample of the MLR dataset.
type Sample struct {
	Label int64
	Idx   []int64
	Val   []float64
}

// SampleCoder encodes Record{Key: nil, Value: Sample}.
var SampleCoder data.Coder = sampleCoder{}

type sampleCoder struct{}

func (sampleCoder) Name() string { return "sample" }
func (sampleCoder) EncodeRecord(e *data.Encoder, r data.Record) error {
	s, ok := r.Value.(Sample)
	if !ok {
		return fmt.Errorf("workloads: expected Sample, got %T", r.Value)
	}
	if err := e.Varint(s.Label); err != nil {
		return err
	}
	if len(s.Idx) != len(s.Val) {
		return fmt.Errorf("workloads: sample idx/val length mismatch")
	}
	if err := e.Uvarint(uint64(len(s.Idx))); err != nil {
		return err
	}
	for i := range s.Idx {
		if err := e.Varint(s.Idx[i]); err != nil {
			return err
		}
		if err := e.Float64(s.Val[i]); err != nil {
			return err
		}
	}
	return nil
}
func (sampleCoder) DecodeRecord(d *data.Decoder) (data.Record, error) {
	var s Sample
	var err error
	if s.Label, err = d.Varint(); err != nil {
		return data.Record{}, err
	}
	n, err := d.Uvarint()
	if err != nil {
		return data.Record{}, err
	}
	if n > 1<<28 {
		return data.Record{}, fmt.Errorf("workloads: sample too long")
	}
	s.Idx = make([]int64, n)
	s.Val = make([]float64, n)
	for i := uint64(0); i < n; i++ {
		if s.Idx[i], err = d.Varint(); err != nil {
			return data.Record{}, err
		}
		if s.Val[i], err = d.Float64(); err != nil {
			return data.Record{}, err
		}
	}
	return data.Record{Value: s}, nil
}

// Coders shared by the pipelines.
var (
	// LineCoder carries raw input lines (MR's pre-parse records).
	LineCoder = data.KVCoder{K: data.NilCoder, V: data.StringCoder}
	// CountCoder carries (doc, count) pairs.
	CountCoder = data.KVCoder{K: data.StringCoder, V: data.Int64Coder}
	// VecCoder carries keyless dense vectors (models, gradients).
	VecCoder = data.KVCoder{K: data.NilCoder, V: data.Float64sCoder}
	// FactorCoder carries (id, factor vector) pairs.
	FactorCoder = data.KVCoder{K: data.Int64Coder, V: data.Float64sCoder}
)
