package workloads

import (
	"fmt"
	"math/rand"

	"pado/internal/data"
	"pado/internal/dataflow"
	"pado/internal/linalg"
)

// MLRConfig sizes the multinomial-logistic-regression workload (the
// stand-in for the paper's 31GB Petuum-generated sparse dataset: 500K
// samples, 512 classes, 100K features; here scaled down but with the same
// structure: per-partition gradient computation over a broadcast model,
// many-to-one tree aggregation, and a driver-side-free model update).
type MLRConfig struct {
	Partitions     int
	SamplesPerPart int
	Features       int
	Classes        int
	NonZeros       int // nonzero features per sample
	Iterations     int
	LearningRate   float64
	// TreeWidth is the fan-in of the intermediate tree-aggregation
	// level (MLlib's treeAggregate runs 22 aggregate tasks for the
	// paper's 550 map tasks; scaled proportionally here).
	TreeWidth int
	Seed      int64
}

// DefaultMLRConfig returns a laptop-scale MLR workload.
func DefaultMLRConfig() MLRConfig {
	return MLRConfig{
		Partitions:     160,
		SamplesPerPart: 30,
		Features:       256,
		Classes:        8,
		NonZeros:       24,
		Iterations:     5,
		LearningRate:   0.5,
		TreeWidth:      10,
		Seed:           13,
	}
}

// MLRSource generates the synthetic sparse training samples. Labels are
// drawn from a hidden ground-truth model so gradients are informative.
func MLRSource(cfg MLRConfig) dataflow.Source {
	return &dataflow.FuncSource{
		Partitions: cfg.Partitions,
		Gen: func(p int) []data.Record {
			rng := rand.New(rand.NewSource(cfg.Seed + int64(p)*104729))
			recs := make([]data.Record, cfg.SamplesPerPart)
			for i := range recs {
				s := Sample{
					Idx: make([]int64, cfg.NonZeros),
					Val: make([]float64, cfg.NonZeros),
				}
				seen := make(map[int64]bool, cfg.NonZeros)
				for j := 0; j < cfg.NonZeros; j++ {
					idx := int64(rng.Intn(cfg.Features))
					for seen[idx] {
						idx = int64(rng.Intn(cfg.Features))
					}
					seen[idx] = true
					s.Idx[j] = idx
					s.Val[j] = rng.NormFloat64()
				}
				// Hidden model: class k prefers features congruent to k.
				best, bestScore := 0, -1e300
				for k := 0; k < cfg.Classes; k++ {
					var score float64
					for j, idx := range s.Idx {
						if int(idx)%cfg.Classes == k {
							score += s.Val[j]
						}
					}
					if score > bestScore {
						best, bestScore = k, score
					}
				}
				s.Label = int64(best)
				recs[i] = data.Record{Value: s}
			}
			return recs
		},
	}
}

// InitialMLRModel returns the zero model (classes × features, row-major).
func InitialMLRModel(cfg MLRConfig) []float64 {
	return make([]float64, cfg.Classes*cfg.Features)
}

// mlrGradientFn computes one partition's gradient of the softmax loss
// against the broadcast model, emitting a single dense gradient record
// per task (the Compute Gradient operator of Figure 3(b)).
type mlrGradientFn struct {
	cfg  MLRConfig
	side string
}

// Process is unused; ProcessBundle does the work.
func (f mlrGradientFn) Process(data.Record, dataflow.SideValues, dataflow.Emit) error {
	return fmt.Errorf("workloads: mlrGradientFn processes bundles")
}

// ProcessBundle implements dataflow.BundleDoFn.
func (f mlrGradientFn) ProcessBundle(recs []data.Record, sides dataflow.SideValues, emit dataflow.Emit) error {
	model := sides.Get(f.side)
	if len(model) != 1 {
		return fmt.Errorf("workloads: expected 1 model record, got %d", len(model))
	}
	w := model[0].Value.([]float64)
	k, d := f.cfg.Classes, f.cfg.Features
	grad := make([]float64, k*d)
	scores := make([]float64, k)
	probs := make([]float64, k)
	var bucket uint64
	for _, r := range recs {
		s := r.Value.(Sample)
		for _, idx := range s.Idx {
			bucket = bucket*31 + uint64(idx)
		}
	}
	for _, r := range recs {
		s := r.Value.(Sample)
		for c := 0; c < k; c++ {
			row := w[c*d : (c+1)*d]
			var sc float64
			for j, idx := range s.Idx {
				sc += row[idx] * s.Val[j]
			}
			scores[c] = sc
		}
		linalg.Softmax(scores, probs)
		for c := 0; c < k; c++ {
			coef := probs[c]
			if int64(c) == s.Label {
				coef -= 1
			}
			row := grad[c*d : (c+1)*d]
			for j, idx := range s.Idx {
				row[idx] += coef * s.Val[j]
			}
		}
	}
	if f.cfg.TreeWidth <= 0 {
		emit(data.Record{Value: grad})
		return nil
	}
	emit(data.Record{Key: int64(bucket % uint64(f.cfg.TreeWidth)), Value: grad})
	return nil
}

// mlrUpdateFn applies the aggregated gradient to the previous model: the
// Compute Nth Model operator, reserved by the locality rule.
type mlrUpdateFn struct {
	cfg MLRConfig
}

// ProcessPartition implements dataflow.MultiDoFn: input "" carries the
// aggregated gradient, "in1" the previous model.
func (f mlrUpdateFn) ProcessPartition(inputs map[string][]data.Record, emit dataflow.Emit) error {
	grads := inputs[""]
	models := inputs["in1"]
	if len(grads) != 1 || len(models) != 1 {
		return fmt.Errorf("workloads: model update expects 1 gradient and 1 model, got %d/%d",
			len(grads), len(models))
	}
	grad := grads[0].Value.([]float64)
	prev := models[0].Value.([]float64)
	n := float64(f.cfg.Partitions * f.cfg.SamplesPerPart)
	next := make([]float64, len(prev))
	copy(next, prev)
	linalg.AXPY(-f.cfg.LearningRate/n, grad, next)
	emit(data.Record{Value: next})
	return nil
}

// MLR builds the unrolled iterative pipeline of Figure 3(b):
//
//	Create 1st Model (reserved)         Read Training Data (transient)
//	        \ one-to-many                     | one-to-one
//	         Compute Gradient (transient, model side input, cached read)
//	              | many-to-one
//	         Aggregate Gradients (reserved, partially aggregated)
//	              | one-to-one   + one-to-one from previous model
//	         Compute 2nd Model (reserved)  ... repeated per iteration
func MLR(cfg MLRConfig) *dataflow.Pipeline {
	p := dataflow.NewPipeline()
	train := p.Read("read-training-data", MLRSource(cfg), SampleCoder).Cached()
	model := p.Create("create-1st-model",
		[]data.Record{{Value: InitialMLRModel(cfg)}}, VecCoder)

	for it := 1; it <= cfg.Iterations; it++ {
		side := fmt.Sprintf("model-%d", it)
		gradCoder := data.Coder(VecCoder)
		if cfg.TreeWidth > 0 {
			gradCoder = treeVecCoder
		}
		grads := train.ParDo(fmt.Sprintf("compute-gradient-%d", it),
			mlrGradientFn{cfg: cfg, side: side}, gradCoder,
			dataflow.WithSide(dataflow.SideInput{Name: side, From: model, Cached: true}),
			dataflow.WithInputCache())
		// With TreeWidth > 0 an intermediate tree-aggregation level is
		// inserted, as MLlib's treeAggregate does for the Spark
		// baselines (§5.1.3 uses MLlib programs for Spark and the
		// Figure 3(b) Beam program for Pado, whose transient-side
		// partial aggregation plays the tree's role).
		agg := grads
		if cfg.TreeWidth > 0 {
			agg = grads.CombinePerKey(fmt.Sprintf("tree-aggregate-%d", it),
				dataflow.SumFloat64sFn{}, treeVecCoder,
				dataflow.WithAccumulatorCoder(treeVecCoder))
		}
		agg = agg.CombineGlobally(fmt.Sprintf("aggregate-gradients-%d", it),
			dataflow.SumFloat64sFn{}, VecCoder,
			dataflow.WithAccumulatorCoder(VecCoder))
		model = agg.Apply(fmt.Sprintf("compute-model-%d", it+1),
			mlrUpdateFn{cfg: cfg}, VecCoder, model)
	}
	return p
}

// treeVecCoder carries (bucket, vector) records between the gradient and
// tree-aggregation levels.
var treeVecCoder = data.KVCoder{K: data.Int64Coder, V: data.Float64sCoder}

// MLRReference computes the final model sequentially with the same math.
func MLRReference(cfg MLRConfig) []float64 {
	src := MLRSource(cfg).(*dataflow.FuncSource)
	var all []data.Record
	for p := 0; p < cfg.Partitions; p++ {
		all = append(all, src.Gen(p)...)
	}
	model := InitialMLRModel(cfg)
	fn := mlrGradientFn{cfg: cfg, side: "m"}
	for it := 0; it < cfg.Iterations; it++ {
		grad := make([]float64, len(model))
		sides := refSides{"m": {{Value: model}}}
		var out []data.Record
		if err := fn.ProcessBundle(all, sides, func(r data.Record) { out = append(out, r) }); err != nil {
			panic(err)
		}
		copy(grad, out[0].Value.([]float64))
		n := float64(cfg.Partitions * cfg.SamplesPerPart)
		next := make([]float64, len(model))
		copy(next, model)
		linalg.AXPY(-cfg.LearningRate/n, grad, next)
		model = next
	}
	return model
}

// refSides adapts a plain map to dataflow.SideValues for reference runs.
type refSides map[string][]data.Record

// Get implements dataflow.SideValues.
func (s refSides) Get(name string) []data.Record { return s[name] }
