package workloads

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"

	"pado/internal/data"
	"pado/internal/dataflow"
)

// MRConfig sizes the page-view aggregation workload (the stand-in for the
// paper's 280GB Wikipedia page-view dump: hourly per-document view counts
// summed per document over the whole period).
type MRConfig struct {
	Partitions   int
	LinesPerPart int
	Docs         int
	Seed         int64
	ReducePar    int // informational; the engine config decides
	HeavyDocSkew float64

	// DeltaFrac marks the leading ceil(DeltaFrac*Partitions) partitions
	// dirty: their content (and partition fingerprint) also depends on
	// DeltaSalt, so rerunning with a different salt simulates an
	// incremental input update — that fraction of the input changed, the
	// rest byte-identical. Zero leaves every partition clean. Used by the
	// delta-rerun experiments against the commit store (DESIGN.md §14).
	DeltaFrac float64
	// DeltaSalt versions the dirty partitions' content.
	DeltaSalt int64
}

// dirty reports whether partition p is in the delta window.
func (cfg MRConfig) dirty(p int) bool {
	return float64(p) < cfg.DeltaFrac*float64(cfg.Partitions)
}

// partSeed is the partition's generator seed; dirty partitions fold in
// the salt so their records and fingerprints change with it.
func (cfg MRConfig) partSeed(p int) int64 {
	s := cfg.Seed + int64(p)*7919
	if cfg.dirty(p) {
		s += 1 + cfg.DeltaSalt
	}
	return s
}

// DefaultMRConfig returns a laptop-scale MR workload.
func DefaultMRConfig() MRConfig {
	return MRConfig{Partitions: 80, LinesPerPart: 3000, Docs: 20000, Seed: 11}
}

// MRSource generates the synthetic page-view log: each line is
// "doc<id> <count>", Zipf-skewed over documents like real page views.
func MRSource(cfg MRConfig) dataflow.Source {
	return &dataflow.FuncSource{
		Partitions: cfg.Partitions,
		Gen: func(p int) []data.Record {
			rng := rand.New(rand.NewSource(cfg.partSeed(p)))
			zipf := rand.NewZipf(rng, 1.2, 1, uint64(cfg.Docs-1))
			recs := make([]data.Record, cfg.LinesPerPart)
			for i := range recs {
				doc := zipf.Uint64()
				count := rng.Intn(1000)
				recs[i] = data.Record{Value: fmt.Sprintf("doc%07d %d", doc, count)}
			}
			return recs
		},
		// The fingerprint names everything the generator folds into one
		// partition, so identical content across runs fingerprints
		// identically and a salted dirty partition does not.
		Fingerprint: func(p int) string {
			return fmt.Sprintf("mr/%d/%d/%d/%d", cfg.LinesPerPart, cfg.Docs, p, cfg.partSeed(p))
		},
	}
}

// mrParseFn parses one log line and emits (doc, count).
type mrParseFn struct{}

func (mrParseFn) Process(r data.Record, _ dataflow.SideValues, emit dataflow.Emit) error {
	line := r.Value.(string)
	sp := strings.IndexByte(line, ' ')
	if sp < 0 {
		return fmt.Errorf("workloads: malformed line %q", line)
	}
	n, err := strconv.ParseInt(line[sp+1:], 10, 64)
	if err != nil {
		return err
	}
	emit(data.KV(line[:sp], n))
	return nil
}

// MR builds the Map-Reduce pipeline of Figure 3(a): Read -> Map (parse)
// -> Reduce (sum per document).
func MR(cfg MRConfig) *dataflow.Pipeline {
	p := dataflow.NewPipeline()
	lines := p.Read("read-pageviews", MRSource(cfg), LineCoder)
	counts := lines.ParDo("parse", mrParseFn{}, CountCoder)
	counts.CombinePerKey("sum-views", dataflow.SumInt64Fn{}, CountCoder,
		dataflow.WithAccumulatorCoder(CountCoder))
	return p
}

// MRReference computes the expected per-document sums sequentially.
func MRReference(cfg MRConfig) map[string]int64 {
	src := MRSource(cfg).(*dataflow.FuncSource)
	out := make(map[string]int64)
	for p := 0; p < cfg.Partitions; p++ {
		for _, r := range src.Gen(p) {
			line := r.Value.(string)
			sp := strings.IndexByte(line, ' ')
			n, _ := strconv.ParseInt(line[sp+1:], 10, 64)
			out[line[:sp]] += n
		}
	}
	return out
}
