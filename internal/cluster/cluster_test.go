package cluster

import (
	"sync"
	"testing"
	"time"

	"pado/internal/trace"
	"pado/internal/vtime"
)

// recorder collects lifecycle callbacks.
type recorder struct {
	mu       sync.Mutex
	launched []*Container
	evicted  []*Container
	failed   []*Container
}

func (r *recorder) ContainerLaunched(c *Container) {
	r.mu.Lock()
	r.launched = append(r.launched, c)
	r.mu.Unlock()
}
func (r *recorder) ContainerEvicted(c *Container) {
	r.mu.Lock()
	r.evicted = append(r.evicted, c)
	r.mu.Unlock()
}
func (r *recorder) ContainerFailed(c *Container) {
	r.mu.Lock()
	r.failed = append(r.failed, c)
	r.mu.Unlock()
}

func (r *recorder) counts() (int, int, int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.launched), len(r.evicted), len(r.failed)
}

func TestClusterStartAllocatesContainers(t *testing.T) {
	cl, err := New(Config{Transient: 3, Reserved: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()
	var rec recorder
	if err := cl.Start(&rec); err != nil {
		t.Fatal(err)
	}
	l, e, f := rec.counts()
	if l != 5 || e != 0 || f != 0 {
		t.Fatalf("callbacks = %d/%d/%d", l, e, f)
	}
	if got := len(cl.Containers(Transient)); got != 3 {
		t.Errorf("transient = %d", got)
	}
	if got := len(cl.Containers(Reserved)); got != 2 {
		t.Errorf("reserved = %d", got)
	}
	if cl.MasterNode() == nil || cl.MasterNode().ID() != "master" {
		t.Error("missing master node")
	}
	if cl.TransientConfigured() != 3 {
		t.Error("TransientConfigured wrong")
	}
	if err := cl.Start(&rec); err == nil {
		t.Error("second Start should fail")
	}
}

func TestClusterRequiresReserved(t *testing.T) {
	if _, err := New(Config{Transient: 1, Reserved: 0}); err == nil {
		t.Error("expected error without reserved containers")
	}
}

func TestEvictionAndReplacement(t *testing.T) {
	cl, err := New(Config{Transient: 2, Reserved: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()
	var rec recorder
	cl.Start(&rec)

	victim := cl.Containers(Transient)[0]
	if err := cl.EvictNow(victim.ID); err != nil {
		t.Fatal(err)
	}
	if !victim.Node.Closed() {
		t.Error("evicted container's node still up")
	}
	l, e, _ := rec.counts()
	if e != 1 {
		t.Errorf("evictions = %d", e)
	}
	if l != 4 { // 3 initial + 1 replacement
		t.Errorf("launches = %d, want 4", l)
	}
	if got := len(cl.Containers(Transient)); got != 2 {
		t.Errorf("transient after replacement = %d", got)
	}
	if cl.Evictions() != 1 {
		t.Errorf("Evictions() = %d", cl.Evictions())
	}
	// Evicting an unknown or reserved container fails.
	if err := cl.EvictNow("nope"); err == nil {
		t.Error("evicting unknown container should fail")
	}
	if err := cl.EvictNow(cl.Containers(Reserved)[0].ID); err == nil {
		t.Error("evicting reserved container should fail")
	}
}

func TestFailReserved(t *testing.T) {
	cl, err := New(Config{Transient: 1, Reserved: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()
	var rec recorder
	cl.Start(&rec)

	victim := cl.Containers(Reserved)[0]
	if err := cl.FailReserved(victim.ID, true); err != nil {
		t.Fatal(err)
	}
	_, _, f := rec.counts()
	if f != 1 {
		t.Errorf("failures = %d", f)
	}
	if got := len(cl.Containers(Reserved)); got != 2 {
		t.Errorf("reserved after replacement = %d", got)
	}
	if err := cl.FailReserved(cl.Containers(Transient)[0].ID, false); err == nil {
		t.Error("failing a transient container should error")
	}
}

func TestAutomaticEvictionsFromLifetimes(t *testing.T) {
	cl, err := New(Config{
		Transient:   4,
		Reserved:    1,
		Lifetimes:   trace.Lifetimes(trace.RateHigh),
		Scale:       vtime.NewScale(10 * time.Millisecond),
		MinLifetime: 5 * time.Millisecond,
		Seed:        7,
	})
	if err != nil {
		t.Fatal(err)
	}
	var rec recorder
	cl.Start(&rec)
	deadline := time.After(5 * time.Second)
	for {
		if cl.Evictions() >= 4 {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("only %d evictions after 5s", cl.Evictions())
		case <-time.After(5 * time.Millisecond):
		}
	}
	cl.Stop()
	if got := len(cl.Containers(Transient)); got != 0 {
		t.Errorf("containers after Stop = %d", got)
	}
}

func TestNoEvictionsWithoutLifetimes(t *testing.T) {
	cl, _ := New(Config{Transient: 2, Reserved: 1, Seed: 1})
	var rec recorder
	cl.Start(&rec)
	time.Sleep(50 * time.Millisecond)
	if cl.Evictions() != 0 {
		t.Errorf("unexpected evictions: %d", cl.Evictions())
	}
	cl.Stop()
}

func TestCPULimiterConfigured(t *testing.T) {
	cl, _ := New(Config{Transient: 1, Reserved: 1, CPURecordsPerSec: 1000, Seed: 1})
	defer cl.Stop()
	var rec recorder
	cl.Start(&rec)
	for _, c := range cl.Containers(Transient) {
		if c.CPU == nil {
			t.Error("transient container missing CPU limiter")
		}
	}
	cl2, _ := New(Config{Transient: 1, Reserved: 1, Seed: 1})
	defer cl2.Stop()
	cl2.Start(&rec)
	for _, c := range cl2.Containers(Transient) {
		if c.CPU != nil {
			t.Error("CPU limiter present without configuration")
		}
	}
}

func TestStopIdempotent(t *testing.T) {
	cl, _ := New(Config{Transient: 1, Reserved: 1, Seed: 1})
	var rec recorder
	cl.Start(&rec)
	cl.Stop()
	cl.Stop()
	if err := cl.EvictNow("t1"); err == nil {
		t.Error("eviction after Stop should fail")
	}
}
