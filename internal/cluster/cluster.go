// Package cluster simulates the datacenter environment of the paper's
// evaluation (§5.1.1): a resource manager that hands out reserved and
// transient containers, and an eviction driver that ends each transient
// container after a lifetime drawn from a trace-derived distribution,
// immediately replacing it with a fresh container — exactly the protocol
// the paper uses on its EC2 testbed.
package cluster

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"pado/internal/core"
	"pado/internal/simnet"
	"pado/internal/trace"
	"pado/internal/vtime"
)

// Kind classifies containers.
type Kind int

// Container kinds.
const (
	Reserved Kind = iota
	Transient
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	if k == Reserved {
		return "reserved"
	}
	return "transient"
}

// Container is a slice of one node's resources running one executor. In
// this simulation each container gets its own simnet node, mirroring the
// paper's one-instance-per-container setup.
type Container struct {
	ID   string
	Kind Kind
	Node *simnet.Node
	// Slots is the number of concurrent task slots of the executor.
	Slots int
	// CPU, when non-nil, is the executor's shared compute-capacity
	// limiter in records per second.
	CPU *simnet.Limiter
}

// Listener receives container lifecycle callbacks. Callbacks are invoked
// from the cluster's goroutines and must not block for long.
type Listener interface {
	// ContainerLaunched fires for initial allocations and replacements.
	ContainerLaunched(c *Container)
	// ContainerEvicted fires when a transient container is evicted; the
	// container's node is already down.
	ContainerEvicted(c *Container)
	// ContainerFailed fires when a reserved container suffers a machine
	// fault (test injection only; never spontaneous).
	ContainerFailed(c *Container)
}

// Config sizes and parameterizes the cluster.
type Config struct {
	Transient int
	Reserved  int
	// Slots per executor (default 4, matching the 4-vcore instances).
	Slots int
	// CPURecordsPerSec models each executor's compute capacity as a
	// record-processing rate shared by its task slots (0 = unlimited).
	// On a single-core host real CPU cannot model a 45-node cluster;
	// this limiter restores the per-node compute budget that makes the
	// few reserved containers a compute bottleneck for reduce-heavy
	// jobs (§5.3).
	CPURecordsPerSec int64

	// Bandwidths in bytes/second (0 = unlimited). The defaults model
	// the paper's instances: reserved i2.xlarge nodes get the higher
	// budget, transient m3.xlarge nodes the lower one.
	TransientBW int64
	ReservedBW  int64
	MasterBW    int64
	Latency     time.Duration

	// Lifetimes drives transient-container evictions; nil disables
	// evictions (the "none" eviction rate).
	Lifetimes *trace.LifetimeDist
	// Scale maps the lifetime distribution's paper-minutes onto wall
	// time.
	Scale vtime.Scale
	// MinLifetime floors sampled wall lifetimes to keep extremely short
	// samples schedulable (default 20ms).
	MinLifetime time.Duration
	Seed        int64
}

func (c Config) slots() int {
	if c.Slots <= 0 {
		return 4
	}
	return c.Slots
}

// PlacementEnv derives the capacity description consumed by
// capacity-aware placement policies: the cell's reserved and transient
// slot totals, and the expected eviction rate. With N transient
// containers whose lifetimes average m paper-minutes, evictions arrive at
// N/m per paper-minute in steady state (each eviction is immediately
// replaced, so the population is constant).
func (c Config) PlacementEnv() core.PolicyEnv {
	env := core.PolicyEnv{
		ReservedSlotBudget: c.Reserved * c.slots(),
		TransientSlots:     c.Transient * c.slots(),
	}
	if !c.Lifetimes.Empty() {
		if m := c.Lifetimes.Mean(); m > 0 {
			env.EvictionsPerMinute = float64(c.Transient) / m
		}
	}
	return env
}

func (c Config) minLifetime() time.Duration {
	if c.MinLifetime <= 0 {
		return 20 * time.Millisecond
	}
	return c.MinLifetime
}

// Cluster owns the network and the containers of one experiment.
type Cluster struct {
	cfg Config
	net *simnet.Network

	mu         sync.Mutex
	rng        *rand.Rand
	listener   Listener
	containers map[string]*Container
	next       int
	started    bool
	closed     bool
	masterNode *simnet.Node
	stopCh     chan struct{}
	wg         sync.WaitGroup
	evictions  int64
}

// New builds a cluster and its network. The master gets a dedicated
// reserved node named "master" (the paper runs the engines' master on an
// additional reserved container).
func New(cfg Config) (*Cluster, error) {
	if cfg.Transient < 0 || cfg.Reserved <= 0 {
		return nil, errors.New("cluster: need at least one reserved container")
	}
	if cfg.Scale.WallPerMinute <= 0 {
		cfg.Scale = vtime.DefaultScale()
	}
	net := simnet.New(simnet.Config{Latency: cfg.Latency})
	mn, err := net.AddNodeBW("master", cfg.MasterBW, cfg.MasterBW)
	if err != nil {
		return nil, err
	}
	return &Cluster{
		cfg:        cfg,
		net:        net,
		rng:        rand.New(rand.NewSource(cfg.Seed)),
		containers: make(map[string]*Container),
		masterNode: mn,
		stopCh:     make(chan struct{}),
	}, nil
}

// Net returns the cluster's network.
func (cl *Cluster) Net() *simnet.Network { return cl.net }

// TransientConfigured returns the configured number of transient
// containers (engines fall back to reserved executors for transient-side
// tasks only when the cluster was configured without any).
func (cl *Cluster) TransientConfigured() int { return cl.cfg.Transient }

// MasterNode returns the dedicated master node.
func (cl *Cluster) MasterNode() *simnet.Node { return cl.masterNode }

// Scale returns the paper-time scale in effect.
func (cl *Cluster) Scale() vtime.Scale { return cl.cfg.Scale }

// Evictions returns the number of evictions injected so far.
func (cl *Cluster) Evictions() int64 {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	return cl.evictions
}

// Start allocates the initial containers and begins the eviction driver.
// The listener receives a ContainerLaunched callback per container.
func (cl *Cluster) Start(l Listener) error {
	cl.mu.Lock()
	if cl.started {
		cl.mu.Unlock()
		return errors.New("cluster: already started")
	}
	cl.started = true
	cl.listener = l
	cl.mu.Unlock()

	for i := 0; i < cl.cfg.Reserved; i++ {
		if _, err := cl.allocate(Reserved); err != nil {
			return err
		}
	}
	for i := 0; i < cl.cfg.Transient; i++ {
		if _, err := cl.allocate(Transient); err != nil {
			return err
		}
	}
	return nil
}

// allocate creates a container, notifies the listener, and arms the
// eviction timer for transient containers.
func (cl *Cluster) allocate(kind Kind) (*Container, error) {
	cl.mu.Lock()
	if cl.closed {
		cl.mu.Unlock()
		return nil, errors.New("cluster: closed")
	}
	cl.next++
	var id string
	var bw int64
	if kind == Reserved {
		id = fmt.Sprintf("r%d", cl.next)
		bw = cl.cfg.ReservedBW
	} else {
		id = fmt.Sprintf("t%d", cl.next)
		bw = cl.cfg.TransientBW
	}
	node, err := cl.net.AddNodeBW(id, bw, bw)
	if err != nil {
		cl.mu.Unlock()
		return nil, err
	}
	c := &Container{ID: id, Kind: kind, Node: node, Slots: cl.cfg.slots()}
	if cl.cfg.CPURecordsPerSec > 0 {
		c.CPU = simnet.NewLimiter(cl.cfg.CPURecordsPerSec, cl.cfg.CPURecordsPerSec/4)
	}
	cl.containers[id] = c
	listener := cl.listener
	var lifetime time.Duration
	armed := false
	if kind == Transient && cl.cfg.Lifetimes != nil && !cl.cfg.Lifetimes.Empty() {
		mins := cl.cfg.Lifetimes.Sample(cl.rng)
		lifetime = cl.cfg.Scale.Wall(mins)
		if lifetime < cl.cfg.minLifetime() {
			lifetime = cl.cfg.minLifetime()
		}
		armed = true
	}
	cl.mu.Unlock()

	if listener != nil {
		listener.ContainerLaunched(c)
	}
	if armed {
		cl.wg.Add(1)
		go cl.evictionTimer(c, lifetime)
	}
	return c, nil
}

func (cl *Cluster) evictionTimer(c *Container, lifetime time.Duration) {
	defer cl.wg.Done()
	t := time.NewTimer(lifetime)
	defer t.Stop()
	select {
	case <-t.C:
	case <-cl.stopCh:
		return
	}
	cl.evict(c, true)
}

// evict takes a transient container down and, if replace is true,
// immediately allocates a replacement (§5.1.1).
func (cl *Cluster) evict(c *Container, replace bool) {
	cl.mu.Lock()
	if cl.closed {
		cl.mu.Unlock()
		return
	}
	if _, ok := cl.containers[c.ID]; !ok {
		cl.mu.Unlock()
		return
	}
	delete(cl.containers, c.ID)
	cl.evictions++
	listener := cl.listener
	cl.mu.Unlock()

	cl.net.RemoveNode(c.ID)
	if listener != nil {
		listener.ContainerEvicted(c)
	}
	if replace {
		_, _ = cl.allocate(Transient)
	}
}

// EvictNow forces an eviction of the named transient container (test
// injection). The replacement container is still allocated.
func (cl *Cluster) EvictNow(id string) error {
	cl.mu.Lock()
	c, ok := cl.containers[id]
	cl.mu.Unlock()
	if !ok {
		return fmt.Errorf("cluster: no container %q", id)
	}
	if c.Kind != Transient {
		return fmt.Errorf("cluster: container %q is reserved; use FailReserved", id)
	}
	cl.evict(c, true)
	return nil
}

// KillSilently takes the named container down WITHOUT notifying the
// listener — the failure-detector test injection: the node disappears
// from the network (streams break, dials fail) but no ContainerEvicted
// or ContainerFailed callback fires, so only heartbeat staleness can
// reveal the loss. A replacement of the same kind is still allocated
// when replace is true, matching the resource manager's behavior of
// backfilling capacity it reclaimed. Idempotent on already-gone ids.
func (cl *Cluster) KillSilently(id string, replace bool) error {
	cl.Quarantine(id, replace)
	return nil
}

// Quarantine removes the named container from the cluster without any
// listener callback — the master calls it when its failure detector
// declares a node dead, so the node cannot rejoin and later frames from
// it hit a removed simnet node; chaos uses it (via KillSilently) as the
// announcement-free kill injection. A same-kind replacement is allocated
// when replace is true. Idempotent: quarantining an already-gone
// container is a no-op. Returns the container's kind and whether it was
// present.
func (cl *Cluster) Quarantine(id string, replace bool) (Kind, bool) {
	cl.mu.Lock()
	c, ok := cl.containers[id]
	if !ok {
		cl.mu.Unlock()
		return 0, false
	}
	delete(cl.containers, id)
	if c.Kind == Transient {
		cl.evictions++
	}
	cl.mu.Unlock()

	cl.net.RemoveNode(id)
	if replace {
		_, _ = cl.allocate(c.Kind)
	}
	return c.Kind, true
}

// FailReserved injects a machine fault on a reserved container (§3.2.6).
// No replacement is allocated automatically; the caller decides.
func (cl *Cluster) FailReserved(id string, replace bool) error {
	cl.mu.Lock()
	c, ok := cl.containers[id]
	if !ok || c.Kind != Reserved {
		cl.mu.Unlock()
		return fmt.Errorf("cluster: no reserved container %q", id)
	}
	delete(cl.containers, id)
	listener := cl.listener
	cl.mu.Unlock()

	cl.net.RemoveNode(id)
	if listener != nil {
		listener.ContainerFailed(c)
	}
	if replace {
		_, err := cl.allocate(Reserved)
		return err
	}
	return nil
}

// Containers returns a snapshot of live containers of the given kind.
func (cl *Cluster) Containers(kind Kind) []*Container {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	var out []*Container
	for _, c := range cl.containers {
		if c.Kind == kind {
			out = append(out, c)
		}
	}
	return out
}

// Stop shuts the cluster down: eviction timers stop and every node goes
// down. Safe to call more than once.
func (cl *Cluster) Stop() {
	cl.mu.Lock()
	if cl.closed {
		cl.mu.Unlock()
		return
	}
	cl.closed = true
	close(cl.stopCh)
	conts := make([]*Container, 0, len(cl.containers))
	for _, c := range cl.containers {
		conts = append(conts, c)
	}
	cl.containers = make(map[string]*Container)
	cl.mu.Unlock()

	for _, c := range conts {
		cl.net.RemoveNode(c.ID)
	}
	cl.net.RemoveNode("master")
	cl.wg.Wait()
}
