package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSolveKnownSystem(t *testing.T) {
	a := [][]float64{{2, 1}, {1, 3}}
	b := []float64{5, 10}
	x, err := Solve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// 2x + y = 5, x + 3y = 10 -> x = 1, y = 3.
	if math.Abs(x[0]-1) > 1e-12 || math.Abs(x[1]-3) > 1e-12 {
		t.Errorf("got %v, want [1 3]", x)
	}
}

func TestSolveNeedsPivoting(t *testing.T) {
	// Zero on the initial pivot position forces a row swap.
	a := [][]float64{{0, 1}, {1, 0}}
	b := []float64{2, 3}
	x, err := Solve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-3) > 1e-12 || math.Abs(x[1]-2) > 1e-12 {
		t.Errorf("got %v, want [3 2]", x)
	}
}

func TestSolveSingular(t *testing.T) {
	a := [][]float64{{1, 2}, {2, 4}}
	if _, err := Solve(a, []float64{1, 2}); err == nil {
		t.Error("expected ErrSingular")
	}
}

func TestSolveDimensionMismatch(t *testing.T) {
	if _, err := Solve([][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Error("expected dimension error")
	}
	if _, err := Solve(nil, nil); err == nil {
		t.Error("expected error for empty system")
	}
}

// TestSolveProperty solves random SPD systems and verifies Ax = b.
func TestSolveProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(8)
		// Build SPD A = Q^T Q + I and a random b.
		a := Zeros(n)
		for k := 0; k < n+2; k++ {
			v := make([]float64, n)
			for i := range v {
				v[i] = rng.NormFloat64()
			}
			AddOuter(a, v, 1)
		}
		for i := 0; i < n; i++ {
			a[i][i] += 1
		}
		orig := Zeros(n)
		for i := range a {
			copy(orig[i], a[i])
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		bOrig := append([]float64(nil), b...)

		x, err := Solve(a, b)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for i := 0; i < n; i++ {
			var s float64
			for j := 0; j < n; j++ {
				s += orig[i][j] * x[j]
			}
			if math.Abs(s-bOrig[i]) > 1e-8 {
				t.Fatalf("trial %d: residual %g at row %d", trial, s-bOrig[i], i)
			}
		}
	}
}

func TestDot(t *testing.T) {
	if got := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); got != 32 {
		t.Errorf("Dot = %v, want 32", got)
	}
	if got := Dot(nil, nil); got != 0 {
		t.Errorf("empty Dot = %v", got)
	}
}

func TestAddOuter(t *testing.T) {
	m := Zeros(2)
	AddOuter(m, []float64{1, 2}, 3)
	want := [][]float64{{3, 6}, {6, 12}}
	for i := range want {
		for j := range want[i] {
			if m[i][j] != want[i][j] {
				t.Errorf("m[%d][%d] = %v, want %v", i, j, m[i][j], want[i][j])
			}
		}
	}
}

func TestSoftmax(t *testing.T) {
	probs := make([]float64, 3)
	Softmax([]float64{1, 2, 3}, probs)
	var sum float64
	for _, p := range probs {
		if p <= 0 || p >= 1 {
			t.Errorf("prob out of range: %v", p)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("probs sum to %v", sum)
	}
	if !(probs[2] > probs[1] && probs[1] > probs[0]) {
		t.Errorf("softmax not monotone: %v", probs)
	}
}

func TestSoftmaxStability(t *testing.T) {
	probs := make([]float64, 2)
	Softmax([]float64{1000, 1001}, probs)
	if math.IsNaN(probs[0]) || math.IsNaN(probs[1]) {
		t.Fatalf("softmax overflowed: %v", probs)
	}
	if math.Abs(probs[0]+probs[1]-1) > 1e-12 {
		t.Errorf("probs sum to %v", probs[0]+probs[1])
	}
}

func TestSoftmaxSumsToOneProperty(t *testing.T) {
	err := quick.Check(func(raw []float64) bool {
		scores := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				scores = append(scores, math.Mod(v, 1e6))
			}
		}
		if len(scores) == 0 {
			return true
		}
		probs := make([]float64, len(scores))
		Softmax(scores, probs)
		var sum float64
		for _, p := range probs {
			sum += p
		}
		return math.Abs(sum-1) < 1e-9
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Error(err)
	}
}

func TestAXPY(t *testing.T) {
	y := []float64{1, 1}
	AXPY(2, []float64{3, 4}, y)
	if y[0] != 7 || y[1] != 9 {
		t.Errorf("AXPY = %v", y)
	}
}

func TestMaxAbsDiff(t *testing.T) {
	if got := MaxAbsDiff([]float64{1, 2}, []float64{1, 5}); got != 3 {
		t.Errorf("MaxAbsDiff = %v", got)
	}
	if got := MaxAbsDiff([]float64{1}, []float64{1, 2}); !math.IsInf(got, 1) {
		t.Errorf("length mismatch should be +Inf, got %v", got)
	}
}
