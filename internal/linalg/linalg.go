// Package linalg provides the small dense linear-algebra kernels used by
// the evaluation workloads: the per-entity normal-equation solves of
// Alternating Least Squares and vector/matrix helpers for Multinomial
// Logistic Regression.
package linalg

import (
	"errors"
	"math"
)

// ErrSingular is returned when a solve encounters a (numerically)
// singular system.
var ErrSingular = errors.New("linalg: singular matrix")

// Solve solves A x = b by Gaussian elimination with partial pivoting,
// destroying A and b. A is row-major n×n.
func Solve(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	if n == 0 || len(b) != n {
		return nil, errors.New("linalg: dimension mismatch")
	}
	for col := 0; col < n; col++ {
		// Pivot.
		pivot := col
		best := math.Abs(a[col][col])
		for r := col + 1; r < n; r++ {
			if v := math.Abs(a[r][col]); v > best {
				best, pivot = v, r
			}
		}
		if best < 1e-12 {
			return nil, ErrSingular
		}
		if pivot != col {
			a[col], a[pivot] = a[pivot], a[col]
			b[col], b[pivot] = b[pivot], b[col]
		}
		inv := 1 / a[col][col]
		for r := col + 1; r < n; r++ {
			f := a[r][col] * inv
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				a[r][c] -= f * a[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	x := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		s := b[r]
		for c := r + 1; c < n; c++ {
			s -= a[r][c] * x[c]
		}
		x[r] = s / a[r][r]
	}
	return x, nil
}

// Dot returns the inner product of two equal-length vectors.
func Dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// AddOuter accumulates the outer product w * (v v^T) into the row-major
// square matrix m.
func AddOuter(m [][]float64, v []float64, w float64) {
	for i := range v {
		wi := w * v[i]
		row := m[i]
		for j := range v {
			row[j] += wi * v[j]
		}
	}
}

// Zeros returns an n×n zero matrix.
func Zeros(n int) [][]float64 {
	m := make([][]float64, n)
	buf := make([]float64, n*n)
	for i := range m {
		m[i], buf = buf[:n], buf[n:]
	}
	return m
}

// Softmax writes the softmax of scores into probs (stable version).
func Softmax(scores, probs []float64) {
	max := math.Inf(-1)
	for _, s := range scores {
		if s > max {
			max = s
		}
	}
	var sum float64
	for i, s := range scores {
		e := math.Exp(s - max)
		probs[i] = e
		sum += e
	}
	inv := 1 / sum
	for i := range probs {
		probs[i] *= inv
	}
}

// AXPY computes y += alpha * x.
func AXPY(alpha float64, x, y []float64) {
	for i := range x {
		y[i] += alpha * x[i]
	}
}

// MaxAbsDiff returns the largest absolute elementwise difference.
func MaxAbsDiff(a, b []float64) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	var max float64
	for i := 0; i < n; i++ {
		if d := math.Abs(a[i] - b[i]); d > max {
			max = d
		}
	}
	if len(a) != len(b) {
		return math.Inf(1)
	}
	return max
}
