package testutil

import (
	"io"
	"runtime/pprof"
)

// DumpGoroutines writes every goroutine's stack to w, at the given
// pprof debug level (2 = full unaggregated stacks with goroutine
// states, the level hang diagnosis needs). It is the dumper behind
// Watchdog, exported so non-test surfaces — the introspection plane's
// /debug/stacks endpoint — render the same evidence on demand.
func DumpGoroutines(w io.Writer, debug int) error {
	p := pprof.Lookup("goroutine")
	if p == nil {
		return nil
	}
	return p.WriteTo(w, debug)
}
