// Package testutil holds small helpers shared by the repo's test
// suites. It must not import any pado packages: every test package,
// including the low-level ones, needs to be able to pull it in.
package testutil

import (
	"fmt"
	"io"
	"os"
	"testing"
	"time"
)

// Watchdog arms a timer that dumps every goroutine's stack to stderr
// if the test is still running after limit. When `go test -timeout`
// fires it kills the whole binary, and under CI the panic traceback is
// frequently truncated or interleaved past usefulness — for the wedge
// bugs this repo's chaos tests hunt (hung pushes, stuck breakers,
// lost heartbeats), the stacks at the moment of the hang are the only
// evidence. Arm the watchdog below the binary timeout so the dump
// lands while the process is still healthy. The timer is disarmed
// when the test finishes, so a passing test prints nothing.
func Watchdog(tb testing.TB, limit time.Duration) {
	tb.Helper()
	watchdog(tb, limit, os.Stderr)
}

// watchdog is the writer-injectable core of Watchdog.
func watchdog(tb testing.TB, limit time.Duration, w io.Writer) {
	timer := time.AfterFunc(limit, func() {
		fmt.Fprintf(w, "\n=== watchdog: %s still running after %v; dumping goroutines ===\n",
			tb.Name(), limit)
		DumpGoroutines(w, 2)
		fmt.Fprintf(w, "=== watchdog: end of dump for %s ===\n", tb.Name())
	})
	tb.Cleanup(func() { timer.Stop() })
}
