package testutil

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

// lockedBuffer is a goroutine-safe bytes.Buffer: the watchdog writes
// from its timer goroutine while the test polls.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func TestWatchdogDumpsStacks(t *testing.T) {
	var out lockedBuffer
	watchdog(t, 10*time.Millisecond, &out)

	deadline := time.Now().Add(5 * time.Second)
	for {
		s := out.String()
		if strings.Contains(s, "watchdog: TestWatchdogDumpsStacks") &&
			strings.Contains(s, "goroutine") &&
			strings.Contains(s, "end of dump") {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("watchdog never dumped stacks; got:\n%s", s)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestWatchdogDisarmedOnFinish(t *testing.T) {
	var out lockedBuffer
	// Run the guarded work in a subtest so its Cleanup (which disarms
	// the timer) executes before we check for output.
	t.Run("fast", func(t *testing.T) {
		watchdog(t, 50*time.Millisecond, &out)
	})
	time.Sleep(150 * time.Millisecond)
	if s := out.String(); s != "" {
		t.Fatalf("watchdog fired after the test finished:\n%s", s)
	}
}
