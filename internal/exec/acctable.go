package exec

import (
	"sort"

	"pado/internal/data"
	"pado/internal/dataflow"
)

// AccTable is a keyed accumulator table for a CombineFn. It is the
// building block of both regular combining and the paper's partial
// aggregation (§3.2.7): transient executors fold task outputs into
// accumulator tables before pushing, and reserved executors merge pushed
// accumulator tables into their own on the fly.
type AccTable struct {
	fn     dataflow.CombineFn
	global bool
	// keyed accumulators; for global combines the single accumulator
	// lives under the nil-key sentinel.
	m     map[any]any
	keys  []any // insertion order for deterministic extraction
	dirty bool  // global accumulator initialized
	acc   any   // global accumulator
}

// NewAccTable returns an empty table for fn.
func NewAccTable(fn dataflow.CombineFn, global bool) *AccTable {
	return &AccTable{fn: fn, global: global, m: make(map[any]any)}
}

// Len returns the number of keys (1 or 0 for global tables).
func (t *AccTable) Len() int {
	if t.global {
		if t.dirty {
			return 1
		}
		return 0
	}
	return len(t.m)
}

// AddRecord folds one input record into the table.
func (t *AccTable) AddRecord(r data.Record) {
	if t.global {
		if !t.dirty {
			t.acc = t.fn.CreateAccumulator()
			t.dirty = true
		}
		t.acc = t.fn.AddInput(t.acc, r)
		return
	}
	acc, ok := t.m[r.Key]
	if !ok {
		acc = t.fn.CreateAccumulator()
		t.keys = append(t.keys, r.Key)
	}
	t.m[r.Key] = t.fn.AddInput(acc, r)
}

// MergeAcc merges an externally produced accumulator for key into the
// table. For global tables key is ignored.
func (t *AccTable) MergeAcc(key, acc any) {
	if t.global {
		if !t.dirty {
			t.acc = acc
			t.dirty = true
			return
		}
		t.acc = t.fn.MergeAccumulators(t.acc, acc)
		return
	}
	cur, ok := t.m[key]
	if !ok {
		t.m[key] = acc
		t.keys = append(t.keys, key)
		return
	}
	t.m[key] = t.fn.MergeAccumulators(cur, acc)
}

// AccRecords returns the table contents as (key, accumulator) records,
// the wire form of partial aggregation, in insertion order.
func (t *AccTable) AccRecords() []data.Record {
	if t.global {
		if !t.dirty {
			return nil
		}
		return []data.Record{{Key: nil, Value: t.acc}}
	}
	out := make([]data.Record, 0, len(t.keys))
	for _, k := range t.keys {
		out = append(out, data.Record{Key: k, Value: t.m[k]})
	}
	return out
}

// Extract finalizes the table into output records. Keyed output is
// sorted by key hash (then textual order for equal hashes) so extraction
// order is deterministic regardless of arrival order.
func (t *AccTable) Extract() []data.Record {
	if t.global {
		if !t.dirty {
			return nil
		}
		return []data.Record{t.fn.ExtractOutput(nil, t.acc)}
	}
	keys := append([]any(nil), t.keys...)
	sort.Slice(keys, func(i, j int) bool {
		hi, hj := data.HashKey(keys[i]), data.HashKey(keys[j])
		if hi != hj {
			return hi < hj
		}
		return lessAny(keys[i], keys[j])
	})
	out := make([]data.Record, 0, len(keys))
	for _, k := range keys {
		out = append(out, t.fn.ExtractOutput(k, t.m[k]))
	}
	return out
}

func lessAny(a, b any) bool {
	switch av := a.(type) {
	case string:
		if bv, ok := b.(string); ok {
			return av < bv
		}
	case int64:
		if bv, ok := b.(int64); ok {
			return av < bv
		}
	case int:
		if bv, ok := b.(int); ok {
			return av < bv
		}
	case float64:
		if bv, ok := b.(float64); ok {
			return av < bv
		}
	}
	return false
}
