package exec

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"pado/internal/dag"
	"pado/internal/data"
	"pado/internal/dataflow"
)

var kv = data.KVCoder{K: data.StringCoder, V: data.Int64Coder}

func TestRunFragmentChain(t *testing.T) {
	p := dataflow.NewPipeline()
	src := &dataflow.SliceSource{Parts: [][]data.Record{{
		data.KV("a", int64(1)), data.KV("b", int64(2)),
	}}}
	read := p.Read("read", src, kv)
	double := read.ParDo("double", dataflow.MapFunc(func(r data.Record) data.Record {
		return data.KV(r.Key, r.Value.(int64)*2)
	}), kv)

	g := p.Graph()
	in := Inputs{Read: map[dag.VertexID]func() (dataflow.Iterator, error){
		read.VertexID(): func() (dataflow.Iterator, error) { return src.Open(0) },
	}}
	outs, err := RunFragment(g, []dag.VertexID{read.VertexID(), double.VertexID()}, in)
	if err != nil {
		t.Fatal(err)
	}
	got := outs[double.VertexID()]
	want := []data.Record{data.KV("a", int64(2)), data.KV("b", int64(4))}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestRunFragmentSideInputs(t *testing.T) {
	p := dataflow.NewPipeline()
	src := &dataflow.SliceSource{Parts: [][]data.Record{{data.KV("x", int64(10))}}}
	model := p.Create("model", []data.Record{{Value: int64(5)}}, data.KVCoder{K: data.NilCoder, V: data.Int64Coder})
	read := p.Read("read", src, kv)
	addModel := read.ParDo("add-model", dataflow.DoFunc(
		func(r data.Record, sides dataflow.SideValues, emit dataflow.Emit) error {
			m := sides.Get("m")[0].Value.(int64)
			emit(data.KV(r.Key, r.Value.(int64)+m))
			return nil
		}), kv,
		dataflow.WithSide(dataflow.SideInput{Name: "m", From: model}))

	g := p.Graph()
	in := Inputs{
		Read: map[dag.VertexID]func() (dataflow.Iterator, error){
			read.VertexID(): func() (dataflow.Iterator, error) { return src.Open(0) },
		},
		Sides: map[dag.VertexID]map[string][]data.Record{
			addModel.VertexID(): {"m": {{Value: int64(5)}}},
		},
	}
	outs, err := RunFragment(g, []dag.VertexID{read.VertexID(), addModel.VertexID()}, in)
	if err != nil {
		t.Fatal(err)
	}
	if got := outs[addModel.VertexID()][0].Value.(int64); got != 15 {
		t.Errorf("got %d, want 15", got)
	}
}

func TestRunFragmentBundleFn(t *testing.T) {
	p := dataflow.NewPipeline()
	src := &dataflow.SliceSource{Parts: [][]data.Record{{
		{Value: int64(1)}, {Value: int64(2)}, {Value: int64(3)},
	}}}
	read := p.Read("read", src, data.KVCoder{K: data.NilCoder, V: data.Int64Coder})
	sum := read.ParDo("bundle-sum", bundleSumFn{}, data.KVCoder{K: data.NilCoder, V: data.Int64Coder})
	in := Inputs{Read: map[dag.VertexID]func() (dataflow.Iterator, error){
		read.VertexID(): func() (dataflow.Iterator, error) { return src.Open(0) },
	}}
	outs, err := RunFragment(p.Graph(), []dag.VertexID{read.VertexID(), sum.VertexID()}, in)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs[sum.VertexID()]) != 1 || outs[sum.VertexID()][0].Value.(int64) != 6 {
		t.Errorf("bundle sum = %v", outs[sum.VertexID()])
	}
}

type bundleSumFn struct{}

func (bundleSumFn) Process(data.Record, dataflow.SideValues, dataflow.Emit) error {
	return errors.New("should not be called per record")
}

func (bundleSumFn) ProcessBundle(recs []data.Record, _ dataflow.SideValues, emit dataflow.Emit) error {
	var s int64
	for _, r := range recs {
		s += r.Value.(int64)
	}
	emit(data.Record{Value: s})
	return nil
}

func TestRunFragmentMultiOp(t *testing.T) {
	p := dataflow.NewPipeline()
	a := p.Create("a", []data.Record{{Value: int64(10)}}, data.KVCoder{K: data.NilCoder, V: data.Int64Coder})
	b := p.Create("b", []data.Record{{Value: int64(3)}}, data.KVCoder{K: data.NilCoder, V: data.Int64Coder})
	diff := a.Apply("sub", dataflow.MultiDoFunc(func(inputs map[string][]data.Record, emit dataflow.Emit) error {
		emit(data.Record{Value: inputs[""][0].Value.(int64) - inputs["in1"][0].Value.(int64)})
		return nil
	}), data.KVCoder{K: data.NilCoder, V: data.Int64Coder}, b)

	in := Inputs{Ext: map[dag.VertexID]map[string][]data.Record{
		diff.VertexID(): {
			"":    {{Value: int64(10)}},
			"in1": {{Value: int64(3)}},
		},
	}}
	outs, err := RunFragment(p.Graph(), []dag.VertexID{diff.VertexID()}, in)
	if err != nil {
		t.Fatal(err)
	}
	if got := outs[diff.VertexID()][0].Value.(int64); got != 7 {
		t.Errorf("got %d, want 7", got)
	}
}

func TestRunFragmentThrottleCharges(t *testing.T) {
	p := dataflow.NewPipeline()
	src := &dataflow.SliceSource{Parts: [][]data.Record{{
		data.KV("a", int64(1)), data.KV("b", int64(2)),
	}}}
	read := p.Read("read", src, kv)
	costly := read.ParDo("costly", dataflow.MapFunc(func(r data.Record) data.Record { return r }),
		kv, dataflow.WithCost(10))
	var charged int
	in := Inputs{
		Read: map[dag.VertexID]func() (dataflow.Iterator, error){
			read.VertexID(): func() (dataflow.Iterator, error) { return src.Open(0) },
		},
		Throttle: func(n int) error { charged += n; return nil },
	}
	if _, err := RunFragment(p.Graph(), []dag.VertexID{read.VertexID(), costly.VertexID()}, in); err != nil {
		t.Fatal(err)
	}
	// 2 records x cost 10 for the ParDo (reads are charged by the
	// executors, not the interpreter).
	if charged != 20 {
		t.Errorf("charged %d, want 20", charged)
	}
}

func TestRunFragmentErrorsPropagate(t *testing.T) {
	p := dataflow.NewPipeline()
	src := &dataflow.SliceSource{Parts: [][]data.Record{{data.KV("a", int64(1))}}}
	read := p.Read("read", src, kv)
	bad := read.ParDo("bad", dataflow.DoFunc(func(data.Record, dataflow.SideValues, dataflow.Emit) error {
		return errors.New("user fn failure")
	}), kv)
	in := Inputs{Read: map[dag.VertexID]func() (dataflow.Iterator, error){
		read.VertexID(): func() (dataflow.Iterator, error) { return src.Open(0) },
	}}
	if _, err := RunFragment(p.Graph(), []dag.VertexID{read.VertexID(), bad.VertexID()}, in); err == nil {
		t.Error("expected user fn error")
	}
	// Missing reader should error too.
	if _, err := RunFragment(p.Graph(), []dag.VertexID{read.VertexID()}, Inputs{}); err == nil {
		t.Error("expected missing-reader error")
	}
}

func TestAccTableKeyed(t *testing.T) {
	tbl := NewAccTable(dataflow.SumInt64Fn{}, false)
	tbl.AddRecord(data.KV("a", int64(1)))
	tbl.AddRecord(data.KV("b", int64(5)))
	tbl.AddRecord(data.KV("a", int64(2)))
	if tbl.Len() != 2 {
		t.Errorf("len = %d", tbl.Len())
	}
	out := tbl.Extract()
	m := map[string]int64{}
	for _, r := range out {
		m[r.Key.(string)] = r.Value.(int64)
	}
	if m["a"] != 3 || m["b"] != 5 {
		t.Errorf("extract = %v", m)
	}
}

func TestAccTableGlobal(t *testing.T) {
	tbl := NewAccTable(dataflow.SumInt64Fn{}, true)
	if tbl.Len() != 0 || len(tbl.Extract()) != 0 {
		t.Error("empty global table should extract nothing")
	}
	tbl.AddRecord(data.Record{Value: int64(4)})
	tbl.AddRecord(data.Record{Value: int64(6)})
	out := tbl.Extract()
	if len(out) != 1 || out[0].Value.(int64) != 10 {
		t.Errorf("global extract = %v", out)
	}
}

func TestAccTableMergeEquivalence(t *testing.T) {
	// Property: folding records directly equals folding into two tables
	// and merging their accumulator records — the invariant partial
	// aggregation relies on (§3.2.7).
	err := quick.Check(func(keys []uint8, vals []int64) bool {
		n := len(keys)
		if len(vals) < n {
			n = len(vals)
		}
		direct := NewAccTable(dataflow.SumInt64Fn{}, false)
		left := NewAccTable(dataflow.SumInt64Fn{}, false)
		right := NewAccTable(dataflow.SumInt64Fn{}, false)
		for i := 0; i < n; i++ {
			r := data.KV(fmt.Sprintf("k%d", keys[i]%8), vals[i])
			direct.AddRecord(r)
			if i%2 == 0 {
				left.AddRecord(r)
			} else {
				right.AddRecord(r)
			}
		}
		merged := NewAccTable(dataflow.SumInt64Fn{}, false)
		for _, acc := range left.AccRecords() {
			merged.MergeAcc(acc.Key, acc.Value)
		}
		for _, acc := range right.AccRecords() {
			merged.MergeAcc(acc.Key, acc.Value)
		}
		return reflect.DeepEqual(sortRecs(direct.Extract()), sortRecs(merged.Extract()))
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Error(err)
	}
}

func sortRecs(recs []data.Record) []data.Record {
	sort.Slice(recs, func(i, j int) bool {
		return recs[i].Key.(string) < recs[j].Key.(string)
	})
	return recs
}

func TestAccTableExtractDeterministic(t *testing.T) {
	// Extraction order must not depend on insertion order.
	rng := rand.New(rand.NewSource(5))
	recs := make([]data.Record, 50)
	for i := range recs {
		recs[i] = data.KV(fmt.Sprintf("k%d", i%17), int64(i))
	}
	t1 := NewAccTable(dataflow.SumInt64Fn{}, false)
	for _, r := range recs {
		t1.AddRecord(r)
	}
	shuffled := append([]data.Record(nil), recs...)
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	t2 := NewAccTable(dataflow.SumInt64Fn{}, false)
	for _, r := range shuffled {
		t2.AddRecord(r)
	}
	if !reflect.DeepEqual(t1.Extract(), t2.Extract()) {
		t.Error("extraction order depends on insertion order")
	}
}

func TestCombineOpInterpretation(t *testing.T) {
	p := dataflow.NewPipeline()
	src := &dataflow.SliceSource{Parts: [][]data.Record{{}}}
	read := p.Read("read", src, kv)
	sum := read.CombinePerKey("sum", dataflow.SumInt64Fn{}, kv)
	in := Inputs{Ext: map[dag.VertexID]map[string][]data.Record{
		sum.VertexID(): {"": {
			data.KV("x", int64(1)), data.KV("x", int64(2)), data.KV("y", int64(7)),
		}},
	}}
	outs, err := RunFragment(p.Graph(), []dag.VertexID{sum.VertexID()}, in)
	if err != nil {
		t.Fatal(err)
	}
	m := map[string]int64{}
	for _, r := range outs[sum.VertexID()] {
		m[r.Key.(string)] = r.Value.(int64)
	}
	if m["x"] != 3 || m["y"] != 7 {
		t.Errorf("combine = %v", m)
	}
}
