// Package exec interprets fused operator chains over materialized record
// partitions. Both engines (the Pado runtime and the Spark-like baseline)
// share this interpreter so result differences between engines can only
// come from scheduling and data movement, never from operator semantics.
package exec

import (
	"fmt"

	"pado/internal/dag"
	"pado/internal/data"
	"pado/internal/dataflow"
)

// Inputs carries the externally supplied inputs of a fragment run.
type Inputs struct {
	// Ext maps an operator to its tagged external inputs: the main
	// input under "", additional aligned inputs under "in1", "in2", ...
	Ext map[dag.VertexID]map[string][]data.Record
	// Sides maps an operator to its materialized broadcast side inputs
	// by side-input name.
	Sides map[dag.VertexID]map[string][]data.Record
	// Read maps a ReadOp vertex to an iterator opener for the task's
	// partition.
	Read map[dag.VertexID]func() (dataflow.Iterator, error)
	// Created maps a CreateOp vertex to its records (the runtime passes
	// the op's captured records).
	Created map[dag.VertexID][]data.Record
	// Throttle, when set, is charged once per record an operator
	// consumes, modeling per-executor CPU capacity. It blocks until
	// capacity is available and returns an error when the executor is
	// shutting down.
	Throttle func(records int) error
}

type sideMap map[string][]data.Record

func (s sideMap) Get(name string) []data.Record { return s[name] }

// RunFragment executes ops (a topologically ordered fused fragment of g)
// and returns the output records of every operator in the fragment.
// Intra-fragment one-to-one edges are wired automatically; everything
// else must be provided via in.
func RunFragment(g *dag.Graph, ops []dag.VertexID, in Inputs) (map[dag.VertexID][]data.Record, error) {
	inFrag := make(map[dag.VertexID]bool, len(ops))
	for _, op := range ops {
		inFrag[op] = true
	}
	out := make(map[dag.VertexID][]data.Record, len(ops))

	for _, id := range ops {
		v := g.Vertex(id)
		// Assemble tagged inputs: intra-fragment edges first, then
		// externally provided ones.
		tagged := make(map[string][]data.Record)
		for _, e := range g.InEdges(id) {
			if inFrag[e.From] {
				if e.Dep != dag.OneToOne {
					return nil, fmt.Errorf("exec: intra-fragment %v edge into %q", e.Dep, v.Name)
				}
				tagged[e.Tag] = append(tagged[e.Tag], out[e.From]...)
			}
		}
		if ext, ok := in.Ext[id]; ok {
			for tag, recs := range ext {
				tagged[tag] = append(tagged[tag], recs...)
			}
		}

		if in.Throttle != nil {
			n := 0
			for _, recs := range tagged {
				n += len(recs)
			}
			if n > 0 {
				if err := in.Throttle(n * dataflow.OpCost(v)); err != nil {
					return nil, err
				}
			}
		}
		recs, err := runOp(v, tagged, in)
		if err != nil {
			return nil, fmt.Errorf("exec: operator %q: %w", v.Name, err)
		}
		out[id] = recs
	}
	return out, nil
}

func runOp(v *dag.Vertex, tagged map[string][]data.Record, in Inputs) ([]data.Record, error) {
	switch op := v.Op.(type) {
	case *dataflow.CreateOp:
		if recs, ok := in.Created[v.ID]; ok {
			return recs, nil
		}
		return op.Records, nil

	case *dataflow.ReadOp:
		open, ok := in.Read[v.ID]
		if !ok {
			return nil, fmt.Errorf("no reader provided")
		}
		it, err := open()
		if err != nil {
			return nil, err
		}
		defer it.Close()
		var recs []data.Record
		for {
			r, ok, err := it.Next()
			if err != nil {
				return nil, err
			}
			if !ok {
				return recs, nil
			}
			recs = append(recs, r)
		}

	case *dataflow.ParDoOp:
		sides := sideMap{}
		if s, ok := in.Sides[v.ID]; ok {
			sides = sideMap(s)
		}
		var outRecs []data.Record
		emit := func(r data.Record) { outRecs = append(outRecs, r) }
		if bf, ok := op.Fn.(dataflow.BundleDoFn); ok {
			if err := bf.ProcessBundle(tagged[""], sides, emit); err != nil {
				return nil, err
			}
			return outRecs, nil
		}
		for _, r := range tagged[""] {
			if err := op.Fn.Process(r, sides, emit); err != nil {
				return nil, err
			}
		}
		return outRecs, nil

	case *dataflow.MultiOp:
		var outRecs []data.Record
		emit := func(r data.Record) { outRecs = append(outRecs, r) }
		if err := op.Fn.ProcessPartition(tagged, emit); err != nil {
			return nil, err
		}
		return outRecs, nil

	case *dataflow.CombineOp:
		// Combines normally run on the receiving side; interpreting one
		// here (the Spark-like reduce path) folds the materialized
		// partition directly.
		t := NewAccTable(op.Fn, op.Global)
		for _, r := range tagged[""] {
			t.AddRecord(r)
		}
		return t.Extract(), nil

	default:
		return nil, fmt.Errorf("unknown operator payload %T", v.Op)
	}
}
