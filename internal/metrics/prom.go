package metrics

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text exposition (text format 0.0.4) over the Job
// registries, with no client_golang dependency. A PromSet gathers one
// or more registries — the fleet-wide registry unlabeled, per-job
// registries under a `job` label — plus ad-hoc gauge samples (per-node
// detector state), groups samples into families so each family gets
// exactly one `# TYPE` line no matter how many registries contribute
// to it, and writes deterministically sorted text.

// Label is one Prometheus label pair attached to a sample.
type Label struct {
	Name  string
	Value string
}

// promSample is one exposition line (or, for histograms, one series of
// _bucket/_sum/_count lines).
type promSample struct {
	labels []Label
	value  int64
	hist   *HistSnapshot
}

// promFamily is one metric family: a name, a type, and the samples
// contributed by every gathered registry.
type promFamily struct {
	name    string // full exposition name (counters include _total)
	typ     string // "counter" | "gauge" | "histogram"
	samples []promSample
}

// PromSet accumulates metric families for one exposition. Not safe for
// concurrent use; build, write, discard per scrape.
type PromSet struct {
	fams map[string]*promFamily
}

// NewPromSet returns an empty exposition set.
func NewPromSet() *PromSet {
	return &PromSet{fams: make(map[string]*promFamily)}
}

// family returns the family registered under name, minting it with typ
// on first use. A name gathered again under a conflicting type keeps
// its first type and drops the new sample — exposing two types for one
// name is invalid Prometheus text, and first-wins keeps Write valid no
// matter what combination of registries is gathered.
func (p *PromSet) family(name, typ string) *promFamily {
	f, ok := p.fams[name]
	if !ok {
		f = &promFamily{name: name, typ: typ}
		p.fams[name] = f
		return f
	}
	if f.typ != typ {
		return nil
	}
	return f
}

// Gather adds every counter, gauge, and histogram of reg to the set,
// attaching the given labels to each sample. Nil-safe.
func (p *PromSet) Gather(reg *Job, labels ...Label) {
	if reg == nil {
		return
	}
	reg.Each(func(name string, v int64) {
		if f := p.family(PromName(name)+"_total", "counter"); f != nil {
			f.samples = append(f.samples, promSample{labels: labels, value: v})
		}
	})
	reg.EachGauge(func(name string, v int64) {
		if f := p.family(PromName(name), "gauge"); f != nil {
			f.samples = append(f.samples, promSample{labels: labels, value: v})
		}
	})
	reg.EachHistogram(func(name string, s HistSnapshot) {
		if f := p.family(PromName(name), "histogram"); f != nil {
			h := s
			f.samples = append(f.samples, promSample{labels: labels, hist: &h})
		}
	})
}

// AddGauge adds one ad-hoc gauge sample under the (sanitized) name —
// state that lives outside any registry, like per-node detector status.
func (p *PromSet) AddGauge(name string, value int64, labels ...Label) {
	if f := p.family(PromName(name), "gauge"); f != nil {
		f.samples = append(f.samples, promSample{labels: labels, value: value})
	}
}

// Write renders the set as Prometheus text: families sorted by name,
// one TYPE line each, samples in gather order.
func (p *PromSet) Write(w io.Writer) error {
	names := make([]string, 0, len(p.fams))
	for name := range p.fams {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, name := range names {
		f := p.fams[name]
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)
		for _, s := range f.samples {
			if f.typ == "histogram" {
				writeHistSample(&b, f.name, s)
				continue
			}
			fmt.Fprintf(&b, "%s%s %d\n", f.name, promLabels(s.labels, "", 0), s.value)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeHistSample renders one histogram series: cumulative _bucket
// lines for each non-empty bucket plus the mandatory +Inf bucket, then
// _sum and _count. Sparse buckets are valid exposition — le values need
// not enumerate every bound, only be cumulative.
func writeHistSample(b *strings.Builder, name string, s promSample) {
	var cum int64
	for _, bk := range s.hist.Buckets {
		cum += bk.Count
		fmt.Fprintf(b, "%s_bucket%s %d\n", name,
			promLabels(s.labels, "le", float64(bk.UpperBound)), cum)
	}
	fmt.Fprintf(b, "%s_bucket%s %d\n", name,
		promLabels(s.labels, "le", 0), s.hist.Count) // le="+Inf"
	fmt.Fprintf(b, "%s_sum%s %d\n", name, promLabels(s.labels, "", 0), s.hist.Sum)
	fmt.Fprintf(b, "%s_count%s %d\n", name, promLabels(s.labels, "", 0), s.hist.Count)
}

// promLabels renders a label set, optionally appending an le label
// (leName "le"; le==0 with leName set means +Inf). Returns "" when
// empty.
func promLabels(labels []Label, leName string, le float64) string {
	if len(labels) == 0 && leName == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, labelName(l.Name), escapeLabel(l.Value))
	}
	if leName != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		v := "+Inf"
		if le != 0 {
			v = strconv.FormatFloat(le, 'g', -1, 64)
		}
		fmt.Fprintf(&b, `%s="%s"`, leName, v)
	}
	b.WriteByte('}')
	return b.String()
}

// labelName sanitizes a label name (no pado_ prefix — label names are
// caller-scoped, not metric names).
func labelName(name string) string {
	out := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			return r
		default:
			return '_'
		}
	}, name)
	if out == "" || out[0] >= '0' && out[0] <= '9' {
		out = "_" + out
	}
	return out
}

// escapeLabel escapes a label value per the exposition format, which
// recognizes exactly three escapes: `\\`, `\"`, and `\n`. Other control
// characters are dropped rather than hex-escaped (strict parsers
// reject unrecognized escape sequences).
func escapeLabel(v string) string {
	var b strings.Builder
	for _, r := range v {
		switch {
		case r == '\\':
			b.WriteString(`\\`)
		case r == '"':
			b.WriteString(`\"`)
		case r == '\n':
			b.WriteString(`\n`)
		case r < 0x20:
			// dropped
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// PromName sanitizes name into a legal Prometheus metric/label name
// prefixed with "pado_": every character outside [a-zA-Z0-9_] becomes
// '_'. Dots in obs counter names ("obs.task_launched") map to
// "pado_obs_task_launched".
func PromName(name string) string {
	var b strings.Builder
	b.WriteString("pado_")
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}
