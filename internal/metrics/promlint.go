package metrics

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// LintPrometheus is a promtool-style validator for the text exposition
// format, with no external dependency: the CI http-smoke lane (via
// `padotop -lint`) and the introspect server tests run a scraped
// /metrics page through it. It checks that
//
//   - every # TYPE line names a legal metric with a known type, at most
//     once per family, before any of the family's samples;
//   - every sample line parses (legal name, well-formed label set,
//     float-parseable value) and belongs to a declared family, with the
//     suffix rules applied (counters expose only the _total sample;
//     histograms only _bucket/_sum/_count);
//   - every histogram series carries an le="+Inf" bucket equal to its
//     _count, with cumulative (non-decreasing) bucket values;
//   - the page exposes at least one sample.
//
// It returns nil for a valid page and an error naming the first (or an
// aggregate of) violations otherwise.
func LintPrometheus(r io.Reader) error {
	types := make(map[string]string) // family -> type
	seenSamples := make(map[string]bool)
	samples := 0
	type histSeries struct {
		inf, count     int64
		hasInf, hasCnt bool
		lastLE         float64
		lastCum        int64
		any            bool
	}
	hists := make(map[string]*histSeries) // family + label-key
	var errs []string
	addErr := func(line int, format string, args ...any) {
		if len(errs) < 10 {
			errs = append(errs, fmt.Sprintf("line %d: %s", line, fmt.Sprintf(format, args...)))
		}
	}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 2 && fields[1] == "TYPE" {
				if len(fields) != 4 {
					addErr(lineNo, "malformed TYPE line: %q", line)
					continue
				}
				name, typ := fields[2], fields[3]
				if !validMetricName(name) {
					addErr(lineNo, "invalid metric name in TYPE: %q", name)
				}
				switch typ {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					addErr(lineNo, "unknown type %q for %s", typ, name)
				}
				if _, dup := types[name]; dup {
					addErr(lineNo, "duplicate TYPE line for %s", name)
				}
				if seenSamples[name] {
					addErr(lineNo, "TYPE line for %s after its samples", name)
				}
				types[name] = typ
			}
			continue
		}

		name, labels, value, err := parseSample(line)
		if err != nil {
			addErr(lineNo, "%v", err)
			continue
		}
		samples++
		fam, suffix := familyOf(name, types)
		if fam == "" {
			addErr(lineNo, "sample %s has no TYPE line", name)
			continue
		}
		seenSamples[fam] = true
		typ := types[fam]
		switch typ {
		case "counter":
			// Both conventions are valid text format: a family declared
			// as the base name with samples at base_total (OpenMetrics
			// style), or the family itself carrying the _total suffix
			// with exact-name samples (what PromSet writes). Either
			// way, the sample line must end in _total.
			if suffix != "_total" && !strings.HasSuffix(name, "_total") {
				addErr(lineNo, "counter %s sample must end in _total (got %s)", fam, name)
			}
		case "histogram":
			switch suffix {
			case "_bucket":
				key := fam + "|" + labelKey(labels, "le")
				h := hists[key]
				if h == nil {
					h = &histSeries{}
					hists[key] = h
				}
				le, ok := labels["le"]
				if !ok {
					addErr(lineNo, "histogram bucket %s missing le label", name)
					continue
				}
				cum := int64(value)
				if le == "+Inf" {
					h.inf, h.hasInf = cum, true
				} else {
					lef, err := strconv.ParseFloat(le, 64)
					if err != nil {
						addErr(lineNo, "unparseable le=%q on %s", le, name)
						continue
					}
					if h.any && (lef <= h.lastLE || cum < h.lastCum) {
						addErr(lineNo, "non-cumulative buckets on %s (le=%v cum=%d after le=%v cum=%d)",
							fam, lef, cum, h.lastLE, h.lastCum)
					}
					h.lastLE, h.lastCum, h.any = lef, cum, true
				}
			case "_sum":
			case "_count":
				key := fam + "|" + labelKey(labels, "le")
				h := hists[key]
				if h == nil {
					h = &histSeries{}
					hists[key] = h
				}
				h.count, h.hasCnt = int64(value), true
			default:
				addErr(lineNo, "histogram %s sample must end in _bucket/_sum/_count (got %s)", fam, name)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("lint: read: %w", err)
	}
	if samples == 0 {
		addErr(lineNo, "page exposes no samples")
	}
	for key, h := range hists {
		fam := key[:strings.IndexByte(key, '|')]
		if !h.hasInf {
			addErr(0, "histogram %s{%s} missing le=\"+Inf\" bucket", fam, key[len(fam)+1:])
		} else if h.hasCnt && h.inf != h.count {
			addErr(0, "histogram %s{%s}: +Inf bucket %d != count %d", fam, key[len(fam)+1:], h.inf, h.count)
		}
	}
	if len(errs) > 0 {
		return fmt.Errorf("lint: %s", strings.Join(errs, "; "))
	}
	return nil
}

// familyOf resolves a sample name to its declared family: exact match,
// or the name minus a recognized suffix when the stripped family is
// declared with a matching type.
func familyOf(name string, types map[string]string) (fam, suffix string) {
	if _, ok := types[name]; ok {
		return name, ""
	}
	for _, suf := range []string{"_total", "_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suf)
		if base != name {
			if _, ok := types[base]; ok {
				return base, suf
			}
		}
	}
	return "", ""
}

// parseSample parses one exposition sample line.
func parseSample(line string) (name string, labels map[string]string, value float64, err error) {
	rest := line
	i := 0
	for i < len(rest) && isNameChar(rest[i], i == 0) {
		i++
	}
	name = rest[:i]
	if name == "" || !validMetricName(name) {
		return "", nil, 0, fmt.Errorf("invalid sample name in %q", line)
	}
	rest = rest[i:]
	if strings.HasPrefix(rest, "{") {
		end := -1
		inQ := false
		for j := 1; j < len(rest); j++ {
			switch {
			case inQ && rest[j] == '\\':
				j++
			case rest[j] == '"':
				inQ = !inQ
			case !inQ && rest[j] == '}':
				end = j
			}
			if end >= 0 {
				break
			}
		}
		if end < 0 {
			return "", nil, 0, fmt.Errorf("unterminated label set in %q", line)
		}
		labels, err = parseLabels(rest[1:end])
		if err != nil {
			return "", nil, 0, fmt.Errorf("%v in %q", err, line)
		}
		rest = rest[end+1:]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 { // optional trailing timestamp
		return "", nil, 0, fmt.Errorf("malformed sample %q", line)
	}
	value, err = strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return "", nil, 0, fmt.Errorf("unparseable value %q in %q", fields[0], line)
	}
	return name, labels, value, nil
}

// parseLabels parses `k="v",k2="v2"` (contents between the braces).
func parseLabels(s string) (map[string]string, error) {
	labels := make(map[string]string)
	for len(s) > 0 {
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return nil, fmt.Errorf("label pair missing '='")
		}
		k := strings.TrimSpace(s[:eq])
		if !validMetricName(k) {
			return nil, fmt.Errorf("invalid label name %q", k)
		}
		s = s[eq+1:]
		if len(s) == 0 || s[0] != '"' {
			return nil, fmt.Errorf("label %s value not quoted", k)
		}
		var v strings.Builder
		j := 1
		for ; j < len(s); j++ {
			if s[j] == '\\' && j+1 < len(s) {
				j++
				switch s[j] {
				case '\\':
					v.WriteByte('\\')
				case '"':
					v.WriteByte('"')
				case 'n':
					v.WriteByte('\n')
				default:
					return nil, fmt.Errorf("unrecognized escape \\%c in label %s", s[j], k)
				}
				continue
			}
			if s[j] == '"' {
				break
			}
			v.WriteByte(s[j])
		}
		if j >= len(s) {
			return nil, fmt.Errorf("unterminated value for label %s", k)
		}
		labels[k] = v.String()
		s = s[j+1:]
		s = strings.TrimPrefix(strings.TrimSpace(s), ",")
		s = strings.TrimSpace(s)
	}
	return labels, nil
}

// labelKey renders a label set minus one key, for grouping histogram
// series.
func labelKey(labels map[string]string, skip string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		if k != skip {
			keys = append(keys, k)
		}
	}
	if len(keys) == 0 {
		return ""
	}
	// Deterministic small-set sort.
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(labels[k])
	}
	return b.String()
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		if !isNameChar(s[i], i == 0) {
			return false
		}
	}
	return true
}

func isNameChar(c byte, first bool) bool {
	if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || c == ':' {
		return true
	}
	return !first && c >= '0' && c <= '9'
}
