// Package metrics collects per-job counters used by the experiment
// harness: task launches and relaunches (the paper's "ratio of relaunched
// tasks to original tasks"), data movement volumes, and eviction counts.
package metrics

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Job aggregates counters for one job run. All fields are safe for
// concurrent update.
type Job struct {
	// OriginalTasks counts distinct tasks of the physical plan that
	// were launched at least once.
	OriginalTasks atomic.Int64
	// RelaunchedTasks counts task launches beyond each task's first
	// attempt (recomputations and eviction relaunches).
	RelaunchedTasks atomic.Int64
	// Evictions counts transient container evictions observed while
	// the job ran.
	Evictions atomic.Int64
	// BytesPushed counts payload bytes pushed from transient to
	// reserved executors (Pado's escape path).
	BytesPushed atomic.Int64
	// BytesFetched counts payload bytes pulled from stage outputs,
	// shuffle pulls, and broadcast fetches.
	BytesFetched atomic.Int64
	// BytesCheckpointed counts payload bytes written to stable storage
	// (Spark-checkpoint only).
	BytesCheckpointed atomic.Int64
	// CacheHits and CacheMisses count task-input-cache lookups.
	CacheHits   atomic.Int64
	CacheMisses atomic.Int64
}

// RelaunchRatio returns relaunched/original, the paper's Figures 5-7
// lower panels.
func (j *Job) RelaunchRatio() float64 {
	o := j.OriginalTasks.Load()
	if o == 0 {
		return 0
	}
	return float64(j.RelaunchedTasks.Load()) / float64(o)
}

// Snapshot is an immutable copy of the counters plus the measured job
// completion time.
type Snapshot struct {
	JCT               time.Duration
	TimedOut          bool
	OriginalTasks     int64
	RelaunchedTasks   int64
	Evictions         int64
	BytesPushed       int64
	BytesFetched      int64
	BytesCheckpointed int64
	CacheHits         int64
	CacheMisses       int64
}

// Snapshot captures the current counter values.
func (j *Job) Snapshot(jct time.Duration, timedOut bool) Snapshot {
	return Snapshot{
		JCT:               jct,
		TimedOut:          timedOut,
		OriginalTasks:     j.OriginalTasks.Load(),
		RelaunchedTasks:   j.RelaunchedTasks.Load(),
		Evictions:         j.Evictions.Load(),
		BytesPushed:       j.BytesPushed.Load(),
		BytesFetched:      j.BytesFetched.Load(),
		BytesCheckpointed: j.BytesCheckpointed.Load(),
		CacheHits:         j.CacheHits.Load(),
		CacheMisses:       j.CacheMisses.Load(),
	}
}

// RelaunchRatio of the snapshot.
func (s Snapshot) RelaunchRatio() float64 {
	if s.OriginalTasks == 0 {
		return 0
	}
	return float64(s.RelaunchedTasks) / float64(s.OriginalTasks)
}

// String summarizes the snapshot on one line.
func (s Snapshot) String() string {
	return fmt.Sprintf("jct=%v timedOut=%v tasks=%d relaunched=%d (%.0f%%) evictions=%d pushed=%dB fetched=%dB ckpt=%dB",
		s.JCT, s.TimedOut, s.OriginalTasks, s.RelaunchedTasks, s.RelaunchRatio()*100,
		s.Evictions, s.BytesPushed, s.BytesFetched, s.BytesCheckpointed)
}
