// Package metrics collects per-job counters used by the experiment
// harness: task launches and relaunches (the paper's "ratio of relaunched
// tasks to original tasks"), data movement volumes, and eviction counts.
//
// Job is a named-counter registry. The paper-facing counters remain
// addressable as plain struct fields (Job.Evictions.Add(1)) — they are
// thin accessors over the same storage the registry exposes by name —
// while any subsystem (the obs tracing layer, engine extensions, tests)
// can mint additional counters at runtime with Job.Counter("name").
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a single monotonically written int64 counter, safe for
// concurrent update. The zero value is ready to use.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by d.
func (c *Counter) Add(d int64) { c.v.Add(d) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Store overwrites the value (tests and harness aggregation).
func (c *Counter) Store(v int64) { c.v.Store(v) }

// Builtin counter names, usable with Job.Counter. They identify the
// struct fields of Job, in declaration order.
const (
	NameOriginalTasks     = "original_tasks"
	NameRelaunchedTasks   = "relaunched_tasks"
	NameEvictions         = "evictions"
	NameBytesPushed       = "bytes_pushed"
	NameBytesFetched      = "bytes_fetched"
	NameBytesCheckpointed = "bytes_checkpointed"
	NameCacheHits         = "cache_hits"
	NameCacheMisses       = "cache_misses"
)

// Data-plane connection-pool counter names. These are dynamically minted
// (not struct fields): the pool reports how often a data-plane operation
// had to dial a fresh simnet connection versus reusing a pooled one, so
// reports can show the reuse rate alongside the byte counters.
const (
	NameConnDials  = "conn_dials"
	NameConnReuses = "conn_reuses"
)

// Failure-handling-plane counter names (dynamically minted). The
// heartbeat/suspicion counters come from the master's failure detector;
// the breaker and retry counters from the per-destination RPC policy
// layered over the connection pool. Retries are further broken down by
// cause under "rpc_retries_<cause>" (e.g. rpc_retries_push).
const (
	NameHeartbeatsSent    = "heartbeats_sent"
	NameHeartbeatsMissed  = "heartbeats_missed"
	NameSuspicionsRaised  = "suspicions_raised"
	NameSuspicionsCleared = "suspicions_cleared"
	NameNodesDeclaredDead = "nodes_declared_dead"
	NameBreakerOpens      = "breaker_opens"
	NameRPCRetries        = "rpc_retries"
	NameRPCBackoffNS      = "rpc_backoff_wait_ns"
	NameRPCDeadlineHits   = "rpc_deadline_hits"

	// NameRPCRetryCausePrefix prefixes the per-cause retry breakdown:
	// the op kind that needed the retry ("push", "fetch", "store",
	// "collect", "progress").
	NameRPCRetryCausePrefix = "rpc_retries_"
)

// Incremental re-execution counter names (dynamically minted on the job
// registry). The probe pair counts commit-store lookups at submission
// (stage- and task-level together); stages_skipped / tasks_skipped count
// work served from the store instead of launched; compute_avoided_tasks
// counts the tasks a skipped stage would have launched (fragment tasks
// plus receivers). The byte pair measures CAS traffic: served covers
// chunk reads (skipped-stage fetches and skipped-task pulls), written
// covers chunk writes on the commit path.
const (
	NameCommitProbes        = "commit_probes"
	NameCommitHits          = "commit_hits"
	NameCommitMisses        = "commit_misses"
	NameCommitWrites        = "commit_writes"
	NameStagesSkipped       = "stages_skipped"
	NameTasksSkipped        = "tasks_skipped"
	NameComputeAvoidedTasks = "compute_avoided_tasks"
	NameCASBytesServed      = "cas_bytes_served"
	NameCASBytesWritten     = "cas_bytes_written"
)

// Control-plane scheduler counter names (dynamically minted on the
// fleet registry). sched_rounds counts scheduling passes (one per
// handled master event); sched_tasks_scanned counts tasks the assign
// pass actually examined, so scanned/rounds exposes the per-event
// scheduling cost the incremental scheduler keeps proportional to
// changes; slot_index_hits counts saturated rounds answered by the
// per-kind free-slot index without scanning the executor pool.
const (
	NameSchedRounds       = "sched_rounds"
	NameSchedTasksScanned = "sched_tasks_scanned"
	NameSlotIndexHits     = "slot_index_hits"
)

// Job aggregates counters for one job run. All fields are safe for
// concurrent update, and the zero value is ready to use.
type Job struct {
	// OriginalTasks counts distinct tasks of the physical plan that
	// were launched at least once.
	OriginalTasks Counter
	// RelaunchedTasks counts task launches beyond each task's first
	// attempt (recomputations and eviction relaunches).
	RelaunchedTasks Counter
	// Evictions counts transient container evictions observed while
	// the job ran.
	Evictions Counter
	// BytesPushed counts payload bytes pushed from transient to
	// reserved executors (Pado's escape path).
	BytesPushed Counter
	// BytesFetched counts payload bytes pulled from stage outputs,
	// shuffle pulls, and broadcast fetches.
	BytesFetched Counter
	// BytesCheckpointed counts payload bytes written to stable storage
	// (Spark-checkpoint only).
	BytesCheckpointed Counter
	// CacheHits and CacheMisses count task-input-cache lookups.
	CacheHits   Counter
	CacheMisses Counter

	mu     sync.Mutex
	named  map[string]*Counter
	hists  map[string]*Histogram
	gauges map[string]*Gauge
}

// builtin maps registry names onto the struct fields.
func (j *Job) builtin(name string) *Counter {
	switch name {
	case NameOriginalTasks:
		return &j.OriginalTasks
	case NameRelaunchedTasks:
		return &j.RelaunchedTasks
	case NameEvictions:
		return &j.Evictions
	case NameBytesPushed:
		return &j.BytesPushed
	case NameBytesFetched:
		return &j.BytesFetched
	case NameBytesCheckpointed:
		return &j.BytesCheckpointed
	case NameCacheHits:
		return &j.CacheHits
	case NameCacheMisses:
		return &j.CacheMisses
	}
	return nil
}

// Counter returns the counter registered under name, minting it on first
// use. Builtin names resolve to the corresponding struct field, so
// Counter(NameEvictions) and the Evictions field are the same counter.
func (j *Job) Counter(name string) *Counter {
	if c := j.builtin(name); c != nil {
		return c
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	c, ok := j.named[name]
	if !ok {
		if j.named == nil {
			j.named = make(map[string]*Counter)
		}
		c = new(Counter)
		j.named[name] = c
	}
	return c
}

// builtinNames lists the builtin counters in declaration order.
var builtinNames = []string{
	NameOriginalTasks, NameRelaunchedTasks, NameEvictions,
	NameBytesPushed, NameBytesFetched, NameBytesCheckpointed,
	NameCacheHits, NameCacheMisses,
}

// Each calls fn for every registered counter: builtins first in
// declaration order, then dynamically minted counters sorted by name.
func (j *Job) Each(fn func(name string, value int64)) {
	for _, name := range builtinNames {
		fn(name, j.builtin(name).Load())
	}
	j.mu.Lock()
	names := make([]string, 0, len(j.named))
	for name := range j.named {
		names = append(names, name)
	}
	counters := make([]*Counter, len(names))
	sort.Strings(names)
	for i, name := range names {
		counters[i] = j.named[name]
	}
	j.mu.Unlock()
	for i, name := range names {
		fn(name, counters[i].Load())
	}
}

// RelaunchRatio returns relaunched/original, the paper's Figures 5-7
// lower panels.
func (j *Job) RelaunchRatio() float64 {
	o := j.OriginalTasks.Load()
	if o == 0 {
		return 0
	}
	return float64(j.RelaunchedTasks.Load()) / float64(o)
}

// Snapshot is an immutable copy of the counters plus the measured job
// completion time.
type Snapshot struct {
	JCT               time.Duration
	TimedOut          bool
	OriginalTasks     int64
	RelaunchedTasks   int64
	Evictions         int64
	BytesPushed       int64
	BytesFetched      int64
	BytesCheckpointed int64
	CacheHits         int64
	CacheMisses       int64
	// Named holds dynamically minted counters (nil when none were
	// registered).
	Named map[string]int64
}

// Snapshot captures the current counter values.
func (j *Job) Snapshot(jct time.Duration, timedOut bool) Snapshot {
	s := Snapshot{
		JCT:               jct,
		TimedOut:          timedOut,
		OriginalTasks:     j.OriginalTasks.Load(),
		RelaunchedTasks:   j.RelaunchedTasks.Load(),
		Evictions:         j.Evictions.Load(),
		BytesPushed:       j.BytesPushed.Load(),
		BytesFetched:      j.BytesFetched.Load(),
		BytesCheckpointed: j.BytesCheckpointed.Load(),
		CacheHits:         j.CacheHits.Load(),
		CacheMisses:       j.CacheMisses.Load(),
	}
	j.mu.Lock()
	if len(j.named) > 0 {
		s.Named = make(map[string]int64, len(j.named))
		for name, c := range j.named {
			s.Named[name] = c.Load()
		}
	}
	j.mu.Unlock()
	return s
}

// RelaunchRatio of the snapshot.
func (s Snapshot) RelaunchRatio() float64 {
	if s.OriginalTasks == 0 {
		return 0
	}
	return float64(s.RelaunchedTasks) / float64(s.OriginalTasks)
}

// String summarizes the snapshot on one line: every builtin counter
// (including the cache hit/miss pair) plus any named counters, sorted
// by name so the rendering is deterministic.
func (s Snapshot) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "jct=%v timedOut=%v tasks=%d relaunched=%d (%.0f%%) evictions=%d pushed=%dB fetched=%dB ckpt=%dB cache=%d/%d",
		s.JCT, s.TimedOut, s.OriginalTasks, s.RelaunchedTasks, s.RelaunchRatio()*100,
		s.Evictions, s.BytesPushed, s.BytesFetched, s.BytesCheckpointed,
		s.CacheHits, s.CacheHits+s.CacheMisses)
	if len(s.Named) > 0 {
		names := make([]string, 0, len(s.Named))
		for name := range s.Named {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Fprintf(&b, " %s=%d", name, s.Named[name])
		}
	}
	return b.String()
}
