package metrics

import (
	"fmt"
	"sort"
	"sync/atomic"
	"time"
)

// HistBuckets is the number of fixed buckets in a Histogram. Bucket i
// covers values up to HistBound(i); the last bucket is the overflow.
const HistBuckets = 28

// histBase is the upper bound of bucket 0 in nanoseconds (~65µs). Each
// subsequent bucket doubles, so 28 buckets span ~65µs to ~145 minutes —
// wide enough for per-task latencies at any experiment scale.
const histBase = int64(1) << 16

// HistBound returns the inclusive upper bound of bucket i in the
// histogram's value units (nanoseconds when observing durations). The
// last bucket has no upper bound.
func HistBound(i int) int64 {
	if i >= HistBuckets-1 {
		return int64(1)<<62 - 1
	}
	return histBase << uint(i)
}

// bucketOf returns the index of the bucket holding v.
func bucketOf(v int64) int {
	for i := 0; i < HistBuckets-1; i++ {
		if v <= histBase<<uint(i) {
			return i
		}
	}
	return HistBuckets - 1
}

// Histogram is a small fixed-bucket histogram with exponentially sized
// buckets, safe for concurrent update. It is designed for latency
// distributions (values in nanoseconds) but holds any non-negative
// int64. The zero value is ready to use.
type Histogram struct {
	counts [HistBuckets]atomic.Int64
	count  atomic.Int64
	sum    atomic.Int64
	minP1  atomic.Int64 // min+1; 0 = no observations yet
	max    atomic.Int64
}

// Observe records v. Negative values clamp to zero.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.counts[bucketOf(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.minP1.Load()
		if (cur != 0 && cur-1 <= v) || h.minP1.CompareAndSwap(cur, v+1) {
			break
		}
	}
}

// ObserveDuration records d as nanoseconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(int64(d)) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Snapshot captures a copy for reporting. Concurrent observers may land
// between field reads; reports are taken after the run ends, where the
// histogram is quiescent.
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{
		Count: h.count.Load(),
		Sum:   h.sum.Load(),
		Max:   h.max.Load(),
	}
	if p1 := h.minP1.Load(); p1 > 0 {
		s.Min = p1 - 1
	}
	for i := range h.counts {
		if n := h.counts[i].Load(); n > 0 {
			s.Buckets = append(s.Buckets, HistBucket{Index: i, UpperBound: HistBound(i), Count: n})
		}
	}
	return s
}

// HistBucket is one non-empty bucket of a histogram snapshot.
type HistBucket struct {
	Index      int   `json:"i"`
	UpperBound int64 `json:"le"`
	Count      int64 `json:"n"`
}

// HistSnapshot is an immutable copy of a Histogram, storing only
// non-empty buckets so JSON reports stay small.
type HistSnapshot struct {
	Count   int64        `json:"count"`
	Sum     int64        `json:"sum"`
	Min     int64        `json:"min"`
	Max     int64        `json:"max"`
	Buckets []HistBucket `json:"buckets,omitempty"`
}

// Mean returns the mean observed value (0 when empty).
func (s HistSnapshot) Mean() int64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / s.Count
}

// Quantile returns an upper bound for the q-quantile (0 < q <= 1): the
// upper bound of the bucket containing the q*Count-th observation,
// clamped to the observed max. Resolution is one bucket (a factor of
// two), which is enough to rank stages and spot stragglers.
func (s HistSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	rank := int64(q*float64(s.Count) + 0.5)
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for _, b := range s.Buckets {
		seen += b.Count
		if seen >= rank {
			if b.UpperBound > s.Max {
				return s.Max
			}
			return b.UpperBound
		}
	}
	return s.Max
}

// Quantile estimates the p-quantile (0 < p <= 1) of the observed
// distribution by linear interpolation inside the bucket holding the
// rank-th observation, the way Prometheus's histogram_quantile does:
// observations are assumed uniformly spread between the bucket's lower
// and upper bounds. The estimate is clamped to [Min, Max], so it is
// exact when every observation in the deciding bucket sits on the same
// value and lands exactly on a bucket boundary when the rank falls on
// one. Resolution inside a bucket is what uniformity buys — much finer
// than HistSnapshot.Quantile's whole-bucket upper bound, which reports
// use for coarse stage ranking.
func (h *Histogram) Quantile(p float64) int64 {
	return h.Snapshot().QuantileInterp(p)
}

// QuantileInterp is the interpolating quantile over a snapshot; see
// Histogram.Quantile.
func (s HistSnapshot) QuantileInterp(p float64) int64 {
	if s.Count == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	rank := p * float64(s.Count)
	var seen int64
	for _, b := range s.Buckets {
		prev := seen
		seen += b.Count
		if float64(seen) < rank {
			continue
		}
		// Bucket b holds the rank-th observation. Interpolate between
		// its bounds; the overflow bucket (and any bucket reaching past
		// the observed max) is capped at Max, the first non-empty
		// bucket floored at Min.
		lo := int64(0)
		if b.Index > 0 {
			lo = HistBound(b.Index - 1)
		}
		if lo < s.Min {
			lo = s.Min
		}
		hi := b.UpperBound
		if hi > s.Max {
			hi = s.Max
		}
		if hi < lo {
			hi = lo
		}
		v := float64(lo) + (rank-float64(prev))/float64(b.Count)*float64(hi-lo)
		return int64(v + 0.5)
	}
	return s.Max
}

// String renders count/mean/p50/p99/max with values humanized as
// durations.
func (s HistSnapshot) String() string {
	if s.Count == 0 {
		return "empty"
	}
	d := func(v int64) string { return time.Duration(v).Round(10 * time.Microsecond).String() }
	return fmt.Sprintf("n=%d mean=%s p50=%s p99=%s max=%s",
		s.Count, d(s.Mean()), d(s.Quantile(0.5)), d(s.Quantile(0.99)), d(s.Max))
}

// Histogram returns the histogram registered under name, minting it on
// first use. Histograms live in their own registry beside the named
// counters, sharing the Job's mutex.
func (j *Job) Histogram(name string) *Histogram {
	j.mu.Lock()
	defer j.mu.Unlock()
	h, ok := j.hists[name]
	if !ok {
		if j.hists == nil {
			j.hists = make(map[string]*Histogram)
		}
		h = new(Histogram)
		j.hists[name] = h
	}
	return h
}

// EachHistogram calls fn for every registered histogram, sorted by name.
func (j *Job) EachHistogram(fn func(name string, s HistSnapshot)) {
	j.mu.Lock()
	names := make([]string, 0, len(j.hists))
	for name := range j.hists {
		names = append(names, name)
	}
	sort.Strings(names)
	hists := make([]*Histogram, 0, len(names))
	for _, name := range names {
		hists = append(hists, j.hists[name])
	}
	j.mu.Unlock()
	for i, name := range names {
		fn(name, hists[i].Snapshot())
	}
}
