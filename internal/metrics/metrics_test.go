package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRelaunchRatio(t *testing.T) {
	var j Job
	if j.RelaunchRatio() != 0 {
		t.Error("empty job ratio should be 0")
	}
	j.OriginalTasks.Store(100)
	j.RelaunchedTasks.Store(31)
	if got := j.RelaunchRatio(); got != 0.31 {
		t.Errorf("ratio = %v", got)
	}
}

func TestSnapshot(t *testing.T) {
	var j Job
	j.OriginalTasks.Store(10)
	j.RelaunchedTasks.Store(5)
	j.Evictions.Store(3)
	j.BytesPushed.Store(100)
	j.BytesFetched.Store(200)
	j.BytesCheckpointed.Store(300)
	s := j.Snapshot(2*time.Second, true)
	if s.JCT != 2*time.Second || !s.TimedOut {
		t.Errorf("snapshot timing wrong: %+v", s)
	}
	if s.RelaunchRatio() != 0.5 {
		t.Errorf("snapshot ratio = %v", s.RelaunchRatio())
	}
	if s.BytesPushed != 100 || s.BytesFetched != 200 || s.BytesCheckpointed != 300 {
		t.Errorf("byte counters wrong: %+v", s)
	}
	if !strings.Contains(s.String(), "evictions=3") {
		t.Errorf("String missing fields: %s", s)
	}
}

func TestConcurrentCounters(t *testing.T) {
	var j Job
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 1000; k++ {
				j.OriginalTasks.Add(1)
				j.BytesPushed.Add(2)
			}
		}()
	}
	wg.Wait()
	if j.OriginalTasks.Load() != 8000 || j.BytesPushed.Load() != 16000 {
		t.Errorf("lost updates: %d %d", j.OriginalTasks.Load(), j.BytesPushed.Load())
	}
}
