package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRelaunchRatio(t *testing.T) {
	var j Job
	if j.RelaunchRatio() != 0 {
		t.Error("empty job ratio should be 0")
	}
	j.OriginalTasks.Store(100)
	j.RelaunchedTasks.Store(31)
	if got := j.RelaunchRatio(); got != 0.31 {
		t.Errorf("ratio = %v", got)
	}
}

func TestSnapshot(t *testing.T) {
	var j Job
	j.OriginalTasks.Store(10)
	j.RelaunchedTasks.Store(5)
	j.Evictions.Store(3)
	j.BytesPushed.Store(100)
	j.BytesFetched.Store(200)
	j.BytesCheckpointed.Store(300)
	s := j.Snapshot(2*time.Second, true)
	if s.JCT != 2*time.Second || !s.TimedOut {
		t.Errorf("snapshot timing wrong: %+v", s)
	}
	if s.RelaunchRatio() != 0.5 {
		t.Errorf("snapshot ratio = %v", s.RelaunchRatio())
	}
	if s.BytesPushed != 100 || s.BytesFetched != 200 || s.BytesCheckpointed != 300 {
		t.Errorf("byte counters wrong: %+v", s)
	}
	if !strings.Contains(s.String(), "evictions=3") {
		t.Errorf("String missing fields: %s", s)
	}
}

func TestRegistryBuiltinAliases(t *testing.T) {
	var j Job
	j.Counter(NameEvictions).Add(2)
	j.Evictions.Add(1)
	if got := j.Counter(NameEvictions).Load(); got != 3 {
		t.Errorf("builtin alias diverged from field: %d", got)
	}
	if j.Counter(NameEvictions) != &j.Evictions {
		t.Error("Counter(NameEvictions) is not the Evictions field")
	}
}

func TestRegistryNamedCounters(t *testing.T) {
	var j Job
	c1 := j.Counter("obs.push_started")
	c2 := j.Counter("obs.push_started")
	if c1 != c2 {
		t.Error("same name minted two counters")
	}
	c1.Add(7)
	s := j.Snapshot(0, false)
	if s.Named["obs.push_started"] != 7 {
		t.Errorf("snapshot Named = %v", s.Named)
	}

	var names []string
	j.Each(func(name string, v int64) { names = append(names, name) })
	if len(names) != len(builtinNames)+1 {
		t.Fatalf("Each visited %d counters: %v", len(names), names)
	}
	if names[len(names)-1] != "obs.push_started" {
		t.Errorf("named counter not last: %v", names)
	}
}

func TestRegistryConcurrentMint(t *testing.T) {
	var j Job
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 100; k++ {
				j.Counter("shared").Add(1)
			}
		}()
	}
	wg.Wait()
	if got := j.Counter("shared").Load(); got != 800 {
		t.Errorf("lost updates on named counter: %d", got)
	}
}

func TestConcurrentCounters(t *testing.T) {
	var j Job
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 1000; k++ {
				j.OriginalTasks.Add(1)
				j.BytesPushed.Add(2)
			}
		}()
	}
	wg.Wait()
	if j.OriginalTasks.Load() != 8000 || j.BytesPushed.Load() != 16000 {
		t.Errorf("lost updates: %d %d", j.OriginalTasks.Load(), j.BytesPushed.Load())
	}
}
