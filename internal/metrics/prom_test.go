package metrics

import (
	"strings"
	"testing"
)

func TestGaugeRegistry(t *testing.T) {
	var j Job
	g := j.Gauge(GaugeTasksRunning)
	g.Set(5)
	g.Add(-2)
	if got := j.Gauge(GaugeTasksRunning).Load(); got != 3 {
		t.Fatalf("gauge = %d, want 3", got)
	}
	j.Gauge("alpha").Set(1)
	var names []string
	j.EachGauge(func(name string, v int64) { names = append(names, name) })
	if len(names) != 2 || names[0] != "alpha" || names[1] != GaugeTasksRunning {
		t.Fatalf("EachGauge order = %v", names)
	}
}

func TestPromWriteValid(t *testing.T) {
	fleet := &Job{}
	fleet.Evictions.Add(3)
	fleet.Counter("conn_dials").Add(7)
	fleet.Gauge(GaugeJobsRunning).Set(2)

	j1 := &Job{}
	j1.OriginalTasks.Add(10)
	j1.Gauge(GaugeTasksRunning).Set(4)
	h := j1.Histogram("task_compute_ns")
	h.Observe(100)
	h.Observe(1 << 20)
	h.Observe(1 << 30)

	p := NewPromSet()
	p.Gather(fleet)
	p.Gather(j1, Label{"job", "1"})
	p.AddGauge("node_state", 1, Label{"node", "t0"}, Label{"kind", "transient"})
	p.AddGauge("node_state", 0, Label{"node", "r0"}, Label{"kind", "reserved"})

	var b strings.Builder
	if err := p.Write(&b); err != nil {
		t.Fatalf("write: %v", err)
	}
	out := b.String()

	for _, want := range []string{
		"# TYPE pado_evictions_total counter",
		"pado_evictions_total 3",
		`pado_evictions_total{job="1"} 0`,
		"# TYPE pado_jobs_running gauge",
		"# TYPE pado_task_compute_ns histogram",
		`pado_task_compute_ns_bucket{job="1",le="+Inf"} 3`,
		`pado_task_compute_ns_count{job="1"} 3`,
		`pado_node_state{node="t0",kind="transient"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n---\n%s", want, out)
		}
	}
	// Exactly one TYPE line per family even though two registries
	// contributed samples.
	if n := strings.Count(out, "# TYPE pado_evictions_total "); n != 1 {
		t.Errorf("%d TYPE lines for pado_evictions_total, want 1", n)
	}
	if err := LintPrometheus(strings.NewReader(out)); err != nil {
		t.Fatalf("self-lint failed: %v\n---\n%s", err, out)
	}
}

func TestPromLabelEscaping(t *testing.T) {
	p := NewPromSet()
	p.AddGauge("g", 1, Label{"note", "a\"b\\c\nd"})
	var b strings.Builder
	if err := p.Write(&b); err != nil {
		t.Fatal(err)
	}
	want := `pado_g{note="a\"b\\c\nd"} 1`
	if !strings.Contains(b.String(), want) {
		t.Fatalf("escaping: got %q, want line %q", b.String(), want)
	}
	if err := LintPrometheus(strings.NewReader(b.String())); err != nil {
		t.Fatalf("lint: %v", err)
	}
}

func TestLintCatchesViolations(t *testing.T) {
	cases := map[string]string{
		"no samples":        "# TYPE pado_x counter\n",
		"undeclared family": "pado_y_total 1\n",
		"dup TYPE":          "# TYPE pado_x counter\n# TYPE pado_x counter\npado_x_total 1\n",
		"counter suffix":    "# TYPE pado_x counter\npado_x 1\n",
		"bad value":         "# TYPE pado_x gauge\npado_x zebra\n",
		"missing inf": "# TYPE pado_h histogram\n" +
			`pado_h_bucket{le="10"} 1` + "\npado_h_sum 5\npado_h_count 1\n",
		"inf vs count": "# TYPE pado_h histogram\n" +
			`pado_h_bucket{le="+Inf"} 2` + "\npado_h_sum 5\npado_h_count 3\n",
		"non-cumulative": "# TYPE pado_h histogram\n" +
			`pado_h_bucket{le="10"} 5` + "\n" + `pado_h_bucket{le="20"} 3` + "\n" +
			`pado_h_bucket{le="+Inf"} 5` + "\npado_h_sum 5\npado_h_count 5\n",
		"bad escape": "# TYPE pado_x gauge\n" + `pado_x{l="a\tb"} 1` + "\n",
	}
	for name, page := range cases {
		if err := LintPrometheus(strings.NewReader(page)); err == nil {
			t.Errorf("%s: lint accepted invalid page:\n%s", name, page)
		}
	}
	valid := "# TYPE pado_x gauge\npado_x 1\npado_x{job=\"2\"} 4\n"
	if err := LintPrometheus(strings.NewReader(valid)); err != nil {
		t.Errorf("lint rejected valid page: %v", err)
	}
}

func TestPromNameSanitizes(t *testing.T) {
	if got := PromName("obs.task_launched"); got != "pado_obs_task_launched" {
		t.Errorf("PromName = %q", got)
	}
	if got := PromName("rpc_retries_push"); got != "pado_rpc_retries_push" {
		t.Errorf("PromName = %q", got)
	}
}
