package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	if s := h.Snapshot(); s.Count != 0 || s.String() != "empty" {
		t.Fatalf("zero histogram snapshot: %+v", s)
	}
	h.ObserveDuration(1 * time.Millisecond)
	h.ObserveDuration(2 * time.Millisecond)
	h.ObserveDuration(40 * time.Millisecond)
	h.Observe(-5) // clamps to 0
	s := h.Snapshot()
	if s.Count != 4 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.Min != 0 {
		t.Errorf("min = %d, want 0 (clamped negative)", s.Min)
	}
	if s.Max != int64(40*time.Millisecond) {
		t.Errorf("max = %d", s.Max)
	}
	if got := s.Mean(); got != (int64(43*time.Millisecond))/4 {
		t.Errorf("mean = %d", got)
	}
	// p50 falls in the bucket holding the 2nd observation (1ms or 2ms);
	// its upper bound must be >= 1ms and < 40ms.
	if q := s.Quantile(0.5); q < int64(1*time.Millisecond) || q >= int64(40*time.Millisecond) {
		t.Errorf("p50 = %v", time.Duration(q))
	}
	// p100 clamps to max.
	if q := s.Quantile(1); q != s.Max {
		t.Errorf("p100 = %d, want max %d", q, s.Max)
	}
}

func TestHistogramBuckets(t *testing.T) {
	if HistBound(0) != 1<<16 {
		t.Errorf("bucket 0 bound = %d", HistBound(0))
	}
	if bucketOf(0) != 0 || bucketOf(1<<16) != 0 || bucketOf(1<<16+1) != 1 {
		t.Errorf("bucketOf boundary wrong: %d %d %d", bucketOf(0), bucketOf(1<<16), bucketOf(1<<16+1))
	}
	if bucketOf(1<<62) != HistBuckets-1 {
		t.Errorf("overflow bucket = %d", bucketOf(1<<62))
	}
	var h Histogram
	h.Observe(1 << 62)
	s := h.Snapshot()
	if len(s.Buckets) != 1 || s.Buckets[0].Index != HistBuckets-1 {
		t.Fatalf("overflow snapshot buckets = %+v", s.Buckets)
	}
}

// TestQuantileInterpBoundaries pins the interpolating quantile at
// exact bucket boundaries: when the rank lands exactly on a bucket's
// cumulative count, the estimate is exactly that bucket's upper bound;
// when every deciding observation shares one value, the Min/Max clamp
// makes the estimate exact.
func TestQuantileInterpBoundaries(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile != 0")
	}

	// 10 observations in bucket 0, 10 in bucket 1: p50's rank (10)
	// falls exactly on bucket 0's cumulative count, so the estimate is
	// exactly HistBound(0). p100 is exactly the max.
	for i := 0; i < 10; i++ {
		h.Observe(1 << 10) // bucket 0 (bound 1<<16)
		h.Observe(1 << 17) // bucket 1 (bound 1<<17)
	}
	if q := h.Quantile(0.5); q != HistBound(0) {
		t.Errorf("p50 = %d, want exact bucket bound %d", q, HistBound(0))
	}
	if q := h.Quantile(1); q != 1<<17 {
		t.Errorf("p100 = %d, want max %d", q, int64(1<<17))
	}
	// p75: rank 15 is 5/10 into bucket 1, which spans [max(1<<16,
	// Min)=1<<16, min(1<<17, Max)=1<<17]; halfway = 3<<15... but the
	// Max clamp tightens hi to the observed max (1<<17), so the
	// estimate is lo + 0.5*(hi-lo).
	wantP75 := int64(1<<16) + (int64(1<<17)-int64(1<<16))/2
	if q := h.Quantile(0.75); q != wantP75 {
		t.Errorf("p75 = %d, want %d", q, wantP75)
	}

	// Single-valued histogram: clamp makes every quantile exact.
	var one Histogram
	for i := 0; i < 5; i++ {
		one.Observe(12345)
	}
	for _, p := range []float64{0.01, 0.5, 0.99, 1} {
		if q := one.Quantile(p); q != 12345 {
			t.Errorf("single-valued p%.0f = %d, want 12345", p*100, q)
		}
	}

	// Overflow bucket: bounds collapse to [Min, Max] of what landed
	// there.
	var ov Histogram
	ov.Observe(1 << 61)
	if q := ov.Quantile(0.99); q != 1<<61 {
		t.Errorf("overflow p99 = %d, want %d", q, int64(1)<<61)
	}
}

func TestHistogramRegistry(t *testing.T) {
	var j Job
	h1 := j.Histogram("stage0.latency")
	h2 := j.Histogram("stage0.latency")
	if h1 != h2 {
		t.Fatal("same name minted two histograms")
	}
	h1.Observe(100)
	j.Histogram("stage1.latency").Observe(200)
	var names []string
	j.EachHistogram(func(name string, s HistSnapshot) {
		names = append(names, name)
		if s.Count != 1 {
			t.Errorf("%s count = %d", name, s.Count)
		}
	})
	if len(names) != 2 || names[0] != "stage0.latency" || names[1] != "stage1.latency" {
		t.Errorf("EachHistogram order: %v", names)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(int64(g*1000 + i))
			}
		}(g)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != 8000 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.Min != 0 || s.Max != 7999 {
		t.Errorf("min/max = %d/%d", s.Min, s.Max)
	}
	var n int64
	for _, b := range s.Buckets {
		n += b.Count
	}
	if n != 8000 {
		t.Errorf("bucket sum = %d", n)
	}
}

func TestSnapshotStringIncludesCacheAndNamed(t *testing.T) {
	var j Job
	j.CacheHits.Store(7)
	j.CacheMisses.Store(3)
	j.Counter("event_queue_overflow").Add(2)
	j.Counter("agg_flushes").Add(5)
	out := j.Snapshot(time.Second, false).String()
	for _, want := range []string{"cache=7/10", "agg_flushes=5", "event_queue_overflow=2"} {
		if !strings.Contains(out, want) {
			t.Errorf("String missing %q: %s", want, out)
		}
	}
	// Named counters render sorted, so the output is deterministic.
	if strings.Index(out, "agg_flushes") > strings.Index(out, "event_queue_overflow") {
		t.Errorf("named counters not sorted: %s", out)
	}
}
