package metrics

import (
	"sort"
	"sync/atomic"
)

// Gauge is a single instantaneous int64 value, safe for concurrent
// update: current queue depth, running tasks, free slots. Unlike a
// Counter it goes up and down, and exposition layers (Prometheus text,
// padotop) render it without the `_total` suffix. The zero value is
// ready to use.
type Gauge struct{ v atomic.Int64 }

// Set overwrites the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the value by d (which may be negative).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Live-introspection gauge names minted by the multi-job master.
// Counters answer "how many ever happened"; these answer "what is true
// right now" — the quantities padotop and /metrics poll during a run.
const (
	GaugeJobsRunning       = "jobs_running"
	GaugeJobsQueued        = "jobs_queued"
	GaugeTasksRunning      = "tasks_running"
	GaugeReceiversActive   = "receivers_active"
	GaugeSlotsFreeTrans    = "slots_free_transient"
	GaugeSlotsFreeReserved = "slots_free_reserved"
	GaugeBudgetFree        = "reserved_budget_free"
	GaugeNodesAlive        = "nodes_alive"
	GaugeNodesSuspect      = "nodes_suspect"
	GaugeBreakersOpen      = "breakers_open"
)

// Commit-store gauge names: live size of the content-addressed commit
// store the manager serves (chunk and manifest counts, resident bytes).
// storage_used_bytes is also set by the sparklike engine from its
// checkpoint Service, so both storage planes surface under one name.
const (
	GaugeCASChunks        = "cas_chunks"
	GaugeCASManifests     = "cas_manifests"
	GaugeStorageUsedBytes = "storage_used_bytes"
)

// Gauge returns the gauge registered under name, minting it on first
// use. Gauges live in their own registry beside the named counters and
// histograms, sharing the Job's mutex.
func (j *Job) Gauge(name string) *Gauge {
	j.mu.Lock()
	defer j.mu.Unlock()
	g, ok := j.gauges[name]
	if !ok {
		if j.gauges == nil {
			j.gauges = make(map[string]*Gauge)
		}
		g = new(Gauge)
		j.gauges[name] = g
	}
	return g
}

// EachGauge calls fn for every registered gauge, sorted by name.
func (j *Job) EachGauge(fn func(name string, value int64)) {
	j.mu.Lock()
	names := make([]string, 0, len(j.gauges))
	for name := range j.gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	gauges := make([]*Gauge, 0, len(names))
	for _, name := range names {
		gauges = append(gauges, j.gauges[name])
	}
	j.mu.Unlock()
	for i, name := range names {
		fn(name, gauges[i].Load())
	}
}
