package core

import (
	"fmt"
	"sort"

	"pado/internal/dag"
)

// Stage is a basic unit of execution (paper §3.1.2): the subgraph rooted
// at one reserved operator (or at a terminal transient operator) together
// with the transient parent operators recursively folded into it.
//
// By construction a stage contains at most one reserved operator, and the
// stage's output — the root's output — lives on reserved containers (or is
// written to the sink), so child stages can always fetch their inputs
// without recomputing parent stages.
type Stage struct {
	ID int
	// Root is the operator that created the stage: its reserved
	// operator, or a terminal transient operator.
	Root dag.VertexID
	// Ops lists every operator executed by this stage in topological
	// order (transient parents first, Root last). A transient operator
	// shared by several reserved consumers appears in several stages
	// and is re-executed by each (or served from the task input cache).
	Ops []dag.VertexID
	// Parents and Children are stage ids connected by cross-stage data
	// dependencies, deduplicated, in ascending order.
	Parents  []int
	Children []int
}

// HasReservedRoot reports whether the stage's root runs on reserved
// containers.
func (s *Stage) HasReservedRoot(g *dag.Graph) bool {
	return g.Vertex(s.Root).Placement == dag.PlaceReserved
}

// PartitionStages runs Algorithm 2 over the DAG under the given placement
// assignment: traverse vertices in topological order; every reserved
// operator — and every operator without outgoing edges — opens a new
// stage, into which its transient parents are added recursively. A parent
// placed on reserved containers instead links its own stage as a parent of
// the current one.
//
// The assignment is an explicit input — partitioning never reads or
// mutates placement state on the graph itself. Callers that hand-annotate
// graphs can snapshot them with PlacementsFromGraph.
func PartitionStages(g *dag.Graph, pl Placements) ([]*Stage, error) {
	order, err := g.TopoSort()
	if err != nil {
		return nil, err
	}
	for _, id := range order {
		if pl.Of(id) == dag.PlaceNone {
			return nil, fmt.Errorf("core: vertex %q is unplaced; run a placement policy first", g.Vertex(id).Name)
		}
	}

	stageOf := make(map[dag.VertexID]*Stage) // reserved vertex -> its stage
	var stages []*Stage

	for _, id := range order {
		isRoot := pl.Reserved(id) || len(g.OutEdges(id)) == 0
		if !isRoot {
			continue
		}
		st := &Stage{ID: len(stages), Root: id}
		stages = append(stages, st)
		if pl.Reserved(id) {
			stageOf[id] = st
		}
		inStage := make(map[dag.VertexID]bool)
		parents := make(map[int]bool)
		var add func(op dag.VertexID)
		add = func(op dag.VertexID) {
			if inStage[op] {
				return
			}
			inStage[op] = true
			for _, p := range g.Parents(op) {
				pv := g.Vertex(p)
				if pl.Of(p) == dag.PlaceTransient {
					add(p)
				} else {
					ps, ok := stageOf[p]
					if !ok {
						// Topological order guarantees the parent's
						// stage exists already.
						panic(fmt.Sprintf("core: reserved parent %q has no stage", pv.Name))
					}
					if ps.ID != st.ID {
						parents[ps.ID] = true
					}
				}
			}
			st.Ops = append(st.Ops, op)
		}
		add(id)
		// add() appends parents after marking the child during its
		// post-order walk... it appends op after recursing, so Ops is
		// already topologically ordered (parents first, Root last).
		for pid := range parents {
			st.Parents = append(st.Parents, pid)
		}
		sort.Ints(st.Parents)
		for _, pid := range st.Parents {
			stages[pid].Children = append(stages[pid].Children, st.ID)
		}
	}
	return stages, nil
}

// Compile runs the full pipeline: validation, parallelism resolution,
// policy-driven placement (cfg.Policy, defaulting to PaperRule), a
// placement validity check, stage partitioning, and physical planning.
//
// Parallelism is resolved before placement (it is placement-independent)
// so capacity-aware policies can use task counts as a work proxy. The
// final assignment is annotated back onto the graph for DOT rendering and
// plan printing, but partitioning and planning consume it as an explicit
// value.
func Compile(g *dag.Graph, cfg PlanConfig) (*Plan, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if err := ResolveParallelism(g, cfg); err != nil {
		return nil, err
	}
	pol := cfg.policy()
	pl, err := pol.Place(g, cfg.Env)
	if err != nil {
		return nil, fmt.Errorf("core: policy %q: %w", pol.Name(), err)
	}
	if err := CheckPlacements(g, pl); err != nil {
		return nil, fmt.Errorf("core: policy %q produced an illegal assignment: %w", pol.Name(), err)
	}
	pl.Apply(g)
	stages, err := PartitionStages(g, pl)
	if err != nil {
		return nil, err
	}
	plan, err := BuildPlan(g, pl, stages, cfg)
	if err != nil {
		return nil, err
	}
	plan.Policy = pol.Name()
	if err := computeCacheKeys(g, plan); err != nil {
		return nil, err
	}
	return plan, nil
}
