package core

import (
	"pado/internal/dag"
	"pado/internal/dataflow"
)

// inputCached decides whether a cross-stage fetch should go through the
// executor's task input cache, based on the consuming operator's caching
// hints (paper §3.2.7).
func inputCached(g *dag.Graph, to dag.VertexID, e dag.Edge) bool {
	op, ok := g.Vertex(to).Op.(*dataflow.ParDoOp)
	if !ok {
		return false
	}
	if e.Tag == "" {
		return op.CacheInput
	}
	for _, s := range op.Sides {
		if s.Name == e.Tag {
			return s.Cached
		}
	}
	return false
}
