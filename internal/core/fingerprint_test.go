package core

import (
	"fmt"
	"testing"

	"pado/internal/data"
	"pado/internal/dataflow"
	"pado/internal/workloads"
)

// fpPipeline is a small MR-shaped pipeline over a fingerprinted source.
// salt perturbs the fingerprint of partition saltPart (-1 = none).
func fpPipeline(name string, parts int, saltPart int, salt string) *dataflow.Pipeline {
	p := dataflow.NewPipeline()
	kv := workloads.CountCoder
	src := &dataflow.FuncSource{
		Partitions: parts,
		Gen: func(pt int) []data.Record {
			return []data.Record{data.KV(fmt.Sprintf("k%d", pt), int64(pt))}
		},
		Fingerprint: func(pt int) string {
			if pt == saltPart {
				return fmt.Sprintf("part-%d-%s", pt, salt)
			}
			return fmt.Sprintf("part-%d", pt)
		},
	}
	read := p.Read("read", src, kv)
	mapped := read.ParDo(name, dataflow.MapFunc(func(r data.Record) data.Record { return r }), kv)
	mapped.CombinePerKey("sum", dataflow.SumInt64Fn{}, kv)
	return p
}

func compileFP(t *testing.T, p *dataflow.Pipeline) *Plan {
	t.Helper()
	plan, err := Compile(p.Graph(), PlanConfig{ReduceParallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

// TestCacheKeysDeterministic: compiling the same pipeline twice yields
// identical stage cache keys and task keys — across independent graph
// constructions, not just repeated reads of one plan.
func TestCacheKeysDeterministic(t *testing.T) {
	a := compileFP(t, fpPipeline("map", 4, -1, ""))
	b := compileFP(t, fpPipeline("map", 4, -1, ""))
	if len(a.Stages) != len(b.Stages) {
		t.Fatalf("stage counts differ: %d vs %d", len(a.Stages), len(b.Stages))
	}
	for i := range a.Stages {
		if a.Stages[i].CacheKey == "" {
			t.Fatalf("stage %d has no cache key despite fingerprinted source", i)
		}
		if a.Stages[i].CacheKey != b.Stages[i].CacheKey {
			t.Errorf("stage %d cache key not deterministic", i)
		}
		if fmt.Sprint(a.Stages[i].TaskKeys) != fmt.Sprint(b.Stages[i].TaskKeys) {
			t.Errorf("stage %d task keys not deterministic", i)
		}
	}
}

// TestCacheKeysInvalidation: changing one source partition's fingerprint
// changes the stage key (it covers all partitions) but only that task's
// key; renaming an operator changes the stage key too.
func TestCacheKeysInvalidation(t *testing.T) {
	base := compileFP(t, fpPipeline("map", 4, -1, ""))
	delta := compileFP(t, fpPipeline("map", 4, 2, "changed"))
	renamed := compileFP(t, fpPipeline("map-v2", 4, -1, ""))

	if base.Stages[0].CacheKey == delta.Stages[0].CacheKey {
		t.Error("source change did not invalidate the stage cache key")
	}
	if base.Stages[0].CacheKey == renamed.Stages[0].CacheKey {
		t.Error("operator rename did not invalidate the stage cache key")
	}
	if delta.Stages[0].CacheKey == renamed.Stages[0].CacheKey {
		t.Error("distinct invalidations collided")
	}

	bk, dk := base.Stages[0].TaskKeys, delta.Stages[0].TaskKeys
	if bk == nil || dk == nil {
		t.Fatal("source-only stage got no task keys")
	}
	for frag := range bk {
		for task := range bk[frag] {
			same := bk[frag][task] == dk[frag][task]
			if task == 2 && same {
				t.Errorf("task %d key unchanged despite its partition changing", task)
			}
			if task != 2 && !same {
				t.Errorf("task %d key changed though its partition did not", task)
			}
		}
	}
}

// TestCacheKeysAbsentWithoutFingerprints: a source that cannot be
// fingerprinted disables caching for its whole downstream cone.
func TestCacheKeysAbsentWithoutFingerprints(t *testing.T) {
	p := dataflow.NewPipeline()
	kv := workloads.CountCoder
	src := &dataflow.FuncSource{
		Partitions: 4,
		Gen: func(pt int) []data.Record {
			return []data.Record{data.KV(fmt.Sprintf("k%d", pt), int64(pt))}
		},
	}
	p.Read("read", src, kv).CombinePerKey("sum", dataflow.SumInt64Fn{}, kv)
	plan := compileFP(t, p)
	for _, s := range plan.Stages {
		if s.CacheKey != "" {
			t.Errorf("stage %d has cache key %q despite unfingerprinted source", s.ID, s.CacheKey)
		}
		if s.TaskKeys != nil {
			t.Errorf("stage %d has task keys despite unfingerprinted source", s.ID)
		}
	}
}
