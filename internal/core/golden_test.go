package core

import (
	"fmt"
	"strings"
	"testing"

	"pado/internal/dag"
	"pado/internal/workloads"
)

// planSignature renders a compiled plan as a canonical multi-line string:
// placements and parallelism in topological order, then every stage with
// its fragments, boundaries, and cross-stage inputs. Two plans with equal
// signatures are structurally identical as far as the runtime is
// concerned, so the golden tests below pin the compiler's output across
// refactors.
func planSignature(p *Plan) string {
	g := p.Graph
	name := func(id dag.VertexID) string { return g.Vertex(id).Name }
	var b strings.Builder
	order, _ := g.TopoSort()
	b.WriteString("placements:\n")
	for _, id := range order {
		v := g.Vertex(id)
		fmt.Fprintf(&b, "  %s %s p=%d\n", v.Name, v.Placement, v.Parallelism)
	}
	b.WriteString("stages:\n")
	for _, ps := range p.Stages {
		fmt.Fprintf(&b, "  stage %d root=%s reserved=%v rp=%d rf=%d parents=%v children=%v\n",
			ps.ID, name(ps.Root), ps.RootReserved, ps.RootParallelism, ps.RootFragment,
			ps.Parents, ps.Children)
		for _, f := range ps.Fragments {
			ops := make([]string, len(f.Ops))
			for i, op := range f.Ops {
				ops[i] = name(op)
			}
			fmt.Fprintf(&b, "    frag %d p=%d ops=%s\n", f.Index, f.Parallelism, strings.Join(ops, ","))
			for _, bd := range f.Boundaries {
				fmt.Fprintf(&b, "      boundary from=%s dep=%s tag=%q\n", name(bd.From), bd.Dep, bd.Tag)
			}
		}
		for _, in := range ps.Inputs {
			fmt.Fprintf(&b, "    input to=%s fromStage=%d fromVertex=%s dep=%s tag=%q cached=%v\n",
				name(in.ToOp), in.FromStage, name(in.FromVertex), in.Dep, in.Tag, in.Cached)
		}
	}
	return b.String()
}

func goldenGraph(w string) *dag.Graph {
	switch w {
	case "mr":
		return workloads.MR(workloads.MRConfig{Partitions: 4, LinesPerPart: 10, Docs: 10, Seed: 1}).Graph()
	case "mlr":
		return workloads.MLR(workloads.MLRConfig{Partitions: 4, SamplesPerPart: 4, Features: 8,
			Classes: 2, NonZeros: 2, Iterations: 2, LearningRate: 0.1, Seed: 1}).Graph()
	case "als":
		return workloads.ALS(workloads.ALSConfig{Partitions: 4, RatingsPerPart: 10, Users: 5,
			Items: 4, Rank: 2, Iterations: 2, Lambda: 0.1, Seed: 1}).Graph()
	}
	panic("unknown workload " + w)
}

// Golden signatures captured from the pre-policy-layer compiler. With no
// policy configured, Compile must keep producing structurally identical
// plans for the three paper workloads.
var goldenPlans = map[string]string{
	"mr": `placements:
  read-pageviews transient p=4
  parse transient p=4
  sum-views reserved p=4
stages:
  stage 0 root=sum-views reserved=true rp=4 rf=-1 parents=[] children=[]
    frag 0 p=4 ops=read-pageviews,parse
      boundary from=parse dep=many-to-many tag=""
`,
	"mlr": `placements:
  read-training-data transient p=4
  create-1st-model reserved p=1
  compute-gradient-1 transient p=4
  aggregate-gradients-1 reserved p=1
  compute-model-2 reserved p=1
  compute-gradient-2 transient p=4
  aggregate-gradients-2 reserved p=1
  compute-model-3 reserved p=1
stages:
  stage 0 root=create-1st-model reserved=true rp=1 rf=-1 parents=[] children=[1 2]
  stage 1 root=aggregate-gradients-1 reserved=true rp=1 rf=-1 parents=[0] children=[2]
    frag 0 p=4 ops=read-training-data,compute-gradient-1
      boundary from=compute-gradient-1 dep=many-to-one tag=""
    input to=compute-gradient-1 fromStage=0 fromVertex=create-1st-model dep=one-to-many tag="model-1" cached=true
  stage 2 root=compute-model-2 reserved=true rp=1 rf=-1 parents=[0 1] children=[3 4]
    input to=compute-model-2 fromStage=1 fromVertex=aggregate-gradients-1 dep=one-to-one tag="" cached=false
    input to=compute-model-2 fromStage=0 fromVertex=create-1st-model dep=one-to-one tag="in1" cached=false
  stage 3 root=aggregate-gradients-2 reserved=true rp=1 rf=-1 parents=[2] children=[4]
    frag 0 p=4 ops=read-training-data,compute-gradient-2
      boundary from=compute-gradient-2 dep=many-to-one tag=""
    input to=compute-gradient-2 fromStage=2 fromVertex=compute-model-2 dep=one-to-many tag="model-2" cached=true
  stage 4 root=compute-model-3 reserved=true rp=1 rf=-1 parents=[2 3] children=[]
    input to=compute-model-3 fromStage=3 fromVertex=aggregate-gradients-2 dep=one-to-one tag="" cached=false
    input to=compute-model-3 fromStage=2 fromVertex=compute-model-2 dep=one-to-one tag="in1" cached=false
`,
	"als": `placements:
  read-ratings transient p=4
  key-by-user transient p=4
  aggregate-user-data reserved p=4
  key-by-item transient p=4
  aggregate-item-data reserved p=4
  compute-1st-item-factor reserved p=4
  compute-user-factor-1 transient p=4
  aggregate-user-factor-1 reserved p=4
  compute-item-factor-2 transient p=4
  aggregate-item-factor-2 reserved p=4
  compute-user-factor-2 transient p=4
  aggregate-user-factor-2 reserved p=4
  compute-item-factor-3 transient p=4
  aggregate-item-factor-3 reserved p=4
stages:
  stage 0 root=aggregate-user-data reserved=true rp=4 rf=-1 parents=[] children=[3 5]
    frag 0 p=4 ops=read-ratings,key-by-user
      boundary from=key-by-user dep=many-to-many tag=""
  stage 1 root=aggregate-item-data reserved=true rp=4 rf=-1 parents=[] children=[2 4 6]
    frag 0 p=4 ops=read-ratings,key-by-item
      boundary from=key-by-item dep=many-to-many tag=""
  stage 2 root=compute-1st-item-factor reserved=true rp=4 rf=-1 parents=[1] children=[3]
    input to=compute-1st-item-factor fromStage=1 fromVertex=aggregate-item-data dep=one-to-one tag="" cached=false
  stage 3 root=aggregate-user-factor-1 reserved=true rp=4 rf=-1 parents=[0 2] children=[4]
    frag 0 p=4 ops=compute-user-factor-1
      boundary from=compute-user-factor-1 dep=many-to-many tag=""
    input to=compute-user-factor-1 fromStage=0 fromVertex=aggregate-user-data dep=one-to-one tag="" cached=true
    input to=compute-user-factor-1 fromStage=2 fromVertex=compute-1st-item-factor dep=one-to-many tag="item-factors-1" cached=true
  stage 4 root=aggregate-item-factor-2 reserved=true rp=4 rf=-1 parents=[1 3] children=[5]
    frag 0 p=4 ops=compute-item-factor-2
      boundary from=compute-item-factor-2 dep=many-to-many tag=""
    input to=compute-item-factor-2 fromStage=1 fromVertex=aggregate-item-data dep=one-to-one tag="" cached=true
    input to=compute-item-factor-2 fromStage=3 fromVertex=aggregate-user-factor-1 dep=one-to-many tag="user-factors-1" cached=true
  stage 5 root=aggregate-user-factor-2 reserved=true rp=4 rf=-1 parents=[0 4] children=[6]
    frag 0 p=4 ops=compute-user-factor-2
      boundary from=compute-user-factor-2 dep=many-to-many tag=""
    input to=compute-user-factor-2 fromStage=0 fromVertex=aggregate-user-data dep=one-to-one tag="" cached=true
    input to=compute-user-factor-2 fromStage=4 fromVertex=aggregate-item-factor-2 dep=one-to-many tag="item-factors-2" cached=true
  stage 6 root=aggregate-item-factor-3 reserved=true rp=4 rf=-1 parents=[1 5] children=[]
    frag 0 p=4 ops=compute-item-factor-3
      boundary from=compute-item-factor-3 dep=many-to-many tag=""
    input to=compute-item-factor-3 fromStage=1 fromVertex=aggregate-item-data dep=one-to-one tag="" cached=true
    input to=compute-item-factor-3 fromStage=5 fromVertex=aggregate-user-factor-2 dep=one-to-many tag="user-factors-2" cached=true
`,
}

// TestGoldenPlans pins the default compiler output: with no policy
// configured, Compile must reproduce the pre-refactor plan structure for
// MR, MLR, and ALS byte-for-byte.
func TestGoldenPlans(t *testing.T) {
	for w, want := range goldenPlans {
		plan, err := Compile(goldenGraph(w), PlanConfig{ReduceParallelism: 4})
		if err != nil {
			t.Fatalf("%s: %v", w, err)
		}
		if got := planSignature(plan); got != want {
			t.Errorf("%s: plan signature drifted from golden.\ngot:\n%s\nwant:\n%s", w, got, want)
		}
	}
}
