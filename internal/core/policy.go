package core

import (
	"fmt"
	"sort"
	"sync"

	"pado/internal/dag"
)

// Placements is a placement assignment for every vertex of a graph,
// indexed by dag.VertexID. It is the value passed between the placement
// layer and the partitioning layer: policies produce one, and
// PartitionStages/BuildPlan consume it instead of reading mutable state
// off the graph.
type Placements []dag.Placement

// NewPlacements returns an all-PlaceNone assignment sized for g.
func NewPlacements(g *dag.Graph) Placements {
	return make(Placements, g.NumVertices())
}

// PlacementsFromGraph snapshots the placements currently annotated on g.
func PlacementsFromGraph(g *dag.Graph) Placements {
	pl := NewPlacements(g)
	for id, v := range g.Vertices() {
		pl[id] = v.Placement
	}
	return pl
}

// Of returns the placement of id, or PlaceNone when out of range.
func (pl Placements) Of(id dag.VertexID) dag.Placement {
	if int(id) < 0 || int(id) >= len(pl) {
		return dag.PlaceNone
	}
	return pl[id]
}

// Reserved reports whether id is placed on reserved containers.
func (pl Placements) Reserved(id dag.VertexID) bool { return pl.Of(id) == dag.PlaceReserved }

// Apply annotates g's vertices with the assignment, for DOT rendering and
// plan printing. Policies themselves never mutate the graph; Compile calls
// Apply once the assignment is final.
func (pl Placements) Apply(g *dag.Graph) {
	for id, v := range g.Vertices() {
		if id < len(pl) {
			v.Placement = pl[id]
		}
	}
}

// PolicyEnv describes the cluster capacity visible to a placement policy.
// The zero value means "capacity unknown": no reserved-slot budget is
// enforced and the eviction rate is treated as zero.
type PolicyEnv struct {
	// ReservedSlotBudget is the total number of reserved task slots in
	// the cell (reserved nodes × slots per node). 0 disables budgeting.
	ReservedSlotBudget int
	// TransientSlots is the total number of transient task slots.
	TransientSlots int
	// EvictionsPerMinute is the expected cell-wide transient-container
	// eviction rate, in evictions per paper-minute.
	EvictionsPerMinute float64
}

// PlacementPolicy decides, for every operator of a logical DAG, whether it
// runs on transient or reserved containers. Implementations must be
// stateless and deterministic: the same graph and env always yield the
// same assignment. The returned assignment must be legal per
// CheckPlacements — use Legalize for the mandatory rules.
//
// Policies run after ResolveParallelism, so v.Parallelism is available as
// a work proxy.
type PlacementPolicy interface {
	// Name identifies the policy in flags, reports, and event streams.
	Name() string
	// Place computes a placement assignment without mutating g.
	Place(g *dag.Graph, env PolicyEnv) (Placements, error)
}

var (
	policyMu       sync.RWMutex
	policyRegistry = map[string]PlacementPolicy{}
)

// RegisterPolicy adds a policy to the global registry, keyed by Name().
// It panics on duplicate names (registration is an init-time concern).
func RegisterPolicy(p PlacementPolicy) {
	policyMu.Lock()
	defer policyMu.Unlock()
	name := p.Name()
	if _, dup := policyRegistry[name]; dup {
		panic(fmt.Sprintf("core: placement policy %q registered twice", name))
	}
	policyRegistry[name] = p
}

// PolicyByName resolves a registered policy. The empty string resolves to
// the default PaperRule.
func PolicyByName(name string) (PlacementPolicy, error) {
	if name == "" {
		return PaperRule{}, nil
	}
	policyMu.RLock()
	defer policyMu.RUnlock()
	p, ok := policyRegistry[name]
	if !ok {
		return nil, fmt.Errorf("core: unknown placement policy %q (have %v)", name, policyNamesLocked())
	}
	return p, nil
}

// PolicyNames lists the registered policy names, ascending.
func PolicyNames() []string {
	policyMu.RLock()
	defer policyMu.RUnlock()
	return policyNamesLocked()
}

func policyNamesLocked() []string {
	names := make([]string, 0, len(policyRegistry))
	for n := range policyRegistry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func init() {
	RegisterPolicy(PaperRule{})
	RegisterPolicy(AllTransient{})
	RegisterPolicy(AllReserved{})
	RegisterPolicy(CostModel{})
}

// PaperRule is Algorithm 1 from the paper (§3.1.1), the default policy:
//
//   - computational operators with ANY many-to-many or many-to-one input
//     dependency run on reserved containers (their eviction would force
//     recomputation of many parent tasks);
//   - computational operators whose inputs are ALL one-to-one AND ALL come
//     from reserved operators run on reserved containers (data locality);
//   - every other computational operator runs on transient containers;
//   - source operators that read external storage (ISREAD) run on
//     transient containers, sources that create data in memory
//     (ISCREATED) on reserved containers.
type PaperRule struct{}

// Name implements PlacementPolicy.
func (PaperRule) Name() string { return "paper" }

// Place implements PlacementPolicy. It ignores env: the paper rule is
// capacity-oblivious.
func (PaperRule) Place(g *dag.Graph, _ PolicyEnv) (Placements, error) {
	order, err := g.TopoSort()
	if err != nil {
		return nil, err
	}
	pl := NewPlacements(g)
	for _, id := range order {
		v := g.Vertex(id)
		in := g.InEdges(id)
		if len(in) == 0 {
			switch v.Kind {
			case dag.KindSourceRead:
				pl[id] = dag.PlaceTransient
			case dag.KindSourceCreate:
				pl[id] = dag.PlaceReserved
			default:
				return nil, fmt.Errorf("core: vertex %q has no inputs but kind %v", v.Name, v.Kind)
			}
			continue
		}
		if anyMatch(in, func(e dag.Edge) bool { return e.Dep.Wide() }) {
			pl[id] = dag.PlaceReserved
			continue
		}
		allOneToOne := allMatch(in, func(e dag.Edge) bool { return e.Dep == dag.OneToOne })
		allFromReserved := allMatch(in, func(e dag.Edge) bool {
			return pl.Reserved(e.From)
		})
		if allOneToOne && allFromReserved {
			pl[id] = dag.PlaceReserved
		} else {
			pl[id] = dag.PlaceTransient
		}
	}
	return pl, nil
}

// AllTransient is a degenerate baseline: every operator on transient
// containers wherever the runtime permits it. Legalize still promotes the
// operators that cannot run transient (created sources, wide-dependency
// consumers, broadcast producers feeding transient consumers), so the
// resulting plan is always executable — this is the "maximally transient"
// legal placement, not a literal all-transient one.
type AllTransient struct{}

// Name implements PlacementPolicy.
func (AllTransient) Name() string { return "all-transient" }

// Place implements PlacementPolicy.
func (AllTransient) Place(g *dag.Graph, _ PolicyEnv) (Placements, error) {
	pl := NewPlacements(g)
	for id := range pl {
		pl[id] = dag.PlaceTransient
	}
	return Legalize(g, pl)
}

// AllReserved is a degenerate baseline: every operator on reserved
// containers, except read sources, which the runtime can only execute on
// transient containers (reserved roots fetch or receive data; they do not
// read external storage).
type AllReserved struct{}

// Name implements PlacementPolicy.
func (AllReserved) Name() string { return "all-reserved" }

// Place implements PlacementPolicy.
func (AllReserved) Place(g *dag.Graph, _ PolicyEnv) (Placements, error) {
	pl := NewPlacements(g)
	for id := range pl {
		pl[id] = dag.PlaceReserved
	}
	return Legalize(g, pl)
}

// Legalize rewrites an assignment so it satisfies the runtime's placement
// constraints, promoting vertices to reserved (never demoting) where the
// plan would otherwise not partition into legal Pado stages:
//
//  1. read sources must be transient (reserved roots cannot execute
//     ReadOps) and created sources must be reserved (their data must
//     survive evictions);
//  2. any consumer of a many-to-one or many-to-many edge must be reserved
//     (transient fragments only support one-to-one and one-to-many
//     cross-stage inputs, and wide transient-to-transient edges cannot be
//     fused);
//  3. a one-to-many (broadcast) edge between two transient operators
//     cannot be fused either, so the producer is promoted to reserved —
//     or, when the producer is a read source, the consumer is.
//
// A single topological pass suffices: promoting a vertex to reserved never
// creates a new violation (reserved vertices accept every dependency type
// as stage inputs, and rule 2 already reserved every wide consumer).
func Legalize(g *dag.Graph, pl Placements) (Placements, error) {
	order, err := g.TopoSort()
	if err != nil {
		return nil, err
	}
	for _, id := range order {
		v := g.Vertex(id)
		in := g.InEdges(id)
		if len(in) == 0 {
			if v.Kind == dag.KindSourceRead {
				pl[id] = dag.PlaceTransient
			} else {
				pl[id] = dag.PlaceReserved
			}
			continue
		}
		if anyMatch(in, func(e dag.Edge) bool { return e.Dep.Wide() }) {
			pl[id] = dag.PlaceReserved
			continue
		}
		if pl[id] == dag.PlaceNone {
			pl[id] = dag.PlaceTransient
		}
	}
	// Rule 3. Topological order guarantees that by the time id is visited
	// as a producer, every promotion affecting id has already happened
	// (consumers are only promoted from their producer's visit, which
	// precedes them).
	for _, id := range order {
		for _, e := range g.OutEdges(id) {
			if e.Dep != dag.OneToMany {
				continue
			}
			if pl.Of(id) != dag.PlaceTransient || pl.Of(e.To) != dag.PlaceTransient {
				continue
			}
			if g.Vertex(id).Kind == dag.KindSourceRead {
				pl[e.To] = dag.PlaceReserved
			} else {
				pl[id] = dag.PlaceReserved
			}
		}
	}
	return pl, nil
}

// CheckPlacements verifies that an assignment satisfies the runtime's
// placement constraints (the same rules Legalize enforces). Compile runs
// it after every policy so a buggy policy fails with a placement error
// rather than a downstream partitioning panic.
func CheckPlacements(g *dag.Graph, pl Placements) error {
	for id, v := range g.Vertices() {
		vid := dag.VertexID(id)
		switch pl.Of(vid) {
		case dag.PlaceTransient, dag.PlaceReserved:
		default:
			return fmt.Errorf("core: vertex %q is unplaced", v.Name)
		}
		if len(g.InEdges(vid)) == 0 {
			if v.Kind == dag.KindSourceRead && pl.Of(vid) != dag.PlaceTransient {
				return fmt.Errorf("core: read source %q must be placed transient", v.Name)
			}
			if v.Kind == dag.KindSourceCreate && pl.Of(vid) != dag.PlaceReserved {
				return fmt.Errorf("core: created source %q must be placed reserved", v.Name)
			}
		}
	}
	for _, e := range g.Edges() {
		if e.Dep.Wide() && pl.Of(e.To) != dag.PlaceReserved {
			return fmt.Errorf("core: operator %q consumes a %v dependency and must be placed reserved",
				g.Vertex(e.To).Name, e.Dep)
		}
		if e.Dep == dag.OneToMany &&
			pl.Of(e.From) == dag.PlaceTransient && pl.Of(e.To) == dag.PlaceTransient {
			return fmt.Errorf("core: broadcast edge %q -> %q cannot connect two transient operators",
				g.Vertex(e.From).Name, g.Vertex(e.To).Name)
		}
	}
	return nil
}
