package core

import (
	"math"
	"sort"

	"pado/internal/dag"
)

// CostModel places each operator by its expected recomputation cost under
// the eviction rate in PolicyEnv, subject to the reserved-slot budget:
//
//  1. start from the maximally transient legal assignment (Legalize over
//     an all-transient baseline) — those reserved vertices are mandatory,
//     so they are charged against the budget first, even if that exceeds
//     it: validity trumps budgeting;
//
//  2. score every remaining transient vertex by the expected work an
//     eviction of its output destroys, per reserved slot it would occupy:
//
//     score(v) = EvictionsPerMinute × chainWork(v) × reuse(v) / slots(v)
//
//     where chainWork(v) is the task count of v plus its transient
//     ancestors (the recomputation chain an eviction re-runs), reuse(v)
//     is the number of consumers that would each re-trigger that chain,
//     and slots(v) = v.Parallelism is the reserved capacity it would
//     pin;
//
//  3. greedily reserve vertices in descending score order (ties broken by
//     vertex id) while they fit in the remaining budget; vertices that do
//     not fit stay transient. Read sources are never candidates (the
//     runtime cannot execute them on reserved containers).
//
// With a zero eviction rate every score is zero and the model reserves
// nothing beyond the mandatory set: if transient capacity is free and
// never revoked, using it is always preferable. A zero budget means
// capacity unknown and disables the constraint.
type CostModel struct{}

// Name implements PlacementPolicy.
func (CostModel) Name() string { return "cost" }

// Place implements PlacementPolicy.
func (CostModel) Place(g *dag.Graph, env PolicyEnv) (Placements, error) {
	order, err := g.TopoSort()
	if err != nil {
		return nil, err
	}
	pl := NewPlacements(g)
	for id := range pl {
		pl[id] = dag.PlaceTransient
	}
	if _, err := Legalize(g, pl); err != nil {
		return nil, err
	}

	budget := env.ReservedSlotBudget
	if budget <= 0 {
		budget = math.MaxInt // capacity unknown: unconstrained
	}
	spent := 0
	for _, id := range order {
		if pl.Reserved(id) {
			spent += slotsOf(g, id)
		}
	}

	if env.EvictionsPerMinute <= 0 {
		// No evictions expected: transient capacity is free to use and
		// never revoked, so nothing beyond the mandatory set pays off.
		return pl, nil
	}

	type candidate struct {
		id    dag.VertexID
		score float64
		slots int
	}
	chain := chainWork(g, order, pl)
	var cands []candidate
	for _, id := range order {
		if pl.Reserved(id) || g.Vertex(id).Kind == dag.KindSourceRead {
			continue
		}
		slots := slotsOf(g, id)
		score := env.EvictionsPerMinute * chain[id] * reuse(g, id) / float64(slots)
		cands = append(cands, candidate{id: id, score: score, slots: slots})
	}
	sort.SliceStable(cands, func(i, j int) bool {
		if cands[i].score != cands[j].score {
			return cands[i].score > cands[j].score
		}
		return cands[i].id < cands[j].id
	})
	for _, c := range cands {
		if spent+c.slots > budget {
			continue // does not fit; a cheaper candidate still might
		}
		pl[c.id] = dag.PlaceReserved
		spent += c.slots
	}
	// Reserving extra vertices never invalidates an assignment, but the
	// broadcast rule can involve pairs, so re-run the validity pass to
	// keep the contract obvious.
	return Legalize(g, pl)
}

func slotsOf(g *dag.Graph, id dag.VertexID) int {
	if p := g.Vertex(id).Parallelism; p > 0 {
		return p
	}
	return 1
}

// chainWork computes, for every vertex, the task count of the transient
// recomputation chain an eviction of its output would re-run: its own
// tasks plus the chains of its transient parents. Reserved parents
// contribute nothing — their outputs survive evictions. Shared ancestors
// are counted once per consuming path, matching what re-execution
// actually costs when intermediate data is gone.
func chainWork(g *dag.Graph, order []dag.VertexID, pl Placements) map[dag.VertexID]float64 {
	chain := make(map[dag.VertexID]float64, len(order))
	for _, id := range order {
		w := float64(slotsOf(g, id))
		for _, p := range g.Parents(id) {
			if !pl.Reserved(p) {
				w += chain[p]
			}
		}
		chain[id] = w
	}
	return chain
}

// reuse counts the consumers of a vertex — each one re-triggers the
// recomputation chain when the vertex's transient output is lost.
// Terminal vertices count as one consumer (the job sink).
func reuse(g *dag.Graph, id dag.VertexID) float64 {
	if n := len(g.OutEdges(id)); n > 0 {
		return float64(n)
	}
	return 1
}
