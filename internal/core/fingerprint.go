package core

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sort"

	"pado/internal/dag"
	"pado/internal/data"
	"pado/internal/dataflow"
)

// Operator fingerprints and stage cache keys.
//
// Every vertex gets a deterministic *structural* fingerprint — a hash of
// its name, kind, operator shape (type, coders, cost, side inputs),
// parallelism, and the structural fingerprints of its upstream vertices
// with the connecting dependency types and tags. Two vertices share a
// structural fingerprint exactly when they compute the same function of
// their inputs the same way.
//
// On top of that, each vertex gets a *data* fingerprint that additionally
// folds in the identity of the source data feeding it: partition
// fingerprints from FingerprintedSource for reads, the encoded records
// for in-memory creates. A stage's CacheKey is the data fingerprint of
// its root — H(operator fingerprint, input identities) — so
// cache-key equality means "same computation over the same input",
// which is what licenses serving the stage's output from the commit
// store instead of recomputing it.
//
// Function bodies are not hashed (Go cannot introspect a closure):
// operator identity comes from the vertex name plus operator shape.
// Changing a ParDo's logic without renaming the vertex will NOT
// invalidate cached results — the documented contract is to rename the
// operator (or change the source fingerprints) when semantics change.
//
// A source without fingerprints poisons everything downstream of it: the
// data fingerprint becomes "" along every path it feeds, and a stage with
// CacheKey "" is never probed or committed. Pipelines that opt out of
// fingerprinting therefore behave exactly as before this layer existed.

// fpHash hashes length-prefixed parts so no concatenation of distinct
// part lists collides.
func fpHash(parts ...string) string {
	h := sha256.New()
	var lenBuf [8]byte
	for _, p := range parts {
		binary.LittleEndian.PutUint64(lenBuf[:], uint64(len(p)))
		h.Write(lenBuf[:])
		h.Write([]byte(p))
	}
	return hex.EncodeToString(h.Sum(nil))
}

func coderName(c data.Coder) string {
	if c == nil {
		return ""
	}
	return c.Name()
}

// opDescriptor captures the operator's shape: everything about how it
// transforms records except its position in the graph and its input data.
func opDescriptor(v *dag.Vertex) string {
	switch op := v.Op.(type) {
	case *dataflow.CreateOp:
		return fpHash("create", coderName(op.Coder))
	case *dataflow.ReadOp:
		return fpHash("read", coderName(op.Coder),
			fmt.Sprintf("cached=%t cost=%d", op.Cached, op.Cost))
	case *dataflow.ParDoOp:
		parts := []string{"pardo", fmt.Sprintf("%T", op.Fn), coderName(op.OutCoder),
			fmt.Sprintf("cacheInput=%t cost=%d", op.CacheInput, op.Cost)}
		for _, s := range op.Sides {
			parts = append(parts, fmt.Sprintf("side=%s cached=%t", s.Name, s.Cached))
		}
		return fpHash(parts...)
	case *dataflow.CombineOp:
		return fpHash("combine", fmt.Sprintf("%T", op.Fn),
			coderName(op.InCoder), coderName(op.OutCoder), coderName(op.AccCoder),
			fmt.Sprintf("global=%t cost=%d", op.Global, op.Cost))
	case *dataflow.MultiOp:
		return fpHash("multi", fmt.Sprintf("%T", op.Fn), coderName(op.OutCoder),
			fmt.Sprintf("n=%d", op.NumInputs))
	default:
		return fpHash("op", fmt.Sprintf("%T", v.Op))
	}
}

// sourceDataFP returns the identity of the data a source vertex
// introduces. ok=false means the source cannot be fingerprinted, which
// disables caching downstream. Non-source vertices contribute "" with
// ok=true (they introduce no data of their own).
func sourceDataFP(v *dag.Vertex) (fp string, ok bool) {
	switch op := v.Op.(type) {
	case *dataflow.CreateOp:
		b, err := data.EncodeAll(op.Coder, op.Records)
		if err != nil {
			return "", false
		}
		return fpHash("create-data", string(b)), true
	case *dataflow.ReadOp:
		fs, isFP := op.Source.(dataflow.FingerprintedSource)
		if !isFP {
			return "", false
		}
		n := op.Source.NumPartitions()
		parts := make([]string, 0, n+1)
		parts = append(parts, "read-data")
		for p := 0; p < n; p++ {
			pf := fs.PartitionFingerprint(p)
			if pf == "" {
				return "", false
			}
			parts = append(parts, pf)
		}
		return fpHash(parts...), true
	}
	return "", true
}

// computeCacheKeys annotates the plan's stages with cache keys and, for
// source-only stages, per-task cache keys. It never fails: vertices whose
// identity cannot be established simply get no key.
func computeCacheKeys(g *dag.Graph, plan *Plan) error {
	order, err := g.TopoSort()
	if err != nil {
		return err
	}
	structFP := make(map[dag.VertexID]string, len(order))
	dataFP := make(map[dag.VertexID]string, len(order))
	for _, id := range order {
		v := g.Vertex(id)
		ins := append([]dag.Edge(nil), g.InEdges(id)...)
		sort.Slice(ins, func(i, j int) bool {
			if ins[i].From != ins[j].From {
				return ins[i].From < ins[j].From
			}
			return ins[i].Tag < ins[j].Tag
		})
		parts := []string{"vertex", v.Name, v.Kind.String(),
			fmt.Sprintf("par=%d", v.Parallelism), opDescriptor(v)}
		for _, e := range ins {
			parts = append(parts, structFP[e.From], e.Dep.String(), e.Tag)
		}
		structFP[id] = fpHash(parts...)

		src, ok := sourceDataFP(v)
		if !ok {
			dataFP[id] = ""
			continue
		}
		dparts := []string{"data", structFP[id], src}
		known := true
		for _, e := range ins {
			if dataFP[e.From] == "" {
				known = false
				break
			}
			dparts = append(dparts, dataFP[e.From])
		}
		if !known {
			dataFP[id] = ""
			continue
		}
		dataFP[id] = fpHash(dparts...)
	}

	for _, ps := range plan.Stages {
		// Only reserved roots materialize per-partition outputs the
		// commit path can store and later serve; terminal transient
		// stages stream straight to the sink and stay uncached.
		if !ps.RootReserved {
			continue
		}
		ps.CacheKey = dataFP[ps.Root]
		computeTaskKeys(g, ps, structFP)
	}
	return nil
}

// computeTaskKeys assigns per-task cache keys to the fragments of a
// source-only stage: each task's output is a pure function of the stage's
// structure and its own source partition, so a rerun where only a few
// partitions changed can skip the unchanged tasks individually even when
// the stage-level key (which covers ALL partitions) misses.
func computeTaskKeys(g *dag.Graph, ps *PhysStage, structFP map[dag.VertexID]string) {
	if len(ps.Inputs) > 0 || len(ps.Fragments) == 0 {
		return
	}
	keys := make([][]string, len(ps.Fragments))
	any := false
	for i, f := range ps.Fragments {
		// The fragment must be a single chain rooted at one
		// fingerprinted source: its first op reads the source, and no
		// other op introduces data.
		op, isRead := g.Vertex(f.Ops[0]).Op.(*dataflow.ReadOp)
		if !isRead {
			continue
		}
		fs, isFP := op.Source.(dataflow.FingerprintedSource)
		if !isFP || op.Source.NumPartitions() != f.Parallelism {
			continue
		}
		chain := true
		for _, id := range f.Ops[1:] {
			if len(g.InEdges(id)) != 1 {
				chain = false
				break
			}
		}
		if !chain {
			continue
		}
		ks := make([]string, f.Parallelism)
		complete := true
		for t := range ks {
			pf := fs.PartitionFingerprint(t)
			if pf == "" {
				complete = false
				break
			}
			// The root's structural fingerprint covers the whole
			// stage shape, including receiver parallelism — so a
			// repartitioned rerun can never alias a task key.
			ks[t] = fpHash("task", structFP[ps.Root], fmt.Sprintf("frag=%d", f.Index), pf)
		}
		if complete {
			keys[i] = ks
			any = true
		}
	}
	if any {
		ps.TaskKeys = keys
	}
}
