package core

import (
	"strings"
	"testing"

	"pado/internal/dag"
	"pado/internal/data"
	"pado/internal/dataflow"
	"pado/internal/workloads"
)

// placementByName compiles the graph and returns operator placements
// keyed by vertex name.
func placementByName(t *testing.T, g *dag.Graph) map[string]dag.Placement {
	t.Helper()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := Place(g); err != nil {
		t.Fatal(err)
	}
	out := make(map[string]dag.Placement)
	for _, v := range g.Vertices() {
		out[v.Name] = v.Placement
	}
	return out
}

func expectPlacements(t *testing.T, got map[string]dag.Placement, want map[string]dag.Placement) {
	t.Helper()
	for name, placement := range want {
		if got[name] != placement {
			t.Errorf("operator %q placed %v, want %v", name, got[name], placement)
		}
	}
}

// TestPlacementMapReduce checks Figure 3(a): Read and Map transient,
// Reduce reserved.
func TestPlacementMapReduce(t *testing.T) {
	g := workloads.MR(workloads.MRConfig{Partitions: 4, LinesPerPart: 10, Docs: 10, Seed: 1}).Graph()
	got := placementByName(t, g)
	expectPlacements(t, got, map[string]dag.Placement{
		"read-pageviews": dag.PlaceTransient,
		"parse":          dag.PlaceTransient,
		"sum-views":      dag.PlaceReserved,
	})
}

// TestPlacementMLR checks Figure 3(b): Create 1st Model reserved, Read
// Training Data and Compute Gradient transient, Aggregate Gradients and
// Compute Nth Model reserved.
func TestPlacementMLR(t *testing.T) {
	cfg := workloads.MLRConfig{Partitions: 4, SamplesPerPart: 4, Features: 8,
		Classes: 2, NonZeros: 2, Iterations: 2, LearningRate: 0.1, Seed: 1}
	g := workloads.MLR(cfg).Graph()
	got := placementByName(t, g)
	expectPlacements(t, got, map[string]dag.Placement{
		"create-1st-model":      dag.PlaceReserved,  // ISCREATED
		"read-training-data":    dag.PlaceTransient, // ISREAD
		"compute-gradient-1":    dag.PlaceTransient, // o-o + o-m inputs
		"aggregate-gradients-1": dag.PlaceReserved,  // m-o input
		"compute-model-2":       dag.PlaceReserved,  // all o-o from reserved
		"compute-gradient-2":    dag.PlaceTransient,
		"aggregate-gradients-2": dag.PlaceReserved,
		"compute-model-3":       dag.PlaceReserved,
	})
}

// TestPlacementALS checks Figure 3(c): Read and the compute operators
// transient, the aggregations reserved, and Compute 1st Item Factor
// reserved by the data-locality rule (all one-to-one inputs from
// reserved operators).
func TestPlacementALS(t *testing.T) {
	cfg := workloads.ALSConfig{Partitions: 4, RatingsPerPart: 10, Users: 5,
		Items: 4, Rank: 2, Iterations: 2, Lambda: 0.1, Seed: 1}
	g := workloads.ALS(cfg).Graph()
	got := placementByName(t, g)
	expectPlacements(t, got, map[string]dag.Placement{
		"read-ratings":            dag.PlaceTransient,
		"key-by-user":             dag.PlaceTransient,
		"key-by-item":             dag.PlaceTransient,
		"aggregate-user-data":     dag.PlaceReserved, // m-m input
		"aggregate-item-data":     dag.PlaceReserved,
		"compute-1st-item-factor": dag.PlaceReserved, // locality rule
		"compute-user-factor-1":   dag.PlaceTransient,
		"aggregate-user-factor-1": dag.PlaceReserved,
		"compute-item-factor-2":   dag.PlaceTransient,
		"aggregate-item-factor-2": dag.PlaceReserved,
	})
}

func TestPlacementLocalityChainStaysReserved(t *testing.T) {
	// A chain of one-to-one operators below a reserved operator stays
	// reserved (Algorithm 1's second rule applied transitively).
	p := dataflow.NewPipeline()
	kv := workloads.CountCoder
	read := p.Read("read", &dataflow.FuncSource{Partitions: 2, Gen: nil}, kv)
	reduced := read.CombinePerKey("reduce", dataflow.SumInt64Fn{}, kv)
	m1 := reduced.ParDo("post1", dataflow.MapFunc(func(r data.Record) data.Record { return r }), kv)
	m2 := m1.ParDo("post2", dataflow.MapFunc(func(r data.Record) data.Record { return r }), kv)
	got := placementByName(t, p.Graph())
	expectPlacements(t, got, map[string]dag.Placement{
		"read":   dag.PlaceTransient,
		"reduce": dag.PlaceReserved,
		"post1":  dag.PlaceReserved,
		"post2":  dag.PlaceReserved,
	})
	_ = m2
}

// TestPartitioningMLRStages checks Algorithm 2 on the MLR DAG: every
// stage is rooted at a reserved operator and transient parents fold in.
func TestPartitioningMLRStages(t *testing.T) {
	cfg := workloads.MLRConfig{Partitions: 4, SamplesPerPart: 4, Features: 8,
		Classes: 2, NonZeros: 2, Iterations: 2, LearningRate: 0.1, Seed: 1}
	g := workloads.MLR(cfg).Graph()
	if err := Place(g); err != nil {
		t.Fatal(err)
	}
	if err := ResolveParallelism(g, PlanConfig{ReduceParallelism: 3}); err != nil {
		t.Fatal(err)
	}
	stages, err := PartitionStages(g, PlacementsFromGraph(g))
	if err != nil {
		t.Fatal(err)
	}
	// Expected stages: create-model, (read+gradient->aggregate) x2,
	// model-update x2 = 1 + 2 + 2 = 5, plus none terminal-transient.
	if len(stages) != 5 {
		for _, s := range stages {
			t.Logf("stage %d root=%s ops=%d", s.ID, g.Vertex(s.Root).Name, len(s.Ops))
		}
		t.Fatalf("got %d stages, want 5", len(stages))
	}
	byRoot := make(map[string]*Stage)
	for _, s := range stages {
		if !s.HasReservedRoot(g) {
			t.Errorf("stage %d has non-reserved root %s", s.ID, g.Vertex(s.Root).Name)
		}
		byRoot[g.Vertex(s.Root).Name] = s
	}
	agg1 := byRoot["aggregate-gradients-1"]
	if agg1 == nil {
		t.Fatal("no stage rooted at aggregate-gradients-1")
	}
	names := map[string]bool{}
	for _, op := range agg1.Ops {
		names[g.Vertex(op).Name] = true
	}
	if !names["read-training-data"] || !names["compute-gradient-1"] {
		t.Errorf("aggregate stage missing transient parents: %v", names)
	}
	// The shared Read operator must also appear in iteration 2's stage
	// (recomputed or cached, per Algorithm 2).
	agg2 := byRoot["aggregate-gradients-2"]
	found := false
	for _, op := range agg2.Ops {
		if g.Vertex(op).Name == "read-training-data" {
			found = true
		}
	}
	if !found {
		t.Error("shared Read not re-added to second iteration's stage")
	}
}

// TestCompileMLRPlan checks the physical plan: fragments, boundaries,
// cross-stage inputs, and caching flags.
func TestCompileMLRPlan(t *testing.T) {
	cfg := workloads.MLRConfig{Partitions: 4, SamplesPerPart: 4, Features: 8,
		Classes: 2, NonZeros: 2, Iterations: 1, LearningRate: 0.1, Seed: 1}
	g := workloads.MLR(cfg).Graph()
	plan, err := Compile(g, PlanConfig{ReduceParallelism: 3})
	if err != nil {
		t.Fatal(err)
	}
	var aggStage *PhysStage
	for _, ps := range plan.Stages {
		if g.Vertex(ps.Root).Name == "aggregate-gradients-1" {
			aggStage = ps
		}
	}
	if aggStage == nil {
		t.Fatal("no aggregate stage in plan")
	}
	if !aggStage.RootReserved {
		t.Error("aggregate root should be reserved")
	}
	if aggStage.RootParallelism != 1 {
		t.Errorf("many-to-one root parallelism = %d, want 1", aggStage.RootParallelism)
	}
	if len(aggStage.Fragments) != 1 {
		t.Fatalf("fragments = %d, want 1", len(aggStage.Fragments))
	}
	frag := aggStage.Fragments[0]
	if frag.Parallelism != cfg.Partitions {
		t.Errorf("fragment parallelism = %d, want %d", frag.Parallelism, cfg.Partitions)
	}
	if len(frag.Boundaries) != 1 || frag.Boundaries[0].Dep != dag.ManyToOne {
		t.Errorf("boundaries = %+v", frag.Boundaries)
	}
	// The gradient operator's side input (the model) must be a cached
	// broadcast cross-stage input.
	foundSide := false
	for _, si := range aggStage.Inputs {
		if si.Dep == dag.OneToMany {
			foundSide = true
			if !si.Cached {
				t.Error("model side input should be cached")
			}
		}
	}
	if !foundSide {
		t.Error("no broadcast input found for the gradient stage")
	}
	// The model-update stage has two aligned cross-stage inputs and no
	// fragments.
	var updStage *PhysStage
	for _, ps := range plan.Stages {
		if g.Vertex(ps.Root).Name == "compute-model-2" {
			updStage = ps
		}
	}
	if updStage == nil {
		t.Fatal("no update stage")
	}
	if len(updStage.Fragments) != 0 {
		t.Errorf("update stage has %d fragments", len(updStage.Fragments))
	}
	if len(updStage.Inputs) != 2 {
		t.Errorf("update stage inputs = %+v", updStage.Inputs)
	}
	// Terminal stage = final model.
	terms := plan.TerminalStages()
	if len(terms) != 1 || plan.Stage(terms[0]).Root != updStage.Root {
		t.Errorf("terminal stages = %v", terms)
	}
}

func TestResolveParallelismRules(t *testing.T) {
	cfg := workloads.MRConfig{Partitions: 7, LinesPerPart: 1, Docs: 5, Seed: 1}
	g := workloads.MR(cfg).Graph()
	if err := Place(g); err != nil {
		t.Fatal(err)
	}
	if err := ResolveParallelism(g, PlanConfig{ReduceParallelism: 9}); err != nil {
		t.Fatal(err)
	}
	for _, v := range g.Vertices() {
		switch v.Name {
		case "read-pageviews", "parse":
			if v.Parallelism != 7 {
				t.Errorf("%s parallelism = %d, want 7", v.Name, v.Parallelism)
			}
		case "sum-views":
			if v.Parallelism != 9 {
				t.Errorf("%s parallelism = %d, want 9", v.Name, v.Parallelism)
			}
		}
	}
}

func TestReduceParallelismDefault(t *testing.T) {
	if (PlanConfig{}).reduceParallelism() != 8 {
		t.Error("default reduce parallelism should be 8")
	}
}

func TestCompileRejectsUnplacedPartitioning(t *testing.T) {
	g := workloads.MR(workloads.MRConfig{Partitions: 2, LinesPerPart: 1, Docs: 2, Seed: 1}).Graph()
	if _, err := PartitionStages(g, PlacementsFromGraph(g)); err == nil || !strings.Contains(err.Error(), "unplaced") {
		t.Errorf("expected unplaced error, got %v", err)
	}
}

func TestTerminalTransientStage(t *testing.T) {
	// A pipeline ending on a transient operator forms a terminal
	// transient stage whose root is in a fragment.
	p := dataflow.NewPipeline()
	kv := workloads.CountCoder
	read := p.Read("read", &dataflow.FuncSource{Partitions: 3, Gen: nil}, kv)
	read.ParDo("map-only", dataflow.MapFunc(func(r data.Record) data.Record { return r }), kv)
	plan, err := Compile(p.Graph(), PlanConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Stages) != 1 {
		t.Fatalf("stages = %d, want 1", len(plan.Stages))
	}
	ps := plan.Stages[0]
	if ps.RootReserved {
		t.Error("map-only root should be transient")
	}
	if ps.RootFragment != 0 || len(ps.Fragments) != 1 {
		t.Errorf("root fragment = %d of %d", ps.RootFragment, len(ps.Fragments))
	}
	if !ps.Terminal() {
		t.Error("stage should be terminal")
	}
}
