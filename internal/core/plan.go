package core

import (
	"fmt"
	"sort"

	"pado/internal/dag"
)

// PlanConfig parameterizes the compiler pipeline.
type PlanConfig struct {
	// ReduceParallelism is the task count for many-to-many consumers
	// (hash-shuffle receivers). Defaults to 8.
	ReduceParallelism int
	// Policy selects the placement policy. Nil means PaperRule, the
	// paper's Algorithm 1.
	Policy PlacementPolicy
	// Env describes the cluster capacity visible to capacity-aware
	// policies (reserved-slot budget, eviction rate). The zero value
	// disables budgeting.
	Env PolicyEnv
}

func (c PlanConfig) policy() PlacementPolicy {
	if c.Policy == nil {
		return PaperRule{}
	}
	return c.Policy
}

func (c PlanConfig) reduceParallelism() int {
	if c.ReduceParallelism <= 0 {
		return 8
	}
	return c.ReduceParallelism
}

// BoundaryEdge is an intra-stage edge from a transient operator to the
// stage's reserved root. Its data crosses from transient to reserved
// executors via the push path.
type BoundaryEdge struct {
	From dag.VertexID
	Dep  dag.DepType
	Tag  string
}

// Fragment is a fused chain (in general, a weakly connected one-to-one
// subgraph) of transient operators within a stage, expanded into
// Parallelism identical tasks (§3.2.2 operator fusion).
type Fragment struct {
	// Index of this fragment within its stage.
	Index int
	// Ops in topological order; all share Parallelism.
	Ops []dag.VertexID
	// Parallelism is the task count of the fragment.
	Parallelism int
	// Boundaries are the edges from this fragment's operators to the
	// stage's reserved root.
	Boundaries []BoundaryEdge
}

// Contains reports whether the fragment includes the vertex.
func (f *Fragment) Contains(id dag.VertexID) bool {
	for _, op := range f.Ops {
		if op == id {
			return true
		}
	}
	return false
}

// StageInput is a cross-stage data dependency: an operator of this stage
// consumes the output of another stage's root, which lives on reserved
// executors (or the sink) and can therefore always be fetched without
// recomputation.
type StageInput struct {
	ToOp       dag.VertexID
	FromStage  int
	FromVertex dag.VertexID
	Dep        dag.DepType
	Tag        string
	// Cached marks the fetch as cacheable in executor memory
	// (§3.2.7 task input caching).
	Cached bool
}

// PhysStage is the physical form of a Stage: transient fragments feeding
// an optional reserved root.
type PhysStage struct {
	ID   int
	Root dag.VertexID
	// RootReserved is false only for terminal transient stages, whose
	// outputs are pushed straight to the job's sink collector.
	RootReserved bool
	// RootParallelism is the task count of the root operator.
	RootParallelism int
	// RootFragment, for terminal transient stages, is the fragment that
	// contains the root (-1 when RootReserved).
	RootFragment int
	// Fragments are the stage's transient fragments (possibly none).
	Fragments []*Fragment
	// Inputs are cross-stage dependencies of any operator in the stage.
	Inputs []StageInput
	// Parents and Children are stage ids, ascending.
	Parents  []int
	Children []int
	// CacheKey identifies this stage's output in the commit store:
	// H(operator fingerprints, source data identity) over the whole
	// upstream cone. "" (stage not cacheable — an unfingerprinted
	// source upstream, or a transient root) disables commit-store
	// probes and writes for the stage. See fingerprint.go.
	CacheKey string
	// TaskKeys, for source-only stages, holds one cache key per task
	// ([fragment][task]); a nil inner slice means that fragment's tasks
	// are not individually cacheable. Task keys let a rerun skip the
	// unchanged tasks of a stage whose stage-level key missed because a
	// few source partitions changed.
	TaskKeys [][]string
}

// Terminal reports whether the stage has no children (its output is the
// job output).
func (s *PhysStage) Terminal() bool { return len(s.Children) == 0 }

// InputsTo returns the cross-stage inputs consumed by op.
func (s *PhysStage) InputsTo(op dag.VertexID) []StageInput {
	var out []StageInput
	for _, in := range s.Inputs {
		if in.ToOp == op {
			out = append(out, in)
		}
	}
	return out
}

// Plan is the compiled physical execution plan.
type Plan struct {
	Graph  *dag.Graph
	Stages []*PhysStage
	// Policy is the name of the placement policy that produced the plan.
	Policy string
}

// Stage returns the physical stage with the given id.
func (p *Plan) Stage(id int) *PhysStage { return p.Stages[id] }

// TerminalStages returns ids of stages without children, ascending.
func (p *Plan) TerminalStages() []int {
	var out []int
	for _, s := range p.Stages {
		if s.Terminal() {
			out = append(out, s.ID)
		}
	}
	return out
}

// BuildPlan lowers the logical stages onto physical stages with fused
// transient fragments, resolved boundaries, and cross-stage inputs. The
// placement assignment is the same explicit value the stages were
// partitioned under.
func BuildPlan(g *dag.Graph, pl Placements, stages []*Stage, cfg PlanConfig) (*Plan, error) {
	rootStage := make(map[dag.VertexID]int) // reserved root vertex -> stage id
	for _, st := range stages {
		if pl.Reserved(st.Root) {
			rootStage[st.Root] = st.ID
		}
	}

	plan := &Plan{Graph: g, Stages: make([]*PhysStage, len(stages))}
	for _, st := range stages {
		ps, err := buildPhysStage(g, pl, st, rootStage)
		if err != nil {
			return nil, err
		}
		plan.Stages[st.ID] = ps
	}
	// Stage parent/child links derive from the resolved inputs so they
	// include every dependency the executor actually fetches.
	for _, ps := range plan.Stages {
		seen := map[int]bool{}
		for _, in := range ps.Inputs {
			if !seen[in.FromStage] {
				seen[in.FromStage] = true
				ps.Parents = append(ps.Parents, in.FromStage)
			}
		}
		sort.Ints(ps.Parents)
		for _, pid := range ps.Parents {
			plan.Stages[pid].Children = append(plan.Stages[pid].Children, ps.ID)
		}
	}
	return plan, nil
}

func buildPhysStage(g *dag.Graph, pl Placements, st *Stage, rootStage map[dag.VertexID]int) (*PhysStage, error) {
	root := g.Vertex(st.Root)
	ps := &PhysStage{
		ID:              st.ID,
		Root:            st.Root,
		RootReserved:    pl.Reserved(st.Root),
		RootParallelism: root.Parallelism,
		RootFragment:    -1,
	}

	inStage := make(map[dag.VertexID]bool, len(st.Ops))
	for _, op := range st.Ops {
		inStage[op] = true
	}

	// Group the stage's transient ops into fragments: weakly connected
	// components over intra-stage one-to-one edges.
	var transient []dag.VertexID
	for _, op := range st.Ops {
		if pl.Of(op) == dag.PlaceTransient {
			transient = append(transient, op)
		}
	}
	comp := make(map[dag.VertexID]int)
	next := 0
	var assign func(op dag.VertexID, c int)
	assign = func(op dag.VertexID, c int) {
		if _, ok := comp[op]; ok {
			return
		}
		comp[op] = c
		for _, e := range g.InEdges(op) {
			if e.Dep == dag.OneToOne && inStage[e.From] && pl.Of(e.From) == dag.PlaceTransient {
				assign(e.From, c)
			}
		}
		for _, e := range g.OutEdges(op) {
			if e.Dep == dag.OneToOne && inStage[e.To] && pl.Of(e.To) == dag.PlaceTransient {
				assign(e.To, c)
			}
		}
	}
	for _, op := range transient {
		if _, ok := comp[op]; !ok {
			assign(op, next)
			next++
		}
	}
	frags := make([]*Fragment, next)
	for i := range frags {
		frags[i] = &Fragment{Index: i}
	}
	// st.Ops is topologically ordered, so appending preserves order
	// within each fragment.
	for _, op := range st.Ops {
		if c, ok := comp[op]; ok {
			frags[c].Ops = append(frags[c].Ops, op)
		}
	}
	for _, f := range frags {
		p := g.Vertex(f.Ops[0]).Parallelism
		for _, op := range f.Ops {
			if g.Vertex(op).Parallelism != p {
				return nil, fmt.Errorf("core: fragment of stage %d mixes parallelism %d and %d (op %q)",
					st.ID, p, g.Vertex(op).Parallelism, g.Vertex(op).Name)
			}
		}
		f.Parallelism = p
	}
	ps.Fragments = frags

	// Classify every in-edge of every stage op.
	for _, op := range st.Ops {
		for _, e := range g.InEdges(op) {
			from := g.Vertex(e.From)
			switch {
			case inStage[e.From] && pl.Of(e.From) == dag.PlaceTransient && op == st.Root && ps.RootReserved:
				// Transient-to-reserved boundary: the push path.
				f := frags[comp[e.From]]
				f.Boundaries = append(f.Boundaries, BoundaryEdge{From: e.From, Dep: e.Dep, Tag: e.Tag})
			case inStage[e.From] && pl.Of(e.From) == dag.PlaceTransient:
				// Transient-to-transient: must be one-to-one (fused).
				if e.Dep != dag.OneToOne {
					return nil, fmt.Errorf("core: unsupported %v edge between transient operators %q and %q within a stage",
						e.Dep, from.Name, g.Vertex(op).Name)
				}
			default:
				// Cross-stage input from a reserved root.
				fromStage, ok := rootStage[e.From]
				if !ok {
					return nil, fmt.Errorf("core: operator %q consumes reserved vertex %q which is not a stage root",
						g.Vertex(op).Name, from.Name)
				}
				ps.Inputs = append(ps.Inputs, StageInput{
					ToOp:       op,
					FromStage:  fromStage,
					FromVertex: e.From,
					Dep:        e.Dep,
					Tag:        e.Tag,
					Cached:     inputCached(g, op, e),
				})
			}
		}
	}

	if !ps.RootReserved {
		ps.RootFragment = comp[st.Root]
	}
	return ps, nil
}
