// Package core implements the Pado Compiler, the paper's primary
// contribution (§3.1): operator placement as a pluggable policy layer
// (Algorithm 1 is the default PaperRule policy), partitioning of the
// logical DAG into Pado stages (Algorithm 2), and generation of the
// physical execution plan with same-placement operator fusion (§3.2.2).
package core

import (
	"fmt"

	"pado/internal/dag"
	"pado/internal/dataflow"
)

// Place runs Algorithm 1 (the PaperRule policy) over the logical DAG and
// annotates every vertex with the resulting placement. It is a
// compatibility wrapper kept for callers that hand-place graphs; Compile
// goes through the PlacementPolicy interface instead.
func Place(g *dag.Graph) error {
	pl, err := PaperRule{}.Place(g, PolicyEnv{})
	if err != nil {
		return err
	}
	pl.Apply(g)
	return nil
}

func anyMatch(edges []dag.Edge, pred func(dag.Edge) bool) bool {
	for _, e := range edges {
		if pred(e) {
			return true
		}
	}
	return false
}

func allMatch(edges []dag.Edge, pred func(dag.Edge) bool) bool {
	for _, e := range edges {
		if !pred(e) {
			return false
		}
	}
	return true
}

// ResolveParallelism assigns a task count to every placed vertex:
//
//   - read sources use their partition count, created sources use 1;
//   - a many-to-many consumer uses cfg.ReduceParallelism;
//   - a many-to-one consumer uses a single task;
//   - a one-to-one consumer inherits its parents' (matching) parallelism.
//
// One-to-many (broadcast) edges impose no constraint.
func ResolveParallelism(g *dag.Graph, cfg PlanConfig) error {
	order, err := g.TopoSort()
	if err != nil {
		return err
	}
	for _, id := range order {
		v := g.Vertex(id)
		in := g.InEdges(id)
		if len(in) == 0 {
			switch op := v.Op.(type) {
			case *dataflow.ReadOp:
				v.Parallelism = op.Source.NumPartitions()
			case *dataflow.CreateOp:
				v.Parallelism = 1
			default:
				v.Parallelism = 1
			}
			if v.Parallelism <= 0 {
				return fmt.Errorf("core: source %q has no partitions", v.Name)
			}
			continue
		}
		hasMM := anyMatch(in, func(e dag.Edge) bool { return e.Dep == dag.ManyToMany })
		hasMO := anyMatch(in, func(e dag.Edge) bool { return e.Dep == dag.ManyToOne })
		switch {
		case hasMM && hasMO:
			return fmt.Errorf("core: vertex %q mixes many-to-many and many-to-one inputs", v.Name)
		case hasMM:
			v.Parallelism = cfg.reduceParallelism()
		case hasMO:
			v.Parallelism = 1
		default:
			p := 0
			for _, e := range in {
				if e.Dep != dag.OneToOne {
					continue // broadcast edges don't constrain
				}
				pp := g.Vertex(e.From).Parallelism
				if p == 0 {
					p = pp
				} else if p != pp {
					return fmt.Errorf("core: vertex %q has one-to-one inputs with mismatched parallelism (%d vs %d)", v.Name, p, pp)
				}
			}
			if p == 0 {
				return fmt.Errorf("core: vertex %q has only broadcast inputs; parallelism undetermined", v.Name)
			}
			v.Parallelism = p
		}
	}
	return nil
}
