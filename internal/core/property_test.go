package core

import (
	"math/rand"
	"testing"

	"pado/internal/dag"
	"pado/internal/data"
	"pado/internal/dataflow"
)

// randomPipeline builds a random but well-formed pipeline: sources feed
// chains of ParDo/CombinePerKey/CombineGlobally with occasional side
// inputs, mirroring the DAG shapes the compiler must handle.
func randomPipeline(rng *rand.Rand) *dataflow.Pipeline {
	kv := data.KVCoder{K: data.StringCoder, V: data.Int64Coder}
	p := dataflow.NewPipeline()
	var cols []dataflow.Collection
	// A mix of read and created sources.
	nSrc := 1 + rng.Intn(3)
	for i := 0; i < nSrc; i++ {
		if rng.Intn(3) == 0 {
			cols = append(cols, p.Create("create", []data.Record{{Value: int64(i)}}, kv))
		} else {
			cols = append(cols, p.Read("read", &dataflow.FuncSource{Partitions: 1 + rng.Intn(6)}, kv))
		}
	}
	nOps := 2 + rng.Intn(10)
	for i := 0; i < nOps; i++ {
		from := cols[rng.Intn(len(cols))]
		switch rng.Intn(4) {
		case 0, 1:
			opts := []dataflow.ParDoOpt{}
			// Side inputs only from keyed-combine outputs (reserved
			// providers, as in the real workloads).
			if rng.Intn(3) == 0 {
				side := cols[rng.Intn(len(cols))]
				// Avoid self side input.
				if side.VertexID() != from.VertexID() {
					opts = append(opts, dataflow.WithSide(dataflow.SideInput{Name: "s", From: side}))
				}
			}
			cols = append(cols, from.ParDo("pardo",
				dataflow.MapFunc(func(r data.Record) data.Record { return r }), kv, opts...))
		case 2:
			cols = append(cols, from.CombinePerKey("combine", dataflow.SumInt64Fn{}, kv))
		case 3:
			cols = append(cols, from.CombineGlobally("global", dataflow.SumInt64Fn{}, kv))
		}
	}
	return p
}

// TestPlacementInvariants checks Algorithm 1's postconditions on random
// DAGs: every vertex is placed; wide-edge consumers are reserved;
// transient computational vertices have at least one input that is not
// one-to-one-from-reserved; created sources are reserved, read sources
// transient.
func TestPlacementInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(20170423))
	for trial := 0; trial < 200; trial++ {
		g := randomPipeline(rng).Graph()
		if err := g.Validate(); err != nil {
			t.Fatalf("trial %d: invalid pipeline: %v", trial, err)
		}
		if err := Place(g); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for _, v := range g.Vertices() {
			in := g.InEdges(v.ID)
			switch {
			case v.Placement == dag.PlaceNone:
				t.Fatalf("trial %d: vertex %q unplaced", trial, v.Name)
			case len(in) == 0:
				want := dag.PlaceTransient
				if v.Kind == dag.KindSourceCreate {
					want = dag.PlaceReserved
				}
				if v.Placement != want {
					t.Fatalf("trial %d: source %v placed %v", trial, v.Kind, v.Placement)
				}
			default:
				anyWide := false
				allOOFromReserved := true
				for _, e := range in {
					if e.Dep.Wide() {
						anyWide = true
					}
					if e.Dep != dag.OneToOne || g.Vertex(e.From).Placement != dag.PlaceReserved {
						allOOFromReserved = false
					}
				}
				want := dag.PlaceTransient
				if anyWide || allOOFromReserved {
					want = dag.PlaceReserved
				}
				if v.Placement != want {
					t.Fatalf("trial %d: vertex %q placed %v, want %v", trial, v.Name, v.Placement, want)
				}
			}
		}
	}
}

// TestPartitioningInvariants checks Algorithm 2's postconditions on
// random DAGs: every vertex appears in at least one stage; each stage
// has exactly one root; roots are reserved or sinks; all non-root ops in
// a stage are transient; stage parent ids are smaller (topological).
func TestPartitioningInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		g := randomPipeline(rng).Graph()
		if err := Place(g); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		stages, err := PartitionStages(g, PlacementsFromGraph(g))
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		covered := map[dag.VertexID]bool{}
		for _, s := range stages {
			root := g.Vertex(s.Root)
			if root.Placement != dag.PlaceReserved && len(g.OutEdges(s.Root)) != 0 {
				t.Fatalf("trial %d: stage %d root %q neither reserved nor sink", trial, s.ID, root.Name)
			}
			if s.Ops[len(s.Ops)-1] != s.Root {
				t.Fatalf("trial %d: stage %d root not last in Ops", trial, s.ID)
			}
			for _, op := range s.Ops {
				covered[op] = true
				if op != s.Root && g.Vertex(op).Placement != dag.PlaceTransient {
					t.Fatalf("trial %d: stage %d contains non-root reserved op %q",
						trial, s.ID, g.Vertex(op).Name)
				}
			}
			for _, pid := range s.Parents {
				if pid >= s.ID {
					t.Fatalf("trial %d: stage %d has parent %d", trial, s.ID, pid)
				}
			}
		}
		for _, v := range g.Vertices() {
			if !covered[v.ID] {
				t.Fatalf("trial %d: vertex %q in no stage", trial, v.Name)
			}
		}
	}
}

// TestPolicyInvariants runs the placement, partitioning, and plan
// invariant suites over every registered policy on random pipelines:
// whatever the policy decides, the assignment must pass CheckPlacements
// and the resulting stages and plan must satisfy the same structural
// postconditions Algorithm 2 guarantees for the paper rule.
func TestPolicyInvariants(t *testing.T) {
	env := PolicyEnv{ReservedSlotBudget: 8, TransientSlots: 24, EvictionsPerMinute: 0.5}
	cfg := PlanConfig{ReduceParallelism: 3}
	for _, name := range PolicyNames() {
		t.Run(name, func(t *testing.T) {
			pol, err := PolicyByName(name)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(20170423))
			trials := 0
			for trials < 150 {
				g := randomPipeline(rng).Graph()
				if err := g.Validate(); err != nil {
					t.Fatalf("invalid pipeline: %v", err)
				}
				if err := ResolveParallelism(g, cfg); err != nil {
					// Some random DAGs are legitimately rejected (e.g.
					// mismatched one-to-one parallelism); skip those.
					continue
				}
				pl, err := pol.Place(g, env)
				if err != nil {
					t.Fatalf("%v", err)
				}
				if err := CheckPlacements(g, pl); err != nil {
					// The raw paper rule legitimately rejects some random
					// DAGs (e.g. a broadcast side input fed by a transient
					// source); Compile surfaces that as a placement error.
					// Legalizing policies must never produce one.
					if name == (PaperRule{}).Name() {
						continue
					}
					t.Fatalf("illegal assignment: %v", err)
				}
				trials++
				stages, err := PartitionStages(g, pl)
				if err != nil {
					t.Fatalf("trial %d: %v", trials, err)
				}
				covered := map[dag.VertexID]bool{}
				for _, s := range stages {
					if !pl.Reserved(s.Root) && len(g.OutEdges(s.Root)) != 0 {
						t.Fatalf("trial %d: stage %d root %q neither reserved nor sink",
							trials, s.ID, g.Vertex(s.Root).Name)
					}
					if s.Ops[len(s.Ops)-1] != s.Root {
						t.Fatalf("trial %d: stage %d root not last in Ops", trials, s.ID)
					}
					for _, op := range s.Ops {
						covered[op] = true
						if op != s.Root && pl.Of(op) != dag.PlaceTransient {
							t.Fatalf("trial %d: stage %d contains non-root reserved op %q",
								trials, s.ID, g.Vertex(op).Name)
						}
					}
					for _, pid := range s.Parents {
						if pid >= s.ID {
							t.Fatalf("trial %d: stage %d has parent %d", trials, s.ID, pid)
						}
					}
				}
				for _, v := range g.Vertices() {
					if !covered[v.ID] {
						t.Fatalf("trial %d: vertex %q in no stage", trials, v.Name)
					}
				}
				plan, err := BuildPlan(g, pl, stages, cfg)
				if err != nil {
					t.Fatalf("trial %d: a checked assignment must plan: %v", trials, err)
				}
				for _, ps := range plan.Stages {
					for _, f := range ps.Fragments {
						if f.Parallelism <= 0 {
							t.Fatalf("trial %d: fragment with parallelism %d", trials, f.Parallelism)
						}
						for _, b := range f.Boundaries {
							if !f.Contains(b.From) {
								t.Fatalf("trial %d: boundary source outside fragment", trials)
							}
						}
					}
					for _, si := range ps.Inputs {
						if si.FromStage >= ps.ID {
							t.Fatalf("trial %d: stage %d input from non-ancestor %d", trials, ps.ID, si.FromStage)
						}
						if !plan.Stages[si.FromStage].RootReserved {
							t.Fatalf("trial %d: cross-stage input from a non-reserved root", trials)
						}
					}
				}
			}
		})
	}
}

// TestCostModelRespectsBudget checks that on random pipelines the cost
// model never reserves more slots than the mandatory legal minimum plus
// its configured budget.
func TestCostModelRespectsBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	cfg := PlanConfig{ReduceParallelism: 3}
	for trial := 0; trial < 150; trial++ {
		g := randomPipeline(rng).Graph()
		if err := ResolveParallelism(g, cfg); err != nil {
			continue
		}
		// The mandatory reserved set is what the maximally transient legal
		// assignment reserves.
		base, err := AllTransient{}.Place(g, PolicyEnv{})
		if err != nil {
			t.Fatal(err)
		}
		mandatory := 0
		for _, v := range g.Vertices() {
			if base.Reserved(v.ID) {
				mandatory += slotsOf(g, v.ID)
			}
		}
		env := PolicyEnv{ReservedSlotBudget: mandatory + 3, EvictionsPerMinute: 2.0}
		pl, err := CostModel{}.Place(g, env)
		if err != nil {
			t.Fatal(err)
		}
		spent := 0
		for _, v := range g.Vertices() {
			if pl.Reserved(v.ID) {
				spent += slotsOf(g, v.ID)
			}
		}
		if spent > env.ReservedSlotBudget {
			t.Fatalf("trial %d: cost model spent %d reserved slots over budget %d (mandatory %d)",
				trial, spent, env.ReservedSlotBudget, mandatory)
		}
	}
}

// TestPaperRuleFigure3Golden asserts the PaperRule policy reproduces the
// paper's Figure 3(a)-(c) placements for MR, MLR, and ALS exactly — every
// vertex, not a subset.
func TestPaperRuleFigure3Golden(t *testing.T) {
	golden := map[string]map[string]dag.Placement{
		"mr": {
			"read-pageviews": dag.PlaceTransient,
			"parse":          dag.PlaceTransient,
			"sum-views":      dag.PlaceReserved,
		},
		"mlr": {
			"create-1st-model":      dag.PlaceReserved,
			"read-training-data":    dag.PlaceTransient,
			"compute-gradient-1":    dag.PlaceTransient,
			"aggregate-gradients-1": dag.PlaceReserved,
			"compute-model-2":       dag.PlaceReserved,
			"compute-gradient-2":    dag.PlaceTransient,
			"aggregate-gradients-2": dag.PlaceReserved,
			"compute-model-3":       dag.PlaceReserved,
		},
		"als": {
			"read-ratings":            dag.PlaceTransient,
			"key-by-user":             dag.PlaceTransient,
			"key-by-item":             dag.PlaceTransient,
			"aggregate-user-data":     dag.PlaceReserved,
			"aggregate-item-data":     dag.PlaceReserved,
			"compute-1st-item-factor": dag.PlaceReserved,
			"compute-user-factor-1":   dag.PlaceTransient,
			"aggregate-user-factor-1": dag.PlaceReserved,
			"compute-item-factor-2":   dag.PlaceTransient,
			"aggregate-item-factor-2": dag.PlaceReserved,
			"compute-user-factor-2":   dag.PlaceTransient,
			"aggregate-user-factor-2": dag.PlaceReserved,
			"compute-item-factor-3":   dag.PlaceTransient,
			"aggregate-item-factor-3": dag.PlaceReserved,
		},
	}
	for w, want := range golden {
		g := goldenGraph(w)
		pl, err := PaperRule{}.Place(g, PolicyEnv{})
		if err != nil {
			t.Fatalf("%s: %v", w, err)
		}
		if g.NumVertices() != len(want) {
			t.Fatalf("%s: golden map covers %d vertices, graph has %d", w, len(want), g.NumVertices())
		}
		for _, v := range g.Vertices() {
			if got := pl.Of(v.ID); got != want[v.Name] {
				t.Errorf("%s: %q placed %v, want %v", w, v.Name, got, want[v.Name])
			}
		}
	}
}

// TestPlanInvariants checks the physical plan on random DAGs: fragment
// parallelism is uniform, boundary sources are in the fragment, and
// cross-stage inputs reference reserved roots of earlier stages.
func TestPlanInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	trials := 0
	for trials < 150 {
		g := randomPipeline(rng).Graph()
		plan, err := Compile(g, PlanConfig{ReduceParallelism: 3})
		if err != nil {
			// Some random DAGs are legitimately rejected (e.g. mismatched
			// one-to-one parallelism after a reduce); skip those.
			continue
		}
		trials++
		for _, ps := range plan.Stages {
			for _, f := range ps.Fragments {
				if f.Parallelism <= 0 {
					t.Fatalf("fragment with parallelism %d", f.Parallelism)
				}
				for _, op := range f.Ops {
					if g.Vertex(op).Parallelism != f.Parallelism {
						t.Fatal("fragment mixes parallelism")
					}
				}
				for _, b := range f.Boundaries {
					if !f.Contains(b.From) {
						t.Fatal("boundary source outside fragment")
					}
				}
			}
			for _, si := range ps.Inputs {
				if si.FromStage >= ps.ID {
					t.Fatalf("stage %d input from non-ancestor %d", ps.ID, si.FromStage)
				}
				from := plan.Stages[si.FromStage]
				if from.Root != si.FromVertex {
					t.Fatal("cross-stage input not from a stage root")
				}
				if !from.RootReserved {
					t.Fatal("cross-stage input from a non-reserved root")
				}
			}
		}
	}
}
