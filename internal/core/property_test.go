package core

import (
	"math/rand"
	"testing"

	"pado/internal/dag"
	"pado/internal/data"
	"pado/internal/dataflow"
)

// randomPipeline builds a random but well-formed pipeline: sources feed
// chains of ParDo/CombinePerKey/CombineGlobally with occasional side
// inputs, mirroring the DAG shapes the compiler must handle.
func randomPipeline(rng *rand.Rand) *dataflow.Pipeline {
	kv := data.KVCoder{K: data.StringCoder, V: data.Int64Coder}
	p := dataflow.NewPipeline()
	var cols []dataflow.Collection
	// A mix of read and created sources.
	nSrc := 1 + rng.Intn(3)
	for i := 0; i < nSrc; i++ {
		if rng.Intn(3) == 0 {
			cols = append(cols, p.Create("create", []data.Record{{Value: int64(i)}}, kv))
		} else {
			cols = append(cols, p.Read("read", &dataflow.FuncSource{Partitions: 1 + rng.Intn(6)}, kv))
		}
	}
	nOps := 2 + rng.Intn(10)
	for i := 0; i < nOps; i++ {
		from := cols[rng.Intn(len(cols))]
		switch rng.Intn(4) {
		case 0, 1:
			opts := []dataflow.ParDoOpt{}
			// Side inputs only from keyed-combine outputs (reserved
			// providers, as in the real workloads).
			if rng.Intn(3) == 0 {
				side := cols[rng.Intn(len(cols))]
				// Avoid self side input.
				if side.VertexID() != from.VertexID() {
					opts = append(opts, dataflow.WithSide(dataflow.SideInput{Name: "s", From: side}))
				}
			}
			cols = append(cols, from.ParDo("pardo",
				dataflow.MapFunc(func(r data.Record) data.Record { return r }), kv, opts...))
		case 2:
			cols = append(cols, from.CombinePerKey("combine", dataflow.SumInt64Fn{}, kv))
		case 3:
			cols = append(cols, from.CombineGlobally("global", dataflow.SumInt64Fn{}, kv))
		}
	}
	return p
}

// TestPlacementInvariants checks Algorithm 1's postconditions on random
// DAGs: every vertex is placed; wide-edge consumers are reserved;
// transient computational vertices have at least one input that is not
// one-to-one-from-reserved; created sources are reserved, read sources
// transient.
func TestPlacementInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(20170423))
	for trial := 0; trial < 200; trial++ {
		g := randomPipeline(rng).Graph()
		if err := g.Validate(); err != nil {
			t.Fatalf("trial %d: invalid pipeline: %v", trial, err)
		}
		if err := Place(g); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for _, v := range g.Vertices() {
			in := g.InEdges(v.ID)
			switch {
			case v.Placement == dag.PlaceNone:
				t.Fatalf("trial %d: vertex %q unplaced", trial, v.Name)
			case len(in) == 0:
				want := dag.PlaceTransient
				if v.Kind == dag.KindSourceCreate {
					want = dag.PlaceReserved
				}
				if v.Placement != want {
					t.Fatalf("trial %d: source %v placed %v", trial, v.Kind, v.Placement)
				}
			default:
				anyWide := false
				allOOFromReserved := true
				for _, e := range in {
					if e.Dep.Wide() {
						anyWide = true
					}
					if e.Dep != dag.OneToOne || g.Vertex(e.From).Placement != dag.PlaceReserved {
						allOOFromReserved = false
					}
				}
				want := dag.PlaceTransient
				if anyWide || allOOFromReserved {
					want = dag.PlaceReserved
				}
				if v.Placement != want {
					t.Fatalf("trial %d: vertex %q placed %v, want %v", trial, v.Name, v.Placement, want)
				}
			}
		}
	}
}

// TestPartitioningInvariants checks Algorithm 2's postconditions on
// random DAGs: every vertex appears in at least one stage; each stage
// has exactly one root; roots are reserved or sinks; all non-root ops in
// a stage are transient; stage parent ids are smaller (topological).
func TestPartitioningInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		g := randomPipeline(rng).Graph()
		if err := Place(g); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		stages, err := PartitionStages(g)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		covered := map[dag.VertexID]bool{}
		for _, s := range stages {
			root := g.Vertex(s.Root)
			if root.Placement != dag.PlaceReserved && len(g.OutEdges(s.Root)) != 0 {
				t.Fatalf("trial %d: stage %d root %q neither reserved nor sink", trial, s.ID, root.Name)
			}
			if s.Ops[len(s.Ops)-1] != s.Root {
				t.Fatalf("trial %d: stage %d root not last in Ops", trial, s.ID)
			}
			for _, op := range s.Ops {
				covered[op] = true
				if op != s.Root && g.Vertex(op).Placement != dag.PlaceTransient {
					t.Fatalf("trial %d: stage %d contains non-root reserved op %q",
						trial, s.ID, g.Vertex(op).Name)
				}
			}
			for _, pid := range s.Parents {
				if pid >= s.ID {
					t.Fatalf("trial %d: stage %d has parent %d", trial, s.ID, pid)
				}
			}
		}
		for _, v := range g.Vertices() {
			if !covered[v.ID] {
				t.Fatalf("trial %d: vertex %q in no stage", trial, v.Name)
			}
		}
	}
}

// TestPlanInvariants checks the physical plan on random DAGs: fragment
// parallelism is uniform, boundary sources are in the fragment, and
// cross-stage inputs reference reserved roots of earlier stages.
func TestPlanInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	trials := 0
	for trials < 150 {
		g := randomPipeline(rng).Graph()
		plan, err := Compile(g, PlanConfig{ReduceParallelism: 3})
		if err != nil {
			// Some random DAGs are legitimately rejected (e.g. mismatched
			// one-to-one parallelism after a reduce); skip those.
			continue
		}
		trials++
		for _, ps := range plan.Stages {
			for _, f := range ps.Fragments {
				if f.Parallelism <= 0 {
					t.Fatalf("fragment with parallelism %d", f.Parallelism)
				}
				for _, op := range f.Ops {
					if g.Vertex(op).Parallelism != f.Parallelism {
						t.Fatal("fragment mixes parallelism")
					}
				}
				for _, b := range f.Boundaries {
					if !f.Contains(b.From) {
						t.Fatal("boundary source outside fragment")
					}
				}
			}
			for _, si := range ps.Inputs {
				if si.FromStage >= ps.ID {
					t.Fatalf("stage %d input from non-ancestor %d", ps.ID, si.FromStage)
				}
				from := plan.Stages[si.FromStage]
				if from.Root != si.FromVertex {
					t.Fatal("cross-stage input not from a stage root")
				}
				if !from.RootReserved {
					t.Fatal("cross-stage input from a non-reserved root")
				}
			}
		}
	}
}
