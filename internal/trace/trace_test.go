package trace

import (
	"math/rand"
	"testing"
)

// TestCalibrationMatchesTable1 locks the synthesis calibration to the
// paper's Table 1 within generous bands (the shapes matter, not the
// exact integers).
func TestCalibrationMatchesTable1(t *testing.T) {
	u := CanonicalUsage()
	cases := []struct {
		margin       SafetyMargin
		p50lo, p50hi float64
		p90lo, p90hi float64
	}{
		{MarginAggressive, 1, 4, 8, 40},    // paper: p50=2, p90=19
		{MarginModerate, 5, 18, 40, 110},   // paper: p50=10, p90=64
		{MarginCautious, 12, 35, 180, 460}, // paper: p50=20, p90=276
	}
	for _, c := range cases {
		d := NewLifetimeDist(u.Lifetimes(c.margin))
		if d.Len() < 100 {
			t.Fatalf("margin %v: only %d lifetimes", c.margin, d.Len())
		}
		if p50 := d.Percentile(50); p50 < c.p50lo || p50 > c.p50hi {
			t.Errorf("margin %v: p50 = %v, want in [%v, %v]", c.margin, p50, c.p50lo, c.p50hi)
		}
		if p90 := d.Percentile(90); p90 < c.p90lo || p90 > c.p90hi {
			t.Errorf("margin %v: p90 = %v, want in [%v, %v]", c.margin, p90, c.p90lo, c.p90hi)
		}
		if p10 := d.Percentile(10); p10 > 5 {
			t.Errorf("margin %v: p10 = %v, want <= 5 (paper: 1)", c.margin, p10)
		}
	}
}

// TestCalibrationMatchesTable2 locks the collected-memory figures to the
// paper's Table 2 bands.
func TestCalibrationMatchesTable2(t *testing.T) {
	u := CanonicalUsage()
	baseline := u.CollectedMemory(-1)
	if baseline < 0.22 || baseline > 0.30 {
		t.Errorf("baseline collected = %.3f, want ~0.26", baseline)
	}
	prev := baseline
	for _, m := range []SafetyMargin{MarginAggressive, MarginModerate, MarginCautious} {
		c := u.CollectedMemory(m)
		if c <= 0 || c > prev+1e-9 {
			t.Errorf("margin %v: collected %.3f not monotonically below %.3f", m, c, prev)
		}
		prev = c
	}
	// Aggressive harvesting loses almost nothing vs baseline (paper:
	// 25.9% vs 26.0%); cautious loses a few points (22.7%).
	if baseline-u.CollectedMemory(MarginAggressive) > 0.01 {
		t.Error("0.1% margin should collect nearly the baseline")
	}
	if baseline-u.CollectedMemory(MarginCautious) < 0.02 {
		t.Error("5% margin should sacrifice noticeable memory")
	}
}

func TestLifetimesOrderedByMargin(t *testing.T) {
	// Larger safety margins must yield longer median lifetimes.
	u := CanonicalUsage()
	p50 := func(m SafetyMargin) float64 {
		return NewLifetimeDist(u.Lifetimes(m)).Percentile(50)
	}
	if !(p50(MarginAggressive) <= p50(MarginModerate) && p50(MarginModerate) <= p50(MarginCautious)) {
		t.Error("median lifetime not monotone in safety margin")
	}
}

func TestSynthesizeDeterministic(t *testing.T) {
	cfg := DefaultSynthConfig()
	cfg.Containers = 10
	cfg.Minutes = 200
	a := Synthesize(cfg)
	b := Synthesize(cfg)
	for i := range a.Series {
		for j := range a.Series[i] {
			if a.Series[i][j] != b.Series[i][j] {
				t.Fatalf("series differ at [%d][%d]", i, j)
			}
		}
	}
}

func TestLifetimeModelOnCraftedSeries(t *testing.T) {
	// Usage rises beyond the buffer at t=3 and t=7 -> two lifetimes of
	// 3 and 4 minutes (the final segment is censored).
	u := &Usage{Series: [][]float64{{0.50, 0.50, 0.49, 0.60, 0.60, 0.60, 0.60, 0.80, 0.80, 0.80}}}
	got := u.Lifetimes(0.05)
	if len(got) != 2 || got[0] != 3 || got[1] != 4 {
		t.Errorf("lifetimes = %v, want [3 4]", got)
	}
	// A decreasing series never evicts (the container absorbs freed
	// memory).
	u2 := &Usage{Series: [][]float64{{0.9, 0.8, 0.7, 0.6, 0.5}}}
	if got := u2.Lifetimes(0.01); len(got) != 0 {
		t.Errorf("decreasing usage produced evictions: %v", got)
	}
}

func TestDistSampleWithinSupport(t *testing.T) {
	d := NewLifetimeDist([]float64{1, 2, 3, 10, 100})
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		s := d.Sample(rng)
		if s < 1 || s > 100 {
			t.Fatalf("sample %v outside support", s)
		}
	}
	if d.Percentile(0) != 1 || d.Percentile(100) != 100 {
		t.Error("percentile extremes wrong")
	}
	if d.Mean() != (1+2+3+10+100)/5.0 {
		t.Errorf("mean = %v", d.Mean())
	}
}

func TestDistCDFMonotone(t *testing.T) {
	d := Lifetimes(RateHigh)
	xs := make([]float64, 61)
	for i := range xs {
		xs[i] = float64(i)
	}
	cdf := d.CDF(xs)
	for i := 1; i < len(cdf); i++ {
		if cdf[i] < cdf[i-1] {
			t.Fatalf("CDF not monotone at %d", i)
		}
	}
	if cdf[60] <= cdf[0] {
		t.Error("CDF degenerate")
	}
}

func TestEmptyDist(t *testing.T) {
	var d *LifetimeDist
	if !d.Empty() || d.Len() != 0 {
		t.Error("nil dist should be empty")
	}
	e := NewLifetimeDist(nil)
	if !e.Empty() {
		t.Error("zero-sample dist should be empty")
	}
	if e.Sample(rand.New(rand.NewSource(1))) != 0 {
		t.Error("empty dist sample should be 0")
	}
}

func TestRateHelpers(t *testing.T) {
	if RateNone.Margin() != 0 {
		t.Error("none margin should be 0")
	}
	if RateHigh.Margin() != MarginAggressive || RateLow.Margin() != MarginCautious {
		t.Error("rate/margin mapping wrong")
	}
	if Lifetimes(RateNone) != nil {
		t.Error("RateNone should have no distribution")
	}
	for _, r := range []Rate{RateNone, RateLow, RateMedium, RateHigh} {
		if r.String() == "" {
			t.Error("missing String")
		}
	}
}
