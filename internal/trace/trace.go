// Package trace reproduces the paper's Google-datacenter-trace analysis
// (§2.1): deriving transient-container lifetime distributions and
// collected-memory figures from LC-job memory-usage records under the
// Borg-style safety-margin model.
//
// The original ClusterData2011_2 trace is not redistributable, so the
// package synthesizes LC-container memory-usage series with the same
// relevant statistics: 5-minute samples of a mean-reverting process with
// heterogeneous per-container volatility and occasional load spikes,
// refined to 1-minute granularity with a cubic B-spline exactly as the
// paper does. The synthesis constants are calibrated so that the derived
// lifetime percentiles match the paper's Table 1 and the collected-memory
// fractions match Table 2; the calibration is locked in by tests.
package trace

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"pado/internal/bspline"
)

// SafetyMargin is the fraction of LC memory left untouched as buffer.
type SafetyMargin float64

// The three margins studied in the paper.
const (
	MarginAggressive SafetyMargin = 0.001 // 0.1%: high eviction rate
	MarginModerate   SafetyMargin = 0.01  // 1%:   medium eviction rate
	MarginCautious   SafetyMargin = 0.05  // 5%:   low eviction rate
)

// Rate names an eviction-rate regime of the evaluation (Figures 5-9).
type Rate int

// Eviction rates. Lower safety margin = more aggressive harvesting =
// higher eviction rate.
const (
	RateNone Rate = iota
	RateLow
	RateMedium
	RateHigh
)

// String implements fmt.Stringer.
func (r Rate) String() string {
	switch r {
	case RateNone:
		return "none"
	case RateLow:
		return "low"
	case RateMedium:
		return "medium"
	case RateHigh:
		return "high"
	default:
		return fmt.Sprintf("Rate(%d)", int(r))
	}
}

// Margin returns the safety margin that produces this eviction rate.
// RateNone has no margin (no evictions) and returns 0.
func (r Rate) Margin() SafetyMargin {
	switch r {
	case RateLow:
		return MarginCautious
	case RateMedium:
		return MarginModerate
	case RateHigh:
		return MarginAggressive
	default:
		return 0
	}
}

// SynthConfig parameterizes the synthetic LC memory-usage trace.
type SynthConfig struct {
	Containers int     // number of LC containers observed
	Minutes    int     // length of the observation window
	MeanUsage  float64 // long-run mean usage fraction of LC reservation
	Revert     float64 // mean-reversion strength per 5-minute step
	// SigmaLow..SigmaHigh bound the per-container step volatility,
	// drawn log-uniformly; heterogeneity across containers produces
	// the heavy upper tail of lifetimes the paper reports.
	SigmaLow  float64
	SigmaHigh float64
	// VolAmpLow..VolAmpHigh bound the per-container diurnal volatility
	// modulation amplitude: volatility is multiplied by
	// exp(A*sin(2*pi*t/period + phase)), so even busy containers have
	// quiet stretches that yield the long upper tail of lifetimes.
	VolAmpLow  float64
	VolAmpHigh float64
	// SpikeProbLow..SpikeProbHigh bound the per-container load-spike
	// probability per 5-minute step, drawn log-uniformly.
	SpikeProbLow  float64
	SpikeProbHigh float64
	SpikeMag      float64 // mean spike magnitude (fraction of reservation)
	Seed          int64
}

// DefaultSynthConfig returns the calibrated configuration whose derived
// statistics match the paper's Tables 1 and 2.
func DefaultSynthConfig() SynthConfig {
	return SynthConfig{
		Containers:    400,
		Minutes:       2880, // two days
		MeanUsage:     0.7436,
		Revert:        0.0513,
		SigmaLow:      0.0000423,
		SigmaHigh:     0.0114,
		VolAmpLow:     1.037,
		VolAmpHigh:    3.472,
		SpikeProbLow:  0.0441,
		SpikeProbHigh: 0.2506,
		SpikeMag:      0.0197,
		Seed:          20170423, // EuroSys'17 submission year + conference date
	}
}

// Usage holds the synthesized 1-minute usage series of the LC containers,
// each normalized to the container's reservation (0..1).
type Usage struct {
	Series [][]float64
}

// Synthesize generates 5-minute usage samples per container and refines
// them to 1-minute samples with the cubic B-spline, as in §2.1.
func Synthesize(cfg SynthConfig) *Usage {
	rng := rand.New(rand.NewSource(cfg.Seed))
	coarseLen := cfg.Minutes/5 + 1
	u := &Usage{Series: make([][]float64, cfg.Containers)}
	for c := 0; c < cfg.Containers; c++ {
		// Per-container character: a base volatility drawn from a wide
		// log-uniform spectrum, its own mean level, and a diurnal-style
		// volatility modulation with random period/phase/amplitude.
		logLow, logHigh := math.Log(cfg.SigmaLow), math.Log(cfg.SigmaHigh)
		sigma := math.Exp(logLow + rng.Float64()*(logHigh-logLow))
		mean := cfg.MeanUsage + rng.NormFloat64()*0.06
		mean = clamp(mean, 0.4, 0.92)
		amp := cfg.VolAmpLow + rng.Float64()*(cfg.VolAmpHigh-cfg.VolAmpLow)
		spLow, spHigh := math.Log(cfg.SpikeProbLow), math.Log(cfg.SpikeProbHigh)
		spikeProb := math.Exp(spLow + rng.Float64()*(spHigh-spLow))
		periodSteps := (240 + rng.Float64()*1200) / 5 // 4h..24h in 5-min steps
		phase := rng.Float64() * 2 * math.Pi

		coarse := make([]float64, coarseLen)
		x := mean
		for i := 0; i < coarseLen; i++ {
			mod := math.Exp(amp * math.Sin(2*math.Pi*float64(i)/periodSteps+phase))
			x += cfg.Revert*(mean-x) + rng.NormFloat64()*sigma*mod
			x = clamp(x, 0.02, 0.98)
			sample := x
			if rng.Float64() < spikeProb {
				// Load spikes are short excursions: they evict the
				// co-located transient container but decay quickly, so
				// they raise usage samples without shifting the mean.
				sample = clamp(x+cfg.SpikeMag*(0.5+rng.Float64()), 0.02, 0.98)
			}
			coarse[i] = sample
		}
		u.Series[c] = bspline.Refine(coarse, 5)
	}
	return u
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// Lifetimes applies the Borg-style safety-margin model to the usage
// series: a transient container occupies the unused memory minus the
// buffer; when LC usage decreases the transient container absorbs the
// freed memory (keeping exactly the buffer untouched); when LC usage
// rises beyond the buffer the transient container is evicted and a new
// one starts immediately. It returns the observed lifetimes in minutes.
func (u *Usage) Lifetimes(margin SafetyMargin) []float64 {
	buffer := float64(margin)
	var lifetimes []float64
	for _, s := range u.Series {
		if len(s) == 0 {
			continue
		}
		ref := s[0] // running minimum usage since the last (re)allocation
		start := 0
		for t := 1; t < len(s); t++ {
			switch {
			case s[t] < ref:
				ref = s[t] // transient container grows into freed memory
			case s[t] > ref+buffer:
				lifetimes = append(lifetimes, float64(t-start))
				start = t
				ref = s[t]
			}
		}
		// The final in-progress lifetime is censored; drop it.
	}
	sort.Float64s(lifetimes)
	return lifetimes
}

// CollectedMemory returns the time-averaged fraction of LC-reserved
// memory harvested by transient containers under the given margin
// (Table 2). A negative margin is treated as the baseline: all idle
// memory collected.
func (u *Usage) CollectedMemory(margin SafetyMargin) float64 {
	var sum float64
	var n int
	baseline := margin < 0
	buffer := float64(margin)
	for _, s := range u.Series {
		if len(s) == 0 {
			continue
		}
		ref := s[0]
		for t := 0; t < len(s); t++ {
			if t > 0 {
				switch {
				case s[t] < ref:
					ref = s[t]
				case s[t] > ref+buffer:
					ref = s[t] // eviction; new container immediately
				}
			}
			var alloc float64
			if baseline {
				alloc = 1 - s[t]
			} else {
				alloc = 1 - ref - buffer
			}
			if alloc < 0 {
				alloc = 0
			}
			sum += alloc
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
