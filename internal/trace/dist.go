package trace

import (
	"math/rand"
	"sort"
	"sync"
)

// LifetimeDist is an empirical transient-container lifetime distribution
// in minutes, sampled by inverse transform.
type LifetimeDist struct {
	// sorted lifetime samples, minutes
	samples []float64
}

// NewLifetimeDist builds a distribution from lifetime samples (minutes).
func NewLifetimeDist(samples []float64) *LifetimeDist {
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	return &LifetimeDist{samples: s}
}

// Empty reports whether the distribution has no samples.
func (d *LifetimeDist) Empty() bool { return d == nil || len(d.samples) == 0 }

// Len returns the sample count.
func (d *LifetimeDist) Len() int {
	if d == nil {
		return 0
	}
	return len(d.samples)
}

// Sample draws a lifetime in minutes using rng.
func (d *LifetimeDist) Sample(rng *rand.Rand) float64 {
	if d.Empty() {
		return 0
	}
	// Interpolated inverse CDF.
	return d.Percentile(rng.Float64() * 100)
}

// Percentile returns the p-th percentile lifetime (0..100), linearly
// interpolated between samples.
func (d *LifetimeDist) Percentile(p float64) float64 {
	if d.Empty() {
		return 0
	}
	if p <= 0 {
		return d.samples[0]
	}
	if p >= 100 {
		return d.samples[len(d.samples)-1]
	}
	pos := p / 100 * float64(len(d.samples)-1)
	i := int(pos)
	frac := pos - float64(i)
	if i+1 >= len(d.samples) {
		return d.samples[len(d.samples)-1]
	}
	return d.samples[i]*(1-frac) + d.samples[i+1]*frac
}

// CDF returns the empirical CDF evaluated at the given lifetimes
// (minutes): the fraction of samples <= x.
func (d *LifetimeDist) CDF(xs []float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(sort.SearchFloat64s(d.samples, x+1e-9)) / float64(len(d.samples))
	}
	return out
}

// Mean returns the mean lifetime in minutes.
func (d *LifetimeDist) Mean() float64 {
	if d.Empty() {
		return 0
	}
	var sum float64
	for _, s := range d.samples {
		sum += s
	}
	return sum / float64(len(d.samples))
}

var (
	canonOnce  sync.Once
	canonUsage *Usage
	canonDists map[Rate]*LifetimeDist
)

func canonical() {
	canonOnce.Do(func() {
		canonUsage = Synthesize(DefaultSynthConfig())
		canonDists = map[Rate]*LifetimeDist{
			RateLow:    NewLifetimeDist(canonUsage.Lifetimes(MarginCautious)),
			RateMedium: NewLifetimeDist(canonUsage.Lifetimes(MarginModerate)),
			RateHigh:   NewLifetimeDist(canonUsage.Lifetimes(MarginAggressive)),
		}
	})
}

// Lifetimes returns the canonical lifetime distribution for an eviction
// rate, derived once from the calibrated default synthesis. RateNone
// returns nil (no evictions).
func Lifetimes(rate Rate) *LifetimeDist {
	if rate == RateNone {
		return nil
	}
	canonical()
	return canonDists[rate]
}

// CanonicalUsage returns the calibrated synthesized usage series used for
// the trace-analysis figures.
func CanonicalUsage() *Usage {
	canonical()
	return canonUsage
}
