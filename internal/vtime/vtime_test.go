package vtime

import (
	"testing"
	"time"
)

func TestScaleRoundTrip(t *testing.T) {
	s := NewScale(100 * time.Millisecond)
	if got := s.Wall(3); got != 300*time.Millisecond {
		t.Errorf("Wall(3) = %v, want 300ms", got)
	}
	if got := s.Minutes(450 * time.Millisecond); got != 4.5 {
		t.Errorf("Minutes(450ms) = %v, want 4.5", got)
	}
	for _, mins := range []float64{0, 0.5, 1, 17.25, 90} {
		if got := s.Minutes(s.Wall(mins)); got != mins {
			t.Errorf("round trip %v minutes -> %v", mins, got)
		}
	}
}

func TestScaleZeroGuards(t *testing.T) {
	var s Scale
	if got := s.Minutes(time.Second); got != 0 {
		t.Errorf("zero scale Minutes = %v, want 0", got)
	}
	if got := s.Wall(5); got != 0 {
		t.Errorf("zero scale Wall = %v, want 0", got)
	}
}

func TestDefaultScale(t *testing.T) {
	if DefaultScale().WallPerMinute != 250*time.Millisecond {
		t.Errorf("unexpected default scale %v", DefaultScale().WallPerMinute)
	}
}

func TestRealClock(t *testing.T) {
	c := Real()
	t0 := c.Now()
	c.Sleep(time.Millisecond)
	if c.Since(t0) <= 0 {
		t.Error("real clock did not advance")
	}
	select {
	case <-c.After(0):
	case <-time.After(time.Second):
		t.Error("After(0) did not fire")
	}
}

func TestFakeClockAdvance(t *testing.T) {
	start := time.Date(2017, 4, 23, 0, 0, 0, 0, time.UTC)
	f := NewFake(start)
	if !f.Now().Equal(start) {
		t.Fatalf("Now = %v, want %v", f.Now(), start)
	}

	ch := f.After(10 * time.Minute)
	select {
	case <-ch:
		t.Fatal("timer fired before Advance")
	default:
	}
	if f.PendingTimers() != 1 {
		t.Fatalf("pending = %d, want 1", f.PendingTimers())
	}

	f.Advance(9 * time.Minute)
	select {
	case <-ch:
		t.Fatal("timer fired early")
	default:
	}

	f.Advance(time.Minute)
	select {
	case at := <-ch:
		if !at.Equal(start.Add(10 * time.Minute)) {
			t.Errorf("fired at %v", at)
		}
	case <-time.After(time.Second):
		t.Fatal("timer did not fire after Advance")
	}
	if f.PendingTimers() != 0 {
		t.Errorf("pending = %d, want 0", f.PendingTimers())
	}
}

func TestFakeClockImmediateAfter(t *testing.T) {
	f := NewFake(time.Unix(0, 0))
	select {
	case <-f.After(0):
	default:
		t.Error("After(0) should fire immediately")
	}
	select {
	case <-f.After(-time.Second):
	default:
		t.Error("negative After should fire immediately")
	}
}

func TestFakeClockSleepUnblocks(t *testing.T) {
	f := NewFake(time.Unix(0, 0))
	done := make(chan struct{})
	go func() {
		f.Sleep(time.Hour)
		close(done)
	}()
	// Wait for the sleeper to register.
	for f.PendingTimers() == 0 {
		time.Sleep(time.Millisecond)
	}
	f.Advance(time.Hour)
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("Sleep did not unblock")
	}
}

func TestFakeClockFiresInDeadlineOrder(t *testing.T) {
	f := NewFake(time.Unix(0, 0))
	a := f.After(time.Minute)
	b := f.After(2 * time.Minute)
	f.Advance(3 * time.Minute)
	ta := <-a
	tb := <-b
	if !ta.Equal(tb) {
		// Both deliver the post-advance now; ordering is internal.
		t.Errorf("timers delivered different times: %v vs %v", ta, tb)
	}
	if f.Since(time.Unix(0, 0)) != 3*time.Minute {
		t.Errorf("Since = %v", f.Since(time.Unix(0, 0)))
	}
}
