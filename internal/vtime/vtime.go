// Package vtime provides the time abstractions used throughout the Pado
// reproduction.
//
// The paper's evaluation operates on a minute-granularity timescale:
// transient-container lifetimes are minutes long (Figure 1) and job
// completion times are tens of minutes (Figures 5-9). Running the full
// sweep in real time is impractical, so experiments run under a Scale that
// maps "paper minutes" onto a configurable wall-clock duration. All the
// ratios that drive the paper's results (job length vs. eviction interval,
// compute time vs. transfer time) are preserved because every duration in
// an experiment goes through the same Scale.
//
// The package also provides a Clock interface with a real implementation
// and a manually advanced Fake used to unit-test timer-driven components
// (eviction drivers, caches) deterministically.
package vtime

import (
	"sort"
	"sync"
	"time"
)

// Scale maps paper time (minutes) to wall-clock time. The zero value is
// not useful; use NewScale or the DefaultScale.
type Scale struct {
	// WallPerMinute is the wall-clock duration corresponding to one
	// paper minute.
	WallPerMinute time.Duration
}

// NewScale returns a Scale where one paper minute lasts wallPerMinute.
func NewScale(wallPerMinute time.Duration) Scale {
	return Scale{WallPerMinute: wallPerMinute}
}

// DefaultScale compresses one paper minute into 250ms of wall time, the
// default used by the experiment harness.
func DefaultScale() Scale { return Scale{WallPerMinute: 250 * time.Millisecond} }

// Wall converts a duration expressed in paper minutes to wall time.
func (s Scale) Wall(paperMinutes float64) time.Duration {
	return time.Duration(paperMinutes * float64(s.WallPerMinute))
}

// Minutes converts a wall-clock duration back to paper minutes.
func (s Scale) Minutes(wall time.Duration) float64 {
	if s.WallPerMinute <= 0 {
		return 0
	}
	return float64(wall) / float64(s.WallPerMinute)
}

// Clock abstracts the subset of package time used by timer-driven
// components so they can be tested with a Fake clock.
type Clock interface {
	Now() time.Time
	Sleep(d time.Duration)
	// After returns a channel that receives the current time after d has
	// elapsed on this clock.
	After(d time.Duration) <-chan time.Time
	Since(t time.Time) time.Duration
}

// Real returns a Clock backed by the system clock.
func Real() Clock { return realClock{} }

type realClock struct{}

func (realClock) Now() time.Time                         { return time.Now() }
func (realClock) Sleep(d time.Duration)                  { time.Sleep(d) }
func (realClock) After(d time.Duration) <-chan time.Time { return time.After(d) }
func (realClock) Since(t time.Time) time.Duration        { return time.Since(t) }

// Fake is a manually advanced Clock. The zero value starts at the zero
// time; NewFake starts at a given instant. Advance moves time forward and
// fires any matured timers. Fake is safe for concurrent use.
type Fake struct {
	mu      sync.Mutex
	now     time.Time
	waiters []*fakeWaiter
}

type fakeWaiter struct {
	at time.Time
	ch chan time.Time
}

// NewFake returns a Fake clock whose current time is start.
func NewFake(start time.Time) *Fake {
	return &Fake{now: start}
}

// Now returns the fake current time.
func (f *Fake) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

// Since reports the fake time elapsed since t.
func (f *Fake) Since(t time.Time) time.Duration {
	return f.Now().Sub(t)
}

// After returns a channel that fires when the fake clock has been advanced
// by at least d.
func (f *Fake) After(d time.Duration) <-chan time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	w := &fakeWaiter{at: f.now.Add(d), ch: make(chan time.Time, 1)}
	if d <= 0 {
		w.ch <- f.now
		return w.ch
	}
	f.waiters = append(f.waiters, w)
	return w.ch
}

// Sleep blocks until the fake clock is advanced past d.
func (f *Fake) Sleep(d time.Duration) {
	<-f.After(d)
}

// Advance moves the fake clock forward by d, firing matured timers in
// deadline order.
func (f *Fake) Advance(d time.Duration) {
	f.mu.Lock()
	f.now = f.now.Add(d)
	now := f.now
	var fire []*fakeWaiter
	rest := f.waiters[:0]
	for _, w := range f.waiters {
		if !w.at.After(now) {
			fire = append(fire, w)
		} else {
			rest = append(rest, w)
		}
	}
	f.waiters = rest
	f.mu.Unlock()

	sort.Slice(fire, func(i, j int) bool { return fire[i].at.Before(fire[j].at) })
	for _, w := range fire {
		w.ch <- now
	}
}

// PendingTimers reports how many timers are waiting on the fake clock.
func (f *Fake) PendingTimers() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.waiters)
}
