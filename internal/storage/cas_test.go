package storage

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"pado/internal/data"
	"pado/internal/simnet"
)

// TestHashChunkDeterministicAcrossEncoderReuse proves the content
// address depends only on the encoded bytes: the same records encoded
// through a fresh encoder and through a reused (dirtied) pooled encoder
// hash identically, and different content hashes differently.
func TestHashChunkDeterministicAcrossEncoderReuse(t *testing.T) {
	recs := make([]data.Record, 100)
	for i := range recs {
		recs[i] = data.KV(fmt.Sprintf("key%04d", i), int64(i*7))
	}
	coder := data.KVCoder{K: data.StringCoder, V: data.Int64Coder}

	fresh, err := data.EncodeAll(coder, recs)
	if err != nil {
		t.Fatal(err)
	}

	// Dirty a buffer with unrelated content, then reuse it.
	var buf bytes.Buffer
	e := data.NewEncoder(&buf)
	if err := e.String("unrelated garbage to dirty the buffer"); err != nil {
		t.Fatal(err)
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	e.Reset(&buf)
	if err := e.Uvarint(uint64(len(recs))); err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := coder.EncodeRecord(e, r); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	reused := append([]byte(nil), buf.Bytes()...)

	if HashChunk(fresh) != HashChunk(reused) {
		t.Fatalf("hash differs across encoder reuse: %s vs %s", HashChunk(fresh), HashChunk(reused))
	}
	recs[50] = data.KV("key0050", int64(999999))
	changed, err := data.EncodeAll(coder, recs)
	if err != nil {
		t.Fatal(err)
	}
	if HashChunk(fresh) == HashChunk(changed) {
		t.Fatal("hash identical for different content")
	}
}

// TestManifestRoundTrip sends a manifest through the wire codec and the
// store and gets identical structure back, both in-process and over the
// simnet service.
func TestManifestRoundTrip(t *testing.T) {
	store := NewCommitStore()
	h1 := store.PutChunk([]byte("part zero chunk"))
	h2 := store.PutChunk([]byte("part one chunk a"))
	h3 := store.PutChunk([]byte("part one chunk b"))
	m := &Manifest{Key: "stage/abc123", Parts: [][]string{{h1}, {h2, h3}, {}}}
	if err := store.Commit(m); err != nil {
		t.Fatal(err)
	}

	got := store.Resolve("stage/abc123", false)
	if got == nil {
		t.Fatal("resolve missed a committed key")
	}
	if got.Key != m.Key || len(got.Parts) != 3 {
		t.Fatalf("manifest mangled: %+v", got)
	}
	for i := range m.Parts {
		if len(got.Parts[i]) != len(m.Parts[i]) {
			t.Fatalf("part %d: got %d chunks, want %d", i, len(got.Parts[i]), len(m.Parts[i]))
		}
		for j := range m.Parts[i] {
			if got.Parts[i][j] != m.Parts[i][j] {
				t.Fatalf("part %d chunk %d mismatch", i, j)
			}
		}
	}

	// Over the wire: serve the store on two nodes, round-trip through a
	// client, including a chunk fetch of resolved content.
	net := simnet.New(simnet.Config{})
	for _, id := range []string{"client", "cas0", "cas1"} {
		if _, err := net.AddNode(id); err != nil {
			t.Fatal(err)
		}
	}
	svc := NewCommitService(store, []*simnet.Node{net.Node("cas0"), net.Node("cas1")})
	if err := svc.Start(); err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	c := NewCommitClient(NewDialTransport(net, "client"), svc.NodeIDs())

	rm, err := c.Resolve("stage/abc123", true)
	if err != nil {
		t.Fatal(err)
	}
	if rm == nil || rm.Key != m.Key || len(rm.Parts) != 3 || rm.Parts[1][1] != h3 {
		t.Fatalf("wire round-trip mangled manifest: %+v", rm)
	}
	payload, err := c.GetChunk(h2)
	if err != nil {
		t.Fatal(err)
	}
	if string(payload) != "part one chunk a" {
		t.Fatalf("chunk content mangled: %q", payload)
	}
	if _, err := c.GetChunk(HashChunk([]byte("never stored"))); !isNotFound(err) {
		t.Fatalf("missing chunk: got %v, want ErrNotFound", err)
	}
	miss, err := c.Resolve("stage/never", false)
	if err != nil || miss != nil {
		t.Fatalf("missing manifest: got %v, %v; want nil, nil", miss, err)
	}
	if err := c.Unpin("stage/abc123"); err != nil {
		t.Fatal(err)
	}

	// A client-side chunk put over the wire must land under the same
	// address the in-process path computes.
	h, err := c.PutChunk([]byte("wire chunk"))
	if err != nil {
		t.Fatal(err)
	}
	if h != HashChunk([]byte("wire chunk")) || !store.HasChunk(h) {
		t.Fatalf("wire put landed under wrong address %s", h)
	}
}

// TestGCNeverCollectsReachableChunks drives commits, re-commits, and
// deletes through the store and checks after every GC that each chunk
// reachable from a live commit survives.
func TestGCNeverCollectsReachableChunks(t *testing.T) {
	store := NewCommitStore()
	live := store.PutChunk([]byte("live chunk"))
	shared := store.PutChunk([]byte("shared between commits"))
	dead := store.PutChunk([]byte("never committed"))

	if err := store.Commit(&Manifest{Key: "a", Parts: [][]string{{live, shared}}}); err != nil {
		t.Fatal(err)
	}
	if err := store.Commit(&Manifest{Key: "b", Parts: [][]string{{shared}}}); err != nil {
		t.Fatal(err)
	}

	if n, _ := store.GC(); n != 1 {
		t.Fatalf("GC collected %d chunks, want 1 (only the uncommitted one)", n)
	}
	if store.HasChunk(dead) {
		t.Fatal("uncommitted chunk survived GC")
	}
	if !store.HasChunk(live) || !store.HasChunk(shared) {
		t.Fatal("GC collected a chunk reachable from a live commit")
	}

	// Dropping commit "a" must keep `shared` (still reachable from "b")
	// but free `live`.
	if err := store.Delete("a"); err != nil {
		t.Fatal(err)
	}
	store.GC()
	if store.HasChunk(live) {
		t.Fatal("chunk of deleted commit survived GC")
	}
	if !store.HasChunk(shared) {
		t.Fatal("GC collected a chunk still referenced by commit b")
	}

	// Pinned commits cannot be deleted out from under a running job.
	if store.Resolve("b", true) == nil {
		t.Fatal("resolve missed")
	}
	if err := store.Delete("b"); err == nil {
		t.Fatal("deleted a pinned commit")
	}
	store.Unpin("b")
	if err := store.Delete("b"); err != nil {
		t.Fatal(err)
	}
	store.GC()
	if store.HasChunk(shared) {
		t.Fatal("chunk survived after every referencing commit was deleted")
	}
	if st := store.Stats(); st.Chunks != 0 || st.UsedBytes != 0 {
		t.Fatalf("store not empty after final GC: %+v", st)
	}
}

// TestCommitRejectsDanglingChunks: a manifest referencing an unstored
// chunk must be refused, so commits can never dangle.
func TestCommitRejectsDanglingChunks(t *testing.T) {
	store := NewCommitStore()
	h := store.PutChunk([]byte("stored"))
	err := store.Commit(&Manifest{Key: "x", Parts: [][]string{{h, HashChunk([]byte("ghost"))}}})
	if err == nil {
		t.Fatal("commit with dangling chunk accepted")
	}
	if store.Resolve("x", false) != nil {
		t.Fatal("rejected commit is resolvable")
	}
}

// TestNodeForDistribution checks the client's hash routing spreads keys
// roughly evenly over the storage nodes — the property that makes N
// storage nodes share the load.
func TestNodeForDistribution(t *testing.T) {
	nodes := []string{"s0", "s1", "s2", "s3", "s4"}
	c := &CommitClient{nodes: nodes}
	counts := make(map[string]int, len(nodes))
	rng := rand.New(rand.NewSource(7))
	const n = 20000
	for i := 0; i < n; i++ {
		key := HashChunk([]byte(fmt.Sprintf("chunk-%d-%d", i, rng.Int63())))
		counts[c.nodeFor(key)]++
	}
	want := float64(n) / float64(len(nodes))
	for _, id := range nodes {
		got := float64(counts[id])
		if got < want*0.9 || got > want*1.1 {
			t.Fatalf("node %s got %d of %d keys (want within 10%% of %.0f): %v", id, counts[id], n, want, counts)
		}
	}
}
