package storage

import (
	"errors"
	"fmt"
	"io"
	"sync"

	"pado/internal/data"
	"pado/internal/simnet"
)

// Stable storage wire protocol op codes.
const (
	opPut  = 'P'
	opGet  = 'G'
	respOK = 'K'
	respNo = 'N'
)

// Service is a non-replicated stable-storage cluster (the GlusterFS/HDFS
// substitute of §5.1.2). Each participating node runs a server loop;
// blocks are assigned to nodes by key hash, so N storage nodes share the
// load — and bound the aggregate bandwidth, which is precisely the
// bottleneck the paper attributes to checkpoint-based recovery.
type Service struct {
	nodes  []*simnet.Node
	stores []*LocalStore
	disks  []*simnet.Limiter // nil entries = unlimited disk

	mu      sync.Mutex
	started bool
}

// NewService creates a service over the given nodes (typically the
// reserved nodes of the cluster).
func NewService(nodes []*simnet.Node) *Service {
	return NewServiceDisk(nodes, 0)
}

// NewServiceDisk creates a service whose nodes are additionally limited
// by per-node disk bandwidth (bytes/second; 0 = unlimited). Unlike the
// engines' in-memory local stores, a distributed filesystem writes and
// reads its blocks through disk, which is part of why the paper's
// checkpoint baseline pays so dearly at the storage nodes (§5.2.1).
func NewServiceDisk(nodes []*simnet.Node, diskBW int64) *Service {
	stores := make([]*LocalStore, len(nodes))
	disks := make([]*simnet.Limiter, len(nodes))
	for i := range stores {
		stores[i] = NewLocalStore()
		if diskBW > 0 {
			disks[i] = simnet.NewLimiter(diskBW, 0)
		}
	}
	return &Service{nodes: nodes, stores: stores, disks: disks}
}

// NodeIDs returns the storage node ids in service order.
func (s *Service) NodeIDs() []string {
	ids := make([]string, len(s.nodes))
	for i, n := range s.nodes {
		ids[i] = n.ID()
	}
	return ids
}

// UsedBytes reports the total bytes stored across all storage nodes.
func (s *Service) UsedBytes() int64 {
	var sum int64
	for _, st := range s.stores {
		sum += st.UsedBytes()
	}
	return sum
}

// Start launches the server loop on every storage node.
func (s *Service) Start() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started {
		return errors.New("storage: service already started")
	}
	s.started = true
	for i, n := range s.nodes {
		l, err := n.Listen()
		if err != nil {
			return fmt.Errorf("storage: node %s: %w", n.ID(), err)
		}
		go s.serve(l, s.stores[i], s.disks[i], n)
	}
	return nil
}

func (s *Service) serve(l *simnet.Listener, store *LocalStore, disk *simnet.Limiter, node *simnet.Node) {
	for {
		conn, err := l.Accept(nil)
		if err != nil {
			return
		}
		go handleConn(conn, store, disk)
	}
}

func handleConn(conn *simnet.Conn, store *LocalStore, disk *simnet.Limiter) {
	defer conn.Close()
	d := data.NewDecoder(conn)
	e := data.NewEncoder(conn)
	for {
		op, err := d.Byte()
		if err != nil {
			return
		}
		switch op {
		case opPut:
			key, err := d.String()
			if err != nil {
				return
			}
			payload, err := d.Bytes(0)
			if err != nil {
				return
			}
			if disk != nil {
				if disk.Acquire(len(payload), nil) != nil {
					return
				}
			}
			store.Put(key, payload)
			if e.Byte(respOK) != nil || e.Flush() != nil {
				return
			}
		case opGet:
			key, err := d.String()
			if err != nil {
				return
			}
			payload, ok := store.Get(key)
			if !ok {
				if e.Byte(respNo) != nil || e.Flush() != nil {
					return
				}
				continue
			}
			if disk != nil {
				if disk.Acquire(len(payload), nil) != nil {
					return
				}
			}
			if e.Byte(respOK) != nil || e.Bytes(payload) != nil || e.Flush() != nil {
				return
			}
		default:
			return
		}
	}
}

// Transport carries one framed request/response round to a destination
// node. The zero-infrastructure implementation is dialTransport (a fresh
// stream per operation, the historical client behavior); the runtime's
// per-node connection pool implements it too, so storage traffic can
// share pooled connections and the unified RPC policy (deadlines,
// budgeted retries, circuit breakers) with the rest of the data plane.
type Transport interface {
	// Do runs fn as one request/response round against node `to`. op is
	// a short label ("ckput", "casget", ...) the transport may use to
	// account retries by cause.
	Do(op, to string, fn func(e *data.Encoder, d *data.Decoder) error) error
}

// dialTransport dials a fresh stream per operation.
type dialTransport struct {
	net  *simnet.Network
	from string
}

// NewDialTransport returns the unpooled Transport: one fresh stream per
// operation from the named node.
func NewDialTransport(net *simnet.Network, from string) Transport {
	return dialTransport{net: net, from: from}
}

// Do implements Transport.
func (t dialTransport) Do(_, to string, fn func(e *data.Encoder, d *data.Decoder) error) error {
	conn, err := t.net.Dial(t.from, to)
	if err != nil {
		return err
	}
	defer conn.Close()
	return fn(data.NewEncoder(conn), data.NewDecoder(conn))
}

// PoolTransport keeps one stream per destination node and reuses it
// across operations, so repeated Put/Get traffic pays one dial per node
// instead of one per block. Concurrent operations to the same node
// serialize on its stream (the wire protocol is strict request/response);
// operations to different nodes proceed in parallel. A failed operation
// drops the stream — it may hold undrained response bytes — and the next
// one redials. Protocol-level misses (ErrNotFound) leave the stream
// aligned and keep it.
type PoolTransport struct {
	net  *simnet.Network
	from string

	mu      sync.Mutex
	streams map[string]*pooledStream
}

type pooledStream struct {
	mu   sync.Mutex
	conn *simnet.Conn
	e    *data.Encoder
	d    *data.Decoder
}

// NewPoolTransport returns a pooled Transport issuing operations from the
// named node.
func NewPoolTransport(net *simnet.Network, from string) *PoolTransport {
	return &PoolTransport{net: net, from: from, streams: make(map[string]*pooledStream)}
}

// Do implements Transport.
func (t *PoolTransport) Do(_, to string, fn func(e *data.Encoder, d *data.Decoder) error) error {
	s := t.stream(to)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.conn == nil {
		conn, err := t.net.Dial(t.from, to)
		if err != nil {
			return err
		}
		s.conn = conn
		s.e = data.NewEncoder(conn)
		s.d = data.NewDecoder(conn)
	}
	if err := fn(s.e, s.d); err != nil {
		if !isNotFound(err) {
			s.conn.Close()
			s.conn = nil
		}
		return err
	}
	return nil
}

func (t *PoolTransport) stream(to string) *pooledStream {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := t.streams[to]
	if s == nil {
		s = &pooledStream{}
		t.streams[to] = s
	}
	return s
}

// Close drops every pooled stream. Subsequent operations redial.
func (t *PoolTransport) Close() {
	t.mu.Lock()
	streams := make([]*pooledStream, 0, len(t.streams))
	for _, s := range t.streams {
		streams = append(streams, s)
	}
	t.mu.Unlock()
	for _, s := range streams {
		s.mu.Lock()
		if s.conn != nil {
			s.conn.Close()
			s.conn = nil
		}
		s.mu.Unlock()
	}
}

// isNotFound reports whether err is a miss (ErrNotFound) rather than a
// transport or codec failure.
func isNotFound(err error) bool { return errors.Is(err, ErrNotFound{}) }

// Client accesses the stable storage service from one cluster node
// through a Transport. A client is safe for concurrent use.
type Client struct {
	t     Transport
	nodes []string
}

// NewClient returns a client dialing a fresh stream from the named node
// per operation (the historical behavior; use NewClientTransport to
// route operations through a pooled transport).
func NewClient(net *simnet.Network, from string, svc *Service) *Client {
	return NewClientTransport(dialTransport{net: net, from: from}, svc)
}

// NewClientTransport returns a client issuing its operations through t.
func NewClientTransport(t Transport, svc *Service) *Client {
	return &Client{t: t, nodes: svc.NodeIDs()}
}

func (c *Client) nodeFor(key string) string {
	return c.nodes[int(data.HashKey(key)%uint64(len(c.nodes)))]
}

// Put stores a block on the storage node responsible for key.
func (c *Client) Put(key string, payload []byte) error {
	err := c.t.Do("ckput", c.nodeFor(key), func(e *data.Encoder, d *data.Decoder) error {
		if err := e.Byte(opPut); err != nil {
			return err
		}
		if err := e.String(key); err != nil {
			return err
		}
		if err := e.Bytes(payload); err != nil {
			return err
		}
		if err := e.Flush(); err != nil {
			return err
		}
		resp, err := d.Byte()
		if err != nil {
			return err
		}
		if resp != respOK {
			return fmt.Errorf("rejected")
		}
		return nil
	})
	if err != nil {
		return fmt.Errorf("storage put %q: %w", key, err)
	}
	return nil
}

// Get fetches a block. Missing blocks return ErrNotFound; every other
// failure — dial, encode, and post-response decode alike — is wrapped
// with the key context so callers can always tell which block failed.
func (c *Client) Get(key string) ([]byte, error) {
	var payload []byte
	err := c.t.Do("ckget", c.nodeFor(key), func(e *data.Encoder, d *data.Decoder) error {
		if err := e.Byte(opGet); err != nil {
			return err
		}
		if err := e.String(key); err != nil {
			return err
		}
		if err := e.Flush(); err != nil {
			return err
		}
		resp, err := d.Byte()
		if err != nil {
			if errors.Is(err, io.EOF) {
				return fmt.Errorf("connection closed")
			}
			return err
		}
		if resp == respNo {
			return ErrNotFound{Key: key}
		}
		payload, err = d.Bytes(0)
		return err
	})
	if err != nil {
		if isNotFound(err) {
			return nil, err
		}
		return nil, fmt.Errorf("storage get %q: %w", key, err)
	}
	return payload, nil
}
