package storage

import (
	"errors"
	"fmt"
	"io"
	"sync"

	"pado/internal/data"
	"pado/internal/simnet"
)

// Stable storage wire protocol op codes.
const (
	opPut  = 'P'
	opGet  = 'G'
	respOK = 'K'
	respNo = 'N'
)

// Service is a non-replicated stable-storage cluster (the GlusterFS/HDFS
// substitute of §5.1.2). Each participating node runs a server loop;
// blocks are assigned to nodes by key hash, so N storage nodes share the
// load — and bound the aggregate bandwidth, which is precisely the
// bottleneck the paper attributes to checkpoint-based recovery.
type Service struct {
	nodes  []*simnet.Node
	stores []*LocalStore
	disks  []*simnet.Limiter // nil entries = unlimited disk

	mu      sync.Mutex
	started bool
}

// NewService creates a service over the given nodes (typically the
// reserved nodes of the cluster).
func NewService(nodes []*simnet.Node) *Service {
	return NewServiceDisk(nodes, 0)
}

// NewServiceDisk creates a service whose nodes are additionally limited
// by per-node disk bandwidth (bytes/second; 0 = unlimited). Unlike the
// engines' in-memory local stores, a distributed filesystem writes and
// reads its blocks through disk, which is part of why the paper's
// checkpoint baseline pays so dearly at the storage nodes (§5.2.1).
func NewServiceDisk(nodes []*simnet.Node, diskBW int64) *Service {
	stores := make([]*LocalStore, len(nodes))
	disks := make([]*simnet.Limiter, len(nodes))
	for i := range stores {
		stores[i] = NewLocalStore()
		if diskBW > 0 {
			disks[i] = simnet.NewLimiter(diskBW, 0)
		}
	}
	return &Service{nodes: nodes, stores: stores, disks: disks}
}

// NodeIDs returns the storage node ids in service order.
func (s *Service) NodeIDs() []string {
	ids := make([]string, len(s.nodes))
	for i, n := range s.nodes {
		ids[i] = n.ID()
	}
	return ids
}

// UsedBytes reports the total bytes stored across all storage nodes.
func (s *Service) UsedBytes() int64 {
	var sum int64
	for _, st := range s.stores {
		sum += st.UsedBytes()
	}
	return sum
}

// Start launches the server loop on every storage node.
func (s *Service) Start() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started {
		return errors.New("storage: service already started")
	}
	s.started = true
	for i, n := range s.nodes {
		l, err := n.Listen()
		if err != nil {
			return fmt.Errorf("storage: node %s: %w", n.ID(), err)
		}
		go s.serve(l, s.stores[i], s.disks[i], n)
	}
	return nil
}

func (s *Service) serve(l *simnet.Listener, store *LocalStore, disk *simnet.Limiter, node *simnet.Node) {
	for {
		conn, err := l.Accept(nil)
		if err != nil {
			return
		}
		go handleConn(conn, store, disk)
	}
}

func handleConn(conn *simnet.Conn, store *LocalStore, disk *simnet.Limiter) {
	defer conn.Close()
	d := data.NewDecoder(conn)
	e := data.NewEncoder(conn)
	for {
		op, err := d.Byte()
		if err != nil {
			return
		}
		switch op {
		case opPut:
			key, err := d.String()
			if err != nil {
				return
			}
			payload, err := d.Bytes(0)
			if err != nil {
				return
			}
			if disk != nil {
				if disk.Acquire(len(payload), nil) != nil {
					return
				}
			}
			store.Put(key, payload)
			if e.Byte(respOK) != nil || e.Flush() != nil {
				return
			}
		case opGet:
			key, err := d.String()
			if err != nil {
				return
			}
			payload, ok := store.Get(key)
			if !ok {
				if e.Byte(respNo) != nil || e.Flush() != nil {
					return
				}
				continue
			}
			if disk != nil {
				if disk.Acquire(len(payload), nil) != nil {
					return
				}
			}
			if e.Byte(respOK) != nil || e.Bytes(payload) != nil || e.Flush() != nil {
				return
			}
		default:
			return
		}
	}
}

// Client accesses the stable storage service from one cluster node. A
// client is safe for concurrent use; each operation opens its own stream
// so concurrent transfers contend for bandwidth realistically.
type Client struct {
	net   *simnet.Network
	from  string
	nodes []string
}

// NewClient returns a client dialing from the named node.
func NewClient(net *simnet.Network, from string, svc *Service) *Client {
	return &Client{net: net, from: from, nodes: svc.NodeIDs()}
}

func (c *Client) nodeFor(key string) string {
	return c.nodes[int(data.HashKey(key)%uint64(len(c.nodes)))]
}

// Put stores a block on the storage node responsible for key.
func (c *Client) Put(key string, payload []byte) error {
	conn, err := c.net.Dial(c.from, c.nodeFor(key))
	if err != nil {
		return fmt.Errorf("storage put %q: %w", key, err)
	}
	defer conn.Close()
	e := data.NewEncoder(conn)
	if err := e.Byte(opPut); err != nil {
		return err
	}
	if err := e.String(key); err != nil {
		return err
	}
	if err := e.Bytes(payload); err != nil {
		return err
	}
	if err := e.Flush(); err != nil {
		return err
	}
	d := data.NewDecoder(conn)
	resp, err := d.Byte()
	if err != nil {
		return fmt.Errorf("storage put %q: %w", key, err)
	}
	if resp != respOK {
		return fmt.Errorf("storage put %q: rejected", key)
	}
	return nil
}

// Get fetches a block. Missing blocks return ErrNotFound.
func (c *Client) Get(key string) ([]byte, error) {
	conn, err := c.net.Dial(c.from, c.nodeFor(key))
	if err != nil {
		return nil, fmt.Errorf("storage get %q: %w", key, err)
	}
	defer conn.Close()
	e := data.NewEncoder(conn)
	if err := e.Byte(opGet); err != nil {
		return nil, err
	}
	if err := e.String(key); err != nil {
		return nil, err
	}
	if err := e.Flush(); err != nil {
		return nil, err
	}
	d := data.NewDecoder(conn)
	resp, err := d.Byte()
	if err != nil {
		if errors.Is(err, io.EOF) {
			return nil, fmt.Errorf("storage get %q: connection closed", key)
		}
		return nil, err
	}
	if resp == respNo {
		return nil, ErrNotFound{Key: key}
	}
	return d.Bytes(0)
}
