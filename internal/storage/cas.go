package storage

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"sync"

	"pado/internal/data"
	"pado/internal/simnet"
)

// Content-addressed commit store (Pachyderm-style, DESIGN.md §14): the
// versioned layer above the flat key→block stable store. Immutable
// chunks are keyed by their content hash; commit manifests map a dataset
// key to the ordered chunk hashes of each partition; chunks are
// ref-counted by the manifests that reach them, so GC can only collect
// chunks no live commit references.
//
// One CommitStore outlives individual runs: the engine object is handed
// from run to run (harness.Params.CommitStore, padorun -incremental)
// while each run serves it over its own simulated network via a fresh
// CommitService, which is what makes cross-run incremental re-execution
// possible.

// Commit-store wire protocol op codes (client → service).
const (
	opChunkPut = 'C'
	opChunkGet = 'H'
	opCommit   = 'M'
	opResolve  = 'R'
	opUnpin    = 'U'
)

// HashChunk returns the content address of a chunk: the lowercase hex
// SHA-256 of its bytes. The same bytes always hash to the same address,
// no matter which encoder, buffer, or node produced them.
func HashChunk(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// Manifest is one commit: a dataset key mapped to the ordered chunk
// hashes of each partition. Parts[i] lists partition i's chunks in
// order; a partition with no data holds an empty list.
type Manifest struct {
	Key   string
	Parts [][]string
}

// Clone deep-copies the manifest.
func (m *Manifest) Clone() *Manifest {
	c := &Manifest{Key: m.Key, Parts: make([][]string, len(m.Parts))}
	for i, p := range m.Parts {
		c.Parts[i] = append([]string(nil), p...)
	}
	return c
}

// chunkEntry is one stored chunk with its manifest reference count.
type chunkEntry struct {
	data []byte
	refs int
}

// CommitStats is a point-in-time summary of a CommitStore.
type CommitStats struct {
	Chunks    int
	Manifests int
	UsedBytes int64
	// Hits and Misses count Resolve outcomes; Commits counts accepted
	// manifests; DedupPuts counts chunk puts that found their content
	// already stored; GCRuns and GCCollected summarize garbage
	// collection activity.
	Hits        int64
	Misses      int64
	Commits     int64
	DedupPuts   int64
	GCRuns      int64
	GCCollected int64
}

// CommitStore is the in-memory content-addressed commit store. It is
// safe for concurrent use; chunks are immutable once stored.
type CommitStore struct {
	mu        sync.Mutex
	chunks    map[string]*chunkEntry
	manifests map[string]*Manifest
	pins      map[string]int
	used      int64

	hits, misses, commits, dedup, gcRuns, gcCollected int64
}

// NewCommitStore returns an empty commit store.
func NewCommitStore() *CommitStore {
	return &CommitStore{
		chunks:    make(map[string]*chunkEntry),
		manifests: make(map[string]*Manifest),
		pins:      make(map[string]int),
	}
}

// PutChunk stores a chunk and returns its content address. Putting the
// same bytes twice is free: the second put deduplicates against the
// first.
func (s *CommitStore) PutChunk(b []byte) string {
	h := HashChunk(b)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.chunks[h]; ok {
		s.dedup++
		return h
	}
	s.chunks[h] = &chunkEntry{data: append([]byte(nil), b...)}
	s.used += int64(len(b))
	return h
}

// GetChunk returns the chunk stored under the content address.
func (s *CommitStore) GetChunk(hash string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.chunks[hash]
	if !ok {
		return nil, false
	}
	return c.data, true
}

// HasChunk reports whether the content address is stored.
func (s *CommitStore) HasChunk(hash string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.chunks[hash]
	return ok
}

// Commit records a manifest. Every referenced chunk must already be
// stored — a commit can never dangle — and each reference bumps the
// chunk's ref count. Re-committing a key replaces the previous manifest,
// releasing its references.
func (s *CommitStore) Commit(m *Manifest) error {
	if m.Key == "" {
		return fmt.Errorf("storage commit: empty key")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, part := range m.Parts {
		for _, h := range part {
			if _, ok := s.chunks[h]; !ok {
				return fmt.Errorf("storage commit %q: chunk %.12s… not stored", m.Key, h)
			}
		}
	}
	if old, ok := s.manifests[m.Key]; ok {
		s.refs(old, -1)
	}
	clone := m.Clone()
	s.manifests[m.Key] = clone
	s.refs(clone, +1)
	s.commits++
	return nil
}

// refs adjusts the ref count of every chunk the manifest reaches.
func (s *CommitStore) refs(m *Manifest, d int) {
	for _, part := range m.Parts {
		for _, h := range part {
			if c, ok := s.chunks[h]; ok {
				c.refs += d
			}
		}
	}
}

// Resolve returns the manifest committed under key, or nil when none
// exists. With pin set, a found manifest is pinned: Delete refuses
// pinned keys until a matching Unpin, so a run that resolved a commit
// can trust its chunks to stay for the run's whole lifetime.
func (s *CommitStore) Resolve(key string, pin bool) *Manifest {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.manifests[key]
	if !ok {
		s.misses++
		return nil
	}
	s.hits++
	if pin {
		s.pins[key]++
	}
	return m.Clone()
}

// Unpin releases one pin on key. Unpinning an unpinned key is a no-op.
func (s *CommitStore) Unpin(key string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.pins[key] > 1 {
		s.pins[key]--
	} else {
		delete(s.pins, key)
	}
}

// Delete removes the manifest committed under key, releasing its chunk
// references. Pinned keys are refused.
func (s *CommitStore) Delete(key string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.pins[key] > 0 {
		return fmt.Errorf("storage delete %q: pinned", key)
	}
	m, ok := s.manifests[key]
	if !ok {
		return nil
	}
	s.refs(m, -1)
	delete(s.manifests, key)
	return nil
}

// GC collects every chunk no manifest references, returning the chunk
// count and byte volume reclaimed. A chunk reachable from any live
// commit has refs > 0 and is never collected.
func (s *CommitStore) GC() (chunks int, bytes int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for h, c := range s.chunks {
		if c.refs <= 0 {
			chunks++
			bytes += int64(len(c.data))
			s.used -= int64(len(c.data))
			delete(s.chunks, h)
		}
	}
	s.gcRuns++
	s.gcCollected += int64(chunks)
	return chunks, bytes
}

// Keys returns the committed manifest keys, sorted.
func (s *CommitStore) Keys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	keys := make([]string, 0, len(s.manifests))
	for k := range s.manifests {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Stats returns a point-in-time summary.
func (s *CommitStore) Stats() CommitStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return CommitStats{
		Chunks:      len(s.chunks),
		Manifests:   len(s.manifests),
		UsedBytes:   s.used,
		Hits:        s.hits,
		Misses:      s.misses,
		Commits:     s.commits,
		DedupPuts:   s.dedup,
		GCRuns:      s.gcRuns,
		GCCollected: s.gcCollected,
	}
}

// CommitService serves one CommitStore over the simulated network. The
// nodes all answer for the same store — like the stable Service, several
// nodes spread the transfer bandwidth while the key space stays single
// and consistent — so clients route each operation by hash purely for
// load spreading.
type CommitService struct {
	store *CommitStore
	nodes []*simnet.Node
	stop  chan struct{}

	mu      sync.Mutex
	started bool
}

// NewCommitService creates a service exposing store on the given nodes.
func NewCommitService(store *CommitStore, nodes []*simnet.Node) *CommitService {
	return &CommitService{store: store, nodes: nodes, stop: make(chan struct{})}
}

// NodeIDs returns the serving node ids in service order.
func (s *CommitService) NodeIDs() []string {
	ids := make([]string, len(s.nodes))
	for i, n := range s.nodes {
		ids[i] = n.ID()
	}
	return ids
}

// Start launches the server loop on every serving node.
func (s *CommitService) Start() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started {
		return fmt.Errorf("storage: commit service already started")
	}
	s.started = true
	for _, n := range s.nodes {
		l, err := n.Listen()
		if err != nil {
			return fmt.Errorf("storage: commit node %s: %w", n.ID(), err)
		}
		go s.serve(l)
	}
	return nil
}

// Close stops the accept loops. Existing connections drain on their own.
func (s *CommitService) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started {
		select {
		case <-s.stop:
		default:
			close(s.stop)
		}
	}
}

func (s *CommitService) serve(l *simnet.Listener) {
	for {
		conn, err := l.Accept(s.stop)
		if err != nil {
			return
		}
		go s.handleConn(conn)
	}
}

func (s *CommitService) handleConn(conn *simnet.Conn) {
	defer conn.Close()
	d := data.NewDecoder(conn)
	e := data.NewEncoder(conn)
	for {
		op, err := d.Byte()
		if err != nil {
			return
		}
		if err := s.handleOp(op, e, d); err != nil {
			return
		}
	}
}

// handleOp serves one request/response round; a non-nil error tears the
// connection down (codec failure), while application-level misses answer
// respNo and keep the connection usable.
func (s *CommitService) handleOp(op byte, e *data.Encoder, d *data.Decoder) error {
	switch op {
	case opChunkPut:
		hash, err := d.String()
		if err != nil {
			return err
		}
		payload, err := d.Bytes(0)
		if err != nil {
			return err
		}
		// The service recomputes the address: a client that mishashed
		// (or a corrupted transfer) must not poison the content space.
		if HashChunk(payload) != hash {
			if err := e.Byte(respNo); err != nil {
				return err
			}
			return e.Flush()
		}
		s.store.PutChunk(payload)
		if err := e.Byte(respOK); err != nil {
			return err
		}
		return e.Flush()
	case opChunkGet:
		hash, err := d.String()
		if err != nil {
			return err
		}
		payload, ok := s.store.GetChunk(hash)
		if !ok {
			if err := e.Byte(respNo); err != nil {
				return err
			}
			return e.Flush()
		}
		if err := e.Byte(respOK); err != nil {
			return err
		}
		if err := e.Bytes(payload); err != nil {
			return err
		}
		return e.Flush()
	case opCommit:
		m, err := readManifest(d)
		if err != nil {
			return err
		}
		if err := s.store.Commit(m); err != nil {
			if err := e.Byte(respNo); err != nil {
				return err
			}
			return e.Flush()
		}
		if err := e.Byte(respOK); err != nil {
			return err
		}
		return e.Flush()
	case opResolve:
		key, err := d.String()
		if err != nil {
			return err
		}
		pin, err := d.Byte()
		if err != nil {
			return err
		}
		m := s.store.Resolve(key, pin == 1)
		if m == nil {
			if err := e.Byte(respNo); err != nil {
				return err
			}
			return e.Flush()
		}
		if err := e.Byte(respOK); err != nil {
			return err
		}
		if err := writeManifest(e, m); err != nil {
			return err
		}
		return e.Flush()
	case opUnpin:
		key, err := d.String()
		if err != nil {
			return err
		}
		s.store.Unpin(key)
		if err := e.Byte(respOK); err != nil {
			return err
		}
		return e.Flush()
	default:
		return fmt.Errorf("storage: unknown commit op %q", op)
	}
}

func writeManifest(e *data.Encoder, m *Manifest) error {
	if err := e.String(m.Key); err != nil {
		return err
	}
	if err := e.Uvarint(uint64(len(m.Parts))); err != nil {
		return err
	}
	for _, part := range m.Parts {
		if err := e.Uvarint(uint64(len(part))); err != nil {
			return err
		}
		for _, h := range part {
			if err := e.String(h); err != nil {
				return err
			}
		}
	}
	return nil
}

func readManifest(d *data.Decoder) (*Manifest, error) {
	key, err := d.String()
	if err != nil {
		return nil, err
	}
	np, err := d.Uvarint()
	if err != nil {
		return nil, err
	}
	if np > 1<<20 {
		return nil, fmt.Errorf("storage: manifest with %d parts", np)
	}
	m := &Manifest{Key: key, Parts: make([][]string, np)}
	for i := range m.Parts {
		nc, err := d.Uvarint()
		if err != nil {
			return nil, err
		}
		if nc > 1<<20 {
			return nil, fmt.Errorf("storage: manifest part with %d chunks", nc)
		}
		m.Parts[i] = make([]string, nc)
		for j := range m.Parts[i] {
			if m.Parts[i][j], err = d.String(); err != nil {
				return nil, err
			}
		}
	}
	return m, nil
}

// CommitClient accesses a CommitService from one cluster node through a
// Transport — the runtime hands in its pooled, policy-wrapped transport,
// so commit traffic gets the same connection reuse, deadlines, and
// breaker treatment as the rest of the data plane.
type CommitClient struct {
	t     Transport
	nodes []string
}

// NewCommitClient returns a client over the transport. nodes must be the
// service's NodeIDs.
func NewCommitClient(t Transport, nodes []string) *CommitClient {
	return &CommitClient{t: t, nodes: nodes}
}

func (c *CommitClient) nodeFor(key string) string {
	return c.nodes[int(data.HashKey(key)%uint64(len(c.nodes)))]
}

// PutChunk stores a chunk, returning its content address. Idempotent:
// re-putting stored content is acknowledged without rewriting.
func (c *CommitClient) PutChunk(payload []byte) (string, error) {
	hash := HashChunk(payload)
	err := c.t.Do("casput", c.nodeFor(hash), func(e *data.Encoder, d *data.Decoder) error {
		if err := e.Byte(opChunkPut); err != nil {
			return err
		}
		if err := e.String(hash); err != nil {
			return err
		}
		if err := e.Bytes(payload); err != nil {
			return err
		}
		if err := e.Flush(); err != nil {
			return err
		}
		resp, err := d.Byte()
		if err != nil {
			return err
		}
		if resp != respOK {
			return fmt.Errorf("chunk rejected")
		}
		return nil
	})
	if err != nil {
		return "", fmt.Errorf("storage chunk put %.12s…: %w", hash, err)
	}
	return hash, nil
}

// GetChunk fetches a chunk by content address. Missing chunks return
// ErrNotFound.
func (c *CommitClient) GetChunk(hash string) ([]byte, error) {
	var payload []byte
	err := c.t.Do("casget", c.nodeFor(hash), func(e *data.Encoder, d *data.Decoder) error {
		if err := e.Byte(opChunkGet); err != nil {
			return err
		}
		if err := e.String(hash); err != nil {
			return err
		}
		if err := e.Flush(); err != nil {
			return err
		}
		resp, err := d.Byte()
		if err != nil {
			return err
		}
		if resp != respOK {
			return ErrNotFound{Key: hash}
		}
		payload, err = d.Bytes(0)
		return err
	})
	if err != nil {
		if isNotFound(err) {
			return nil, err
		}
		return nil, fmt.Errorf("storage chunk get %.12s…: %w", hash, err)
	}
	return payload, nil
}

// Commit records a manifest. Every referenced chunk must already be
// stored.
func (c *CommitClient) Commit(m *Manifest) error {
	err := c.t.Do("commit", c.nodeFor(m.Key), func(e *data.Encoder, d *data.Decoder) error {
		if err := e.Byte(opCommit); err != nil {
			return err
		}
		if err := writeManifest(e, m); err != nil {
			return err
		}
		if err := e.Flush(); err != nil {
			return err
		}
		resp, err := d.Byte()
		if err != nil {
			return err
		}
		if resp != respOK {
			return fmt.Errorf("rejected (dangling chunk?)")
		}
		return nil
	})
	if err != nil {
		return fmt.Errorf("storage commit %q: %w", m.Key, err)
	}
	return nil
}

// Resolve returns the manifest committed under key, or nil when none
// exists (a miss is not an error). With pin set the commit is pinned on
// the store until Unpin.
func (c *CommitClient) Resolve(key string, pin bool) (*Manifest, error) {
	var m *Manifest
	err := c.t.Do("resolve", c.nodeFor(key), func(e *data.Encoder, d *data.Decoder) error {
		if err := e.Byte(opResolve); err != nil {
			return err
		}
		if err := e.String(key); err != nil {
			return err
		}
		p := byte(0)
		if pin {
			p = 1
		}
		if err := e.Byte(p); err != nil {
			return err
		}
		if err := e.Flush(); err != nil {
			return err
		}
		resp, err := d.Byte()
		if err != nil {
			return err
		}
		if resp != respOK {
			return nil // miss
		}
		m, err = readManifest(d)
		return err
	})
	if err != nil {
		return nil, fmt.Errorf("storage resolve %q: %w", key, err)
	}
	return m, nil
}

// Unpin releases one pin on key.
func (c *CommitClient) Unpin(key string) error {
	err := c.t.Do("unpin", c.nodeFor(key), func(e *data.Encoder, d *data.Decoder) error {
		if err := e.Byte(opUnpin); err != nil {
			return err
		}
		if err := e.String(key); err != nil {
			return err
		}
		if err := e.Flush(); err != nil {
			return err
		}
		resp, err := d.Byte()
		if err != nil {
			return err
		}
		if resp != respOK {
			return fmt.Errorf("rejected")
		}
		return nil
	})
	if err != nil {
		return fmt.Errorf("storage unpin %q: %w", key, err)
	}
	return nil
}
