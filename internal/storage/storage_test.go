package storage

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"
	"time"

	"pado/internal/data"
	"pado/internal/simnet"
)

func TestLocalStoreBasics(t *testing.T) {
	s := NewLocalStore()
	s.Put("a", []byte("one"))
	s.Put("b", []byte("two"))
	if got, ok := s.Get("a"); !ok || string(got) != "one" {
		t.Errorf("Get a = %q %v", got, ok)
	}
	if s.UsedBytes() != 6 || s.Len() != 2 {
		t.Errorf("accounting: %d bytes, %d blocks", s.UsedBytes(), s.Len())
	}
	s.Put("a", []byte("replaced"))
	if s.UsedBytes() != 11 {
		t.Errorf("replace accounting: %d", s.UsedBytes())
	}
	s.Delete("a")
	if s.Has("a") || s.UsedBytes() != 3 {
		t.Errorf("delete accounting: %d", s.UsedBytes())
	}
	if keys := s.Keys(); len(keys) != 1 || keys[0] != "b" {
		t.Errorf("keys = %v", keys)
	}
	s.Clear()
	if s.Len() != 0 || s.UsedBytes() != 0 {
		t.Error("clear left residue")
	}
	s.Delete("missing") // must not panic or corrupt accounting
	if s.UsedBytes() != 0 {
		t.Error("deleting missing key changed accounting")
	}
}

func TestLocalStoreConcurrent(t *testing.T) {
	s := NewLocalStore()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for k := 0; k < 100; k++ {
				key := fmt.Sprintf("k%d-%d", i, k)
				s.Put(key, make([]byte, 10))
				if _, ok := s.Get(key); !ok {
					t.Errorf("lost %s", key)
				}
			}
		}(i)
	}
	wg.Wait()
	if s.Len() != 800 {
		t.Errorf("len = %d", s.Len())
	}
}

func newServiceCluster(t *testing.T, nodes int, diskBW int64) (*simnet.Network, *Service) {
	t.Helper()
	net := simnet.New(simnet.Config{})
	var sn []*simnet.Node
	for i := 0; i < nodes; i++ {
		n, err := net.AddNode(fmt.Sprintf("s%d", i))
		if err != nil {
			t.Fatal(err)
		}
		sn = append(sn, n)
	}
	if _, err := net.AddNode("client"); err != nil {
		t.Fatal(err)
	}
	svc := NewServiceDisk(sn, diskBW)
	if err := svc.Start(); err != nil {
		t.Fatal(err)
	}
	return net, svc
}

func TestStableServicePutGet(t *testing.T) {
	net, svc := newServiceCluster(t, 3, 0)
	c := NewClient(net, "client", svc)

	blocks := map[string][]byte{}
	for i := 0; i < 20; i++ {
		key := fmt.Sprintf("block-%d", i)
		payload := bytes.Repeat([]byte{byte(i)}, 100+i)
		blocks[key] = payload
		if err := c.Put(key, payload); err != nil {
			t.Fatalf("put %s: %v", key, err)
		}
	}
	for key, want := range blocks {
		got, err := c.Get(key)
		if err != nil {
			t.Fatalf("get %s: %v", key, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("block %s corrupted", key)
		}
	}
	if svc.UsedBytes() == 0 {
		t.Error("service reports no stored bytes")
	}
}

func TestStableServiceMissingBlock(t *testing.T) {
	net, svc := newServiceCluster(t, 2, 0)
	c := NewClient(net, "client", svc)
	_, err := c.Get("nope")
	var nf ErrNotFound
	if !errors.As(err, &nf) || nf.Key != "nope" {
		t.Errorf("got %v, want ErrNotFound", err)
	}
}

// truncatedTransport hands fn a decoder over a fixed response prefix, so
// decode failures after the response byte can be provoked
// deterministically.
type truncatedTransport struct{ resp []byte }

func (t truncatedTransport) Do(_, _ string, fn func(e *data.Encoder, d *data.Decoder) error) error {
	return fn(data.NewEncoder(io.Discard), data.NewDecoder(bytes.NewReader(t.resp)))
}

// TestGetWrapsDecodeErrors: a connection that dies after the server has
// acknowledged the block (respOK, then truncation mid-payload) must
// surface an error carrying the key context, like every other Get
// failure — decode errors after the response byte used to escape bare.
func TestGetWrapsDecodeErrors(t *testing.T) {
	c := &Client{t: truncatedTransport{resp: []byte{respOK}}, nodes: []string{"s0"}}
	_, err := c.Get("the-block")
	if err == nil {
		t.Fatal("truncated response returned no error")
	}
	if !strings.Contains(err.Error(), `"the-block"`) {
		t.Errorf("decode error lost key context: %v", err)
	}
	var nf ErrNotFound
	if errors.As(err, &nf) {
		t.Errorf("truncation misreported as a miss: %v", err)
	}

	// Truncation before the response byte gets the same wrapping.
	c = &Client{t: truncatedTransport{}, nodes: []string{"s0"}}
	_, err = c.Get("other-block")
	if err == nil || !strings.Contains(err.Error(), `"other-block"`) {
		t.Errorf("pre-response error lost key context: %v", err)
	}
}

// TestPoolTransportReuseAndMissAlignment: pooled streams survive many
// operations, a miss (respNo) leaves the stream aligned for the next
// operation, and concurrent use from one client is safe.
func TestPoolTransportReuseAndMissAlignment(t *testing.T) {
	net, svc := newServiceCluster(t, 2, 0)
	pt := NewPoolTransport(net, "client")
	defer pt.Close()
	c := NewClientTransport(pt, svc)

	for i := 0; i < 10; i++ {
		key := fmt.Sprintf("k%d", i)
		if err := c.Put(key, []byte(key)); err != nil {
			t.Fatalf("put %s: %v", key, err)
		}
		if _, err := c.Get("missing-" + key); !errors.As(err, &ErrNotFound{}) {
			t.Fatalf("miss %d: %v", i, err)
		}
		// The miss must not have desynced the pooled stream.
		got, err := c.Get(key)
		if err != nil || string(got) != key {
			t.Fatalf("get after miss: %q %v", got, err)
		}
	}
	if len(pt.streams) != 2 {
		t.Errorf("pooled %d destinations, want 2", len(pt.streams))
	}

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for k := 0; k < 20; k++ {
				key := fmt.Sprintf("p%d-%d", i, k)
				if err := c.Put(key, []byte(key)); err != nil {
					t.Errorf("put: %v", err)
					return
				}
				if got, err := c.Get(key); err != nil || string(got) != key {
					t.Errorf("get %s: %q %v", key, got, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
}

func TestStableServiceSpreadsBlocks(t *testing.T) {
	net, svc := newServiceCluster(t, 4, 0)
	c := NewClient(net, "client", svc)
	for i := 0; i < 64; i++ {
		if err := c.Put(fmt.Sprintf("b%d", i), []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	for i, st := range svc.stores {
		if st.Len() == 0 {
			t.Errorf("storage node %d received no blocks", i)
		}
	}
}

func TestStableServiceDiskThrottle(t *testing.T) {
	// 256KB through a single 512KB/s disk should take ~0.4s+.
	net, svc := newServiceCluster(t, 1, 512<<10)
	c := NewClient(net, "client", svc)
	payload := make([]byte, 256<<10)
	start := time.Now()
	if err := c.Put("big", payload); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get("big"); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 300*time.Millisecond {
		t.Errorf("disk-throttled round trip took only %v", elapsed)
	}
}

func TestStableServiceDoubleStart(t *testing.T) {
	_, svc := newServiceCluster(t, 1, 0)
	if err := svc.Start(); err == nil {
		t.Error("second Start should fail")
	}
}

func TestStableServiceConcurrentClients(t *testing.T) {
	net, svc := newServiceCluster(t, 2, 0)
	for i := 0; i < 4; i++ {
		if _, err := net.AddNode(fmt.Sprintf("c%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := NewClient(net, fmt.Sprintf("c%d", i), svc)
			for k := 0; k < 25; k++ {
				key := fmt.Sprintf("c%d-%d", i, k)
				if err := c.Put(key, []byte(key)); err != nil {
					t.Errorf("put: %v", err)
					return
				}
				got, err := c.Get(key)
				if err != nil || string(got) != key {
					t.Errorf("get %s: %q %v", key, got, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
}
