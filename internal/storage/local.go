// Package storage provides the two storage substrates of the evaluation
// environment: per-container local stores (destroyed on eviction, like a
// transient container's local disk) and a remote stable-storage service
// hosted on reserved nodes (the GlusterFS/HDFS stand-in that
// Spark-checkpoint writes through).
package storage

import (
	"fmt"
	"sort"
	"sync"
)

// LocalStore is an in-memory block store scoped to one container. When
// the container is evicted the store is simply dropped, modeling the
// paper's assumption that all transient-container state, including local
// disk, is destroyed on eviction (§2.1).
type LocalStore struct {
	mu     sync.Mutex
	blocks map[string][]byte
	used   int64
}

// NewLocalStore returns an empty store.
func NewLocalStore() *LocalStore {
	return &LocalStore{blocks: make(map[string][]byte)}
}

// Put stores a block, replacing any previous content under the key.
func (s *LocalStore) Put(key string, b []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if old, ok := s.blocks[key]; ok {
		s.used -= int64(len(old))
	}
	s.blocks[key] = b
	s.used += int64(len(b))
}

// Get returns the block and whether it exists.
func (s *LocalStore) Get(key string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.blocks[key]
	return b, ok
}

// Delete removes a block if present.
func (s *LocalStore) Delete(key string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if old, ok := s.blocks[key]; ok {
		s.used -= int64(len(old))
		delete(s.blocks, key)
	}
}

// Has reports whether the key exists.
func (s *LocalStore) Has(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.blocks[key]
	return ok
}

// UsedBytes returns the total stored payload size.
func (s *LocalStore) UsedBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.used
}

// Len returns the number of stored blocks.
func (s *LocalStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.blocks)
}

// Keys returns the stored keys, sorted.
func (s *LocalStore) Keys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.blocks))
	for k := range s.blocks {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Clear drops every block.
func (s *LocalStore) Clear() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.blocks = make(map[string][]byte)
	s.used = 0
}

// ErrNotFound is returned by remote gets for missing blocks.
type ErrNotFound struct{ Key string }

// Error implements error.
func (e ErrNotFound) Error() string { return fmt.Sprintf("storage: block %q not found", e.Key) }

// Is matches any ErrNotFound regardless of key, so errors.Is(err,
// storage.ErrNotFound{}) classifies misses without knowing the key —
// which pooled transports need: a miss is a healthy negative response,
// not a broken connection.
func (e ErrNotFound) Is(target error) bool {
	_, ok := target.(ErrNotFound)
	return ok
}
