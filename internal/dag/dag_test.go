package dag

import (
	"math/rand"
	"strings"
	"testing"
)

func diamond() (*Graph, []VertexID) {
	g := New()
	a := g.AddVertex("a", KindSourceRead, nil)
	b := g.AddVertex("b", KindCompute, nil)
	c := g.AddVertex("c", KindCompute, nil)
	d := g.AddVertex("d", KindCompute, nil)
	g.AddEdge(a, b, OneToOne, "")
	g.AddEdge(a, c, OneToOne, "")
	g.AddEdge(b, d, ManyToMany, "")
	g.AddEdge(c, d, ManyToOne, "x")
	return g, []VertexID{a, b, c, d}
}

func TestTopoSortDiamond(t *testing.T) {
	g, ids := diamond()
	order, err := g.TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	pos := make(map[VertexID]int)
	for i, id := range order {
		pos[id] = i
	}
	for _, e := range g.Edges() {
		if pos[e.From] >= pos[e.To] {
			t.Errorf("edge %d->%d violated by order %v", e.From, e.To, order)
		}
	}
	if len(order) != len(ids) {
		t.Errorf("order has %d vertices, want %d", len(order), len(ids))
	}
}

func TestTopoSortDeterministic(t *testing.T) {
	g, _ := diamond()
	first, _ := g.TopoSort()
	for i := 0; i < 10; i++ {
		again, _ := g.TopoSort()
		for j := range first {
			if first[j] != again[j] {
				t.Fatalf("non-deterministic order: %v vs %v", first, again)
			}
		}
	}
}

func TestTopoSortCycle(t *testing.T) {
	g := New()
	a := g.AddVertex("a", KindCompute, nil)
	b := g.AddVertex("b", KindCompute, nil)
	g.AddEdge(a, b, OneToOne, "")
	g.AddEdge(b, a, OneToOne, "")
	if _, err := g.TopoSort(); err == nil {
		t.Error("expected cycle error")
	}
	if err := g.Validate(); err == nil {
		t.Error("Validate should reject cycles")
	}
}

// Property: random DAGs (edges only from lower to higher ids) always
// topo-sort successfully and respect every edge.
func TestTopoSortRandomDAGs(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		g := New()
		n := 2 + rng.Intn(20)
		ids := make([]VertexID, n)
		for i := range ids {
			ids[i] = g.AddVertex("v", KindCompute, nil)
		}
		for i := 0; i < n*2; i++ {
			a, b := rng.Intn(n), rng.Intn(n)
			if a == b {
				continue
			}
			if a > b {
				a, b = b, a
			}
			g.AddEdge(ids[a], ids[b], DepType(rng.Intn(4)), "")
		}
		order, err := g.TopoSort()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		pos := make(map[VertexID]int)
		for i, id := range order {
			pos[id] = i
		}
		for _, e := range g.Edges() {
			if pos[e.From] >= pos[e.To] {
				t.Fatalf("trial %d: edge order violated", trial)
			}
		}
	}
}

func TestValidateSourceAndComputeRules(t *testing.T) {
	g := New()
	g.AddVertex("orphan-compute", KindCompute, nil)
	if err := g.Validate(); err == nil {
		t.Error("compute vertex without inputs should fail validation")
	}

	g2 := New()
	a := g2.AddVertex("src", KindSourceRead, nil)
	b := g2.AddVertex("src2", KindSourceCreate, nil)
	g2.AddEdge(a, b, OneToOne, "")
	if err := g2.Validate(); err == nil {
		t.Error("source vertex with inputs should fail validation")
	}
}

func TestEdgeQueries(t *testing.T) {
	g, ids := diamond()
	a, b, c, d := ids[0], ids[1], ids[2], ids[3]
	if got := g.Children(a); len(got) != 2 || got[0] != b || got[1] != c {
		t.Errorf("Children(a) = %v", got)
	}
	if got := g.Parents(d); len(got) != 2 {
		t.Errorf("Parents(d) = %v", got)
	}
	if got := g.Sources(); len(got) != 1 || got[0] != a {
		t.Errorf("Sources = %v", got)
	}
	if got := g.Sinks(); len(got) != 1 || got[0] != d {
		t.Errorf("Sinks = %v", got)
	}
	in := g.InEdges(d)
	if len(in) != 2 || in[0].Dep != ManyToMany || in[1].Dep != ManyToOne || in[1].Tag != "x" {
		t.Errorf("InEdges(d) = %v", in)
	}
	if g.Vertex(VertexID(99)) != nil {
		t.Error("out-of-range vertex should be nil")
	}
}

func TestDuplicateParentsDeduplicated(t *testing.T) {
	g := New()
	a := g.AddVertex("a", KindSourceRead, nil)
	b := g.AddVertex("b", KindCompute, nil)
	g.AddEdge(a, b, OneToOne, "")
	g.AddEdge(a, b, OneToMany, "side")
	if got := g.Parents(b); len(got) != 1 {
		t.Errorf("Parents should deduplicate, got %v", got)
	}
	if got := g.InEdges(b); len(got) != 2 {
		t.Errorf("InEdges should keep both, got %v", got)
	}
}

func TestAddEdgePanics(t *testing.T) {
	g := New()
	a := g.AddVertex("a", KindCompute, nil)
	assertPanic(t, func() { g.AddEdge(a, VertexID(5), OneToOne, "") })
	assertPanic(t, func() { g.AddEdge(a, a, OneToOne, "") })
}

func assertPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	f()
}

func TestDepTypeHelpers(t *testing.T) {
	if !ManyToMany.Wide() || !ManyToOne.Wide() {
		t.Error("many-* deps should be wide")
	}
	if OneToOne.Wide() || OneToMany.Wide() {
		t.Error("one-* deps should not be wide")
	}
	for d := DepType(0); d < 4; d++ {
		if strings.HasPrefix(d.String(), "DepType(") {
			t.Errorf("missing String for %d", d)
		}
	}
}

func TestDOT(t *testing.T) {
	g, ids := diamond()
	g.Vertex(ids[3]).Placement = PlaceReserved
	g.Vertex(ids[0]).Placement = PlaceTransient
	dot := g.DOT()
	for _, want := range []string{"digraph", "salmon", "lightblue", "many-to-many"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT output missing %q:\n%s", want, dot)
		}
	}
}
