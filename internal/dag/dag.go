// Package dag implements the logical DAG representation consumed by the
// Pado compiler.
//
// Each vertex is an operator; each edge carries one of the paper's four
// dependency types (§2.2): one-to-one, one-to-many, many-to-one, and
// many-to-many. The compiler in internal/core annotates vertices with a
// placement (transient or reserved) and partitions the graph into stages.
package dag

import (
	"fmt"
	"sort"
	"strings"
)

// DepType is the dependency type of an edge between two operators.
type DepType uint8

// The four dependency types of §2.2.
const (
	OneToOne DepType = iota
	OneToMany
	ManyToOne
	ManyToMany
)

// String implements fmt.Stringer.
func (d DepType) String() string {
	switch d {
	case OneToOne:
		return "one-to-one"
	case OneToMany:
		return "one-to-many"
	case ManyToOne:
		return "many-to-one"
	case ManyToMany:
		return "many-to-many"
	default:
		return fmt.Sprintf("DepType(%d)", uint8(d))
	}
}

// Wide reports whether the dependency gathers outputs of many parent
// tasks into a child task (the recomputation-amplifying kinds).
func (d DepType) Wide() bool { return d == ManyToOne || d == ManyToMany }

// Placement is where the compiler decided an operator's tasks run.
type Placement uint8

// Placement values. PlaceNone marks an unplaced vertex.
const (
	PlaceNone Placement = iota
	PlaceTransient
	PlaceReserved
)

// String implements fmt.Stringer.
func (p Placement) String() string {
	switch p {
	case PlaceNone:
		return "unplaced"
	case PlaceTransient:
		return "transient"
	case PlaceReserved:
		return "reserved"
	default:
		return fmt.Sprintf("Placement(%d)", uint8(p))
	}
}

// VertexKind distinguishes source operators from computational ones, which
// Algorithm 1 treats differently.
type VertexKind uint8

// Vertex kinds.
const (
	// KindCompute is an operator with at least one input edge.
	KindCompute VertexKind = iota
	// KindSourceRead reads its input from external storage (ISREAD).
	KindSourceRead
	// KindSourceCreate creates its data in memory (ISCREATED).
	KindSourceCreate
)

// String implements fmt.Stringer.
func (k VertexKind) String() string {
	switch k {
	case KindCompute:
		return "compute"
	case KindSourceRead:
		return "source-read"
	case KindSourceCreate:
		return "source-create"
	default:
		return fmt.Sprintf("VertexKind(%d)", uint8(k))
	}
}

// VertexID identifies a vertex within one Graph.
type VertexID int

// Vertex is an operator in the logical DAG. Op carries the engine-level
// payload (a dataflow operator); the dag package never inspects it.
type Vertex struct {
	ID        VertexID
	Name      string
	Kind      VertexKind
	Placement Placement
	// Parallelism is the number of parallel tasks the operator expands
	// into; 0 until the physical planner resolves it.
	Parallelism int
	// Op is the operator payload attached by the dataflow layer.
	Op any
}

// Edge is a typed dependency from one operator to another. Tag names the
// input on the consuming side (e.g. a side-input name); the main input has
// an empty tag.
type Edge struct {
	From VertexID
	To   VertexID
	Dep  DepType
	Tag  string
}

// Graph is a mutable logical DAG. The zero value is empty and ready to
// use.
type Graph struct {
	vertices []*Vertex
	edges    []Edge
	out      map[VertexID][]int // vertex -> indices into edges
	in       map[VertexID][]int
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{
		out: make(map[VertexID][]int),
		in:  make(map[VertexID][]int),
	}
}

// AddVertex adds an operator and returns its id.
func (g *Graph) AddVertex(name string, kind VertexKind, op any) VertexID {
	id := VertexID(len(g.vertices))
	g.vertices = append(g.vertices, &Vertex{ID: id, Name: name, Kind: kind, Op: op})
	return id
}

// AddEdge adds a typed dependency. It panics on a dangling endpoint, which
// is always a programming error in the pipeline builder.
func (g *Graph) AddEdge(from, to VertexID, dep DepType, tag string) {
	if !g.valid(from) || !g.valid(to) {
		panic(fmt.Sprintf("dag: edge %d->%d references unknown vertex", from, to))
	}
	if from == to {
		panic(fmt.Sprintf("dag: self-edge on vertex %d", from))
	}
	idx := len(g.edges)
	g.edges = append(g.edges, Edge{From: from, To: to, Dep: dep, Tag: tag})
	g.out[from] = append(g.out[from], idx)
	g.in[to] = append(g.in[to], idx)
}

func (g *Graph) valid(id VertexID) bool { return id >= 0 && int(id) < len(g.vertices) }

// Vertex returns the vertex with the given id.
func (g *Graph) Vertex(id VertexID) *Vertex {
	if !g.valid(id) {
		return nil
	}
	return g.vertices[id]
}

// NumVertices returns the vertex count.
func (g *Graph) NumVertices() int { return len(g.vertices) }

// Vertices returns all vertices in id order.
func (g *Graph) Vertices() []*Vertex {
	out := make([]*Vertex, len(g.vertices))
	copy(out, g.vertices)
	return out
}

// Edges returns a copy of all edges.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, len(g.edges))
	copy(out, g.edges)
	return out
}

// InEdges returns the edges arriving at v in insertion order.
func (g *Graph) InEdges(v VertexID) []Edge {
	idxs := g.in[v]
	out := make([]Edge, len(idxs))
	for i, idx := range idxs {
		out[i] = g.edges[idx]
	}
	return out
}

// OutEdges returns the edges leaving v in insertion order.
func (g *Graph) OutEdges(v VertexID) []Edge {
	idxs := g.out[v]
	out := make([]Edge, len(idxs))
	for i, idx := range idxs {
		out[i] = g.edges[idx]
	}
	return out
}

// Parents returns the distinct parent vertex ids of v in edge order.
func (g *Graph) Parents(v VertexID) []VertexID {
	seen := make(map[VertexID]bool)
	var out []VertexID
	for _, e := range g.InEdges(v) {
		if !seen[e.From] {
			seen[e.From] = true
			out = append(out, e.From)
		}
	}
	return out
}

// Children returns the distinct child vertex ids of v in edge order.
func (g *Graph) Children(v VertexID) []VertexID {
	seen := make(map[VertexID]bool)
	var out []VertexID
	for _, e := range g.OutEdges(v) {
		if !seen[e.To] {
			seen[e.To] = true
			out = append(out, e.To)
		}
	}
	return out
}

// Sources returns vertices with no incoming edges, in id order.
func (g *Graph) Sources() []VertexID {
	var out []VertexID
	for _, v := range g.vertices {
		if len(g.in[v.ID]) == 0 {
			out = append(out, v.ID)
		}
	}
	return out
}

// Sinks returns vertices with no outgoing edges, in id order.
func (g *Graph) Sinks() []VertexID {
	var out []VertexID
	for _, v := range g.vertices {
		if len(g.out[v.ID]) == 0 {
			out = append(out, v.ID)
		}
	}
	return out
}

// TopoSort returns the vertex ids in a deterministic topological order
// (Kahn's algorithm, ties broken by smallest id). It returns an error if
// the graph has a cycle.
func (g *Graph) TopoSort() ([]VertexID, error) {
	// Indegree counts distinct parents, not edges: a parent may be
	// connected by several edges (e.g. main input plus a side input)
	// but is visited once.
	indeg := make(map[VertexID]int, len(g.vertices))
	for _, v := range g.vertices {
		indeg[v.ID] = len(g.Parents(v.ID))
	}
	var frontier []VertexID
	for _, v := range g.vertices {
		if indeg[v.ID] == 0 {
			frontier = append(frontier, v.ID)
		}
	}
	sort.Slice(frontier, func(i, j int) bool { return frontier[i] < frontier[j] })

	order := make([]VertexID, 0, len(g.vertices))
	for len(frontier) > 0 {
		// Pop the smallest id for determinism.
		v := frontier[0]
		frontier = frontier[1:]
		order = append(order, v)
		for _, c := range g.Children(v) {
			indeg[c]--
			if indeg[c] == 0 {
				// Insert keeping the frontier sorted.
				pos := sort.Search(len(frontier), func(i int) bool { return frontier[i] >= c })
				frontier = append(frontier, 0)
				copy(frontier[pos+1:], frontier[pos:])
				frontier[pos] = c
			}
		}
	}
	if len(order) != len(g.vertices) {
		return nil, fmt.Errorf("dag: graph has a cycle (%d of %d vertices ordered)", len(order), len(g.vertices))
	}
	return order, nil
}

// Validate checks structural invariants: acyclicity and that every
// compute vertex has at least one input while sources have none.
func (g *Graph) Validate() error {
	if _, err := g.TopoSort(); err != nil {
		return err
	}
	for _, v := range g.vertices {
		nin := len(g.in[v.ID])
		switch v.Kind {
		case KindCompute:
			if nin == 0 {
				return fmt.Errorf("dag: compute vertex %q has no inputs", v.Name)
			}
		case KindSourceRead, KindSourceCreate:
			if nin != 0 {
				return fmt.Errorf("dag: source vertex %q has %d inputs", v.Name, nin)
			}
		}
	}
	return nil
}

// DOT renders the graph in Graphviz format, coloring vertices by
// placement. Useful for debugging compilation results.
func (g *Graph) DOT() string {
	var b strings.Builder
	b.WriteString("digraph pado {\n  rankdir=LR;\n")
	for _, v := range g.vertices {
		color := "gray"
		switch v.Placement {
		case PlaceTransient:
			color = "lightblue"
		case PlaceReserved:
			color = "salmon"
		}
		fmt.Fprintf(&b, "  v%d [label=%q style=filled fillcolor=%s];\n", v.ID, v.Name, color)
	}
	for _, e := range g.edges {
		style := "solid"
		if e.Dep.Wide() {
			style = "bold"
		}
		fmt.Fprintf(&b, "  v%d -> v%d [label=%q style=%s];\n", e.From, e.To, e.Dep.String(), style)
	}
	b.WriteString("}\n")
	return b.String()
}
