package dataflow

import (
	"pado/internal/data"
)

// Source is a partitioned external input (the stand-in for S3/HDFS reads
// in the paper's evaluation). Sources must be deterministic and safe for
// concurrent Open calls: evicted read tasks are re-run from the source,
// which is assumed stable (§2.2).
type Source interface {
	// NumPartitions returns the number of input partitions; it fixes
	// the parallelism of the reading operator.
	NumPartitions() int
	// Open returns an iterator over one partition.
	Open(partition int) (Iterator, error)
}

// Iterator yields records of one source partition.
type Iterator interface {
	// Next returns the next record, or ok=false at the end.
	Next() (rec data.Record, ok bool, err error)
	Close() error
}

// Ops attached as vertex payloads. The engines type-switch on these.

// CreateOp is an in-memory source (ISCREATED).
type CreateOp struct {
	Records []data.Record
	Coder   data.Coder
}

// ReadOp is a storage-backed source (ISREAD).
type ReadOp struct {
	Source Source
	Coder  data.Coder
	// Cached asks executors to cache the partition's records in memory
	// so re-reads by later stages of iterative jobs hit the cache
	// (paper §3.2.7).
	Cached bool
	// Cost is the CPU tokens charged per record read (0 means 1). It
	// models the real expense of pulling input from external storage,
	// which recomputation-based recovery pays again on every cascade
	// back to the source.
	Cost int
}

// ParDoOp is a one-to-one operator, possibly with broadcast side inputs.
type ParDoOp struct {
	Fn         DoFn
	Sides      []SideInput
	OutCoder   data.Coder
	CacheInput bool
	// Cost is the CPU tokens charged per input record (0 means 1).
	Cost int
}

// CombineOp is a keyed (many-to-many) or global (many-to-one) aggregation.
type CombineOp struct {
	Fn       CombineFn
	InCoder  data.Coder
	OutCoder data.Coder
	Global   bool
	// AccCoder encodes (key, accumulator) records. When set, the Pado
	// runtime ships partially aggregated accumulators across the
	// transient-to-reserved boundary instead of raw records (§3.2.7).
	AccCoder data.Coder
	// Cost is the CPU tokens charged per record (0 means 1).
	Cost int
}

// MultiOp consumes aligned partitions of several one-to-one inputs.
type MultiOp struct {
	Fn        MultiDoFn
	OutCoder  data.Coder
	NumInputs int
}

// SliceSource is an in-memory Source over pre-partitioned records, used
// heavily in tests.
type SliceSource struct {
	Parts [][]data.Record
}

// NumPartitions implements Source.
func (s *SliceSource) NumPartitions() int { return len(s.Parts) }

// Open implements Source.
func (s *SliceSource) Open(p int) (Iterator, error) {
	return &sliceIter{recs: s.Parts[p]}, nil
}

type sliceIter struct {
	recs []data.Record
	i    int
}

func (it *sliceIter) Next() (data.Record, bool, error) {
	if it.i >= len(it.recs) {
		return data.Record{}, false, nil
	}
	r := it.recs[it.i]
	it.i++
	return r, true, nil
}

func (it *sliceIter) Close() error { return nil }

// FingerprintedSource is a Source whose partition contents can be
// identified without reading them. The compiler folds partition
// fingerprints into stage cache keys, which is what lets a rerun prove
// "this input is the same as last time" and skip the stages computed
// from it (incremental re-execution).
type FingerprintedSource interface {
	Source
	// PartitionFingerprint returns a stable identifier for the current
	// content of one partition — same content, same fingerprint; any
	// content change, a different fingerprint. "" means unknown, which
	// disables caching for everything downstream of this source.
	PartitionFingerprint(p int) string
}

// FuncSource generates partition contents on demand from a deterministic
// generator function, standing in for large external datasets without
// materializing them.
type FuncSource struct {
	Partitions int
	// Gen returns the records of one partition. It must be
	// deterministic: re-reads after evictions must see identical data.
	Gen func(partition int) []data.Record
	// Fingerprint, if set, identifies one partition's content without
	// generating it (see FingerprintedSource). It must change whenever
	// Gen's output for that partition changes.
	Fingerprint func(partition int) string
}

// NumPartitions implements Source.
func (s *FuncSource) NumPartitions() int { return s.Partitions }

// Open implements Source.
func (s *FuncSource) Open(p int) (Iterator, error) {
	return &sliceIter{recs: s.Gen(p)}, nil
}

// PartitionFingerprint implements FingerprintedSource. Sources without a
// Fingerprint function report "" (unknown).
func (s *FuncSource) PartitionFingerprint(p int) string {
	if s.Fingerprint == nil {
		return ""
	}
	return s.Fingerprint(p)
}
