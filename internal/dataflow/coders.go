package dataflow

import (
	"fmt"

	"pado/internal/dag"
	"pado/internal/data"
)

// OutputCoder returns the record coder for a vertex's output collection.
func OutputCoder(v *dag.Vertex) (data.Coder, error) {
	switch op := v.Op.(type) {
	case *CreateOp:
		return op.Coder, nil
	case *ReadOp:
		return op.Coder, nil
	case *ParDoOp:
		return op.OutCoder, nil
	case *CombineOp:
		return op.OutCoder, nil
	case *MultiOp:
		return op.OutCoder, nil
	default:
		return nil, fmt.Errorf("dataflow: vertex %q has unknown payload %T", v.Name, v.Op)
	}
}

// AccumulatorCoder returns the coder for a CombineOp's (key, accumulator)
// records if the operator supports encoded partial aggregation, or nil.
func AccumulatorCoder(v *dag.Vertex) data.Coder {
	if op, ok := v.Op.(*CombineOp); ok {
		return op.AccCoder
	}
	return nil
}

// OpCost returns the CPU tokens charged per record processed by the
// vertex's operator (1 unless declared otherwise).
func OpCost(v *dag.Vertex) int {
	c := 0
	switch op := v.Op.(type) {
	case *ParDoOp:
		c = op.Cost
	case *CombineOp:
		c = op.Cost
	case *ReadOp:
		c = op.Cost
	}
	if c <= 0 {
		return 1
	}
	return c
}
