package dataflow

import (
	"testing"

	"pado/internal/dag"
	"pado/internal/data"
)

var kv = data.KVCoder{K: data.StringCoder, V: data.Int64Coder}

func edgeBetween(g *dag.Graph, from, to dag.VertexID) (dag.Edge, bool) {
	for _, e := range g.InEdges(to) {
		if e.From == from {
			return e, true
		}
	}
	return dag.Edge{}, false
}

func TestTransformEdgeTypes(t *testing.T) {
	p := NewPipeline()
	src := &FuncSource{Partitions: 2, Gen: func(int) []data.Record { return nil }}
	read := p.Read("read", src, kv)
	created := p.Create("model", []data.Record{{Value: int64(1)}}, kv)
	mapped := read.ParDo("map", MapFunc(func(r data.Record) data.Record { return r }), kv,
		WithSide(SideInput{Name: "m", From: created, Cached: true}))
	keyed := mapped.CombinePerKey("reduce", SumInt64Fn{}, kv)
	global := keyed.CombineGlobally("agg", SumInt64Fn{}, kv)
	multi := global.Apply("upd", MultiDoFunc(func(map[string][]data.Record, Emit) error { return nil }), kv, created)

	g := p.Graph()
	if g.Vertex(read.VertexID()).Kind != dag.KindSourceRead {
		t.Error("read kind wrong")
	}
	if g.Vertex(created.VertexID()).Kind != dag.KindSourceCreate {
		t.Error("create kind wrong")
	}

	if e, ok := edgeBetween(g, read.VertexID(), mapped.VertexID()); !ok || e.Dep != dag.OneToOne || e.Tag != "" {
		t.Errorf("read->map edge = %+v", e)
	}
	if e, ok := edgeBetween(g, created.VertexID(), mapped.VertexID()); !ok || e.Dep != dag.OneToMany || e.Tag != "m" {
		t.Errorf("side edge = %+v", e)
	}
	if e, ok := edgeBetween(g, mapped.VertexID(), keyed.VertexID()); !ok || e.Dep != dag.ManyToMany {
		t.Errorf("shuffle edge = %+v", e)
	}
	if e, ok := edgeBetween(g, keyed.VertexID(), global.VertexID()); !ok || e.Dep != dag.ManyToOne {
		t.Errorf("agg edge = %+v", e)
	}
	if e, ok := edgeBetween(g, global.VertexID(), multi.VertexID()); !ok || e.Dep != dag.OneToOne || e.Tag != "" {
		t.Errorf("multi main edge = %+v", e)
	}
	if e, ok := edgeBetween(g, created.VertexID(), multi.VertexID()); !ok || e.Dep != dag.OneToOne || e.Tag != "in1" {
		t.Errorf("multi extra edge = %+v", e)
	}
	if err := g.Validate(); err != nil {
		t.Errorf("built pipeline invalid: %v", err)
	}
}

func TestOptionsSetOpFields(t *testing.T) {
	p := NewPipeline()
	src := &FuncSource{Partitions: 1, Gen: func(int) []data.Record { return nil }}
	read := p.Read("read", src, kv).Cached().ReadCost(12)
	rd := p.Graph().Vertex(read.VertexID()).Op.(*ReadOp)
	if !rd.Cached || rd.Cost != 12 {
		t.Errorf("read options not applied: %+v", rd)
	}

	mapped := read.ParDo("m", MapFunc(func(r data.Record) data.Record { return r }), kv,
		WithInputCache(), WithCost(7))
	pd := p.Graph().Vertex(mapped.VertexID()).Op.(*ParDoOp)
	if !pd.CacheInput || pd.Cost != 7 {
		t.Errorf("pardo options not applied: %+v", pd)
	}

	comb := mapped.CombinePerKey("c", SumInt64Fn{}, kv,
		WithAccumulatorCoder(kv), WithCombineCost(3))
	co := p.Graph().Vertex(comb.VertexID()).Op.(*CombineOp)
	if co.AccCoder == nil || co.Cost != 3 || co.Global {
		t.Errorf("combine options not applied: %+v", co)
	}
}

func TestOutputCoderResolution(t *testing.T) {
	p := NewPipeline()
	read := p.Read("r", &FuncSource{Partitions: 1}, kv)
	c, err := OutputCoder(p.Graph().Vertex(read.VertexID()))
	if err != nil || c != data.Coder(kv) {
		t.Errorf("read coder = %v, %v", c, err)
	}
	if OpCost(p.Graph().Vertex(read.VertexID())) != 1 {
		t.Error("default op cost should be 1")
	}
}

func TestSumFns(t *testing.T) {
	var f SumInt64Fn
	acc := f.CreateAccumulator()
	acc = f.AddInput(acc, data.KV("k", int64(3)))
	acc = f.MergeAccumulators(acc, int64(4))
	out := f.ExtractOutput("k", acc)
	if out.Value.(int64) != 7 || out.Key != "k" {
		t.Errorf("SumInt64Fn = %v", out)
	}

	var v SumFloat64sFn
	a := v.CreateAccumulator()
	a = v.AddInput(a, data.Record{Value: []float64{1, 2}})
	a = v.AddInput(a, data.Record{Value: []float64{10, 20}})
	b := v.CreateAccumulator()
	b = v.AddInput(b, data.Record{Value: []float64{100, 200, 300}})
	m := v.MergeAccumulators(a, b).([]float64)
	if len(m) != 3 || m[0] != 111 || m[1] != 222 || m[2] != 300 {
		t.Errorf("SumFloat64sFn merge = %v", m)
	}
	if got := v.ExtractOutput(nil, v.CreateAccumulator()); got.Value.([]float64) == nil {
		t.Error("empty vector extraction should be non-nil slice")
	}
}

func TestGroupFn(t *testing.T) {
	var g GroupFn
	acc := g.CreateAccumulator()
	acc = g.AddInput(acc, data.KV("k", "a"))
	acc = g.AddInput(acc, data.KV("k", "b"))
	other := g.AddInput(g.CreateAccumulator(), data.KV("k", "c"))
	merged := g.MergeAccumulators(acc, other)
	out := g.ExtractOutput("k", merged)
	vals := out.Value.([]any)
	if len(vals) != 3 {
		t.Errorf("grouped = %v", vals)
	}
}

func TestSliceAndFuncSources(t *testing.T) {
	ss := &SliceSource{Parts: [][]data.Record{
		{data.KV("a", int64(1))},
		{data.KV("b", int64(2)), data.KV("c", int64(3))},
	}}
	if ss.NumPartitions() != 2 {
		t.Error("slice partitions wrong")
	}
	it, err := ss.Open(1)
	if err != nil {
		t.Fatal(err)
	}
	var n int
	for {
		_, ok, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		n++
	}
	it.Close()
	if n != 2 {
		t.Errorf("iterated %d records", n)
	}

	fs := &FuncSource{Partitions: 3, Gen: func(p int) []data.Record {
		return []data.Record{data.KV(int64(p), int64(p))}
	}}
	it2, _ := fs.Open(2)
	r, ok, _ := it2.Next()
	if !ok || r.Key.(int64) != 2 {
		t.Errorf("func source record = %v", r)
	}
}

func TestCrossPipelineSidePanics(t *testing.T) {
	p1 := NewPipeline()
	p2 := NewPipeline()
	c1 := p1.Read("r", &FuncSource{Partitions: 1}, kv)
	c2 := p2.Create("m", nil, kv)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for cross-pipeline side input")
		}
	}()
	c1.ParDo("x", MapFunc(func(r data.Record) data.Record { return r }), kv,
		WithSide(SideInput{Name: "s", From: c2}))
}
