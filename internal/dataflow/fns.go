package dataflow

import (
	"pado/internal/data"
)

// Emit receives output records from a user function.
type Emit func(data.Record)

// SideValues gives a DoFn access to its materialized broadcast inputs.
type SideValues interface {
	// Get returns the full contents of the named side input.
	Get(name string) []data.Record
}

// DoFn is the per-record processing function of ParDo.
type DoFn interface {
	// Process handles one input record and may emit any number of
	// output records.
	Process(r data.Record, sides SideValues, emit Emit) error
}

// DoFunc adapts a plain function to DoFn.
type DoFunc func(r data.Record, sides SideValues, emit Emit) error

// Process implements DoFn.
func (f DoFunc) Process(r data.Record, sides SideValues, emit Emit) error {
	return f(r, sides, emit)
}

// BundleDoFn is an optional refinement of DoFn: when a ParDo's function
// also implements BundleDoFn, engines call ProcessBundle once per task
// partition instead of Process per record. This is how per-partition
// aggregation (e.g. one gradient per training partition, as in MLlib's
// treeAggregate) is expressed.
type BundleDoFn interface {
	ProcessBundle(recs []data.Record, sides SideValues, emit Emit) error
}

// MapFunc adapts a 1:1 transformation to DoFn.
func MapFunc(f func(data.Record) data.Record) DoFn {
	return DoFunc(func(r data.Record, _ SideValues, emit Emit) error {
		emit(f(r))
		return nil
	})
}

// MultiDoFn consumes aligned partitions of several one-to-one inputs.
// Inputs arrive tagged: the main input under "" and extras under "in1",
// "in2", ... in declaration order.
type MultiDoFn interface {
	ProcessPartition(inputs map[string][]data.Record, emit Emit) error
}

// MultiDoFunc adapts a plain function to MultiDoFn.
type MultiDoFunc func(inputs map[string][]data.Record, emit Emit) error

// ProcessPartition implements MultiDoFn.
func (f MultiDoFunc) ProcessPartition(inputs map[string][]data.Record, emit Emit) error {
	return f(inputs, emit)
}

// CombineFn is a commutative, associative aggregation. The decomposition
// into accumulator operations is what enables the paper's partial
// aggregation optimization (§3.2.7): transient executors pre-merge the
// outputs of their local tasks, and reserved executors merge pushed
// accumulators on the fly, so only compact accumulators cross the network
// and reserved memory holds one accumulator per key.
type CombineFn interface {
	CreateAccumulator() any
	// AddInput folds one record's value into the accumulator and
	// returns the updated accumulator.
	AddInput(acc any, r data.Record) any
	// MergeAccumulators combines two accumulators; it may reuse either.
	MergeAccumulators(a, b any) any
	// ExtractOutput converts the final accumulator for key into the
	// output record. key is nil for global combines.
	ExtractOutput(key any, acc any) data.Record
}

// SumInt64Fn sums int64 values per key.
type SumInt64Fn struct{}

// CreateAccumulator implements CombineFn.
func (SumInt64Fn) CreateAccumulator() any { return int64(0) }

// AddInput implements CombineFn.
func (SumInt64Fn) AddInput(acc any, r data.Record) any { return acc.(int64) + r.Value.(int64) }

// MergeAccumulators implements CombineFn.
func (SumInt64Fn) MergeAccumulators(a, b any) any { return a.(int64) + b.(int64) }

// ExtractOutput implements CombineFn.
func (SumInt64Fn) ExtractOutput(key, acc any) data.Record {
	return data.Record{Key: key, Value: acc.(int64)}
}

// SumFloat64sFn sums float64 vectors elementwise (e.g. gradient
// aggregation). Accumulators are reused destructively.
type SumFloat64sFn struct{}

// CreateAccumulator implements CombineFn.
func (SumFloat64sFn) CreateAccumulator() any { return []float64(nil) }

// AddInput implements CombineFn.
func (SumFloat64sFn) AddInput(acc any, r data.Record) any {
	return addVec(acc.([]float64), r.Value.([]float64))
}

// MergeAccumulators implements CombineFn.
func (SumFloat64sFn) MergeAccumulators(a, b any) any {
	return addVec(a.([]float64), b.([]float64))
}

// ExtractOutput implements CombineFn.
func (SumFloat64sFn) ExtractOutput(key, acc any) data.Record {
	v := acc.([]float64)
	if v == nil {
		v = []float64{}
	}
	return data.Record{Key: key, Value: v}
}

func addVec(dst, src []float64) []float64 {
	if dst == nil {
		return append([]float64(nil), src...)
	}
	if len(src) != len(dst) {
		// Grow to the larger size; treats missing entries as zero.
		if len(src) > len(dst) {
			grown := make([]float64, len(src))
			copy(grown, dst)
			dst = grown
		}
	}
	for i := range src {
		dst[i] += src[i]
	}
	return dst
}

// GroupFn collects all values per key into a slice, i.e. a GroupByKey
// expressed as a CombineFn whose accumulator is the value list.
type GroupFn struct{}

// CreateAccumulator implements CombineFn.
func (GroupFn) CreateAccumulator() any { return []any(nil) }

// AddInput implements CombineFn.
func (GroupFn) AddInput(acc any, r data.Record) any { return append(acc.([]any), r.Value) }

// MergeAccumulators implements CombineFn.
func (GroupFn) MergeAccumulators(a, b any) any { return append(a.([]any), b.([]any)...) }

// ExtractOutput implements CombineFn.
func (GroupFn) ExtractOutput(key, acc any) data.Record {
	return data.Record{Key: key, Value: acc}
}
