// Package dataflow is the Beam-substitute programming model used to author
// Pado jobs (paper §4).
//
// A Pipeline builds a logical DAG of operators connected by the four
// dependency types the compiler understands:
//
//   - ParDo adds a one-to-one edge from its main input.
//   - Side inputs (broadcasts) add one-to-many edges.
//   - CombinePerKey adds a many-to-many edge (hash shuffle by key).
//   - CombineGlobally adds a many-to-one edge (global aggregation).
//
// Create sources are marked ISCREATED and Read sources ISREAD so operator
// placement (Algorithm 1) can treat them as the paper prescribes.
package dataflow

import (
	"fmt"

	"pado/internal/dag"
	"pado/internal/data"
)

// Pipeline accumulates a logical DAG.
type Pipeline struct {
	g *dag.Graph
}

// NewPipeline returns an empty pipeline.
func NewPipeline() *Pipeline {
	return &Pipeline{g: dag.New()}
}

// Graph exposes the underlying logical DAG for compilation.
func (p *Pipeline) Graph() *dag.Graph { return p.g }

// Collection is a distributed dataset: a handle to one vertex of the DAG.
type Collection struct {
	p     *Pipeline
	id    dag.VertexID
	coder data.Coder
}

// VertexID returns the DAG vertex backing this collection.
func (c Collection) VertexID() dag.VertexID { return c.id }

// Coder returns the record coder of the collection.
func (c Collection) Coder() data.Coder { return c.coder }

// Pipeline returns the owning pipeline.
func (c Collection) Pipeline() *Pipeline { return c.p }

// Create adds an in-memory source (ISCREATED; placed on reserved
// containers by Algorithm 1). The records are captured by value.
func (p *Pipeline) Create(name string, recs []data.Record, coder data.Coder) Collection {
	op := &CreateOp{Records: append([]data.Record(nil), recs...), Coder: coder}
	id := p.g.AddVertex(name, dag.KindSourceCreate, op)
	return Collection{p: p, id: id, coder: coder}
}

// Read adds a storage-backed source (ISREAD; placed on transient
// containers). The source's partition count determines the parallelism of
// everything downstream of one-to-one edges.
func (p *Pipeline) Read(name string, src Source, coder data.Coder) Collection {
	op := &ReadOp{Source: src, Coder: coder}
	id := p.g.AddVertex(name, dag.KindSourceRead, op)
	return Collection{p: p, id: id, coder: coder}
}

// Cached marks the collection's materialization as cacheable in executor
// memory. Only meaningful on Read sources, whose partitions may be
// re-read by several stages of an iterative job.
func (c Collection) Cached() Collection {
	if op, ok := c.p.g.Vertex(c.id).Op.(*ReadOp); ok {
		op.Cached = true
	}
	return c
}

// ReadCost declares the per-record cost of a Read source in CPU capacity
// tokens (external-storage input is not free; cascading recomputations
// that reach the source pay it again).
func (c Collection) ReadCost(tokensPerRecord int) Collection {
	if op, ok := c.p.g.Vertex(c.id).Op.(*ReadOp); ok {
		op.Cost = tokensPerRecord
	}
	return c
}

// SideInput declares a broadcast input for ParDo: the full contents of the
// collection are delivered to every task of the consuming operator via a
// one-to-many edge.
type SideInput struct {
	Name string
	From Collection
	// Cached asks the runtime to cache the materialized side input in
	// executor memory (paper §3.2.7, task input caching).
	Cached bool
}

// ParDoOpt configures a ParDo application.
type ParDoOpt func(*parDoCfg)

type parDoCfg struct {
	sides []SideInput
	cache bool
	cost  int
}

// WithSide attaches a broadcast side input.
func WithSide(s SideInput) ParDoOpt {
	return func(c *parDoCfg) { c.sides = append(c.sides, s) }
}

// WithInputCache asks the runtime to cache this operator's main input on
// the executors that run it, enabling cache-aware scheduling for
// iterative jobs.
func WithInputCache() ParDoOpt {
	return func(c *parDoCfg) { c.cache = true }
}

// WithCost declares the operator's CPU cost in capacity tokens per input
// record (default 1). Engines charge it against the executor's compute
// limiter, so expensive per-record math (e.g. ALS normal-equation
// solves) occupies simulated cores proportionally.
func WithCost(tokensPerRecord int) ParDoOpt {
	return func(c *parDoCfg) { c.cost = tokensPerRecord }
}

// ParDo applies fn to every record of c, emitting zero or more records per
// input (a one-to-one dependency).
func (c Collection) ParDo(name string, fn DoFn, out data.Coder, opts ...ParDoOpt) Collection {
	var cfg parDoCfg
	for _, o := range opts {
		o(&cfg)
	}
	op := &ParDoOp{Fn: fn, OutCoder: out, Sides: cfg.sides, CacheInput: cfg.cache, Cost: cfg.cost}
	id := c.p.g.AddVertex(name, dag.KindCompute, op)
	c.p.g.AddEdge(c.id, id, dag.OneToOne, "")
	for _, s := range cfg.sides {
		if s.From.p != c.p {
			panic(fmt.Sprintf("dataflow: side input %q comes from a different pipeline", s.Name))
		}
		c.p.g.AddEdge(s.From.id, id, dag.OneToMany, s.Name)
	}
	return Collection{p: c.p, id: id, coder: out}
}

// CombineOpt configures a combine application.
type CombineOpt func(*CombineOp)

// WithAccumulatorCoder supplies the (key, accumulator) coder that lets
// the Pado runtime ship partially aggregated accumulators across stage
// boundaries (§3.2.7).
func WithAccumulatorCoder(acc data.Coder) CombineOpt {
	return func(op *CombineOp) { op.AccCoder = acc }
}

// WithCombineCost declares the combine's CPU cost in capacity tokens per
// record (default 1).
func WithCombineCost(tokensPerRecord int) CombineOpt {
	return func(op *CombineOp) { op.Cost = tokensPerRecord }
}

// CombinePerKey groups records by key across all parent tasks (a
// many-to-many hash shuffle) and reduces each group with fn.
func (c Collection) CombinePerKey(name string, fn CombineFn, out data.Coder, opts ...CombineOpt) Collection {
	op := &CombineOp{Fn: fn, OutCoder: out, InCoder: c.coder, Global: false}
	for _, o := range opts {
		o(op)
	}
	id := c.p.g.AddVertex(name, dag.KindCompute, op)
	c.p.g.AddEdge(c.id, id, dag.ManyToMany, "")
	return Collection{p: c.p, id: id, coder: out}
}

// CombineGlobally aggregates all records of the collection into a single
// output (a many-to-one dependency; one task on the consuming side).
func (c Collection) CombineGlobally(name string, fn CombineFn, out data.Coder, opts ...CombineOpt) Collection {
	op := &CombineOp{Fn: fn, OutCoder: out, InCoder: c.coder, Global: true}
	for _, o := range opts {
		o(op)
	}
	id := c.p.g.AddVertex(name, dag.KindCompute, op)
	c.p.g.AddEdge(c.id, id, dag.ManyToOne, "")
	return Collection{p: c.p, id: id, coder: out}
}

// Apply adds a ParDo whose main input is this collection and which also
// consumes additional one-to-one inputs from other collections (e.g. a
// model-update operator reading both the aggregated gradient and the
// previous model). All inputs must have matching parallelism at run time.
func (c Collection) Apply(name string, fn MultiDoFn, out data.Coder, extra ...Collection) Collection {
	op := &MultiOp{Fn: fn, OutCoder: out, NumInputs: 1 + len(extra)}
	id := c.p.g.AddVertex(name, dag.KindCompute, op)
	c.p.g.AddEdge(c.id, id, dag.OneToOne, "")
	for i, x := range extra {
		if x.p != c.p {
			panic("dataflow: Apply input from a different pipeline")
		}
		c.p.g.AddEdge(x.id, id, dag.OneToOne, fmt.Sprintf("in%d", i+1))
	}
	return Collection{p: c.p, id: id, coder: out}
}
