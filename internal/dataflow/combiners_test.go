package dataflow

import (
	"math"
	"testing"
	"testing/quick"

	"pado/internal/data"
)

func foldKeyed(fn CombineFn, recs []data.Record) map[any]data.Record {
	accs := map[any]any{}
	for _, r := range recs {
		acc, ok := accs[r.Key]
		if !ok {
			acc = fn.CreateAccumulator()
		}
		accs[r.Key] = fn.AddInput(acc, r)
	}
	out := map[any]data.Record{}
	for k, acc := range accs {
		out[k] = fn.ExtractOutput(k, acc)
	}
	return out
}

func TestCountFn(t *testing.T) {
	out := foldKeyed(CountFn{}, []data.Record{
		data.KV("a", int64(5)), data.KV("a", int64(9)), data.KV("b", "anything"),
	})
	if out["a"].Value.(int64) != 2 || out["b"].Value.(int64) != 1 {
		t.Errorf("counts = %v", out)
	}
	var f CountFn
	if f.MergeAccumulators(int64(3), int64(4)).(int64) != 7 {
		t.Error("merge wrong")
	}
}

func TestMeanFn(t *testing.T) {
	out := foldKeyed(MeanFn{}, []data.Record{
		data.KV("a", 1.0), data.KV("a", 3.0), data.KV("b", int64(10)),
	})
	if out["a"].Value.(float64) != 2.0 || out["b"].Value.(float64) != 10.0 {
		t.Errorf("means = %v", out)
	}
	var f MeanFn
	if got := f.ExtractOutput("k", f.CreateAccumulator()).Value.(float64); got != 0 {
		t.Errorf("empty mean = %v", got)
	}
	// Merge equivalence property.
	err := quick.Check(func(xs []float64) bool {
		clean := xs[:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e12 {
				clean = append(clean, x)
			}
		}
		if len(clean) < 2 {
			return true
		}
		direct := f.CreateAccumulator()
		left, right := f.CreateAccumulator(), f.CreateAccumulator()
		for i, x := range clean {
			direct = f.AddInput(direct, data.KV("k", x))
			if i%2 == 0 {
				left = f.AddInput(left, data.KV("k", x))
			} else {
				right = f.AddInput(right, data.KV("k", x))
			}
		}
		a := f.ExtractOutput("k", direct).Value.(float64)
		b := f.ExtractOutput("k", f.MergeAccumulators(left, right)).Value.(float64)
		return math.Abs(a-b) <= 1e-9*(1+math.Abs(a))
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Error(err)
	}
}

func TestMinMaxFns(t *testing.T) {
	recs := []data.Record{
		data.KV("a", int64(5)), data.KV("a", int64(-2)), data.KV("a", int64(9)),
	}
	if got := foldKeyed(MinInt64Fn{}, recs)["a"].Value.(int64); got != -2 {
		t.Errorf("min = %d", got)
	}
	if got := foldKeyed(MaxInt64Fn{}, recs)["a"].Value.(int64); got != 9 {
		t.Errorf("max = %d", got)
	}
	var mn MinInt64Fn
	if mn.MergeAccumulators(nil, int64(3)).(int64) != 3 {
		t.Error("min merge with empty accumulator wrong")
	}
	var mx MaxInt64Fn
	if mx.MergeAccumulators(int64(3), nil).(int64) != 3 {
		t.Error("max merge with empty accumulator wrong")
	}
}

func TestFlattenBuildsMultiOp(t *testing.T) {
	kv := data.KVCoder{K: data.StringCoder, V: data.Int64Coder}
	p := NewPipeline()
	a := p.Read("a", &FuncSource{Partitions: 2}, kv)
	b := p.Read("b", &FuncSource{Partitions: 2}, kv)
	c := Flatten("union", a, b)
	g := p.Graph()
	in := g.InEdges(c.VertexID())
	if len(in) != 2 {
		t.Fatalf("flatten in-edges = %d", len(in))
	}
	for _, e := range in {
		if e.Dep.Wide() {
			t.Error("flatten should use narrow edges")
		}
	}
	// Semantics: concatenation.
	op := g.Vertex(c.VertexID()).Op.(*MultiOp)
	var out []data.Record
	op.Fn.ProcessPartition(map[string][]data.Record{
		"":    {data.KV("x", int64(1))},
		"in1": {data.KV("y", int64(2))},
	}, func(r data.Record) { out = append(out, r) })
	if len(out) != 2 || out[0].Key != "x" || out[1].Key != "y" {
		t.Errorf("flatten output = %v", out)
	}
}
