package dataflow

import (
	"fmt"

	"pado/internal/data"
)

// This file provides the library of common CombineFns beyond the sums in
// fns.go, plus the Flatten transform. All accumulators are encodable so
// the Pado runtime can partially aggregate them (§3.2.7).

// CountFn counts records per key. Accumulator: int64.
type CountFn struct{}

// CreateAccumulator implements CombineFn.
func (CountFn) CreateAccumulator() any { return int64(0) }

// AddInput implements CombineFn.
func (CountFn) AddInput(acc any, _ data.Record) any { return acc.(int64) + 1 }

// MergeAccumulators implements CombineFn.
func (CountFn) MergeAccumulators(a, b any) any { return a.(int64) + b.(int64) }

// ExtractOutput implements CombineFn.
func (CountFn) ExtractOutput(key, acc any) data.Record {
	return data.Record{Key: key, Value: acc.(int64)}
}

// MeanFn averages float64 values per key. Accumulator: []float64{sum, n},
// encodable with data.Float64sCoder.
type MeanFn struct{}

// CreateAccumulator implements CombineFn.
func (MeanFn) CreateAccumulator() any { return []float64{0, 0} }

// AddInput implements CombineFn.
func (MeanFn) AddInput(acc any, r data.Record) any {
	a := acc.([]float64)
	switch v := r.Value.(type) {
	case float64:
		a[0] += v
	case int64:
		a[0] += float64(v)
	default:
		panic(fmt.Sprintf("dataflow: MeanFn expects float64 or int64, got %T", r.Value))
	}
	a[1]++
	return a
}

// MergeAccumulators implements CombineFn.
func (MeanFn) MergeAccumulators(a, b any) any {
	av, bv := a.([]float64), b.([]float64)
	av[0] += bv[0]
	av[1] += bv[1]
	return av
}

// ExtractOutput implements CombineFn.
func (MeanFn) ExtractOutput(key, acc any) data.Record {
	a := acc.([]float64)
	if a[1] == 0 {
		return data.Record{Key: key, Value: 0.0}
	}
	return data.Record{Key: key, Value: a[0] / a[1]}
}

// MinInt64Fn keeps the minimum int64 value per key.
type MinInt64Fn struct{}

// CreateAccumulator implements CombineFn; the empty accumulator is nil
// and the first input replaces it.
func (MinInt64Fn) CreateAccumulator() any { return nil }

// AddInput implements CombineFn.
func (MinInt64Fn) AddInput(acc any, r data.Record) any {
	v := r.Value.(int64)
	if acc == nil {
		return v
	}
	if m := acc.(int64); m < v {
		return m
	}
	return v
}

// MergeAccumulators implements CombineFn.
func (MinInt64Fn) MergeAccumulators(a, b any) any {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	if a.(int64) < b.(int64) {
		return a
	}
	return b
}

// ExtractOutput implements CombineFn.
func (MinInt64Fn) ExtractOutput(key, acc any) data.Record {
	if acc == nil {
		return data.Record{Key: key, Value: int64(0)}
	}
	return data.Record{Key: key, Value: acc.(int64)}
}

// MaxInt64Fn keeps the maximum int64 value per key.
type MaxInt64Fn struct{}

// CreateAccumulator implements CombineFn.
func (MaxInt64Fn) CreateAccumulator() any { return nil }

// AddInput implements CombineFn.
func (MaxInt64Fn) AddInput(acc any, r data.Record) any {
	v := r.Value.(int64)
	if acc == nil {
		return v
	}
	if m := acc.(int64); m > v {
		return m
	}
	return v
}

// MergeAccumulators implements CombineFn.
func (MaxInt64Fn) MergeAccumulators(a, b any) any {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	if a.(int64) > b.(int64) {
		return a
	}
	return b
}

// ExtractOutput implements CombineFn.
func (MaxInt64Fn) ExtractOutput(key, acc any) data.Record {
	if acc == nil {
		return data.Record{Key: key, Value: int64(0)}
	}
	return data.Record{Key: key, Value: acc.(int64)}
}

// Flatten unions several collections with identical coders and (at run
// time) identical parallelism into one collection, element order within a
// partition following input declaration order.
func Flatten(name string, first Collection, rest ...Collection) Collection {
	fn := MultiDoFunc(func(inputs map[string][]data.Record, emit Emit) error {
		for _, r := range inputs[""] {
			emit(r)
		}
		for i := 1; i <= len(rest); i++ {
			for _, r := range inputs[fmt.Sprintf("in%d", i)] {
				emit(r)
			}
		}
		return nil
	})
	return first.Apply(name, fn, first.coder, rest...)
}
