// Package introspect is the runtime's live introspection plane: a
// small HTTP server exposing the resident JobManager's state while
// jobs run. Every surface the repo already has (obs traces,
// analyze.Report, padoreport) is post-hoc; this one answers "what is
// the service doing right now":
//
//	/metrics      Prometheus text: fleet counters/gauges/histograms,
//	              per-job registries labeled {job="<id>"}, per-node
//	              detector/slot samples
//	/state        full runtime.ManagerState snapshot (JSON)
//	/jobs         admitted jobs + admission queue (JSON)
//	/jobs/{id}    one job with per-stage detail (JSON)
//	/cluster      budget + per-node slots/assignments (JSON)
//	/detector     failure-detector and breaker view (JSON)
//	/events       live obs event stream (SSE), ?kinds= filterable
//	/debug/pprof  standard pprof handlers
//	/debug/stacks full goroutine dump (testutil.Watchdog's dumper)
//
// The plane follows the nil-Tracer discipline: a nil *Server is valid
// and every method is a no-op, so runs without -http carry zero
// overhead — no listener, no goroutines, no extra allocations.
package introspect

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"strings"
	"time"

	"pado/internal/metrics"
	"pado/internal/obs"
	"pado/internal/runtime"
	"pado/internal/testutil"
)

// Source is the introspection plane's view of a JobManager (the
// concrete *runtime.JobManager satisfies it; tests stub it).
type Source interface {
	// Inspect returns a consistent state snapshot built on the manager
	// event loop.
	Inspect(ctx context.Context) (*runtime.ManagerState, error)
	// Metrics returns the fleet-wide metrics registry.
	Metrics() *metrics.Job
}

// Options parameterizes Start.
type Options struct {
	// Addr is the listen address ("127.0.0.1:7777"; ":0" picks a free
	// port). Empty disables the plane: Start returns (nil, nil).
	Addr string
	// Manager is the inspected manager. Required when Addr is set.
	Manager Source
	// Tracer feeds /events; nil serves 503 there and leaves the rest of
	// the plane up.
	Tracer *obs.Tracer
	// InspectTimeout bounds each snapshot request against a wedged
	// manager loop. Default 5s.
	InspectTimeout time.Duration
}

// Server is a running introspection endpoint. A nil *Server is the
// disabled plane; Close and Addr are nil-safe no-ops.
type Server struct {
	opts Options
	ln   net.Listener
	srv  *http.Server
}

// Start binds the listener and begins serving. Empty Addr returns
// (nil, nil): the disabled plane.
func Start(opts Options) (*Server, error) {
	if opts.Addr == "" {
		return nil, nil
	}
	if opts.Manager == nil {
		return nil, fmt.Errorf("introspect: Options.Manager is required")
	}
	if opts.InspectTimeout <= 0 {
		opts.InspectTimeout = 5 * time.Second
	}
	ln, err := net.Listen("tcp", opts.Addr)
	if err != nil {
		return nil, fmt.Errorf("introspect: listen %s: %w", opts.Addr, err)
	}
	s := &Server{opts: opts, ln: ln}
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.handleIndex)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/state", s.handleState)
	mux.HandleFunc("/jobs", s.handleJobs)
	mux.HandleFunc("/jobs/", s.handleJob)
	mux.HandleFunc("/cluster", s.handleCluster)
	mux.HandleFunc("/detector", s.handleDetector)
	mux.HandleFunc("/events", s.handleEvents)
	mux.HandleFunc("/debug/stacks", s.handleStacks)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.srv = &http.Server{Handler: mux}
	go s.srv.Serve(ln) //nolint:errcheck // Serve returns ErrServerClosed on Close
	return s, nil
}

// Addr returns the bound listen address (resolving ":0" to the actual
// port). Nil-safe: the disabled plane reports "".
func (s *Server) Addr() string {
	if s == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close shuts the server down, closing the listener and any live
// connections (including open SSE streams). Nil-safe.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	err := s.srv.Shutdown(ctx)
	if err != nil {
		// SSE streams never go idle; force them down.
		err = s.srv.Close()
	}
	return err
}

// snapshot fetches one consistent manager snapshot, bounded by the
// inspect timeout and the client's disconnect.
func (s *Server) snapshot(r *http.Request) (*runtime.ManagerState, error) {
	ctx, cancel := context.WithTimeout(r.Context(), s.opts.InspectTimeout)
	defer cancel()
	return s.opts.Manager.Inspect(ctx)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client disconnects are not actionable
}

func httpErr(w http.ResponseWriter, code int, err error) {
	http.Error(w, err.Error(), code)
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	fmt.Fprint(w, `pado introspection plane
  /metrics       Prometheus text exposition
  /state         full manager snapshot (JSON)
  /jobs          admitted jobs + admission queue (JSON)
  /jobs/{id}     one job, per-stage detail (JSON)
  /cluster       budget + per-node slots (JSON)
  /detector      failure detector + breakers (JSON)
  /events        live event stream (SSE); ?kinds=task_launched,push_committed
  /debug/stacks  goroutine dump
  /debug/pprof/  pprof handlers
`)
}

// handleMetrics renders the Prometheus page: the fleet registry
// unlabeled, each job's registry under {job="<id>"}, and per-node
// samples derived from the same consistent snapshot.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	st, err := s.snapshot(r)
	if err != nil {
		httpErr(w, http.StatusServiceUnavailable, err)
		return
	}
	p := metrics.NewPromSet()
	p.Gather(s.opts.Manager.Metrics())
	for _, j := range st.Jobs {
		p.Gather(j.Registry, metrics.Label{Name: "job", Value: strconv.Itoa(j.ID)})
	}
	for _, n := range st.Nodes {
		lbl := []metrics.Label{{Name: "node", Value: n.ID}, {Name: "kind", Value: n.Kind}}
		suspect := int64(0)
		if n.Detector == "suspect" {
			suspect = 1
		}
		p.AddGauge("node_suspect", suspect, lbl...)
		p.AddGauge("node_slots_free", int64(n.SlotsFree), lbl...)
		p.AddGauge("node_running_tasks", int64(n.RunningTasks), lbl...)
	}
	for _, b := range st.Breakers {
		open := int64(0)
		if b.State != "closed" {
			open = 1
		}
		p.AddGauge("breaker_open", open, metrics.Label{Name: "dest", Value: b.Dest})
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	p.Write(w) //nolint:errcheck // client disconnects are not actionable
}

func (s *Server) handleState(w http.ResponseWriter, r *http.Request) {
	st, err := s.snapshot(r)
	if err != nil {
		httpErr(w, http.StatusServiceUnavailable, err)
		return
	}
	writeJSON(w, st)
}

// jobSummary is /jobs' per-job row: everything but the stage detail.
type jobSummary struct {
	ID             int           `json:"id"`
	Name           string        `json:"name"`
	Policy         string        `json:"policy"`
	Weight         float64       `json:"weight"`
	Deficit        float64       `json:"deficit"`
	RunningFor     time.Duration `json:"running_for_ns"`
	Finished       bool          `json:"finished"`
	Stages         int           `json:"stages"`
	StagesDone     int           `json:"stages_done"`
	TasksRunning   int           `json:"tasks_running"`
	TasksCommitted int           `json:"tasks_committed"`
	TasksTotal     int           `json:"tasks_total"`
}

func summarize(j runtime.JobState) jobSummary {
	sum := jobSummary{
		ID: j.ID, Name: j.Name, Policy: j.Policy, Weight: j.Weight,
		Deficit: j.Deficit, RunningFor: j.RunningFor, Finished: j.Finished,
		Stages:       len(j.Stages),
		TasksRunning: j.TasksRunning, TasksCommitted: j.TasksCommitted,
	}
	for _, st := range j.Stages {
		if st.Status == "done" {
			sum.StagesDone++
		}
		sum.TasksTotal += st.TasksTotal
	}
	return sum
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	st, err := s.snapshot(r)
	if err != nil {
		httpErr(w, http.StatusServiceUnavailable, err)
		return
	}
	out := struct {
		TakenAt time.Time           `json:"taken_at"`
		Jobs    []jobSummary        `json:"jobs"`
		Queue   []runtime.QueuedJob `json:"queue"`
	}{TakenAt: st.TakenAt, Jobs: []jobSummary{}, Queue: st.Queue}
	if out.Queue == nil {
		out.Queue = []runtime.QueuedJob{}
	}
	for _, j := range st.Jobs {
		out.Jobs = append(out.Jobs, summarize(j))
	}
	writeJSON(w, out)
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	idStr := strings.TrimPrefix(r.URL.Path, "/jobs/")
	id, err := strconv.Atoi(idStr)
	if err != nil {
		httpErr(w, http.StatusBadRequest, fmt.Errorf("bad job id %q", idStr))
		return
	}
	st, err := s.snapshot(r)
	if err != nil {
		httpErr(w, http.StatusServiceUnavailable, err)
		return
	}
	for _, j := range st.Jobs {
		if j.ID == id {
			writeJSON(w, j)
			return
		}
	}
	httpErr(w, http.StatusNotFound, fmt.Errorf("job %d not admitted (finished, queued, or unknown)", id))
}

func (s *Server) handleCluster(w http.ResponseWriter, r *http.Request) {
	st, err := s.snapshot(r)
	if err != nil {
		httpErr(w, http.StatusServiceUnavailable, err)
		return
	}
	out := struct {
		TakenAt     time.Time           `json:"taken_at"`
		BudgetTotal int                 `json:"budget_total"`
		BudgetFree  int                 `json:"budget_free"`
		Broken      string              `json:"broken,omitempty"`
		Nodes       []runtime.NodeState `json:"nodes"`
	}{st.TakenAt, st.BudgetTotal, st.BudgetFree, st.Broken, st.Nodes}
	if out.Nodes == nil {
		out.Nodes = []runtime.NodeState{}
	}
	writeJSON(w, out)
}

func (s *Server) handleDetector(w http.ResponseWriter, r *http.Request) {
	st, err := s.snapshot(r)
	if err != nil {
		httpErr(w, http.StatusServiceUnavailable, err)
		return
	}
	type nodeView struct {
		ID           string        `json:"id"`
		Kind         string        `json:"kind"`
		Detector     string        `json:"detector"`
		LastBeatAge  time.Duration `json:"last_beat_age_ns"`
		ReportedOpen []string      `json:"reported_open,omitempty"`
	}
	out := struct {
		TakenAt  time.Time              `json:"taken_at"`
		Enabled  bool                   `json:"enabled"`
		Nodes    []nodeView             `json:"nodes"`
		Breakers []runtime.BreakerState `json:"breakers"`
	}{TakenAt: st.TakenAt, Nodes: []nodeView{}, Breakers: st.Breakers}
	if out.Breakers == nil {
		out.Breakers = []runtime.BreakerState{}
	}
	for _, n := range st.Nodes {
		if n.Detector == "" {
			continue
		}
		out.Enabled = true
		out.Nodes = append(out.Nodes, nodeView{
			ID: n.ID, Kind: n.Kind, Detector: n.Detector,
			LastBeatAge: n.LastBeatAge, ReportedOpen: n.ReportedOpen,
		})
	}
	writeJSON(w, out)
}

// handleEvents streams live obs events as Server-Sent Events off the
// tracer's fan-out. ?kinds=task_launched,push_committed filters; the
// subscriber's bounded buffer means a slow client drops events (the
// stream reports the running drop count in keepalive comments) and
// never stalls emitters.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	tr := s.opts.Tracer
	if tr == nil {
		httpErr(w, http.StatusServiceUnavailable, fmt.Errorf("tracing disabled: no event stream"))
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		httpErr(w, http.StatusInternalServerError, fmt.Errorf("streaming unsupported"))
		return
	}
	var kinds []obs.Kind
	if q := r.URL.Query().Get("kinds"); q != "" {
		for _, name := range strings.Split(q, ",") {
			k, ok := obs.ParseKind(strings.TrimSpace(name))
			if !ok {
				httpErr(w, http.StatusBadRequest, fmt.Errorf("unknown event kind %q", name))
				return
			}
			kinds = append(kinds, k)
		}
	}
	sub := tr.Subscribe(1024, kinds...)
	defer sub.Close()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fmt.Fprintf(w, ": pado event stream\n\n")
	fl.Flush()

	keepalive := time.NewTicker(5 * time.Second)
	defer keepalive.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-keepalive.C:
			fmt.Fprintf(w, ": keepalive dropped=%d\n\n", sub.Dropped())
			fl.Flush()
		case ev := <-sub.C():
			data, err := json.Marshal(sseEvent(ev))
			if err != nil {
				continue
			}
			fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Kind, data)
			fl.Flush()
		}
	}
}

// sseEvent is the JSON projection of one obs.Event: kind as its
// string name, zero-valued fields elided.
func sseEvent(ev obs.Event) map[string]any {
	m := map[string]any{
		"t_ns": int64(ev.T),
		"kind": ev.Kind.String(),
	}
	if ev.Job != 0 {
		m["job"] = ev.Job
	}
	if ev.Stage != 0 {
		m["stage"] = ev.Stage
	}
	if ev.Frag != 0 {
		m["frag"] = ev.Frag
	}
	if ev.Task != 0 {
		m["task"] = ev.Task
	}
	if ev.Attempt != 0 {
		m["attempt"] = ev.Attempt
	}
	if ev.Exec != "" {
		m["exec"] = ev.Exec
	}
	if ev.Bytes != 0 {
		m["bytes"] = ev.Bytes
	}
	if ev.Note != "" {
		m["note"] = ev.Note
	}
	return m
}

func (s *Server) handleStacks(w http.ResponseWriter, r *http.Request) {
	debug := 2
	if d := r.URL.Query().Get("debug"); d != "" {
		if v, err := strconv.Atoi(d); err == nil {
			debug = v
		}
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	testutil.DumpGoroutines(w, debug) //nolint:errcheck // best-effort dump
}

// Kinds returns every obs event kind name, sorted — /events' filter
// vocabulary, used by padotop's usage text.
func Kinds() []string {
	var out []string
	for k := obs.Kind(1); ; k++ {
		name := k.String()
		if name == "unknown" {
			break
		}
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
