package introspect

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"pado/internal/metrics"
	"pado/internal/obs"
	"pado/internal/runtime"
)

// stubSource serves a canned snapshot — the handlers' rendering logic
// is what's under test, not the manager.
type stubSource struct {
	st  *runtime.ManagerState
	met *metrics.Job
	err error
}

func (s *stubSource) Inspect(ctx context.Context) (*runtime.ManagerState, error) {
	if s.err != nil {
		return nil, s.err
	}
	return s.st, s.err
}

func (s *stubSource) Metrics() *metrics.Job { return s.met }

func testSnapshot() (*runtime.ManagerState, *metrics.Job) {
	fleet := &metrics.Job{}
	fleet.Counter("jobs_completed").Add(3)
	fleet.Gauge(metrics.GaugeJobsRunning).Set(2)
	fleet.Histogram("admission_wait_ns").Observe(1500)

	jobReg := &metrics.Job{}
	jobReg.Counter("tasks_launched").Add(7)
	jobReg.Histogram("task_compute_ns").Observe(2048)

	return &runtime.ManagerState{
		Version:     runtime.InspectVersion,
		TakenAt:     time.Unix(100, 0),
		BudgetTotal: 4,
		BudgetFree:  1,
		Jobs: []runtime.JobState{{
			ID: 1, Name: "wordcount", Policy: "wfs", Weight: 2,
			RunningFor: 5 * time.Second,
			Stages: []runtime.StageState{
				{ID: 0, Status: "done", TasksTotal: 4, TasksCommitted: 4},
				{ID: 1, Status: "running", TasksTotal: 4, TasksRunning: 2, TasksWaiting: 2},
			},
			TasksRunning: 2, TasksCommitted: 4,
			Registry: jobReg,
		}},
		Queue: []runtime.QueuedJob{{ID: 2, Name: "mlr", Priority: 1, Demand: 3, Position: 0}},
		Nodes: []runtime.NodeState{
			{ID: "t1", Kind: "transient", SlotsFree: 2, RunningTasks: 2, Detector: "alive"},
			{ID: "r1", Kind: "reserved", SlotsFree: 4, Detector: "suspect",
				LastBeatAge: 300 * time.Millisecond, ReportedOpen: []string{"t9"}},
		},
		Breakers: []runtime.BreakerState{
			{Dest: "t9", State: "open", Fails: 5, RetryBudget: 0.5},
		},
	}, fleet
}

func startTestServer(t *testing.T, tr *obs.Tracer) (*Server, *stubSource) {
	t.Helper()
	st, fleet := testSnapshot()
	src := &stubSource{st: st, met: fleet}
	s, err := Start(Options{Addr: "127.0.0.1:0", Manager: src, Tracer: tr})
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s, src
}

func get(t *testing.T, s *Server, path string) (int, string) {
	t.Helper()
	resp, err := http.Get("http://" + s.Addr() + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s read: %v", path, err)
	}
	return resp.StatusCode, string(body)
}

func TestDisabledPlane(t *testing.T) {
	s, err := Start(Options{})
	if err != nil {
		t.Fatalf("Start with empty Addr: %v", err)
	}
	if s != nil {
		t.Fatalf("Start with empty Addr returned a server")
	}
	// The nil server must be inert, not a crash.
	if got := s.Addr(); got != "" {
		t.Errorf("nil Addr() = %q", got)
	}
	if err := s.Close(); err != nil {
		t.Errorf("nil Close() = %v", err)
	}
}

func TestStartRequiresManager(t *testing.T) {
	if _, err := Start(Options{Addr: "127.0.0.1:0"}); err == nil {
		t.Fatalf("Start without Manager succeeded")
	}
}

func TestMetricsEndpoint(t *testing.T) {
	s, _ := startTestServer(t, nil)
	code, body := get(t, s, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d: %s", code, body)
	}
	for _, want := range []string{
		`pado_jobs_completed_total 3`,
		`pado_jobs_running 2`,
		`pado_tasks_launched_total{job="1"} 7`,
		`pado_task_compute_ns_count{job="1"} 1`,
		`pado_node_suspect{node="r1",kind="reserved"} 1`,
		`pado_node_suspect{node="t1",kind="transient"} 0`,
		`pado_breaker_open{dest="t9"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q\npage:\n%s", want, body)
		}
	}
	if err := metrics.LintPrometheus(strings.NewReader(body)); err != nil {
		t.Errorf("/metrics page fails lint: %v\npage:\n%s", err, body)
	}
}

func TestJobsEndpoints(t *testing.T) {
	s, _ := startTestServer(t, nil)

	code, body := get(t, s, "/jobs")
	if code != http.StatusOK {
		t.Fatalf("/jobs = %d: %s", code, body)
	}
	var jobs struct {
		Jobs []struct {
			ID         int    `json:"id"`
			Name       string `json:"name"`
			Stages     int    `json:"stages"`
			StagesDone int    `json:"stages_done"`
			TasksTotal int    `json:"tasks_total"`
		} `json:"jobs"`
		Queue []runtime.QueuedJob `json:"queue"`
	}
	if err := json.Unmarshal([]byte(body), &jobs); err != nil {
		t.Fatalf("/jobs decode: %v\n%s", err, body)
	}
	if len(jobs.Jobs) != 1 || len(jobs.Queue) != 1 {
		t.Fatalf("/jobs = %d jobs, %d queued; want 1, 1", len(jobs.Jobs), len(jobs.Queue))
	}
	j := jobs.Jobs[0]
	if j.ID != 1 || j.Name != "wordcount" || j.Stages != 2 || j.StagesDone != 1 || j.TasksTotal != 8 {
		t.Errorf("/jobs summary wrong: %+v", j)
	}

	code, body = get(t, s, "/jobs/1")
	if code != http.StatusOK {
		t.Fatalf("/jobs/1 = %d: %s", code, body)
	}
	var full runtime.JobState
	if err := json.Unmarshal([]byte(body), &full); err != nil {
		t.Fatalf("/jobs/1 decode: %v", err)
	}
	if len(full.Stages) != 2 || full.Stages[1].Status != "running" {
		t.Errorf("/jobs/1 stage detail wrong: %+v", full.Stages)
	}

	if code, _ := get(t, s, "/jobs/99"); code != http.StatusNotFound {
		t.Errorf("/jobs/99 = %d, want 404", code)
	}
	if code, _ := get(t, s, "/jobs/abc"); code != http.StatusBadRequest {
		t.Errorf("/jobs/abc = %d, want 400", code)
	}
}

func TestClusterDetectorState(t *testing.T) {
	s, _ := startTestServer(t, nil)

	code, body := get(t, s, "/cluster")
	if code != http.StatusOK {
		t.Fatalf("/cluster = %d", code)
	}
	var cl struct {
		BudgetTotal int                 `json:"budget_total"`
		BudgetFree  int                 `json:"budget_free"`
		Nodes       []runtime.NodeState `json:"nodes"`
	}
	if err := json.Unmarshal([]byte(body), &cl); err != nil {
		t.Fatalf("/cluster decode: %v", err)
	}
	if cl.BudgetTotal != 4 || cl.BudgetFree != 1 || len(cl.Nodes) != 2 {
		t.Errorf("/cluster wrong: %+v", cl)
	}

	code, body = get(t, s, "/detector")
	if code != http.StatusOK {
		t.Fatalf("/detector = %d", code)
	}
	var det struct {
		Enabled bool `json:"enabled"`
		Nodes   []struct {
			ID       string `json:"id"`
			Detector string `json:"detector"`
		} `json:"nodes"`
		Breakers []runtime.BreakerState `json:"breakers"`
	}
	if err := json.Unmarshal([]byte(body), &det); err != nil {
		t.Fatalf("/detector decode: %v", err)
	}
	if !det.Enabled || len(det.Nodes) != 2 || len(det.Breakers) != 1 {
		t.Errorf("/detector wrong: %+v", det)
	}

	code, body = get(t, s, "/state")
	if code != http.StatusOK {
		t.Fatalf("/state = %d", code)
	}
	var full runtime.ManagerState
	if err := json.Unmarshal([]byte(body), &full); err != nil {
		t.Fatalf("/state decode: %v", err)
	}
	if full.Version != runtime.InspectVersion || len(full.Jobs) != 1 {
		t.Errorf("/state wrong: version=%d jobs=%d", full.Version, len(full.Jobs))
	}
}

func TestInspectErrorBecomes503(t *testing.T) {
	s, src := startTestServer(t, nil)
	src.err = fmt.Errorf("manager wedged")
	for _, path := range []string{"/metrics", "/state", "/jobs", "/jobs/1", "/cluster", "/detector"} {
		if code, _ := get(t, s, path); code != http.StatusServiceUnavailable {
			t.Errorf("%s with failing Inspect = %d, want 503", path, code)
		}
	}
}

func TestEventsStream(t *testing.T) {
	tr := obs.New()
	s, _ := startTestServer(t, tr)
	b := tr.Buf()

	resp, err := http.Get("http://" + s.Addr() + "/events?kinds=task_launched")
	if err != nil {
		t.Fatalf("GET /events: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/events = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("/events Content-Type = %q", ct)
	}

	// The subscriber attaches before the handler writes its opening
	// comment, but give the HTTP round-trip a beat anyway, then emit a
	// matching and a filtered-out event.
	deadline := time.After(5 * time.Second)
	sc := bufio.NewScanner(resp.Body)
	lines := make(chan string)
	go func() {
		for sc.Scan() {
			lines <- sc.Text()
		}
		close(lines)
	}()

	// First frame is the opening comment; wait for it so we know the
	// subscriber is registered before emitting.
	for {
		select {
		case ln := <-lines:
			if strings.HasPrefix(ln, ":") {
				goto subscribed
			}
		case <-deadline:
			t.Fatalf("no opening SSE comment")
		}
	}
subscribed:
	b.Emit(obs.Event{Kind: obs.FetchDone, Task: 9}) // filtered out
	b.Emit(obs.Event{Kind: obs.TaskLaunched, Job: 1, Task: 3, Exec: "t1/0"})

	var eventLine, dataLine string
	for eventLine == "" || dataLine == "" {
		select {
		case ln, ok := <-lines:
			if !ok {
				t.Fatalf("stream closed early (event=%q data=%q)", eventLine, dataLine)
			}
			switch {
			case strings.HasPrefix(ln, "event: "):
				eventLine = ln
			case strings.HasPrefix(ln, "data: "):
				dataLine = ln
			}
		case <-deadline:
			t.Fatalf("no event received (event=%q data=%q)", eventLine, dataLine)
		}
	}
	if eventLine != "event: task_launched" {
		t.Errorf("event line = %q (fetch_done should have been filtered)", eventLine)
	}
	var ev struct {
		Kind string `json:"kind"`
		Job  int    `json:"job"`
		Task int    `json:"task"`
		Exec string `json:"exec"`
	}
	if err := json.Unmarshal([]byte(strings.TrimPrefix(dataLine, "data: ")), &ev); err != nil {
		t.Fatalf("data decode: %v (%q)", err, dataLine)
	}
	if ev.Kind != "task_launched" || ev.Job != 1 || ev.Task != 3 || ev.Exec != "t1/0" {
		t.Errorf("event payload wrong: %+v", ev)
	}
}

func TestEventsBadKindAndNilTracer(t *testing.T) {
	tr := obs.New()
	s, _ := startTestServer(t, tr)
	if code, body := get(t, s, "/events?kinds=nope"); code != http.StatusBadRequest {
		t.Errorf("/events?kinds=nope = %d: %s", code, body)
	}

	s2, _ := startTestServer(t, nil)
	if code, _ := get(t, s2, "/events"); code != http.StatusServiceUnavailable {
		t.Errorf("/events with nil tracer = %d, want 503", code)
	}
}

func TestStacksAndIndex(t *testing.T) {
	s, _ := startTestServer(t, nil)
	code, body := get(t, s, "/debug/stacks")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/stacks = %d, body %.60q", code, body)
	}
	code, body = get(t, s, "/")
	if code != http.StatusOK || !strings.Contains(body, "/metrics") {
		t.Errorf("/ = %d, body %.60q", code, body)
	}
	if code, _ := get(t, s, "/nope"); code != http.StatusNotFound {
		t.Errorf("/nope = %d, want 404", code)
	}
}

func TestKindsListsVocabulary(t *testing.T) {
	ks := Kinds()
	if len(ks) == 0 {
		t.Fatalf("Kinds() empty")
	}
	found := false
	for _, k := range ks {
		if k == "task_launched" {
			found = true
		}
	}
	if !found {
		t.Errorf("Kinds() missing task_launched: %v", ks)
	}
}
