package runtime

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"pado/internal/data"
	"pado/internal/metrics"
	"pado/internal/simnet"
	"pado/internal/storage"
)

// connPool reuses simnet connections across data-plane operations issued
// from one node. Every push, fetch, store, and result frame used to dial
// a fresh connection; since the receive side (handleConn, the master
// collector) already loops over framed operations on a single connection,
// the send side can keep a connection per destination open and multiplex
// sequential request/response rounds over it with no protocol change.
//
// Entries are invalidated whenever an operation fails with a transport
// error or the conn's peer is observed down (Conn.Alive), so an eviction
// at worst costs the in-flight operation — exactly as it did with
// per-operation dials. The dials/reuses counter pair feeds the metrics
// registry (and thus padoreport), making reuse rates observable.
type connPool struct {
	net  *simnet.Network
	from string
	met  *metrics.Job
	// pol, when non-nil, layers the unified RPC policy (per-op
	// deadlines, budgeted backoff retries, per-destination circuit
	// breakers) over the pool's bare reuse-retry. Set once right after
	// construction, before the pool is shared.
	pol *rpcPolicy

	mu     sync.Mutex
	idle   map[string][]*poolConn
	closed bool
}

// opFunc is one request/response round against a pooled connection.
type opFunc func(e *data.Encoder, d *data.Decoder) error

// poolConn is one pooled connection with its codec state. The Encoder and
// Decoder must live as long as the conn: both buffer, so rebuilding them
// per operation could strand bytes of an earlier response.
type poolConn struct {
	c *simnet.Conn
	e *data.Encoder
	d *data.Decoder
	// reused marks a checkout that came from the idle list rather than a
	// fresh dial; operations failing on a reused conn are retried once on
	// a fresh one (the pooled conn may have gone stale while idle).
	reused bool
}

// maxIdlePerDest bounds the idle list per destination. Concurrent fan-out
// from one executor rarely needs more parallel streams per peer than it
// has task slots; excess conns returned beyond the cap are closed.
const maxIdlePerDest = 8

func newConnPool(net *simnet.Network, from string, met *metrics.Job) *connPool {
	return &connPool{net: net, from: from, met: met, idle: make(map[string][]*poolConn)}
}

// get checks out a connection to dest, reusing an idle one when a live
// candidate exists and dialing otherwise.
func (p *connPool) get(to string) (*poolConn, error) {
	p.mu.Lock()
	for {
		list := p.idle[to]
		if len(list) == 0 {
			break
		}
		pc := list[len(list)-1]
		p.idle[to] = list[:len(list)-1]
		if !pc.c.Alive() {
			pc.c.Close()
			continue
		}
		p.mu.Unlock()
		pc.reused = true
		p.met.Counter(metrics.NameConnReuses).Add(1)
		return pc, nil
	}
	p.mu.Unlock()
	return p.dial(to)
}

// dial opens a fresh connection to dest, bypassing the idle list.
func (p *connPool) dial(to string) (*poolConn, error) {
	conn, err := p.net.Dial(p.from, to)
	if err != nil {
		return nil, err
	}
	p.met.Counter(metrics.NameConnDials).Add(1)
	return &poolConn{c: conn, e: data.NewEncoder(conn), d: data.NewDecoder(conn)}, nil
}

// put returns a healthy connection to the idle list; dead conns and
// overflow beyond maxIdlePerDest are closed instead.
func (p *connPool) put(pc *poolConn) {
	if !pc.c.Alive() {
		pc.c.Close()
		return
	}
	pc.reused = false
	to := pc.c.RemoteID()
	p.mu.Lock()
	if p.closed || len(p.idle[to]) >= maxIdlePerDest {
		p.mu.Unlock()
		pc.c.Close()
		return
	}
	p.idle[to] = append(p.idle[to], pc)
	p.mu.Unlock()
}

// discard invalidates a connection after a transport error.
func (p *connPool) discard(pc *poolConn) { pc.c.Close() }

// closeAll drains and closes every idle connection and marks the pool
// closed; later put calls close their conns instead of pooling them.
func (p *connPool) closeAll() {
	p.mu.Lock()
	idle := p.idle
	p.idle = make(map[string][]*poolConn)
	p.closed = true
	p.mu.Unlock()
	for _, list := range idle {
		for _, pc := range list {
			pc.c.Close()
		}
	}
}

// isProtocolErr reports errors that are negative responses from a healthy
// peer (respNo) rather than transport failures: the connection is still
// usable and retrying would only repeat the answer. storage.ErrNotFound is
// in the set so commit-store misses — a routine answer during incremental
// probing — keep their connections pooled instead of tripping breakers.
func isProtocolErr(err error) bool {
	return errorsIs(err, errPushRejected) || errorsIs(err, errBlockNotFound) ||
		errorsIs(err, storage.ErrNotFound{})
}

// Do implements storage.Transport, so storage clients (checkpoint blocks,
// commit-store chunks and manifests) ride the pooled, policy-wrapped
// connection fabric instead of dialing fresh simnet streams per operation.
func (p *connPool) Do(op, to string, fn func(e *data.Encoder, d *data.Decoder) error) error {
	return p.doOp(op, to, opFunc(fn))
}

// do runs one request/response operation against dest under the generic
// op label; wire helpers use doOp with their own label so the policy can
// account retries by cause.
func (p *connPool) do(to string, op opFunc) error {
	return p.doOp("rpc", to, op)
}

// doOp runs one named request/response operation against dest. With a
// policy installed the operation gets the full deadline/backoff/budget/
// breaker treatment; otherwise it degenerates to the bare pool attempt.
// Every extra attempt the policy adds is safe for the same reason the
// pool's reuse-retry is: pushes are deduplicated by receivers via
// Cover/attempt tracking, result frames by the master's task state, and
// fetches and stores are idempotent — so exactly-once output commit is
// preserved under arbitrary retrying.
func (p *connPool) doOp(op, to string, fn opFunc) error {
	if p.pol == nil {
		return p.tryOnce(to, fn, 0)
	}
	return p.pol.run(p, op, to, fn)
}

// tryOnce is one pool-level attempt: an operation that fails with a
// transport error on a REUSED connection is retried exactly once on a
// freshly dialed one — the pooled conn's peer may have gone down and
// been replaced while the conn sat idle, which per-operation dialing
// never observed. Failures on fresh connections propagate unchanged,
// preserving pre-pool error semantics. A positive deadline bounds each
// invocation of fn (see runWithDeadline).
func (p *connPool) tryOnce(to string, fn opFunc, deadline time.Duration) error {
	pc, err := p.get(to)
	if err != nil {
		return err
	}
	err = runWithDeadline(pc, deadline, fn)
	if err == nil || isProtocolErr(err) {
		p.put(pc)
		return err
	}
	reused := pc.reused
	p.discard(pc)
	if !reused {
		return err
	}
	if pc, err = p.dial(to); err != nil {
		return err
	}
	err = runWithDeadline(pc, deadline, fn)
	if err == nil || isProtocolErr(err) {
		p.put(pc)
		return err
	}
	p.discard(pc)
	return err
}

// runWithDeadline bounds one operation invocation. simnet conns have no
// native read/write deadlines (they are pipe-based), so the watchdog
// closes the connection when the deadline fires: blocked pipe reads and
// writes unwind with ErrConnClosed, which is rewritten to errRPCDeadline
// so the policy can count deadline hits distinctly. The conn is dead
// either way — tryOnce discards it on any transport error.
func runWithDeadline(pc *poolConn, d time.Duration, fn opFunc) error {
	if d <= 0 {
		return fn(pc.e, pc.d)
	}
	var timedOut atomic.Bool
	watchdog := time.AfterFunc(d, func() {
		timedOut.Store(true)
		pc.c.Close()
	})
	err := fn(pc.e, pc.d)
	watchdog.Stop()
	if err != nil && timedOut.Load() {
		return fmt.Errorf("op to %s after %v: %w", pc.c.RemoteID(), d, errRPCDeadline)
	}
	return err
}
