package runtime

// Incremental scheduling state. The legacy scheduler rescanned every
// job × stage × fragment × task on every master event; the structures
// here make each event's scheduling cost proportional to what the event
// changed instead (DESIGN.md §13):
//
//   - jobRun.runnable is a two-level bitset over the job's dense task
//     index. A bit is set exactly when its task is tWaiting inside an
//     sRunning stage — the condition the old per-round queue rebuild
//     tested for every task. Tasks enter on stage start and requeue,
//     and leave on launch or stage reset, so assignTasks iterates only
//     launchable work, in the same (stage, fragment, task) order the
//     rescan produced.
//   - jobRun.waitParents counts each pending stage's unfinished
//     parents; jobRun.readyStages holds the pending stages whose count
//     is zero. Stage completion decrements its children (O(children));
//     stage reset recomputes the one affected counter (O(parents)).
//   - JobManager.freeSlots tracks free slots per container kind so a
//     saturated fleet is detected in O(1) instead of a full
//     round-robin pool scan per task.
//
// The structures are bookkeeping only: every scheduling decision still
// reads the same underlying state (task states, stage statuses,
// slotsFree, the rr cursors) in the same order, and the legacy-oracle
// equivalence tests (sched_oracle_test.go) hold launch logs
// byte-identical against the pre-refactor scheduler.

import "math/bits"

const bitsetShift = 6 // 64-bit words

// taskBitset is a two-level bitset with a popcount-maintained size: a
// summary word tracks which base words are non-empty, so next() skips
// runs of empty words 64 at a time and an idle 100k-task job costs a
// handful of word reads per scheduling pass.
type taskBitset struct {
	words   []uint64
	summary []uint64 // bit w set ⟺ words[w] != 0
	n       int      // number of set bits
}

// reset sizes the bitset for `size` bits and clears it.
func (b *taskBitset) reset(size int) {
	nw := (size + 63) >> bitsetShift
	ns := (nw + 63) >> bitsetShift
	b.words = make([]uint64, nw)
	b.summary = make([]uint64, ns)
	b.n = 0
}

func (b *taskBitset) empty() bool { return b.n == 0 }

func (b *taskBitset) set(i int) {
	w := i >> bitsetShift
	mask := uint64(1) << (uint(i) & 63)
	if b.words[w]&mask != 0 {
		return
	}
	b.words[w] |= mask
	b.summary[w>>bitsetShift] |= 1 << (uint(w) & 63)
	b.n++
}

func (b *taskBitset) clear(i int) {
	w := i >> bitsetShift
	mask := uint64(1) << (uint(i) & 63)
	if b.words[w]&mask == 0 {
		return
	}
	b.words[w] &^= mask
	if b.words[w] == 0 {
		b.summary[w>>bitsetShift] &^= 1 << (uint(w) & 63)
	}
	b.n--
}

// setRange sets bits [lo, hi).
func (b *taskBitset) setRange(lo, hi int) {
	for i := lo; i < hi; i++ {
		b.set(i)
	}
}

// clearRange clears bits [lo, hi).
func (b *taskBitset) clearRange(lo, hi int) {
	for i := lo; i < hi; i++ {
		b.clear(i)
	}
}

// next returns the smallest set bit ≥ from, or -1.
func (b *taskBitset) next(from int) int {
	if from < 0 {
		from = 0
	}
	w := from >> bitsetShift
	if w >= len(b.words) {
		return -1
	}
	// Tail of the word containing `from`.
	if rem := b.words[w] >> (uint(from) & 63); rem != 0 {
		return from + bits.TrailingZeros64(rem)
	}
	// Jump via the summary level.
	w++
	sw := w >> bitsetShift
	if sw < len(b.summary) {
		if rem := b.summary[sw] >> (uint(w) & 63); rem != 0 {
			w += bits.TrailingZeros64(rem)
			return w<<bitsetShift + bits.TrailingZeros64(b.words[w])
		}
		sw++
	}
	for ; sw < len(b.summary); sw++ {
		if s := b.summary[sw]; s != 0 {
			w = sw<<bitsetShift + bits.TrailingZeros64(s)
			return w<<bitsetShift + bits.TrailingZeros64(b.words[w])
		}
	}
	return -1
}

// initSched lays out the job's dense task index (stage-major, fragment
// order, matching the legacy rescan order exactly) and primes the
// stage-readiness counters. Called once at submission; the plan's stage
// and fragment shape is immutable afterwards.
func (j *jobRun) initSched() {
	base := 0
	for _, s := range j.stages {
		s.denseBase = base
		s.fragOff = make([]int, len(s.ps.Fragments))
		off := 0
		for i, f := range s.ps.Fragments {
			s.fragOff[i] = off
			off += f.Parallelism
		}
		s.nTasks = off
		base += off
	}
	j.runnable.reset(base)
	j.readyStages.reset(len(j.stages))
	j.waitParents = make([]int, len(j.stages))
	for i, s := range j.stages {
		j.waitParents[i] = len(s.ps.Parents) // Parents are deduplicated by the planner
		if j.waitParents[i] == 0 {
			j.readyStages.set(i)
		}
	}
}

// denseIdx maps one fragment task to the job-wide dense index.
func (s *stageRun) denseIdx(fi, ti int) int {
	return s.denseBase + s.fragOff[fi] + ti
}

// locate inverts denseIdx. Stages are few and laid out in id order, so
// a linear scan beats a search structure; launches are bounded by slot
// count, not task count.
func (j *jobRun) locate(di int) (s *stageRun, fi, ti int) {
	for _, st := range j.stages {
		if di < st.denseBase+st.nTasks {
			s = st
			break
		}
	}
	off := di - s.denseBase
	fi = len(s.fragOff) - 1
	for fi > 0 && s.fragOff[fi] > off {
		fi--
	}
	return s, fi, off - s.fragOff[fi]
}

// markRunnable flags every task of a stage that just entered sRunning.
// All of its tasks are tWaiting at that transition: assignTasks only
// scans sRunning stages, so nothing can have launched while the stage
// was pending or starting receivers.
func (j *jobRun) markRunnable(s *stageRun) {
	j.runnable.setRange(s.denseBase, s.denseBase+s.nTasks)
}

// unmarkRunnable drops every task of a stage leaving sRunning (reset or
// completion). Requeued-but-unlaunched tasks of a completed stage keep
// their tWaiting state but must not be scheduled, exactly like the
// legacy scanner's status != sRunning skip.
func (j *jobRun) unmarkRunnable(s *stageRun) {
	j.runnable.clearRange(s.denseBase, s.denseBase+s.nTasks)
}

// markStageDone updates child readiness after s completed. Only pending
// children track counters; anything else recomputes its own count if it
// is ever reset back to pending.
func (jm *JobManager) markStageDone(j *jobRun, s *stageRun) {
	for _, cid := range s.ps.Children {
		c := j.stages[cid]
		if c.status != sPending {
			continue
		}
		j.waitParents[cid]--
		if j.waitParents[cid] == 0 {
			j.readyStages.set(cid)
		}
	}
}

// markStageUndone reverses markStageDone when a previously-done stage is
// reset (reserved-container loss, §3.2.6).
func (jm *JobManager) markStageUndone(j *jobRun, s *stageRun) {
	for _, cid := range s.ps.Children {
		c := j.stages[cid]
		if c.status != sPending {
			continue
		}
		if j.waitParents[cid] == 0 {
			j.readyStages.clear(cid)
		}
		j.waitParents[cid]++
	}
}

// recomputeReadiness re-derives one stage's own readiness from live
// parent statuses; called when the stage returns to sPending, where
// O(parents) is the exact cost the incremental counters promise.
func (jm *JobManager) recomputeReadiness(j *jobRun, s *stageRun) {
	n := 0
	for _, pid := range s.ps.Parents {
		if j.stages[pid].status != sDone {
			n++
		}
	}
	id := s.ps.ID
	j.waitParents[id] = n
	if n == 0 {
		j.readyStages.set(id)
	} else {
		j.readyStages.clear(id)
	}
}

// creditSlot returns one slot to a still-live executor and the per-kind
// free-slot index.
func (jm *JobManager) creditSlot(exec string) {
	if _, alive := jm.slotsFree[exec]; alive {
		jm.slotsFree[exec]++
		jm.freeSlots[jm.kinds[exec]]++
	}
}
