package runtime

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"pado/internal/obs"
	"pado/internal/simnet"
	"pado/internal/trace"
)

// TestMidFanoutPushFailure breaks one receiver's link partway through the
// push fan-out: frames to the other reserved nodes land, the frame to the
// broken node fails, and the task must fail WITHOUT committing. The
// relaunched attempt re-pushes every frame; receivers that already staged
// the earlier attempt's frames must discard them (superseded by the newer
// attempt / covered senders already processed), so the final counts are
// exact despite the duplicates.
func TestMidFanoutPushFailure(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		// Raw path: pushFrames' parallel per-receiver fan-out.
		{"raw", Config{DisablePartialAggregation: true}},
		// Aggregated path: aggBuffer.push covering several tasks.
		{"aggregated", Config{}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			p, expect := buildWordCount(8, 300)
			cl := newTestCluster(t, 4, 3, trace.RateNone)

			// Fail every chunk from any transient executor into r1. Pushes
			// to r2/r3 receivers succeed, so a multi-receiver fan-out fails
			// after delivering some of its frames. The fault lifts as soon
			// as relaunches are observed on the event stream — the minimal
			// window that still guarantees a mid-fan-out failure happened,
			// without racing the master's relaunch-attempt budget.
			remove := cl.Net().InjectFault(simnet.LinkFault{From: "t", To: "r1", DropEvery: 1})
			tr := obs.New()
			var relaunches atomic.Int64
			tr.SetTap(func(ev obs.Event) {
				if ev.Kind == obs.TaskRelaunched && relaunches.Add(1) >= 2 {
					remove()
				}
			})
			tc.cfg.Tracer = tr

			ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
			defer cancel()
			res, err := Run(ctx, cl, p.Graph(), tc.cfg)
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if res.Metrics.TimedOut {
				t.Fatal("timed out")
			}
			if res.Metrics.RelaunchedTasks == 0 {
				t.Error("fault produced no relaunches; fan-out failure path not exercised")
			}
			checkWordCount(t, res, expect)
		})
	}
}

func TestAttributeBytes(t *testing.T) {
	for _, tc := range []struct {
		total int64
		n     int
	}{
		{0, 1}, {1, 1}, {10, 3}, {9, 3}, {7, 8}, {1 << 40, 7}, {99, 100},
	} {
		shares := attributeBytes(tc.total, tc.n)
		if len(shares) != tc.n {
			t.Fatalf("attributeBytes(%d, %d): %d shares", tc.total, tc.n, len(shares))
		}
		var sum int64
		for i, s := range shares {
			sum += s
			if i > 0 && (s < shares[tc.n-1]-1 || s > shares[0]) {
				t.Errorf("attributeBytes(%d, %d): uneven share %d at %d", tc.total, tc.n, s, i)
			}
		}
		if sum != tc.total {
			t.Errorf("attributeBytes(%d, %d) sums to %d", tc.total, tc.n, sum)
		}
	}
}
