package runtime

import (
	"bytes"
	"fmt"
	"sync/atomic"

	"pado/internal/core"
	"pado/internal/dag"
	"pado/internal/data"
	"pado/internal/dataflow"
	"pado/internal/exec"
	"pado/internal/metrics"
	"pado/internal/obs"
)

func readerOf(b []byte) *bytes.Reader { return bytes.NewReader(b) }

// recvSpec describes one reserved task (receiver).
type recvSpec struct {
	Stage int
	Gen   int
	Index int
	// Expected is the total number of sender-task commits to wait for
	// (the sum of boundary fragments' parallelisms); 0 for stages
	// without transient fragments.
	Expected int
	// InputLocs locates parent stage outputs for cross-stage inputs.
	InputLocs map[int]stageLoc
	// PullMode makes the receiver pull committed sender outputs from
	// transient local stores (ablation) instead of accepting pushes.
	PullMode bool
	// Peers lists the stage's output executors in partition order. With
	// Config.ReplicateStageOutputs on, each receiver ring-replicates its
	// finalized partition to the next peer so fetches can route around a
	// quarantined primary.
	Peers []string
}

// Receiver messages.
type msgFrame struct{ f *pushFrame }

// msgCommit is a task-output commit forwarded by the master. Exec names
// the sender's executor for pull-mode fetches. Chunk, when non-empty,
// marks a skipped task (commitplane.go): no sender ran, Exec is empty,
// and the receiver pulls the staged sections from the commit store.
type msgCommit struct {
	Frag    int
	Index   int
	Attempt int
	Exec    string
	Chunk   string
}
type msgCancel struct{}

type fragSender struct{ Frag, Index int }

// receiver implements a reserved task (§3.2.4-3.2.5): it accepts pushed
// boundary data, stages it per sender, merges it once the sender's commit
// arrives through the master (exactly-once), fetches its cross-stage
// inputs, and finalizes the stage root when every expected input landed.
type receiver struct {
	ex   *Executor
	spec recvSpec
	msgs *mailbox
	quit chan struct{}

	root   *dag.Vertex
	comb   *dataflow.CombineOp
	table  *exec.AccTable
	tagged map[string][]data.Record
	sides  map[string][]data.Record

	staged    []*pushFrame
	committed map[fragSender]msgCommit
	processed map[fragSender]bool
	inputsOK  bool
	finalized bool
}

func newReceiver(ex *Executor, spec recvSpec) *receiver {
	r := &receiver{
		ex:        ex,
		spec:      spec,
		msgs:      newMailbox(),
		quit:      make(chan struct{}),
		tagged:    make(map[string][]data.Record),
		sides:     make(map[string][]data.Record),
		committed: make(map[fragSender]msgCommit),
		processed: make(map[fragSender]bool),
	}
	r.root = ex.plan.Graph.Vertex(ex.plan.Stages[spec.Stage].Root)
	if op, ok := r.root.Op.(*dataflow.CombineOp); ok {
		r.comb = op
		r.table = exec.NewAccTable(op.Fn, op.Global)
	}
	return r
}

// enqueue delivers a message; the mailbox is unbounded so neither the
// data-plane server nor the master's event loop ever blocks here.
func (r *receiver) enqueue(m any) bool {
	select {
	case <-r.quit:
		return false
	default:
	}
	r.msgs.put(m)
	return true
}

func (r *receiver) cancel() {
	select {
	case <-r.quit:
	default:
		close(r.quit)
	}
}

func (r *receiver) fail(err error, fatal bool) {
	r.ex.send(evReceiverFailed{Job: r.ex.job, Stage: r.spec.Stage, Gen: r.spec.Gen, Index: r.spec.Index,
		Exec: r.ex.id, Err: err, Fatal: fatal})
}

func (r *receiver) run() {
	// Cross-stage inputs can be fetched immediately: parent stage
	// outputs are already safe on reserved executors. Pushes arriving
	// meanwhile queue in the mailbox.
	if err := r.fetchInputs(); err != nil {
		if !r.ex.stopped() {
			r.fail(err, isFatal(err))
		}
		return
	}
	r.inputsOK = true
	if r.maybeFinalize() {
		return
	}
	for {
		m, ok := r.msgs.get(r.quit, r.ex.stop)
		if !ok {
			return
		}
		// Greedily drain whatever else is already queued so commit-store
		// pulls for skipped tasks can be fetched in one parallel fanout:
		// the master relays a skipped stage's commits back-to-back, and
		// one round trip per commit would serialize into the dominant
		// rerun cost. Frame staging and commit bookkeeping commute, so
		// batch order is indistinguishable from one-at-a-time order.
		batch := []any{m}
		for {
			v, ok := r.msgs.tryGet()
			if !ok {
				break
			}
			batch = append(batch, v)
		}
		var casPulls []msgCommit
		for _, m := range batch {
			switch msg := m.(type) {
			case msgFrame:
				r.staged = append(r.staged, msg.f)
			case msgCommit:
				key := fragSender{Frag: msg.Frag, Index: msg.Index}
				if old, ok := r.committed[key]; !ok || msg.Attempt > old.Attempt {
					r.committed[key] = msg
				}
				if msg.Chunk != "" && msg.Exec == "" {
					// Skipped task: its sections live in the commit
					// store. A failed pull reverts the skip through the
					// same relaunch path a lost pull-mode block uses.
					casPulls = append(casPulls, msg)
				} else if r.spec.PullMode {
					if err := r.pull(msg); err != nil {
						if r.ex.stopped() {
							return
						}
						// The sender's stored output is gone (its
						// container was evicted): ask the master to
						// relaunch the sender.
						delete(r.committed, key)
						r.ex.send(evPullFailed{ref: taskRef{
							Job: r.ex.job, Stage: r.spec.Stage, Gen: r.spec.Gen,
							Frag: msg.Frag, Index: msg.Index, Attempt: msg.Attempt,
						}})
					}
				}
			case msgCancel:
				return
			}
		}
		if !r.pullCASBatch(casPulls) {
			return
		}
		if err := r.drainStaged(); err != nil {
			if !r.ex.stopped() {
				r.fail(err, true)
			}
			return
		}
		if r.maybeFinalize() {
			return
		}
	}
}

// pullCASBatch fetches the staged sections of a batch of skipped-task
// commits concurrently. A failed pull reverts that task's skip (commit
// entry dropped, evPullFailed sent) without poisoning the rest of the
// batch. Returns false when the executor is stopping.
func (r *receiver) pullCASBatch(pulls []msgCommit) bool {
	if len(pulls) == 0 {
		return true
	}
	frames := make([]*pushFrame, len(pulls))
	errs := make([]error, len(pulls))
	_ = fanout(len(pulls), maxFetchWorkers, func(i int) error {
		frames[i], errs[i] = r.pullCAS(pulls[i])
		return nil
	})
	for i, msg := range pulls {
		if errs[i] != nil {
			if r.ex.stopped() {
				return false
			}
			delete(r.committed, fragSender{Frag: msg.Frag, Index: msg.Index})
			r.ex.send(evPullFailed{ref: taskRef{
				Job: r.ex.job, Stage: r.spec.Stage, Gen: r.spec.Gen,
				Frag: msg.Frag, Index: msg.Index, Attempt: msg.Attempt,
			}})
			continue
		}
		r.staged = append(r.staged, frames[i])
	}
	return true
}

// pull fetches a committed sender output in pull-boundary mode and stages
// it as if it had been pushed.
func (r *receiver) pull(c msgCommit) error {
	id := taskBlockID(r.ex.job, r.spec.Stage, r.spec.Gen, c.Frag, c.Index, c.Attempt, r.spec.Index)
	r.ex.tr.Emit(obs.Event{Kind: obs.FetchStarted, Stage: r.spec.Stage, Frag: c.Frag,
		Task: c.Index, Attempt: c.Attempt, Exec: r.ex.id, Note: "pull"})
	payload, err := fetchBlock(r.ex.pool, c.Exec, id)
	if err != nil {
		return err
	}
	r.ex.met.BytesFetched.Add(int64(len(payload)))
	r.ex.tr.Emit(obs.Event{Kind: obs.FetchDone, Stage: r.spec.Stage, Frag: c.Frag,
		Task: c.Index, Attempt: c.Attempt, Exec: r.ex.id, Bytes: int64(len(payload)), Note: "pull"})
	f, err := decodeFrameBlock(payload)
	if err != nil {
		return err
	}
	r.staged = append(r.staged, f)
	return nil
}

// drainStaged processes every staged frame whose covered senders are all
// committed at the frame's attempts, and drops frames superseded by newer
// attempts.
func (r *receiver) drainStaged() error {
	keep := r.staged[:0]
	for _, f := range r.staged {
		ready, dead := true, false
		for _, c := range f.Cover {
			cm, ok := r.committed[fragSender{Frag: f.Frag, Index: c.Index}]
			switch {
			case ok && cm.Attempt == c.Attempt:
			case ok && cm.Attempt > c.Attempt:
				dead = true
			default:
				ready = false
			}
			if r.processed[fragSender{Frag: f.Frag, Index: c.Index}] {
				dead = true
			}
		}
		if dead {
			continue
		}
		if !ready {
			keep = append(keep, f)
			continue
		}
		if err := r.process(f); err != nil {
			return err
		}
		for _, c := range f.Cover {
			r.processed[fragSender{Frag: f.Frag, Index: c.Index}] = true
		}
	}
	r.staged = keep
	return nil
}

// process merges one frame's sections into the receiver's state.
func (r *receiver) process(f *pushFrame) error {
	g := r.ex.plan.Graph
	frag := r.ex.plan.Stages[r.spec.Stage].Fragments[f.Frag]
	for _, s := range f.Sections {
		if s.Aggregated {
			if r.comb == nil || r.comb.AccCoder == nil {
				return fmt.Errorf("runtime: aggregated push for non-combine root %q", r.root.Name)
			}
			accs, err := data.DecodeAll(r.comb.AccCoder, s.Payload)
			if err != nil {
				return err
			}
			if err := r.ex.throttle(len(accs) * dataflow.OpCost(r.root)); err != nil {
				return err
			}
			for _, a := range accs {
				r.table.MergeAcc(a.Key, a.Value)
			}
			continue
		}
		// Raw section: decode with the boundary source's output coder.
		from, err := boundarySource(frag, s.Tag)
		if err != nil {
			return err
		}
		coder, err := dataflow.OutputCoder(g.Vertex(from))
		if err != nil {
			return err
		}
		recs, err := data.DecodeAll(coder, s.Payload)
		if err != nil {
			return err
		}
		if err := r.ex.throttle(len(recs) * dataflow.OpCost(r.root)); err != nil {
			return err
		}
		r.addInput(s.Tag, recs)
	}
	return nil
}

func boundarySource(frag *core.Fragment, tag string) (dag.VertexID, error) {
	for _, b := range frag.Boundaries {
		if b.Tag == tag {
			return b.From, nil
		}
	}
	return 0, fmt.Errorf("runtime: no boundary with tag %q", tag)
}

// addInput routes decoded records into the root's input state. Pushed
// main-input records were already partitioned by the sender, so combine
// roots fold them directly.
func (r *receiver) addInput(tag string, recs []data.Record) {
	if r.comb != nil && tag == "" {
		for _, rec := range recs {
			r.table.AddRecord(rec)
		}
		return
	}
	if _, ok := r.root.Op.(*dataflow.ParDoOp); ok && tag != "" {
		r.sides[tag] = append(r.sides[tag], recs...)
		return
	}
	r.tagged[tag] = append(r.tagged[tag], recs...)
}

// fetchInputs pulls the stage's cross-stage inputs for this task.
func (r *receiver) fetchInputs() error {
	ps := r.ex.plan.Stages[r.spec.Stage]
	g := r.ex.plan.Graph
	for _, si := range ps.InputsTo(ps.Root) {
		loc, ok := r.spec.InputLocs[si.FromStage]
		if !ok {
			return fmt.Errorf("runtime: receiver missing location of stage %d", si.FromStage)
		}
		coder, err := dataflow.OutputCoder(g.Vertex(si.FromVertex))
		if err != nil {
			return err
		}
		switch si.Dep {
		case dag.OneToOne:
			recs, err := r.fetchParts(si.FromStage, loc, coder, []int{r.spec.Index})
			if err != nil {
				return err
			}
			r.routeInput(si.Tag, recs, false)
		case dag.OneToMany:
			recs, err := r.fetchParts(si.FromStage, loc, coder, allParts(loc))
			if err != nil {
				return err
			}
			r.routeInput(si.Tag, recs, true)
		case dag.ManyToOne:
			recs, err := r.fetchParts(si.FromStage, loc, coder, allParts(loc))
			if err != nil {
				return err
			}
			r.routeInput(si.Tag, recs, false)
		case dag.ManyToMany:
			recs, err := r.fetchParts(si.FromStage, loc, coder, allParts(loc))
			if err != nil {
				return err
			}
			// Keep only this task's hash partition.
			mine := recs[:0]
			for _, rec := range recs {
				if data.Partition(rec.Key, ps.RootParallelism) == r.spec.Index {
					mine = append(mine, rec)
				}
			}
			r.routeInput(si.Tag, mine, false)
		}
	}
	return nil
}

func allParts(loc stageLoc) []int {
	parts := make([]int, loc.nParts())
	for i := range parts {
		parts[i] = i
	}
	return parts
}

// fetchParts pulls and decodes the listed partitions of a parent stage's
// output. Partitions are fetched concurrently (bounded by
// maxFetchWorkers) and reassembled in the order of parts, so the record
// order the receiver sees is independent of fetch timing.
func (r *receiver) fetchParts(fromStage int, loc stageLoc, coder data.Coder, parts []int) ([]data.Record, error) {
	for _, p := range parts {
		if p >= loc.nParts() {
			return nil, fmt.Errorf("runtime: partition %d out of range for stage %d", p, fromStage)
		}
	}
	r.ex.tr.Emit(obs.Event{Kind: obs.FetchStarted, Stage: fromStage, Frag: obs.ReservedFrag,
		Task: r.spec.Index, Exec: r.ex.id, Note: "receiver"})
	decoded := make([][]data.Record, len(parts))
	var total int64
	err := fanout(len(parts), maxFetchWorkers, func(i int) error {
		p := parts[i]
		payload, err := fetchStagePart(r.ex.pool, r.ex.cas, r.ex.met, r.ex.job, fromStage, loc, p, r.ex.cfg.ReplicateStageOutputs)
		if err != nil {
			return err
		}
		r.ex.met.BytesFetched.Add(int64(len(payload)))
		atomic.AddInt64(&total, int64(len(payload)))
		decoded[i], err = data.DecodeAll(coder, payload)
		return err
	})
	if err != nil {
		return nil, err
	}
	var recs []data.Record
	for _, part := range decoded {
		recs = append(recs, part...)
	}
	r.ex.tr.Emit(obs.Event{Kind: obs.FetchDone, Stage: fromStage, Frag: obs.ReservedFrag,
		Task: r.spec.Index, Exec: r.ex.id, Bytes: total, Note: "receiver"})
	return recs, nil
}

// routeInput places fetched cross-stage records: side inputs for ParDo
// roots, accumulator folds for combine roots, tagged inputs otherwise.
func (r *receiver) routeInput(tag string, recs []data.Record, side bool) {
	if side {
		if _, ok := r.root.Op.(*dataflow.ParDoOp); ok {
			r.sides[tag] = append(r.sides[tag], recs...)
			return
		}
	}
	if r.comb != nil && tag == "" {
		for _, rec := range recs {
			r.table.AddRecord(rec)
		}
		return
	}
	r.tagged[tag] = append(r.tagged[tag], recs...)
}

// maybeFinalize runs the root once all inputs arrived, stores the output
// partition, and reports completion.
func (r *receiver) maybeFinalize() bool {
	if r.finalized || !r.inputsOK || len(r.processed) < r.spec.Expected {
		return false
	}
	r.finalized = true
	out, err := r.runRoot()
	if err == nil {
		err = r.ex.throttle(len(out))
	}
	if err != nil {
		if !r.ex.stopped() {
			r.fail(err, true)
		}
		return true
	}
	coder, err := dataflow.OutputCoder(r.root)
	if err != nil {
		r.fail(err, true)
		return true
	}
	payload, err := data.EncodeAll(coder, out)
	if err != nil {
		r.fail(err, true)
		return true
	}
	blockID := stageBlockID(r.ex.job, r.spec.Stage, r.spec.Gen, r.spec.Index)
	r.ex.store.Put(blockID, payload)
	r.replicateOutput(blockID, payload)
	// Cacheable stage: also write the partition to the commit store so
	// the master can commit the stage manifest once every receiver is
	// done. Best-effort — on error the done event just carries no chunk,
	// and the master skips the manifest.
	chunk := ""
	if r.ex.cas != nil && r.ex.plan.Stages[r.spec.Stage].CacheKey != "" {
		if h, err := r.ex.cas.PutChunk(payload); err == nil {
			chunk = h
			r.ex.met.Counter(metrics.NameCASBytesWritten).Add(int64(len(payload)))
		}
	}
	r.ex.send(evReservedTaskDone{Job: r.ex.job, Stage: r.spec.Stage, Gen: r.spec.Gen, Index: r.spec.Index,
		Exec: r.ex.id, Bytes: int64(len(payload)), Chunk: chunk})
	return true
}

// replicateOutput ring-replicates the finalized partition to the next
// output executor (best-effort, off the critical path) so downstream
// fetches have a replica holder to route to when the primary's breaker
// is open. Gated by Config.ReplicateStageOutputs.
func (r *receiver) replicateOutput(blockID string, payload []byte) {
	if !r.ex.cfg.ReplicateStageOutputs || len(r.spec.Peers) < 2 {
		return
	}
	peer := r.spec.Peers[(r.spec.Index+1)%len(r.spec.Peers)]
	if peer == r.ex.id {
		return
	}
	go func() {
		_ = storeBlock(r.ex.pool, "store", peer, blockID, payload)
	}()
}

func (r *receiver) runRoot() ([]data.Record, error) {
	switch r.root.Op.(type) {
	case *dataflow.CombineOp:
		return r.table.Extract(), nil
	case *dataflow.CreateOp, *dataflow.ParDoOp, *dataflow.MultiOp:
		in := exec.Inputs{
			Ext:   map[dag.VertexID]map[string][]data.Record{r.root.ID: r.tagged},
			Sides: map[dag.VertexID]map[string][]data.Record{r.root.ID: r.sides},
		}
		outs, err := exec.RunFragment(r.ex.plan.Graph, []dag.VertexID{r.root.ID}, in)
		if err != nil {
			return nil, err
		}
		return outs[r.root.ID], nil
	default:
		return nil, fmt.Errorf("runtime: unsupported reserved root payload %T", r.root.Op)
	}
}
