package runtime

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"testing"
	"time"

	"pado/internal/cluster"
	"pado/internal/core"
	"pado/internal/dataflow"
	"pado/internal/workloads"
)

// Legacy-oracle equivalence tests: the incremental scheduler (sched.go +
// master.go) and the verbatim pre-refactor full rescan
// (sched_legacy_test.go) are driven through identical scripted event
// sequences over real compiled plans (MR / MLR / ALS) and must produce
// byte-identical action logs — every Launch, StartReceiver,
// CancelReceiver, and Commit in order, including the input-location and
// receiver lists carried on the specs — and identical final manager
// state. The scripts cover the recovery surface: task failures,
// transient eviction with a replacement node, reserved failure with
// stage restarts, a pull failure, cache-aware placement, and
// deficit-weighted multi-job rounds.
//
// The driver replaces the event loop: fake executors answer each master
// action with the deterministic follow-up events the production data
// plane would send (Launch → computed → committed or a terminal result;
// StartReceiver → ready; enough distinct commits → reserved-task done),
// so the whole exchange is a pure function of the script. On the
// incremental side every delivered event is followed by an invariant
// check of the derived scheduling state against the ground-truth
// stage/task state machines.

var errOracleTask = errors.New("oracle: scripted task failure")

type planMaker func(t *testing.T) *core.Plan

type oracleScript struct {
	plans   []planMaker
	weights []float64
	// cache enables the cache-aware placement path (Config.DisableCache
	// off) so cacheIndex hits steer picks on both sides.
	cache bool
	// failMod/failRem: a task's first attempt fails iff
	// (stage*31+frag*7+index) % failMod == failRem. Identity-based, so
	// the rule is launch-order independent. 0 disables.
	failMod, failRem int
	// evictAt drops the first transient node (with a replacement) when
	// the global launch counter hits this value. 0 disables.
	evictAt int
	// reservedFailAt drops the first reserved node (with a replacement)
	// when the global launch counter hits this value. 0 disables.
	reservedFailAt int
	// pullFail injects one evPullFailed for the first gen-1 commit of
	// fragment task (0,0) seen by receiver 0, like a pull-mode receiver
	// losing the sender's stored output.
	pullFail bool

	transients, reserveds, slots int
}

type recvID struct{ job, stage, gen, index int }
type doneKey struct{ job, stage, gen int }

// oracleRecv is the fake receiver's commit-counting state, mirroring
// the production receiver's distinct-(frag,index) processed set.
type oracleRecv struct {
	spec      recvSpec
	exec      string
	processed map[[2]int]bool
}

type oracleDriver struct {
	t      *testing.T
	sc     oracleScript
	jm     *JobManager
	legacy bool
	sched  func()

	queue   []event
	log     strings.Builder
	handles []*JobHandle
	byID    map[int]*JobHandle

	launches  int
	pullsLeft int
	recvs     map[recvID]*oracleRecv
	// pendingDones holds reserved-task-done events of zero-Expected
	// receivers (stages with no transient fragments finalize right after
	// their input fetch) until the stage's last ready lands, matching the
	// production timing where the fetch takes at least one network round
	// trip.
	pendingDones map[doneKey][]event

	firstTransient, firstReserved string
}

// evOracleDrop scripts a container departure: dropHost + the matching
// recovery path, then a replacement node joins.
type evOracleDrop struct {
	id          string
	kind        cluster.Kind
	replacement string
}

func (d *oracleDriver) logf(format string, args ...any) {
	fmt.Fprintf(&d.log, format+"\n", args...)
}

func fmtStrs(ss []string) string {
	if len(ss) == 0 {
		return "-"
	}
	return strings.Join(ss, ",")
}

func fmtLocs(locs map[int]stageLoc) string {
	if len(locs) == 0 {
		return "-"
	}
	ids := make([]int, 0, len(locs))
	for id := range locs {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	parts := make([]string, len(ids))
	for i, id := range ids {
		l := locs[id]
		parts[i] = fmt.Sprintf("%d:g%d:[%s]", id, l.Gen, fmtStrs(l.Execs))
	}
	return strings.Join(parts, ";")
}

// oracleExec is the fake per-job launcher: it logs every master action
// and queues the deterministic follow-up events.
type oracleExec struct {
	d  *oracleDriver
	h  *JobHandle
	id string
}

func (x *oracleExec) Launch(spec taskSpec) {
	d, j := x.d, x.h.j
	d.logf("L j%d s%d g%d f%d i%d a%d @%s term=%v recv=%s locs=%s",
		j.id, spec.Stage, spec.Gen, spec.Frag, spec.Index, spec.Attempt, x.id,
		spec.Terminal, fmtStrs(spec.Receivers), fmtLocs(spec.InputLocs))
	d.launches++
	if d.sc.evictAt > 0 && d.launches == d.sc.evictAt {
		d.queue = append(d.queue, evOracleDrop{id: d.firstTransient, kind: cluster.Transient, replacement: "tx-repl"})
	}
	if d.sc.reservedFailAt > 0 && d.launches == d.sc.reservedFailAt {
		d.queue = append(d.queue, evOracleDrop{id: d.firstReserved, kind: cluster.Reserved, replacement: "rx-repl"})
	}
	ref := taskRef{Job: j.id, Stage: spec.Stage, Gen: spec.Gen, Frag: spec.Frag, Index: spec.Index, Attempt: spec.Attempt}
	if m := d.sc.failMod; m > 0 && spec.Attempt == 0 && (spec.Stage*31+spec.Frag*7+spec.Index)%m == d.sc.failRem {
		d.queue = append(d.queue, evTaskFailed{ref: ref, Exec: x.id, Err: errOracleTask})
		return
	}
	ps := j.plan.Stages[spec.Stage]
	var cached []cacheKey
	if !j.cfg.DisableCache {
		cached = taskCacheKeys(j.plan, ps, ps.Fragments[spec.Frag], spec.Index)
	}
	d.queue = append(d.queue, newTaskComputed(ref, x.id, cached))
	if spec.Terminal && spec.Frag == ps.RootFragment {
		d.queue = append(d.queue, evResult{Job: j.id, Stage: spec.Stage, Gen: spec.Gen,
			Index: spec.Index, Attempt: spec.Attempt, Payload: []byte{byte(spec.Index)}})
	} else {
		d.queue = append(d.queue, newOutputCommitted(ref))
	}
}

func (x *oracleExec) StartReceiver(spec recvSpec) {
	d, j := x.d, x.h.j
	d.logf("R j%d s%d g%d i%d @%s exp=%d pull=%v peers=%s locs=%s",
		j.id, spec.Stage, spec.Gen, spec.Index, x.id,
		spec.Expected, spec.PullMode, fmtStrs(spec.Peers), fmtLocs(spec.InputLocs))
	d.queue = append(d.queue, evReceiverReady{Job: j.id, Stage: spec.Stage, Gen: spec.Gen, Index: spec.Index})
	d.recvs[recvID{j.id, spec.Stage, spec.Gen, spec.Index}] = &oracleRecv{
		spec: spec, exec: x.id, processed: make(map[[2]int]bool),
	}
	if spec.Expected == 0 {
		dk := doneKey{j.id, spec.Stage, spec.Gen}
		d.pendingDones[dk] = append(d.pendingDones[dk], evReservedTaskDone{
			Job: j.id, Stage: spec.Stage, Gen: spec.Gen, Index: spec.Index, Exec: x.id, Bytes: 64,
		})
	}
}

func (x *oracleExec) CancelReceiver(stage, gen, idx int) {
	x.d.logf("C j%d s%d g%d i%d @%s", x.h.j.id, stage, gen, idx, x.id)
}

func (x *oracleExec) Commit(stage, gen, recvIdx int, c msgCommit) {
	d, j := x.d, x.h.j
	d.logf("M j%d s%d g%d r%d f%d i%d a%d from=%s",
		j.id, stage, gen, recvIdx, c.Frag, c.Index, c.Attempt, c.Exec)
	r := d.recvs[recvID{j.id, stage, gen, recvIdx}]
	if r == nil {
		return
	}
	if d.pullsLeft > 0 && gen == 1 && recvIdx == 0 && c.Frag == 0 && c.Index == 0 {
		// The receiver's pull of this committed output fails: drop the
		// commit (production deletes it from the committed set) and ask
		// the master to relaunch the sender. The relaunched attempt's
		// commit lands below and is counted then.
		d.pullsLeft--
		d.queue = append(d.queue, evPullFailed{ref: taskRef{
			Job: j.id, Stage: stage, Gen: gen, Frag: c.Frag, Index: c.Index, Attempt: c.Attempt,
		}})
		return
	}
	sk := [2]int{c.Frag, c.Index}
	if r.processed[sk] {
		return
	}
	r.processed[sk] = true
	if len(r.processed) == r.spec.Expected {
		d.queue = append(d.queue, evReservedTaskDone{
			Job: j.id, Stage: stage, Gen: gen, Index: recvIdx, Exec: r.exec,
			Bytes: int64(64 + len(r.processed)),
		})
	}
}

func (d *oracleDriver) attach(id string) {
	for _, jid := range d.jm.order {
		d.jm.jobs[jid].execs[id] = &oracleExec{d: d, h: d.byID[jid], id: id}
	}
}

// deliver replicates the manager's handle() dispatch (minus gauge
// refresh) and then runs the scheduling pass under test.
func (d *oracleDriver) deliver(ev event) {
	jm := d.jm
	switch e := ev.(type) {
	case evSubmit:
		jm.admitOrQueue(e.j)
	case evReceiverReady:
		if j := jm.jobs[e.Job]; j != nil {
			jm.onReceiverReady(j, e)
			if s := jm.stageAt(j, e.Stage, e.Gen); s != nil && s.status == sRunning {
				dk := doneKey{e.Job, e.Stage, e.Gen}
				d.queue = append(d.queue, d.pendingDones[dk]...)
				delete(d.pendingDones, dk)
			}
		}
	case *evTaskComputed:
		val := *e
		putTaskComputed(e)
		if j := jm.jobs[val.ref.Job]; j != nil {
			jm.onTaskComputed(j, val)
		}
	case *evOutputCommitted:
		val := *e
		putOutputCommitted(e)
		if j := jm.jobs[val.ref.Job]; j != nil {
			jm.onOutputCommitted(j, val)
		}
	case evTaskFailed:
		if j := jm.jobs[e.ref.Job]; j != nil {
			jm.onTaskFailed(j, e)
		}
	case evPullFailed:
		if j := jm.jobs[e.ref.Job]; j != nil {
			jm.onPullFailed(j, e)
		}
	case evReservedTaskDone:
		if j := jm.jobs[e.Job]; j != nil {
			jm.onReservedTaskDone(j, e)
		}
	case evResult:
		if j := jm.jobs[e.Job]; j != nil {
			jm.onResult(j, e)
		}
	case evOracleDrop:
		jm.dropHost(e.id)
		if e.kind == cluster.Reserved {
			jm.recoverFailed(e.id)
		} else {
			jm.recoverEvicted(e.id)
		}
		jm.registerNode(e.replacement, e.kind, d.sc.slots)
		d.attach(e.replacement)
	default:
		d.t.Fatalf("oracle: unhandled event %T", ev)
	}
	jm.reapFinished()
	d.sched()
	if !d.legacy {
		d.checkInvariants()
	}
}

// bitsetHas reads one bit without moving a cursor.
func bitsetHas(b *taskBitset, i int) bool {
	return i>>6 < len(b.words) && b.words[i>>6]&(1<<(uint(i)&63)) != 0
}

// checkInvariants validates the incremental scheduler's derived state
// against the ground-truth stage/task state machines after every event:
// the per-kind free-slot index equals the per-executor table's sums, a
// runnable bit is set iff its task is tWaiting in an sRunning stage, and
// a ready bit is set iff its stage is sPending with every parent done.
func (d *oracleDriver) checkInvariants() {
	d.t.Helper()
	jm := d.jm
	var want [2]int
	for id, n := range jm.slotsFree {
		want[jm.kinds[id]] += n
	}
	if want != jm.freeSlots {
		d.t.Fatalf("free-slot index %v, slotsFree sums %v", jm.freeSlots, want)
	}
	for _, jid := range jm.order {
		j := jm.jobs[jid]
		runnable := 0
		for si, s := range j.stages {
			ready := s.status == sPending
			for _, pid := range s.ps.Parents {
				if j.stages[pid].status != sDone {
					ready = false
				}
			}
			if bitsetHas(&j.readyStages, si) != ready {
				d.t.Fatalf("job %d stage %d ready bit %v, want %v (status %d)",
					jid, si, !ready, ready, s.status)
			}
			for fi, fr := range s.frags {
				for ti, tk := range fr.tasks {
					wantBit := s.status == sRunning && tk.state == tWaiting
					if bitsetHas(&j.runnable, s.denseIdx(fi, ti)) != wantBit {
						d.t.Fatalf("job %d stage %d frag %d task %d runnable bit %v, want %v",
							jid, si, fi, ti, !wantBit, wantBit)
					}
					if wantBit {
						runnable++
					}
				}
			}
		}
		if runnable != j.runnable.n {
			d.t.Fatalf("job %d runnable popcount %d, want %d", jid, j.runnable.n, runnable)
		}
	}
}

// stateDigest renders the scheduling-relevant final state shared by both
// schedulers: cursors, slot tables, outstanding assignments, and every
// job's stage/task state machines. It deliberately excludes the
// incremental-only derived state (freeSlots, runnable, readyStages,
// waitParents), which the legacy pass does not maintain.
func (d *oracleDriver) stateDigest() string {
	jm := d.jm
	var b strings.Builder
	fmt.Fprintf(&b, "rrTask=%d rrRecv=%d rrJob=%d\n", jm.rrTask, jm.rrRecv, jm.rrJob)
	ids := make([]string, 0, len(jm.slotsFree))
	for id := range jm.slotsFree {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		fmt.Fprintf(&b, "slot %s=%d\n", id, jm.slotsFree[id])
	}
	assigns := make([]string, 0, len(jm.assignments))
	for ref, exec := range jm.assignments {
		assigns = append(assigns, fmt.Sprintf("assign %+v=%s", ref, exec))
	}
	sort.Strings(assigns)
	for _, a := range assigns {
		b.WriteString(a + "\n")
	}
	for _, h := range d.handles {
		j := h.j
		fmt.Fprintf(&b, "job %d finished=%v aborted=%v deficit=%.4f\n",
			j.id, j.finished, j.failErr != nil, j.deficit)
		for si, s := range j.stages {
			fmt.Fprintf(&b, " stage %d status=%d gen=%d restarts=%d nReady=%d nDone=%d nResults=%d recv=%s out=%s\n",
				si, s.status, s.gen, s.restarts, s.nReady, s.nDone, s.nResults,
				fmtStrs(s.recvExecs), fmtStrs(s.outputExecs))
			for fi, fr := range s.frags {
				fmt.Fprintf(&b, "  frag %d committed=%d:", fi, fr.nCommitted)
				for _, tk := range fr.tasks {
					fmt.Fprintf(&b, " %d/%d/%d/%s", tk.state, tk.attempt, tk.fails, tk.exec)
				}
				b.WriteByte('\n')
			}
		}
	}
	return b.String()
}

// runOracle executes one script against a fresh manager and returns the
// action log and the final-state digest.
func runOracle(t *testing.T, sc oracleScript, legacy bool) (string, string) {
	t.Helper()
	cl, err := cluster.New(cluster.Config{Transient: sc.transients, Reserved: sc.reserveds})
	if err != nil {
		t.Fatalf("cluster: %v", err)
	}
	jm := newManager(cl, ManagerConfig{
		Failure: FailureConfig{DisableDetector: true, DisableRPCPolicy: true},
	})
	d := &oracleDriver{
		t: t, sc: sc, jm: jm, legacy: legacy,
		byID:         make(map[int]*JobHandle),
		recvs:        make(map[recvID]*oracleRecv),
		pendingDones: make(map[doneKey][]event),
	}
	d.sched = jm.scheduleAll
	if legacy {
		d.sched = jm.legacyScheduleAll
	}
	if sc.pullFail {
		d.pullsLeft = 1
	}

	cfg := Config{DisableCache: !sc.cache}
	for i, mk := range sc.plans {
		h, err := jm.SubmitPlan(mk(t), cfg, JobOptions{Weight: sc.weights[i]})
		if err != nil {
			t.Fatalf("submit: %v", err)
		}
		d.handles = append(d.handles, h)
		d.byID[h.id] = h
	}
	// Deliver the submissions with the fleet still empty: transient
	// stages may start but nothing launches, reserved stages wait.
	for drained := false; !drained; {
		select {
		case ev := <-jm.events:
			d.deliver(ev)
		default:
			drained = true
		}
	}
	// The fleet joins: reserved first, then transients, like
	// hostsInOrder. Replacements for scripted drops join later.
	for i := 0; i < sc.reserveds; i++ {
		id := fmt.Sprintf("r%02d", i)
		if i == 0 {
			d.firstReserved = id
		}
		jm.registerNode(id, cluster.Reserved, sc.slots)
		d.attach(id)
	}
	for i := 0; i < sc.transients; i++ {
		id := fmt.Sprintf("t%02d", i)
		if i == 0 {
			d.firstTransient = id
		}
		jm.registerNode(id, cluster.Transient, sc.slots)
		d.attach(id)
	}
	d.sched()
	if !legacy {
		d.checkInvariants()
	}

	for len(d.queue) > 0 {
		ev := d.queue[0]
		d.queue = d.queue[1:]
		d.deliver(ev)
	}

	for _, h := range d.handles {
		if !h.j.finished {
			t.Fatalf("oracle(legacy=%v): job %d did not finish; script deadlocked", legacy, h.id)
		}
		select {
		case <-h.j.done:
		case <-time.After(30 * time.Second):
			t.Fatalf("oracle(legacy=%v): job %d did not resolve", legacy, h.id)
		}
	}
	return d.log.String(), d.stateDigest()
}

// requireSame fails with the first differing line of two multi-line
// strings, with a little context.
func requireSame(t *testing.T, label, got, want string) {
	t.Helper()
	if got == want {
		return
	}
	gl, wl := strings.Split(got, "\n"), strings.Split(want, "\n")
	n := len(gl)
	if len(wl) < n {
		n = len(wl)
	}
	for i := 0; i < n; i++ {
		if gl[i] != wl[i] {
			t.Fatalf("%s diverges at line %d:\n  incremental: %q\n  legacy:      %q",
				label, i+1, gl[i], wl[i])
		}
	}
	t.Fatalf("%s: lengths differ (%d vs %d lines); first extra line: %q",
		label, len(gl), len(wl), func() string {
			if len(gl) > len(wl) {
				return gl[n]
			}
			return wl[n]
		}())
}

func testOracle(t *testing.T, sc oracleScript) {
	t.Helper()
	log1, state1 := runOracle(t, sc, false)
	log2, state2 := runOracle(t, sc, false)
	requireSame(t, "incremental rerun log", log2, log1)
	requireSame(t, "incremental rerun state", state2, state1)
	legacyLog, legacyState := runOracle(t, sc, true)
	requireSame(t, "action log", log1, legacyLog)
	requireSame(t, "final state", state1, legacyState)
}

func mkMR(t *testing.T) *core.Plan {
	cfg := workloads.DefaultMRConfig()
	cfg.Partitions, cfg.LinesPerPart, cfg.Docs = 12, 10, 50
	return mustCompileOracle(t, workloads.MR(cfg))
}

func mkMLR(t *testing.T) *core.Plan {
	cfg := workloads.DefaultMLRConfig()
	cfg.Partitions, cfg.Iterations, cfg.TreeWidth = 8, 2, 2
	return mustCompileOracle(t, workloads.MLR(cfg))
}

func mkALS(t *testing.T) *core.Plan {
	cfg := workloads.DefaultALSConfig()
	cfg.Partitions, cfg.Iterations = 6, 2
	return mustCompileOracle(t, workloads.ALS(cfg))
}

func mustCompileOracle(t *testing.T, p *dataflow.Pipeline) *core.Plan {
	t.Helper()
	plan, err := core.Compile(p.Graph(), core.PlanConfig{})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return plan
}

func TestSchedOracleMR(t *testing.T) {
	testOracle(t, oracleScript{
		plans:   []planMaker{mkMR},
		weights: []float64{1},
		failMod: 5, failRem: 3,
		transients: 4, reserveds: 2, slots: 2,
	})
}

func TestSchedOracleMREvictionPull(t *testing.T) {
	testOracle(t, oracleScript{
		plans:   []planMaker{mkMR},
		weights: []float64{1},
		failMod: 7, failRem: 2,
		evictAt:    10,
		pullFail:   true,
		transients: 4, reserveds: 2, slots: 2,
	})
}

func TestSchedOracleMLRCache(t *testing.T) {
	testOracle(t, oracleScript{
		plans:   []planMaker{mkMLR},
		weights: []float64{1},
		cache:   true,
		failMod: 6, failRem: 1,
		transients: 4, reserveds: 2, slots: 2,
	})
}

func TestSchedOracleMultiJob(t *testing.T) {
	testOracle(t, oracleScript{
		plans:   []planMaker{mkMR, mkMLR, mkALS},
		weights: []float64{1, 2.5, 1},
		failMod: 9, failRem: 4,
		evictAt:        40,
		reservedFailAt: 80,
		transients:     5, reserveds: 3, slots: 2,
	})
}
