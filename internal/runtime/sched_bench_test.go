package runtime

import (
	"errors"
	"fmt"
	"testing"

	"pado/internal/cluster"
	"pado/internal/core"
	"pado/internal/data"
	"pado/internal/dataflow"
)

// Control-plane scheduler benchmarks: how much work does the master do
// per event, as a function of job size? The fleet here is synthetic —
// fake taskLaunchers record launches instead of running a data plane —
// so the numbers isolate scheduleAll/assignTasks/pickExecutor and the
// per-event bookkeeping around them (reapFinished, updateGauges).
//
// The three benchmarks pin the control-plane raw-speed trajectory:
//
//   - BenchmarkScheduleAll: a saturated fleet with N waiting tasks and
//     zero free slots. Every real master event pays this "nothing to
//     do" pass, so it must not cost O(N).
//   - BenchmarkAssignTasks: steady-state task churn — one task failure
//     per event, which frees a slot, requeues the task, and launches a
//     replacement.
//   - BenchmarkMasterEventLoop: the same churn through the full
//     handle() path across four concurrent jobs, exercising the
//     deficit-weighted round-robin scheduler.

var errBenchTask = errors.New("bench: injected task failure")

// launchRef is one recorded launch, reduced to the event reference the
// driver needs to script follow-up events.
type launchRef struct {
	Job int
	Ref taskRef
}

// refRing is a fixed-capacity FIFO of launch records. Steady-state
// churn pops one launch and fails it, which triggers exactly one new
// launch, so the ring never grows past the fleet's slot count plus the
// initial backlog.
type refRing struct {
	buf        []launchRef
	head, tail int
}

func newRefRing(capacity int) *refRing { return &refRing{buf: make([]launchRef, capacity)} }

func (r *refRing) push(v launchRef) {
	if r.tail-r.head == len(r.buf) {
		panic("refRing overflow")
	}
	r.buf[r.tail%len(r.buf)] = v
	r.tail++
}

func (r *refRing) pop() launchRef {
	if r.head == r.tail {
		panic("refRing empty")
	}
	v := r.buf[r.head%len(r.buf)]
	r.head++
	return v
}

// benchLauncher records launches into the shared ring and ignores the
// receiver/commit surface (the synthetic plans are transient-only).
type benchLauncher struct {
	job  int
	ring *refRing
}

func (l *benchLauncher) Launch(spec taskSpec) {
	l.ring.push(launchRef{Job: l.job, Ref: taskRef{
		Job: l.job, Stage: spec.Stage, Gen: spec.Gen,
		Frag: spec.Frag, Index: spec.Index, Attempt: spec.Attempt,
	}})
}
func (l *benchLauncher) StartReceiver(recvSpec)          {}
func (l *benchLauncher) CancelReceiver(int, int, int)    {}
func (l *benchLauncher) Commit(int, int, int, msgCommit) {}

// benchPlan compiles a single transient stage with n fragment tasks: a
// Read source with n partitions and no downstream boundary, so the
// scheduler sees n independent waiting tasks and no receivers.
func benchPlan(tb testing.TB, n int) *core.Plan {
	tb.Helper()
	src := &dataflow.FuncSource{Partitions: n, Gen: func(p int) []data.Record { return nil }}
	p := dataflow.NewPipeline()
	p.Read("bench-src", src, data.KVCoder{K: data.StringCoder, V: data.Int64Coder})
	plan, err := core.Compile(p.Graph(), core.PlanConfig{})
	if err != nil {
		tb.Fatalf("compile: %v", err)
	}
	if len(plan.Stages) != 1 || plan.Stages[0].RootReserved {
		tb.Fatalf("bench plan shape: %d stages, reserved=%v", len(plan.Stages), plan.Stages[0].RootReserved)
	}
	return plan
}

// benchFleet is a synthetic cluster for scheduler benchmarks: nodes
// exist only as scheduling membership (kinds, slots, round-robin
// order) plus a fake launcher per admitted job.
type benchFleet struct {
	jm    *JobManager
	ring  *refRing
	nodes []string
}

// newBenchManager builds an unstarted manager over a synthetic fleet.
// Jobs are admitted first (with the fleet empty, so nothing launches),
// then nodes and fake launchers register, then one scheduleAll
// saturates every slot.
func newBenchManager(tb testing.TB, jobs, tasksPerJob, nodes, slots int) *benchFleet {
	tb.Helper()
	cl, err := cluster.New(cluster.Config{Transient: nodes, Reserved: 1})
	if err != nil {
		tb.Fatalf("cluster: %v", err)
	}
	jm := newManager(cl, ManagerConfig{
		Failure: FailureConfig{DisableDetector: true, DisableRPCPolicy: true},
	})
	plan := benchPlan(tb, tasksPerJob)
	cfg := Config{DisableCache: true, MaxTaskFailures: 1 << 30}
	fl := &benchFleet{jm: jm, ring: newRefRing(nodes*slots + jobs*tasksPerJob + 8)}

	handles := make([]*JobHandle, jobs)
	for i := range handles {
		h, err := jm.SubmitPlan(plan, cfg, JobOptions{Weight: float64(i%2) + 1})
		if err != nil {
			tb.Fatalf("submit: %v", err)
		}
		handles[i] = h
	}
	fl.drain()

	for i := 0; i < nodes; i++ {
		id := fmt.Sprintf("t%03d", i)
		fl.nodes = append(fl.nodes, id)
		jm.registerNode(id, cluster.Transient, slots)
		for _, h := range handles {
			h.j.execs[id] = &benchLauncher{job: h.id, ring: fl.ring}
		}
	}
	jm.scheduleAll()
	if fl.ring.tail != nodes*slots {
		tb.Fatalf("saturation launched %d tasks, want %d", fl.ring.tail, nodes*slots)
	}
	return fl
}

// drain handles every queued event (the loop goroutine is not running).
func (fl *benchFleet) drain() {
	for {
		select {
		case ev := <-fl.jm.events:
			fl.jm.handle(ev)
		default:
			return
		}
	}
}

// failNext pops the oldest live launch and fails it through the full
// event path: slot freed, task requeued, one replacement launched.
func (fl *benchFleet) failNext() {
	lr := fl.ring.pop()
	fl.jm.handle(evTaskFailed{ref: lr.Ref, Err: errBenchTask})
}

var benchSizes = []int{1_000, 10_000, 100_000}

// The allocation budgets are part of the contract: an idle pass over a
// saturated fleet touches only the bitset summaries and allocates
// nothing; a failure-relaunch cycle allocates only the boxed failure
// event and trace record. A regression here means a hot-path structure
// started escaping again.
func TestScheduleAllAllocs(t *testing.T) {
	fl := newBenchManager(t, 1, 10_000, 8, 4)
	if n := testing.AllocsPerRun(100, func() { fl.jm.scheduleAll() }); n > 0 {
		t.Errorf("idle scheduleAll allocates %.1f/op, want 0", n)
	}
}

func TestAssignTasksAllocs(t *testing.T) {
	fl := newBenchManager(t, 1, 10_000, 8, 4)
	if n := testing.AllocsPerRun(200, func() { fl.failNext() }); n > 4 {
		t.Errorf("failure-relaunch cycle allocates %.1f/op, want <= 4", n)
	}
}

func BenchmarkScheduleAll(b *testing.B) {
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("tasks=%d", n), func(b *testing.B) {
			fl := newBenchManager(b, 1, n, 8, 4)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				fl.jm.scheduleAll()
			}
		})
	}
}

func BenchmarkAssignTasks(b *testing.B) {
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("tasks=%d", n), func(b *testing.B) {
			fl := newBenchManager(b, 1, n, 8, 4)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				fl.failNext()
			}
		})
	}
}

func BenchmarkMasterEventLoop(b *testing.B) {
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("tasks=%d", n), func(b *testing.B) {
			fl := newBenchManager(b, 4, n/4, 8, 4)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				fl.failNext()
			}
		})
	}
}
