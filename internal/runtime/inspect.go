package runtime

import (
	"context"
	"time"

	"pado/internal/cluster"
	"pado/internal/metrics"
)

// Inspect is the manager's consistent, race-safe state snapshot API —
// the exported, versioned view of the state that otherwise lives in
// private maps behind the event loop. The snapshot is built ON the
// loop (an evInspect event), so it can never show a torn view: no job
// appears both admitted and queued, budget arithmetic balances, and a
// node is never both departed and holding running tasks. The HTTP
// introspection plane (internal/introspect) and padotop are the
// primary consumers; tests assert its consistency mid-chaos.

// InspectVersion identifies the ManagerState schema. Bump on any
// incompatible change so pollers (padotop, dashboards) can detect
// skew instead of mis-rendering.
const InspectVersion = 1

// ManagerState is one consistent snapshot of a JobManager.
type ManagerState struct {
	Version int       `json:"version"`
	TakenAt time.Time `json:"taken_at"`

	// Reserved-slot admission budget (0 total = admission disabled).
	BudgetTotal int `json:"budget_total"`
	BudgetFree  int `json:"budget_free"`
	// Broken carries the manager's poison error (event-queue overflow)
	// when it has stopped accepting work; "" while healthy.
	Broken string `json:"broken,omitempty"`

	Jobs     []JobState     `json:"jobs"`
	Queue    []QueuedJob    `json:"queue"`
	Nodes    []NodeState    `json:"nodes"`
	Breakers []BreakerState `json:"breakers"`

	// Sched summarizes control-plane scheduling efficiency (additive in
	// schema version 1; older pollers ignore it).
	Sched SchedState `json:"sched"`

	// Store summarizes the commit plane's content-addressed store (nil
	// when the manager runs without one; additive in schema version 1).
	Store *StoreState `json:"store,omitempty"`
}

// StoreState is the commit store's live summary: resident size plus the
// cumulative probe/commit/GC tallies, straight from storage.CommitStats.
type StoreState struct {
	Chunks      int   `json:"chunks"`
	Manifests   int   `json:"manifests"`
	UsedBytes   int64 `json:"used_bytes"`
	Hits        int64 `json:"hits"`
	Misses      int64 `json:"misses"`
	Commits     int64 `json:"commits"`
	DedupPuts   int64 `json:"dedup_puts"`
	GCRuns      int64 `json:"gc_runs"`
	GCCollected int64 `json:"gc_collected"`
}

// SchedState is the incremental scheduler's efficiency summary: the
// counter trio from the fleet registry plus the current runnable
// backlog, so scanned/rounds can be read against how much work was
// actually outstanding.
type SchedState struct {
	// Rounds is the number of scheduling passes (one per handled event).
	Rounds int64 `json:"rounds"`
	// TasksScanned is how many tasks the assignment pass examined across
	// all rounds; TasksScanned/Rounds is the per-event scheduling cost.
	TasksScanned int64 `json:"tasks_scanned"`
	// SlotIndexHits counts saturated passes answered by the free-slot
	// index without scanning the executor pool.
	SlotIndexHits int64 `json:"slot_index_hits"`
	// RunnableTasks is the current fleet-wide count of launchable tasks
	// (waiting tasks of running stages).
	RunnableTasks int `json:"runnable_tasks"`
}

// JobState is one admitted job's progress.
type JobState struct {
	ID       int     `json:"id"`
	Name     string  `json:"name"`
	Policy   string  `json:"policy"`
	Weight   float64 `json:"weight"`
	Priority int     `json:"priority"`
	// Demand is the job's reserved-slot claim against the cell budget.
	Demand int `json:"demand"`
	// Deficit is the job's banked DRR scheduling credit.
	Deficit float64 `json:"deficit"`
	// RunningFor is wall time since admission, nanoseconds.
	RunningFor time.Duration `json:"running_for_ns"`
	Finished   bool          `json:"finished"`

	Stages []StageState `json:"stages"`

	// Fleet-wide task tallies (sums over stages of the current
	// generation).
	TasksWaiting   int `json:"tasks_waiting"`
	TasksRunning   int `json:"tasks_running"`
	TasksComputed  int `json:"tasks_computed"`
	TasksCommitted int `json:"tasks_committed"`
	// ReceiversActive is the job's live reserved-task count.
	ReceiversActive int `json:"receivers_active"`

	// Counters/Gauges/Hists are the job registry's current values.
	Counters map[string]int64                `json:"counters,omitempty"`
	Gauges   map[string]int64                `json:"gauges,omitempty"`
	Hists    map[string]metrics.HistSnapshot `json:"hists,omitempty"`
	// Registry is the live per-job metrics registry, for exposition
	// layers that label samples by job; not part of the JSON view.
	Registry *metrics.Job `json:"-"`
}

// StageState is one stage's state-machine position.
type StageState struct {
	ID       int    `json:"id"`
	Status   string `json:"status"` // pending | starting_receivers | running | done
	Gen      int    `json:"gen"`
	Restarts int    `json:"restarts"`

	Receivers      int `json:"receivers"`
	ReceiversReady int `json:"receivers_ready"`
	ReceiversDone  int `json:"receivers_done"`

	TasksTotal     int `json:"tasks_total"`
	TasksWaiting   int `json:"tasks_waiting"`
	TasksRunning   int `json:"tasks_running"`
	TasksComputed  int `json:"tasks_computed"`
	TasksCommitted int `json:"tasks_committed"`
}

// QueuedJob is one job waiting in the admission queue.
type QueuedJob struct {
	ID       int    `json:"id"`
	Name     string `json:"name"`
	Priority int    `json:"priority"`
	Demand   int    `json:"demand"`
	Position int    `json:"position"`
}

// NodeState is one live container as the manager sees it, fused with
// the failure detector's view.
type NodeState struct {
	ID        string `json:"id"`
	Kind      string `json:"kind"` // transient | reserved
	SlotsFree int    `json:"slots_free"`
	// RunningTasks counts outstanding slot assignments on the node
	// across all jobs.
	RunningTasks int `json:"running_tasks"`
	// Detector is the failure detector's state for the node: "alive",
	// "suspect", or "" when the detector is off or not tracking it.
	Detector string `json:"detector,omitempty"`
	// LastBeatAge is time since the node's last heartbeat, nanoseconds
	// (0 when untracked).
	LastBeatAge time.Duration `json:"last_beat_age_ns,omitempty"`
	// ReportedOpen lists destinations the node's own breakers report
	// open (the gray signal carried by its heartbeats).
	ReportedOpen []string `json:"reported_open,omitempty"`
}

// BreakerState is one per-destination circuit breaker on the manager's
// own connection pool.
type BreakerState struct {
	Dest  string `json:"dest"`
	State string `json:"state"` // closed | open | half-open
	Fails int    `json:"fails"`
	// RetryBudget is the destination's banked retry tokens.
	RetryBudget float64 `json:"retry_budget"`
}

var stageStatusNames = map[stageStatus]string{
	sPending:           "pending",
	sStartingReceivers: "starting_receivers",
	sRunning:           "running",
	sDone:              "done",
}

var breakerStateNames = map[int]string{
	brClosed:   "closed",
	brOpen:     "open",
	brHalfOpen: "half-open",
}

// Inspect returns a consistent snapshot of the manager's state, built
// on the event loop. It blocks until the loop services the request,
// ctx expires, or the manager closes. Safe to call from any goroutine,
// concurrently with running jobs.
func (jm *JobManager) Inspect(ctx context.Context) (*ManagerState, error) {
	reply := make(chan *ManagerState, 1)
	select {
	case jm.events <- evInspect{reply: reply}:
	case <-jm.quit:
		return nil, errManagerClosed
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	select {
	case st := <-reply:
		return st, nil
	case <-jm.quit:
		// The loop may have exited with the request still queued.
		return nil, errManagerClosed
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Metrics returns the manager's fleet-wide metrics registry.
func (jm *JobManager) Metrics() *metrics.Job { return jm.met }

// buildState assembles the snapshot. Runs on the event loop only.
func (jm *JobManager) buildState() *ManagerState {
	now := time.Now()
	st := &ManagerState{
		Version:     InspectVersion,
		TakenAt:     now,
		BudgetTotal: jm.budgetTotal,
		BudgetFree:  jm.budgetFree,
	}
	if jm.broken != nil {
		st.Broken = jm.broken.Error()
	}

	for _, id := range jm.order {
		st.Jobs = append(st.Jobs, jm.jobState(jm.jobs[id], now))
	}
	for i, q := range jm.queue {
		st.Queue = append(st.Queue, QueuedJob{
			ID: q.id, Name: q.name, Priority: q.priority, Demand: q.demand, Position: i,
		})
	}

	running := make(map[string]int, len(jm.hosts))
	for _, exec := range jm.assignments {
		running[exec]++
	}
	var fdv map[string]fdNodeView
	if jm.fd != nil {
		fdv = jm.fd.inspect(now)
	}
	for _, h := range jm.hostsInOrder() {
		n := NodeState{
			ID:           h.id,
			Kind:         jm.kinds[h.id].String(),
			SlotsFree:    jm.slotsFree[h.id],
			RunningTasks: running[h.id],
		}
		if v, ok := fdv[h.id]; ok {
			n.Detector = "alive"
			if v.suspect {
				n.Detector = "suspect"
			}
			n.LastBeatAge = now.Sub(v.lastBeat)
			n.ReportedOpen = v.open
		}
		st.Nodes = append(st.Nodes, n)
	}

	if jm.pool.pol != nil {
		for _, b := range jm.pool.pol.inspect() {
			st.Breakers = append(st.Breakers, b)
		}
	}

	st.Sched = SchedState{
		Rounds:        jm.cSchedRounds.Load(),
		TasksScanned:  jm.cTasksScanned.Load(),
		SlotIndexHits: jm.cSlotIndexHits.Load(),
	}
	for _, id := range jm.order {
		st.Sched.RunnableTasks += jm.jobs[id].runnable.n
	}

	if jm.commits != nil {
		// Refreshing the store gauges here (not in updateGauges) keeps the
		// per-event path free of the store's mutex; /metrics snapshots the
		// manager first, so its exposition is always as fresh as /state.
		cs := jm.commits.store.Stats()
		st.Store = &StoreState{
			Chunks: cs.Chunks, Manifests: cs.Manifests, UsedBytes: cs.UsedBytes,
			Hits: cs.Hits, Misses: cs.Misses, Commits: cs.Commits,
			DedupPuts: cs.DedupPuts, GCRuns: cs.GCRuns, GCCollected: cs.GCCollected,
		}
		jm.met.Gauge(metrics.GaugeCASChunks).Set(int64(cs.Chunks))
		jm.met.Gauge(metrics.GaugeCASManifests).Set(int64(cs.Manifests))
		jm.met.Gauge(metrics.GaugeStorageUsedBytes).Set(cs.UsedBytes)
	}
	return st
}

// jobState projects one jobRun. Runs on the event loop only.
func (jm *JobManager) jobState(j *jobRun, now time.Time) JobState {
	js := JobState{
		ID:              j.id,
		Name:            j.name,
		Policy:          j.plan.Policy,
		Weight:          j.weight,
		Priority:        j.priority,
		Demand:          j.demand,
		Deficit:         j.deficit,
		RunningFor:      now.Sub(j.t0),
		Finished:        j.finished,
		ReceiversActive: j.recvActive,
		Registry:        j.met,
	}
	for _, s := range j.stages {
		ss := StageState{
			ID:       s.ps.ID,
			Status:   stageStatusNames[s.status],
			Gen:      s.gen,
			Restarts: s.restarts,

			Receivers:      len(s.recvExecs),
			ReceiversReady: s.nReady,
			ReceiversDone:  s.nDone,
		}
		for _, fr := range s.frags {
			for _, t := range fr.tasks {
				ss.TasksTotal++
				switch t.state {
				case tWaiting:
					ss.TasksWaiting++
				case tRunning:
					ss.TasksRunning++
				case tComputed:
					ss.TasksComputed++
				case tCommitted:
					ss.TasksCommitted++
				}
			}
		}
		js.TasksWaiting += ss.TasksWaiting
		js.TasksRunning += ss.TasksRunning
		js.TasksComputed += ss.TasksComputed
		js.TasksCommitted += ss.TasksCommitted
		js.Stages = append(js.Stages, ss)
	}

	js.Counters = make(map[string]int64)
	j.met.Each(func(name string, v int64) { js.Counters[name] = v })
	j.met.EachGauge(func(name string, v int64) {
		if js.Gauges == nil {
			js.Gauges = make(map[string]int64)
		}
		js.Gauges[name] = v
	})
	j.met.EachHistogram(func(name string, s metrics.HistSnapshot) {
		if js.Hists == nil {
			js.Hists = make(map[string]metrics.HistSnapshot)
		}
		js.Hists[name] = s
	})
	return js
}

// fdNodeView is the detector's per-node state exported for snapshots.
type fdNodeView struct {
	suspect  bool
	lastBeat time.Time
	open     []string
}

// inspect copies the detector's per-node state (suspect flag, last
// beat, reported-open destinations). Safe from any goroutine.
func (fd *failureDetector) inspect(now time.Time) map[string]fdNodeView {
	fd.mu.Lock()
	defer fd.mu.Unlock()
	out := make(map[string]fdNodeView, len(fd.nodes))
	for id, n := range fd.nodes {
		v := fdNodeView{suspect: n.suspect, lastBeat: n.lastBeat}
		if len(n.openFirst) > 0 {
			v.open = make([]string, 0, len(n.openFirst))
			for d := range n.openFirst {
				v.open = append(v.open, d)
			}
			sortStrings(v.open)
		}
		out[id] = v
	}
	return out
}

// suspectCount reports how many tracked nodes are currently suspect.
func (fd *failureDetector) suspectCount() int {
	fd.mu.Lock()
	defer fd.mu.Unlock()
	n := 0
	for _, node := range fd.nodes {
		if node.suspect {
			n++
		}
	}
	return n
}

// inspect lists every destination with non-default breaker state or a
// drained retry budget, sorted by destination. Safe from any goroutine.
func (pol *rpcPolicy) inspect() []BreakerState {
	if pol == nil {
		return nil
	}
	pol.mu.Lock()
	out := make([]BreakerState, 0, len(pol.dests))
	for to, d := range pol.dests {
		out = append(out, BreakerState{
			Dest:        to,
			State:       breakerStateNames[d.state],
			Fails:       d.fails,
			RetryBudget: d.budget,
		})
	}
	pol.mu.Unlock()
	sortBreakers(out)
	return out
}

// openCount reports how many destinations are currently open or
// half-open (quarantined for fetch routing).
func (pol *rpcPolicy) openCount() int {
	if pol == nil {
		return 0
	}
	pol.mu.Lock()
	defer pol.mu.Unlock()
	n := 0
	for _, d := range pol.dests {
		if d.state != brClosed {
			n++
		}
	}
	return n
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func sortBreakers(s []BreakerState) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j].Dest < s[j-1].Dest; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// managerGauges caches the fleet registry's live-introspection gauges
// so the event loop updates them with atomic stores, not map lookups.
type managerGauges struct {
	jobsRunning, jobsQueued  *metrics.Gauge
	tasksRunning, recvActive *metrics.Gauge
	slotsFreeT, slotsFreeR   *metrics.Gauge
	budgetFree               *metrics.Gauge
	nodesAlive, nodesSuspect *metrics.Gauge
	breakersOpen             *metrics.Gauge
}

func newManagerGauges(reg *metrics.Job) managerGauges {
	return managerGauges{
		jobsRunning:  reg.Gauge(metrics.GaugeJobsRunning),
		jobsQueued:   reg.Gauge(metrics.GaugeJobsQueued),
		tasksRunning: reg.Gauge(metrics.GaugeTasksRunning),
		recvActive:   reg.Gauge(metrics.GaugeReceiversActive),
		slotsFreeT:   reg.Gauge(metrics.GaugeSlotsFreeTrans),
		slotsFreeR:   reg.Gauge(metrics.GaugeSlotsFreeReserved),
		budgetFree:   reg.Gauge(metrics.GaugeBudgetFree),
		nodesAlive:   reg.Gauge(metrics.GaugeNodesAlive),
		nodesSuspect: reg.Gauge(metrics.GaugeNodesSuspect),
		breakersOpen: reg.Gauge(metrics.GaugeBreakersOpen),
	}
}

// updateGauges refreshes the fleet gauges from loop-confined state.
// Called after every handled event; everything here is O(fleet size),
// which is tens of containers — far below the cost of the event that
// preceded it.
func (jm *JobManager) updateGauges() {
	jm.g.jobsRunning.Set(int64(len(jm.order)))
	jm.g.jobsQueued.Set(int64(len(jm.queue)))
	jm.g.tasksRunning.Set(int64(len(jm.assignments)))
	recv := 0
	for _, id := range jm.order {
		recv += jm.jobs[id].recvActive
	}
	jm.g.recvActive.Set(int64(recv))
	jm.g.slotsFreeT.Set(int64(jm.freeSlots[cluster.Transient]))
	jm.g.slotsFreeR.Set(int64(jm.freeSlots[cluster.Reserved]))
	jm.g.budgetFree.Set(int64(jm.budgetFree))
	jm.g.nodesAlive.Set(int64(len(jm.hosts)))
	if jm.fd != nil {
		jm.g.nodesSuspect.Set(int64(jm.fd.suspectCount()))
	}
	jm.g.breakersOpen.Set(int64(jm.pool.pol.openCount()))
}
