// Package runtime implements the Pado Runtime (paper §3.2): a master that
// orchestrates the distributed workload — container manager, execution
// plan generator, task scheduler — and executors that run tasks on
// reserved and transient containers.
//
// The runtime's defining behaviors, each mapped to its paper section:
//
//   - push-based stage boundaries: transient task outputs are pushed to
//     reserved executors as soon as tasks complete, so intermediate
//     results escape evictions without checkpointing (§3.2.4);
//   - output-commit protocol through the master, giving exactly-once
//     processing of pushed outputs under evictions (§3.2.5);
//   - eviction tolerance: only uncommitted tasks of the currently running
//     stage are relaunched — never parent stages (§3.2.5);
//   - reserved-failure recovery: ancestor stages whose outputs were lost
//     are identified in topological order and recomputed (§3.2.6);
//   - task input caching with cache-aware scheduling, and task output
//     partial aggregation with count/delay escape limits (§3.2.7).
//
// Control-plane messages (task launches, commits, completion events) are
// exchanged in-process between master and executors, standing in for the
// REEF driver/evaluator messaging the paper's implementation uses. All
// data-plane traffic — pushes, fetches, broadcasts, result collection —
// flows through simnet streams and is bandwidth-accounted.
package runtime

import (
	"time"

	"pado/internal/core"
	"pado/internal/obs"
	"pado/internal/storage"
)

// Config parameterizes the runtime.
type Config struct {
	// Plan holds physical-planning knobs (reduce parallelism).
	Plan core.PlanConfig

	// Tracer, when non-nil, records the run's structured event stream
	// (task launches/relaunches, evictions, push/commit and fetch
	// waves, stage transitions) for export as a Chrome trace or text
	// timeline. Nil disables tracing at near-zero cost. One tracer per
	// job: its virtual clock starts when the tracer is created.
	Tracer *obs.Tracer

	// PartialAggregation enables §3.2.7 task output partial
	// aggregation on combiner stages (on by default; Disable* fields
	// exist so the zero value enables the paper's defaults).
	DisablePartialAggregation bool
	// AggMaxTasks bounds how many task outputs may be merged in an
	// executor-level aggregation buffer before it must flush (§3.2.7's
	// "upper limit for the number of aggregated tasks"). Default 4.
	AggMaxTasks int
	// AggMaxDelay bounds how long aggregated data may linger on a
	// transient executor before escaping to reserved executors
	// (§3.2.7's upper limit for time). Default 50ms.
	AggMaxDelay time.Duration

	// DisableCache turns off task input caching and cache-aware
	// scheduling (§3.2.7).
	DisableCache bool
	// CacheCapacity is the per-executor input cache budget in bytes.
	// Default 64 MiB.
	CacheCapacity int64

	// PullBoundaries replaces the push path with pull-based boundary
	// transfers (ablation only: receivers fetch transient task outputs
	// from the transient executors' local stores, exposing them to
	// evictions the way Spark's shuffle files are).
	PullBoundaries bool

	// EventQueue sizes the master's event channel. Default 8192.
	EventQueue int

	// MaxTaskFailures aborts the job once a single task has failed this
	// many times (default 50). Chaos tests tighten it to prove the abort
	// path; pathological schedules loosen it.
	MaxTaskFailures int
	// MaxStageRestarts aborts the job once a single stage has been reset
	// this many times (default 100).
	MaxStageRestarts int

	// Failure parameterizes the failure-handling plane: the heartbeat
	// failure detector on the master and the unified RPC policy
	// (deadlines, budgeted backoff retries, per-destination circuit
	// breakers) on every data-plane connection pool. The zero value
	// enables both with conservative defaults; see FailureConfig.
	Failure FailureConfig

	// ReplicateStageOutputs ring-replicates every finalized reserved
	// stage-output partition to the next output executor, so fetches can
	// route around a primary whose circuit breaker is open (gray-failure
	// tolerance). Off by default: it doubles reserved-side storage and
	// adds a background store per partition.
	ReplicateStageOutputs bool

	// OnManager, when non-nil, is called with the single-job manager
	// right after it starts, before the job is submitted. Run/RunPlan
	// construct their JobManager internally; this hook is how callers
	// (padorun's -http flag) attach the live introspection plane to it.
	// The manager is valid until Run/RunPlan returns.
	OnManager func(*JobManager)

	// Commits, when non-nil, enables incremental re-execution: the
	// manager serves this content-addressed commit store over dedicated
	// simnet nodes, probes it with the plan's stage/task cache keys at
	// submission (skipping work whose output is already stored), and
	// writes finished reserved-stage outputs back into it. The store
	// object outlives individual runs, which is what lets a rerun with
	// mostly-unchanged inputs skip the unchanged cone (DESIGN.md §14).
	Commits *storage.CommitStore

	// Chaos, when non-nil, lets a fault-injection engine
	// (internal/chaos) perturb the master's control plane — today, delay
	// or duplicate the commit events relayed to receivers — to stress
	// the §3.2.5 output-commit protocol.
	Chaos ChaosHook
}

// ChaosHook is the runtime side of control-plane fault injection. It is
// implemented by internal/chaos; the runtime only consults it.
type ChaosHook interface {
	// CommitRelay is called once per receiver as the master relays a
	// task's output commit (§3.2.5). job identifies the committing job
	// on a multi-job manager, so faults can target one job's protocol
	// without perturbing its neighbors. It returns how long to delay
	// that relay and how many duplicate commit messages to send after
	// the original — both zero in the common (unperturbed) case. Called
	// from the manager event loop; must not block.
	CommitRelay(job, stage, frag, task, attempt, recvIdx int) (delay time.Duration, duplicates int)
}

func (c Config) aggMaxTasks() int {
	if c.AggMaxTasks <= 0 {
		return 4
	}
	return c.AggMaxTasks
}

func (c Config) aggMaxDelay() time.Duration {
	if c.AggMaxDelay <= 0 {
		return 50 * time.Millisecond
	}
	return c.AggMaxDelay
}

func (c Config) cacheCapacity() int64 {
	if c.CacheCapacity <= 0 {
		return 64 << 20
	}
	return c.CacheCapacity
}

func (c Config) eventQueue() int {
	if c.EventQueue <= 0 {
		return 8192
	}
	return c.EventQueue
}

func (c Config) maxTaskFailures() int {
	if c.MaxTaskFailures <= 0 {
		return 50
	}
	return c.MaxTaskFailures
}

func (c Config) maxStageRestarts() int {
	if c.MaxStageRestarts <= 0 {
		return 100
	}
	return c.MaxStageRestarts
}
