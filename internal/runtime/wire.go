package runtime

import (
	"errors"
	"fmt"

	"pado/internal/data"
)

// Executor data-plane frame types.
const (
	framePush      = 'H' // boundary push to a receiver
	frameFetch     = 'F' // block fetch from a local store
	frameResult    = 'R' // terminal-transient result push to the master
	frameStore     = 'S' // block store into a local store (progress metadata)
	frameHeartbeat = 'B' // executor liveness beat to the master (no response)
	respOK         = 'K'
	respNo         = 'N'
)

// pushFrame is one boundary transfer to one reserved receiver task. It
// may cover several sender tasks when executor-level partial aggregation
// merged their outputs (§3.2.7); the receiver processes it only once
// every covered task's commit has arrived through the master (§3.2.5).
type pushFrame struct {
	Job      int
	Stage    int
	Gen      int
	RecvIdx  int
	Frag     int
	Cover    []senderRef // covered (task index, attempt) pairs
	Sections []pushSection
}

// senderRef identifies one sender task attempt.
type senderRef struct {
	Index   int
	Attempt int
}

// pushSection carries the payload of one boundary edge.
type pushSection struct {
	Tag        string
	Aggregated bool // payload is accumulator records, not raw records
	Payload    []byte
}

func writePushFrame(e *data.Encoder, f *pushFrame) error {
	if err := e.Byte(framePush); err != nil {
		return err
	}
	e.Varint(int64(f.Job))
	e.Varint(int64(f.Stage))
	e.Varint(int64(f.Gen))
	e.Varint(int64(f.RecvIdx))
	e.Varint(int64(f.Frag))
	e.Uvarint(uint64(len(f.Cover)))
	for _, c := range f.Cover {
		e.Varint(int64(c.Index))
		e.Varint(int64(c.Attempt))
	}
	e.Uvarint(uint64(len(f.Sections)))
	for _, s := range f.Sections {
		e.String(s.Tag)
		b := byte(0)
		if s.Aggregated {
			b = 1
		}
		e.Byte(b)
		if err := e.Bytes(s.Payload); err != nil {
			return err
		}
	}
	return e.Flush()
}

func readPushFrame(d *data.Decoder) (*pushFrame, error) {
	f := &pushFrame{}
	v, err := d.Varint()
	if err != nil {
		return nil, err
	}
	f.Job = int(v)
	if v, err = d.Varint(); err != nil {
		return nil, err
	}
	f.Stage = int(v)
	if v, err = d.Varint(); err != nil {
		return nil, err
	}
	f.Gen = int(v)
	if v, err = d.Varint(); err != nil {
		return nil, err
	}
	f.RecvIdx = int(v)
	if v, err = d.Varint(); err != nil {
		return nil, err
	}
	f.Frag = int(v)
	n, err := d.Uvarint()
	if err != nil {
		return nil, err
	}
	if n > 1<<20 {
		return nil, fmt.Errorf("runtime: push cover %d too large", n)
	}
	f.Cover = make([]senderRef, n)
	for i := range f.Cover {
		idx, err := d.Varint()
		if err != nil {
			return nil, err
		}
		at, err := d.Varint()
		if err != nil {
			return nil, err
		}
		f.Cover[i] = senderRef{Index: int(idx), Attempt: int(at)}
	}
	ns, err := d.Uvarint()
	if err != nil {
		return nil, err
	}
	if ns > 1<<16 {
		return nil, fmt.Errorf("runtime: push sections %d too large", ns)
	}
	f.Sections = make([]pushSection, ns)
	for i := range f.Sections {
		tag, err := d.String()
		if err != nil {
			return nil, err
		}
		agg, err := d.Byte()
		if err != nil {
			return nil, err
		}
		payload, err := d.Bytes(0)
		if err != nil {
			return nil, err
		}
		f.Sections[i] = pushSection{Tag: tag, Aggregated: agg == 1, Payload: payload}
	}
	return f, nil
}

// sendPush delivers a frame to the receiver's executor node over a pooled
// connection and waits for the acknowledgement.
func sendPush(pool *connPool, to string, f *pushFrame) error {
	return pool.doOp("push", to, func(e *data.Encoder, d *data.Decoder) error {
		if err := writePushFrame(e, f); err != nil {
			return err
		}
		resp, err := d.Byte()
		if err != nil {
			return err
		}
		if resp != respOK {
			return fmt.Errorf("push to %s (stage %d recv %d): %w", to, f.Stage, f.RecvIdx, errPushRejected)
		}
		return nil
	})
}

// errBlockNotFound marks a fetch of a missing block.
var errBlockNotFound = errors.New("runtime: block not found")

// errPushRejected marks a push to an executor that no longer hosts the
// receiver — a benign race with stage restarts or recovery.
var errPushRejected = errors.New("runtime: push rejected")

// fetchBlock pulls a named block from owner's local store over a pooled
// connection.
func fetchBlock(pool *connPool, owner, blockID string) ([]byte, error) {
	var payload []byte
	err := pool.doOp("fetch", owner, func(e *data.Encoder, d *data.Decoder) error {
		if err := e.Byte(frameFetch); err != nil {
			return err
		}
		if err := e.String(blockID); err != nil {
			return err
		}
		if err := e.Flush(); err != nil {
			return err
		}
		resp, err := d.Byte()
		if err != nil {
			return fmt.Errorf("fetch %q from %s: %w", blockID, owner, err)
		}
		if resp != respOK {
			return fmt.Errorf("fetch %q from %s: %w", blockID, owner, errBlockNotFound)
		}
		payload, err = d.Bytes(0)
		return err
	})
	if err != nil {
		return nil, err
	}
	return payload, nil
}

// resultFrame is a terminal-transient stage's output push to the master.
type resultFrame struct {
	Job     int
	Stage   int
	Gen     int
	Index   int
	Attempt int
	Payload []byte
}

func sendResult(pool *connPool, masterID string, f *resultFrame) error {
	return pool.doOp("collect", masterID, func(e *data.Encoder, d *data.Decoder) error {
		if err := e.Byte(frameResult); err != nil {
			return err
		}
		e.Varint(int64(f.Job))
		e.Varint(int64(f.Stage))
		e.Varint(int64(f.Gen))
		e.Varint(int64(f.Index))
		e.Varint(int64(f.Attempt))
		if err := e.Bytes(f.Payload); err != nil {
			return err
		}
		if err := e.Flush(); err != nil {
			return err
		}
		resp, err := d.Byte()
		if err != nil {
			return err
		}
		if resp != respOK {
			return fmt.Errorf("runtime: result push rejected")
		}
		return nil
	})
}

func readResultFrame(d *data.Decoder) (*resultFrame, error) {
	f := &resultFrame{}
	v, err := d.Varint()
	if err != nil {
		return nil, err
	}
	f.Job = int(v)
	if v, err = d.Varint(); err != nil {
		return nil, err
	}
	f.Stage = int(v)
	if v, err = d.Varint(); err != nil {
		return nil, err
	}
	f.Gen = int(v)
	if v, err = d.Varint(); err != nil {
		return nil, err
	}
	f.Index = int(v)
	if v, err = d.Varint(); err != nil {
		return nil, err
	}
	f.Attempt = int(v)
	if f.Payload, err = d.Bytes(0); err != nil {
		return nil, err
	}
	return f, nil
}

// heartbeatFrame is one executor liveness beat. Open lists destinations
// the sender's circuit breakers currently hold open or probing — the
// gray-failure signal the master's detector aggregates across reporters.
// Heartbeats are fire-and-forget: no response byte, so a slow master
// never backpressures the sender's beat cadence.
type heartbeatFrame struct {
	ID   string
	Seq  int
	Open []string
}

func writeHeartbeat(e *data.Encoder, f *heartbeatFrame) error {
	if err := e.Byte(frameHeartbeat); err != nil {
		return err
	}
	if err := e.String(f.ID); err != nil {
		return err
	}
	e.Uvarint(uint64(f.Seq))
	e.Uvarint(uint64(len(f.Open)))
	for _, d := range f.Open {
		if err := e.String(d); err != nil {
			return err
		}
	}
	return e.Flush()
}

func readHeartbeat(d *data.Decoder) (*heartbeatFrame, error) {
	f := &heartbeatFrame{}
	var err error
	if f.ID, err = d.String(); err != nil {
		return nil, err
	}
	seq, err := d.Uvarint()
	if err != nil {
		return nil, err
	}
	f.Seq = int(seq)
	n, err := d.Uvarint()
	if err != nil {
		return nil, err
	}
	if n > 1<<16 {
		return nil, fmt.Errorf("runtime: heartbeat with %d open dests", n)
	}
	if n > 0 {
		f.Open = make([]string, n)
		for i := range f.Open {
			if f.Open[i], err = d.String(); err != nil {
				return nil, err
			}
		}
	}
	return f, nil
}

// stageBlockID names a stage-output partition block. Block names are
// scoped by job so concurrent jobs sharing a container's local store
// never collide, and include the stage generation so recomputed outputs
// never collide with stale blocks.
func stageBlockID(job, stage, gen, part int) string {
	return fmt.Sprintf("so/%d/%d/%d/%d", job, stage, gen, part)
}

// taskBlockID names a transient task's locally stored boundary output in
// pull-boundary (ablation) mode, scoped by job like stageBlockID.
func taskBlockID(job, stage, gen, frag, task, attempt, recv int) string {
	return fmt.Sprintf("tb/%d/%d/%d/%d/%d/%d/%d", job, stage, gen, frag, task, attempt, recv)
}
