package runtime

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pado/internal/cluster"
	"pado/internal/metrics"
	"pado/internal/obs"
	"pado/internal/testutil"
	"pado/internal/trace"
)

// checkSnapshot asserts the structural invariants every Inspect
// snapshot must satisfy, torn views being exactly what the
// on-the-loop construction is supposed to rule out: no job both
// admitted and queued, task tallies that sum, budget arithmetic in
// range, and no node holding more slots than it has.
func checkSnapshot(t *testing.T, st *ManagerState, slots int) {
	t.Helper()
	if st.Version != InspectVersion {
		t.Errorf("snapshot version %d, want %d", st.Version, InspectVersion)
	}
	admitted := map[int]bool{}
	for _, j := range st.Jobs {
		if admitted[j.ID] {
			t.Errorf("job %d appears twice in Jobs", j.ID)
		}
		admitted[j.ID] = true
		var w, r, c, cm int
		for _, s := range j.Stages {
			if got := s.TasksWaiting + s.TasksRunning + s.TasksComputed + s.TasksCommitted; got != s.TasksTotal {
				t.Errorf("job %d stage %d: task states sum to %d, total %d (torn view)",
					j.ID, s.ID, got, s.TasksTotal)
			}
			w += s.TasksWaiting
			r += s.TasksRunning
			c += s.TasksComputed
			cm += s.TasksCommitted
		}
		if j.TasksWaiting != w || j.TasksRunning != r || j.TasksComputed != c || j.TasksCommitted != cm {
			t.Errorf("job %d: job tallies (%d/%d/%d/%d) disagree with stage sums (%d/%d/%d/%d)",
				j.ID, j.TasksWaiting, j.TasksRunning, j.TasksComputed, j.TasksCommitted, w, r, c, cm)
		}
	}
	for i, q := range st.Queue {
		if admitted[q.ID] {
			t.Errorf("job %d is both admitted and queued", q.ID)
		}
		if q.Position != i {
			t.Errorf("queue entry %d has position %d", i, q.Position)
		}
	}
	if st.BudgetFree < 0 || st.BudgetFree > st.BudgetTotal {
		t.Errorf("budget free %d outside [0, %d]", st.BudgetFree, st.BudgetTotal)
	}
	seen := map[string]bool{}
	for _, n := range st.Nodes {
		if seen[n.ID] {
			t.Errorf("node %s appears twice", n.ID)
		}
		seen[n.ID] = true
		if n.SlotsFree < 0 || n.SlotsFree > slots {
			t.Errorf("node %s: slots free %d outside [0, %d]", n.ID, n.SlotsFree, slots)
		}
		if n.RunningTasks < 0 || n.RunningTasks+n.SlotsFree > slots {
			t.Errorf("node %s: %d running tasks + %d free slots exceeds %d slots",
				n.ID, n.RunningTasks, n.SlotsFree, slots)
		}
	}
}

// TestInspectConsistentUnderChaos hammers Inspect from several
// goroutines while three jobs run through an eviction storm plus
// silent node kills (the failure detector's hardest case), asserting
// every snapshot is internally consistent and that silently killed
// nodes eventually leave the node list instead of lingering dead with
// running tasks.
func TestInspectConsistentUnderChaos(t *testing.T) {
	testutil.Watchdog(t, 90*time.Second)
	const slots = 4 // newTestCluster's per-container slot count
	cl := newTestCluster(t, 8, 2, trace.RateHigh)
	tracer := obs.New()
	fleet := &metrics.Job{}
	tracer.FeedCounters(fleet)
	jm, err := NewJobManager(cl, ManagerConfig{
		Tracer:  tracer,
		Metrics: fleet,
		Failure: FailureConfig{
			HeartbeatEvery: 10 * time.Millisecond,
			SuspectAfter:   40 * time.Millisecond,
			DeadAfter:      150 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatalf("manager: %v", err)
	}
	defer jm.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	const n = 3
	handles := make([]*JobHandle, n)
	expects := make([]map[string]int64, n)
	for i := 0; i < n; i++ {
		handles[i], expects[i] = submitWordCount(t, jm, 4, 150+10*i,
			Config{Tracer: tracer, MaxTaskFailures: 1000}, JobOptions{})
	}

	// Silent kills on top of the organic eviction storm: the node
	// vanishes with no eviction notice, so only heartbeat staleness can
	// reveal it — the window where a stale view would show a dead node
	// still holding tasks.
	var killMu sync.Mutex
	var killed []string
	go func() {
		for i := 0; i < 3; i++ {
			select {
			case <-ctx.Done():
				return
			case <-time.After(120 * time.Millisecond):
			}
			live := cl.Containers(cluster.Transient)
			if len(live) == 0 {
				return
			}
			id := live[0].ID
			if err := cl.KillSilently(id, true); err == nil {
				killMu.Lock()
				killed = append(killed, id)
				killMu.Unlock()
			}
		}
	}()

	// Concurrent pollers: every snapshot taken mid-storm must hold the
	// invariants.
	done := make(chan struct{})
	var polls atomic.Int64
	var wg sync.WaitGroup
	for p := 0; p < 3; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				st, err := jm.Inspect(ctx)
				if err != nil {
					return
				}
				checkSnapshot(t, st, slots)
				polls.Add(1)
			}
		}()
	}

	for i := 0; i < n; i++ {
		res, err := handles[i].Wait(ctx)
		if err != nil {
			t.Fatalf("job %d: %v", handles[i].ID(), err)
		}
		checkWordCount(t, res, expects[i])
	}
	close(done)
	wg.Wait()
	if polls.Load() < 10 {
		t.Errorf("only %d successful Inspect polls during the run", polls.Load())
	}

	// Eventually-consistent departure: once the detector declares a
	// silently killed node dead, it must leave the snapshot entirely —
	// never linger as a dead node holding running tasks.
	killMu.Lock()
	gone := append([]string(nil), killed...)
	killMu.Unlock()
	if len(gone) == 0 {
		t.Fatalf("no silent kills landed; the chaos half of the test did not run")
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		st, err := jm.Inspect(ctx)
		if err != nil {
			t.Fatalf("final inspect: %v", err)
		}
		lingering := 0
		for _, node := range st.Nodes {
			for _, id := range gone {
				if node.ID == id {
					lingering++
					if node.RunningTasks > 0 && node.Detector != "suspect" {
						t.Errorf("killed node %s healthy with %d running tasks", id, node.RunningTasks)
					}
				}
			}
		}
		if lingering == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("%d silently killed node(s) still in the snapshot after %v", lingering, 5*time.Second)
		}
		time.Sleep(20 * time.Millisecond)
	}
}
