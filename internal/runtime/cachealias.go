package runtime

import "pado/internal/recache"

// cacheKey and inputCache alias the shared executor input cache
// (§3.2.7), which the Spark-like baseline reuses for RDD-style caching.
type cacheKey = recache.Key

type inputCache = recache.Cache

func newInputCache(capacity int64) *inputCache { return recache.New(capacity) }
