package runtime

import (
	"context"
	"strings"
	"testing"
	"time"

	"pado/internal/chaos"
	"pado/internal/cluster"
	"pado/internal/core"
	"pado/internal/metrics"
	"pado/internal/obs"
	"pado/internal/trace"
	"pado/internal/vtime"
)

// submitWordCount submits one wordcount job to jm and returns its handle
// plus the expected reduced output.
func submitWordCount(t *testing.T, jm *JobManager, parts, recs int, cfg Config, opts JobOptions) (*JobHandle, map[string]int64) {
	t.Helper()
	pipe, expect := buildWordCount(parts, recs)
	h, err := jm.Submit(pipe.Graph(), cfg, opts)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	return h, expect
}

// TestMultiJobConcurrent runs three wordcount jobs concurrently on one
// shared cluster: each must produce its own correct output, and the
// per-job metric scopes must count only their own job's tasks.
func TestMultiJobConcurrent(t *testing.T) {
	cl := newTestCluster(t, 6, 2, trace.RateNone)
	tracer := obs.New()
	jm, err := NewJobManager(cl, ManagerConfig{Tracer: tracer})
	if err != nil {
		t.Fatalf("manager: %v", err)
	}
	defer jm.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	const n = 3
	handles := make([]*JobHandle, n)
	expects := make([]map[string]int64, n)
	mets := make([]*metrics.Job, n)
	for i := 0; i < n; i++ {
		mets[i] = &metrics.Job{}
		handles[i], expects[i] = submitWordCount(t, jm, 4, 120+10*i, Config{Tracer: tracer}, JobOptions{Metrics: mets[i]})
	}
	for i := 0; i < n; i++ {
		res, err := handles[i].Wait(ctx)
		if err != nil {
			t.Fatalf("job %d: %v", handles[i].ID(), err)
		}
		checkWordCount(t, res, expects[i])
		if res.Metrics.OriginalTasks == 0 {
			t.Errorf("job %d: no tasks counted in its own metric scope", handles[i].ID())
		}
	}

	// Metric isolation: the sum of per-job original tasks must equal
	// each job's own count summed, and no scope may see another job's
	// tasks (each job has 4 source + 4 map fragments, same shape).
	want := mets[0].Counter("original_tasks").Load()
	for i := 1; i < n; i++ {
		if got := mets[i].Counter("original_tasks").Load(); got != want {
			t.Errorf("job scopes diverge: met[%d] original_tasks=%d, met[0]=%d", i, got, want)
		}
	}

	// Event isolation: every task-level event must carry a job id, and
	// all three jobs must appear in the shared trace.
	seen := map[int]bool{}
	for _, ev := range tracer.Events() {
		if ev.Kind == obs.TaskLaunched {
			if ev.Job == 0 {
				t.Fatalf("task event without job id: %+v", ev)
			}
			seen[ev.Job] = true
		}
	}
	if len(seen) != n {
		t.Errorf("trace saw task launches from %d jobs, want %d", len(seen), n)
	}
}

// TestAdmissionQueueing pins the admission-control path: with a budget
// that fits one job at a time, the second submission must queue (with a
// JobQueued event), then admit and complete once the first finishes.
func TestAdmissionQueueing(t *testing.T) {
	cl := newTestCluster(t, 6, 2, trace.RateNone)
	tracer := obs.New()
	jm, err := NewJobManager(cl, ManagerConfig{
		Env:    core.PolicyEnv{ReservedSlotBudget: 8},
		Tracer: tracer,
	})
	if err != nil {
		t.Fatalf("manager: %v", err)
	}
	defer jm.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	h1, exp1 := submitWordCount(t, jm, 4, 100, Config{Tracer: tracer}, JobOptions{ReservedSlots: 8})
	h2, exp2 := submitWordCount(t, jm, 4, 100, Config{Tracer: tracer}, JobOptions{ReservedSlots: 8})

	res1, err := h1.Wait(ctx)
	if err != nil {
		t.Fatalf("job 1: %v", err)
	}
	res2, err := h2.Wait(ctx)
	if err != nil {
		t.Fatalf("job 2: %v", err)
	}
	checkWordCount(t, res1, exp1)
	checkWordCount(t, res2, exp2)

	var queued, admitted2 bool
	var queuedAt, admittedAt int
	for i, ev := range tracer.Events() {
		switch {
		case ev.Kind == obs.JobQueued && ev.Job == h2.ID():
			queued, queuedAt = true, i
		case ev.Kind == obs.JobAdmitted && ev.Job == h2.ID():
			admitted2, admittedAt = true, i
		}
	}
	if !queued {
		t.Fatal("second job never queued despite an exhausted budget")
	}
	if !admitted2 || admittedAt < queuedAt {
		t.Fatal("second job was not admitted after queueing")
	}
}

// TestAdmissionReject covers both rejection paths: demand larger than
// the whole cell, and a full admission queue.
func TestAdmissionReject(t *testing.T) {
	cl := newTestCluster(t, 6, 2, trace.RateNone)
	tracer := obs.New()
	jm, err := NewJobManager(cl, ManagerConfig{
		Env:           core.PolicyEnv{ReservedSlotBudget: 8},
		Tracer:        tracer,
		MaxQueuedJobs: 1,
	})
	if err != nil {
		t.Fatalf("manager: %v", err)
	}
	defer jm.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	hBig, _ := submitWordCount(t, jm, 2, 50, Config{Tracer: tracer}, JobOptions{ReservedSlots: 9})
	if _, err := hBig.Wait(ctx); err == nil || !strings.Contains(err.Error(), "exceeds cell budget") {
		t.Fatalf("oversized demand: err = %v, want cell-budget rejection", err)
	}

	// Fill the cell, fill the queue, then overflow it.
	hRun, expRun := submitWordCount(t, jm, 4, 200, Config{Tracer: tracer}, JobOptions{ReservedSlots: 8})
	hQueued, expQueued := submitWordCount(t, jm, 2, 50, Config{Tracer: tracer}, JobOptions{ReservedSlots: 8})
	hOver, _ := submitWordCount(t, jm, 2, 50, Config{Tracer: tracer}, JobOptions{ReservedSlots: 8})
	if _, err := hOver.Wait(ctx); err == nil || !strings.Contains(err.Error(), "admission queue full") {
		t.Fatalf("queue overflow: err = %v, want queue-full rejection", err)
	}

	res, err := hRun.Wait(ctx)
	if err != nil {
		t.Fatalf("running job: %v", err)
	}
	checkWordCount(t, res, expRun)
	res, err = hQueued.Wait(ctx)
	if err != nil {
		t.Fatalf("queued job: %v", err)
	}
	checkWordCount(t, res, expQueued)
}

// TestEvictionStormIsolation is the cross-job blast-radius regression:
// a chaos rule fires an eviction storm keyed to job A's task launches;
// job B shares the cluster, so its tasks relaunch, but B's exactly-once
// and relaunch invariants must hold and its output must stay correct.
func TestEvictionStormIsolation(t *testing.T) {
	cl := newTestCluster(t, 8, 2, trace.RateNone)
	tracer := obs.New()
	jm, err := NewJobManager(cl, ManagerConfig{Tracer: tracer})
	if err != nil {
		t.Fatalf("manager: %v", err)
	}
	defer jm.Close()

	// Job ids are assigned in submission order: A=1, B=2. Rules fire
	// once each, so the storm is several evictions pinned to successive
	// launches of job A's tasks.
	var rules []chaos.Rule
	for _, count := range []int{2, 6, 10} {
		tr := chaos.On("task_launched")
		tr.Job = 1
		tr.Count = count
		rules = append(rules, chaos.Rule{
			Trigger: tr,
			Fault:   chaos.Fault{Op: chaos.OpEvict, Target: "@event", Stage: chaos.Any},
		})
	}
	plan := &chaos.Plan{Name: "storm-a", Rules: rules}
	if err := plan.Validate(); err != nil {
		t.Fatal(err)
	}
	eng := chaos.NewEngine(plan, cl)
	eng.Attach(tracer)
	defer eng.Stop()

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	cfg := Config{Tracer: tracer, Chaos: eng}
	hA, expA := submitWordCount(t, jm, 6, 200, cfg, JobOptions{Name: "storm-target"})
	hB, expB := submitWordCount(t, jm, 6, 200, cfg, JobOptions{Name: "bystander"})

	resA, errA := hA.Wait(ctx)
	resB, errB := hB.Wait(ctx)
	if errA != nil || errB != nil {
		t.Fatalf("jobs failed under storm: A=%v B=%v", errA, errB)
	}
	checkWordCount(t, resA, expA)
	checkWordCount(t, resB, expB)

	eng.Stop()
	if len(eng.Injections()) == 0 {
		t.Fatal("eviction storm never fired")
	}
	events := tracer.Events()
	for _, h := range []*JobHandle{hA, hB} {
		parents := stageParents(resA.Plan)
		if h == hB {
			parents = stageParents(resB.Plan)
		}
		if rep := chaos.CheckJob(events, h.ID(), parents); !rep.OK() {
			t.Errorf("job %d invariants under storm: %s", h.ID(), rep)
		}
	}
}

func stageParents(plan *core.Plan) map[int][]int {
	parents := make(map[int][]int, len(plan.Stages))
	for _, ps := range plan.Stages {
		parents[ps.ID] = ps.Parents
	}
	return parents
}

// TestWeightedFairSharing: a small job submitted alongside a much larger
// one must not be starved — it completes while the large job is still
// running, and the task launches of the two jobs interleave.
func TestWeightedFairSharing(t *testing.T) {
	// A CPU-limited cluster makes the big job's compute genuinely long,
	// so completion order reflects scheduling, not noise.
	cl, err := cluster.New(cluster.Config{
		Transient:        4,
		Reserved:         2,
		Slots:            4,
		CPURecordsPerSec: 100_000,
		Lifetimes:        trace.Lifetimes(trace.RateNone),
		Scale:            vtime.NewScale(50 * time.Millisecond),
		MinLifetime:      30 * time.Millisecond,
		Seed:             42,
	})
	if err != nil {
		t.Fatalf("cluster: %v", err)
	}
	tracer := obs.New()
	jm, err := NewJobManager(cl, ManagerConfig{Tracer: tracer})
	if err != nil {
		t.Fatalf("manager: %v", err)
	}
	defer jm.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	// A short aggregation flush keeps the fixed per-stage latency well
	// below the big job's compute, so sizes dominate completion order.
	// The big job must overrun the limiter's per-container burst
	// (rate/4 = 25k records) by a wide margin or its compute is free
	// and completion order degenerates to scheduling noise: 12 parts x
	// 20k records is ~60k records per transient, ~350ms of throttled
	// compute, against the small job's burst-covered 120 records.
	cfg := Config{Tracer: tracer, AggMaxDelay: 2 * time.Millisecond}
	big, expBig := submitWordCount(t, jm, 12, 20000, cfg, JobOptions{Name: "big"})
	small, expSmall := submitWordCount(t, jm, 2, 60, cfg, JobOptions{Name: "small", Weight: 2})

	resSmall, err := small.Wait(ctx)
	if err != nil {
		t.Fatalf("small job: %v", err)
	}
	resBig, err := big.Wait(ctx)
	if err != nil {
		t.Fatalf("big job: %v", err)
	}
	checkWordCount(t, resSmall, expSmall)
	checkWordCount(t, resBig, expBig)

	// The small job must finish before the big one (no head-of-line
	// starvation), and must have launched tasks before the big job
	// finished (interleaved scheduling, not run-after).
	var smallDone, bigDone, smallFirstLaunch int
	smallFirstLaunch = -1
	for i, ev := range tracer.Events() {
		switch {
		case ev.Kind == obs.JobCompleted && ev.Job == small.ID():
			smallDone = i
		case ev.Kind == obs.JobCompleted && ev.Job == big.ID():
			bigDone = i
		case ev.Kind == obs.TaskLaunched && ev.Job == small.ID() && smallFirstLaunch < 0:
			smallFirstLaunch = i
		}
	}
	if smallDone > bigDone {
		t.Errorf("small job finished after the big job (starved): small@%d big@%d", smallDone, bigDone)
	}
	if smallFirstLaunch < 0 || smallFirstLaunch > bigDone {
		t.Errorf("small job's tasks did not interleave with the big job's")
	}
}

// TestMultiJobDeterminism is the multi-job half of the CI determinism
// gate: the same seeds and chaos plan must yield the same per-job
// invariant digests across two independent runs.
func TestMultiJobDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-job determinism skipped in short mode")
	}
	run := func() map[int]string {
		cl := newTestCluster(t, 6, 2, trace.RateNone)
		tracer := obs.New()
		jm, err := NewJobManager(cl, ManagerConfig{Tracer: tracer})
		if err != nil {
			t.Fatalf("manager: %v", err)
		}
		defer jm.Close()

		plan := &chaos.Plan{Name: "mj-det", Rules: []chaos.Rule{
			{Trigger: func() chaos.Trigger {
				tr := chaos.On("push_started")
				tr.Count = 2
				return tr
			}(), Fault: chaos.Fault{Op: chaos.OpEvict, Target: "@event", Stage: chaos.Any}},
		}}
		if err := plan.Validate(); err != nil {
			t.Fatal(err)
		}
		eng := chaos.NewEngine(plan, cl)
		eng.Attach(tracer)
		defer eng.Stop()

		ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
		defer cancel()
		cfg := Config{Tracer: tracer, Chaos: eng}
		h1, exp1 := submitWordCount(t, jm, 4, 150, cfg, JobOptions{})
		h2, exp2 := submitWordCount(t, jm, 4, 300, cfg, JobOptions{})
		res1, err := h1.Wait(ctx)
		if err != nil {
			t.Fatalf("job 1: %v", err)
		}
		res2, err := h2.Wait(ctx)
		if err != nil {
			t.Fatalf("job 2: %v", err)
		}
		checkWordCount(t, res1, exp1)
		checkWordCount(t, res2, exp2)

		eng.Stop()
		events := tracer.Events()
		digests := make(map[int]string, 2)
		for _, hr := range []struct {
			h   *JobHandle
			res *Result
		}{{h1, res1}, {h2, res2}} {
			rep := chaos.CheckJob(events, hr.h.ID(), stageParents(hr.res.Plan))
			if !rep.OK() {
				t.Fatalf("job %d invariants: %s", hr.h.ID(), rep)
			}
			digests[hr.h.ID()] = rep.Digest(chaos.Canonical(hr.res.Outputs))
		}
		return digests
	}
	a, b := run(), run()
	for id, da := range a {
		if db := b[id]; da != db {
			t.Errorf("job %d digest mismatch across identical runs:\n%s\n%s", id, da, db)
		}
	}
}
