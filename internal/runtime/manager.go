package runtime

import (
	"context"
	"errors"
	"fmt"
	"slices"
	"sync"
	"time"

	"pado/internal/cluster"
	"pado/internal/core"
	"pado/internal/dag"
	"pado/internal/data"
	"pado/internal/metrics"
	"pado/internal/obs"
	"pado/internal/simnet"
	"pado/internal/storage"
)

// errManagerClosed fails jobs that were still outstanding when the
// manager shut down.
var errManagerClosed = errors.New("runtime: job manager closed")

// ManagerConfig parameterizes a resident JobManager.
type ManagerConfig struct {
	// Env describes the shared cell the manager arbitrates. A positive
	// Env.ReservedSlotBudget enables admission control: each job carves a
	// reserved-slot demand out of that budget on admission and returns it
	// on completion; jobs that don't fit wait in the admission queue (or
	// are rejected outright when they could never fit). A zero budget
	// disables admission control — every job is admitted immediately —
	// which is the single-job Run/RunPlan configuration.
	Env core.PolicyEnv

	// Tracer records fleet-wide events (container lifecycle, Job 0) and
	// is the default tracer for jobs submitted without their own.
	Tracer *obs.Tracer

	// Metrics is the fleet-wide registry: container events, admission
	// counters (jobs_submitted/admitted/queued/rejected/completed), and
	// the event-queue overflow counter land here. Nil allocates one.
	Metrics *metrics.Job

	// EventQueue sizes the manager's event channel. Default 8192.
	EventQueue int

	// MaxQueuedJobs bounds the admission queue; once full, further jobs
	// that don't fit the free budget are rejected instead of queued.
	// Zero means unbounded.
	MaxQueuedJobs int

	// Failure parameterizes the failure-handling plane: the heartbeat
	// failure detector on the manager and the RPC policy on every
	// data-plane connection pool (the manager's own and each executor's).
	// The zero value enables both with conservative defaults.
	Failure FailureConfig

	// Commits, when non-nil, enables the incremental re-execution plane
	// (DESIGN.md §14): the manager serves this content-addressed commit
	// store over dedicated simnet nodes, probes it with each submitted
	// plan's stage/task cache keys to skip already-computed work, and
	// writes finished reserved-stage outputs back as commits. The store
	// outlives the manager — hand the same instance to successive
	// managers (or runs) to carry commits across them.
	Commits *storage.CommitStore
}

func (c ManagerConfig) eventQueue() int {
	if c.EventQueue <= 0 {
		return 8192
	}
	return c.EventQueue
}

// JobOptions carries per-job scheduling parameters for Submit.
type JobOptions struct {
	// Name labels the job in traces and errors. Default "job-<id>".
	Name string
	// Weight is the job's share in the deficit-weighted round-robin task
	// scheduler; slots divide proportionally to weight across jobs with
	// runnable tasks. Default 1.
	Weight float64
	// Priority orders the admission queue (higher first; ties by
	// submission order). It does not affect slot scheduling once
	// admitted — that's Weight's job.
	Priority int
	// ReservedSlots is the job's reserved-slot demand against the
	// manager's budget. Zero derives it from the job's plan env budget,
	// clamped to the cell budget.
	ReservedSlots int
	// Metrics is the job's own registry (task counts, bytes, JCT). Nil
	// allocates a fresh one.
	Metrics *metrics.Job
}

// JobHandle is the submitter's side of one job.
type JobHandle struct {
	jm *JobManager
	id int
	j  *jobRun
}

// ID returns the manager-assigned job id (1-based; tags the job's trace
// events).
func (h *JobHandle) ID() int { return h.id }

// Wait blocks until the job completes and returns its result. If ctx
// expires first the job is canceled and reports a timed-out result,
// mirroring the single-job Run semantics.
func (h *JobHandle) Wait(ctx context.Context) (*Result, error) {
	select {
	case <-h.j.done:
	case <-ctx.Done():
		select {
		case h.jm.events <- evCancelJob{ID: h.id}:
		case <-h.jm.quit:
		case <-h.j.done:
		}
		<-h.j.done
	}
	return h.j.result, h.j.err
}

// taskLauncher is the master's dispatch surface onto one per-job
// executor: launch fragment tasks, start/cancel reserved receivers, and
// relay commits. *Executor is the production implementation; scheduler
// benchmarks and the legacy-oracle equivalence tests substitute
// recording fakes so the control plane can be driven without a data
// plane.
type taskLauncher interface {
	Launch(spec taskSpec)
	StartReceiver(spec recvSpec)
	CancelReceiver(stage, gen, idx int)
	Commit(stage, gen, recvIdx int, c msgCommit)
}

// jobRun is the manager's per-job state: the compiled plan, the stage
// state machines, per-job executors on each shared host, and the
// fair-scheduling bookkeeping.
type jobRun struct {
	id       int
	name     string
	seq      int
	weight   float64
	priority int
	// demand is the job's reserved-slot claim against the manager budget.
	demand int

	plan *core.Plan
	cfg  Config
	met  *metrics.Job
	tr   *obs.Buf // job-tagged trace buffer (nil = tracing off)
	// Task-latency histograms, cached off met so the hot handlers skip
	// the registry lookup: launch→computed and launch→commit, in ns.
	histCompute *metrics.Histogram
	histCommit  *metrics.Histogram

	stages     []*stageRun
	cacheIndex map[cacheKey]map[string]bool
	execs      map[string]taskLauncher
	recvActive int
	recvPeak   int
	// deficit is the job's banked scheduling credit (DRR).
	deficit float64

	// Incremental scheduling state (sched.go): runnable tracks tWaiting
	// tasks of sRunning stages over the dense task index, readyStages
	// the pending stages whose waitParents counter hit zero. qNext is
	// the job's dense-index cursor within one assignTasks round.
	runnable    taskBitset
	readyStages taskBitset
	waitParents []int
	qNext       int

	// pinned lists commit-store keys the submission probe pinned; they
	// are unpinned when the job resolves. casWG tracks in-flight commit
	// writes so a successful job's result is not delivered before its
	// manifests are durable in the store.
	pinned []string
	casWG  sync.WaitGroup

	finished bool
	failErr  error
	timedOut bool
	t0       time.Time

	done   chan struct{}
	result *Result
	err    error
}

// JobManager is a resident multi-job master (the tentpole refactor of
// the one-master-per-job runtime): it owns the shared cluster, admits
// jobs against a reserved-slot budget, runs every admitted job's §3.2
// master logic on one event loop, and divides transient slots across
// jobs with deficit-weighted round-robin so concurrent jobs share the
// cell fairly.
type JobManager struct {
	cfg ManagerConfig
	cl  *cluster.Cluster
	net *simnet.Network
	met *metrics.Job // fleet registry
	tr  *obs.Buf     // fleet trace buffer (events carry Job 0)
	// pool reuses manager-originated data-plane connections (progress
	// replication, output collection).
	pool *connPool
	// fd is the heartbeat failure detector (nil when disabled). beat()
	// is fed by collector goroutines; register/forget/tick run on the
	// event loop.
	fd *failureDetector
	// g caches the fleet registry's live-introspection gauges; the loop
	// refreshes them after every handled event (inspect.go).
	g managerGauges
	// commits is the incremental re-execution plane (nil when
	// ManagerConfig.Commits is unset): the served commit store, its
	// dedicated simnet nodes, and the master-side client.
	commits *commitPlane

	events chan event
	// overflow carries the first "event queue full" error out of the
	// cluster callbacks; the run loop turns it into a loud failure of
	// every job.
	overflow chan error

	// Event-loop-confined fleet state.
	hosts          map[string]*nodeHost
	kinds          map[string]cluster.Kind
	slotsFree      map[string]int
	transientOrder []string
	reservedOrder  []string
	rrTask         int
	rrRecv         int
	rrJob          int
	assignments    map[taskRef]string // outstanding slot holders
	// freeSlots indexes total free slots per container kind
	// (cluster.Reserved / cluster.Transient), kept in lockstep with
	// slotsFree so pickExecutor detects a saturated pool in O(1).
	freeSlots [2]int
	// qScratch is assignTasks' per-round queue of runnable jobs, reused
	// across rounds so steady-state scheduling allocates nothing.
	qScratch []*jobRun
	// Cached scheduler counters (metrics.go names; avoid per-event
	// registry lookups on the hot path).
	cSchedRounds   *metrics.Counter
	cTasksScanned  *metrics.Counter
	cSlotIndexHits *metrics.Counter

	// Event-loop-confined job state. order lists admitted job ids in
	// admission order and is the only iteration source for per-job
	// passes, keeping multi-job scheduling deterministic.
	jobs  map[int]*jobRun
	order []int
	queue []*jobRun // waiting for budget; priority desc, then seq

	budgetTotal int
	budgetFree  int
	// broken, once set, rejects all future submissions (the manager
	// dropped a cluster event and its fleet view can't be trusted).
	broken error

	mu     sync.Mutex // guards nextID/seq (Submit runs on caller goroutines)
	nextID int
	seq    int

	quit          chan struct{}
	loopDone      chan struct{}
	stopCollector func()
	closeOnce     sync.Once
}

// newManager builds a JobManager without starting the cluster, the
// collector, or the event loop (tests drive handle() directly).
func newManager(cl *cluster.Cluster, mcfg ManagerConfig) *JobManager {
	met := mcfg.Metrics
	if met == nil {
		met = &metrics.Job{}
		mcfg.Metrics = met
	}
	jm := &JobManager{
		cfg:         mcfg,
		cl:          cl,
		net:         cl.Net(),
		met:         met,
		tr:          mcfg.Tracer.Buf(),
		events:      make(chan event, mcfg.eventQueue()),
		overflow:    make(chan error, 1),
		hosts:       make(map[string]*nodeHost),
		kinds:       make(map[string]cluster.Kind),
		slotsFree:   make(map[string]int),
		assignments: make(map[taskRef]string),
		jobs:        make(map[int]*jobRun),
		budgetTotal: mcfg.Env.ReservedSlotBudget,
		budgetFree:  mcfg.Env.ReservedSlotBudget,
		quit:        make(chan struct{}),
		loopDone:    make(chan struct{}),
	}
	jm.pool = newConnPool(jm.net, "master", met)
	if !mcfg.Failure.DisableRPCPolicy {
		jm.pool.pol = newRPCPolicy(mcfg.Failure, "master", met, jm.tr)
	}
	if mcfg.Commits != nil {
		// Plane setup only fails on simnet exhaustion; the ids are
		// process-unique, so degrade to non-incremental rather than
		// refusing the whole manager.
		if cp, err := newCommitPlane(jm.net, mcfg.Commits, jm.pool); err == nil {
			jm.commits = cp
		}
	}
	if !mcfg.Failure.DisableDetector {
		jm.fd = newFailureDetector(mcfg.Failure)
	}
	jm.g = newManagerGauges(met)
	jm.cSchedRounds = met.Counter(metrics.NameSchedRounds)
	jm.cTasksScanned = met.Counter(metrics.NameSchedTasksScanned)
	jm.cSlotIndexHits = met.Counter(metrics.NameSlotIndexHits)
	return jm
}

// NewJobManager starts a resident manager on cl: the cluster's
// containers come up, the result collector listens on the master node,
// and the event loop runs until Close. The manager owns cl's lifecycle
// from here; Close stops it.
func NewJobManager(cl *cluster.Cluster, mcfg ManagerConfig) (*JobManager, error) {
	jm := newManager(cl, mcfg)
	stop, err := jm.startCollector()
	if err != nil {
		return nil, err
	}
	jm.stopCollector = stop
	if err := cl.Start(jm); err != nil {
		stop()
		return nil, err
	}
	go jm.run()
	return jm, nil
}

// Cluster listener: callbacks convert to events. These run on cluster
// goroutines whose contract says they must not block, so a full event
// queue fails loudly (dropping the event and flagging the manager)
// instead of deadlocking the cluster.
func (jm *JobManager) ContainerLaunched(c *cluster.Container) {
	jm.postClusterEvent(evContainerLaunched{C: c})
}
func (jm *JobManager) ContainerEvicted(c *cluster.Container) {
	jm.postClusterEvent(evContainerEvicted{C: c})
}
func (jm *JobManager) ContainerFailed(c *cluster.Container) {
	jm.postClusterEvent(evContainerFailed{C: c})
}

// postClusterEvent enqueues a cluster-originated event without ever
// blocking. A dropped container event would leave the manager's view of
// the cluster permanently wrong, so overflow counts in metrics
// ("event_queue_overflow") and fails every job via the overflow channel
// rather than limping along.
func (jm *JobManager) postClusterEvent(ev event) {
	select {
	case jm.events <- ev:
	default:
		jm.met.Counter("event_queue_overflow").Add(1)
		select {
		case jm.overflow <- fmt.Errorf("runtime: master event queue full (cap %d), dropped %T", cap(jm.events), ev):
		default:
		}
	}
}

// Submit compiles the logical DAG against the job's policy env (default:
// the manager's cell env, with the reserved-slot budget carved down to
// the job's demand so capacity-aware placement plans within its slice)
// and submits it.
func (jm *JobManager) Submit(g *dag.Graph, cfg Config, opts JobOptions) (*JobHandle, error) {
	if cfg.Plan.Env == (core.PolicyEnv{}) {
		cfg.Plan.Env = jm.cfg.Env
	}
	if d := opts.ReservedSlots; d > 0 && cfg.Plan.Env.ReservedSlotBudget > d {
		cfg.Plan.Env.ReservedSlotBudget = d
	}
	plan, err := core.Compile(g, cfg.Plan)
	if err != nil {
		return nil, err
	}
	return jm.SubmitPlan(plan, cfg, opts)
}

// SubmitPlan submits an already compiled plan. The returned handle's
// Wait delivers the result; admission (or queueing, or rejection)
// happens asynchronously on the manager loop.
func (jm *JobManager) SubmitPlan(plan *core.Plan, cfg Config, opts JobOptions) (*JobHandle, error) {
	if cfg.Tracer == nil {
		cfg.Tracer = jm.cfg.Tracer
	}
	met := opts.Metrics
	if met == nil {
		met = &metrics.Job{}
	}
	weight := opts.Weight
	if weight <= 0 {
		weight = 1
	}
	demand := opts.ReservedSlots
	if demand <= 0 {
		if b := cfg.Plan.Env.ReservedSlotBudget; b > 0 && (jm.budgetTotal <= 0 || b < jm.budgetTotal) {
			demand = b
		} else {
			demand = jm.budgetTotal
		}
	}

	jm.mu.Lock()
	jm.nextID++
	id := jm.nextID
	jm.seq++
	seq := jm.seq
	jm.mu.Unlock()

	name := opts.Name
	if name == "" {
		name = fmt.Sprintf("job-%d", id)
	}
	j := &jobRun{
		id:         id,
		name:       name,
		seq:        seq,
		weight:     weight,
		priority:   opts.Priority,
		demand:     demand,
		plan:       plan,
		cfg:        cfg,
		met:        met,
		tr:         cfg.Tracer.JobBuf(id),
		stages:     make([]*stageRun, len(plan.Stages)),
		cacheIndex: make(map[cacheKey]map[string]bool),
		execs:      make(map[string]taskLauncher),
		t0:         time.Now(),
		done:       make(chan struct{}),
	}
	j.histCompute = met.Histogram("task_compute_ns")
	j.histCommit = met.Histogram("task_commit_ns")
	for i, ps := range plan.Stages {
		j.stages[i] = &stageRun{ps: ps}
	}
	j.initSched()
	j.tr.Emit(obs.Event{Kind: obs.PlanCompiled, Note: plan.Policy})
	j.tr.Emit(obs.Event{Kind: obs.JobSubmitted, Note: name})
	// Probe the commit store before the job is published to the event
	// loop: the jobRun is still private to this goroutine, so the probe's
	// network round trips never block the manager, and any stage or task
	// skips are in place before the first scheduling pass.
	jm.probeCommits(j)
	if demand > 0 {
		met.Counter("reserved_slots_budget").Store(int64(demand))
	}
	jm.met.Counter("jobs_submitted").Add(1)

	select {
	case jm.events <- evSubmit{j: j}:
	case <-jm.quit:
		return nil, errManagerClosed
	}
	return &JobHandle{jm: jm, id: id, j: j}, nil
}

// run is the manager event loop: the multi-job generalization of the old
// per-job master loop. With the detector enabled a ticker drives its
// staleness sweeps at the heartbeat period, so declarations happen on
// the loop, serialized with the recovery they trigger.
func (jm *JobManager) run() {
	defer close(jm.loopDone)
	var tick <-chan time.Time
	if jm.fd != nil {
		t := time.NewTicker(jm.cfg.Failure.heartbeatEvery())
		defer t.Stop()
		tick = t.C
	}
	for {
		select {
		case <-jm.quit:
			return
		case err := <-jm.overflow:
			jm.failAll(err)
		case <-tick:
			jm.handle(evDetectorTick{})
		case ev := <-jm.events:
			jm.handle(ev)
		}
	}
}

// handle processes one event, reaps finished jobs, and advances
// scheduling. Job-scoped events route by their Job id; events for
// departed jobs (stale executors, late results) drop harmlessly.
func (jm *JobManager) handle(ev event) {
	switch e := ev.(type) {
	case evInspect:
		// Snapshot requests see the state as of the events handled so
		// far, and never trigger scheduling themselves.
		e.reply <- jm.buildState()
		return
	case evSubmit:
		jm.admitOrQueue(e.j)
	case evCancelJob:
		jm.cancelJob(e.ID)
	case evContainerLaunched:
		jm.onLaunched(e.C)
	case evContainerEvicted:
		jm.onEvicted(e.C)
	case evContainerFailed:
		jm.onFailed(e.C)
	case evDetectorTick:
		jm.onDetectorTick()
	case evReceiverReady:
		if j := jm.jobs[e.Job]; j != nil {
			jm.onReceiverReady(j, e)
		}
	case evReceiverFailed:
		if j := jm.jobs[e.Job]; j != nil {
			jm.onReceiverFailed(j, e)
		}
	case *evTaskComputed:
		// Pooled event (events.go): copy the value out and return the
		// struct before dispatch so the handler can never observe reuse.
		val := *e
		putTaskComputed(e)
		if j := jm.jobs[val.ref.Job]; j != nil {
			jm.onTaskComputed(j, val)
		}
	case *evOutputCommitted:
		val := *e
		putOutputCommitted(e)
		if j := jm.jobs[val.ref.Job]; j != nil {
			jm.onOutputCommitted(j, val)
		}
	case evTaskFailed:
		if j := jm.jobs[e.ref.Job]; j != nil {
			jm.onTaskFailed(j, e)
		}
	case evPullFailed:
		if j := jm.jobs[e.ref.Job]; j != nil {
			jm.onPullFailed(j, e)
		}
	case evReservedTaskDone:
		if j := jm.jobs[e.Job]; j != nil {
			jm.onReservedTaskDone(j, e)
		}
	case evResult:
		if j := jm.jobs[e.Job]; j != nil {
			jm.onResult(j, e)
		}
	}
	jm.reapFinished()
	jm.scheduleAll()
	jm.updateGauges()
}

// admitOrQueue makes the admission decision for a newly submitted job.
func (jm *JobManager) admitOrQueue(j *jobRun) {
	if jm.broken != nil {
		jm.rejectJob(j, jm.broken)
		return
	}
	if jm.budgetTotal > 0 && j.demand > jm.budgetTotal {
		jm.rejectJob(j, fmt.Errorf("demand %d exceeds cell budget %d reserved slots", j.demand, jm.budgetTotal))
		return
	}
	if jm.budgetTotal <= 0 || j.demand <= jm.budgetFree {
		jm.admit(j)
		return
	}
	if max := jm.cfg.MaxQueuedJobs; max > 0 && len(jm.queue) >= max {
		jm.rejectJob(j, fmt.Errorf("admission queue full (%d jobs waiting)", len(jm.queue)))
		return
	}
	// Insert by priority (desc), ties by submission order.
	i := len(jm.queue)
	for k, q := range jm.queue {
		if j.priority > q.priority {
			i = k
			break
		}
	}
	jm.queue = slices.Insert(jm.queue, i, j)
	j.tr.Emit(obs.Event{Kind: obs.JobQueued, Note: fmt.Sprintf("pos %d", i)})
	jm.met.Counter("jobs_queued").Add(1)
}

func (jm *JobManager) admit(j *jobRun) {
	if jm.budgetTotal > 0 {
		jm.budgetFree -= j.demand
	}
	j.t0 = time.Now()
	jm.jobs[j.id] = j
	jm.order = append(jm.order, j.id)
	j.tr.Emit(obs.Event{Kind: obs.JobAdmitted, Note: fmt.Sprintf("demand %d", j.demand)})
	jm.met.Counter("jobs_admitted").Add(1)
	for _, h := range jm.hostsInOrder() {
		jm.attachExecutor(j, h)
	}
}

// admitQueued admits queued jobs, in queue order, while the freed budget
// fits the head. Strict head-of-line: a high-priority job that doesn't
// fit blocks lower-priority ones that would, so priorities are honored.
func (jm *JobManager) admitQueued() {
	for len(jm.queue) > 0 {
		j := jm.queue[0]
		if jm.budgetTotal > 0 && j.demand > jm.budgetFree {
			return
		}
		jm.queue = jm.queue[1:]
		jm.admit(j)
	}
}

func (jm *JobManager) rejectJob(j *jobRun, cause error) {
	j.tr.Emit(obs.Event{Kind: obs.JobRejected, Note: cause.Error()})
	jm.met.Counter("jobs_rejected").Add(1)
	j.err = fmt.Errorf("runtime: job %q rejected: %w", j.name, cause)
	close(j.done)
}

// cancelJob abandons one job: an admitted job finishes as timed out; a
// queued job is removed and resolved immediately.
func (jm *JobManager) cancelJob(id int) {
	if j := jm.jobs[id]; j != nil {
		if !j.finished {
			j.timedOut = true
			j.finished = true
		}
		return
	}
	for i, q := range jm.queue {
		if q.id == id {
			jm.queue = slices.Delete(jm.queue, i, i+1)
			q.result = &Result{Plan: q.plan, Metrics: q.met.Snapshot(0, true), Progress: q.snapshotProgress()}
			q.tr.Emit(obs.Event{Kind: obs.JobTimedOut, Note: "canceled while queued"})
			jm.met.Counter("jobs_completed").Add(1)
			close(q.done)
			return
		}
	}
}

// failAll is the event-queue-overflow response: every outstanding job
// fails, and the manager refuses new work.
func (jm *JobManager) failAll(err error) {
	if jm.broken == nil {
		jm.broken = err
	}
	for _, id := range slices.Clone(jm.order) {
		jm.abort(jm.jobs[id], err)
	}
	for _, q := range jm.queue {
		jm.rejectJob(q, err)
	}
	jm.queue = nil
	jm.reapFinished()
}

// reapFinished finalizes every job whose event handling marked it done.
func (jm *JobManager) reapFinished() {
	for _, id := range slices.Clone(jm.order) {
		if j := jm.jobs[id]; j != nil && j.finished {
			jm.finishJob(j)
		}
	}
}

// finishJob detaches a completed job from the fleet, returns its budget,
// resolves its handle, and admits queued jobs into the freed budget.
// Output collection for successful jobs runs on its own goroutine (the
// shared connection pool is thread-safe) so one job's collection never
// stalls its neighbors' event handling.
func (jm *JobManager) finishJob(j *jobRun) {
	jct := time.Since(j.t0)
	delete(jm.jobs, j.id)
	jm.order = slices.DeleteFunc(jm.order, func(x int) bool { return x == j.id })
	// Detach the job's executors; host stores stay intact so output
	// blocks remain fetchable during collection (block ids are
	// job-scoped, so nothing collides).
	for _, h := range jm.hosts {
		h.detach(j.id)
	}
	for ref, exec := range jm.assignments {
		if ref.Job == j.id {
			delete(jm.assignments, ref)
			jm.creditSlot(exec)
		}
	}
	if jm.budgetTotal > 0 {
		jm.budgetFree += j.demand
	}
	jm.met.Counter("jobs_completed").Add(1)

	switch {
	case j.failErr != nil:
		j.tr.Emit(obs.Event{Kind: obs.JobCompleted, Note: "aborted"})
		j.err = j.failErr
		jm.releaseCommits(j)
		close(j.done)
	case j.timedOut:
		j.tr.Emit(obs.Event{Kind: obs.JobTimedOut, Note: "deadline expired"})
		j.result = &Result{Plan: j.plan, Metrics: j.met.Snapshot(jct, true), Progress: j.snapshotProgress()}
		jm.releaseCommits(j)
		close(j.done)
	default:
		j.tr.Emit(obs.Event{Kind: obs.JobCompleted, Note: "ok"})
		res := &Result{Plan: j.plan, Metrics: j.met.Snapshot(jct, false), Progress: j.snapshotProgress()}
		go func() {
			outputs, err := jm.collectOutputs(j)
			if err != nil {
				j.err = fmt.Errorf("runtime: collecting outputs: %w", err)
			} else {
				res.Outputs = outputs
				j.result = res
			}
			// The result is not delivered until in-flight manifest
			// commits land and probe pins are released: the next run
			// (often submitted immediately after Wait returns) must see
			// this run's commits.
			j.casWG.Wait()
			jm.unpinCommits(j)
			close(j.done)
		}()
	}
	jm.admitQueued()
}

// hostsInOrder returns live hosts in deterministic (reserved-then-
// transient, launch-order) sequence.
func (jm *JobManager) hostsInOrder() []*nodeHost {
	out := make([]*nodeHost, 0, len(jm.hosts))
	for _, id := range jm.reservedOrder {
		out = append(out, jm.hosts[id])
	}
	for _, id := range jm.transientOrder {
		out = append(out, jm.hosts[id])
	}
	return out
}

// attachExecutor gives job j an executor on host h.
func (jm *JobManager) attachExecutor(j *jobRun, h *nodeHost) {
	ex := newExecutor(j.id, h, jm.net, j.plan, j.cfg, j.met, jm.events, "master", jm.cfg.Failure, jm.casNodes())
	j.execs[h.id] = ex
	h.attach(ex)
}

// releaseCommits is the failed/timed-out-job analogue of the success
// path's pin release: waits for stray commit writes and unpins off the
// event loop.
func (jm *JobManager) releaseCommits(j *jobRun) {
	if jm.commits == nil || len(j.pinned) == 0 {
		return
	}
	go func() {
		j.casWG.Wait()
		jm.unpinCommits(j)
	}()
}

// Close shuts the manager down: the loop exits, the cluster stops, hosts
// and pooled connections close, and any still-outstanding job resolves
// with an error.
func (jm *JobManager) Close() {
	jm.closeOnce.Do(func() {
		close(jm.quit)
		<-jm.loopDone
		if jm.stopCollector != nil {
			jm.stopCollector()
		}
		jm.cl.Stop()
		for _, h := range jm.hosts {
			h.shutdown()
		}
		jm.pool.closeAll()
		if jm.commits != nil {
			jm.commits.close()
		}
		// The loop is dead, so its state is safe to touch. Jobs that
		// finished successfully already left jm.order (their done channel
		// belongs to the collection goroutine); everything still listed
		// is unresolved.
		fail := func(j *jobRun) {
			select {
			case <-j.done:
			default:
				j.err = errManagerClosed
				close(j.done)
			}
		}
		for _, id := range jm.order {
			fail(jm.jobs[id])
		}
		for _, q := range jm.queue {
			fail(q)
		}
	})
}

// startCollector serves the manager node's data plane: terminal transient
// tasks push their results here, tagged by job.
func (jm *JobManager) startCollector() (func(), error) {
	node := jm.cl.MasterNode()
	l, err := node.Listen()
	if err != nil {
		return nil, err
	}
	stop := make(chan struct{})
	go func() {
		for {
			conn, err := l.Accept(stop)
			if err != nil {
				return
			}
			go jm.handleCollectorConn(conn, stop)
		}
	}()
	var once sync.Once
	return func() { once.Do(func() { close(stop) }) }, nil
}

func (jm *JobManager) handleCollectorConn(conn *simnet.Conn, stop <-chan struct{}) {
	defer conn.Close()
	d := data.NewDecoder(conn)
	e := data.NewEncoder(conn)
	for {
		op, err := d.Byte()
		if err != nil {
			return
		}
		switch op {
		case frameHeartbeat:
			// Fire-and-forget liveness beat: feed the detector (off the
			// event loop; declarations happen on ticks) and keep reading.
			hb, err := readHeartbeat(d)
			if err != nil {
				return
			}
			if jm.fd != nil {
				jm.fd.beat(hb.ID, hb.Open, time.Now())
			}
			continue
		case frameResult:
		default:
			return
		}
		f, err := readResultFrame(d)
		if err != nil {
			return
		}
		select {
		case jm.events <- evResult{Job: f.Job, Stage: f.Stage, Gen: f.Gen, Index: f.Index, Attempt: f.Attempt, Payload: f.Payload}:
		case <-stop:
			return
		}
		if e.Byte(respOK) != nil || e.Flush() != nil {
			return
		}
	}
}
