package runtime

import (
	"errors"
	"fmt"

	"pado/internal/core"
	"pado/internal/dag"
	"pado/internal/data"
	"pado/internal/dataflow"
	"pado/internal/exec"
	"pado/internal/obs"
)

func errorsIs(err, target error) bool { return errors.Is(err, target) }

// dispatchBoundaries moves a finished fragment task's boundary outputs to
// the stage's reserved tasks. Depending on configuration the data takes
// the paper's push path (possibly partially aggregated) or, in the
// pull-boundary ablation, is parked in the local store for receivers to
// pull after commit.
func (ex *Executor) dispatchBoundaries(ps *core.PhysStage, frag *core.Fragment, spec taskSpec,
	outs map[dag.VertexID][]data.Record) {

	g := ex.plan.Graph
	nRecv := len(spec.Receivers)
	if nRecv == 0 {
		// A reserved-root stage always has receivers; reaching here is
		// a scheduling bug.
		ex.send(evTaskFailed{ref: ex.ref(spec), Exec: ex.id, Err: fmt.Errorf("runtime: no receivers for stage %d", spec.Stage), Fatal: true})
		return
	}

	// Partial aggregation applies when the stage root is a combine with
	// an accumulator coder and the fragment has exactly one boundary
	// carrying the combine's main input.
	rootOp, _ := g.Vertex(ps.Root).Op.(*dataflow.CombineOp)
	aggregable := !ex.cfg.DisablePartialAggregation &&
		rootOp != nil && rootOp.AccCoder != nil &&
		len(frag.Boundaries) == 1 && frag.Boundaries[0].Tag == "" &&
		!ex.cfg.PullBoundaries

	if aggregable {
		// Fold this task's records into per-receiver accumulator tables.
		b := frag.Boundaries[0]
		perRecv := make([]*exec.AccTable, nRecv)
		for i := range perRecv {
			perRecv[i] = exec.NewAccTable(rootOp.Fn, rootOp.Global)
		}
		for _, r := range outs[b.From] {
			perRecv[boundaryPartition(b.Dep, r, spec.Index, nRecv)].AddRecord(r)
		}
		if ex.cfg.aggMaxTasks() > 1 {
			// Executor-level aggregation across tasks (§3.2.7).
			buf := ex.aggBufferFor(ps, spec, rootOp.AccCoder, rootOp.Fn, rootOp.Global)
			buf.deposit(senderRef{Index: spec.Index, Attempt: spec.Attempt}, perRecv)
			return
		}
		// Task-level aggregation only: one frame per receiver.
		frames := make([]*pushFrame, nRecv)
		for i := range frames {
			payload, err := encodeAccTable(rootOp.AccCoder, perRecv[i])
			if err != nil {
				ex.send(evTaskFailed{ref: ex.ref(spec), Exec: ex.id, Err: err, Fatal: true})
				return
			}
			frames[i] = &pushFrame{
				Job: ex.job, Stage: spec.Stage, Gen: spec.Gen, RecvIdx: i, Frag: spec.Frag,
				Cover:    []senderRef{{Index: spec.Index, Attempt: spec.Attempt}},
				Sections: []pushSection{{Tag: "", Aggregated: true, Payload: payload}},
			}
		}
		ex.pushFrames(spec, frames)
		return
	}

	// Raw path: per-receiver frames with one section per boundary edge.
	// Each receiver gets exactly one section per boundary, so the slices
	// can be sized exactly once.
	sections := make([][]pushSection, nRecv)
	for i := range sections {
		sections[i] = make([]pushSection, 0, len(frag.Boundaries))
	}
	for _, b := range frag.Boundaries {
		coder, err := dataflow.OutputCoder(g.Vertex(b.From))
		if err != nil {
			ex.send(evTaskFailed{ref: ex.ref(spec), Exec: ex.id, Err: err, Fatal: true})
			return
		}
		groups := make([][]data.Record, nRecv)
		if b.Dep == dag.OneToMany {
			for i := range groups {
				groups[i] = outs[b.From]
			}
		} else {
			// Size each receiver's group for an even split up front;
			// skewed partitions still grow past the hint.
			hint := (len(outs[b.From]) + nRecv - 1) / nRecv
			for _, r := range outs[b.From] {
				p := boundaryPartition(b.Dep, r, spec.Index, nRecv)
				if groups[p] == nil {
					groups[p] = make([]data.Record, 0, hint)
				}
				groups[p] = append(groups[p], r)
			}
		}
		for i := range groups {
			payload, err := data.EncodeAll(coder, groups[i])
			if err != nil {
				ex.send(evTaskFailed{ref: ex.ref(spec), Exec: ex.id, Err: err, Fatal: true})
				return
			}
			sections[i] = append(sections[i], pushSection{Tag: b.Tag, Payload: payload})
		}
	}
	frames := make([]*pushFrame, nRecv)
	for i := range frames {
		frames[i] = &pushFrame{
			Job: ex.job, Stage: spec.Stage, Gen: spec.Gen, RecvIdx: i, Frag: spec.Frag,
			Cover:    []senderRef{{Index: spec.Index, Attempt: spec.Attempt}},
			Sections: sections[i],
		}
	}

	if ex.cfg.PullBoundaries {
		// Ablation: park encoded frames locally; receivers pull them
		// after the commit, exactly like shuffle files on local disk —
		// and exactly as vulnerable to eviction.
		var total int64
		for i, f := range frames {
			var buf []byte
			buf, err := encodeFrameBlock(f)
			if err != nil {
				ex.send(evTaskFailed{ref: ex.ref(spec), Exec: ex.id, Err: err, Fatal: true})
				return
			}
			ex.store.Put(taskBlockID(ex.job, spec.Stage, spec.Gen, spec.Frag, spec.Index, spec.Attempt, i), buf)
			total += int64(len(buf))
		}
		_ = total
		ex.send(newOutputCommitted(ex.ref(spec)))
		return
	}
	ex.pushFrames(spec, frames)
}

// boundaryPartition routes one record to a receiver index for a boundary
// dependency type.
func boundaryPartition(dep dag.DepType, r data.Record, taskIdx, nRecv int) int {
	switch dep {
	case dag.ManyToMany:
		return data.Partition(r.Key, nRecv)
	case dag.ManyToOne:
		return 0
	case dag.OneToOne:
		if taskIdx < nRecv {
			return taskIdx
		}
		return taskIdx % nRecv
	default:
		return 0
	}
}

// pushFrames sends every receiver its frame concurrently and then, once
// every push is acknowledged, commits the task through the master. The
// commit-after-all-acks ordering is what makes the push path exactly-once
// (§3.2.5): a frame the receiver staged is only merged after the commit
// arrives, so no receiver can observe a commit for data it doesn't hold.
// On any failure the task fails (first error by receiver index, for
// deterministic reporting) and no commit is sent; the relaunched attempt
// re-pushes everything and receivers drop superseded frames by attempt.
func (ex *Executor) pushFrames(spec taskSpec, frames []*pushFrame) {
	var total int64
	for _, f := range frames {
		for _, s := range f.Sections {
			total += int64(len(s.Payload))
		}
	}
	ex.tr.Emit(obs.Event{Kind: obs.PushStarted, Stage: spec.Stage, Frag: spec.Frag,
		Task: spec.Index, Attempt: spec.Attempt, Exec: ex.id, Bytes: total})
	err := fanout(len(frames), len(frames), func(i int) error {
		var n int64
		for _, s := range frames[i].Sections {
			n += int64(len(s.Payload))
		}
		if err := sendPush(ex.pool, spec.Receivers[i], frames[i]); err != nil {
			return err
		}
		ex.met.BytesPushed.Add(n)
		return nil
	})
	if err != nil {
		if !ex.stopped() {
			ex.send(evTaskFailed{ref: ex.ref(spec), Exec: ex.id, Err: err, Fatal: isFatal(err)})
		}
		return
	}
	// Content-addressable task: write the acknowledged sections to the
	// commit store before reporting the commit, so a later run can skip
	// this task (commitplane.go). Best-effort and ordered before the
	// commit event: a "task/" manifest must never exist for data whose
	// push wasn't acknowledged.
	if spec.TaskKey != "" && ex.cas != nil {
		ex.commitTaskChunks(spec, frames)
	}
	ex.send(newOutputCommitted(ex.ref(spec)))
}

// encodeFrameBlock / decodeFrameBlock serialize a pushFrame for the
// pull-boundary ablation's local store.
func encodeFrameBlock(f *pushFrame) ([]byte, error) {
	return data.Encoded(func(e *data.Encoder) error {
		return writePushFrame(e, f)
	})
}

func decodeFrameBlock(b []byte) (*pushFrame, error) {
	d := data.NewDecoder(readerOf(b))
	op, err := d.Byte()
	if err != nil {
		return nil, err
	}
	if op != framePush {
		return nil, fmt.Errorf("runtime: bad frame block")
	}
	return readPushFrame(d)
}
