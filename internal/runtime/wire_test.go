package runtime

import (
	"bytes"
	"io"
	"reflect"
	"testing"
	"testing/quick"

	"pado/internal/dag"
	"pado/internal/data"
	"pado/internal/metrics"
	"pado/internal/simnet"
)

func TestPushFrameRoundTrip(t *testing.T) {
	in := &pushFrame{
		Stage: 3, Gen: 2, RecvIdx: 1, Frag: 0,
		Cover: []senderRef{{Index: 5, Attempt: 1}, {Index: 9, Attempt: 0}},
		Sections: []pushSection{
			{Tag: "", Aggregated: true, Payload: []byte("acc-data")},
			{Tag: "side", Aggregated: false, Payload: nil},
		},
	}
	var buf bytes.Buffer
	e := data.NewEncoder(&buf)
	if err := writePushFrame(e, in); err != nil {
		t.Fatal(err)
	}
	d := data.NewDecoder(bytes.NewReader(buf.Bytes()))
	op, err := d.Byte()
	if err != nil || op != framePush {
		t.Fatalf("frame type %v, %v", op, err)
	}
	out, err := readPushFrame(d)
	if err != nil {
		t.Fatal(err)
	}
	if out.Stage != in.Stage || out.Gen != in.Gen || out.RecvIdx != in.RecvIdx || out.Frag != in.Frag {
		t.Errorf("header mismatch: %+v", out)
	}
	if !reflect.DeepEqual(out.Cover, in.Cover) {
		t.Errorf("cover = %+v", out.Cover)
	}
	if len(out.Sections) != 2 || out.Sections[0].Tag != "" || !out.Sections[0].Aggregated ||
		string(out.Sections[0].Payload) != "acc-data" || out.Sections[1].Tag != "side" {
		t.Errorf("sections = %+v", out.Sections)
	}
}

func TestPushFrameRoundTripProperty(t *testing.T) {
	err := quick.Check(func(stage, gen, recv, frag uint8, idx []uint8, payload []byte) bool {
		in := &pushFrame{Stage: int(stage), Gen: int(gen), RecvIdx: int(recv), Frag: int(frag)}
		for i, v := range idx {
			in.Cover = append(in.Cover, senderRef{Index: int(v), Attempt: i % 3})
		}
		in.Sections = []pushSection{{Tag: "t", Payload: payload}}
		var buf bytes.Buffer
		e := data.NewEncoder(&buf)
		if writePushFrame(e, in) != nil {
			return false
		}
		d := data.NewDecoder(bytes.NewReader(buf.Bytes()))
		if op, err := d.Byte(); err != nil || op != framePush {
			return false
		}
		out, err := readPushFrame(d)
		if err != nil {
			return false
		}
		return out.Stage == in.Stage && len(out.Cover) == len(in.Cover) &&
			bytes.Equal(out.Sections[0].Payload, payload)
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Error(err)
	}
}

func TestResultFrameRoundTrip(t *testing.T) {
	in := &resultFrame{Job: 3, Stage: 4, Gen: 2, Index: 7, Attempt: 1, Payload: []byte{1, 2, 3}}
	var buf bytes.Buffer
	e := data.NewEncoder(&buf)
	if err := e.Byte(frameResult); err != nil {
		t.Fatal(err)
	}
	e.Varint(int64(in.Job))
	e.Varint(int64(in.Stage))
	e.Varint(int64(in.Gen))
	e.Varint(int64(in.Index))
	e.Varint(int64(in.Attempt))
	if err := e.Bytes(in.Payload); err != nil {
		t.Fatal(err)
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	d := data.NewDecoder(bytes.NewReader(buf.Bytes()))
	if op, _ := d.Byte(); op != frameResult {
		t.Fatal("wrong frame type")
	}
	out, err := readResultFrame(d)
	if err != nil {
		t.Fatal(err)
	}
	if out.Job != 3 || out.Stage != 4 || out.Gen != 2 || out.Index != 7 || out.Attempt != 1 || !bytes.Equal(out.Payload, in.Payload) {
		t.Errorf("got %+v", out)
	}
}

func TestFrameBlockRoundTrip(t *testing.T) {
	in := &pushFrame{
		Stage: 1, Gen: 1, RecvIdx: 0, Frag: 0,
		Cover:    []senderRef{{Index: 2, Attempt: 1}},
		Sections: []pushSection{{Tag: "", Payload: []byte("xyz")}},
	}
	blob, err := encodeFrameBlock(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := decodeFrameBlock(blob)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out, in) {
		t.Errorf("got %+v, want %+v", out, in)
	}
	if _, err := decodeFrameBlock([]byte{'X'}); err == nil {
		t.Error("expected error on bad block")
	}
}

func TestBlockIDs(t *testing.T) {
	if stageBlockID(1, 1, 2, 3) == stageBlockID(1, 1, 3, 3) {
		t.Error("generation not encoded in block id")
	}
	if taskBlockID(1, 1, 1, 0, 2, 0, 3) == taskBlockID(1, 1, 1, 0, 2, 1, 3) {
		t.Error("attempt not encoded in task block id")
	}
	if stageBlockID(1, 2, 3, 4) == stageBlockID(2, 2, 3, 4) {
		t.Error("job not encoded in stage block id")
	}
	if taskBlockID(1, 1, 1, 0, 2, 0, 3) == taskBlockID(2, 1, 1, 0, 2, 0, 3) {
		t.Error("job not encoded in task block id")
	}
}

func TestFetchBlockAgainstServer(t *testing.T) {
	net := simnet.New(simnet.Config{})
	a, err := net.AddNode("client")
	if err != nil {
		t.Fatal(err)
	}
	_ = a
	srv, err := net.AddNode("server")
	if err != nil {
		t.Fatal(err)
	}
	l, _ := srv.Listen()
	go func() {
		for {
			conn, err := l.Accept(nil)
			if err != nil {
				return
			}
			go func(conn *simnet.Conn) {
				defer conn.Close()
				d := data.NewDecoder(connReader{conn})
				e := data.NewEncoder(conn)
				for {
					op, err := d.Byte()
					if err != nil || op != frameFetch {
						return
					}
					id, _ := d.String()
					if id == "have" {
						e.Byte(respOK)
						e.Bytes([]byte("payload"))
					} else {
						e.Byte(respNo)
					}
					e.Flush()
				}
			}(conn)
		}
	}()

	pool := newConnPool(net, "client", &metrics.Job{})
	defer pool.closeAll()
	got, err := fetchBlock(pool, "server", "have")
	if err != nil || string(got) != "payload" {
		t.Fatalf("fetch = %q, %v", got, err)
	}
	if _, err := fetchBlock(pool, "server", "missing"); err == nil {
		t.Error("expected not-found error")
	}
	if _, err := fetchBlock(pool, "nonexistent", "x"); err == nil {
		t.Error("expected dial error")
	}
}

type connReader struct{ c *simnet.Conn }

func (r connReader) Read(p []byte) (int, error) { return r.c.Read(p) }

var _ io.Reader = connReader{}

func TestBoundaryPartition(t *testing.T) {
	rec := data.KV("key", int64(1))
	if boundaryPartition(dag.ManyToOne, rec, 5, 1) != 0 {
		t.Error("many-to-one must route to task 0")
	}
	p := boundaryPartition(dag.ManyToMany, rec, 5, 4)
	if p < 0 || p >= 4 {
		t.Errorf("many-to-many partition %d out of range", p)
	}
	if boundaryPartition(dag.OneToOne, rec, 2, 4) != 2 {
		t.Error("one-to-one must preserve task index")
	}
	if boundaryPartition(dag.OneToOne, rec, 6, 4) != 2 {
		t.Error("one-to-one must wrap when receivers are fewer")
	}
}
