package runtime

import (
	"sort"
	"sync"
	"time"
)

// This file is the master half of the failure-handling plane: the
// configuration shared by the detector and the RPC policy, and the
// heartbeat-driven failure detector itself.
//
// The paper's runtime recovers from failures the resource manager
// announces (container evictions, §3.2.5; reserved faults, §3.2.6). Real
// datacenters give no such oracle for silent kills, hangs, or gray
// nodes, so executors heartbeat the master over the data plane and the
// master runs an alive → suspect → dead state machine per node. A dead
// declaration drives the same recovery paths the announcements drive —
// the cluster callback is demoted to a fast-path hint that merely skips
// the detection delay.

// FailureConfig parameterizes the failure-handling plane: heartbeat
// cadence and the detector's suspicion/declaration bounds on the master
// side, and the deadline/backoff/budget/breaker RPC policy applied by
// every data-plane connection pool.
type FailureConfig struct {
	// DisableDetector turns off heartbeats and the failure detector;
	// only announced failures recover (the pre-detector behavior).
	DisableDetector bool
	// HeartbeatEvery is the executor heartbeat period. Default 100ms.
	HeartbeatEvery time.Duration
	// SuspectAfter is the heartbeat staleness that moves a node from
	// alive to suspect. Default 4x the heartbeat period.
	SuspectAfter time.Duration
	// DeadAfter is the staleness bound that declares a suspect node
	// dead and triggers eviction-style recovery. It must be generous
	// enough that scheduling stalls on a loaded host never look like
	// death (false positives restart real work). Default 15x the
	// heartbeat period.
	DeadAfter time.Duration
	// GrayAfter is how long a gray signal (breaker-open reports in
	// heartbeat payloads) must persist before the implicated node is
	// declared dead. Default 5x the heartbeat period.
	GrayAfter time.Duration
	// GrayMinDests is the minimum number of distinct live nodes a gray
	// signal must span: a reporter whose breakers are open toward at
	// least this many live destinations is itself declared gray-dead,
	// and a destination reported open by at least this many distinct
	// live reporters is declared gray-dead. One flaky link never
	// quarantines anyone. Default 2.
	GrayMinDests int

	// DisableRPCPolicy turns off the retry/backoff/budget/breaker layer
	// on connection pools, restoring the bare retry-once pool.
	DisableRPCPolicy bool
	// RPCDeadline bounds each data-plane operation attempt (push,
	// fetch, store, collect, progress). Zero (the default) disables
	// per-op deadlines: legitimate large transfers on slow simulated
	// links can take arbitrarily long, and hang recovery works through
	// heartbeats alone. Chaos scenarios set it explicitly.
	RPCDeadline time.Duration
	// RPCMaxRetries is how many extra attempts the policy layers over
	// the pool's reuse-retry, with exponential backoff between them.
	// Default 2.
	RPCMaxRetries int
	// RPCBackoffBase and RPCBackoffMax bound the jittered exponential
	// backoff between retries. Defaults 2ms and 20ms.
	RPCBackoffBase time.Duration
	RPCBackoffMax  time.Duration
	// RPCRetryBudget caps retry tokens banked per destination, and
	// RPCBudgetRefill is how long one token takes to refill; together
	// they stop retry storms against a struggling peer. Defaults 16
	// and 25ms.
	RPCRetryBudget  int
	RPCBudgetRefill time.Duration
	// BreakerThreshold is the consecutive-failure count that opens a
	// destination's circuit breaker; while open, operations fail fast
	// with errBreakerOpen and the destination is reported gray in
	// heartbeats. Default 5.
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker waits before letting
	// probe traffic through (half-open). Default 40ms.
	BreakerCooldown time.Duration
}

func (c FailureConfig) heartbeatEvery() time.Duration {
	if c.HeartbeatEvery <= 0 {
		return 100 * time.Millisecond
	}
	return c.HeartbeatEvery
}

func (c FailureConfig) suspectAfter() time.Duration {
	if c.SuspectAfter <= 0 {
		return 4 * c.heartbeatEvery()
	}
	return c.SuspectAfter
}

func (c FailureConfig) deadAfter() time.Duration {
	if c.DeadAfter <= 0 {
		return 15 * c.heartbeatEvery()
	}
	return c.DeadAfter
}

func (c FailureConfig) grayAfter() time.Duration {
	if c.GrayAfter <= 0 {
		return 5 * c.heartbeatEvery()
	}
	return c.GrayAfter
}

func (c FailureConfig) grayMinDests() int {
	if c.GrayMinDests <= 0 {
		return 2
	}
	return c.GrayMinDests
}

func (c FailureConfig) rpcMaxRetries() int {
	if c.RPCMaxRetries < 0 {
		return 0
	}
	if c.RPCMaxRetries == 0 {
		return 2
	}
	return c.RPCMaxRetries
}

func (c FailureConfig) rpcBackoffBase() time.Duration {
	if c.RPCBackoffBase <= 0 {
		return 2 * time.Millisecond
	}
	return c.RPCBackoffBase
}

func (c FailureConfig) rpcBackoffMax() time.Duration {
	if c.RPCBackoffMax <= 0 {
		return 20 * time.Millisecond
	}
	return c.RPCBackoffMax
}

func (c FailureConfig) rpcRetryBudget() int {
	if c.RPCRetryBudget <= 0 {
		return 16
	}
	return c.RPCRetryBudget
}

func (c FailureConfig) rpcBudgetRefill() time.Duration {
	if c.RPCBudgetRefill <= 0 {
		return 25 * time.Millisecond
	}
	return c.RPCBudgetRefill
}

func (c FailureConfig) breakerThreshold() int {
	if c.BreakerThreshold <= 0 {
		return 5
	}
	return c.BreakerThreshold
}

func (c FailureConfig) breakerCooldown() time.Duration {
	if c.BreakerCooldown <= 0 {
		return 40 * time.Millisecond
	}
	return c.BreakerCooldown
}

// fdKind classifies one detector transition.
type fdKind int

const (
	fdMissed fdKind = iota // a node's heartbeats went stale (counter signal)
	fdSuspect
	fdCleared
	fdDead
)

// fdTransition is one state change surfaced by a detector tick. The
// manager (on its event loop) turns transitions into trace events,
// counters, and — for fdDead — recovery.
type fdTransition struct {
	ID    string
	Kind  fdKind
	Cause string // for fdDead: "heartbeat" or "gray"
}

// fdNode is the detector's per-node state. lastBeat and openFirst are
// written by beat() from collector goroutines; everything is guarded by
// failureDetector.mu.
type fdNode struct {
	lastBeat time.Time
	suspect  bool
	missed   bool // stale-mark already counted for this silence
	// openFirst records, per destination the node's breakers currently
	// report open, when that report first appeared. The gray passes
	// read persistence from these times.
	openFirst map[string]time.Time
}

// failureDetector tracks heartbeat liveness for every container. beat()
// is called from collector goroutines as heartbeat frames arrive;
// register/forget/tick are called from the manager event loop.
type failureDetector struct {
	cfg FailureConfig

	mu    sync.Mutex
	nodes map[string]*fdNode
}

func newFailureDetector(cfg FailureConfig) *failureDetector {
	return &failureDetector{cfg: cfg, nodes: make(map[string]*fdNode)}
}

// register starts tracking a node, with a full grace period before the
// first heartbeat is due.
func (fd *failureDetector) register(id string, now time.Time) {
	fd.mu.Lock()
	fd.nodes[id] = &fdNode{lastBeat: now, openFirst: make(map[string]time.Time)}
	fd.mu.Unlock()
}

// forget stops tracking a node (announced eviction/failure, or the
// detector's own dead declaration was acted on).
func (fd *failureDetector) forget(id string) {
	fd.mu.Lock()
	delete(fd.nodes, id)
	fd.mu.Unlock()
}

// beat records one heartbeat: the node is alive as of now, and its
// breakers are open toward the listed destinations. Unknown senders are
// ignored (a quarantined node's late heartbeats must not resurrect it).
func (fd *failureDetector) beat(id string, open []string, now time.Time) {
	fd.mu.Lock()
	defer fd.mu.Unlock()
	n := fd.nodes[id]
	if n == nil {
		return
	}
	n.lastBeat = now
	n.missed = false
	for _, d := range open {
		if _, ok := n.openFirst[d]; !ok {
			n.openFirst[d] = now
		}
	}
	for d := range n.openFirst {
		still := false
		for _, o := range open {
			if o == d {
				still = true
				break
			}
		}
		if !still {
			delete(n.openFirst, d)
		}
	}
}

// tick advances the state machine: staleness transitions per node, then
// the two gray passes over breaker-open reports. live reports whether an
// id is still a current fleet member (dead ids and departed replacements
// never contribute to gray evidence). Transitions are returned in
// deterministic per-category order; dead declarations come last so the
// caller observes suspicions before their resolution.
func (fd *failureDetector) tick(now time.Time, live func(string) bool) []fdTransition {
	fd.mu.Lock()
	defer fd.mu.Unlock()

	var out []fdTransition
	dead := make(map[string]string) // id -> cause

	for _, id := range fd.sortedIDs() {
		n := fd.nodes[id]
		elapsed := now.Sub(n.lastBeat)
		switch {
		case elapsed >= fd.cfg.deadAfter():
			dead[id] = "heartbeat"
		case elapsed >= fd.cfg.suspectAfter():
			if !n.suspect {
				n.suspect = true
				out = append(out, fdTransition{ID: id, Kind: fdSuspect})
			}
		default:
			if n.suspect {
				n.suspect = false
				out = append(out, fdTransition{ID: id, Kind: fdCleared})
			}
		}
		if elapsed >= 2*fd.cfg.heartbeatEvery() && !n.missed {
			n.missed = true
			out = append(out, fdTransition{ID: id, Kind: fdMissed})
		}
	}

	// Gray passes. A reporter with persistent open breakers toward >=
	// GrayMinDests live destinations cannot move data — quarantine it.
	// A destination persistently reported open by >= GrayMinDests
	// distinct live reporters is refusing data while heartbeating —
	// quarantine it too.
	min := fd.cfg.grayMinDests()
	reportedBy := make(map[string]int)
	for _, id := range fd.sortedIDs() {
		n := fd.nodes[id]
		persistent := 0
		for dest, t0 := range n.openFirst {
			if !live(dest) {
				delete(n.openFirst, dest)
				continue
			}
			if now.Sub(t0) >= fd.cfg.grayAfter() {
				persistent++
				reportedBy[dest]++
			}
		}
		if persistent >= min && dead[id] == "" {
			dead[id] = "gray"
		}
	}
	for dest, cnt := range reportedBy {
		if cnt >= min && live(dest) && dead[dest] == "" {
			dead[dest] = "gray"
		}
	}

	for _, id := range fd.sortedIDs() {
		if cause, ok := dead[id]; ok {
			out = append(out, fdTransition{ID: id, Kind: fdDead, Cause: cause})
		}
	}
	return out
}

// sortedIDs returns the tracked node ids in deterministic order (caller
// holds fd.mu).
func (fd *failureDetector) sortedIDs() []string {
	ids := make([]string, 0, len(fd.nodes))
	for id := range fd.nodes {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}
