package runtime

import (
	"sync"

	"pado/internal/cluster"
)

// taskRef identifies one fragment task attempt within one stage
// generation of one job. Every executor-originated event carries a
// taskRef and the manager validates it against current state, so stale
// events from evicted containers or restarted stages are dropped
// harmlessly.
type taskRef struct {
	Job     int
	Stage   int
	Gen     int
	Frag    int
	Index   int
	Attempt int
}

// event is a manager event-loop message.
type event interface{}

type evContainerLaunched struct{ C *cluster.Container }

// evDetectorTick drives the failure detector's staleness sweep on the
// manager event loop, so detector state transitions are serialized with
// the recovery paths they trigger.
type evDetectorTick struct{}
type evContainerEvicted struct{ C *cluster.Container }
type evContainerFailed struct{ C *cluster.Container }

// evSubmit carries a new job into the manager loop for the admission
// decision.
type evSubmit struct{ j *jobRun }

// evCancelJob asks the manager to abandon one job (deadline expired or
// the submitter gave up); the job finishes with a timed-out result.
type evCancelJob struct{ ID int }

// evInspect asks the loop to build a consistent state snapshot and
// deliver it on reply (buffered, so the loop never blocks sending).
type evInspect struct{ reply chan *ManagerState }

// evReceiverReady reports that a reserved task is registered and can
// accept pushes.
type evReceiverReady struct {
	Job, Stage, Gen, Index int
}

// evReceiverFailed reports a reserved task error.
type evReceiverFailed struct {
	Job, Stage, Gen, Index int
	Exec                   string
	Err                    error
	Fatal                  bool
}

// evTaskComputed reports that a fragment task finished computing; its
// slot is free while the output escapes on a separate goroutine (§3.2.4).
type evTaskComputed struct {
	ref    taskRef
	Exec   string
	Cached []cacheKey
}

// evOutputCommitted reports that every receiver acknowledged the task's
// pushed output (§3.2.5). The master forwards per-receiver commits.
type evOutputCommitted struct{ ref taskRef }

// evTaskComputed and evOutputCommitted are the two per-task events every
// successful task emits, so they dominate event-channel allocation. They
// travel as pooled pointers: senders build them with newTaskComputed /
// newOutputCommitted, and the manager loop copies the value out and
// returns the struct (putTaskComputed / putOutputCommitted) before
// dispatching, so a handler can never observe reuse. A send dropped by a
// stopping executor simply leaks the struct to the GC.
var taskComputedPool = sync.Pool{New: func() any { return new(evTaskComputed) }}
var outputCommittedPool = sync.Pool{New: func() any { return new(evOutputCommitted) }}

func newTaskComputed(ref taskRef, exec string, cached []cacheKey) *evTaskComputed {
	e := taskComputedPool.Get().(*evTaskComputed)
	e.ref, e.Exec, e.Cached = ref, exec, cached
	return e
}

func putTaskComputed(e *evTaskComputed) {
	*e = evTaskComputed{}
	taskComputedPool.Put(e)
}

func newOutputCommitted(ref taskRef) *evOutputCommitted {
	e := outputCommittedPool.Get().(*evOutputCommitted)
	e.ref = ref
	return e
}

func putOutputCommitted(e *evOutputCommitted) {
	*e = evOutputCommitted{}
	outputCommittedPool.Put(e)
}

// evTaskFailed reports a fragment task error.
type evTaskFailed struct {
	ref   taskRef
	Exec  string
	Err   error
	Fatal bool
}

// evPullFailed reports that a receiver could not pull a committed sender
// output (pull-boundary ablation): the sender must be relaunched.
type evPullFailed struct{ ref taskRef }

// evReservedTaskDone reports a finalized reserved task whose output
// partition now lives in its executor's local store. Chunk, when
// non-empty, is the content hash under which the partition's payload was
// also written to the commit store; the master assembles the per-stage
// chunk list into a commit manifest once the stage completes.
type evReservedTaskDone struct {
	Job, Stage, Gen, Index int
	Exec                   string
	Bytes                  int64
	Chunk                  string
}

// evResult carries a terminal transient task's output pushed to the
// master collector.
type evResult struct {
	Job, Stage, Gen, Index, Attempt int
	Payload                         []byte
}

// mailbox is an unbounded FIFO queue used for receiver messages, so the
// master's event loop never blocks while forwarding commits.
type mailbox struct {
	mu  sync.Mutex
	q   []any
	sig chan struct{}
}

func newMailbox() *mailbox {
	return &mailbox{sig: make(chan struct{}, 1)}
}

func (m *mailbox) put(v any) {
	m.mu.Lock()
	m.q = append(m.q, v)
	m.mu.Unlock()
	select {
	case m.sig <- struct{}{}:
	default:
	}
}

// tryGet returns the next queued message without blocking.
func (m *mailbox) tryGet() (any, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.q) == 0 {
		return nil, false
	}
	v := m.q[0]
	m.q = m.q[1:]
	return v, true
}

// get returns the next message, blocking until one arrives or either stop
// channel closes.
func (m *mailbox) get(stop1, stop2 <-chan struct{}) (any, bool) {
	for {
		m.mu.Lock()
		if len(m.q) > 0 {
			v := m.q[0]
			m.q = m.q[1:]
			m.mu.Unlock()
			return v, true
		}
		m.mu.Unlock()
		select {
		case <-m.sig:
		case <-stop1:
			return nil, false
		case <-stop2:
			return nil, false
		}
	}
}
