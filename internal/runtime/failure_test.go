package runtime

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pado/internal/chaos"
	"pado/internal/metrics"
	"pado/internal/obs"
	"pado/internal/simnet"
	"pado/internal/testutil"
	"pado/internal/trace"
)

// Detector unit tests: the state machine must survive concurrent beats
// (collector goroutines) against event-loop ticks, and announced
// evictions racing detector suspicion must stay idempotent. Run with
// -race.

func testFailureConfig() FailureConfig {
	return FailureConfig{
		HeartbeatEvery: 10 * time.Millisecond,
		SuspectAfter:   20 * time.Millisecond,
		DeadAfter:      50 * time.Millisecond,
		GrayAfter:      30 * time.Millisecond,
	}
}

// TestDetectorConcurrentBeats hammers beat() from many goroutines while
// tick/register/forget run — the real topology: collector conns beat,
// the event loop sweeps.
func TestDetectorConcurrentBeats(t *testing.T) {
	fd := newFailureDetector(testFailureConfig())
	start := time.Now()
	ids := []string{"t0", "t1", "t2", "r0"}
	for _, id := range ids {
		fd.register(id, start)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for _, id := range ids {
		id := id
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				fd.beat(id, []string{"r0"}, time.Now())
			}
		}()
	}
	alive := func(string) bool { return true }
	for i := 0; i < 200; i++ {
		fd.tick(time.Now(), alive)
		if i == 50 {
			fd.forget("t2")
		}
		if i == 60 {
			fd.register("t2", time.Now())
		}
	}
	close(stop)
	wg.Wait()

	// Every node kept beating, so the final sweep must declare nothing.
	for _, tr := range fd.tick(time.Now(), alive) {
		if tr.Kind == fdDead {
			t.Errorf("node %s declared dead while beating", tr.ID)
		}
	}
}

// TestDetectorEvictionWhileSuspect pins the announced-eviction vs.
// detector race: a node goes suspect, then the cluster announces its
// eviction (dropHost → forget). Later ticks must stay silent about it,
// and a late beat from the departed node must not resurrect it.
func TestDetectorEvictionWhileSuspect(t *testing.T) {
	cfg := testFailureConfig()
	fd := newFailureDetector(cfg)
	now := time.Now()
	fd.register("t0", now)
	fd.register("t1", now)
	keepAlive := func(at time.Time) { fd.beat("t1", nil, at) }
	alive := func(string) bool { return true }

	// t0 falls silent past SuspectAfter: suspicion raised.
	at := now.Add(cfg.SuspectAfter + time.Millisecond)
	keepAlive(at)
	suspect := false
	for _, tr := range fd.tick(at, alive) {
		if tr.ID == "t0" && tr.Kind == fdSuspect {
			suspect = true
		}
	}
	if !suspect {
		t.Fatal("t0 not suspected after staleness bound")
	}

	// The eviction announcement wins the race: forget the node.
	fd.forget("t0")

	// A late heartbeat from the evicted node must be ignored, and no
	// tick may mention it again — not cleared, not dead.
	fd.beat("t0", nil, at.Add(time.Millisecond))
	at = at.Add(cfg.DeadAfter)
	keepAlive(at)
	for _, tr := range fd.tick(at, alive) {
		if tr.ID == "t0" {
			t.Errorf("forgotten node surfaced as %v transition", tr.Kind)
		}
	}
	if _, ok := fd.nodes["t0"]; ok {
		t.Error("late beat resurrected a forgotten node")
	}
}

// TestDetectorDeadThenLateBeat: once declared dead (and forgotten by the
// master), a late heartbeat frame from the walking corpse must not
// re-enter the detector.
func TestDetectorDeadThenLateBeat(t *testing.T) {
	cfg := testFailureConfig()
	fd := newFailureDetector(cfg)
	now := time.Now()
	fd.register("t0", now)
	alive := func(string) bool { return true }

	dead := false
	at := now.Add(cfg.DeadAfter + time.Millisecond)
	for _, tr := range fd.tick(at, alive) {
		if tr.ID == "t0" && tr.Kind == fdDead {
			dead = true
		}
	}
	if !dead {
		t.Fatal("t0 not declared dead after DeadAfter")
	}
	fd.forget("t0") // what onDeclaredDead does via dropHost

	fd.beat("t0", nil, at.Add(time.Millisecond))
	if _, ok := fd.nodes["t0"]; ok {
		t.Error("late beat resurrected a dead node")
	}
	for _, tr := range fd.tick(at.Add(2*cfg.DeadAfter), alive) {
		if tr.ID == "t0" {
			t.Errorf("dead node surfaced again as %v transition", tr.Kind)
		}
	}
}

// TestBreakerLifecycleConcurrent drives one destination through closed →
// open → half-open → closed under concurrent traffic: a dropped link
// fails every fetch until the breaker opens (later callers fail fast
// with errBreakerOpen), then the link heals and post-cooldown probes
// close it again.
func TestBreakerLifecycleConcurrent(t *testing.T) {
	_, pool, met := newPoolFixture(t, map[string][]byte{"b": []byte("payload")})
	cfg := FailureConfig{
		RPCMaxRetries:    1,
		RPCBackoffBase:   time.Millisecond,
		RPCBackoffMax:    2 * time.Millisecond,
		BreakerThreshold: 3,
		BreakerCooldown:  20 * time.Millisecond,
	}
	pool.pol = newRPCPolicy(cfg, "client", met, nil)

	remove := pool.net.InjectFault(simnet.LinkFault{From: "client", To: "server", DropEvery: 1})

	var fastFails atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				_, err := fetchBlock(pool, "server", "b")
				if err == nil {
					t.Error("fetch succeeded through a fully dropped link")
					return
				}
				if errors.Is(err, errBreakerOpen) {
					fastFails.Add(1)
				}
			}
		}()
	}
	wg.Wait()

	if fastFails.Load() == 0 {
		t.Error("breaker never failed traffic fast while open")
	}
	if met.Counter(metrics.NameBreakerOpens).Load() == 0 {
		t.Error("breaker_opens counter is zero")
	}
	if !pool.pol.quarantined("server") {
		t.Fatal("destination not quarantined after sustained failures")
	}
	if open := pool.pol.openDests(); len(open) != 1 || open[0] != "server" {
		t.Fatalf("openDests = %v, want [server]", open)
	}

	// Heal the link; after the cooldown a probe succeeds and closes the
	// breaker for everyone.
	remove()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("breaker never closed after the link healed")
		}
		if _, err := fetchBlock(pool, "server", "b"); err == nil {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if pool.pol.quarantined("server") {
		t.Error("destination still quarantined after successful traffic")
	}
	if open := pool.pol.openDests(); len(open) != 0 {
		t.Errorf("openDests = %v after recovery, want none", open)
	}
}

// TestHungNodeLateFramesNotDoubleCommitted is the late-progress-frame
// regression: a node wedges mid-push, the detector declares it dead and
// relaunches its tasks, and THEN the node un-wedges — its blocked push
// and result frames finally flow. The master must reject them: the job
// output stays exact and every (epoch, frag, task) commits once.
func TestHungNodeLateFramesNotDoubleCommitted(t *testing.T) {
	testutil.Watchdog(t, 45*time.Second)
	pipe, expect := buildWordCount(8, 300)
	cl := newTestCluster(t, 6, 2, trace.RateNone)
	tracer := obs.New()

	plan := &chaos.Plan{Name: "hang-then-wake", Rules: []chaos.Rule{{
		Trigger: func() chaos.Trigger {
			tr := chaos.On("push_started")
			tr.Count = 1
			return tr
		}(),
		// Window un-wedges the node well after DeadAfter: the declaration
		// lands first, the stale frames second.
		Fault: chaos.Fault{Op: chaos.OpHang, Target: "@event", Stage: chaos.Any,
			Window: chaos.Duration(400 * time.Millisecond)},
	}}}
	if err := plan.Validate(); err != nil {
		t.Fatal(err)
	}
	eng := chaos.NewEngine(plan, cl)
	eng.Attach(tracer)
	defer eng.Stop()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	res, err := Run(ctx, cl, pipe.Graph(), Config{
		Tracer: tracer,
		Chaos:  eng,
		Failure: FailureConfig{
			HeartbeatEvery: 10 * time.Millisecond,
			SuspectAfter:   40 * time.Millisecond,
			DeadAfter:      150 * time.Millisecond,
		},
		MaxTaskFailures: 1000,
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.Metrics.TimedOut {
		t.Fatal("job hung after node wedge")
	}
	eng.Stop()
	if len(eng.Injections()) == 0 {
		t.Fatal("hang fault never fired")
	}
	checkWordCount(t, res, expect)

	parents := make(map[int][]int, len(res.Plan.Stages))
	for _, ps := range res.Plan.Stages {
		parents[ps.ID] = ps.Parents
	}
	events := tracer.Events()
	rep := chaos.Check(events, parents)
	rep.Violations = append(rep.Violations, chaos.CheckDetection(events, 5*time.Second)...)
	if !rep.OK() {
		t.Errorf("invariants: %s", rep)
	}
	declared := false
	for _, ev := range events {
		if ev.Kind == obs.NodeDeclaredDead {
			declared = true
		}
	}
	if !declared {
		t.Error("hung node never declared dead")
	}
}
