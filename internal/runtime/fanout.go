package runtime

import (
	"sync"
	"sync/atomic"
)

// maxFetchWorkers bounds the concurrency of a single fetch fan-out
// (broadcast partition pulls, receiver input fetches, cross-stage input
// resolution). Pushes are not bounded here: a task pushes to at most the
// stage's receiver count, which the physical plan already keeps small.
const maxFetchWorkers = 8

// fanout runs fn(0..n-1) on up to workers concurrent goroutines and
// returns the lowest-index error. Picking the lowest index (rather than
// whichever goroutine lost the race) keeps the reported failure
// deterministic for a fixed set of per-index outcomes, which the chaos
// determinism gate relies on. All indices are attempted even after a
// failure; callers treat the results as all-or-nothing.
func fanout(n, workers int, fn func(i int) error) error {
	if n == 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	if n == 1 || workers <= 1 {
		var first error
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil && first == nil {
				first = err
			}
		}
		return first
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
