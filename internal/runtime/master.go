package runtime

import (
	"fmt"
	"log"
	"os"
	"slices"
	"time"

	"pado/internal/cluster"
	"pado/internal/core"
	"pado/internal/dag"
	"pado/internal/dataflow"
	"pado/internal/metrics"
	"pado/internal/obs"
	"pado/internal/simnet"
)

// Master orchestrates one job (§3.2): it owns the container manager role
// (tracking executors by kind), the task scheduler (reserved tasks first,
// then transient tasks, round-robin with cache awareness), the commit
// relay of the eviction-tolerance protocol, and the recovery logic for
// reserved-container failures.
type Master struct {
	cfg  Config
	plan *core.Plan
	cl   *cluster.Cluster
	net  *simnet.Network
	met  *metrics.Job
	tr   *obs.Buf // event-loop-confined trace buffer (nil = tracing off)
	// pool reuses master-originated data-plane connections (progress
	// replication, output collection).
	pool *connPool

	events chan event
	// overflow carries the first "event queue full" error out of the
	// cluster callbacks; the run loop turns it into a loud abort.
	overflow chan error

	// Event-loop-confined state.
	execs          map[string]*Executor
	kinds          map[string]cluster.Kind
	slotsFree      map[string]int
	transientOrder []string
	reservedOrder  []string
	rrTask         int
	rrRecv         int
	stages         []*stageRun
	assignments    map[taskRef]string // outstanding slot holders
	cacheIndex     map[cacheKey]map[string]bool

	// recvActive/recvPeak track concurrent live reserved tasks
	// (receivers) so reserved-slot pressure against the placement
	// policy's budget is observable ("reserved_slots_peak").
	recvActive int
	recvPeak   int

	allowReservedFrag bool
	finished          bool
	failErr           error
	t0                time.Time
}

// Task and stage state machines.
type taskState int

const (
	tWaiting taskState = iota
	tRunning
	tComputed
	tCommitted
)

type taskRun struct {
	state   taskState
	attempt int
	exec    string
	fails   int
}

type fragRun struct {
	tasks      []*taskRun
	nCommitted int
}

type stageStatus int

const (
	sPending stageStatus = iota
	sStartingReceivers
	sRunning
	sDone
)

type stageRun struct {
	ps       *core.PhysStage
	status   stageStatus
	gen      int
	restarts int

	recvExecs []string
	recvReady []bool
	nReady    int
	recvDone  []bool
	nDone     int

	frags []*fragRun

	// outputExecs locates the stage's output partitions once done.
	outputExecs []string
	// results holds terminal transient task payloads.
	results  [][]byte
	nResults int
}

// relaunchableState: states below this are relaunched on eviction. The
// failure thresholds (formerly consts here) live in Config:
// MaxTaskFailures and MaxStageRestarts, defaulting to 50 and 100.
const relaunchableState = tCommitted

var debugStages = os.Getenv("PADO_DEBUG") != ""

func newMaster(cl *cluster.Cluster, plan *core.Plan, cfg Config, met *metrics.Job) *Master {
	m := &Master{
		t0:          time.Now(),
		cfg:         cfg,
		plan:        plan,
		cl:          cl,
		net:         cl.Net(),
		met:         met,
		tr:          cfg.Tracer.Buf(),
		events:      make(chan event, cfg.eventQueue()),
		overflow:    make(chan error, 1),
		execs:       make(map[string]*Executor),
		kinds:       make(map[string]cluster.Kind),
		slotsFree:   make(map[string]int),
		assignments: make(map[taskRef]string),
		cacheIndex:  make(map[cacheKey]map[string]bool),
	}
	m.pool = newConnPool(m.net, "master", met)
	m.stages = make([]*stageRun, len(plan.Stages))
	for i, ps := range plan.Stages {
		m.stages[i] = &stageRun{ps: ps}
	}
	if b := cfg.Plan.Env.ReservedSlotBudget; b > 0 {
		met.Counter("reserved_slots_budget").Store(int64(b))
	}
	return m
}

// trackReceivers adjusts the live reserved-task count and records the
// high-water mark.
func (m *Master) trackReceivers(delta int) {
	m.recvActive += delta
	if m.recvActive > m.recvPeak {
		m.recvPeak = m.recvActive
		m.met.Counter("reserved_slots_peak").Store(int64(m.recvPeak))
	}
}

// Cluster listener: callbacks convert to events. These run on cluster
// goroutines whose contract says they must not block, so a full event
// queue fails loudly (dropping the event and flagging the job) instead
// of deadlocking the cluster.
func (m *Master) ContainerLaunched(c *cluster.Container) { m.postClusterEvent(evContainerLaunched{C: c}) }
func (m *Master) ContainerEvicted(c *cluster.Container)  { m.postClusterEvent(evContainerEvicted{C: c}) }
func (m *Master) ContainerFailed(c *cluster.Container)   { m.postClusterEvent(evContainerFailed{C: c}) }

// postClusterEvent enqueues a cluster-originated event without ever
// blocking. A dropped container event would leave the master's view of
// the cluster permanently wrong, so overflow counts in metrics
// ("event_queue_overflow") and aborts the job via the overflow channel
// rather than limping along.
func (m *Master) postClusterEvent(ev event) {
	select {
	case m.events <- ev:
	default:
		m.met.Counter("event_queue_overflow").Add(1)
		select {
		case m.overflow <- fmt.Errorf("runtime: master event queue full (cap %d), dropped %T", cap(m.events), ev):
		default:
		}
	}
}

func (m *Master) abort(err error) {
	if m.failErr == nil {
		m.failErr = err
		m.tr.Emit(obs.Event{Kind: obs.JobAborted, Note: err.Error()})
	}
	m.finished = true
}

// handle processes one event and then advances scheduling.
func (m *Master) handle(ev event) {
	switch e := ev.(type) {
	case evContainerLaunched:
		m.onLaunched(e.C)
	case evContainerEvicted:
		m.onEvicted(e.C)
	case evContainerFailed:
		m.onFailed(e.C)
	case evReceiverReady:
		m.onReceiverReady(e)
	case evReceiverFailed:
		m.onReceiverFailed(e)
	case evTaskComputed:
		m.onTaskComputed(e)
	case evOutputCommitted:
		m.onOutputCommitted(e)
	case evTaskFailed:
		m.onTaskFailed(e)
	case evPullFailed:
		m.onPullFailed(e)
	case evReservedTaskDone:
		m.onReservedTaskDone(e)
	case evResult:
		m.onResult(e)
	}
	if !m.finished {
		m.schedule()
	}
}

func (m *Master) onLaunched(c *cluster.Container) {
	ex, err := newExecutor(c, m.net, m.plan, m.cfg, m.met, m.events, "master")
	if err != nil {
		// The container raced its own eviction; a replacement follows.
		return
	}
	m.tr.Emit(obs.Event{Kind: obs.ContainerUp, Exec: c.ID, Note: c.Kind.String()})
	m.execs[c.ID] = ex
	m.kinds[c.ID] = c.Kind
	m.slotsFree[c.ID] = c.Slots
	if c.Kind == cluster.Transient {
		m.transientOrder = append(m.transientOrder, c.ID)
	} else {
		m.reservedOrder = append(m.reservedOrder, c.ID)
	}
}

func (m *Master) dropExecutor(id string) {
	if ex := m.execs[id]; ex != nil {
		ex.shutdown()
	}
	delete(m.execs, id)
	delete(m.kinds, id)
	delete(m.slotsFree, id)
	m.transientOrder = slices.DeleteFunc(m.transientOrder, func(x string) bool { return x == id })
	m.reservedOrder = slices.DeleteFunc(m.reservedOrder, func(x string) bool { return x == id })
	for key, set := range m.cacheIndex {
		delete(set, id)
		if len(set) == 0 {
			delete(m.cacheIndex, key)
		}
	}
	for ref, exec := range m.assignments {
		if exec == id {
			delete(m.assignments, ref)
		}
	}
}

// onEvicted implements §3.2.5: only the uncommitted tasks that were
// scheduled on the evicted executor are relaunched; parent stages are
// never recomputed.
func (m *Master) onEvicted(c *cluster.Container) {
	m.met.Evictions.Add(1)
	m.tr.Emit(obs.Event{Kind: obs.ContainerEvicted, Exec: c.ID})
	m.dropExecutor(c.ID)
	for _, s := range m.stages {
		if s.status != sRunning && s.status != sStartingReceivers {
			continue
		}
		for fi, fr := range s.frags {
			for ti, t := range fr.tasks {
				if t.exec == c.ID && t.state != tWaiting && t.state != tCommitted {
					m.requeue(t)
					m.tr.Emit(obs.Event{Kind: obs.TaskRelaunched, Stage: s.ps.ID,
						Frag: fi, Task: ti, Attempt: t.attempt, Exec: c.ID})
				}
			}
		}
	}
}

func (m *Master) requeue(t *taskRun) {
	t.state = tWaiting
	t.exec = ""
	t.attempt++
	m.met.RelaunchedTasks.Add(1)
}

// onFailed implements §3.2.6: identify stages whose intermediate results
// were lost with the reserved container, pause dependents, and recompute
// in topological order (via the normal pending-stage scheduling).
func (m *Master) onFailed(c *cluster.Container) {
	m.tr.Emit(obs.Event{Kind: obs.ContainerFailed, Exec: c.ID})
	m.dropExecutor(c.ID)

	lost := make(map[int]bool)
	for _, s := range m.stages {
		if s.status == sDone && slices.Contains(s.outputExecs, c.ID) {
			lost[s.ps.ID] = true
		}
	}
	for _, s := range m.stages {
		restart := lost[s.ps.ID]
		if s.status == sRunning || s.status == sStartingReceivers {
			if slices.Contains(s.recvExecs, c.ID) {
				restart = true
			}
			for _, pid := range s.ps.Parents {
				if lost[pid] {
					restart = true
				}
			}
		}
		if restart {
			m.resetStage(s)
		}
	}
}

// resetStage returns a stage to pending so scheduling recomputes it under
// a fresh generation. Receivers still alive are canceled; in-flight tasks
// keep running but their events carry a stale generation and are dropped.
func (m *Master) resetStage(s *stageRun) {
	for idx, e := range s.recvExecs {
		if ex := m.execs[e]; ex != nil {
			ex.CancelReceiver(s.ps.ID, s.gen, idx)
		}
		if !s.recvDone[idx] {
			m.trackReceivers(-1)
		}
	}
	s.status = sPending
	s.restarts++
	s.recvExecs = nil
	s.recvReady = nil
	s.nReady = 0
	s.recvDone = nil
	s.nDone = 0
	s.frags = nil
	s.outputExecs = nil
	s.results = nil
	s.nResults = 0
	if max := m.cfg.maxStageRestarts(); s.restarts > max {
		m.abort(fmt.Errorf("runtime: stage %d restarted more than %d times", s.ps.ID, max))
	}
}

// stage lookups with generation validation.
func (m *Master) stageAt(id, gen int) *stageRun {
	if id < 0 || id >= len(m.stages) {
		return nil
	}
	s := m.stages[id]
	if s.gen != gen {
		return nil
	}
	return s
}

func (m *Master) taskAt(ref taskRef) (*stageRun, *taskRun) {
	s := m.stageAt(ref.Stage, ref.Gen)
	if s == nil || ref.Frag >= len(s.frags) {
		return nil, nil
	}
	fr := s.frags[ref.Frag]
	if ref.Index >= len(fr.tasks) {
		return nil, nil
	}
	t := fr.tasks[ref.Index]
	if t.attempt != ref.Attempt {
		return nil, nil
	}
	return s, t
}

func (m *Master) freeSlot(ref taskRef) {
	if exec, ok := m.assignments[ref]; ok {
		delete(m.assignments, ref)
		if _, alive := m.slotsFree[exec]; alive {
			m.slotsFree[exec]++
		}
	}
}

func (m *Master) onReceiverReady(e evReceiverReady) {
	s := m.stageAt(e.Stage, e.Gen)
	if s == nil || s.status != sStartingReceivers || s.recvReady[e.Index] {
		return
	}
	s.recvReady[e.Index] = true
	s.nReady++
	m.tr.Emit(obs.Event{Kind: obs.ReceiverReady, Stage: s.ps.ID, Frag: obs.ReservedFrag,
		Task: e.Index, Exec: s.recvExecs[e.Index]})
	if s.nReady == len(s.recvExecs) {
		s.status = sRunning
	}
}

func (m *Master) onReceiverFailed(e evReceiverFailed) {
	if e.Fatal {
		m.abort(fmt.Errorf("runtime: reserved task %d/%d failed: %w", e.Stage, e.Index, e.Err))
		return
	}
	s := m.stageAt(e.Stage, e.Gen)
	if s == nil || s.status == sDone {
		return
	}
	m.tr.Emit(obs.Event{Kind: obs.TaskFailed, Stage: s.ps.ID, Frag: obs.ReservedFrag,
		Task: e.Index, Note: e.Err.Error()})
	m.resetStage(s)
}

func (m *Master) onTaskComputed(e evTaskComputed) {
	m.freeSlot(e.ref)
	for _, key := range e.Cached {
		set := m.cacheIndex[key]
		if set == nil {
			set = make(map[string]bool)
			m.cacheIndex[key] = set
		}
		set[e.Exec] = true
	}
	s, t := m.taskAt(e.ref)
	if t == nil || t.state != tRunning {
		return
	}
	t.state = tComputed
	m.tr.Emit(obs.Event{Kind: obs.TaskFinished, Stage: s.ps.ID, Frag: e.ref.Frag,
		Task: e.ref.Index, Attempt: e.ref.Attempt, Exec: e.Exec})
}

func (m *Master) onOutputCommitted(e evOutputCommitted) {
	s, t := m.taskAt(e.ref)
	if s == nil || t == nil || t.state == tCommitted || t.state == tWaiting {
		return
	}
	t.state = tCommitted
	fr := s.frags[e.ref.Frag]
	fr.nCommitted++
	m.tr.Emit(obs.Event{Kind: obs.PushCommitted, Stage: s.ps.ID, Frag: e.ref.Frag,
		Task: e.ref.Index, Attempt: e.ref.Attempt, Exec: t.exec})
	// Relay the commit to every receiver of the stage (§3.2.5). The
	// chaos hook may delay or duplicate individual relays; receivers'
	// attempt tracking must make duplicates harmless and delays at worst
	// slow (stale generations are dropped on arrival).
	for idx, exID := range s.recvExecs {
		ex := m.execs[exID]
		if ex == nil {
			continue
		}
		msg := msgCommit{Frag: e.ref.Frag, Index: e.ref.Index, Attempt: e.ref.Attempt, Exec: t.exec}
		stage, gen := s.ps.ID, s.gen
		var delay time.Duration
		dups := 0
		if m.cfg.Chaos != nil {
			delay, dups = m.cfg.Chaos.CommitRelay(stage, e.ref.Frag, e.ref.Index, e.ref.Attempt, idx)
		}
		send := func() {
			for i := 0; i <= dups; i++ {
				ex.Commit(stage, gen, idx, msg)
			}
		}
		if delay > 0 {
			time.AfterFunc(delay, send)
		} else {
			send()
		}
	}
}

func (m *Master) onTaskFailed(e evTaskFailed) {
	m.freeSlot(e.ref)
	if e.Fatal {
		m.abort(fmt.Errorf("runtime: task %v failed: %w", e.ref, e.Err))
		return
	}
	s, t := m.taskAt(e.ref)
	if s == nil || t == nil || t.state == tWaiting || t.state == tCommitted {
		return
	}
	t.fails++
	if max := m.cfg.maxTaskFailures(); t.fails > max {
		m.abort(fmt.Errorf("runtime: task %v failed %d times, last: %w", e.ref, t.fails, e.Err))
		return
	}
	m.tr.Emit(obs.Event{Kind: obs.TaskFailed, Stage: s.ps.ID, Frag: e.ref.Frag,
		Task: e.ref.Index, Attempt: e.ref.Attempt, Exec: t.exec, Note: e.Err.Error()})
	m.requeue(t)
	m.tr.Emit(obs.Event{Kind: obs.TaskRelaunched, Stage: s.ps.ID, Frag: e.ref.Frag,
		Task: e.ref.Index, Attempt: t.attempt})
}

func (m *Master) onPullFailed(e evPullFailed) {
	s, t := m.taskAt(e.ref)
	if s == nil || t == nil {
		return
	}
	if t.state == tCommitted {
		s.frags[e.ref.Frag].nCommitted--
	}
	m.requeue(t)
	m.tr.Emit(obs.Event{Kind: obs.TaskRelaunched, Stage: s.ps.ID, Frag: e.ref.Frag,
		Task: e.ref.Index, Attempt: t.attempt, Note: "pull_failed"})
}

func (m *Master) onReservedTaskDone(e evReservedTaskDone) {
	s := m.stageAt(e.Stage, e.Gen)
	if s == nil || s.status != sRunning || s.recvDone[e.Index] {
		return
	}
	s.recvDone[e.Index] = true
	s.nDone++
	m.trackReceivers(-1)
	m.tr.Emit(obs.Event{Kind: obs.TaskFinished, Stage: s.ps.ID, Frag: obs.ReservedFrag,
		Task: e.Index, Exec: s.recvExecs[e.Index], Bytes: e.Bytes})
	if s.nDone == len(s.recvExecs) {
		s.status = sDone
		s.outputExecs = append([]string(nil), s.recvExecs...)
		m.tr.Emit(obs.Event{Kind: obs.StageComplete, Stage: s.ps.ID})
		m.replicateProgress()
		if debugStages {
			log.Printf("pado: stage %d (%s) done at %v", s.ps.ID,
				m.plan.Graph.Vertex(s.ps.Root).Name, time.Since(m.t0).Round(time.Millisecond))
		}
		m.checkAllDone()
	}
}

func (m *Master) onResult(e evResult) {
	s := m.stageAt(e.Stage, e.Gen)
	if s == nil || s.status != sRunning || s.ps.RootReserved {
		return
	}
	fr := s.frags[s.ps.RootFragment]
	t := fr.tasks[e.Index]
	if t.attempt != e.Attempt || t.state == tCommitted {
		return
	}
	t.state = tCommitted
	s.results[e.Index] = e.Payload
	s.nResults++
	m.tr.Emit(obs.Event{Kind: obs.PushCommitted, Stage: s.ps.ID, Frag: s.ps.RootFragment,
		Task: e.Index, Attempt: e.Attempt, Exec: t.exec, Bytes: int64(len(e.Payload)),
		Note: "result"})
	if s.nResults == len(fr.tasks) {
		s.status = sDone
		m.tr.Emit(obs.Event{Kind: obs.StageComplete, Stage: s.ps.ID})
		m.replicateProgress()
		m.checkAllDone()
	}
}

func (m *Master) checkAllDone() {
	for _, s := range m.stages {
		if s.status != sDone {
			return
		}
	}
	m.finished = true
}

// schedule starts pending stages whose parents completed and assigns
// waiting tasks to executors.
func (m *Master) schedule() {
	for _, s := range m.stages {
		if s.status == sPending && m.parentsDone(s) {
			m.startStage(s)
		}
	}
	m.assignTasks()
}

func (m *Master) parentsDone(s *stageRun) bool {
	for _, pid := range s.ps.Parents {
		if m.stages[pid].status != sDone {
			return false
		}
	}
	return true
}

func (m *Master) startStage(s *stageRun) {
	ps := s.ps
	if ps.RootReserved && len(m.reservedOrder) == 0 {
		return // wait for a reserved container
	}
	s.gen++
	note := ""
	if s.restarts > 0 {
		note = fmt.Sprintf("restart %d", s.restarts)
	}
	m.tr.Emit(obs.Event{Kind: obs.StageScheduled, Stage: ps.ID, Attempt: s.restarts, Note: note})
	s.frags = make([]*fragRun, len(ps.Fragments))
	total := 0
	for i, f := range ps.Fragments {
		fr := &fragRun{tasks: make([]*taskRun, f.Parallelism)}
		for j := range fr.tasks {
			fr.tasks[j] = &taskRun{state: tWaiting}
		}
		s.frags[i] = fr
		total += f.Parallelism
	}

	if ps.RootReserved {
		r := ps.RootParallelism
		s.recvExecs = make([]string, r)
		s.recvReady = make([]bool, r)
		s.recvDone = make([]bool, r)
		s.nReady, s.nDone = 0, 0
		for i := 0; i < r; i++ {
			s.recvExecs[i] = m.reservedOrder[m.rrRecv%len(m.reservedOrder)]
			m.rrRecv++
		}
		total += r
		expected := 0
		for _, f := range ps.Fragments {
			expected += f.Parallelism
		}
		locs := m.inputLocsFor(ps)
		// Reserved tasks are scheduled and set up first so they can
		// receive pushed outputs (§3.2.3).
		s.status = sStartingReceivers
		m.trackReceivers(r)
		for i := 0; i < r; i++ {
			m.tr.Emit(obs.Event{Kind: obs.TaskLaunched, Stage: ps.ID, Frag: obs.ReservedFrag,
				Task: i, Exec: s.recvExecs[i]})
			m.execs[s.recvExecs[i]].StartReceiver(recvSpec{
				Stage: ps.ID, Gen: s.gen, Index: i,
				Expected:  expected,
				InputLocs: locs,
				PullMode:  m.cfg.PullBoundaries,
			})
		}
	} else {
		s.results = make([][]byte, ps.Fragments[ps.RootFragment].Parallelism)
		s.nResults = 0
		s.status = sRunning
	}

	if s.gen == 1 {
		m.met.OriginalTasks.Add(int64(total))
	} else {
		m.met.RelaunchedTasks.Add(int64(total))
	}
}

func (m *Master) inputLocsFor(ps *core.PhysStage) map[int]stageLoc {
	locs := make(map[int]stageLoc)
	for _, si := range ps.Inputs {
		if _, ok := locs[si.FromStage]; ok {
			continue
		}
		p := m.stages[si.FromStage]
		locs[si.FromStage] = stageLoc{Gen: p.gen, Execs: append([]string(nil), p.outputExecs...)}
	}
	return locs
}

// assignTasks hands waiting fragment tasks to executors: cache-preferred
// placement first, then round-robin over free slots (§3.2.3).
func (m *Master) assignTasks() {
	pool := m.transientOrder
	if len(pool) == 0 && (m.allowReservedFrag || m.cl.TransientConfigured() == 0) {
		pool = m.reservedOrder
	}
	if len(pool) == 0 {
		return
	}
	for _, s := range m.stages {
		if s.status != sRunning {
			continue
		}
		locs := m.inputLocsFor(s.ps)
		for fi, fr := range s.frags {
			frag := s.ps.Fragments[fi]
			for ti, t := range fr.tasks {
				if t.state != tWaiting {
					continue
				}
				exec := m.pickExecutor(pool, s.ps, frag, ti)
				if exec == "" {
					return // no free slots anywhere
				}
				t.state = tRunning
				t.exec = exec
				m.slotsFree[exec]--
				m.tr.Emit(obs.Event{Kind: obs.TaskLaunched, Stage: s.ps.ID, Frag: fi,
					Task: ti, Attempt: t.attempt, Exec: exec})
				ref := taskRef{Stage: s.ps.ID, Gen: s.gen, Frag: fi, Index: ti, Attempt: t.attempt}
				m.assignments[ref] = exec
				m.execs[exec].Launch(taskSpec{
					Stage: s.ps.ID, Gen: s.gen, Frag: fi, Index: ti, Attempt: t.attempt,
					InputLocs: locs,
					Receivers: append([]string(nil), s.recvExecs...),
					Terminal:  !s.ps.RootReserved,
				})
			}
		}
	}
}

// pickExecutor prefers an executor that has any of the task's cacheable
// inputs cached (§3.2.7 cache-aware scheduling), then falls back to
// round-robin over executors with free slots.
func (m *Master) pickExecutor(pool []string, ps *core.PhysStage, frag *core.Fragment, taskIdx int) string {
	if !m.cfg.DisableCache {
		for _, key := range taskCacheKeys(m.plan, ps, frag, taskIdx) {
			for exID := range m.cacheIndex[key] {
				if m.slotsFree[exID] > 0 && slices.Contains(pool, exID) {
					return exID
				}
			}
		}
	}
	for i := 0; i < len(pool); i++ {
		exID := pool[m.rrTask%len(pool)]
		m.rrTask++
		if m.slotsFree[exID] > 0 {
			return exID
		}
	}
	return ""
}

// taskCacheKeys lists the cacheable inputs of one fragment task.
func taskCacheKeys(plan *core.Plan, ps *core.PhysStage, frag *core.Fragment, taskIdx int) []cacheKey {
	var keys []cacheKey
	for _, opID := range frag.Ops {
		if rd, ok := plan.Graph.Vertex(opID).Op.(*dataflow.ReadOp); ok && rd.Cached {
			keys = append(keys, cacheKey{Vertex: opID, Partition: taskIdx})
		}
		for _, si := range ps.InputsTo(opID) {
			if !si.Cached {
				continue
			}
			switch si.Dep {
			case dag.OneToOne:
				keys = append(keys, cacheKey{Vertex: si.FromVertex, Partition: taskIdx})
			case dag.OneToMany:
				keys = append(keys, cacheKey{Vertex: si.FromVertex, Partition: -1})
			}
		}
	}
	return keys
}
