package runtime

import (
	"fmt"
	"log"
	"os"
	"slices"
	"time"

	"pado/internal/cluster"
	"pado/internal/core"
	"pado/internal/dag"
	"pado/internal/dataflow"
	"pado/internal/metrics"
	"pado/internal/obs"
)

// This file holds the per-job half of the JobManager (manager.go holds
// the resident service: admission, the event loop, and job lifecycle).
// Each handler below is the §3.2 master logic — scheduling, the commit
// relay, eviction tolerance, reserved-failure recovery — applied to one
// jobRun's stage state, with the fleet (hosts, slots, round-robin
// cursors) shared across jobs.

// Task and stage state machines.
type taskState int

const (
	tWaiting taskState = iota
	tRunning
	tComputed
	tCommitted
)

type taskRun struct {
	state   taskState
	attempt int
	exec    string
	fails   int
	// started stamps the current attempt's launch; the latency
	// histograms (task_compute_ns, task_commit_ns) measure from it.
	started time.Time
}

type fragRun struct {
	tasks      []*taskRun
	nCommitted int
}

type stageStatus int

const (
	sPending stageStatus = iota
	sStartingReceivers
	sRunning
	sDone
)

type stageRun struct {
	ps       *core.PhysStage
	status   stageStatus
	gen      int
	restarts int

	// recvExecs is immutable for the life of a generation and shared by
	// reference into every taskSpec.Receivers and recvSpec.Peers of that
	// generation (executors and receivers only read it); resetStage
	// replaces, never mutates, it.
	recvExecs []string
	recvReady []bool
	nReady    int
	recvDone  []bool
	nDone     int

	frags []*fragRun

	// Dense task-index layout (sched.go): denseBase is the stage's
	// offset in the job-wide index, fragOff the per-fragment offsets
	// within the stage, nTasks the stage's fragment-task count. Fixed at
	// submission.
	denseBase int
	fragOff   []int
	nTasks    int
	// inputLocs caches inputLocsFor for the current generation. Valid
	// for the generation's lifetime: a parent's gen/outputExecs can only
	// change via resetStage, and every path that resets a parent resets
	// its running children too (§3.2.6), which clears this cache.
	inputLocs map[int]stageLoc

	// outputExecs locates the stage's output partitions once done.
	outputExecs []string
	// results holds terminal transient task payloads.
	results  [][]byte
	nResults int

	// Commit-plane state (commitplane.go). skipChunks, when non-nil,
	// marks the stage served whole from the commit store: element i is
	// the CAS chunk holding partition i, and consumers fetch from the
	// store instead of outputExecs. taskHits holds per-task probe hits
	// ([frag][task] → per-receiver chunks) applied each generation by
	// applyTaskSkips; entries are nilled when a CAS pull fails so the
	// task relaunches for real. Both survive resetStage — content
	// addresses stay valid across restarts. outChunks gathers
	// evReservedTaskDone.Chunk per receiver for the stage manifest and
	// is per-generation (resetStage clears it).
	skipChunks []string
	taskHits   [][][]string
	outChunks  []string
}

// relaunchableState: states below this are relaunched on eviction. The
// failure thresholds (formerly consts here) live in Config:
// MaxTaskFailures and MaxStageRestarts, defaulting to 50 and 100.
const relaunchableState = tCommitted

var debugStages = os.Getenv("PADO_DEBUG") != ""

// trackReceivers adjusts one job's live reserved-task count and records
// the high-water mark.
func (jm *JobManager) trackReceivers(j *jobRun, delta int) {
	j.recvActive += delta
	if j.recvActive > j.recvPeak {
		j.recvPeak = j.recvActive
		j.met.Counter("reserved_slots_peak").Store(int64(j.recvPeak))
	}
}

func (jm *JobManager) abort(j *jobRun, err error) {
	if j.failErr == nil && !j.finished {
		j.failErr = err
		j.tr.Emit(obs.Event{Kind: obs.JobAborted, Note: err.Error()})
	}
	j.finished = true
}

// Fleet-level container lifecycle.

func (jm *JobManager) onLaunched(c *cluster.Container) {
	h, err := newNodeHost(c)
	if err != nil {
		// The container raced its own eviction; a replacement follows.
		return
	}
	jm.tr.Emit(obs.Event{Kind: obs.ContainerUp, Exec: c.ID, Note: c.Kind.String()})
	jm.hosts[c.ID] = h
	jm.registerNode(c.ID, c.Kind, c.Slots)
	// Every admitted job gets an executor on the new container.
	for _, id := range jm.order {
		jm.attachExecutor(jm.jobs[id], h)
	}
	if jm.fd != nil {
		jm.fd.register(c.ID, time.Now())
		h.startHeartbeats(jm.net, "master", jm.cfg.Failure.heartbeatEvery(), jm.met)
	}
}

// registerNode adds one container to the fleet's scheduling membership:
// kind and slot tables plus the per-kind round-robin order. Shared by
// the cluster callback and by scheduler tests/benchmarks that build a
// fleet without live hosts, so both stay consistent with the free-slot
// index.
func (jm *JobManager) registerNode(id string, kind cluster.Kind, slots int) {
	jm.kinds[id] = kind
	jm.slotsFree[id] = slots
	jm.freeSlots[kind] += slots
	if kind == cluster.Transient {
		jm.transientOrder = append(jm.transientOrder, id)
	} else {
		jm.reservedOrder = append(jm.reservedOrder, id)
	}
}

func (jm *JobManager) dropHost(id string) {
	if jm.fd != nil {
		jm.fd.forget(id)
	}
	if h := jm.hosts[id]; h != nil {
		h.shutdown()
	}
	delete(jm.hosts, id)
	if kind, ok := jm.kinds[id]; ok {
		jm.freeSlots[kind] -= jm.slotsFree[id]
	}
	delete(jm.kinds, id)
	delete(jm.slotsFree, id)
	jm.transientOrder = slices.DeleteFunc(jm.transientOrder, func(x string) bool { return x == id })
	jm.reservedOrder = slices.DeleteFunc(jm.reservedOrder, func(x string) bool { return x == id })
	for _, jid := range jm.order {
		j := jm.jobs[jid]
		delete(j.execs, id)
		for key, set := range j.cacheIndex {
			delete(set, id)
			if len(set) == 0 {
				delete(j.cacheIndex, key)
			}
		}
	}
	for ref, exec := range jm.assignments {
		if exec == id {
			delete(jm.assignments, ref)
		}
	}
}

// onEvicted implements §3.2.5 for every admitted job: only the
// uncommitted tasks that were scheduled on the evicted executor are
// relaunched; parent stages are never recomputed.
func (jm *JobManager) onEvicted(c *cluster.Container) {
	// The announcement is a fast-path hint: if the detector already
	// declared this node dead and recovery ran, there is nothing left to
	// do (the host is gone and tasks were requeued once).
	if jm.hosts[c.ID] == nil {
		return
	}
	// Evictions are only traced and counted while someone is running:
	// the resident manager outlives its jobs, and an eviction in an idle
	// cell perturbs nobody (the old per-job master stopped observing at
	// job completion; this keeps trace counts aligned with job metrics).
	if len(jm.order) > 0 {
		jm.tr.Emit(obs.Event{Kind: obs.ContainerEvicted, Exec: c.ID})
	}
	jm.dropHost(c.ID)
	jm.recoverEvicted(c.ID)
}

// recoverEvicted implements §3.2.5 task-level recovery for a departed
// transient node, whether the departure was announced (eviction callback)
// or detector-declared: only uncommitted tasks scheduled on it relaunch;
// parent stages are never recomputed.
func (jm *JobManager) recoverEvicted(id string) {
	for _, jid := range jm.order {
		j := jm.jobs[jid]
		j.met.Evictions.Add(1)
		for _, s := range j.stages {
			if s.status != sRunning && s.status != sStartingReceivers {
				continue
			}
			for fi, fr := range s.frags {
				for ti, t := range fr.tasks {
					if t.exec == id && t.state != tWaiting && t.state != tCommitted {
						jm.requeue(j, s, fi, ti, t)
						j.tr.Emit(obs.Event{Kind: obs.TaskRelaunched, Stage: s.ps.ID,
							Frag: fi, Task: ti, Attempt: t.attempt, Exec: id})
					}
				}
			}
		}
	}
}

func (jm *JobManager) requeue(j *jobRun, s *stageRun, fi, ti int, t *taskRun) {
	t.state = tWaiting
	t.exec = ""
	t.attempt++
	j.met.RelaunchedTasks.Add(1)
	// The runnable bit tracks tWaiting ∧ sRunning; a task requeued in a
	// completed or resetting stage stays invisible to the scheduler,
	// exactly like the legacy scanner's status check.
	if s.status == sRunning {
		j.runnable.set(s.denseIdx(fi, ti))
	}
}

// onFailed implements §3.2.6 for every admitted job: identify stages
// whose intermediate results were lost with the reserved container,
// pause dependents, and recompute in topological order (via the normal
// pending-stage scheduling).
func (jm *JobManager) onFailed(c *cluster.Container) {
	if jm.hosts[c.ID] == nil {
		return // detector already declared and recovered this node
	}
	if len(jm.order) > 0 {
		jm.tr.Emit(obs.Event{Kind: obs.ContainerFailed, Exec: c.ID})
	}
	jm.dropHost(c.ID)
	jm.recoverFailed(c.ID)
}

// recoverFailed implements §3.2.6 reserved-failure recovery for a
// departed reserved node, announced or detector-declared: stages whose
// intermediate results were lost with it restart, in topological order
// via the normal pending-stage scheduling.
func (jm *JobManager) recoverFailed(id string) {
	for _, jid := range jm.order {
		j := jm.jobs[jid]
		lost := make(map[int]bool)
		for _, s := range j.stages {
			if s.status == sDone && slices.Contains(s.outputExecs, id) {
				lost[s.ps.ID] = true
			}
		}
		for _, s := range j.stages {
			restart := lost[s.ps.ID]
			if s.status == sRunning || s.status == sStartingReceivers {
				if slices.Contains(s.recvExecs, id) {
					restart = true
				}
				for _, pid := range s.ps.Parents {
					if lost[pid] {
						restart = true
					}
				}
			}
			if restart {
				jm.resetStage(j, s)
			}
		}
	}
}

// onDetectorTick runs one detector sweep and applies its transitions:
// counters and trace events for suspicion churn, full recovery for dead
// declarations.
func (jm *JobManager) onDetectorTick() {
	if jm.fd == nil {
		return
	}
	alive := func(id string) bool { return jm.hosts[id] != nil }
	for _, tr := range jm.fd.tick(time.Now(), alive) {
		switch tr.Kind {
		case fdMissed:
			jm.met.Counter(metrics.NameHeartbeatsMissed).Add(1)
			jm.tr.Emit(obs.Event{Kind: obs.HeartbeatMissed, Exec: tr.ID})
		case fdSuspect:
			jm.met.Counter(metrics.NameSuspicionsRaised).Add(1)
			jm.tr.Emit(obs.Event{Kind: obs.SuspicionRaised, Exec: tr.ID})
		case fdCleared:
			jm.met.Counter(metrics.NameSuspicionsCleared).Add(1)
			jm.tr.Emit(obs.Event{Kind: obs.SuspicionCleared, Exec: tr.ID})
		case fdDead:
			jm.onDeclaredDead(tr.ID, tr.Cause)
		}
	}
}

// onDeclaredDead is the detector-triggered analogue of the cluster's
// eviction/failure callbacks: quarantine the node (removing it from the
// network unblocks anything wedged on its links, and a replacement is
// allocated), then drive the same recovery path an announcement would
// have — task relaunch for transients, topological stage recomputation
// for reserved nodes.
func (jm *JobManager) onDeclaredDead(id, cause string) {
	if jm.hosts[id] == nil {
		jm.fd.forget(id) // raced an announced departure; nothing to recover
		return
	}
	kind := jm.kinds[id]
	jm.met.Counter(metrics.NameNodesDeclaredDead).Add(1)
	jm.tr.Emit(obs.Event{Kind: obs.NodeDeclaredDead, Exec: id,
		Note: fmt.Sprintf("%s %s", kind, cause)})
	jm.cl.Quarantine(id, true)
	jm.dropHost(id)
	if kind == cluster.Reserved {
		jm.recoverFailed(id)
	} else {
		jm.recoverEvicted(id)
	}
}

// resetStage returns a stage to pending so scheduling recomputes it under
// a fresh generation. Receivers still alive are canceled; in-flight tasks
// keep running but their events carry a stale generation and are dropped.
func (jm *JobManager) resetStage(j *jobRun, s *stageRun) {
	for idx, e := range s.recvExecs {
		if ex := j.execs[e]; ex != nil {
			ex.CancelReceiver(s.ps.ID, s.gen, idx)
		}
		if !s.recvDone[idx] {
			jm.trackReceivers(j, -1)
		}
	}
	if s.status == sRunning {
		j.unmarkRunnable(s)
	}
	if s.status == sDone {
		// Children counted this stage as a finished parent; undo that
		// before it re-enters sPending.
		jm.markStageUndone(j, s)
	}
	s.status = sPending
	s.restarts++
	s.recvExecs = nil
	s.recvReady = nil
	s.nReady = 0
	s.recvDone = nil
	s.nDone = 0
	s.frags = nil
	s.inputLocs = nil
	s.outputExecs = nil
	s.results = nil
	s.nResults = 0
	s.outChunks = nil
	jm.recomputeReadiness(j, s)
	if max := j.cfg.maxStageRestarts(); s.restarts > max {
		jm.abort(j, fmt.Errorf("runtime: stage %d restarted more than %d times", s.ps.ID, max))
	}
}

// stage lookups with generation validation.
func (jm *JobManager) stageAt(j *jobRun, id, gen int) *stageRun {
	if id < 0 || id >= len(j.stages) {
		return nil
	}
	s := j.stages[id]
	if s.gen != gen {
		return nil
	}
	return s
}

func (jm *JobManager) taskAt(j *jobRun, ref taskRef) (*stageRun, *taskRun) {
	s := jm.stageAt(j, ref.Stage, ref.Gen)
	if s == nil || ref.Frag >= len(s.frags) {
		return nil, nil
	}
	fr := s.frags[ref.Frag]
	if ref.Index >= len(fr.tasks) {
		return nil, nil
	}
	t := fr.tasks[ref.Index]
	if t.attempt != ref.Attempt {
		return nil, nil
	}
	return s, t
}

func (jm *JobManager) freeSlot(ref taskRef) {
	if exec, ok := jm.assignments[ref]; ok {
		delete(jm.assignments, ref)
		jm.creditSlot(exec)
	}
}

func (jm *JobManager) onReceiverReady(j *jobRun, e evReceiverReady) {
	s := jm.stageAt(j, e.Stage, e.Gen)
	if s == nil || s.status != sStartingReceivers || s.recvReady[e.Index] {
		return
	}
	s.recvReady[e.Index] = true
	s.nReady++
	j.tr.Emit(obs.Event{Kind: obs.ReceiverReady, Stage: s.ps.ID, Frag: obs.ReservedFrag,
		Task: e.Index, Exec: s.recvExecs[e.Index]})
	if s.nReady == len(s.recvExecs) {
		s.status = sRunning
		// Every fragment task is still tWaiting here (only sRunning
		// stages launch tasks), so the whole stage becomes runnable.
		j.markRunnable(s)
		// Tasks whose output is already in the commit store commit
		// without launching (commitplane.go).
		jm.applyTaskSkips(j, s)
	}
}

func (jm *JobManager) onReceiverFailed(j *jobRun, e evReceiverFailed) {
	if e.Fatal {
		jm.abort(j, fmt.Errorf("runtime: reserved task %d/%d failed: %w", e.Stage, e.Index, e.Err))
		return
	}
	s := jm.stageAt(j, e.Stage, e.Gen)
	if s == nil || s.status == sDone {
		return
	}
	j.tr.Emit(obs.Event{Kind: obs.TaskFailed, Stage: s.ps.ID, Frag: obs.ReservedFrag,
		Task: e.Index, Note: e.Err.Error()})
	jm.resetStage(j, s)
}

func (jm *JobManager) onTaskComputed(j *jobRun, e evTaskComputed) {
	jm.freeSlot(e.ref)
	for _, key := range e.Cached {
		set := j.cacheIndex[key]
		if set == nil {
			set = make(map[string]bool)
			j.cacheIndex[key] = set
		}
		set[e.Exec] = true
	}
	s, t := jm.taskAt(j, e.ref)
	if t == nil || t.state != tRunning {
		return
	}
	t.state = tComputed
	if !t.started.IsZero() {
		j.histCompute.ObserveDuration(time.Since(t.started))
	}
	j.tr.Emit(obs.Event{Kind: obs.TaskFinished, Stage: s.ps.ID, Frag: e.ref.Frag,
		Task: e.ref.Index, Attempt: e.ref.Attempt, Exec: e.Exec})
}

func (jm *JobManager) onOutputCommitted(j *jobRun, e evOutputCommitted) {
	s, t := jm.taskAt(j, e.ref)
	if s == nil || t == nil || t.state == tCommitted || t.state == tWaiting {
		return
	}
	t.state = tCommitted
	if !t.started.IsZero() {
		j.histCommit.ObserveDuration(time.Since(t.started))
	}
	fr := s.frags[e.ref.Frag]
	fr.nCommitted++
	j.tr.Emit(obs.Event{Kind: obs.PushCommitted, Stage: s.ps.ID, Frag: e.ref.Frag,
		Task: e.ref.Index, Attempt: e.ref.Attempt, Exec: t.exec})
	// Relay the commit to every receiver of the stage (§3.2.5). The
	// chaos hook may delay or duplicate individual relays; receivers'
	// attempt tracking must make duplicates harmless and delays at worst
	// slow (stale generations are dropped on arrival).
	for idx, exID := range s.recvExecs {
		ex := j.execs[exID]
		if ex == nil {
			continue
		}
		msg := msgCommit{Frag: e.ref.Frag, Index: e.ref.Index, Attempt: e.ref.Attempt, Exec: t.exec}
		stage, gen := s.ps.ID, s.gen
		var delay time.Duration
		dups := 0
		if j.cfg.Chaos != nil {
			delay, dups = j.cfg.Chaos.CommitRelay(j.id, stage, e.ref.Frag, e.ref.Index, e.ref.Attempt, idx)
		}
		send := func() {
			for i := 0; i <= dups; i++ {
				ex.Commit(stage, gen, idx, msg)
			}
		}
		if delay > 0 {
			time.AfterFunc(delay, send)
		} else {
			send()
		}
	}
}

func (jm *JobManager) onTaskFailed(j *jobRun, e evTaskFailed) {
	jm.freeSlot(e.ref)
	if e.Fatal {
		jm.abort(j, fmt.Errorf("runtime: task %v failed: %w", e.ref, e.Err))
		return
	}
	s, t := jm.taskAt(j, e.ref)
	if s == nil || t == nil || t.state == tWaiting || t.state == tCommitted {
		return
	}
	t.fails++
	if max := j.cfg.maxTaskFailures(); t.fails > max {
		jm.abort(j, fmt.Errorf("runtime: task %v failed %d times, last: %w", e.ref, t.fails, e.Err))
		return
	}
	j.tr.Emit(obs.Event{Kind: obs.TaskFailed, Stage: s.ps.ID, Frag: e.ref.Frag,
		Task: e.ref.Index, Attempt: e.ref.Attempt, Exec: t.exec, Note: e.Err.Error()})
	jm.requeue(j, s, e.ref.Frag, e.ref.Index, t)
	j.tr.Emit(obs.Event{Kind: obs.TaskRelaunched, Stage: s.ps.ID, Frag: e.ref.Frag,
		Task: e.ref.Index, Attempt: t.attempt})
}

func (jm *JobManager) onPullFailed(j *jobRun, e evPullFailed) {
	s, t := jm.taskAt(j, e.ref)
	if s == nil || t == nil {
		return
	}
	if t.state == tCommitted {
		s.frags[e.ref.Frag].nCommitted--
	}
	// A failed CAS pull on a skipped task revokes the hit: relaunch it
	// for real rather than re-skipping into the same failure.
	revokeTaskSkip(s, e.ref.Frag, e.ref.Index)
	jm.requeue(j, s, e.ref.Frag, e.ref.Index, t)
	j.tr.Emit(obs.Event{Kind: obs.TaskRelaunched, Stage: s.ps.ID, Frag: e.ref.Frag,
		Task: e.ref.Index, Attempt: t.attempt, Note: "pull_failed"})
}

func (jm *JobManager) onReservedTaskDone(j *jobRun, e evReservedTaskDone) {
	s := jm.stageAt(j, e.Stage, e.Gen)
	if s == nil || s.status != sRunning || s.recvDone[e.Index] {
		return
	}
	s.recvDone[e.Index] = true
	s.nDone++
	if s.outChunks != nil && e.Chunk != "" {
		s.outChunks[e.Index] = e.Chunk
	}
	jm.trackReceivers(j, -1)
	j.tr.Emit(obs.Event{Kind: obs.TaskFinished, Stage: s.ps.ID, Frag: obs.ReservedFrag,
		Task: e.Index, Exec: s.recvExecs[e.Index], Bytes: e.Bytes})
	if s.nDone == len(s.recvExecs) {
		s.status = sDone
		j.unmarkRunnable(s)
		jm.markStageDone(j, s)
		s.outputExecs = append([]string(nil), s.recvExecs...)
		jm.commitStage(j, s)
		j.tr.Emit(obs.Event{Kind: obs.StageComplete, Stage: s.ps.ID})
		jm.replicateProgress(j)
		if debugStages {
			log.Printf("pado: job %d stage %d (%s) done at %v", j.id, s.ps.ID,
				j.plan.Graph.Vertex(s.ps.Root).Name, time.Since(j.t0).Round(time.Millisecond))
		}
		jm.checkAllDone(j)
	}
}

func (jm *JobManager) onResult(j *jobRun, e evResult) {
	s := jm.stageAt(j, e.Stage, e.Gen)
	if s == nil || s.status != sRunning || s.ps.RootReserved {
		return
	}
	fr := s.frags[s.ps.RootFragment]
	t := fr.tasks[e.Index]
	if t.attempt != e.Attempt || t.state == tCommitted {
		return
	}
	t.state = tCommitted
	s.results[e.Index] = e.Payload
	s.nResults++
	j.tr.Emit(obs.Event{Kind: obs.PushCommitted, Stage: s.ps.ID, Frag: s.ps.RootFragment,
		Task: e.Index, Attempt: e.Attempt, Exec: t.exec, Bytes: int64(len(e.Payload)),
		Note: "result"})
	if s.nResults == len(fr.tasks) {
		s.status = sDone
		j.unmarkRunnable(s)
		jm.markStageDone(j, s)
		j.tr.Emit(obs.Event{Kind: obs.StageComplete, Stage: s.ps.ID})
		jm.replicateProgress(j)
		jm.checkAllDone(j)
	}
}

func (jm *JobManager) checkAllDone(j *jobRun) {
	for _, s := range j.stages {
		if s.status != sDone {
			return
		}
	}
	j.finished = true
}

// scheduleAll starts ready pending stages (per job, in admission order)
// and then assigns waiting tasks across jobs with the weighted-fair
// scheduler. Unlike the pre-refactor full rescan, both passes walk
// incrementally maintained sets (sched.go) — readyStages instead of a
// status scan with per-stage parent checks, runnable bitsets instead of
// per-round queue rebuilds — so an event that changed nothing costs
// O(jobs), not O(total tasks).
func (jm *JobManager) scheduleAll() {
	jm.cSchedRounds.Add(1)
	for _, id := range jm.order {
		j := jm.jobs[id]
		if j.finished {
			continue
		}
		for sid := j.readyStages.next(0); sid >= 0; sid = j.readyStages.next(sid + 1) {
			if jm.startStage(j, j.stages[sid]) {
				j.readyStages.clear(sid)
			}
		}
	}
	jm.assignTasks()
}

// startStage launches one ready stage's generation. It reports false
// when the stage must keep waiting (a reserved-root stage with no
// reserved container yet), in which case it stays in readyStages and is
// retried on later passes.
func (jm *JobManager) startStage(j *jobRun, s *stageRun) bool {
	ps := s.ps
	if ps.RootReserved && len(jm.reservedOrder) == 0 {
		return false // wait for a reserved container
	}
	s.gen++
	note := ""
	if s.restarts > 0 {
		note = fmt.Sprintf("restart %d", s.restarts)
	}
	j.tr.Emit(obs.Event{Kind: obs.StageScheduled, Stage: ps.ID, Attempt: s.restarts, Note: note})
	s.frags = make([]*fragRun, len(ps.Fragments))
	total := 0
	for i, f := range ps.Fragments {
		fr := &fragRun{tasks: make([]*taskRun, f.Parallelism)}
		for j := range fr.tasks {
			fr.tasks[j] = &taskRun{state: tWaiting}
		}
		s.frags[i] = fr
		total += f.Parallelism
	}

	if ps.RootReserved {
		r := ps.RootParallelism
		s.recvExecs = make([]string, r)
		s.recvReady = make([]bool, r)
		s.recvDone = make([]bool, r)
		s.nReady, s.nDone = 0, 0
		if jm.commits != nil && ps.CacheKey != "" {
			s.outChunks = make([]string, r)
		}
		for i := 0; i < r; i++ {
			s.recvExecs[i] = jm.reservedOrder[jm.rrRecv%len(jm.reservedOrder)]
			jm.rrRecv++
		}
		total += r
		expected := 0
		for _, f := range ps.Fragments {
			expected += f.Parallelism
		}
		// Input locations are cached for the generation's lifetime (see
		// the stageRun.inputLocs invariant) and shared by reference into
		// every receiver and task spec.
		s.inputLocs = jm.inputLocsFor(j, ps)
		// Reserved tasks are scheduled and set up first so they can
		// receive pushed outputs (§3.2.3).
		s.status = sStartingReceivers
		jm.trackReceivers(j, r)
		for i := 0; i < r; i++ {
			j.tr.Emit(obs.Event{Kind: obs.TaskLaunched, Stage: ps.ID, Frag: obs.ReservedFrag,
				Task: i, Exec: s.recvExecs[i]})
			j.execs[s.recvExecs[i]].StartReceiver(recvSpec{
				Stage: ps.ID, Gen: s.gen, Index: i,
				Expected:  expected,
				InputLocs: s.inputLocs,
				PullMode:  j.cfg.PullBoundaries,
				Peers:     s.recvExecs,
			})
		}
	} else {
		s.results = make([][]byte, ps.Fragments[ps.RootFragment].Parallelism)
		s.nResults = 0
		s.inputLocs = jm.inputLocsFor(j, ps)
		s.status = sRunning
		j.markRunnable(s)
	}

	if s.gen == 1 {
		j.met.OriginalTasks.Add(int64(total))
	} else {
		j.met.RelaunchedTasks.Add(int64(total))
	}
	return true
}

func (jm *JobManager) inputLocsFor(j *jobRun, ps *core.PhysStage) map[int]stageLoc {
	locs := make(map[int]stageLoc)
	for _, si := range ps.Inputs {
		if _, ok := locs[si.FromStage]; ok {
			continue
		}
		p := j.stages[si.FromStage]
		// A skipped parent has no outputExecs; its partitions resolve to
		// commit-store chunks instead (skipChunks is immutable, shared by
		// reference).
		locs[si.FromStage] = stageLoc{Gen: p.gen,
			Execs:  append([]string(nil), p.outputExecs...),
			Chunks: p.skipChunks}
	}
	return locs
}

// maxDeficitRounds caps how much unused scheduling credit a job may
// bank, in multiples of its weight, so a job that was slot-starved for a
// while cannot later monopolize the fleet in one burst.
const maxDeficitRounds = 4

// assignTasks hands waiting fragment tasks to executors. With a single
// runnable job it degenerates to the classic greedy pass:
// cache-preferred placement first, then round-robin over free slots
// (§3.2.3). With several admitted jobs it runs deficit-weighted
// round-robin across their task queues: each visit credits a job's
// deficit by its weight and launches one task per whole credit, so slots
// divide proportionally to weight and a large job cannot starve a small
// one. Unspent credit (no free slot, or weight < 1) carries to the next
// round, capped at weight*maxDeficitRounds.
//
// The queues are the per-job runnable bitsets: iteration follows dense
// (stage, fragment, task) order, identical to the legacy per-round
// rescan, and a job is exhausted when its cursor passes its last set
// bit. qScratch reuses one backing array for the round's queue list so
// the steady state allocates nothing.
func (jm *JobManager) assignTasks() {
	pool := jm.transientOrder
	kind := cluster.Transient
	if len(pool) == 0 && jm.cl.TransientConfigured() == 0 {
		pool = jm.reservedOrder
		kind = cluster.Reserved
	}
	if len(pool) == 0 {
		return
	}

	queues := jm.qScratch[:0]
	for _, id := range jm.order {
		j := jm.jobs[id]
		if j.finished || j.runnable.empty() {
			continue
		}
		j.qNext = 0
		queues = append(queues, j)
	}
	jm.qScratch = queues
	defer func() {
		for i := range queues {
			queues[i] = nil // drop jobRun refs so finished jobs are collectable
		}
	}()
	if len(queues) == 0 {
		return
	}

	if len(queues) == 1 {
		// Single runnable job: no fairness to arbitrate.
		j := queues[0]
		j.deficit = 0
		for di := j.runnable.next(j.qNext); di >= 0; di = j.runnable.next(j.qNext) {
			if !jm.launchDense(j, di, pool, kind) {
				return // no free slots anywhere
			}
			j.qNext = di + 1
		}
		return
	}

	idle := 0
	for idle < len(queues) {
		j := queues[jm.rrJob%len(queues)]
		jm.rrJob++
		di := j.runnable.next(j.qNext)
		if di < 0 {
			j.deficit = 0
			idle++
			continue
		}
		j.deficit += j.weight
		if limit := j.weight * maxDeficitRounds; j.deficit > limit {
			j.deficit = limit
		}
		progressed := false
		for j.deficit >= 1 && di >= 0 {
			if !jm.launchDense(j, di, pool, kind) {
				return // no free slots anywhere; credit persists
			}
			j.deficit--
			j.qNext = di + 1
			progressed = true
			di = j.runnable.next(j.qNext)
		}
		if progressed {
			idle = 0
		}
	}
}

// launchDense launches the waiting task at dense index di if a slot is
// free; it reports false only when the whole fleet is out of slots.
func (jm *JobManager) launchDense(j *jobRun, di int, pool []string, kind cluster.Kind) bool {
	jm.cTasksScanned.Add(1)
	s, fi, ti := j.locate(di)
	t := s.frags[fi].tasks[ti]
	exec := jm.pickExecutor(j, pool, kind, s.ps, s.ps.Fragments[fi], ti)
	if exec == "" {
		return false
	}
	j.runnable.clear(di)
	t.state = tRunning
	t.exec = exec
	t.started = time.Now()
	jm.slotsFree[exec]--
	jm.freeSlots[kind]--
	j.tr.Emit(obs.Event{Kind: obs.TaskLaunched, Stage: s.ps.ID, Frag: fi,
		Task: ti, Attempt: t.attempt, Exec: exec})
	ref := taskRef{Job: j.id, Stage: s.ps.ID, Gen: s.gen, Frag: fi, Index: ti, Attempt: t.attempt}
	jm.assignments[ref] = exec
	taskKey := ""
	if jm.commits != nil && s.ps.TaskKeys != nil && fi < len(s.ps.TaskKeys) && s.ps.TaskKeys[fi] != nil {
		taskKey = s.ps.TaskKeys[fi][ti]
	}
	j.execs[exec].Launch(taskSpec{
		Stage: s.ps.ID, Gen: s.gen, Frag: fi, Index: ti, Attempt: t.attempt,
		InputLocs: s.inputLocs,
		Receivers: s.recvExecs,
		Terminal:  !s.ps.RootReserved,
		TaskKey:   taskKey,
	})
	return true
}

// pickExecutor prefers an executor that has any of the task's cacheable
// inputs cached (§3.2.7 cache-aware scheduling; ties broken by lowest
// executor id so placement is deterministic), then falls back to
// round-robin over executors with free slots. A saturated pool is
// detected from the per-kind free-slot index without scanning it; the
// round-robin cursor still advances by the scan length so launch
// positions match the legacy full scan exactly.
func (jm *JobManager) pickExecutor(j *jobRun, pool []string, kind cluster.Kind, ps *core.PhysStage, frag *core.Fragment, taskIdx int) string {
	if !j.cfg.DisableCache {
		for _, key := range taskCacheKeys(j.plan, ps, frag, taskIdx) {
			best := ""
			for exID := range j.cacheIndex[key] {
				if jm.slotsFree[exID] > 0 && jm.kinds[exID] == kind && (best == "" || exID < best) {
					best = exID
				}
			}
			if best != "" {
				return best
			}
		}
	}
	if jm.freeSlots[kind] == 0 {
		jm.cSlotIndexHits.Add(1)
		jm.rrTask += len(pool)
		return ""
	}
	for i := 0; i < len(pool); i++ {
		exID := pool[jm.rrTask%len(pool)]
		jm.rrTask++
		if jm.slotsFree[exID] > 0 {
			return exID
		}
	}
	return ""
}

// taskCacheKeys lists the cacheable inputs of one fragment task.
func taskCacheKeys(plan *core.Plan, ps *core.PhysStage, frag *core.Fragment, taskIdx int) []cacheKey {
	var keys []cacheKey
	for _, opID := range frag.Ops {
		if rd, ok := plan.Graph.Vertex(opID).Op.(*dataflow.ReadOp); ok && rd.Cached {
			keys = append(keys, cacheKey{Vertex: opID, Partition: taskIdx})
		}
		for _, si := range ps.InputsTo(opID) {
			if !si.Cached {
				continue
			}
			switch si.Dep {
			case dag.OneToOne:
				keys = append(keys, cacheKey{Vertex: si.FromVertex, Partition: taskIdx})
			case dag.OneToMany:
				keys = append(keys, cacheKey{Vertex: si.FromVertex, Partition: -1})
			}
		}
	}
	return keys
}
