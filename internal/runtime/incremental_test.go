package runtime

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"time"

	"pado/internal/chaos"
	"pado/internal/data"
	"pado/internal/dataflow"
	"pado/internal/metrics"
	"pado/internal/obs"
	"pado/internal/storage"
	"pado/internal/trace"
)

// buildFPWordCount is buildWordCount with a fingerprinted source, which is
// what makes stages content-addressable (core/fingerprint.go): the first
// dirtyParts partitions fold salt into both their records and their
// fingerprints, so reruns with a different salt see exactly that slice of
// the input changed. postName, when non-empty, appends a renamed follow-up
// stage (scale ×2 then re-sum) so tests can invalidate the consumer stage
// between runs while the producer stays cached.
func buildFPWordCount(parts, recsPerPart, dirtyParts int, salt int64, postName string) (*dataflow.Pipeline, map[string]int64) {
	seed := func(p int) int64 {
		s := int64(p) + 1
		if p < dirtyParts {
			s += 1000 + salt
		}
		return s
	}
	src := &dataflow.FuncSource{
		Partitions: parts,
		Gen: func(p int) []data.Record {
			rng := rand.New(rand.NewSource(seed(p)))
			recs := make([]data.Record, recsPerPart)
			for i := range recs {
				recs[i] = data.KV(fmt.Sprintf("w%03d", rng.Intn(100)), int64(rng.Intn(10)))
			}
			return recs
		},
		Fingerprint: func(p int) string { return fmt.Sprintf("fpwc/%d/%d", p, seed(p)) },
	}
	expect := make(map[string]int64)
	for p := 0; p < parts; p++ {
		for _, r := range src.Gen(p) {
			expect[r.Key.(string)] += r.Value.(int64)
		}
	}

	kv := data.KVCoder{K: data.StringCoder, V: data.Int64Coder}
	p := dataflow.NewPipeline()
	c := p.Read("read-views", src, kv)
	mapped := c.ParDo("map", dataflow.MapFunc(func(r data.Record) data.Record { return r }), kv)
	summed := mapped.CombinePerKey("sum", dataflow.SumInt64Fn{}, kv,
		dataflow.WithAccumulatorCoder(kv))
	if postName != "" {
		doubled := summed.ParDo(postName, dataflow.MapFunc(func(r data.Record) data.Record {
			return data.KV(r.Key, r.Value.(int64)*2)
		}), kv)
		doubled.CombinePerKey("resum", dataflow.SumInt64Fn{}, kv,
			dataflow.WithAccumulatorCoder(kv))
		for k, v := range expect {
			expect[k] = v * 2
		}
	}
	return p, expect
}

// sortedOutputs canonicalizes a result's single-output record set for
// cross-run comparison.
func sortedOutputs(t *testing.T, res *Result) []data.Record {
	t.Helper()
	var recs []data.Record
	for _, out := range res.Outputs {
		recs = out
	}
	sorted := append([]data.Record(nil), recs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key.(string) < sorted[j].Key.(string) })
	return sorted
}

func runIncremental(t *testing.T, pipe *dataflow.Pipeline, store *storage.CommitStore,
	rate trace.Rate, tracer *obs.Tracer) *Result {
	t.Helper()
	cl := newTestCluster(t, 4, 2, rate)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	res, err := Run(ctx, cl, pipe.Graph(), Config{
		Commits: store,
		// Partial aggregation merges nondeterministic task covers, which
		// is content-unstable; raw boundaries are the cacheable path.
		DisablePartialAggregation: true,
		Tracer:                    tracer,
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.Metrics.TimedOut {
		t.Fatal("timed out")
	}
	return res
}

// TestIncrementalUnchangedRerunSkipsEverything reruns an identical
// pipeline against the same commit store: the whole job must be served
// from commits — zero tasks launched, byte-identical output partitions —
// with the skip visible in the stage/task counters.
func TestIncrementalUnchangedRerunSkipsEverything(t *testing.T) {
	store := storage.NewCommitStore()
	pipe1, expect := buildFPWordCount(8, 300, 0, 0, "")
	res1 := runIncremental(t, pipe1, store, trace.RateNone, obs.New())
	checkWordCount(t, res1, expect)
	launched1 := res1.Metrics.Named["obs.task_launched"]
	if launched1 == 0 {
		t.Fatal("first run launched no tasks")
	}
	if res1.Metrics.Named[metrics.NameCommitWrites] == 0 {
		t.Error("first run wrote no commits")
	}

	pipe2, _ := buildFPWordCount(8, 300, 0, 0, "")
	res2 := runIncremental(t, pipe2, store, trace.RateNone, obs.New())
	checkWordCount(t, res2, expect)
	m2 := res2.Metrics.Named
	if n := m2["obs.task_launched"]; n != 0 {
		t.Errorf("unchanged rerun launched %d tasks, want 0", n)
	}
	if m2[metrics.NameStagesSkipped] == 0 {
		t.Error("unchanged rerun skipped no stages")
	}
	if m2[metrics.NameCommitHits] == 0 {
		t.Error("unchanged rerun recorded no commit hits")
	}
	if !reflect.DeepEqual(sortedOutputs(t, res1), sortedOutputs(t, res2)) {
		t.Error("rerun output differs from original")
	}
}

// TestIncrementalDeltaRerunLaunchesOnlyChangedCone dirties 1 of 128 input
// partitions between runs. The stage-level key misses, but every clean
// task is served from its task commit: the rerun launches only the dirty
// source task plus the downstream receivers — under 10% of the first
// run's tasks — and still produces the updated result exactly.
func TestIncrementalDeltaRerunLaunchesOnlyChangedCone(t *testing.T) {
	const parts = 128
	store := storage.NewCommitStore()
	pipe1, _ := buildFPWordCount(parts, 60, 0, 0, "")
	res1 := runIncremental(t, pipe1, store, trace.RateNone, obs.New())
	launched1 := res1.Metrics.Named["obs.task_launched"]

	pipe2, expect2 := buildFPWordCount(parts, 60, 1, 7, "")
	res2 := runIncremental(t, pipe2, store, trace.RateNone, obs.New())
	checkWordCount(t, res2, expect2)
	m2 := res2.Metrics.Named
	launched2 := m2["obs.task_launched"]
	if launched2*10 >= launched1 {
		t.Errorf("delta rerun launched %d of %d tasks, want under 10%%", launched2, launched1)
	}
	if n := m2[metrics.NameTasksSkipped]; n != parts-1 {
		t.Errorf("tasks_skipped = %d, want %d", n, parts-1)
	}
	if m2[metrics.NameStagesSkipped] != 0 {
		t.Errorf("stages_skipped = %d on a changed stage, want 0", m2[metrics.NameStagesSkipped])
	}
	if m2[metrics.NameCASBytesServed] == 0 {
		t.Error("no bytes served from the commit store")
	}
}

// TestIncrementalSkippedParentConsumerUnderEviction pins the rerun chaos
// invariants: the producer stage is served from the commit store while
// its renamed consumer recomputes under aggressive evictions, fetching
// the skipped stage's partitions from the CAS. The skipped stage must
// never be scheduled (no parent recompute), and the §3.2.5 exactly-once
// commit invariants must hold throughout the eviction-driven relaunches.
func TestIncrementalSkippedParentConsumerUnderEviction(t *testing.T) {
	store := storage.NewCommitStore()
	pipe1, expect1 := buildFPWordCount(8, 300, 0, 0, "post-v1")
	res1 := runIncremental(t, pipe1, store, trace.RateNone, obs.New())
	checkWordCount(t, res1, expect1)

	tracer := obs.New()
	pipe2, expect2 := buildFPWordCount(8, 300, 0, 0, "post-v2")
	res2 := runIncremental(t, pipe2, store, trace.RateHigh, tracer)
	checkWordCount(t, res2, expect2)

	skipped := -1
	for _, ev := range tracer.Events() {
		if ev.Kind == obs.StageSkipped {
			skipped = ev.Stage
		}
	}
	if skipped < 0 {
		t.Fatal("no stage was skipped on the rerun")
	}
	for _, ev := range tracer.Events() {
		if ev.Kind == obs.StageScheduled && ev.Stage == skipped {
			t.Fatalf("skipped stage %d was scheduled", skipped)
		}
	}
	parents := make(map[int][]int, len(res2.Plan.Stages))
	for _, ps := range res2.Plan.Stages {
		parents[ps.ID] = ps.Parents
	}
	if report := chaos.Check(tracer.Events(), parents); !report.OK() {
		t.Errorf("invariants: %s", report)
	}
}

// TestSectionsCodecRoundTrip pins the CAS chunk payload codec used for
// skipped-task pulls.
func TestSectionsCodecRoundTrip(t *testing.T) {
	secs := []pushSection{
		{Tag: "", Aggregated: false, Payload: []byte("hello")},
		{Tag: "side", Aggregated: true, Payload: nil},
		{Tag: "x", Aggregated: false, Payload: []byte{0, 1, 2, 255}},
	}
	buf, err := encodeSections(secs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodeSections(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(secs) {
		t.Fatalf("got %d sections, want %d", len(got), len(secs))
	}
	for i, s := range secs {
		g := got[i]
		if g.Tag != s.Tag || g.Aggregated != s.Aggregated || string(g.Payload) != string(s.Payload) {
			t.Errorf("section %d: got %+v want %+v", i, g, s)
		}
	}
}
