package runtime

import (
	"bytes"
	"fmt"
	"sync/atomic"

	"pado/internal/data"
	"pado/internal/metrics"
	"pado/internal/obs"
	"pado/internal/simnet"
	"pado/internal/storage"
)

// The commit plane (DESIGN.md §14) turns intermediate data from opaque
// per-run blocks into content-addressed, versioned commits, which is what
// lets a rerun skip the unchanged cone of its pipeline:
//
//   - the manager serves a storage.CommitStore over dedicated simnet
//     nodes, so commit traffic is bandwidth-accounted like any other
//     data-plane transfer and the store survives the cluster (the store
//     object is handed in via Config.Commits and outlives runs);
//   - at submission the master probes the store with the plan's stage
//     cache keys ("stage/<key>") and, where a stage misses, its per-task
//     keys ("task/<key>"); hits are pinned so concurrent deletion cannot
//     invalidate a running job's inputs;
//   - a stage-level hit marks the stage done before it ever schedules:
//     consumers resolve its partitions to CAS chunks instead of executor
//     stores, and nothing downstream can tell the difference;
//   - a task-level hit commits the task without launching it: the master
//     relays commit messages carrying chunk addresses, and receivers pull
//     the staged sections from the CAS instead of accepting pushes;
//   - on the write side, receivers put their finalized partitions as
//     chunks (evReservedTaskDone.Chunk) and the master commits the
//     assembled stage manifest; raw-path senders put their per-receiver
//     section chunks and commit task manifests. All writes are
//     best-effort: a failed put or commit only forfeits future reuse.
//
// Exactly-once survives unchanged: skipped stages never schedule, skipped
// tasks enter tCommitted directly with no executor attached (so eviction
// recovery ignores them), and a failed CAS pull reverts the skip through
// the existing evPullFailed relaunch path.
type commitPlane struct {
	store *storage.CommitStore
	svc   *storage.CommitService
	nodes []string
	// client is the master-side client, routed through the manager's
	// pooled, policy-wrapped transport.
	client *storage.CommitClient
	net    *simnet.Network
}

// casNodeCount is how many dedicated service nodes the plane adds: chunk
// addresses hash across them (CommitClient.nodeFor), so commit traffic is
// not bottlenecked on a single node's simnet bandwidth.
const casNodeCount = 2

// casPlaneSeq disambiguates node ids across managers sharing a network
// (or sequential managers whose nodes were not yet removed).
var casPlaneSeq atomic.Int64

func newCommitPlane(net *simnet.Network, store *storage.CommitStore, pool *connPool) (*commitPlane, error) {
	seq := casPlaneSeq.Add(1)
	nodes := make([]*simnet.Node, 0, casNodeCount)
	ids := make([]string, 0, casNodeCount)
	for i := 0; i < casNodeCount; i++ {
		id := fmt.Sprintf("cas%d-%d", seq, i)
		n, err := net.AddNode(id)
		if err != nil {
			for _, old := range ids {
				net.RemoveNode(old)
			}
			return nil, fmt.Errorf("runtime: commit plane: %w", err)
		}
		nodes = append(nodes, n)
		ids = append(ids, id)
	}
	svc := storage.NewCommitService(store, nodes)
	if err := svc.Start(); err != nil {
		for _, id := range ids {
			net.RemoveNode(id)
		}
		return nil, err
	}
	return &commitPlane{
		store:  store,
		svc:    svc,
		nodes:  ids,
		client: storage.NewCommitClient(pool, ids),
		net:    net,
	}, nil
}

func (cp *commitPlane) close() {
	cp.svc.Close()
	for _, id := range cp.nodes {
		cp.net.RemoveNode(id)
	}
}

// casNodes returns the plane's serving node ids (nil when disabled), for
// wiring executors' commit clients.
func (jm *JobManager) casNodes() []string {
	if jm.commits == nil {
		return nil
	}
	return jm.commits.nodes
}

// casClient returns the master-side commit client (nil when disabled).
func (jm *JobManager) casClient() *storage.CommitClient {
	if jm.commits == nil {
		return nil
	}
	return jm.commits.client
}

// Commit-store key namespaces. Stage commits map partition index to the
// single chunk holding that partition's encoded output; task commits map
// receiver index to the single chunk holding the sections the task pushed
// to that receiver.
func stageCommitKey(cacheKey string) string { return "stage/" + cacheKey }
func taskCommitKey(taskKey string) string   { return "task/" + taskKey }

// singleChunkParts validates the manifest shape this runtime writes: one
// chunk per part. Anything else (a foreign writer, a corrupted commit) is
// treated as a miss rather than trusted.
func singleChunkParts(m *storage.Manifest) bool {
	for _, p := range m.Parts {
		if len(p) != 1 {
			return false
		}
	}
	return true
}

// casProbeFanout bounds how many probe round trips run concurrently at
// submission. The probes are tiny manifest reads, so latency, not
// bandwidth, dominates; running them in parallel keeps the submission
// delay near one round trip instead of one per plan task.
const casProbeFanout = 16

// probeCommits probes the commit store for every cacheable stage of a
// newly built job and applies the resulting skips. It runs on the
// submitter's goroutine after initSched and BEFORE the job is published
// to the event loop, so it may freely mutate scheduling state; the
// network round trips therefore never block the manager loop. Resolves
// run concurrently (the store is safe for concurrent use); the state
// mutation passes stay on this goroutine.
func (jm *JobManager) probeCommits(j *jobRun) {
	cp := jm.commits
	if cp == nil {
		return
	}
	probes := j.met.Counter(metrics.NameCommitProbes)
	hits := j.met.Counter(metrics.NameCommitHits)
	misses := j.met.Counter(metrics.NameCommitMisses)

	var cacheable []*stageRun
	for _, s := range j.stages {
		if s.ps.CacheKey != "" {
			cacheable = append(cacheable, s)
		}
	}
	if len(cacheable) == 0 {
		return
	}
	found := make([]*storage.Manifest, len(cacheable))
	_ = fanout(len(cacheable), casProbeFanout, func(i int) error {
		m, err := cp.client.Resolve(stageCommitKey(cacheable[i].ps.CacheKey), true)
		if err == nil {
			found[i] = m
		}
		return nil
	})
	var missed []*stageRun
	for i, s := range cacheable {
		probes.Add(1)
		m := found[i]
		if m != nil && len(m.Parts) == s.ps.RootParallelism && singleChunkParts(m) {
			hits.Add(1)
			j.pinned = append(j.pinned, m.Key)
			jm.applyStageSkip(j, s, m)
			continue
		}
		if m != nil {
			// Unexpected shape: not usable, and the resolve pinned it.
			_ = cp.client.Unpin(m.Key)
		}
		misses.Add(1)
		missed = append(missed, s)
	}
	jm.probeTaskCommits(j, missed, probes, hits, misses)
}

// taskProbe is one per-task resolve of the submission probe: where the
// key lives in the stage's fragment/task grid, and what came back.
type taskProbe struct {
	s      *stageRun
	fi, ti int
	key    string
	m      *storage.Manifest
}

// probeTaskCommits resolves per-task commits for the stages whose
// stage-level keys missed, recording chunk addresses for applyTaskSkips.
func (jm *JobManager) probeTaskCommits(j *jobRun, stages []*stageRun, probes, hits, misses *metrics.Counter) {
	cp := jm.commits
	var work []taskProbe
	for _, s := range stages {
		for fi, keys := range s.ps.TaskKeys {
			for ti, key := range keys {
				work = append(work, taskProbe{s: s, fi: fi, ti: ti, key: key})
			}
		}
	}
	if len(work) == 0 {
		return
	}
	_ = fanout(len(work), casProbeFanout, func(i int) error {
		m, err := cp.client.Resolve(taskCommitKey(work[i].key), true)
		if err == nil {
			work[i].m = m
		}
		return nil
	})
	for _, w := range work {
		probes.Add(1)
		ps := w.s.ps
		if w.m == nil {
			misses.Add(1)
			continue
		}
		if len(w.m.Parts) != ps.RootParallelism || !singleChunkParts(w.m) {
			_ = cp.client.Unpin(w.m.Key)
			misses.Add(1)
			continue
		}
		chunks := make([]string, len(w.m.Parts))
		for ri, p := range w.m.Parts {
			chunks[ri] = p[0]
		}
		if w.s.taskHits == nil {
			w.s.taskHits = make([][][]string, len(ps.Fragments))
		}
		if w.s.taskHits[w.fi] == nil {
			w.s.taskHits[w.fi] = make([][]string, len(ps.TaskKeys[w.fi]))
		}
		w.s.taskHits[w.fi][w.ti] = chunks
		j.pinned = append(j.pinned, w.m.Key)
		hits.Add(1)
	}
}

// applyStageSkip marks one stage satisfied by a stored commit: it is done
// before it ever schedules, its partitions resolve to CAS chunks, and its
// whole task complement is accounted as avoided compute.
func (jm *JobManager) applyStageSkip(j *jobRun, s *stageRun, m *storage.Manifest) {
	ps := s.ps
	s.gen = 1
	s.status = sDone
	s.skipChunks = make([]string, len(m.Parts))
	for i, p := range m.Parts {
		s.skipChunks[i] = p[0]
	}
	// The stage may sit in readyStages (no parents); it must never start.
	j.readyStages.clear(ps.ID)
	jm.markStageDone(j, s)
	avoided := ps.RootParallelism
	for _, f := range ps.Fragments {
		avoided += f.Parallelism
	}
	j.met.Counter(metrics.NameStagesSkipped).Add(1)
	j.met.Counter(metrics.NameComputeAvoidedTasks).Add(int64(avoided))
	j.tr.Emit(obs.Event{Kind: obs.StageSkipped, Stage: ps.ID,
		Note: fmt.Sprintf("%d parts from commit store", len(m.Parts))})
	j.tr.Emit(obs.Event{Kind: obs.StageComplete, Stage: ps.ID})
	jm.checkAllDone(j)
}

// applyTaskSkips commits every probed task hit of a stage that just
// entered sRunning: the task moves straight to tCommitted with no
// executor attached, and each receiver is relayed a commit message whose
// chunk address it pulls from the CAS in place of the push. Runs every
// generation (content addresses stay valid across restarts); tasks whose
// hit was revoked by a failed pull (onPullFailed clears the entry) run
// for real.
func (jm *JobManager) applyTaskSkips(j *jobRun, s *stageRun) {
	if jm.commits == nil || s.taskHits == nil {
		return
	}
	for fi, fr := range s.frags {
		if fi >= len(s.taskHits) || s.taskHits[fi] == nil {
			continue
		}
		for ti, chunks := range s.taskHits[fi] {
			if chunks == nil || ti >= len(fr.tasks) {
				continue
			}
			t := fr.tasks[ti]
			if t.state != tWaiting || t.attempt != 0 {
				continue
			}
			j.runnable.clear(s.denseIdx(fi, ti))
			t.state = tCommitted
			fr.nCommitted++
			j.met.Counter(metrics.NameTasksSkipped).Add(1)
			j.met.Counter(metrics.NameComputeAvoidedTasks).Add(1)
			j.tr.Emit(obs.Event{Kind: obs.TaskSkipped, Stage: s.ps.ID, Frag: fi, Task: ti})
			for idx, exID := range s.recvExecs {
				if ex := j.execs[exID]; ex != nil && idx < len(chunks) {
					ex.Commit(s.ps.ID, s.gen, idx, msgCommit{
						Frag: fi, Index: ti, Attempt: 0, Exec: "", Chunk: chunks[idx],
					})
				}
			}
		}
	}
}

// revokeTaskSkip forgets one task's probed hit after its CAS pull failed,
// so stage restarts relaunch it for real instead of re-skipping.
func revokeTaskSkip(s *stageRun, fi, ti int) {
	if s.taskHits == nil || fi >= len(s.taskHits) || s.taskHits[fi] == nil || ti >= len(s.taskHits[fi]) {
		return
	}
	s.taskHits[fi][ti] = nil
}

// commitStage assembles the per-partition chunk list gathered from
// evReservedTaskDone into a stage manifest and commits it off the event
// loop. Best-effort: a failure only forfeits reuse on the next run.
func (jm *JobManager) commitStage(j *jobRun, s *stageRun) {
	if jm.commits == nil || s.ps.CacheKey == "" || s.outChunks == nil {
		return
	}
	for _, c := range s.outChunks {
		if c == "" {
			return // some partition's chunk put failed; nothing to commit
		}
	}
	m := &storage.Manifest{Key: stageCommitKey(s.ps.CacheKey), Parts: make([][]string, len(s.outChunks))}
	for i, c := range s.outChunks {
		m.Parts[i] = []string{c}
	}
	client := jm.commits.client
	writes := j.met.Counter(metrics.NameCommitWrites)
	j.casWG.Add(1)
	go func() {
		defer j.casWG.Done()
		if err := client.Commit(m); err == nil {
			writes.Add(1)
		}
	}()
}

// unpinCommits releases every commit the submission probe pinned. Errors
// are ignored: pins only guard explicit deletion, and a dead manager
// cannot release them anyway.
func (jm *JobManager) unpinCommits(j *jobRun) {
	client := jm.casClient()
	if client == nil {
		return
	}
	for _, key := range j.pinned {
		_ = client.Unpin(key)
	}
}

// commitTaskChunks writes a finished raw-path task's per-receiver section
// payloads as CAS chunks and commits the task manifest. Only raw sections
// are cacheable: aggregation buffers merge nondeterministic task covers,
// so their payloads are not content-stable across runs. Best-effort.
func (ex *Executor) commitTaskChunks(spec taskSpec, frames []*pushFrame) {
	for _, f := range frames {
		for _, s := range f.Sections {
			if s.Aggregated {
				return
			}
		}
	}
	parts := make([][]string, len(frames))
	written := ex.met.Counter(metrics.NameCASBytesWritten)
	// One put per receiver section, issued concurrently: the puts are
	// independent and the manifest below is only committed if every one
	// landed, so a partial write can never be resolved by a later run.
	err := fanout(len(frames), len(frames), func(i int) error {
		payload, err := encodeSections(frames[i].Sections)
		if err != nil {
			return err
		}
		h, err := ex.cas.PutChunk(payload)
		if err != nil {
			return err
		}
		written.Add(int64(len(payload)))
		parts[i] = []string{h}
		return nil
	})
	if err != nil {
		return
	}
	if err := ex.cas.Commit(&storage.Manifest{Key: taskCommitKey(spec.TaskKey), Parts: parts}); err == nil {
		ex.met.Counter(metrics.NameCommitWrites).Add(1)
	}
}

// pullCAS serves one skipped task's sections from the commit store as a
// frame shaped exactly as if the sender had pushed it (same Cover
// bookkeeping, so drainStaged and the exactly-once dedup treat both paths
// identically). Safe to call concurrently: it only reads receiver identity
// and touches atomic counters; the caller stages the returned frame.
func (r *receiver) pullCAS(c msgCommit) (*pushFrame, error) {
	if r.ex.cas == nil {
		return nil, fmt.Errorf("runtime: commit relay carries chunk %.12s but executor has no commit plane", c.Chunk)
	}
	r.ex.tr.Emit(obs.Event{Kind: obs.FetchStarted, Stage: r.spec.Stage, Frag: c.Frag,
		Task: c.Index, Attempt: c.Attempt, Exec: r.ex.id, Note: "cas"})
	payload, err := r.ex.cas.GetChunk(c.Chunk)
	if err != nil {
		return nil, err
	}
	r.ex.met.Counter(metrics.NameCASBytesServed).Add(int64(len(payload)))
	secs, err := decodeSections(payload)
	if err != nil {
		return nil, err
	}
	r.ex.tr.Emit(obs.Event{Kind: obs.FetchDone, Stage: r.spec.Stage, Frag: c.Frag,
		Task: c.Index, Attempt: c.Attempt, Exec: r.ex.id, Bytes: int64(len(payload)), Note: "cas"})
	return &pushFrame{
		Job: r.ex.job, Stage: r.spec.Stage, Gen: r.spec.Gen, RecvIdx: r.spec.Index,
		Frag:     c.Frag,
		Cover:    []senderRef{{Index: c.Index, Attempt: c.Attempt}},
		Sections: secs,
	}, nil
}

// encodeSections / decodeSections serialize a frame's section list for
// CAS chunks. Deliberately NOT the full pushFrame codec: a pushFrame
// embeds job, generation, and attempt — run-specific identity that would
// pollute content addresses and defeat cross-run dedup. The receiver
// reconstructs the frame envelope from the commit message instead.
func encodeSections(secs []pushSection) ([]byte, error) {
	return data.Encoded(func(e *data.Encoder) error {
		if err := e.Uvarint(uint64(len(secs))); err != nil {
			return err
		}
		for _, s := range secs {
			if err := e.String(s.Tag); err != nil {
				return err
			}
			b := byte(0)
			if s.Aggregated {
				b = 1
			}
			if err := e.Byte(b); err != nil {
				return err
			}
			if err := e.Bytes(s.Payload); err != nil {
				return err
			}
		}
		return e.Flush()
	})
}

func decodeSections(payload []byte) ([]pushSection, error) {
	d := data.NewDecoder(bytes.NewReader(payload))
	n, err := d.Uvarint()
	if err != nil {
		return nil, err
	}
	if n > 1<<16 {
		return nil, fmt.Errorf("runtime: section chunk lists %d sections", n)
	}
	secs := make([]pushSection, n)
	for i := range secs {
		tag, err := d.String()
		if err != nil {
			return nil, err
		}
		agg, err := d.Byte()
		if err != nil {
			return nil, err
		}
		p, err := d.Bytes(0)
		if err != nil {
			return nil, err
		}
		secs[i] = pushSection{Tag: tag, Aggregated: agg == 1, Payload: p}
	}
	return secs, nil
}
