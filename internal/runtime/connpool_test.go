package runtime

import (
	"fmt"
	"sync"
	"testing"

	"pado/internal/data"
	"pado/internal/metrics"
	"pado/internal/simnet"
)

// serveBlocks runs a minimal data-plane server on nd: fetches are
// answered from blocks, pushes are always rejected with respNo — the
// answer a replacement executor gives a stale-generation push.
func serveBlocks(t *testing.T, nd *simnet.Node, blocks map[string][]byte) {
	t.Helper()
	l, err := nd.Listen()
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			conn, err := l.Accept(nil)
			if err != nil {
				return
			}
			go func(conn *simnet.Conn) {
				defer conn.Close()
				d := data.NewDecoder(connReader{conn})
				e := data.NewEncoder(conn)
				for {
					op, err := d.Byte()
					if err != nil {
						return
					}
					switch op {
					case frameFetch:
						id, err := d.String()
						if err != nil {
							return
						}
						if b, ok := blocks[id]; ok {
							e.Byte(respOK)
							e.Bytes(b)
						} else {
							e.Byte(respNo)
						}
					case framePush:
						if _, err := readPushFrame(d); err != nil {
							return
						}
						e.Byte(respNo)
					default:
						return
					}
					if e.Flush() != nil {
						return
					}
				}
			}(conn)
		}
	}()
}

func newPoolFixture(t *testing.T, blocks map[string][]byte) (*simnet.Network, *connPool, *metrics.Job) {
	t.Helper()
	net := simnet.New(simnet.Config{})
	if _, err := net.AddNode("client"); err != nil {
		t.Fatal(err)
	}
	srv, err := net.AddNode("server")
	if err != nil {
		t.Fatal(err)
	}
	serveBlocks(t, srv, blocks)
	met := &metrics.Job{}
	pool := newConnPool(net, "client", met)
	t.Cleanup(pool.closeAll)
	return net, pool, met
}

func TestConnPoolReusesConnections(t *testing.T) {
	_, pool, met := newPoolFixture(t, map[string][]byte{"blk": []byte("payload")})
	const n = 6
	for i := 0; i < n; i++ {
		got, err := fetchBlock(pool, "server", "blk")
		if err != nil || string(got) != "payload" {
			t.Fatalf("fetch %d = %q, %v", i, got, err)
		}
	}
	if d := met.Counter(metrics.NameConnDials).Load(); d != 1 {
		t.Errorf("conn_dials = %d, want 1", d)
	}
	if r := met.Counter(metrics.NameConnReuses).Load(); r != n-1 {
		t.Errorf("conn_reuses = %d, want %d", r, n-1)
	}
}

func TestConnPoolProtocolErrorKeepsConn(t *testing.T) {
	// respNo answers (missing block, rejected push) are not transport
	// failures: the conn must go back to the pool and must not trigger
	// the retry-on-fresh-dial path.
	_, pool, met := newPoolFixture(t, nil)
	if _, err := fetchBlock(pool, "server", "absent"); !errorsIs(err, errBlockNotFound) {
		t.Fatalf("err = %v, want errBlockNotFound", err)
	}
	f := &pushFrame{Stage: 1, Gen: 7, Cover: []senderRef{{Index: 0, Attempt: 0}},
		Sections: []pushSection{{Payload: []byte("x")}}}
	if err := sendPush(pool, "server", f); !errorsIs(err, errPushRejected) {
		t.Fatalf("err = %v, want errPushRejected", err)
	}
	if d := met.Counter(metrics.NameConnDials).Load(); d != 1 {
		t.Errorf("conn_dials = %d, want 1 (protocol errors must not redial)", d)
	}
}

func TestConnPoolConcurrentCheckout(t *testing.T) {
	// Hammer one destination from many goroutines; every operation gets
	// an exclusive conn, so all fetches must succeed and the race
	// detector must stay quiet.
	_, pool, met := newPoolFixture(t, map[string][]byte{"blk": []byte("v")})
	const goroutines, rounds = 16, 20
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				if _, err := fetchBlock(pool, "server", "blk"); err != nil {
					errs[g] = err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}
	dials := met.Counter(metrics.NameConnDials).Load()
	reuses := met.Counter(metrics.NameConnReuses).Load()
	if dials+reuses != goroutines*rounds {
		t.Errorf("dials+reuses = %d, want %d", dials+reuses, goroutines*rounds)
	}
	if reuses == 0 {
		t.Error("expected some connection reuse under concurrency")
	}
}

func TestConnPoolInvalidatesOnNodeDown(t *testing.T) {
	net, pool, _ := newPoolFixture(t, map[string][]byte{"blk": []byte("v")})
	if _, err := fetchBlock(pool, "server", "blk"); err != nil {
		t.Fatal(err)
	}
	net.RemoveNode("server")
	_, err := fetchBlock(pool, "server", "blk")
	if err == nil {
		t.Fatal("fetch from removed node succeeded")
	}
	if !isTransientErr(err) {
		t.Errorf("err = %v, want a transient (relaunchable) error", err)
	}
}

func TestConnPoolPeerRestart(t *testing.T) {
	// A conn pooled against the old incarnation of a node must not be
	// trusted after the peer restarts under the same id: the pool must
	// detect the dead conn, dial the new incarnation, and surface its
	// respNo for a stale-generation push rather than a transport error.
	net, pool, _ := newPoolFixture(t, map[string][]byte{"blk": []byte("old")})
	if _, err := fetchBlock(pool, "server", "blk"); err != nil {
		t.Fatal(err)
	}
	net.RemoveNode("server")
	srv2, err := net.AddNode("server")
	if err != nil {
		t.Fatal(err)
	}
	serveBlocks(t, srv2, map[string][]byte{"blk2": []byte("new")})

	got, err := fetchBlock(pool, "server", "blk2")
	if err != nil || string(got) != "new" {
		t.Fatalf("fetch from restarted peer = %q, %v", got, err)
	}
	f := &pushFrame{Stage: 3, Gen: 1, Cover: []senderRef{{Index: 0, Attempt: 2}},
		Sections: []pushSection{{Payload: []byte("stale")}}}
	if err := sendPush(pool, "server", f); !errorsIs(err, errPushRejected) {
		t.Fatalf("stale push after restart: err = %v, want errPushRejected", err)
	}
}

func TestConnPoolCloseAll(t *testing.T) {
	_, pool, _ := newPoolFixture(t, map[string][]byte{"blk": []byte("v")})
	if _, err := fetchBlock(pool, "server", "blk"); err != nil {
		t.Fatal(err)
	}
	pool.closeAll()
	pool.mu.Lock()
	idle := len(pool.idle)
	pool.mu.Unlock()
	if idle != 0 {
		t.Errorf("idle lists not drained: %d", idle)
	}
	// The pool still works after closeAll (ops dial fresh, conns are not
	// re-pooled) so late stragglers — e.g. replicateProgress goroutines —
	// don't crash.
	if _, err := fetchBlock(pool, "server", "blk"); err != nil {
		t.Fatalf("fetch after closeAll: %v", err)
	}
}

func TestFanout(t *testing.T) {
	for _, workers := range []int{1, 3, 8} {
		var mu sync.Mutex
		seen := make(map[int]bool)
		err := fanout(10, workers, func(i int) error {
			mu.Lock()
			seen[i] = true
			mu.Unlock()
			if i == 3 || i == 7 {
				return fmt.Errorf("fail-%d", i)
			}
			return nil
		})
		if err == nil || err.Error() != "fail-3" {
			t.Errorf("workers=%d: err = %v, want fail-3 (lowest index)", workers, err)
		}
		if len(seen) != 10 {
			t.Errorf("workers=%d: attempted %d of 10 indices", workers, len(seen))
		}
	}
	if err := fanout(0, 4, func(int) error { return fmt.Errorf("never") }); err != nil {
		t.Errorf("n=0: err = %v", err)
	}
}
