package runtime

import (
	"fmt"
	"slices"
	"time"

	"pado/internal/core"
	"pado/internal/obs"
)

// This file is a verbatim snapshot of the pre-refactor scheduling pass
// (scheduleAll / parentsDone / assignTasks / launchPending /
// pickExecutor as of PR 8) kept as a behavioral oracle: the equivalence
// tests in sched_oracle_test.go drive the incremental scheduler and
// this legacy full-rescan one through identical scripted event
// sequences and require identical launch logs.
//
// One deliberate substitution: the legacy cache-preferred path iterated
// a Go map (random order) and returned the first eligible executor;
// both this oracle and the production scheduler now break ties by
// lowest executor id, so cache-placement scenarios are deterministic
// and comparable. That is the only intended behavior change of the
// refactor.

func (jm *JobManager) legacyScheduleAll() {
	for _, id := range jm.order {
		j := jm.jobs[id]
		if j.finished {
			continue
		}
		for _, s := range j.stages {
			if s.status == sPending && jm.legacyParentsDone(j, s) {
				jm.legacyStartStage(j, s)
			}
		}
	}
	jm.legacyAssignTasks()
}

func (jm *JobManager) legacyParentsDone(j *jobRun, s *stageRun) bool {
	for _, pid := range s.ps.Parents {
		if j.stages[pid].status != sDone {
			return false
		}
	}
	return true
}

func (jm *JobManager) legacyStartStage(j *jobRun, s *stageRun) {
	ps := s.ps
	if ps.RootReserved && len(jm.reservedOrder) == 0 {
		return // wait for a reserved container
	}
	s.gen++
	note := ""
	if s.restarts > 0 {
		note = fmt.Sprintf("restart %d", s.restarts)
	}
	j.tr.Emit(obs.Event{Kind: obs.StageScheduled, Stage: ps.ID, Attempt: s.restarts, Note: note})
	s.frags = make([]*fragRun, len(ps.Fragments))
	total := 0
	for i, f := range ps.Fragments {
		fr := &fragRun{tasks: make([]*taskRun, f.Parallelism)}
		for j := range fr.tasks {
			fr.tasks[j] = &taskRun{state: tWaiting}
		}
		s.frags[i] = fr
		total += f.Parallelism
	}

	if ps.RootReserved {
		r := ps.RootParallelism
		s.recvExecs = make([]string, r)
		s.recvReady = make([]bool, r)
		s.recvDone = make([]bool, r)
		s.nReady, s.nDone = 0, 0
		for i := 0; i < r; i++ {
			s.recvExecs[i] = jm.reservedOrder[jm.rrRecv%len(jm.reservedOrder)]
			jm.rrRecv++
		}
		total += r
		expected := 0
		for _, f := range ps.Fragments {
			expected += f.Parallelism
		}
		locs := jm.inputLocsFor(j, ps)
		// Reserved tasks are scheduled and set up first so they can
		// receive pushed outputs (§3.2.3).
		s.status = sStartingReceivers
		jm.trackReceivers(j, r)
		for i := 0; i < r; i++ {
			j.tr.Emit(obs.Event{Kind: obs.TaskLaunched, Stage: ps.ID, Frag: obs.ReservedFrag,
				Task: i, Exec: s.recvExecs[i]})
			j.execs[s.recvExecs[i]].StartReceiver(recvSpec{
				Stage: ps.ID, Gen: s.gen, Index: i,
				Expected:  expected,
				InputLocs: locs,
				PullMode:  j.cfg.PullBoundaries,
				Peers:     append([]string(nil), s.recvExecs...),
			})
		}
	} else {
		s.results = make([][]byte, ps.Fragments[ps.RootFragment].Parallelism)
		s.nResults = 0
		s.status = sRunning
	}

	if s.gen == 1 {
		j.met.OriginalTasks.Add(int64(total))
	} else {
		j.met.RelaunchedTasks.Add(int64(total))
	}
}

// legacyPendingTask locates one waiting fragment task.
type legacyPendingTask struct {
	s      *stageRun
	fi, ti int
}

// legacyJobQueue is one job's runnable-task queue for a scheduling
// round.
type legacyJobQueue struct {
	j     *jobRun
	tasks []legacyPendingTask
	next  int
}

func (jm *JobManager) legacyAssignTasks() {
	pool := jm.transientOrder
	if len(pool) == 0 && jm.cl.TransientConfigured() == 0 {
		pool = jm.reservedOrder
	}
	if len(pool) == 0 {
		return
	}

	var queues []*legacyJobQueue
	for _, id := range jm.order {
		j := jm.jobs[id]
		if j.finished {
			continue
		}
		var tasks []legacyPendingTask
		for _, s := range j.stages {
			if s.status != sRunning {
				continue
			}
			for fi, fr := range s.frags {
				for ti, t := range fr.tasks {
					if t.state == tWaiting {
						tasks = append(tasks, legacyPendingTask{s: s, fi: fi, ti: ti})
					}
				}
			}
		}
		if len(tasks) > 0 {
			queues = append(queues, &legacyJobQueue{j: j, tasks: tasks})
		}
	}
	if len(queues) == 0 {
		return
	}
	locs := make(map[*stageRun]map[int]stageLoc)

	if len(queues) == 1 {
		// Single runnable job: no fairness to arbitrate.
		q := queues[0]
		q.j.deficit = 0
		for _, p := range q.tasks {
			if !jm.legacyLaunchPending(q.j, p, pool, locs) {
				return // no free slots anywhere
			}
		}
		return
	}

	idle := 0
	for idle < len(queues) {
		q := queues[jm.rrJob%len(queues)]
		jm.rrJob++
		if q.next >= len(q.tasks) {
			q.j.deficit = 0
			idle++
			continue
		}
		q.j.deficit += q.j.weight
		if limit := q.j.weight * maxDeficitRounds; q.j.deficit > limit {
			q.j.deficit = limit
		}
		progressed := false
		for q.j.deficit >= 1 && q.next < len(q.tasks) {
			p := q.tasks[q.next]
			if !jm.legacyLaunchPending(q.j, p, pool, locs) {
				return // no free slots anywhere; credit persists
			}
			q.j.deficit--
			q.next++
			progressed = true
		}
		if progressed {
			idle = 0
		}
	}
}

func (jm *JobManager) legacyLaunchPending(j *jobRun, p legacyPendingTask, pool []string, locsCache map[*stageRun]map[int]stageLoc) bool {
	s := p.s
	t := s.frags[p.fi].tasks[p.ti]
	if t.state != tWaiting {
		return true
	}
	exec := jm.legacyPickExecutor(j, pool, s.ps, s.ps.Fragments[p.fi], p.ti)
	if exec == "" {
		return false
	}
	locs := locsCache[s]
	if locs == nil {
		locs = jm.inputLocsFor(j, s.ps)
		locsCache[s] = locs
	}
	t.state = tRunning
	t.exec = exec
	t.started = time.Now()
	jm.slotsFree[exec]--
	j.tr.Emit(obs.Event{Kind: obs.TaskLaunched, Stage: s.ps.ID, Frag: p.fi,
		Task: p.ti, Attempt: t.attempt, Exec: exec})
	ref := taskRef{Job: j.id, Stage: s.ps.ID, Gen: s.gen, Frag: p.fi, Index: p.ti, Attempt: t.attempt}
	jm.assignments[ref] = exec
	j.execs[exec].Launch(taskSpec{
		Stage: s.ps.ID, Gen: s.gen, Frag: p.fi, Index: p.ti, Attempt: t.attempt,
		InputLocs: locs,
		Receivers: append([]string(nil), s.recvExecs...),
		Terminal:  !s.ps.RootReserved,
	})
	return true
}

func (jm *JobManager) legacyPickExecutor(j *jobRun, pool []string, ps *core.PhysStage, frag *core.Fragment, taskIdx int) string {
	if !j.cfg.DisableCache {
		for _, key := range taskCacheKeys(j.plan, ps, frag, taskIdx) {
			best := ""
			for exID := range j.cacheIndex[key] {
				if jm.slotsFree[exID] > 0 && slices.Contains(pool, exID) && (best == "" || exID < best) {
					best = exID
				}
			}
			if best != "" {
				return best
			}
		}
	}
	for i := 0; i < len(pool); i++ {
		exID := pool[jm.rrTask%len(pool)]
		jm.rrTask++
		if jm.slotsFree[exID] > 0 {
			return exID
		}
	}
	return ""
}
