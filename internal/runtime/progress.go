package runtime

import (
	"bytes"
	"fmt"

	"pado/internal/data"
)

// Progress is the master's execution-progress metadata (§3.2.6): the
// record of finished stages, their generations, and where their output
// partitions live. The master re-encodes and replicates it to reserved
// executors after every stage completion, so a replacement master can be
// launched to resume from the last available progress information
// instead of recomputing the whole job.
type Progress struct {
	Stages []StageProgress
}

// StageProgress records one stage's completion state.
type StageProgress struct {
	ID   int
	Gen  int
	Done bool
	// OutputExecs locates the stage's output partitions (empty for
	// incomplete or terminal-transient stages).
	OutputExecs []string
}

// DoneCount returns the number of completed stages.
func (p *Progress) DoneCount() int {
	n := 0
	for _, s := range p.Stages {
		if s.Done {
			n++
		}
	}
	return n
}

// progressBlockID names one job's replicated metadata block on reserved
// executors.
func progressBlockID(job int) string {
	return fmt.Sprintf("pado/progress/%d", job)
}

// Encode serializes the progress metadata.
func (p *Progress) Encode() ([]byte, error) {
	return data.Encoded(func(e *data.Encoder) error {
		if err := e.Uvarint(uint64(len(p.Stages))); err != nil {
			return err
		}
		for _, s := range p.Stages {
			e.Varint(int64(s.ID))
			e.Varint(int64(s.Gen))
			done := byte(0)
			if s.Done {
				done = 1
			}
			e.Byte(done)
			e.Uvarint(uint64(len(s.OutputExecs)))
			for _, x := range s.OutputExecs {
				if err := e.String(x); err != nil {
					return err
				}
			}
		}
		return nil
	})
}

// DecodeProgress parses metadata produced by Encode.
func DecodeProgress(b []byte) (*Progress, error) {
	d := data.NewDecoder(bytes.NewReader(b))
	n, err := d.Uvarint()
	if err != nil {
		return nil, err
	}
	if n > 1<<20 {
		return nil, fmt.Errorf("runtime: progress with %d stages", n)
	}
	p := &Progress{Stages: make([]StageProgress, n)}
	for i := range p.Stages {
		id, err := d.Varint()
		if err != nil {
			return nil, err
		}
		gen, err := d.Varint()
		if err != nil {
			return nil, err
		}
		done, err := d.Byte()
		if err != nil {
			return nil, err
		}
		ne, err := d.Uvarint()
		if err != nil {
			return nil, err
		}
		if ne > 1<<20 {
			return nil, fmt.Errorf("runtime: progress stage with %d executors", ne)
		}
		execs := make([]string, ne)
		for j := range execs {
			if execs[j], err = d.String(); err != nil {
				return nil, err
			}
		}
		p.Stages[i] = StageProgress{ID: int(id), Gen: int(gen), Done: done == 1, OutputExecs: execs}
	}
	return p, nil
}

// snapshotProgress captures one job's current stage-completion state.
func (j *jobRun) snapshotProgress() *Progress {
	p := &Progress{Stages: make([]StageProgress, len(j.stages))}
	for i, s := range j.stages {
		p.Stages[i] = StageProgress{
			ID:          s.ps.ID,
			Gen:         s.gen,
			Done:        s.status == sDone,
			OutputExecs: append([]string(nil), s.outputExecs...),
		}
	}
	return p
}

// replicationFactor is how many reserved executors hold the progress
// metadata.
const replicationFactor = 2

// replicateProgress ships one job's current snapshot to reserved
// executors on a background goroutine (§3.2.6: "periodically replicating
// the progress metadata"). Failures are ignored: the snapshot is
// advisory and the next stage completion re-replicates.
func (jm *JobManager) replicateProgress(j *jobRun) {
	if len(jm.reservedOrder) == 0 {
		return // no replication targets; skip the snapshot allocation too
	}
	targets := make([]string, 0, replicationFactor)
	for i := 0; i < len(jm.reservedOrder) && i < replicationFactor; i++ {
		targets = append(targets, jm.reservedOrder[i])
	}
	snap := j.snapshotProgress()
	pool := jm.pool
	blockID := progressBlockID(j.id)
	go func() {
		payload, err := snap.Encode()
		if err != nil {
			return
		}
		for _, id := range targets {
			_ = storeBlock(pool, "progress", id, blockID, payload)
		}
	}()
}

// storeBlock writes a block into a remote executor's local store over a
// pooled connection. op labels the store's purpose ("progress" for
// metadata replication, "store" otherwise) for per-cause retry counters.
func storeBlock(pool *connPool, op, owner, blockID string, payload []byte) error {
	return pool.doOp(op, owner, func(e *data.Encoder, d *data.Decoder) error {
		if err := e.Byte(frameStore); err != nil {
			return err
		}
		if err := e.String(blockID); err != nil {
			return err
		}
		if err := e.Bytes(payload); err != nil {
			return err
		}
		if err := e.Flush(); err != nil {
			return err
		}
		resp, err := d.Byte()
		if err != nil {
			return err
		}
		if resp != respOK {
			return fmt.Errorf("runtime: store of %q on %s rejected", blockID, owner)
		}
		return nil
	})
}
