package runtime

import (
	"context"
	"fmt"
	"math"
	"testing"
	"time"

	"pado/internal/cluster"
	"pado/internal/data"
	"pado/internal/dataflow"
	"pado/internal/trace"
	"pado/internal/vtime"
	"pado/internal/workloads"
)

// runWordCount executes the standard test pipeline under the given
// config and checks the result.
func runWordCount(t *testing.T, cl *cluster.Cluster, cfg Config) *Result {
	t.Helper()
	p, expect := buildWordCount(8, 400)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	res, err := Run(ctx, cl, p.Graph(), cfg)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.Metrics.TimedOut {
		t.Fatal("timed out")
	}
	checkWordCount(t, res, expect)
	return res
}

func TestPartialAggregationDisabledStillCorrect(t *testing.T) {
	cl := newTestCluster(t, 4, 2, trace.RateMedium)
	runWordCount(t, cl, Config{DisablePartialAggregation: true})
}

func TestCacheDisabledStillCorrect(t *testing.T) {
	cl := newTestCluster(t, 4, 2, trace.RateMedium)
	runWordCount(t, cl, Config{DisableCache: true})
}

func TestPullBoundariesStillCorrect(t *testing.T) {
	for _, rate := range []trace.Rate{trace.RateNone, trace.RateMedium} {
		cl := newTestCluster(t, 4, 2, rate)
		res := runWordCount(t, cl, Config{PullBoundaries: true})
		if rate == trace.RateNone && res.Metrics.BytesPushed != 0 {
			t.Errorf("pull mode pushed %d bytes", res.Metrics.BytesPushed)
		}
	}
}

func TestPartialAggregationReducesPushedBytes(t *testing.T) {
	// With heavy key duplication, partial aggregation must shrink the
	// boundary traffic substantially.
	build := func() *dataflow.Pipeline {
		p, _ := buildWordCount(8, 400) // 100 distinct keys, 3200 records
		return p
	}
	run := func(cfg Config) int64 {
		cl := newTestCluster(t, 4, 2, trace.RateNone)
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		res, err := Run(ctx, cl, build().Graph(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.Metrics.BytesPushed
	}
	with := run(Config{})
	without := run(Config{DisablePartialAggregation: true})
	if with >= without {
		t.Errorf("partial aggregation did not reduce pushes: with=%d without=%d", with, without)
	}
}

func TestTerminalTransientStage(t *testing.T) {
	// A map-only pipeline ends on transient operators; results are
	// pushed to the master collector with the push-as-commit protocol.
	src := &dataflow.FuncSource{
		Partitions: 6,
		Gen: func(p int) []data.Record {
			recs := make([]data.Record, 50)
			for i := range recs {
				recs[i] = data.KV(fmt.Sprintf("p%d-%d", p, i), int64(i))
			}
			return recs
		},
	}
	kv := data.KVCoder{K: data.StringCoder, V: data.Int64Coder}
	p := dataflow.NewPipeline()
	p.Read("read", src, kv).
		ParDo("inc", dataflow.MapFunc(func(r data.Record) data.Record {
			return data.KV(r.Key, r.Value.(int64)+1)
		}), kv)

	for _, rate := range []trace.Rate{trace.RateNone, trace.RateHigh} {
		cl := newTestCluster(t, 4, 2, rate)
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		res, err := Run(ctx, cl, p.Graph(), Config{})
		cancel()
		if err != nil {
			t.Fatalf("rate %v: %v", rate, err)
		}
		var recs []data.Record
		for _, out := range res.Outputs {
			recs = out
		}
		if len(recs) != 300 {
			t.Fatalf("rate %v: got %d records, want 300", rate, len(recs))
		}
		seen := map[string]int64{}
		for _, r := range recs {
			seen[r.Key.(string)] = r.Value.(int64)
		}
		for p := 0; p < 6; p++ {
			for i := 0; i < 50; i++ {
				if seen[fmt.Sprintf("p%d-%d", p, i)] != int64(i)+1 {
					t.Fatalf("missing or wrong record p%d-%d", p, i)
				}
			}
		}
	}
}

func TestReservedFailureRecovery(t *testing.T) {
	// Kill a reserved container mid-job; §3.2.6 recovery must recompute
	// lost ancestor stages and still produce the exact model.
	cfg := workloads.MLRConfig{
		Partitions: 8, SamplesPerPart: 30, Features: 32, Classes: 4,
		NonZeros: 8, Iterations: 4, LearningRate: 0.5, Seed: 3,
	}
	want := workloads.MLRReference(cfg)

	cl, err := cluster.New(cluster.Config{
		Transient:   6,
		Reserved:    3,
		Slots:       4,
		Lifetimes:   trace.Lifetimes(trace.RateMedium),
		Scale:       vtime.NewScale(50 * time.Millisecond),
		MinLifetime: 40 * time.Millisecond,
		Seed:        5,
	})
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(120 * time.Millisecond)
		for _, c := range cl.Containers(cluster.Reserved) {
			cl.FailReserved(c.ID, true)
			return
		}
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()
	res, err := Run(ctx, cl, workloads.MLR(cfg).Graph(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.TimedOut {
		t.Fatal("timed out")
	}
	var model []float64
	for _, recs := range res.Outputs {
		if len(recs) != 1 {
			t.Fatalf("got %d model records", len(recs))
		}
		model = recs[0].Value.([]float64)
	}
	for i := range model {
		if math.Abs(model[i]-want[i]) > 1e-9 {
			t.Fatalf("model[%d] = %g, want %g", i, model[i], want[i])
		}
	}
}

func TestManualEvictionStorm(t *testing.T) {
	// Evict transient containers continuously and aggressively while an
	// iterative job runs; exactly-once commit semantics must hold.
	cfg := workloads.MLRConfig{
		Partitions: 8, SamplesPerPart: 20, Features: 32, Classes: 4,
		NonZeros: 8, Iterations: 3, LearningRate: 0.5, Seed: 9,
	}
	want := workloads.MLRReference(cfg)
	cl := newTestCluster(t, 6, 2, trace.RateNone)
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			case <-time.After(25 * time.Millisecond):
			}
			conts := cl.Containers(cluster.Transient)
			if len(conts) > 0 {
				cl.EvictNow(conts[i%len(conts)].ID)
			}
		}
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()
	res, err := Run(ctx, cl, workloads.MLR(cfg).Graph(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.TimedOut {
		t.Fatal("timed out under eviction storm")
	}
	for _, recs := range res.Outputs {
		model := recs[0].Value.([]float64)
		for i := range model {
			if math.Abs(model[i]-want[i]) > 1e-9 {
				t.Fatalf("model deviates at %d under storm", i)
			}
		}
	}
	if res.Metrics.Evictions == 0 {
		t.Error("storm produced no evictions")
	}
}

func TestDeterministicResultAcrossRuns(t *testing.T) {
	// Same seed, same pipeline: byte-identical outputs run to run even
	// with evictions (determinism of the commit protocol).
	run := func() map[string]int64 {
		p, _ := buildWordCount(6, 200)
		cl := newTestCluster(t, 4, 2, trace.RateHigh)
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		res, err := Run(ctx, cl, p.Graph(), Config{})
		if err != nil {
			t.Fatal(err)
		}
		out := map[string]int64{}
		for _, recs := range res.Outputs {
			for _, r := range recs {
				out[r.Key.(string)] = r.Value.(int64)
			}
		}
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("runs differ in key count: %d vs %d", len(a), len(b))
	}
	for k, v := range a {
		if b[k] != v {
			t.Errorf("key %s: %d vs %d", k, v, b[k])
		}
	}
}

func TestCacheHitsOnIterativeJob(t *testing.T) {
	cfg := workloads.MLRConfig{
		Partitions: 8, SamplesPerPart: 20, Features: 32, Classes: 4,
		NonZeros: 8, Iterations: 4, LearningRate: 0.5, Seed: 4,
	}
	cl := newTestCluster(t, 4, 2, trace.RateNone)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	res, err := Run(ctx, cl, workloads.MLR(cfg).Graph(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.CacheHits == 0 {
		t.Error("iterative job produced no cache hits")
	}
}
