package runtime

import (
	"context"
	"strings"
	"testing"
	"time"

	"pado/internal/chaos"
	"pado/internal/cluster"
	"pado/internal/metrics"
	"pado/internal/obs"
	"pado/internal/simnet"
	"pado/internal/trace"
)

// TestChaosPullEvictionRegression pins the PullBoundaries failure mode:
// the source container is evicted between commit and fetch, so the
// puller's fetch fails and the master must un-commit and relaunch the
// task (evPullFailed) rather than hang waiting for data that no longer
// exists. The commit-delay fault widens the commit/eviction race window
// enough to hit it deterministically.
func TestChaosPullEvictionRegression(t *testing.T) {
	pipe, expect := buildWordCount(8, 300)
	cl := newTestCluster(t, 6, 2, trace.RateNone)
	tracer := obs.New()

	plan := &chaos.Plan{Name: "pull-evict", Rules: []chaos.Rule{
		{ID: "slow-commits", Trigger: chaos.Trigger{Stage: chaos.Any, Frag: chaos.Any, Task: chaos.Any},
			Fault: chaos.Fault{Op: chaos.OpCommitDelay, Stage: chaos.Any, Delay: chaos.Duration(25 * time.Millisecond)}},
		{Trigger: func() chaos.Trigger {
			tr := chaos.On("push_committed")
			tr.Count = 1
			return tr
		}(), Fault: chaos.Fault{Op: chaos.OpEvict, Target: "@event", Stage: chaos.Any}},
	}}
	if err := plan.Validate(); err != nil {
		t.Fatal(err)
	}
	eng := chaos.NewEngine(plan, cl)
	eng.Attach(tracer)
	defer eng.Stop()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	res, err := Run(ctx, cl, pipe.Graph(), Config{
		PullBoundaries: true,
		Tracer:         tracer,
		Chaos:          eng,
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.Metrics.TimedOut {
		t.Fatal("job hung after pull-mode eviction")
	}
	checkWordCount(t, res, expect)

	eng.Stop()
	if len(eng.Injections()) == 0 {
		t.Fatal("no faults fired")
	}
	relaunched := false
	for _, ev := range tracer.Events() {
		if ev.Kind == obs.TaskRelaunched && strings.Contains(ev.Note, "pull_failed") {
			relaunched = true
			break
		}
	}
	if !relaunched {
		t.Error("expected a pull_failed relaunch after evicting a committed pull-mode source")
	}
	parents := make(map[int][]int, len(res.Plan.Stages))
	for _, ps := range res.Plan.Stages {
		parents[ps.ID] = ps.Parents
	}
	if report := chaos.Check(tracer.Events(), parents); !report.OK() {
		t.Errorf("invariants: %s", report)
	}
}

// TestEventQueueOverflow proves a full manager event queue fails loudly:
// the drop is counted and the overflow channel carries an abort error,
// instead of the listener silently blocking or the event vanishing.
func TestEventQueueOverflow(t *testing.T) {
	cl := newTestCluster(t, 2, 1, trace.RateNone)
	met := &metrics.Job{}
	m := newManager(cl, ManagerConfig{EventQueue: 1, Metrics: met})

	// Nobody drains m.events, so the first post fills the queue and the
	// next two overflow.
	for i := 0; i < 3; i++ {
		m.ContainerEvicted(&cluster.Container{ID: "t0"})
	}
	select {
	case err := <-m.overflow:
		if !strings.Contains(err.Error(), "event queue full") {
			t.Errorf("overflow error = %v", err)
		}
	default:
		t.Fatal("no overflow error reported")
	}
	if n := met.Counter("event_queue_overflow").Load(); n != 2 {
		t.Errorf("event_queue_overflow = %d, want 2", n)
	}
}

// TestFailureThresholdAborts tightens MaxTaskFailures and makes every
// transient->reserved dial fail: the job must abort with a JobAborted
// event rather than retrying forever.
func TestFailureThresholdAborts(t *testing.T) {
	pipe, _ := buildWordCount(4, 50)
	cl := newTestCluster(t, 4, 2, trace.RateNone)
	cl.Net().InjectFault(simnet.LinkFault{From: "t", To: "r", FailDial: true})
	tracer := obs.New()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	_, err := Run(ctx, cl, pipe.Graph(), Config{
		MaxTaskFailures: 2,
		Tracer:          tracer,
	})
	if err == nil {
		t.Fatal("expected the failure threshold to abort the job")
	}
	if !strings.Contains(err.Error(), "failed") {
		t.Errorf("abort error = %v", err)
	}
	aborted := false
	for _, ev := range tracer.Events() {
		if ev.Kind == obs.JobAborted {
			aborted = true
			break
		}
	}
	if !aborted {
		t.Error("no JobAborted event emitted on threshold abort")
	}
}
