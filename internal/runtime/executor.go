package runtime

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"pado/internal/cluster"
	"pado/internal/core"
	"pado/internal/dag"
	"pado/internal/data"
	"pado/internal/dataflow"
	"pado/internal/exec"
	"pado/internal/metrics"
	"pado/internal/obs"
	"pado/internal/recache"
	"pado/internal/simnet"
	"pado/internal/storage"
)

// nodeHost owns one container's network identity, shared across jobs:
// simnet allows a single listener per node, so the host runs the serve
// loop, owns the shared local block store, and routes inbound frames to
// the per-job executors attached to it. The host lives as long as the
// container; executors come and go with jobs.
type nodeHost struct {
	id    string
	kind  cluster.Kind
	node  *simnet.Node
	slots int
	store *storage.LocalStore
	cpu   *simnet.Limiter // nil = unlimited compute capacity

	stop     chan struct{}
	stopOnce sync.Once

	mu   sync.Mutex
	jobs map[int]*Executor
}

func newNodeHost(c *cluster.Container) (*nodeHost, error) {
	h := &nodeHost{
		id:    c.ID,
		kind:  c.Kind,
		node:  c.Node,
		slots: c.Slots,
		store: storage.NewLocalStore(),
		cpu:   c.CPU,
		stop:  make(chan struct{}),
		jobs:  make(map[int]*Executor),
	}
	l, err := c.Node.Listen()
	if err != nil {
		return nil, err
	}
	go h.serve(l)
	go func() {
		select {
		case <-c.Node.Down():
		case <-h.stop:
		}
		h.shutdown()
	}()
	return h, nil
}

// shutdown stops the host and every attached executor. Called on node
// down (eviction or failure) and on manager teardown.
func (h *nodeHost) shutdown() {
	h.stopOnce.Do(func() {
		close(h.stop)
		h.mu.Lock()
		exs := make([]*Executor, 0, len(h.jobs))
		for _, ex := range h.jobs {
			exs = append(exs, ex)
		}
		h.jobs = make(map[int]*Executor)
		h.mu.Unlock()
		for _, ex := range exs {
			ex.shutdown()
		}
	})
}

func (h *nodeHost) stopped() bool {
	select {
	case <-h.stop:
		return true
	default:
		return false
	}
}

// attach registers a job's executor for inbound-frame routing. If the
// host already stopped (the container raced its own eviction), the
// executor is shut down immediately; the manager's eviction handling
// cleans up the rest.
func (h *nodeHost) attach(ex *Executor) {
	h.mu.Lock()
	h.jobs[ex.job] = ex
	h.mu.Unlock()
	if h.stopped() {
		ex.shutdown()
	}
}

// detach removes and shuts down one job's executor (job teardown). The
// shared store is left intact: committed stage outputs remain fetchable
// while the finished job's results are collected.
func (h *nodeHost) detach(job int) {
	h.mu.Lock()
	ex := h.jobs[job]
	delete(h.jobs, job)
	h.mu.Unlock()
	if ex != nil {
		ex.shutdown()
	}
}

func (h *nodeHost) executor(job int) *Executor {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.jobs[job]
}

// openDests aggregates breaker-open destinations across every attached
// executor's RPC policy — the container-level gray signal carried in the
// host's heartbeats.
func (h *nodeHost) openDests() []string {
	h.mu.Lock()
	seen := make(map[string]bool)
	var out []string
	for _, ex := range h.jobs {
		for _, d := range ex.pool.pol.openDests() {
			if !seen[d] {
				seen[d] = true
				out = append(out, d)
			}
		}
	}
	h.mu.Unlock()
	sort.Strings(out)
	return out
}

// startHeartbeats launches the host's heartbeat loop toward the master
// collector. The loop owns a dedicated connection (re-dialed on error)
// and never reads a response, so a wedged or partitioned master cannot
// make the sender lie about its own liveness cadence — at worst writes
// block, which is exactly the silence the detector is built to notice.
func (h *nodeHost) startHeartbeats(net *simnet.Network, masterID string, every time.Duration, met *metrics.Job) {
	go func() {
		t := time.NewTicker(every)
		defer t.Stop()
		var conn *simnet.Conn
		var e *data.Encoder
		defer func() {
			if conn != nil {
				conn.Close()
			}
		}()
		seq := 0
		for {
			select {
			case <-h.stop:
				return
			case <-t.C:
			}
			seq++
			if conn == nil {
				c, err := net.Dial(h.id, masterID)
				if err != nil {
					continue
				}
				conn = c
				e = data.NewEncoder(conn)
			}
			if err := writeHeartbeat(e, &heartbeatFrame{ID: h.id, Seq: seq, Open: h.openDests()}); err != nil {
				conn.Close()
				conn, e = nil, nil
				continue
			}
			met.Counter(metrics.NameHeartbeatsSent).Add(1)
		}
	}()
}

// serve handles inbound data-plane connections: boundary pushes (routed
// to the target job's executor) and block store/fetch against the shared
// store.
func (h *nodeHost) serve(l *simnet.Listener) {
	for {
		conn, err := l.Accept(h.stop)
		if err != nil {
			return
		}
		go h.handleConn(conn)
	}
}

func (h *nodeHost) handleConn(conn *simnet.Conn) {
	defer conn.Close()
	d := data.NewDecoder(conn)
	e := data.NewEncoder(conn)
	for {
		op, err := d.Byte()
		if err != nil {
			return
		}
		switch op {
		case framePush:
			f, err := readPushFrame(d)
			if err != nil {
				return
			}
			ex := h.executor(f.Job)
			ok := ex != nil && ex.deliverPush(f)
			resp := byte(respOK)
			if !ok {
				resp = respNo
			}
			if e.Byte(resp) != nil || e.Flush() != nil {
				return
			}
		case frameStore:
			id, err := d.String()
			if err != nil {
				return
			}
			payload, err := d.Bytes(0)
			if err != nil {
				return
			}
			h.store.Put(id, payload)
			if e.Byte(respOK) != nil || e.Flush() != nil {
				return
			}
		case frameFetch:
			id, err := d.String()
			if err != nil {
				return
			}
			payload, ok := h.store.Get(id)
			if !ok {
				if e.Byte(respNo) != nil || e.Flush() != nil {
					return
				}
				continue
			}
			if e.Byte(respOK) != nil || e.Bytes(payload) != nil || e.Flush() != nil {
				return
			}
		default:
			return
		}
	}
}

// Executor runs one job's tasks on one container (§3.2.4). Transient
// executors run fragment tasks and push their outputs toward reserved
// executors; reserved executors additionally host receivers (reserved
// tasks) and keep stage outputs in the host's local store. The network
// identity (listener, store, CPU limiter) belongs to the nodeHost and is
// shared by every job's executor on the container; per-job state (cache,
// receivers, aggregation buffers, connection pool) lives here.
type Executor struct {
	job  int
	id   string
	kind cluster.Kind
	net  *simnet.Network
	plan *core.Plan
	cfg  Config
	met  *metrics.Job
	tr   *obs.Buf // per-executor, job-tagged trace buffer (nil = off)

	events   chan<- event
	masterID string

	store  *storage.LocalStore // the host's shared store
	cache  *inputCache
	flight *recache.Flight
	cpu    *simnet.Limiter // the host's limiter; nil = unlimited
	pool   *connPool       // outbound data-plane connection reuse
	// cas is the executor's commit-store client (nil when the manager has
	// no commit plane), sharing the pooled transport above: receivers put
	// finalized partitions and pull skipped-task sections through it,
	// senders put raw-path task chunks (commitplane.go).
	cas *storage.CommitClient

	stop     chan struct{}
	stopOnce sync.Once

	mu        sync.Mutex
	receivers map[recvKey]*receiver
	aggbufs   map[aggKey]*aggBuffer
}

type recvKey struct{ Stage, Gen, Index int }
type aggKey struct{ Stage, Gen, Frag int }

func newExecutor(job int, h *nodeHost, net *simnet.Network, plan *core.Plan, cfg Config,
	met *metrics.Job, events chan<- event, masterID string, fcfg FailureConfig,
	casNodes []string) *Executor {

	pool := newConnPool(net, h.id, met)
	if !fcfg.DisableRPCPolicy {
		pool.pol = newRPCPolicy(fcfg, h.id, met, cfg.Tracer.JobBuf(job))
	}
	var cas *storage.CommitClient
	if len(casNodes) > 0 {
		cas = storage.NewCommitClient(pool, casNodes)
	}
	return &Executor{
		job:       job,
		id:        h.id,
		kind:      h.kind,
		net:       net,
		plan:      plan,
		cfg:       cfg,
		met:       met,
		tr:        cfg.Tracer.JobBuf(job),
		events:    events,
		masterID:  masterID,
		store:     h.store,
		cache:     newInputCache(cfg.cacheCapacity()),
		flight:    recache.NewFlight(),
		pool:      pool,
		cas:       cas,
		cpu:       h.cpu,
		stop:      make(chan struct{}),
		receivers: make(map[recvKey]*receiver),
		aggbufs:   make(map[aggKey]*aggBuffer),
	}
}

// shutdown stops the executor's goroutines. Called by the host on node
// down (eviction or failure) and by the manager on job teardown.
func (ex *Executor) shutdown() {
	ex.stopOnce.Do(func() {
		close(ex.stop)
		ex.mu.Lock()
		recvs := make([]*receiver, 0, len(ex.receivers))
		for _, r := range ex.receivers {
			recvs = append(recvs, r)
		}
		ex.receivers = make(map[recvKey]*receiver)
		ex.mu.Unlock()
		for _, r := range recvs {
			r.cancel()
		}
		ex.pool.closeAll()
	})
}

func (ex *Executor) stopped() bool {
	select {
	case <-ex.stop:
		return true
	default:
		return false
	}
}

// send delivers an event to the manager unless the executor stopped.
func (ex *Executor) send(ev event) {
	select {
	case ex.events <- ev:
	case <-ex.stop:
	}
}

func (ex *Executor) deliverPush(f *pushFrame) bool {
	ex.mu.Lock()
	r := ex.receivers[recvKey{Stage: f.Stage, Gen: f.Gen, Index: f.RecvIdx}]
	ex.mu.Unlock()
	if r == nil {
		return false
	}
	return r.enqueue(msgFrame{f: f})
}

// StartReceiver registers and runs a reserved task (receiver) on this
// executor. Called by the master's scheduler; reserved tasks are set up
// before the stage's transient tasks launch (§3.2.3).
func (ex *Executor) StartReceiver(spec recvSpec) {
	r := newReceiver(ex, spec)
	ex.mu.Lock()
	ex.receivers[recvKey{Stage: spec.Stage, Gen: spec.Gen, Index: spec.Index}] = r
	ex.mu.Unlock()
	go r.run()
	ex.send(evReceiverReady{Job: ex.job, Stage: spec.Stage, Gen: spec.Gen, Index: spec.Index})
}

// CancelReceiver tears down a receiver during stage restarts (§3.2.6).
func (ex *Executor) CancelReceiver(stage, gen, idx int) {
	ex.mu.Lock()
	k := recvKey{Stage: stage, Gen: gen, Index: idx}
	r := ex.receivers[k]
	delete(ex.receivers, k)
	ex.mu.Unlock()
	if r != nil {
		r.cancel()
	}
}

// Commit forwards a task-output commit from the master to a receiver
// (§3.2.5: commit messages travel through the master).
func (ex *Executor) Commit(stage, gen, recvIdx int, c msgCommit) {
	ex.mu.Lock()
	r := ex.receivers[recvKey{Stage: stage, Gen: gen, Index: recvIdx}]
	ex.mu.Unlock()
	if r != nil {
		r.enqueue(c)
	}
}

// Launch starts a fragment task. The master performed slot accounting;
// the executor just runs it on its own goroutine (§3.2.4: executors run
// tasks on separate threads; outputs are sent on yet another thread).
func (ex *Executor) Launch(spec taskSpec) {
	go ex.runTask(spec)
}

// stageLoc locates one stage's output partitions: normally an executor id
// per partition, but a stage served from the commit store (skipped on
// this run) carries a CAS chunk hash per partition instead and no execs.
type stageLoc struct {
	Gen    int
	Execs  []string // executor id per partition
	Chunks []string // commit-store chunk per partition (skipped stages)
}

// nParts is the partition count regardless of which location form is set.
func (loc stageLoc) nParts() int {
	if loc.Chunks != nil {
		return len(loc.Chunks)
	}
	return len(loc.Execs)
}

// taskSpec describes one fragment task attempt.
type taskSpec struct {
	Stage   int
	Gen     int
	Frag    int
	Index   int
	Attempt int
	// InputLocs locates the outputs of every parent stage this task
	// reads from.
	InputLocs map[int]stageLoc
	// Receivers maps reserved task index to executor id (nil for
	// terminal transient stages).
	Receivers []string
	// Terminal marks tasks of terminal transient stages, whose root
	// output is pushed to the master collector.
	Terminal bool
	// TaskKey, when non-empty, is the task's deterministic commit-store
	// key: after a successful raw-path push the executor writes the
	// pushed sections as a "task/<key>" commit so a later run can skip
	// this task (commitplane.go). Empty when the commit plane is off or
	// the task is not content-addressable.
	TaskKey string
}

func (ex *Executor) runTask(spec taskSpec) {
	ps := ex.plan.Stages[spec.Stage]
	frag := ps.Fragments[spec.Frag]

	outs, cached, err := ex.computeFragment(ps, frag, spec)
	if err != nil {
		if !ex.stopped() {
			ex.send(evTaskFailed{ref: ex.ref(spec), Exec: ex.id, Err: err, Fatal: isFatal(err)})
		}
		return
	}

	// Free the slot immediately: the master can schedule the next task
	// while the output escapes on this goroutine (§3.2.4).
	ex.send(newTaskComputed(ex.ref(spec), ex.id, cached))

	if spec.Terminal {
		ex.sendTerminal(ps, frag, spec, outs)
		return
	}
	ex.dispatchBoundaries(ps, frag, spec, outs)
}

// ref builds the job-scoped event reference for one of this executor's
// task attempts. taskSpec itself carries no job id: the executor is the
// job-scoped object, so it stamps its own.
func (ex *Executor) ref(spec taskSpec) taskRef {
	return taskRef{Job: ex.job, Stage: spec.Stage, Gen: spec.Gen, Frag: spec.Frag, Index: spec.Index, Attempt: spec.Attempt}
}

// inputFetch is one pending cross-stage input transfer of a fragment
// task. Fetches are collected first and issued concurrently — they hit
// distinct parent partitions on possibly distinct owners — then applied
// in plan order so record ordering stays deterministic.
type inputFetch struct {
	op dag.VertexID
	si core.StageInput

	recs   []data.Record
	cached bool
}

// computeFragment resolves the task's external inputs and interprets the
// fused operator chain.
func (ex *Executor) computeFragment(ps *core.PhysStage, frag *core.Fragment, spec taskSpec) (map[dag.VertexID][]data.Record, []cacheKey, error) {
	g := ex.plan.Graph
	in := exec.Inputs{
		Ext:   make(map[dag.VertexID]map[string][]data.Record),
		Sides: make(map[dag.VertexID]map[string][]data.Record),
		Read:  make(map[dag.VertexID]func() (dataflow.Iterator, error)),
	}
	var cached []cacheKey
	var fetches []*inputFetch

	for _, opID := range frag.Ops {
		v := g.Vertex(opID)
		if rd, ok := v.Op.(*dataflow.ReadOp); ok {
			opID, rd, vtx := opID, rd, v
			in.Read[opID] = func() (dataflow.Iterator, error) {
				if rd.Cached && !ex.cfg.DisableCache {
					key := cacheKey{Vertex: opID, Partition: spec.Index}
					if recs, ok := ex.cache.Get(key); ok {
						ex.met.CacheHits.Add(1)
						ex.tr.Emit(obs.Event{Kind: obs.CacheHit, Stage: spec.Stage, Frag: spec.Frag,
							Task: spec.Index, Exec: ex.id, Note: "read"})
						return (&dataflow.SliceSource{Parts: [][]data.Record{recs}}).Open(0)
					}
					ex.met.CacheMisses.Add(1)
					ex.tr.Emit(obs.Event{Kind: obs.CacheMiss, Stage: spec.Stage, Frag: spec.Frag,
						Task: spec.Index, Exec: ex.id, Note: "read"})
				}
				recs, err := materialize(rd.Source, spec.Index)
				if err != nil {
					return nil, err
				}
				// Reading external input has a real cost, paid only on
				// actual reads — cache hits skip it.
				if err := ex.throttle(len(recs) * dataflow.OpCost(vtx)); err != nil {
					return nil, err
				}
				if rd.Cached && !ex.cfg.DisableCache {
					key := cacheKey{Vertex: opID, Partition: spec.Index}
					if ex.cache.Put(key, recs) {
						cached = append(cached, key)
					}
				}
				return (&dataflow.SliceSource{Parts: [][]data.Record{recs}}).Open(0)
			}
		}

		for _, si := range ps.InputsTo(opID) {
			if _, ok := spec.InputLocs[si.FromStage]; !ok {
				return nil, cached, fmt.Errorf("runtime: missing input location for stage %d", si.FromStage)
			}
			if si.Dep != dag.OneToOne && si.Dep != dag.OneToMany {
				return nil, cached, fmt.Errorf("runtime: transient operator %q has %v cross-stage input", v.Name, si.Dep)
			}
			fetches = append(fetches, &inputFetch{op: opID, si: si})
		}
	}

	// Issue the independent cross-stage fetches concurrently; each targets
	// a different parent edge, so serializing them just sums their network
	// round trips onto the task's critical path.
	err := fanout(len(fetches), maxFetchWorkers, func(i int) error {
		f := fetches[i]
		loc := spec.InputLocs[f.si.FromStage]
		coder, err := dataflow.OutputCoder(g.Vertex(f.si.FromVertex))
		if err != nil {
			return err
		}
		if f.si.Dep == dag.OneToOne {
			f.recs, f.cached, err = ex.fetchPartition(f.si, loc, spec.Index, coder)
		} else {
			f.recs, f.cached, err = ex.fetchBroadcast(f.si, loc, coder)
		}
		return err
	})
	if err != nil {
		return nil, cached, err
	}
	// Apply in collection (plan) order: record ordering and the reported
	// cache keys stay identical to the serial implementation.
	for _, f := range fetches {
		if f.si.Dep == dag.OneToOne {
			if f.cached {
				cached = append(cached, cacheKey{Vertex: f.si.FromVertex, Partition: spec.Index})
			}
			addTagged(in.Ext, f.op, f.si.Tag, f.recs)
		} else {
			if f.cached {
				cached = append(cached, cacheKey{Vertex: f.si.FromVertex, Partition: -1})
			}
			addTagged(in.Sides, f.op, f.si.Tag, f.recs)
		}
	}
	in.Throttle = ex.throttle
	outs, err := exec.RunFragment(g, frag.Ops, in)
	return outs, cached, err
}

// throttle charges the executor's compute-capacity limiter for processed
// records (no-op when unlimited).
func (ex *Executor) throttle(records int) error {
	if ex.cpu == nil {
		return nil
	}
	return ex.cpu.Acquire(records, ex.stop)
}

func addTagged(m map[dag.VertexID]map[string][]data.Record, op dag.VertexID, tag string, recs []data.Record) {
	if m[op] == nil {
		m[op] = make(map[string][]data.Record)
	}
	m[op][tag] = append(m[op][tag], recs...)
}

func materialize(src dataflow.Source, part int) ([]data.Record, error) {
	it, err := src.Open(part)
	if err != nil {
		return nil, err
	}
	defer it.Close()
	var recs []data.Record
	for {
		r, ok, err := it.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return recs, nil
		}
		recs = append(recs, r)
	}
}

// fetchStagePart pulls one partition of a located stage output. A
// location carrying commit-store chunks (the stage was skipped this run)
// is served from the CAS; otherwise the partition comes from its owner
// executor. With ring replication on (Config.ReplicateStageOutputs) the
// partition also lives on the next output executor, so a primary whose
// breaker is open is routed around without waiting for it, and a primary
// that fails with a transient error still gets one replica fallback
// before the caller sees the failure.
func fetchStagePart(pool *connPool, cas *storage.CommitClient, met *metrics.Job,
	job, stage int, loc stageLoc, part int, replicated bool) ([]byte, error) {
	if loc.Chunks != nil {
		if cas == nil {
			return nil, fmt.Errorf("runtime: stage %d is served from the commit store but this executor has no commit plane", stage)
		}
		payload, err := cas.GetChunk(loc.Chunks[part])
		if err != nil {
			return nil, err
		}
		met.Counter(metrics.NameCASBytesServed).Add(int64(len(payload)))
		return payload, nil
	}
	id := stageBlockID(job, stage, loc.Gen, part)
	primary := loc.Execs[part]
	if !replicated || len(loc.Execs) < 2 {
		return fetchBlock(pool, primary, id)
	}
	peer := loc.Execs[(part+1)%len(loc.Execs)]
	if pool.pol.quarantined(primary) {
		if payload, err := fetchBlock(pool, peer, id); err == nil {
			return payload, nil
		}
	}
	payload, err := fetchBlock(pool, primary, id)
	if err != nil && isTransientErr(err) {
		if fallback, ferr := fetchBlock(pool, peer, id); ferr == nil {
			return fallback, nil
		}
	}
	return payload, err
}

// fetchPartition pulls one aligned partition of a parent stage's output,
// through the input cache when the plan marked the edge cacheable. The
// second result reports whether the records are now resident in this
// executor's cache — hit or fresh fill alike — so the master's cache
// index can steer future tasks to this executor (§3.2.7). fetchBroadcast
// reports the same "resident here" semantics.
func (ex *Executor) fetchPartition(si core.StageInput, loc stageLoc, part int, coder data.Coder) ([]data.Record, bool, error) {
	if part >= loc.nParts() {
		return nil, false, fmt.Errorf("runtime: partition %d out of range for stage %d", part, si.FromStage)
	}
	fetch := func() ([]data.Record, error) {
		ex.tr.Emit(obs.Event{Kind: obs.FetchStarted, Stage: si.FromStage, Frag: part,
			Task: part, Exec: ex.id})
		payload, err := fetchStagePart(ex.pool, ex.cas, ex.met, ex.job, si.FromStage, loc, part, ex.cfg.ReplicateStageOutputs)
		if err != nil {
			return nil, err
		}
		ex.met.BytesFetched.Add(int64(len(payload)))
		ex.tr.Emit(obs.Event{Kind: obs.FetchDone, Stage: si.FromStage, Frag: part,
			Task: part, Exec: ex.id, Bytes: int64(len(payload))})
		return data.DecodeAll(coder, payload)
	}
	if ex.cfg.DisableCache || !si.Cached {
		recs, err := fetch()
		return recs, false, err
	}
	key := cacheKey{Vertex: si.FromVertex, Partition: part}
	if recs, ok := ex.cache.Get(key); ok {
		ex.met.CacheHits.Add(1)
		ex.tr.Emit(obs.Event{Kind: obs.CacheHit, Stage: si.FromStage, Frag: part,
			Task: part, Exec: ex.id, Note: "partition"})
		return recs, true, nil
	}
	ex.met.CacheMisses.Add(1)
	ex.tr.Emit(obs.Event{Kind: obs.CacheMiss, Stage: si.FromStage, Frag: part,
		Task: part, Exec: ex.id, Note: "partition"})
	recs, _, err := ex.flight.Do(key, func() ([]data.Record, error) {
		recs, err := fetch()
		if err != nil {
			return nil, err
		}
		ex.cache.Put(key, recs)
		return recs, nil
	})
	return recs, err == nil, err
}

// fetchBroadcast pulls every partition of a parent stage's output (a
// one-to-many side input) concurrently, with fan-out bounded by
// maxFetchWorkers. Cached broadcasts go through a singleflight group so
// concurrent task slots share one network fetch (§3.2.7: the data "only
// needs to be sent once to the executors").
//
// The boolean result matches fetchPartition: it reports whether the
// broadcast records are now resident in this executor's cache ("resident
// here"), which is what the master's cache index wants for steering —
// a hit, a fresh fill, and a singleflight-shared fill all qualify.
// (Previously a broadcast hit reported false while a partition hit
// reported true, so the index diverged for side-inputs.)
func (ex *Executor) fetchBroadcast(si core.StageInput, loc stageLoc, coder data.Coder) ([]data.Record, bool, error) {
	fetch := func() ([]data.Record, error) {
		ex.tr.Emit(obs.Event{Kind: obs.FetchStarted, Stage: si.FromStage, Frag: -1,
			Task: -1, Exec: ex.id, Note: "broadcast"})
		parts := make([][]data.Record, loc.nParts())
		var total int64
		err := fanout(loc.nParts(), maxFetchWorkers, func(part int) error {
			payload, err := fetchStagePart(ex.pool, ex.cas, ex.met, ex.job, si.FromStage, loc, part, ex.cfg.ReplicateStageOutputs)
			if err != nil {
				return err
			}
			ex.met.BytesFetched.Add(int64(len(payload)))
			atomic.AddInt64(&total, int64(len(payload)))
			parts[part], err = data.DecodeAll(coder, payload)
			return err
		})
		if err != nil {
			return nil, err
		}
		var recs []data.Record
		for _, p := range parts {
			recs = append(recs, p...)
		}
		ex.tr.Emit(obs.Event{Kind: obs.FetchDone, Stage: si.FromStage, Frag: -1,
			Task: -1, Exec: ex.id, Bytes: total, Note: "broadcast"})
		return recs, nil
	}

	if ex.cfg.DisableCache || !si.Cached {
		recs, err := fetch()
		return recs, false, err
	}
	key := cacheKey{Vertex: si.FromVertex, Partition: -1}
	if recs, ok := ex.cache.Get(key); ok {
		ex.met.CacheHits.Add(1)
		ex.tr.Emit(obs.Event{Kind: obs.CacheHit, Stage: si.FromStage, Frag: -1,
			Task: -1, Exec: ex.id, Note: "broadcast"})
		return recs, true, nil
	}
	ex.met.CacheMisses.Add(1)
	ex.tr.Emit(obs.Event{Kind: obs.CacheMiss, Stage: si.FromStage, Frag: -1,
		Task: -1, Exec: ex.id, Note: "broadcast"})
	recs, _, err := ex.flight.Do(key, func() ([]data.Record, error) {
		recs, err := fetch()
		if err != nil {
			return nil, err
		}
		ex.cache.Put(key, recs)
		return recs, nil
	})
	return recs, err == nil, err
}

// sendTerminal pushes a terminal transient task's output to the master
// collector; the acknowledged push doubles as the commit.
func (ex *Executor) sendTerminal(ps *core.PhysStage, frag *core.Fragment, spec taskSpec, outs map[dag.VertexID][]data.Record) {
	coder, err := dataflow.OutputCoder(ex.plan.Graph.Vertex(ps.Root))
	if err != nil {
		ex.send(evTaskFailed{ref: ex.ref(spec), Exec: ex.id, Err: err, Fatal: true})
		return
	}
	payload, err := data.EncodeAll(coder, outs[ps.Root])
	if err != nil {
		ex.send(evTaskFailed{ref: ex.ref(spec), Exec: ex.id, Err: err, Fatal: true})
		return
	}
	ex.tr.Emit(obs.Event{Kind: obs.PushStarted, Stage: spec.Stage, Frag: spec.Frag,
		Task: spec.Index, Attempt: spec.Attempt, Exec: ex.id, Bytes: int64(len(payload)),
		Note: "result"})
	f := &resultFrame{Job: ex.job, Stage: spec.Stage, Gen: spec.Gen, Index: spec.Index, Attempt: spec.Attempt, Payload: payload}
	if err := sendResult(ex.pool, ex.masterID, f); err != nil {
		if !ex.stopped() {
			ex.send(evTaskFailed{ref: ex.ref(spec), Exec: ex.id, Err: err})
		}
		return
	}
	ex.met.BytesPushed.Add(int64(len(payload)))
}

func isFatal(err error) bool {
	// Fetch and network errors are retryable (caused by evictions,
	// failures, or races with recovery); anything else — user function
	// errors, coder mismatches — is a job bug and aborts the run.
	return !isTransientErr(err)
}

func isTransientErr(err error) bool {
	for _, t := range []error{simnet.ErrNodeDown, simnet.ErrNoSuchNode, simnet.ErrConnClosed,
		simnet.ErrNotListening, simnet.ErrLimiterClosed, simnet.ErrInjected,
		errBlockNotFound, errPushRejected, errBreakerOpen, errRPCDeadline} {
		if errorsIs(err, t) {
			return true
		}
	}
	return false
}

// aggBuffer merges the boundary outputs of several tasks running on the
// same executor before pushing (§3.2.7 partial aggregation). Data escapes
// when MaxTasks outputs accumulated or MaxDelay elapsed.
type aggBuffer struct {
	ex       *Executor
	stage    int
	gen      int
	frag     int
	receiver []string
	accCoder data.Coder
	fn       dataflow.CombineFn
	global   bool

	mu     sync.Mutex
	tables []*exec.AccTable // per receiver
	cover  []senderRef
	timer  *time.Timer
}

func (ex *Executor) aggBufferFor(ps *core.PhysStage, spec taskSpec, accCoder data.Coder,
	fn dataflow.CombineFn, global bool) *aggBuffer {

	k := aggKey{Stage: spec.Stage, Gen: spec.Gen, Frag: spec.Frag}
	ex.mu.Lock()
	defer ex.mu.Unlock()
	b, ok := ex.aggbufs[k]
	if !ok {
		b = &aggBuffer{
			ex: ex, stage: spec.Stage, gen: spec.Gen, frag: spec.Frag,
			receiver: spec.Receivers, accCoder: accCoder, fn: fn, global: global,
		}
		b.reset()
		ex.aggbufs[k] = b
	}
	return b
}

func (b *aggBuffer) reset() {
	b.tables = make([]*exec.AccTable, len(b.receiver))
	for i := range b.tables {
		b.tables[i] = exec.NewAccTable(b.fn, b.global)
	}
	b.cover = nil
}

// deposit folds one task's per-receiver accumulator tables into the
// buffer and flushes if the task-count limit is reached.
func (b *aggBuffer) deposit(ref senderRef, perRecv []*exec.AccTable) {
	b.mu.Lock()
	for i, t := range perRecv {
		for _, r := range t.AccRecords() {
			b.tables[i].MergeAcc(r.Key, r.Value)
		}
	}
	b.cover = append(b.cover, ref)
	if len(b.cover) >= b.ex.cfg.aggMaxTasks() {
		tables, cover := b.take()
		b.mu.Unlock()
		b.push(tables, cover)
		return
	}
	if b.timer == nil {
		b.timer = time.AfterFunc(b.ex.cfg.aggMaxDelay(), b.flushTimer)
	}
	b.mu.Unlock()
}

func (b *aggBuffer) take() ([]*exec.AccTable, []senderRef) {
	tables, cover := b.tables, b.cover
	if b.timer != nil {
		b.timer.Stop()
		b.timer = nil
	}
	b.reset()
	return tables, cover
}

func (b *aggBuffer) flushTimer() {
	b.mu.Lock()
	b.timer = nil
	if len(b.cover) == 0 {
		b.mu.Unlock()
		return
	}
	tables, cover := b.take()
	b.mu.Unlock()
	b.push(tables, cover)
}

// attributeBytes splits total evenly across n covered tasks. Integer
// division alone drops up to n-1 bytes per frame, so the first task
// carries the remainder; the shares always sum exactly to total, keeping
// eviction-cost attribution in the profiler consistent with the byte
// counters.
func attributeBytes(total int64, n int) []int64 {
	shares := make([]int64, n)
	share := total / int64(n)
	for i := range shares {
		shares[i] = share
	}
	shares[0] += total - share*int64(n)
	return shares
}

// push sends one aggregated frame per receiver, then commits every
// covered task through the master.
func (b *aggBuffer) push(tables []*exec.AccTable, cover []senderRef) {
	ex := b.ex
	var wg sync.WaitGroup
	errs := make([]error, len(b.receiver))
	payloads := make([][]byte, len(b.receiver))
	var total int64
	for i := range b.receiver {
		payload, err := encodeAccTable(b.accCoder, tables[i])
		if err != nil {
			errs[i] = err
			continue
		}
		payloads[i] = payload
		total += int64(len(payload))
	}
	// Attribute the aggregated frame's bytes evenly across the covered
	// tasks so per-task trace spans still sum to the frame size.
	shares := attributeBytes(total, len(cover))
	for ci, c := range cover {
		ex.tr.Emit(obs.Event{Kind: obs.PushStarted, Stage: b.stage, Frag: b.frag,
			Task: c.Index, Attempt: c.Attempt, Exec: ex.id,
			Bytes: shares[ci], Note: "aggregated"})
	}
	for i := range b.receiver {
		if errs[i] != nil {
			continue
		}
		f := &pushFrame{
			Job: ex.job, Stage: b.stage, Gen: b.gen, RecvIdx: i, Frag: b.frag,
			Cover:    cover,
			Sections: []pushSection{{Tag: "", Aggregated: true, Payload: payloads[i]}},
		}
		wg.Add(1)
		go func(i int, f *pushFrame, n int) {
			defer wg.Done()
			if err := sendPush(ex.pool, b.receiver[i], f); err != nil {
				errs[i] = err
				return
			}
			ex.met.BytesPushed.Add(int64(n))
		}(i, f, len(payloads[i]))
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			if ex.stopped() {
				return
			}
			for _, c := range cover {
				ex.send(evTaskFailed{
					ref:  taskRef{Job: ex.job, Stage: b.stage, Gen: b.gen, Frag: b.frag, Index: c.Index, Attempt: c.Attempt},
					Exec: ex.id, Err: err, Fatal: isFatal(err),
				})
			}
			return
		}
	}
	for _, c := range cover {
		ex.send(newOutputCommitted(taskRef{Job: ex.job, Stage: b.stage, Gen: b.gen, Frag: b.frag, Index: c.Index, Attempt: c.Attempt}))
	}
}

func encodeAccTable(coder data.Coder, t *exec.AccTable) ([]byte, error) {
	return data.EncodeAll(coder, t.AccRecords())
}
