package runtime

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"sync"
	"time"

	"pado/internal/metrics"
	"pado/internal/obs"
)

// errRPCDeadline marks a data-plane operation attempt killed by the
// per-op deadline (FailureConfig.RPCDeadline). The attempt's connection
// was closed to unblock it, so the error is transport-shaped: retryable.
var errRPCDeadline = errors.New("runtime: rpc deadline exceeded")

// errBreakerOpen fails operations fast while a destination's circuit
// breaker is open. Treated like any transient network error by callers
// (retry elsewhere / relaunch), and reported to the master as a gray
// signal through heartbeat payloads.
var errBreakerOpen = errors.New("runtime: destination quarantined by circuit breaker")

// Breaker states.
const (
	brClosed = iota
	brOpen
	brHalfOpen
)

// destState is the per-destination policy state: circuit breaker plus
// retry-token budget. Guarded by rpcPolicy.mu.
type destState struct {
	state    int
	fails    int // consecutive failures while closed
	openedAt time.Time

	budget     float64
	lastRefill time.Time
}

// rpcPolicy is the unified data-plane RPC policy layered over one
// connection pool's retry-once (§ the pool preserves commit-after-all-
// acks exactly-once semantics; the policy only adds more attempts of
// operations that are already retry-safe):
//
//   - a per-operation deadline that closes the attempt's connection so
//     blocked pipe reads/writes unwind (simnet conns have no native
//     deadlines);
//   - exponential backoff with deterministic jitter between retries,
//     bounded by a per-destination refilling retry budget so a broken
//     peer never absorbs an unbounded retry storm;
//   - a per-destination circuit breaker (closed → open → half-open)
//     that fails operations fast while open and exposes the open set
//     for gray self-reporting via heartbeats.
type rpcPolicy struct {
	cfg  FailureConfig
	met  *metrics.Job
	emit *obs.Buf // breaker transition events (nil = off)

	mu    sync.Mutex
	rng   *rand.Rand
	dests map[string]*destState
}

func newRPCPolicy(cfg FailureConfig, from string, met *metrics.Job, emit *obs.Buf) *rpcPolicy {
	h := fnv.New64a()
	h.Write([]byte(from))
	return &rpcPolicy{
		cfg:   cfg,
		met:   met,
		emit:  emit,
		rng:   rand.New(rand.NewSource(int64(h.Sum64()))),
		dests: make(map[string]*destState),
	}
}

func (pol *rpcPolicy) dest(to string) *destState {
	d := pol.dests[to]
	if d == nil {
		d = &destState{budget: float64(pol.cfg.rpcRetryBudget()), lastRefill: time.Now()}
		pol.dests[to] = d
	}
	return d
}

// admit reports whether an operation toward to may start. An open
// breaker past its cooldown moves to half-open and admits probe traffic;
// within the cooldown everything fails fast.
func (pol *rpcPolicy) admit(to string) bool {
	pol.mu.Lock()
	defer pol.mu.Unlock()
	d := pol.dest(to)
	switch d.state {
	case brOpen:
		if time.Since(d.openedAt) < pol.cfg.breakerCooldown() {
			return false
		}
		d.state = brHalfOpen
		return true
	default:
		return true
	}
}

// success records a completed operation: the breaker closes (from any
// state) and the consecutive-failure count resets.
func (pol *rpcPolicy) success(to string) {
	pol.mu.Lock()
	d := pol.dest(to)
	wasOpen := d.state != brClosed
	d.state = brClosed
	d.fails = 0
	pol.mu.Unlock()
	if wasOpen {
		pol.emit.Emit(obs.Event{Kind: obs.BreakerClosed, Exec: to})
	}
}

// failure records a failed attempt; crossing the threshold (or any
// failure while half-open) opens the breaker.
func (pol *rpcPolicy) failure(to string) {
	pol.mu.Lock()
	d := pol.dest(to)
	d.fails++
	opened := false
	if d.state == brHalfOpen || (d.state == brClosed && d.fails >= pol.cfg.breakerThreshold()) {
		d.state = brOpen
		d.openedAt = time.Now()
		opened = true
	}
	pol.mu.Unlock()
	if opened {
		pol.met.Counter(metrics.NameBreakerOpens).Add(1)
		pol.emit.Emit(obs.Event{Kind: obs.BreakerOpened, Exec: to})
	}
}

// allowRetry spends one retry token for to, refilling the bucket first.
// No token, no retry: the caller propagates the last error.
func (pol *rpcPolicy) allowRetry(to string) bool {
	pol.mu.Lock()
	defer pol.mu.Unlock()
	d := pol.dest(to)
	now := time.Now()
	if refill := pol.cfg.rpcBudgetRefill(); refill > 0 {
		d.budget += float64(now.Sub(d.lastRefill)) / float64(refill)
		if cap := float64(pol.cfg.rpcRetryBudget()); d.budget > cap {
			d.budget = cap
		}
	}
	d.lastRefill = now
	if d.budget < 1 {
		return false
	}
	d.budget--
	return true
}

// backoff returns the jittered exponential delay before retry attempt n
// (0-based): base*2^n, capped, with ±50% deterministic jitter.
func (pol *rpcPolicy) backoff(n int) time.Duration {
	d := pol.cfg.rpcBackoffBase() << uint(n)
	if max := pol.cfg.rpcBackoffMax(); d > max {
		d = max
	}
	pol.mu.Lock()
	jitter := 0.5 + pol.rng.Float64()
	pol.mu.Unlock()
	return time.Duration(float64(d) * jitter)
}

// quarantined reports whether to's breaker is open or probing: fetch
// paths with replica holders route around such destinations.
func (pol *rpcPolicy) quarantined(to string) bool {
	if pol == nil {
		return false
	}
	pol.mu.Lock()
	defer pol.mu.Unlock()
	d := pol.dests[to]
	return d != nil && d.state != brClosed
}

// openDests lists destinations whose breakers are open or half-open, in
// sorted order — the gray signal carried by heartbeat payloads.
func (pol *rpcPolicy) openDests() []string {
	if pol == nil {
		return nil
	}
	pol.mu.Lock()
	var out []string
	for to, d := range pol.dests {
		if d.state != brClosed {
			out = append(out, to)
		}
	}
	pol.mu.Unlock()
	sort.Strings(out)
	return out
}

// run executes one operation toward to under the full policy: breaker
// admission, per-attempt deadline, and budgeted backoff retries. The
// pool's own reuse-retry still applies inside each attempt.
func (pol *rpcPolicy) run(p *connPool, op, to string, fn opFunc) error {
	if !pol.admit(to) {
		return fmt.Errorf("%s to %s: %w", op, to, errBreakerOpen)
	}
	deadline := pol.cfg.RPCDeadline
	var err error
	for attempt := 0; ; attempt++ {
		err = p.tryOnce(to, fn, deadline)
		if err == nil || isProtocolErr(err) {
			pol.success(to)
			return err
		}
		if errorsIs(err, errRPCDeadline) {
			pol.met.Counter(metrics.NameRPCDeadlineHits).Add(1)
		}
		pol.failure(to)
		if attempt >= pol.cfg.rpcMaxRetries() || !pol.allowRetry(to) {
			return err
		}
		if !pol.admit(to) {
			return err
		}
		d := pol.backoff(attempt)
		pol.met.Counter(metrics.NameRPCRetries).Add(1)
		pol.met.Counter(metrics.NameRPCRetryCausePrefix + op).Add(1)
		pol.met.Counter(metrics.NameRPCBackoffNS).Add(int64(d))
		time.Sleep(d)
	}
}
