package runtime

import (
	"context"
	"fmt"
	"time"

	"pado/internal/cluster"
	"pado/internal/core"
	"pado/internal/dag"
	"pado/internal/data"
	"pado/internal/dataflow"
	"pado/internal/metrics"
	"pado/internal/obs"
	"pado/internal/simnet"
)

// Result carries a finished job's terminal outputs and metrics.
type Result struct {
	// Outputs maps each terminal stage's root vertex to its records.
	Outputs map[dag.VertexID][]data.Record
	// Metrics summarizes the run.
	Metrics metrics.Snapshot
	// Plan is the compiled physical plan that was executed.
	Plan *core.Plan
	// Progress is the final replicated progress metadata (§3.2.6).
	Progress *Progress
}

// Run compiles the logical DAG with the Pado compiler and executes it on
// the cluster. Run owns the cluster's lifecycle: it starts the containers
// and stops everything on return, so each cluster value runs exactly one
// job (matching the paper's one-job-per-cluster experiments).
//
// If ctx expires the job is abandoned and the result reports TimedOut
// with the elapsed time, mirroring the paper's "does not finish for more
// than 90 minutes" observations.
func Run(ctx context.Context, cl *cluster.Cluster, g *dag.Graph, cfg Config) (*Result, error) {
	plan, err := core.Compile(g, cfg.Plan)
	if err != nil {
		return nil, err
	}
	cfg.Tracer.Buf().Emit(obs.Event{Kind: obs.PlanCompiled, Note: plan.Policy})
	return RunPlan(ctx, cl, plan, cfg)
}

// RunPlan executes an already compiled plan (used by ablations that
// modify placement before running).
func RunPlan(ctx context.Context, cl *cluster.Cluster, plan *core.Plan, cfg Config) (*Result, error) {
	met := &metrics.Job{}
	cfg.Tracer.FeedCounters(met)
	m := newMaster(cl, plan, cfg, met)

	stopCollector, err := m.startCollector()
	if err != nil {
		return nil, err
	}
	defer stopCollector()
	defer cl.Stop()
	defer m.pool.closeAll()

	if err := cl.Start(m); err != nil {
		return nil, err
	}

	start := time.Now()
	timedOut := false
loop:
	for !m.finished {
		select {
		case <-ctx.Done():
			timedOut = true
			break loop
		case err := <-m.overflow:
			m.abort(err)
		case ev := <-m.events:
			m.handle(ev)
		}
	}
	jct := time.Since(start)

	if m.failErr != nil {
		return nil, m.failErr
	}
	res := &Result{Plan: plan, Metrics: met.Snapshot(jct, timedOut), Progress: m.snapshotProgress()}
	if timedOut {
		return res, nil
	}

	outputs, err := m.collectOutputs()
	if err != nil {
		return nil, fmt.Errorf("runtime: collecting outputs: %w", err)
	}
	res.Outputs = outputs
	res.Metrics = met.Snapshot(jct, false)
	return res, nil
}

// startCollector serves the master node's data plane: terminal transient
// tasks push their results here.
func (m *Master) startCollector() (func(), error) {
	node := m.cl.MasterNode()
	l, err := node.Listen()
	if err != nil {
		return nil, err
	}
	stop := make(chan struct{})
	go func() {
		for {
			conn, err := l.Accept(stop)
			if err != nil {
				return
			}
			go m.handleCollectorConn(conn, stop)
		}
	}()
	var once func()
	done := false
	once = func() {
		if !done {
			done = true
			close(stop)
		}
	}
	return once, nil
}

func (m *Master) handleCollectorConn(conn *simnet.Conn, stop <-chan struct{}) {
	defer conn.Close()
	d := data.NewDecoder(conn)
	e := data.NewEncoder(conn)
	for {
		op, err := d.Byte()
		if err != nil {
			return
		}
		if op != frameResult {
			return
		}
		f, err := readResultFrame(d)
		if err != nil {
			return
		}
		select {
		case m.events <- evResult{Stage: f.Stage, Gen: f.Gen, Index: f.Index, Attempt: f.Attempt, Payload: f.Payload}:
		case <-stop:
			return
		}
		if e.Byte(respOK) != nil || e.Flush() != nil {
			return
		}
	}
}

// collectOutputs gathers terminal stage outputs: reserved stage outputs
// are fetched from their executors over the network; terminal transient
// results were already pushed to the collector.
func (m *Master) collectOutputs() (map[dag.VertexID][]data.Record, error) {
	out := make(map[dag.VertexID][]data.Record)
	for _, s := range m.stages {
		if !s.ps.Terminal() {
			continue
		}
		root := m.plan.Graph.Vertex(s.ps.Root)
		coder, err := dataflow.OutputCoder(root)
		if err != nil {
			return nil, err
		}
		var recs []data.Record
		if s.ps.RootReserved {
			for part, exID := range s.outputExecs {
				payload, err := fetchBlock(m.pool, exID, stageBlockID(s.ps.ID, s.gen, part))
				if err != nil {
					return nil, err
				}
				m.met.BytesFetched.Add(int64(len(payload)))
				part, err := data.DecodeAll(coder, payload)
				if err != nil {
					return nil, err
				}
				recs = append(recs, part...)
			}
		} else {
			for _, payload := range s.results {
				part, err := data.DecodeAll(coder, payload)
				if err != nil {
					return nil, err
				}
				recs = append(recs, part...)
			}
		}
		out[root.ID] = recs
	}
	return out, nil
}
