package runtime

import (
	"context"

	"pado/internal/cluster"
	"pado/internal/core"
	"pado/internal/dag"
	"pado/internal/data"
	"pado/internal/dataflow"
	"pado/internal/metrics"
)

// Result carries a finished job's terminal outputs and metrics.
type Result struct {
	// Outputs maps each terminal stage's root vertex to its records.
	Outputs map[dag.VertexID][]data.Record
	// Metrics summarizes the run.
	Metrics metrics.Snapshot
	// Plan is the compiled physical plan that was executed.
	Plan *core.Plan
	// Progress is the final replicated progress metadata (§3.2.6).
	Progress *Progress
}

// Run compiles the logical DAG with the Pado compiler and executes it on
// the cluster as the only job of a transient JobManager. Run owns the
// cluster's lifecycle: it starts the containers and stops everything on
// return, so each cluster value runs exactly one job (matching the
// paper's one-job-per-cluster experiments). Multi-job callers use
// NewJobManager + Submit instead.
//
// If ctx expires the job is abandoned and the result reports TimedOut
// with the elapsed time, mirroring the paper's "does not finish for more
// than 90 minutes" observations.
func Run(ctx context.Context, cl *cluster.Cluster, g *dag.Graph, cfg Config) (*Result, error) {
	plan, err := core.Compile(g, cfg.Plan)
	if err != nil {
		return nil, err
	}
	return RunPlan(ctx, cl, plan, cfg)
}

// RunPlan executes an already compiled plan (used by ablations that
// modify placement before running). It runs a single-job manager with
// admission control disabled, preserving the classic one-master-per-job
// behavior.
func RunPlan(ctx context.Context, cl *cluster.Cluster, plan *core.Plan, cfg Config) (*Result, error) {
	met := &metrics.Job{}
	cfg.Tracer.FeedCounters(met)
	jm, err := NewJobManager(cl, ManagerConfig{
		Tracer:     cfg.Tracer,
		Metrics:    met,
		EventQueue: cfg.EventQueue,
		Failure:    cfg.Failure,
		Commits:    cfg.Commits,
	})
	if err != nil {
		return nil, err
	}
	defer jm.Close()
	if cfg.OnManager != nil {
		cfg.OnManager(jm)
	}
	h, err := jm.SubmitPlan(plan, cfg, JobOptions{Metrics: met})
	if err != nil {
		return nil, err
	}
	return h.Wait(ctx)
}

// collectOutputs gathers one finished job's terminal stage outputs:
// reserved stage outputs are fetched from their executors over the
// network; terminal transient results were already pushed to the
// collector. Runs on a per-job goroutine after the job leaves the event
// loop, so j's state is no longer mutated concurrently.
func (jm *JobManager) collectOutputs(j *jobRun) (map[dag.VertexID][]data.Record, error) {
	out := make(map[dag.VertexID][]data.Record)
	for _, s := range j.stages {
		if !s.ps.Terminal() {
			continue
		}
		root := j.plan.Graph.Vertex(s.ps.Root)
		coder, err := dataflow.OutputCoder(root)
		if err != nil {
			return nil, err
		}
		var recs []data.Record
		if s.ps.RootReserved {
			// A skipped terminal stage has no outputExecs; its partitions
			// come straight from the commit store.
			loc := stageLoc{Gen: s.gen, Execs: s.outputExecs, Chunks: s.skipChunks}
			for part := 0; part < loc.nParts(); part++ {
				payload, err := fetchStagePart(jm.pool, jm.casClient(), j.met, j.id, s.ps.ID, loc, part, j.cfg.ReplicateStageOutputs)
				if err != nil {
					return nil, err
				}
				j.met.BytesFetched.Add(int64(len(payload)))
				part, err := data.DecodeAll(coder, payload)
				if err != nil {
					return nil, err
				}
				recs = append(recs, part...)
			}
		} else {
			for _, payload := range s.results {
				part, err := data.DecodeAll(coder, payload)
				if err != nil {
					return nil, err
				}
				recs = append(recs, part...)
			}
		}
		out[root.ID] = recs
	}
	return out, nil
}
