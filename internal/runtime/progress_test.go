package runtime

import (
	"context"
	"reflect"
	"testing"
	"time"

	"pado/internal/trace"
)

func TestProgressEncodeRoundTrip(t *testing.T) {
	in := &Progress{Stages: []StageProgress{
		{ID: 0, Gen: 1, Done: true, OutputExecs: []string{"r1", "r2"}},
		{ID: 1, Gen: 3, Done: false, OutputExecs: []string{}},
		{ID: 2, Gen: 0, Done: false},
	}}
	payload, err := in.Encode()
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeProgress(payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Stages) != 3 {
		t.Fatalf("stages = %d", len(out.Stages))
	}
	if !reflect.DeepEqual(out.Stages[0], in.Stages[0]) {
		t.Errorf("stage 0 = %+v", out.Stages[0])
	}
	if out.Stages[1].Done || out.Stages[1].Gen != 3 {
		t.Errorf("stage 1 = %+v", out.Stages[1])
	}
	if out.DoneCount() != 1 {
		t.Errorf("done count = %d", out.DoneCount())
	}
	if _, err := DecodeProgress([]byte{0xff, 0xff}); err == nil {
		t.Error("expected decode error on garbage")
	}
}

func TestProgressReplicatedOnCompletion(t *testing.T) {
	// After a successful run, the Result's progress snapshot must mark
	// every stage done with output locations for reserved roots.
	p, expect := buildWordCount(6, 200)
	cl := newTestCluster(t, 4, 2, trace.RateNone)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	res, err := Run(ctx, cl, p.Graph(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	checkWordCount(t, res, expect)
	if res.Progress == nil {
		t.Fatal("no progress snapshot")
	}
	if res.Progress.DoneCount() != len(res.Progress.Stages) {
		t.Errorf("progress marks %d/%d stages done",
			res.Progress.DoneCount(), len(res.Progress.Stages))
	}
	for _, s := range res.Progress.Stages {
		if res.Plan.Stages[s.ID].RootReserved && len(s.OutputExecs) == 0 {
			t.Errorf("stage %d done without output locations", s.ID)
		}
	}
	// Round trip the final snapshot through the wire format.
	payload, err := res.Progress.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeProgress(payload)
	if err != nil {
		t.Fatal(err)
	}
	if back.DoneCount() != res.Progress.DoneCount() {
		t.Error("round-tripped snapshot differs")
	}
}
