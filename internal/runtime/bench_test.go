package runtime

import (
	"fmt"
	"testing"

	"pado/internal/data"
	"pado/internal/metrics"
	"pado/internal/simnet"
)

// serveAck runs a data-plane server on nd that acknowledges every push
// and answers fetches from blocks (for benchmarks; unlike serveBlocks it
// accepts pushes).
func serveAck(b *testing.B, nd *simnet.Node, blocks map[string][]byte) {
	b.Helper()
	l, err := nd.Listen()
	if err != nil {
		b.Fatal(err)
	}
	go func() {
		for {
			conn, err := l.Accept(nil)
			if err != nil {
				return
			}
			go func(conn *simnet.Conn) {
				defer conn.Close()
				d := data.NewDecoder(connReader{conn})
				e := data.NewEncoder(conn)
				for {
					op, err := d.Byte()
					if err != nil {
						return
					}
					switch op {
					case framePush:
						if _, err := readPushFrame(d); err != nil {
							return
						}
						e.Byte(respOK)
					case frameFetch:
						id, err := d.String()
						if err != nil {
							return
						}
						if blk, ok := blocks[id]; ok {
							e.Byte(respOK)
							e.Bytes(blk)
						} else {
							e.Byte(respNo)
						}
					default:
						return
					}
					if e.Flush() != nil {
						return
					}
				}
			}(conn)
		}
	}()
}

func benchNet(b *testing.B, blocks map[string][]byte) *simnet.Network {
	b.Helper()
	net := simnet.New(simnet.Config{})
	if _, err := net.AddNode("client"); err != nil {
		b.Fatal(err)
	}
	srv, err := net.AddNode("server")
	if err != nil {
		b.Fatal(err)
	}
	serveAck(b, srv, blocks)
	return net
}

func benchFrame(payloadLen int) *pushFrame {
	payload := make([]byte, payloadLen)
	for i := range payload {
		payload[i] = byte(i)
	}
	return &pushFrame{
		Stage: 2, Gen: 1, RecvIdx: 0, Frag: 1,
		Cover:    []senderRef{{Index: 3, Attempt: 0}},
		Sections: []pushSection{{Tag: "", Payload: payload}},
	}
}

// BenchmarkPushRoundTrip measures one acknowledged push over a pooled
// connection — the steady-state cost of the boundary escape path.
func BenchmarkPushRoundTrip(b *testing.B) {
	net := benchNet(b, nil)
	pool := newConnPool(net, "client", &metrics.Job{})
	defer pool.closeAll()
	f := benchFrame(16 << 10)
	b.ReportAllocs()
	b.SetBytes(16 << 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sendPush(pool, "server", f); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFetchPooled and BenchmarkFetchFreshDial compare a pooled fetch
// against the pre-pool behavior of dialing (and building codec state) per
// operation.
func BenchmarkFetchPooled(b *testing.B) {
	blk := make([]byte, 16<<10)
	net := benchNet(b, map[string][]byte{"blk": blk})
	pool := newConnPool(net, "client", &metrics.Job{})
	defer pool.closeAll()
	b.ReportAllocs()
	b.SetBytes(int64(len(blk)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fetchBlock(pool, "server", "blk"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFetchFreshDial(b *testing.B) {
	blk := make([]byte, 16<<10)
	net := benchNet(b, map[string][]byte{"blk": blk})
	b.ReportAllocs()
	b.SetBytes(int64(len(blk)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		conn, err := net.Dial("client", "server")
		if err != nil {
			b.Fatal(err)
		}
		e := data.NewEncoder(conn)
		d := data.NewDecoder(conn)
		if err := e.Byte(frameFetch); err != nil {
			b.Fatal(err)
		}
		if err := e.String("blk"); err != nil {
			b.Fatal(err)
		}
		if err := e.Flush(); err != nil {
			b.Fatal(err)
		}
		resp, err := d.Byte()
		if err != nil || resp != respOK {
			b.Fatalf("resp %v %v", resp, err)
		}
		if _, err := d.Bytes(0); err != nil {
			b.Fatal(err)
		}
		conn.Close()
	}
}

// BenchmarkFrameEncode / BenchmarkFrameDecode measure push-frame codec
// cost in isolation (no network).
func BenchmarkFrameEncode(b *testing.B) {
	f := benchFrame(16 << 10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := encodeFrameBlock(f); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFrameDecode(b *testing.B) {
	blob, err := encodeFrameBlock(benchFrame(16 << 10))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.SetBytes(int64(len(blob)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := decodeFrameBlock(blob); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFanout measures the fan-out scheduler's overhead against the
// serial loop it replaces, at varying widths.
func BenchmarkFanout(b *testing.B) {
	for _, n := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := fanout(n, maxFetchWorkers, func(int) error { return nil }); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
