// Package bspline implements uniform cubic B-spline curve evaluation.
//
// The paper refines the Google trace's 5-minute memory-usage records into
// 1-minute records by B-spline curve fitting (§2.1, citing de Boor). This
// package provides the same refinement: treat the coarse samples as
// control points of a uniform cubic B-spline and evaluate the curve at a
// finer parameter step.
package bspline

// basis evaluates the four cubic B-spline basis functions at local
// parameter t in [0,1).
func basis(t float64) (b0, b1, b2, b3 float64) {
	u := 1 - t
	b0 = u * u * u / 6
	b1 = (3*t*t*t - 6*t*t + 4) / 6
	b2 = (-3*t*t*t + 3*t*t + 3*t + 1) / 6
	b3 = t * t * t / 6
	return
}

// Eval evaluates the clamped uniform cubic B-spline defined by the control
// points at parameter x in [0, len(points)-1]. Endpoints are clamped by
// repeating the first and last control points, so the curve interpolates
// them approximately.
func Eval(points []float64, x float64) float64 {
	n := len(points)
	switch n {
	case 0:
		return 0
	case 1:
		return points[0]
	}
	if x <= 0 {
		x = 0
	}
	if x >= float64(n-1) {
		x = float64(n - 1)
	}
	seg := int(x)
	if seg >= n-1 {
		seg = n - 2
	}
	t := x - float64(seg)
	p := func(i int) float64 {
		if i < 0 {
			i = 0
		}
		if i >= n {
			i = n - 1
		}
		return points[i]
	}
	b0, b1, b2, b3 := basis(t)
	return b0*p(seg-1) + b1*p(seg) + b2*p(seg+1) + b3*p(seg+2)
}

// Refine evaluates the spline at factor points per original interval,
// returning (len(points)-1)*factor+1 samples. Refine(s, 5) turns 5-minute
// samples into 1-minute samples.
func Refine(points []float64, factor int) []float64 {
	if factor <= 1 || len(points) < 2 {
		out := make([]float64, len(points))
		copy(out, points)
		return out
	}
	n := (len(points)-1)*factor + 1
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		out[i] = Eval(points, float64(i)/float64(factor))
	}
	return out
}
