package bspline

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEvalDegenerate(t *testing.T) {
	if got := Eval(nil, 0.5); got != 0 {
		t.Errorf("empty spline = %v", got)
	}
	if got := Eval([]float64{7}, 3); got != 7 {
		t.Errorf("single point = %v, want 7", got)
	}
}

func TestEvalConstantSeries(t *testing.T) {
	pts := []float64{5, 5, 5, 5, 5}
	for x := 0.0; x <= 4; x += 0.25 {
		if got := Eval(pts, x); math.Abs(got-5) > 1e-12 {
			t.Errorf("Eval(const, %v) = %v, want 5", x, got)
		}
	}
}

func TestEvalLinearSeries(t *testing.T) {
	// A cubic B-spline reproduces linear control polygons exactly in
	// the interior.
	pts := []float64{0, 1, 2, 3, 4, 5}
	for x := 1.0; x <= 4; x += 0.5 {
		if got := Eval(pts, x); math.Abs(got-x) > 1e-9 {
			t.Errorf("Eval(linear, %v) = %v", x, got)
		}
	}
}

func TestEvalClampsRange(t *testing.T) {
	pts := []float64{1, 2, 3}
	if Eval(pts, -10) != Eval(pts, 0) {
		t.Error("x below range should clamp to 0")
	}
	if Eval(pts, 10) != Eval(pts, 2) {
		t.Error("x above range should clamp to end")
	}
}

func TestRefineLength(t *testing.T) {
	for _, tc := range []struct {
		n, factor, want int
	}{
		{10, 5, 46},
		{2, 5, 6},
		{5, 1, 5},
		{1, 5, 1},
	} {
		out := Refine(make([]float64, tc.n), tc.factor)
		if len(out) != tc.want {
			t.Errorf("Refine(%d pts, %d) len = %d, want %d", tc.n, tc.factor, len(out), tc.want)
		}
	}
}

func TestRefineWithinConvexHull(t *testing.T) {
	// B-spline curves stay inside the convex hull of their control
	// points.
	check := func(pts []float64) bool {
		if len(pts) < 2 {
			return true
		}
		lo, hi := pts[0], pts[0]
		for _, p := range pts {
			lo, hi = math.Min(lo, p), math.Max(hi, p)
		}
		for _, v := range Refine(pts, 4) {
			if v < lo-1e-9 || v > hi+1e-9 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(func(raw []float64) bool {
		pts := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e9 {
				pts = append(pts, v)
			}
		}
		return check(pts)
	}, cfg); err != nil {
		t.Error(err)
	}
}

func TestRefineSmoothsJitter(t *testing.T) {
	// Smoothing property: total variation of the refined curve never
	// exceeds that of the control polygon by more than epsilon.
	pts := []float64{0, 1, 0, 1, 0, 1, 0, 1}
	tv := func(s []float64) float64 {
		var v float64
		for i := 1; i < len(s); i++ {
			v += math.Abs(s[i] - s[i-1])
		}
		return v
	}
	if got, want := tv(Refine(pts, 5)), tv(pts); got > want+1e-9 {
		t.Errorf("refined total variation %v exceeds control polygon %v", got, want)
	}
}
