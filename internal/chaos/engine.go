package chaos

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"pado/internal/cluster"
	"pado/internal/obs"
	"pado/internal/simnet"
)

// Engine evaluates a Plan against a live run. It taps the run's obs
// tracer to watch events, matches triggers on the emitting goroutines
// (cheaply, under one mutex), and applies faults from a dedicated
// injector goroutine so that a fault's side effects (eviction callbacks,
// replacement allocations) never run on the event-emitting path.
//
// Engine implements the runtime's ChaosHook interface for control-plane
// faults, so it can be handed to runtime.Config.Chaos directly.
type Engine struct {
	plan *Plan
	cl   *cluster.Cluster
	tr   *obs.Buf
	trc  *obs.Tracer

	mu       sync.Mutex
	rules    []*ruleState
	byID     map[string]*ruleState
	launched map[[2]int]map[[2]int]bool // (job, stage) -> launched (frag, task) set
	commits  []*commitFault
	log      []Injection
	removals []func()
	stopped  bool

	actions chan action
	stop    chan struct{}
	done    chan struct{}
}

type ruleState struct {
	rule    *Rule
	kind    obs.Kind
	armed   bool
	fired   bool
	matches int
	matched map[[3]int]bool // distinct (job, frag, task) matches, for Fraction
}

// action is one fault ready to apply, with the triggering event's
// executor for "@event" targeting.
type action struct {
	rule *Rule
	exec string
}

// commitFault is an installed control-plane perturbation consulted on
// every commit relay.
type commitFault struct {
	rule      *Rule
	remaining int // relays left to perturb; -1 = unlimited
}

// Injection records one applied fault for reports.
type Injection struct {
	Rule   string
	Op     string
	Target string
	Detail string
}

// String renders one injection.
func (i Injection) String() string {
	s := i.Rule + ": " + i.Op
	if i.Target != "" {
		s += " " + i.Target
	}
	if i.Detail != "" {
		s += " (" + i.Detail + ")"
	}
	return s
}

// NewEngine builds an engine for one run on cl. Call Attach with the
// run's tracer before starting the job, and Stop after it ends.
func NewEngine(plan *Plan, cl *cluster.Cluster) *Engine {
	e := &Engine{
		plan:     plan,
		cl:       cl,
		byID:     make(map[string]*ruleState),
		launched: make(map[[2]int]map[[2]int]bool),
		actions:  make(chan action, 64),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	for i := range plan.Rules {
		r := &plan.Rules[i]
		rs := &ruleState{rule: r, matched: make(map[[3]int]bool)}
		if r.Trigger.On != "" {
			rs.kind, _ = obs.ParseKind(r.Trigger.On)
		}
		e.rules = append(e.rules, rs)
		e.byID[r.ID] = rs
	}
	return e
}

// Attach hooks the engine into tr's live event stream and starts the
// injector. Rules without an After dependency arm immediately; those
// with an empty On fire at once.
func (e *Engine) Attach(tr *obs.Tracer) {
	e.trc = tr
	e.tr = tr.Buf()
	go e.runInjector()
	e.mu.Lock()
	var fire []action
	for _, rs := range e.rules {
		if rs.rule.Trigger.After == "" {
			e.arm(rs, "", &fire)
		}
	}
	e.mu.Unlock()
	e.dispatch(fire)
	tr.SetTap(e.tap)
}

// Stop detaches the tap, stops the injector, and removes any still
// installed network faults. Idempotent in effect; call once.
func (e *Engine) Stop() {
	e.mu.Lock()
	if e.stopped {
		e.mu.Unlock()
		return
	}
	e.stopped = true
	removals := e.removals
	e.removals = nil
	e.mu.Unlock()

	if e.trc != nil {
		e.trc.SetTap(nil)
	}
	close(e.stop)
	<-e.done
	for _, rm := range removals {
		rm()
	}
}

// Injections returns the applied-fault log in application order.
func (e *Engine) Injections() []Injection {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]Injection(nil), e.log...)
}

// arm marks rs armed; empty-On rules fire immediately. Callers hold e.mu
// and dispatch the returned actions after unlocking.
func (e *Engine) arm(rs *ruleState, exec string, fire *[]action) {
	if rs.armed || rs.fired {
		return
	}
	rs.armed = true
	if rs.rule.Trigger.On == "" {
		e.fire(rs, exec, fire)
	}
}

// fire marks rs fired, arms its dependents, and queues its fault.
// Callers hold e.mu.
func (e *Engine) fire(rs *ruleState, exec string, fire *[]action) {
	if rs.fired {
		return
	}
	rs.fired = true
	*fire = append(*fire, action{rule: rs.rule, exec: exec})
	for _, dep := range e.rules {
		if dep.rule.Trigger.After == rs.rule.ID {
			e.arm(dep, exec, fire)
		}
	}
}

// dispatch hands fired rules to the injector, honoring per-rule delays.
func (e *Engine) dispatch(fire []action) {
	for _, act := range fire {
		if d := act.rule.Trigger.Delay.D(); d > 0 {
			act := act
			time.AfterFunc(d, func() { e.enqueue(act) })
			continue
		}
		e.enqueue(act)
	}
}

func (e *Engine) enqueue(act action) {
	select {
	case e.actions <- act:
	case <-e.stop:
	}
}

// tap observes every emitted event. It runs on the emitting goroutine
// (the master loop, executors), so it only updates trigger state and
// queues work; faults are applied by the injector goroutine.
func (e *Engine) tap(ev obs.Event) {
	e.mu.Lock()
	if e.stopped {
		e.mu.Unlock()
		return
	}
	if ev.Kind == obs.TaskLaunched && ev.Frag >= 0 {
		key := [2]int{ev.Job, ev.Stage}
		set := e.launched[key]
		if set == nil {
			set = make(map[[2]int]bool)
			e.launched[key] = set
		}
		set[[2]int{ev.Frag, ev.Task}] = true
	}
	var fire []action
	for _, rs := range e.rules {
		if !rs.armed || rs.fired || rs.rule.Trigger.On == "" || rs.kind != ev.Kind {
			continue
		}
		t := &rs.rule.Trigger
		if !jobMatches(t.Job, ev.Job) {
			continue
		}
		if t.Stage != Any && t.Stage != ev.Stage {
			continue
		}
		if t.Frag != Any && t.Frag != ev.Frag {
			continue
		}
		if t.Task != Any && t.Task != ev.Task {
			continue
		}
		if t.ExecPrefix != "" && !strings.HasPrefix(ev.Exec, t.ExecPrefix) {
			continue
		}
		if t.NoteContains != "" && !strings.Contains(ev.Note, t.NoteContains) {
			continue
		}
		rs.matches++
		if t.Fraction > 0 {
			rs.matched[[3]int{ev.Job, ev.Frag, ev.Task}] = true
			// The denominator is the matched event's own job, so a
			// wildcard-job fraction trigger still measures progress
			// within one job's stage rather than across the fleet.
			total := len(e.launched[[2]int{ev.Job, t.Stage}])
			if total == 0 || float64(len(rs.matched)) < t.Fraction*float64(total) {
				continue
			}
		} else {
			count := t.Count
			if count <= 0 {
				count = 1
			}
			if rs.matches < count {
				continue
			}
		}
		e.fire(rs, ev.Exec, &fire)
	}
	e.mu.Unlock()
	e.dispatch(fire)
}

func (e *Engine) runInjector() {
	defer close(e.done)
	for {
		select {
		case <-e.stop:
			return
		case act := <-e.actions:
			e.apply(act)
		}
	}
}

// apply executes one fault on the injector goroutine.
func (e *Engine) apply(act action) {
	f := &act.rule.Fault
	switch f.Op {
	case OpEvict:
		id := e.pickTarget(f.Target, act.exec, cluster.Transient)
		if id == "" {
			e.record(act.rule, "", "no live transient container")
			return
		}
		err := e.cl.EvictNow(id)
		e.record(act.rule, id, errDetail(err))
	case OpStorm:
		n := f.Count
		if n <= 0 {
			n = 2
		}
		ids := e.liveIDs(cluster.Transient)
		if len(ids) > n {
			ids = ids[:n]
		}
		for _, id := range ids {
			e.cl.EvictNow(id)
		}
		e.record(act.rule, strings.Join(ids, ","), fmt.Sprintf("%d evicted", len(ids)))
	case OpFailReserved:
		id := e.pickTarget(f.Target, act.exec, cluster.Reserved)
		if id == "" {
			e.record(act.rule, "", "no live reserved container")
			return
		}
		err := e.cl.FailReserved(id, !f.NoReplace)
		e.record(act.rule, id, errDetail(err))
	case OpLink, OpDialFail:
		lf := simnet.LinkFault{From: f.From, To: f.To}
		if f.Op == OpDialFail {
			lf.FailDial = true
		} else {
			lf.ExtraLatency = f.ExtraLatency.D()
			lf.DropEvery = f.DropEvery
		}
		remove := e.cl.Net().InjectFault(lf)
		if w := f.Window.D(); w > 0 {
			time.AfterFunc(w, remove)
		} else {
			e.mu.Lock()
			e.removals = append(e.removals, remove)
			e.mu.Unlock()
		}
		e.record(act.rule, f.From+"->"+f.To, linkDetail(f))
	case OpKillSilent:
		id := e.pickTarget(f.Target, act.exec, cluster.Transient)
		if id == "" {
			e.record(act.rule, "", "no live transient container")
			return
		}
		err := e.cl.KillSilently(id, !f.NoReplace)
		e.record(act.rule, id, errDetail(err))
	case OpHang:
		id := e.pickTarget(f.Target, act.exec, cluster.Transient)
		if id == "" {
			e.record(act.rule, "", "no live transient container")
			return
		}
		if !e.cl.Net().SetWedged(id, true) {
			e.record(act.rule, id, "no such node")
			return
		}
		if w := f.Window.D(); w > 0 {
			time.AfterFunc(w, func() { e.cl.Net().SetWedged(id, false) })
		}
		e.record(act.rule, id, fmt.Sprintf("wedged window=%v", f.Window.D()))
	case OpGray:
		id := e.pickTarget(f.Target, act.exec, cluster.Transient)
		if id == "" {
			e.record(act.rule, "", "no live transient container")
			return
		}
		// Break the node's data plane both ways but spare its master
		// links: it keeps heartbeating while refusing data.
		rmOut := e.cl.Net().InjectFault(simnet.LinkFault{
			From: id, ExceptTo: "master", DropEvery: 1, FailDial: true})
		rmIn := e.cl.Net().InjectFault(simnet.LinkFault{
			To: id, ExceptFrom: "master", DropEvery: 1, FailDial: true})
		e.retire(f.Window.D(), rmOut, rmIn)
		e.record(act.rule, id, fmt.Sprintf("gray window=%v", f.Window.D()))
	case OpPartition:
		remove := e.cl.Net().InjectFault(simnet.LinkFault{
			From: f.From, To: f.To, DropEvery: 1, FailDial: true})
		e.retire(f.Window.D(), remove)
		e.record(act.rule, f.From+"->"+f.To, fmt.Sprintf("partition window=%v", f.Window.D()))
	case OpCommitDelay, OpCommitDup:
		cf := &commitFault{rule: act.rule, remaining: -1}
		if f.Commits > 0 {
			cf.remaining = f.Commits
		}
		e.mu.Lock()
		e.commits = append(e.commits, cf)
		e.mu.Unlock()
		e.record(act.rule, "", commitDetail(f))
	}
}

// retire schedules fault removals: after window when positive, else at
// engine Stop.
func (e *Engine) retire(window time.Duration, removes ...func()) {
	if window > 0 {
		time.AfterFunc(window, func() {
			for _, rm := range removes {
				rm()
			}
		})
		return
	}
	e.mu.Lock()
	e.removals = append(e.removals, removes...)
	e.mu.Unlock()
}

// record logs an applied fault and emits it as a first-class obs event,
// so traces and timelines show when the injection landed.
func (e *Engine) record(rule *Rule, target, detail string) {
	inj := Injection{Rule: rule.ID, Op: rule.Fault.Op, Target: target, Detail: detail}
	e.mu.Lock()
	e.log = append(e.log, inj)
	e.mu.Unlock()
	note := rule.ID + " " + rule.Fault.Op
	if detail != "" {
		note += " " + detail
	}
	e.tr.Emit(obs.Event{Kind: obs.ChaosInjected, Stage: Any, Frag: Any, Task: Any,
		Exec: target, Note: note})
}

// pickTarget resolves a fault's container: explicit id, the triggering
// event's executor ("@event"), or the lowest-numbered live container of
// the wanted kind.
func (e *Engine) pickTarget(target, exec string, kind cluster.Kind) string {
	switch {
	case target == "@event":
		return exec
	case target != "":
		return target
	}
	ids := e.liveIDs(kind)
	if len(ids) == 0 {
		return ""
	}
	return ids[0]
}

// liveIDs lists live containers of one kind in deterministic (numeric)
// order — cluster.Containers snapshots a map.
func (e *Engine) liveIDs(kind cluster.Kind) []string {
	cs := e.cl.Containers(kind)
	ids := make([]string, 0, len(cs))
	for _, c := range cs {
		ids = append(ids, c.ID)
	}
	sort.Slice(ids, func(i, j int) bool {
		if len(ids[i]) != len(ids[j]) {
			return len(ids[i]) < len(ids[j]) // "t2" before "t10"
		}
		return ids[i] < ids[j]
	})
	return ids
}

// CommitRelay implements the runtime's ChaosHook: installed commit
// faults delay and/or duplicate the manager's commit relays, optionally
// scoped to one job's protocol.
func (e *Engine) CommitRelay(job, stage, frag, task, attempt, recvIdx int) (time.Duration, int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	var delay time.Duration
	dups := 0
	for _, cf := range e.commits {
		f := &cf.rule.Fault
		if !jobMatches(f.Job, job) {
			continue
		}
		if f.Stage != Any && f.Stage != stage {
			continue
		}
		if cf.remaining == 0 {
			continue
		}
		if cf.remaining > 0 {
			cf.remaining--
		}
		switch f.Op {
		case OpCommitDelay:
			delay += f.Delay.D()
		case OpCommitDup:
			n := f.Count
			if n <= 0 {
				n = 1
			}
			dups += n
		}
	}
	return delay, dups
}

func errDetail(err error) string {
	if err != nil {
		return err.Error()
	}
	return ""
}

func linkDetail(f *Fault) string {
	if f.Op == OpDialFail {
		return fmt.Sprintf("dials fail, window=%v", f.Window.D())
	}
	return fmt.Sprintf("latency+%v drop=1/%d window=%v", f.ExtraLatency.D(), f.DropEvery, f.Window.D())
}

func commitDetail(f *Fault) string {
	if f.Op == OpCommitDelay {
		return fmt.Sprintf("stage=%d delay=%v", f.Stage, f.Delay.D())
	}
	n := f.Count
	if n <= 0 {
		n = 1
	}
	return fmt.Sprintf("stage=%d dups=%d", f.Stage, n)
}
