// Package chaos is a deterministic fault-injection engine and protocol
// invariant checker for the eviction-tolerance path.
//
// The paper's correctness claims (§3.2.5–§3.2.6) are about worst-moment
// interleavings — a transient container evicted mid-push, a reserved
// container lost while recovery is already replaying ancestors — which
// the stochastic lifetime traces in internal/trace only hit by luck. A
// chaos.Plan scripts those exact schedules: each rule couples a trigger
// (a predicate over the live obs event stream: "the 3rd push_started of
// stage 2", "when half of stage 1's tasks have committed", "200ms after
// the first relaunch") to a fault spanning one of three layers:
//
//   - cluster: targeted eviction, correlated mass-eviction storms, and
//     reserved-container failure (optionally during recovery);
//   - simnet: per-link extra latency, deterministic chunk drops, and
//     dial failures, installed/removed at runtime;
//   - runtime control plane: delayed or duplicated commit relays, to
//     stress the §3.2.5 output-commit protocol.
//
// After the run, chaos.Check replays the merged obs trace and asserts
// the protocol invariants; a test then compares job output byte-for-byte
// against a fault-free golden run.
package chaos

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"pado/internal/obs"
)

// Any is the wildcard value for Stage/Frag/Task trigger fields.
const Any = -1

// Duration marshals as a Go duration string ("200ms") in plan JSON.
type Duration time.Duration

// D converts to a time.Duration.
func (d Duration) D() time.Duration { return time.Duration(d) }

// MarshalJSON implements json.Marshaler.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON implements json.Unmarshaler.
func (d *Duration) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	v, err := time.ParseDuration(s)
	if err != nil {
		return fmt.Errorf("chaos: bad duration %q: %w", s, err)
	}
	*d = Duration(v)
	return nil
}

// Trigger decides when a rule fires. All set fields must match; a rule
// fires at most once.
type Trigger struct {
	// On names the obs event kind to match ("push_started",
	// "stage_scheduled", ...). Empty means the rule fires as soon as it
	// is armed — at job start, or the instant its After dependency fires
	// — which combined with Delay expresses purely timed faults.
	On string `json:"on,omitempty"`

	// Job filters the matched event's job id on a multi-job manager.
	// Both Any (-1) and 0 match every job — 0 so that Go struct
	// literals written for single-job runs keep firing — while a
	// positive Job targets exactly that job's events.
	Job int `json:"job,omitempty"`

	// Stage, Frag, and Task filter the matched event's coordinates; Any
	// (-1) matches everything. JSON omitting a field means Any.
	Stage int `json:"stage,omitempty"`
	Frag  int `json:"frag,omitempty"`
	Task  int `json:"task,omitempty"`

	// ExecPrefix filters on the event's executor id prefix ("t" = any
	// transient, "r3" = that container).
	ExecPrefix string `json:"exec_prefix,omitempty"`
	// NoteContains filters on the event's note substring.
	NoteContains string `json:"note_contains,omitempty"`

	// Count fires the rule on the Count-th matching event (default 1).
	Count int `json:"count,omitempty"`

	// Fraction, when > 0, fires once the matched events cover at least
	// this fraction of the stage's launched tasks (distinct (frag, task)
	// pairs; the denominator is tracked from task_launched events).
	// Requires Stage to be set. "When stage 1 commits half its tasks":
	// {on: "push_committed", stage: 1, fraction: 0.5}.
	Fraction float64 `json:"fraction,omitempty"`

	// After names a rule that must have fired before this one arms.
	After string `json:"after,omitempty"`

	// Delay postpones the fault this long after the trigger matches.
	Delay Duration `json:"delay,omitempty"`
}

// UnmarshalJSON defaults Job/Stage/Frag/Task to Any so that omitting a
// field in a plan file means "match everything", not "match 0".
func (t *Trigger) UnmarshalJSON(b []byte) error {
	type raw Trigger
	r := raw{Job: Any, Stage: Any, Frag: Any, Task: Any}
	if err := json.Unmarshal(b, &r); err != nil {
		return err
	}
	*t = Trigger(r)
	return nil
}

// On returns a wildcard trigger matching events of the named kind, for
// building plans in Go (where struct-literal zero values would otherwise
// mean stage/frag/task 0).
func On(kind string) Trigger {
	return Trigger{On: kind, Job: Any, Stage: Any, Frag: Any, Task: Any}
}

// jobMatches reports whether a rule's job selector accepts an event's
// job id. Any and 0 are both wildcards (see Trigger.Job).
func jobMatches(sel, job int) bool { return sel == Any || sel == 0 || sel == job }

// Fault operations.
const (
	// OpEvict evicts one transient container (cluster replaces it).
	OpEvict = "evict"
	// OpStorm evicts Count transient containers at once (a spot-price
	// spike taking out a correlated slice of the market).
	OpStorm = "storm"
	// OpFailReserved fails a reserved container; NoReplace withholds the
	// replacement.
	OpFailReserved = "fail-reserved"
	// OpLink installs a simnet.LinkFault adding ExtraLatency and/or
	// dropping every DropEvery-th chunk on From->To links for Window.
	OpLink = "link"
	// OpDialFail fails From->To dials for Window.
	OpDialFail = "dial-fail"
	// OpCommitDelay delays the master's commit relays to receivers.
	OpCommitDelay = "commit-delay"
	// OpCommitDup duplicates the master's commit relays (Count extra
	// copies, default 1).
	OpCommitDup = "commit-dup"
	// OpKillSilent removes a container with no eviction or failure
	// announcement (the cluster still allocates a replacement unless
	// NoReplace): only the heartbeat failure detector can notice.
	OpKillSilent = "kill-silent"
	// OpHang wedges a container's node: writes touching it block with
	// connections held open — no errors, no EOF, no announcement. Window
	// un-wedges it later (0 = wedged until quarantined or run end).
	OpHang = "hang"
	// OpGray breaks a container's data plane in both directions (every
	// chunk dropped, every dial failed) while sparing its links to the
	// master node, so it keeps heartbeating while refusing data — the
	// classic gray failure. Targeting is by node-id prefix, so plans on
	// clusters with >= 10 containers should use unambiguous ids.
	OpGray = "gray"
	// OpPartition breaks From->To links directionally (chunks dropped,
	// dials failed) for Window; the reverse direction stays healthy — an
	// asymmetric partition — unless a second rule breaks it too.
	OpPartition = "partition"
)

// Fault is the action half of a rule.
type Fault struct {
	// Op selects the fault operation (Op* constants).
	Op string `json:"op"`

	// Target picks the container for evict/fail-reserved: an explicit
	// container id, "@event" for the triggering event's executor, or
	// empty for the lowest-numbered live container of the relevant kind.
	Target string `json:"target,omitempty"`

	// Count sizes storms (containers evicted, default 2) and commit-dup
	// (extra copies, default 1).
	Count int `json:"count,omitempty"`

	// NoReplace withholds the replacement container on fail-reserved.
	NoReplace bool `json:"no_replace,omitempty"`

	// From and To are node-id prefixes selecting links for link and
	// dial-fail ("" matches every node).
	From string `json:"from,omitempty"`
	To   string `json:"to,omitempty"`
	// ExtraLatency and DropEvery parameterize link faults.
	ExtraLatency Duration `json:"extra_latency,omitempty"`
	DropEvery    int      `json:"drop_every,omitempty"`
	// Window bounds how long a link/dial-fail fault stays installed
	// (0 = until the job ends).
	Window Duration `json:"window,omitempty"`

	// Job filters commit-delay/commit-dup to one job on a multi-job
	// manager (Any and 0 both mean all jobs, like Trigger.Job).
	Job int `json:"job,omitempty"`
	// Stage filters commit-delay/commit-dup to one stage (Any = all).
	Stage int `json:"stage,omitempty"`
	// Delay is the commit-delay amount.
	Delay Duration `json:"delay,omitempty"`
	// Commits bounds how many commit relays a commit fault perturbs
	// (0 = all of them while installed).
	Commits int `json:"commits,omitempty"`
}

// UnmarshalJSON defaults Job and Stage to Any.
func (f *Fault) UnmarshalJSON(b []byte) error {
	type raw Fault
	r := raw{Job: Any, Stage: Any}
	if err := json.Unmarshal(b, &r); err != nil {
		return err
	}
	*f = Fault(r)
	return nil
}

// Rule couples one trigger to one fault.
type Rule struct {
	// ID names the rule for After-chaining and reports. Empty IDs are
	// assigned "rule<N>" by Validate.
	ID      string  `json:"id,omitempty"`
	Trigger Trigger `json:"trigger"`
	Fault   Fault   `json:"fault"`
}

// Plan is a scripted fault schedule.
type Plan struct {
	// Name labels the plan in reports.
	Name  string `json:"name,omitempty"`
	Rules []Rule `json:"rules"`
}

// Load reads and validates a plan file.
func Load(path string) (*Plan, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Parse(b)
}

// Parse decodes and validates plan JSON.
func Parse(b []byte) (*Plan, error) {
	var p Plan
	if err := json.Unmarshal(b, &p); err != nil {
		return nil, fmt.Errorf("chaos: parsing plan: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// Validate checks the plan and assigns missing rule IDs.
func (p *Plan) Validate() error {
	ids := make(map[string]bool)
	for i := range p.Rules {
		r := &p.Rules[i]
		if r.ID == "" {
			r.ID = fmt.Sprintf("rule%d", i)
		}
		if ids[r.ID] {
			return fmt.Errorf("chaos: duplicate rule id %q", r.ID)
		}
		ids[r.ID] = true
	}
	for i := range p.Rules {
		r := &p.Rules[i]
		if r.Trigger.On != "" {
			if _, ok := obs.ParseKind(r.Trigger.On); !ok {
				return fmt.Errorf("chaos: rule %q: unknown event kind %q", r.ID, r.Trigger.On)
			}
		}
		if r.Trigger.Fraction < 0 || r.Trigger.Fraction > 1 {
			return fmt.Errorf("chaos: rule %q: fraction %v out of [0,1]", r.ID, r.Trigger.Fraction)
		}
		if r.Trigger.Fraction > 0 && r.Trigger.Stage == Any {
			return fmt.Errorf("chaos: rule %q: fraction triggers need a stage", r.ID)
		}
		if r.Trigger.After != "" {
			if !ids[r.Trigger.After] {
				return fmt.Errorf("chaos: rule %q: after references unknown rule %q", r.ID, r.Trigger.After)
			}
			if r.Trigger.After == r.ID {
				return fmt.Errorf("chaos: rule %q: after references itself", r.ID)
			}
		}
		switch r.Fault.Op {
		case OpEvict, OpStorm, OpFailReserved, OpDialFail, OpKillSilent, OpHang, OpGray:
		case OpPartition:
			if r.Fault.From == "" && r.Fault.To == "" {
				return fmt.Errorf("chaos: rule %q: partition needs from or to", r.ID)
			}
		case OpLink:
			if r.Fault.ExtraLatency == 0 && r.Fault.DropEvery == 0 {
				return fmt.Errorf("chaos: rule %q: link fault needs extra_latency or drop_every", r.ID)
			}
		case OpCommitDelay:
			if r.Fault.Delay == 0 {
				return fmt.Errorf("chaos: rule %q: commit-delay needs delay", r.ID)
			}
		case OpCommitDup:
		default:
			return fmt.Errorf("chaos: rule %q: unknown fault op %q", r.ID, r.Fault.Op)
		}
	}
	return nil
}
