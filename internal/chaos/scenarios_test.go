package chaos_test

import (
	"context"
	"math"
	"sync"
	"testing"
	"time"

	"pado/internal/chaos"
	"pado/internal/cluster"
	"pado/internal/dag"
	"pado/internal/data"
	"pado/internal/dataflow"
	"pado/internal/engines/sparklike"
	"pado/internal/metrics"
	"pado/internal/obs"
	"pado/internal/runtime"
	"pado/internal/trace"
	"pado/internal/vtime"
	"pado/internal/workloads"
)

// The chaos scenario matrix: scripted worst-moment fault schedules over
// small MR and MLR jobs on an otherwise eviction-free cluster (RateNone:
// every fault comes from the plan). Each run ends with the invariant
// checker over the merged trace; MR runs also compare output
// byte-for-byte against a fault-free golden run.

const scenarioSeed = 77

func newScenarioCluster(t testing.TB, transient, reserved int) *cluster.Cluster {
	t.Helper()
	cl, err := cluster.New(cluster.Config{
		Transient:   transient,
		Reserved:    reserved,
		Slots:       4,
		Lifetimes:   trace.Lifetimes(trace.RateNone),
		Scale:       vtime.NewScale(50 * time.Millisecond),
		MinLifetime: 30 * time.Millisecond,
		Seed:        scenarioSeed,
	})
	if err != nil {
		t.Fatalf("cluster: %v", err)
	}
	return cl
}

func mrConfig() workloads.MRConfig {
	cfg := workloads.DefaultMRConfig()
	cfg.Partitions, cfg.LinesPerPart = 8, 400
	return cfg
}

func mlrConfig() workloads.MLRConfig {
	return workloads.MLRConfig{
		Partitions: 8, SamplesPerPart: 30, Features: 32, Classes: 4,
		NonZeros: 8, Iterations: 3, LearningRate: 0.5, Seed: 3,
	}
}

type padoRun struct {
	report     *chaos.Report
	canonical  []byte
	outputs    map[dag.VertexID][]data.Record
	injections []chaos.Injection
	events     []obs.Event
	snap       metrics.Snapshot
}

// runPado executes pipe on a fresh scenario cluster under plan (nil =
// fault-free) and replays the trace through the invariant checker.
func runPado(t testing.TB, pipe *dataflow.Pipeline, plan *chaos.Plan, mutate func(*runtime.Config), transient, reserved int) padoRun {
	t.Helper()
	cl := newScenarioCluster(t, transient, reserved)
	tracer := obs.New()
	cfg := runtime.Config{Tracer: tracer}
	var eng *chaos.Engine
	if plan != nil {
		if err := plan.Validate(); err != nil {
			t.Fatalf("plan: %v", err)
		}
		eng = chaos.NewEngine(plan, cl)
		eng.Attach(tracer)
		defer eng.Stop()
		cfg.Chaos = eng
	}
	if mutate != nil {
		mutate(&cfg)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()
	res, err := runtime.Run(ctx, cl, pipe.Graph(), cfg)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.Metrics.TimedOut {
		t.Fatal("timed out")
	}
	var pr padoRun
	if eng != nil {
		eng.Stop()
		pr.injections = eng.Injections()
	}
	parents := make(map[int][]int, len(res.Plan.Stages))
	for _, ps := range res.Plan.Stages {
		parents[ps.ID] = ps.Parents
	}
	pr.events = tracer.Events()
	pr.report = chaos.Check(pr.events, parents)
	pr.canonical = chaos.Canonical(res.Outputs)
	pr.outputs = res.Outputs
	pr.snap = res.Metrics
	return pr
}

// goldenMR caches the fault-free MR canonical output (int64 sums are
// arrival-order independent, so the bytes are stable across runs).
var (
	goldenMROnce sync.Once
	goldenMR     []byte
)

func mrGolden(t testing.TB) []byte {
	goldenMROnce.Do(func() {
		pr := runPado(t, workloads.MR(mrConfig()), nil, nil, 6, 2)
		if !pr.report.OK() {
			t.Fatalf("fault-free run flagged: %s", pr.report)
		}
		goldenMR = pr.canonical
	})
	if goldenMR == nil {
		t.Fatal("golden MR run failed earlier")
	}
	return goldenMR
}

// trig builds a wildcard trigger on kind with optional tweaks applied.
func trig(kind string, mut func(*chaos.Trigger)) chaos.Trigger {
	tr := chaos.On(kind)
	if mut != nil {
		mut(&tr)
	}
	return tr
}

func ms(d int) chaos.Duration { return chaos.Duration(time.Duration(d) * time.Millisecond) }

// mrScenarios is the MR half of the matrix. Every schedule must leave
// all invariants intact and the output equal to the golden run.
var mrScenarios = []struct {
	name   string
	rules  []chaos.Rule
	pull   bool
	mutate func(*runtime.Config)
}{
	{
		name: "evict-on-first-push", // the §3.2.4 escape race, earliest window
		rules: []chaos.Rule{{
			Trigger: trig("push_started", func(t *chaos.Trigger) { t.Count = 1 }),
			Fault:   chaos.Fault{Op: chaos.OpEvict, Target: "@event", Stage: chaos.Any},
		}},
	},
	{
		name: "evict-on-third-push",
		rules: []chaos.Rule{{
			Trigger: trig("push_started", func(t *chaos.Trigger) { t.Count = 3 }),
			Fault:   chaos.Fault{Op: chaos.OpEvict, Target: "@event", Stage: chaos.Any},
		}},
	},
	{
		name: "commit-race-evict", // eviction lands right as the commit is acknowledged
		rules: []chaos.Rule{{
			Trigger: trig("push_committed", func(t *chaos.Trigger) { t.Count = 1 }),
			Fault:   chaos.Fault{Op: chaos.OpEvict, Target: "@event", Stage: chaos.Any},
		}},
	},
	{
		name: "commit-delay-then-evict", // widen the commit/eviction race window
		rules: []chaos.Rule{
			{ID: "slow-commits", Trigger: chaos.Trigger{Stage: chaos.Any, Frag: chaos.Any, Task: chaos.Any},
				Fault: chaos.Fault{Op: chaos.OpCommitDelay, Stage: chaos.Any, Delay: ms(20)}},
			{Trigger: trig("push_started", func(t *chaos.Trigger) { t.Count = 2 }),
				Fault: chaos.Fault{Op: chaos.OpEvict, Target: "@event", Stage: chaos.Any}},
		},
	},
	{
		name: "commit-duplication", // receivers must dedup duplicated relays
		rules: []chaos.Rule{{
			Trigger: chaos.Trigger{Stage: chaos.Any, Frag: chaos.Any, Task: chaos.Any},
			Fault:   chaos.Fault{Op: chaos.OpCommitDup, Stage: chaos.Any, Count: 2},
		}},
	},
	{
		name: "storm-at-stage-start", // spot-price spike as the stage schedules
		rules: []chaos.Rule{{
			Trigger: trig("stage_scheduled", func(t *chaos.Trigger) { t.Stage = 0 }),
			Fault:   chaos.Fault{Op: chaos.OpStorm, Count: 4, Stage: chaos.Any},
		}},
	},
	{
		name: "double-storm", // second wave while the first wave's relaunches run
		rules: []chaos.Rule{
			{ID: "wave1", Trigger: trig("push_started", nil),
				Fault: chaos.Fault{Op: chaos.OpStorm, Count: 3, Stage: chaos.Any}},
			{Trigger: chaos.Trigger{After: "wave1", Delay: ms(40), Stage: chaos.Any, Frag: chaos.Any, Task: chaos.Any},
				Fault: chaos.Fault{Op: chaos.OpStorm, Count: 3, Stage: chaos.Any}},
		},
	},
	{
		name: "relaunch-cascade", // evict again the moment the first relaunch happens
		rules: []chaos.Rule{
			{ID: "first", Trigger: trig("push_started", nil),
				Fault: chaos.Fault{Op: chaos.OpEvict, Target: "@event", Stage: chaos.Any}},
			{Trigger: trig("task_relaunched", func(t *chaos.Trigger) { t.After = "first" }),
				Fault: chaos.Fault{Op: chaos.OpEvict, Stage: chaos.Any}},
		},
	},
	{
		name: "evict-on-receiver-ready", // kill a worker just as receivers open
		rules: []chaos.Rule{{
			Trigger: trig("receiver_ready", nil),
			Fault:   chaos.Fault{Op: chaos.OpEvict, Stage: chaos.Any},
		}},
	},
	{
		name: "fraction-storm", // storm once half the stage's tasks committed
		rules: []chaos.Rule{{
			Trigger: trig("push_committed", func(t *chaos.Trigger) { t.Stage = 0; t.Fraction = 0.5 }),
			Fault:   chaos.Fault{Op: chaos.OpStorm, Count: 3, Stage: chaos.Any},
		}},
	},
	{
		name: "link-delay", // degrade every transient->reserved link
		rules: []chaos.Rule{{
			Trigger: chaos.Trigger{Stage: chaos.Any, Frag: chaos.Any, Task: chaos.Any},
			Fault: chaos.Fault{Op: chaos.OpLink, From: "t", To: "r",
				ExtraLatency: ms(5), Window: ms(100), Stage: chaos.Any},
		}},
	},
	{
		name: "link-drop-window", // drop every 3rd chunk during the push wave
		rules: []chaos.Rule{{
			Trigger: trig("stage_scheduled", func(t *chaos.Trigger) { t.Stage = 0 }),
			Fault: chaos.Fault{Op: chaos.OpLink, From: "t", To: "r",
				DropEvery: 3, Window: ms(80), Stage: chaos.Any},
		}},
	},
	{
		name: "dial-fail-window", // pushes cannot even connect for a while
		rules: []chaos.Rule{{
			Trigger: trig("push_started", nil),
			Fault: chaos.Fault{Op: chaos.OpDialFail, From: "t", To: "r",
				Window: ms(30), Stage: chaos.Any},
		}},
		mutate: func(cfg *runtime.Config) { cfg.MaxTaskFailures = 1000 },
	},
	{
		name: "pull-mode-evict-mid-fetch", // PullBoundaries ablation: source dies between commit and pull
		pull: true,
		rules: []chaos.Rule{
			{ID: "slow-commits", Trigger: chaos.Trigger{Stage: chaos.Any, Frag: chaos.Any, Task: chaos.Any},
				Fault: chaos.Fault{Op: chaos.OpCommitDelay, Stage: chaos.Any, Delay: ms(20)}},
			{Trigger: trig("push_committed", func(t *chaos.Trigger) { t.Count = 1 }),
				Fault: chaos.Fault{Op: chaos.OpEvict, Target: "@event", Stage: chaos.Any}},
		},
	},
}

func TestChaosMatrixMR(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos matrix skipped in short mode")
	}
	golden := mrGolden(t)
	for _, sc := range mrScenarios {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			t.Parallel()
			plan := &chaos.Plan{Name: sc.name, Rules: sc.rules}
			mutate := sc.mutate
			if sc.pull {
				inner := mutate
				mutate = func(cfg *runtime.Config) {
					cfg.PullBoundaries = true
					if inner != nil {
						inner(cfg)
					}
				}
			}
			pr := runPado(t, workloads.MR(mrConfig()), plan, mutate, 6, 2)
			if len(pr.injections) == 0 {
				t.Fatal("no faults fired; scenario is vacuous")
			}
			if !pr.report.OK() {
				t.Errorf("invariants: %s", pr.report)
			}
			pr.report.CompareOutput(golden, pr.canonical)
			if !pr.report.OK() {
				t.Errorf("output diverged from golden run: %s", pr.report)
			}
		})
	}
}

// mlrScenarios exercise §3.2.6 recovery: multi-stage iterative job,
// reserved containers failing mid-job and mid-recovery. MLR reduces
// floats (arrival-order dependent bits), so correctness is checked
// against the reference model within 1e-9 instead of byte equality.
var mlrScenarios = []struct {
	name  string
	rules []chaos.Rule
}{
	{
		name: "reserved-fail-mid-job",
		rules: []chaos.Rule{{
			Trigger: trig("stage_complete", func(t *chaos.Trigger) { t.Count = 2 }),
			Fault:   chaos.Fault{Op: chaos.OpFailReserved, Stage: chaos.Any},
		}},
	},
	{
		name: "reserved-fail-during-recovery", // second failure while ancestors replay
		rules: []chaos.Rule{
			{ID: "first-loss", Trigger: trig("stage_complete", func(t *chaos.Trigger) { t.Count = 3 }),
				Fault: chaos.Fault{Op: chaos.OpFailReserved, Stage: chaos.Any}},
			{Trigger: trig("stage_scheduled", func(t *chaos.Trigger) { t.After = "first-loss"; t.Delay = ms(5) }),
				Fault: chaos.Fault{Op: chaos.OpFailReserved, Stage: chaos.Any}},
		},
	},
	{
		name: "evict-during-recovery-replay", // transient dies while recovery recomputes ancestors
		rules: []chaos.Rule{
			{ID: "loss", Trigger: trig("stage_complete", func(t *chaos.Trigger) { t.Count = 3 }),
				Fault: chaos.Fault{Op: chaos.OpFailReserved, Stage: chaos.Any}},
			{Trigger: trig("task_launched", func(t *chaos.Trigger) { t.After = "loss"; t.ExecPrefix = "t" }),
				Fault: chaos.Fault{Op: chaos.OpEvict, Target: "@event", Stage: chaos.Any}},
		},
	},
}

func TestChaosMatrixMLR(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos matrix skipped in short mode")
	}
	cfg := mlrConfig()
	want := workloads.MLRReference(cfg)
	for _, sc := range mlrScenarios {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			t.Parallel()
			plan := &chaos.Plan{Name: sc.name, Rules: sc.rules}
			pr := runPado(t, workloads.MLR(cfg), plan, nil, 6, 3)
			if len(pr.injections) == 0 {
				t.Fatal("no faults fired; scenario is vacuous")
			}
			if !pr.report.OK() {
				t.Errorf("invariants: %s", pr.report)
			}
			var model []float64
			for _, recs := range pr.outputs {
				if len(recs) != 1 {
					t.Fatalf("got %d model records", len(recs))
				}
				model = recs[0].Value.([]float64)
			}
			for i := range model {
				if math.Abs(model[i]-want[i]) > 1e-9 {
					t.Fatalf("model[%d] = %g, want %g", i, model[i], want[i])
				}
			}
		})
	}
}

// TestChaosMatrixSparklike runs storm schedules against both baseline
// engines: the protocol checker is Pado-specific, but triggers fire off
// the same obs kinds and the output must match a fault-free golden run.
func TestChaosMatrixSparklike(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos matrix skipped in short mode")
	}
	want := workloads.MRReference(mrConfig())
	for _, tc := range []struct {
		name       string
		checkpoint bool
	}{
		{name: "spark-storm", checkpoint: false},
		{name: "spark-checkpoint-storm", checkpoint: true},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			plan := &chaos.Plan{Name: tc.name, Rules: []chaos.Rule{{
				Trigger: trig("stage_scheduled", func(tr *chaos.Trigger) { tr.Count = 1 }),
				Fault:   chaos.Fault{Op: chaos.OpStorm, Count: 3, Stage: chaos.Any},
			}}}
			if err := plan.Validate(); err != nil {
				t.Fatal(err)
			}
			cl := newScenarioCluster(t, 6, 2)
			tracer := obs.New()
			eng := chaos.NewEngine(plan, cl)
			eng.Attach(tracer)
			defer eng.Stop()
			ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
			defer cancel()
			res, err := sparklike.Run(ctx, cl, workloads.MR(mrConfig()).Graph(), sparklike.Config{
				Checkpoint: tc.checkpoint, Tracer: tracer,
			})
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if res.Metrics.TimedOut {
				t.Fatal("timed out")
			}
			eng.Stop()
			if len(eng.Injections()) == 0 {
				t.Fatal("no faults fired; scenario is vacuous")
			}
			var recs []data.Record
			for _, out := range res.Outputs {
				recs = out
			}
			if len(recs) != len(want) {
				t.Fatalf("got %d keys, want %d", len(recs), len(want))
			}
			for _, r := range recs {
				if want[r.Key.(string)] != r.Value.(int64) {
					t.Errorf("key %v: got %v want %v", r.Key, r.Value, want[r.Key.(string)])
				}
			}
		})
	}
}

// TestChaosDeterminism: same seed + same plan => identical invariant
// digest across two runs (the CI determinism gate).
func TestChaosDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos determinism skipped in short mode")
	}
	newPlan := func() *chaos.Plan {
		return &chaos.Plan{Name: "determinism", Rules: []chaos.Rule{
			{ID: "slow-commits", Trigger: chaos.Trigger{Stage: chaos.Any, Frag: chaos.Any, Task: chaos.Any},
				Fault: chaos.Fault{Op: chaos.OpCommitDelay, Stage: chaos.Any, Delay: ms(20)}},
			{Trigger: trig("push_started", func(tr *chaos.Trigger) { tr.Count = 2 }),
				Fault: chaos.Fault{Op: chaos.OpEvict, Target: "@event", Stage: chaos.Any}},
		}}
	}
	a := runPado(t, workloads.MR(mrConfig()), newPlan(), nil, 6, 2)
	b := runPado(t, workloads.MR(mrConfig()), newPlan(), nil, 6, 2)
	if !a.report.OK() || !b.report.OK() {
		t.Fatalf("invariants: a=%s b=%s", a.report, b.report)
	}
	da, db := a.report.Digest(a.canonical), b.report.Digest(b.canonical)
	if da != db {
		t.Fatalf("digest mismatch across identical runs:\n%s\n%s", da, db)
	}
}
