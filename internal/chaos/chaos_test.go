package chaos_test

import (
	"strings"
	"testing"
	"time"

	"pado/internal/chaos"
	"pado/internal/dag"
	"pado/internal/data"
	"pado/internal/obs"
)

func TestPlanJSONRoundTrip(t *testing.T) {
	src := `{
	  "name": "sample",
	  "rules": [
	    {"id": "first-push", "trigger": {"on": "push_started", "stage": 0, "count": 1},
	     "fault": {"op": "evict", "target": "@event"}},
	    {"trigger": {"after": "first-push", "delay": "200ms"},
	     "fault": {"op": "storm", "count": 3}},
	    {"trigger": {"on": "push_committed", "stage": 1, "fraction": 0.5},
	     "fault": {"op": "link", "from": "t", "to": "r", "extra_latency": "5ms", "window": "80ms"}}
	  ]
	}`
	p, err := chaos.Parse([]byte(src))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(p.Rules) != 3 {
		t.Fatalf("got %d rules", len(p.Rules))
	}
	// Omitted trigger fields must mean "any", not stage/frag/task 0.
	r0 := p.Rules[0].Trigger
	if r0.Stage != 0 || r0.Frag != chaos.Any || r0.Task != chaos.Any {
		t.Errorf("rule 0 trigger = %+v, want stage 0, frag/task Any", r0)
	}
	if p.Rules[1].ID != "rule1" {
		t.Errorf("auto id = %q, want rule1", p.Rules[1].ID)
	}
	if d := p.Rules[1].Trigger.Delay.D(); d != 200*time.Millisecond {
		t.Errorf("delay = %v", d)
	}
	if got := p.Rules[2].Fault.ExtraLatency.D(); got != 5*time.Millisecond {
		t.Errorf("extra latency = %v", got)
	}
}

func TestPlanValidation(t *testing.T) {
	bad := []string{
		`{"rules": [{"trigger": {"on": "no_such_kind"}, "fault": {"op": "evict"}}]}`,
		`{"rules": [{"trigger": {}, "fault": {"op": "frobnicate"}}]}`,
		`{"rules": [{"trigger": {"after": "ghost"}, "fault": {"op": "evict"}}]}`,
		`{"rules": [{"id": "a", "trigger": {}, "fault": {"op": "evict"}},
		            {"id": "a", "trigger": {}, "fault": {"op": "evict"}}]}`,
		`{"rules": [{"trigger": {"on": "push_committed", "fraction": 0.5}, "fault": {"op": "evict"}}]}`,
		`{"rules": [{"trigger": {}, "fault": {"op": "commit-delay"}}]}`,
		`{"rules": [{"trigger": {}, "fault": {"op": "link"}}]}`,
	}
	for i, src := range bad {
		if _, err := chaos.Parse([]byte(src)); err == nil {
			t.Errorf("case %d: bad plan accepted", i)
		}
	}
}

// waitInjections polls until the engine applied n faults (injection is
// asynchronous: tap -> injector goroutine).
func waitInjections(t *testing.T, e *chaos.Engine, n int) []chaos.Injection {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		inj := e.Injections()
		if len(inj) >= n {
			return inj
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %d injections, have %v", n, inj)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestTriggerMatching drives an engine with synthetic events (no cluster
// needed: commit faults only touch engine state) and checks counting,
// field filters, and After-chaining.
func TestTriggerMatching(t *testing.T) {
	plan := &chaos.Plan{Rules: []chaos.Rule{
		{ID: "third-push", Trigger: func() chaos.Trigger {
			tr := chaos.On("push_started")
			tr.Stage = 2
			tr.Count = 3
			return tr
		}(), Fault: chaos.Fault{Op: chaos.OpCommitDelay, Stage: chaos.Any, Delay: chaos.Duration(time.Millisecond)}},
		{ID: "chained", Trigger: chaos.Trigger{After: "third-push", Stage: chaos.Any, Frag: chaos.Any, Task: chaos.Any},
			Fault: chaos.Fault{Op: chaos.OpCommitDup, Stage: chaos.Any, Count: 2}},
	}}
	if err := plan.Validate(); err != nil {
		t.Fatal(err)
	}
	tracer := obs.New()
	e := chaos.NewEngine(plan, nil)
	e.Attach(tracer)
	defer e.Stop()

	buf := tracer.Buf()
	// Wrong stage, then two matches: nothing fires yet.
	buf.Emit(obs.Event{Kind: obs.PushStarted, Stage: 1, Frag: 0, Task: 0})
	buf.Emit(obs.Event{Kind: obs.PushStarted, Stage: 2, Frag: 0, Task: 0})
	buf.Emit(obs.Event{Kind: obs.PushStarted, Stage: 2, Frag: 0, Task: 1})
	time.Sleep(10 * time.Millisecond)
	if got := e.Injections(); len(got) != 0 {
		t.Fatalf("fired early: %v", got)
	}
	// Third stage-2 match fires the rule and its chained dependent.
	buf.Emit(obs.Event{Kind: obs.PushStarted, Stage: 2, Frag: 0, Task: 2})
	inj := waitInjections(t, e, 2)
	if inj[0].Rule != "third-push" || inj[1].Rule != "chained" {
		t.Errorf("injections = %v", inj)
	}

	// Both commit faults are now installed: a relay on any stage sees
	// the delay and 2 duplicates.
	delay, dups := e.CommitRelay(1, 5, 0, 0, 0, 0)
	if delay != time.Millisecond || dups != 2 {
		t.Errorf("CommitRelay = (%v, %d), want (1ms, 2)", delay, dups)
	}

	// Injected faults surface as first-class obs events.
	count := 0
	for _, ev := range tracer.Events() {
		if ev.Kind == obs.ChaosInjected {
			count++
		}
	}
	if count != 2 {
		t.Errorf("got %d ChaosInjected events, want 2", count)
	}
}

func TestFractionTrigger(t *testing.T) {
	tr := chaos.On("push_committed")
	tr.Stage = 1
	tr.Fraction = 0.5
	plan := &chaos.Plan{Rules: []chaos.Rule{{ID: "half",
		Trigger: tr, Fault: chaos.Fault{Op: chaos.OpCommitDup, Stage: chaos.Any}}}}
	if err := plan.Validate(); err != nil {
		t.Fatal(err)
	}
	tracer := obs.New()
	e := chaos.NewEngine(plan, nil)
	e.Attach(tracer)
	defer e.Stop()

	buf := tracer.Buf()
	for task := 0; task < 4; task++ {
		buf.Emit(obs.Event{Kind: obs.TaskLaunched, Stage: 1, Frag: 0, Task: task})
	}
	buf.Emit(obs.Event{Kind: obs.PushCommitted, Stage: 1, Frag: 0, Task: 0})
	time.Sleep(10 * time.Millisecond)
	if got := e.Injections(); len(got) != 0 {
		t.Fatalf("fired at 1/4: %v", got)
	}
	buf.Emit(obs.Event{Kind: obs.PushCommitted, Stage: 1, Frag: 0, Task: 1})
	waitInjections(t, e, 1)
}

// Synthetic event streams for the checker. A two-stage chain: stage 1
// depends on stage 0.
var chainParents = map[int][]int{0: nil, 1: {0}}

func cleanStream() []obs.Event {
	return []obs.Event{
		{Kind: obs.StageScheduled, Stage: 0},
		{Kind: obs.TaskLaunched, Stage: 0, Frag: 0, Task: 0, Exec: "t1"},
		{Kind: obs.PushStarted, Stage: 0, Frag: 0, Task: 0, Exec: "t1"},
		{Kind: obs.PushCommitted, Stage: 0, Frag: 0, Task: 0, Exec: "t1"},
		{Kind: obs.StageComplete, Stage: 0},
		{Kind: obs.StageScheduled, Stage: 1},
		{Kind: obs.PushCommitted, Stage: 1, Frag: 0, Task: 0, Exec: "t2"},
		{Kind: obs.StageComplete, Stage: 1},
	}
}

func TestCheckerCleanRun(t *testing.T) {
	r := chaos.Check(cleanStream(), chainParents)
	if !r.OK() {
		t.Fatalf("clean stream flagged: %s", r)
	}
	if r.Commits != 2 {
		t.Errorf("commits = %d", r.Commits)
	}
}

// TestCheckerCatchesBrokenSchedules feeds intentionally broken toy
// schedules and proves the checker can fail.
func TestCheckerCatchesBrokenSchedules(t *testing.T) {
	cases := []struct {
		name      string
		events    []obs.Event
		invariant string
	}{
		{
			name: "double-commit",
			events: []obs.Event{
				{Kind: obs.StageScheduled, Stage: 0},
				{Kind: obs.PushCommitted, Stage: 0, Frag: 0, Task: 3},
				{Kind: obs.PushCommitted, Stage: 0, Frag: 0, Task: 3},
			},
			invariant: chaos.InvExactlyOnce,
		},
		{
			name: "parent-relaunched-after-transient-eviction",
			events: []obs.Event{
				{Kind: obs.StageScheduled, Stage: 0},
				{Kind: obs.StageComplete, Stage: 0},
				{Kind: obs.StageScheduled, Stage: 1},
				{Kind: obs.ContainerEvicted, Exec: "t3"},
				// A transient eviction must never reschedule the
				// completed parent stage (§3.2.5).
				{Kind: obs.StageScheduled, Stage: 0},
			},
			invariant: chaos.InvNoParentRelaunch,
		},
		{
			name: "restart-without-cause",
			events: []obs.Event{
				{Kind: obs.StageScheduled, Stage: 0},
				{Kind: obs.StageScheduled, Stage: 0},
			},
			invariant: chaos.InvRestartCause,
		},
		{
			name: "child-scheduled-before-parent",
			events: []obs.Event{
				{Kind: obs.StageScheduled, Stage: 1},
			},
			invariant: chaos.InvTopoOrder,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := chaos.Check(tc.events, chainParents)
			if r.OK() {
				t.Fatalf("broken schedule passed")
			}
			found := false
			for _, v := range r.Violations {
				if v.Invariant == tc.invariant {
					found = true
				}
			}
			if !found {
				t.Fatalf("want %s violation, got %s", tc.invariant, r)
			}
		})
	}
}

func TestCheckerAllowsLegitimateRestarts(t *testing.T) {
	// A reserved-container failure legitimizes rescheduling completed
	// stages, in topological order.
	events := []obs.Event{
		{Kind: obs.StageScheduled, Stage: 0},
		{Kind: obs.StageComplete, Stage: 0},
		{Kind: obs.StageScheduled, Stage: 1},
		{Kind: obs.ContainerFailed, Exec: "r0"},
		{Kind: obs.StageScheduled, Stage: 0},
		{Kind: obs.StageComplete, Stage: 0},
		{Kind: obs.StageScheduled, Stage: 1},
		{Kind: obs.StageComplete, Stage: 1},
	}
	if r := chaos.Check(events, chainParents); !r.OK() {
		t.Fatalf("legitimate recovery flagged: %s", r)
	}

	// A receiver failure (reserved task failing without its container
	// dying) also legitimizes a restart of the running stage.
	events = []obs.Event{
		{Kind: obs.StageScheduled, Stage: 0},
		{Kind: obs.TaskFailed, Stage: 0, Frag: obs.ReservedFrag, Task: 0, Note: "boom"},
		{Kind: obs.StageScheduled, Stage: 0},
		{Kind: obs.StageComplete, Stage: 0},
	}
	if r := chaos.Check(events, chainParents); !r.OK() {
		t.Fatalf("receiver-failure restart flagged: %s", r)
	}
}

func TestCheckerPullModeRecommit(t *testing.T) {
	// Pull-mode ablation: a committed source evicted before the pull
	// un-commits ("pull_failed" relaunch) and commits again — the
	// exactly-once invariant must tolerate exactly this shape.
	events := []obs.Event{
		{Kind: obs.StageScheduled, Stage: 0},
		{Kind: obs.PushCommitted, Stage: 0, Frag: 0, Task: 0},
		{Kind: obs.ContainerEvicted, Exec: "t1"},
		{Kind: obs.TaskRelaunched, Stage: 0, Frag: 0, Task: 0, Note: "pull_failed"},
		{Kind: obs.PushCommitted, Stage: 0, Frag: 0, Task: 0},
		{Kind: obs.StageComplete, Stage: 0},
	}
	if r := chaos.Check(events, chainParents); !r.OK() {
		t.Fatalf("pull-mode recommit flagged: %s", r)
	}
}

func TestCanonicalAndDigest(t *testing.T) {
	a := map[dag.VertexID][]data.Record{
		2: {data.KV("b", int64(2)), data.KV("a", int64(1))},
	}
	b := map[dag.VertexID][]data.Record{
		2: {data.KV("a", int64(1)), data.KV("b", int64(2))},
	}
	ca, cb := chaos.Canonical(a), chaos.Canonical(b)
	if string(ca) != string(cb) {
		t.Fatalf("canonical not order-independent:\n%q\n%q", ca, cb)
	}

	clean := chaos.Check(cleanStream(), chainParents)
	if clean.Digest(ca) != clean.Digest(cb) {
		t.Error("digest differs for equal canonical outputs")
	}
	var mismatched chaos.Report
	mismatched.CompareOutput(ca, []byte("different"))
	if mismatched.OK() {
		t.Fatal("output mismatch not flagged")
	}
	if !strings.Contains(mismatched.Violations[0].String(), chaos.InvOutput) {
		t.Errorf("violation = %v", mismatched.Violations[0])
	}
	if clean.Digest(ca) == mismatched.Digest(ca) {
		t.Error("digest ignores violations")
	}
}
