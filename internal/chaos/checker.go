package chaos

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
	"time"

	"pado/internal/dag"
	"pado/internal/data"
	"pado/internal/obs"
)

// Invariant names used in violations.
const (
	// InvExactlyOnce: every pushed task output is committed exactly once
	// per (stage epoch, frag, task) — the §3.2.5 output-commit claim.
	InvExactlyOnce = "exactly-once-commit"
	// InvNoParentRelaunch: a completed stage is only rescheduled after a
	// reserved-container or receiver failure — transient evictions must
	// never recompute parents (§3.2.5).
	InvNoParentRelaunch = "no-parent-relaunch"
	// InvRestartCause: any stage restart follows a failure cause (a
	// reserved-container failure or receiver failure) observed since the
	// stage was last scheduled.
	InvRestartCause = "restart-without-cause"
	// InvTopoOrder: whenever a stage is (re)scheduled, all of its
	// parents are complete — recovery replays ancestors in topological
	// order (§3.2.6).
	InvTopoOrder = "recovery-topo-order"
	// InvOutput: job output differs from the fault-free golden run.
	InvOutput = "output-mismatch"
	// InvDetectionBound: every silently killed, hung, or grayed node is
	// declared dead by the failure detector within the bound.
	InvDetectionBound = "detection-bound"
	// InvFalsePositive: no node is declared dead without an injected
	// unannounced fault implicating it — latency storms, announced
	// evictions, and healthy load must never look like death.
	InvFalsePositive = "false-positive-dead"
)

// Violation is one invariant breach.
type Violation struct {
	Invariant string
	Detail    string
}

// String renders the violation.
func (v Violation) String() string { return v.Invariant + ": " + v.Detail }

// Report is the checker's verdict over one run's event stream.
type Report struct {
	Events     int
	Injections int
	Commits    int
	Violations []Violation
}

// OK reports whether every invariant held.
func (r *Report) OK() bool { return len(r.Violations) == 0 }

// String renders a one-look summary.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "chaos check: %d events, %d injections, %d commits: ",
		r.Events, r.Injections, r.Commits)
	if r.OK() {
		b.WriteString("all invariants held")
		return b.String()
	}
	fmt.Fprintf(&b, "%d violation(s)", len(r.Violations))
	for _, v := range r.Violations {
		b.WriteString("\n  " + v.String())
	}
	return b.String()
}

// Digest is a hex digest of the checker verdict plus the job's canonical
// output: two runs with the same seed and plan must produce equal
// digests (the raw event interleaving is timing-dependent, but the
// invariant verdicts and committed output are not).
func (r *Report) Digest(canonicalOutput []byte) string {
	vs := make([]string, 0, len(r.Violations))
	for _, v := range r.Violations {
		vs = append(vs, v.String())
	}
	sort.Strings(vs)
	h := sha256.New()
	for _, v := range vs {
		h.Write([]byte(v))
		h.Write([]byte{0})
	}
	h.Write(canonicalOutput)
	return hex.EncodeToString(h.Sum(nil))
}

// CompareOutput appends an InvOutput violation when got differs from the
// golden (fault-free) canonical output.
func (r *Report) CompareOutput(golden, got []byte) {
	if !bytes.Equal(golden, got) {
		r.Violations = append(r.Violations, Violation{
			Invariant: InvOutput,
			Detail:    fmt.Sprintf("golden %d bytes != got %d bytes", len(golden), len(got)),
		})
	}
}

// Canonical renders job outputs in a byte-stable form: vertices sorted
// by id, records sorted by rendered key then value. Fault-free and
// faulted runs of the same job must produce equal canonical bytes.
func Canonical(outputs map[dag.VertexID][]data.Record) []byte {
	vids := make([]int, 0, len(outputs))
	for vid := range outputs {
		vids = append(vids, int(vid))
	}
	sort.Ints(vids)
	var b bytes.Buffer
	for _, vid := range vids {
		recs := outputs[dag.VertexID(vid)]
		lines := make([]string, 0, len(recs))
		for _, rec := range recs {
			lines = append(lines, fmt.Sprintf("%v\x00%v", rec.Key, rec.Value))
		}
		sort.Strings(lines)
		fmt.Fprintf(&b, "vertex %d (%d records)\n", vid, len(recs))
		for _, l := range lines {
			b.WriteString(l)
			b.WriteByte('\n')
		}
	}
	return b.Bytes()
}

// CheckDetection verifies the failure-detection invariants over one
// run's merged event stream and returns violations to merge into a
// Report:
//
//   - detection-bound: every node hit by an unannounced kill-silent,
//     hang, or gray injection is declared dead (node_declared_dead)
//     within bound of the injection;
//   - false-positive-dead: every node_declared_dead corresponds to an
//     injected unannounced fault implicating that node (by target id, or
//     by prefix for partitions). On plans with no such injections —
//     latency storms, announced evictions — any declaration at all is a
//     false positive.
//
// Injections are matched through the chaos_injected events record()
// emits (Note: "<ruleID> <op> <detail>", Exec: target), so the checker
// needs no side channel to the engine.
func CheckDetection(events []obs.Event, bound time.Duration) []Violation {
	type injection struct {
		op     string
		target string
		t      time.Duration
	}
	var injected []injection
	var out []Violation
	declared := make(map[string]time.Duration) // exec -> first declaration time
	var declOrder []string

	for _, ev := range events {
		switch ev.Kind {
		case obs.ChaosInjected:
			fields := strings.Fields(ev.Note)
			if len(fields) < 2 {
				continue
			}
			switch op := fields[1]; op {
			case OpKillSilent, OpHang, OpGray, OpPartition:
				injected = append(injected, injection{op: op, target: ev.Exec, t: ev.T})
			}
		case obs.NodeDeclaredDead:
			if _, ok := declared[ev.Exec]; !ok {
				declared[ev.Exec] = ev.T
				declOrder = append(declOrder, ev.Exec)
			}
		}
	}

	for _, inj := range injected {
		if inj.op == OpPartition {
			continue // may or may not isolate a full node
		}
		t, ok := declared[inj.target]
		switch {
		case !ok:
			out = append(out, Violation{
				Invariant: InvDetectionBound,
				Detail:    fmt.Sprintf("%s target %s never declared dead", inj.op, inj.target),
			})
		case t-inj.t > bound:
			out = append(out, Violation{
				Invariant: InvDetectionBound,
				Detail: fmt.Sprintf("%s target %s declared dead %v after injection (bound %v)",
					inj.op, inj.target, t-inj.t, bound),
			})
		}
	}

	for _, exec := range declOrder {
		legit := false
		for _, inj := range injected {
			if inj.op == OpPartition {
				// Partition targets are recorded as "from->to" prefixes:
				// either side of the cut may be quarantined.
				from, to, _ := strings.Cut(inj.target, "->")
				if strings.HasPrefix(exec, from) || (to != "" && strings.HasPrefix(exec, to)) {
					legit = true
					break
				}
			} else if inj.target == exec {
				legit = true
				break
			}
		}
		if !legit {
			out = append(out, Violation{
				Invariant: InvFalsePositive,
				Detail:    fmt.Sprintf("node %s declared dead with no unannounced fault injected against it", exec),
			})
		}
	}
	return out
}

// commitKey identifies one task output within one stage scheduling epoch.
type commitKey struct {
	Stage, Epoch, Frag, Task int
}

// Check replays a merged obs event stream (a Pado runtime run) and
// verifies the eviction-tolerance protocol invariants. parents maps each
// stage id to its parent stage ids (from core.PhysStage.Parents).
//
// Events are processed in slice order: the master emits all
// control-plane events from one buffer, so their relative order is the
// order the master observed.
func Check(events []obs.Event, parents map[int][]int) *Report {
	r := &Report{Events: len(events)}

	return check(events, parents, r)
}

// CheckJob verifies the protocol invariants for one job of a multi-job
// manager run: only events tagged with that job id (plus fleet-wide
// events, Job 0, which carry the failure causes — container evictions
// and failures — every job's protocol reacts to) are replayed. parents
// is that job's stage parent map.
func CheckJob(events []obs.Event, job int, parents map[int][]int) *Report {
	filtered := make([]obs.Event, 0, len(events))
	for _, ev := range events {
		if ev.Job == job || ev.Job == 0 {
			filtered = append(filtered, ev)
		}
	}
	r := &Report{Events: len(filtered)}
	return check(filtered, parents, r)
}

func check(events []obs.Event, parents map[int][]int, r *Report) *Report {

	epoch := make(map[int]int)        // stage -> current scheduling epoch
	lastSched := make(map[int]int)    // stage -> event index of last StageScheduled
	lastComplete := make(map[int]int) // stage -> event index of last StageComplete
	completed := make(map[int]bool)   // stage completed in its current epoch
	commits := make(map[commitKey]int)
	lastCause := -1 // index of last reserved/receiver failure

	for i, ev := range events {
		switch ev.Kind {
		case obs.ChaosInjected:
			r.Injections++
		case obs.ContainerFailed:
			lastCause = i
		case obs.NodeDeclaredDead:
			// A reserved node the failure detector gave up on restarts its
			// stages exactly like an announced reserved failure (§3.2.6);
			// the note leads with the container kind.
			if strings.HasPrefix(ev.Note, "reserved") {
				lastCause = i
			}
		case obs.TaskFailed:
			if ev.Frag == obs.ReservedFrag {
				lastCause = i // receiver failure forces a stage restart
			}
		case obs.StageScheduled:
			restart := epoch[ev.Stage] > 0
			epoch[ev.Stage]++
			if restart {
				since := lastSched[ev.Stage]
				if completed[ev.Stage] {
					since = lastComplete[ev.Stage]
					if lastCause < since {
						r.Violations = append(r.Violations, Violation{
							Invariant: InvNoParentRelaunch,
							Detail: fmt.Sprintf("completed stage %d rescheduled (epoch %d) with no reserved/receiver failure since it completed",
								ev.Stage, epoch[ev.Stage]),
						})
					}
				} else if lastCause < since {
					r.Violations = append(r.Violations, Violation{
						Invariant: InvRestartCause,
						Detail: fmt.Sprintf("stage %d restarted (epoch %d) with no reserved/receiver failure since its last schedule",
							ev.Stage, epoch[ev.Stage]),
					})
				}
			}
			completed[ev.Stage] = false
			lastSched[ev.Stage] = i
			for _, p := range parents[ev.Stage] {
				if !completed[p] {
					r.Violations = append(r.Violations, Violation{
						Invariant: InvTopoOrder,
						Detail: fmt.Sprintf("stage %d scheduled (epoch %d) before parent %d completed",
							ev.Stage, epoch[ev.Stage], p),
					})
				}
			}
		case obs.StageComplete:
			completed[ev.Stage] = true
			lastComplete[ev.Stage] = i
		case obs.PushCommitted:
			r.Commits++
			if ev.Frag >= 0 {
				commits[commitKey{Stage: ev.Stage, Epoch: epoch[ev.Stage], Frag: ev.Frag, Task: ev.Task}]++
			}
		case obs.TaskRelaunched:
			// A pull-mode source evicted after commit surfaces as a
			// "pull_failed" relaunch: the master un-commits the task and a
			// fresh attempt legitimately commits again (§3.2.4 ablation).
			if strings.Contains(ev.Note, "pull_failed") && ev.Frag >= 0 {
				delete(commits, commitKey{Stage: ev.Stage, Epoch: epoch[ev.Stage], Frag: ev.Frag, Task: ev.Task})
			}
		}
	}

	keys := make([]commitKey, 0, len(commits))
	for k := range commits {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.Stage != b.Stage {
			return a.Stage < b.Stage
		}
		if a.Epoch != b.Epoch {
			return a.Epoch < b.Epoch
		}
		if a.Frag != b.Frag {
			return a.Frag < b.Frag
		}
		return a.Task < b.Task
	})
	for _, k := range keys {
		if n := commits[k]; n > 1 {
			r.Violations = append(r.Violations, Violation{
				Invariant: InvExactlyOnce,
				Detail: fmt.Sprintf("stage %d epoch %d frag %d task %d committed %d times",
					k.Stage, k.Epoch, k.Frag, k.Task, n),
			})
		}
	}
	return r
}
