package chaos_test

import (
	"testing"
	"time"

	"pado/internal/chaos"
	"pado/internal/metrics"
	"pado/internal/obs"
	"pado/internal/runtime"
	"pado/internal/testutil"
	"pado/internal/workloads"
)

// Detection scenarios exercise the failure-handling plane the chaos ops
// with no announcement path: silent kills, hangs, and gray nodes must be
// noticed by the heartbeat detector alone, within a bound, without false
// positives, and with the §3.2.5 exactly-once output intact.

// tightDetector returns detector knobs scaled for the small scenario
// jobs: declarations land within a few hundred milliseconds instead of
// the production-default 1.5s.
func tightDetector() runtime.FailureConfig {
	return runtime.FailureConfig{
		HeartbeatEvery: 10 * time.Millisecond,
		SuspectAfter:   40 * time.Millisecond,
		DeadAfter:      150 * time.Millisecond,
		GrayAfter:      60 * time.Millisecond,
	}
}

// detectionBound is the allowed injection→declaration gap for the tight
// knobs: DeadAfter plus generous slack for detector ticks and a loaded
// test machine.
const detectionBound = 5 * time.Second

func countKind(events []obs.Event, kind obs.Kind) int {
	n := 0
	for _, ev := range events {
		if ev.Kind == kind {
			n++
		}
	}
	return n
}

func assertCounter(t *testing.T, snap metrics.Snapshot, name string) {
	t.Helper()
	if snap.Named[name] == 0 {
		t.Errorf("counter %s = 0, want > 0", name)
	}
}

// detectionScenarios: each unannounced fault kind must recover through
// the detector with output equal to the golden run.
var detectionScenarios = []struct {
	name     string
	rules    []chaos.Rule
	counters []string // asserted non-zero after the run
}{
	{
		name: "silent-kill-mid-push", // node vanishes with zero announcement
		rules: []chaos.Rule{{
			Trigger: trig("push_started", func(t *chaos.Trigger) { t.Count = 1 }),
			Fault:   chaos.Fault{Op: chaos.OpKillSilent, Target: "@event", Stage: chaos.Any},
		}},
		counters: []string{
			metrics.NameHeartbeatsSent,
			metrics.NameHeartbeatsMissed,
			metrics.NameSuspicionsRaised,
			metrics.NameNodesDeclaredDead,
		},
	},
	{
		name: "hang-mid-push", // node wedges: writes block, no errors, no EOF
		rules: []chaos.Rule{{
			Trigger: trig("push_started", func(t *chaos.Trigger) { t.Count = 1 }),
			Fault:   chaos.Fault{Op: chaos.OpHang, Target: "@event", Stage: chaos.Any},
		}},
		counters: []string{
			metrics.NameHeartbeatsSent,
			metrics.NameNodesDeclaredDead,
		},
	},
	{
		name: "gray-node", // heartbeats fine, data plane dead in both directions
		rules: []chaos.Rule{{
			// Gray the first READY RECEIVER (a reserved node): every
			// transient's pushes to it fail, so multiple reporters open
			// breakers toward it and the dest-gray rule convicts it.
			Trigger: trig("receiver_ready", func(t *chaos.Trigger) { t.Count = 1 }),
			Fault:   chaos.Fault{Op: chaos.OpGray, Target: "@event", Stage: chaos.Any},
		}},
		counters: []string{
			metrics.NameHeartbeatsSent,
			metrics.NameNodesDeclaredDead,
			metrics.NameBreakerOpens,
			metrics.NameRPCRetries,
		},
	},
}

func TestChaosDetectionMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos matrix skipped in short mode")
	}
	golden := mrGolden(t)
	for _, sc := range detectionScenarios {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			t.Parallel()
			// These scenarios only end when the detector notices the
			// fault; if it never does, the stacks are the evidence.
			testutil.Watchdog(t, 90*time.Second)
			plan := &chaos.Plan{Name: sc.name, Rules: sc.rules}
			mutate := func(cfg *runtime.Config) {
				cfg.Failure = tightDetector()
				// Unannounced deaths surface as failed pushes on the
				// victims' peers before the declaration lands.
				cfg.MaxTaskFailures = 1000
			}
			pr := runPado(t, workloads.MR(mrConfig()), plan, mutate, 6, 2)
			if len(pr.injections) == 0 {
				t.Fatal("no faults fired; scenario is vacuous")
			}
			pr.report.Violations = append(pr.report.Violations,
				chaos.CheckDetection(pr.events, detectionBound)...)
			if !pr.report.OK() {
				t.Errorf("invariants: %s", pr.report)
			}
			pr.report.CompareOutput(golden, pr.canonical)
			if !pr.report.OK() {
				t.Errorf("output diverged from golden run: %s", pr.report)
			}
			if n := countKind(pr.events, obs.NodeDeclaredDead); n == 0 {
				t.Error("no node_declared_dead event; detector never fired")
			}
			for _, name := range sc.counters {
				assertCounter(t, pr.snap, name)
			}
		})
	}
}

// TestChaosLatencyStormNoFalsePositives: a latency-only plan — every
// transient link slowed, nothing killed — must complete with ZERO dead
// declarations. Slow is not dead; false positives restart real work.
func TestChaosLatencyStormNoFalsePositives(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos matrix skipped in short mode")
	}
	golden := mrGolden(t)
	plan := &chaos.Plan{Name: "latency-storm-only", Rules: []chaos.Rule{{
		Trigger: chaos.Trigger{Stage: chaos.Any, Frag: chaos.Any, Task: chaos.Any},
		Fault: chaos.Fault{Op: chaos.OpLink, From: "t",
			ExtraLatency: ms(5), Stage: chaos.Any},
	}}}
	mutate := func(cfg *runtime.Config) { cfg.Failure = tightDetector() }
	pr := runPado(t, workloads.MR(mrConfig()), plan, mutate, 6, 2)
	if len(pr.injections) == 0 {
		t.Fatal("no faults fired; scenario is vacuous")
	}
	pr.report.Violations = append(pr.report.Violations,
		chaos.CheckDetection(pr.events, detectionBound)...)
	if !pr.report.OK() {
		t.Errorf("invariants: %s", pr.report)
	}
	pr.report.CompareOutput(golden, pr.canonical)
	if !pr.report.OK() {
		t.Errorf("output diverged from golden run: %s", pr.report)
	}
	if n := countKind(pr.events, obs.NodeDeclaredDead); n != 0 {
		t.Errorf("%d node(s) declared dead under a latency-only storm", n)
	}
	assertCounter(t, pr.snap, metrics.NameHeartbeatsSent)
}

// TestChaosDetectionDeterminism: the detector joins the CI determinism
// gate — same seed + same silent-kill plan must yield identical
// invariant digests across runs.
func TestChaosDetectionDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos determinism skipped in short mode")
	}
	newPlan := func() *chaos.Plan {
		return &chaos.Plan{Name: "detection-determinism", Rules: []chaos.Rule{{
			Trigger: trig("push_started", func(tr *chaos.Trigger) { tr.Count = 1 }),
			Fault:   chaos.Fault{Op: chaos.OpKillSilent, Target: "@event", Stage: chaos.Any},
		}}}
	}
	mutate := func(cfg *runtime.Config) {
		cfg.Failure = tightDetector()
		cfg.MaxTaskFailures = 1000
	}
	run := func() (*chaos.Report, []byte) {
		pr := runPado(t, workloads.MR(mrConfig()), newPlan(), mutate, 6, 2)
		pr.report.Violations = append(pr.report.Violations,
			chaos.CheckDetection(pr.events, detectionBound)...)
		return pr.report, pr.canonical
	}
	ra, ca := run()
	rb, cb := run()
	if !ra.OK() || !rb.OK() {
		t.Fatalf("invariants: a=%s b=%s", ra, rb)
	}
	da, db := ra.Digest(ca), rb.Digest(cb)
	if da != db {
		t.Fatalf("digest mismatch across identical runs:\n%s\n%s", da, db)
	}
}
