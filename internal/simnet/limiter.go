package simnet

import (
	"errors"
	"sync"
	"time"
)

// ErrLimiterClosed is returned by Limiter.Acquire when the limiter is
// closed while a caller is waiting for tokens.
var ErrLimiterClosed = errors.New("simnet: limiter closed")

// Limiter is a token-bucket bandwidth limiter shared by all flows entering
// or leaving a node. Rate is in bytes per second; the bucket holds at most
// burst bytes. A zero or negative rate means unlimited.
//
// Concurrent flows contend for the same bucket, so N simultaneous streams
// through one node each see roughly rate/N throughput — exactly the
// funneling effect that makes a small pool of reserved or storage nodes a
// bottleneck in the paper's experiments.
type Limiter struct {
	mu       sync.Mutex
	rate     float64 // bytes per second; <= 0 means unlimited
	burst    float64
	tokens   float64
	last     time.Time
	closed   bool
	closedCh chan struct{}
}

// NewLimiter returns a Limiter with the given rate (bytes/second) and
// burst (bytes). If burst <= 0 a default of 64KiB or rate/20, whichever is
// larger, is used.
func NewLimiter(rate int64, burst int64) *Limiter {
	b := float64(burst)
	if b <= 0 {
		b = 64 << 10
		if alt := float64(rate) / 20; alt > b {
			b = alt
		}
	}
	return &Limiter{
		rate:     float64(rate),
		burst:    b,
		tokens:   b,
		last:     time.Now(),
		closedCh: make(chan struct{}),
	}
}

// Unlimited reports whether the limiter performs no throttling.
func (l *Limiter) Unlimited() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.rate <= 0
}

// Rate returns the configured rate in bytes per second (0 if unlimited).
func (l *Limiter) Rate() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.rate <= 0 {
		return 0
	}
	return int64(l.rate)
}

// Close releases all waiters with ErrLimiterClosed and makes future
// Acquire calls fail.
func (l *Limiter) Close() {
	l.mu.Lock()
	if !l.closed {
		l.closed = true
		close(l.closedCh)
	}
	l.mu.Unlock()
}

// Acquire blocks until n token bytes are available, the limiter is closed,
// or cancel is closed. Requests larger than the burst are allowed; they
// simply wait for the bucket to pay out in full.
func (l *Limiter) Acquire(n int, cancel <-chan struct{}) error {
	if n <= 0 {
		return nil
	}
	need := float64(n)
	for {
		l.mu.Lock()
		if l.closed {
			l.mu.Unlock()
			return ErrLimiterClosed
		}
		if l.rate <= 0 {
			l.mu.Unlock()
			return nil
		}
		now := time.Now()
		l.tokens += now.Sub(l.last).Seconds() * l.rate
		l.last = now
		// Allow the bucket to go negative for oversized requests so a
		// single large acquire is charged once rather than deadlocking.
		cap := l.burst
		if need > cap {
			cap = need
		}
		if l.tokens > cap {
			l.tokens = cap
		}
		if l.tokens >= need {
			l.tokens -= need
			l.mu.Unlock()
			return nil
		}
		wait := time.Duration((need - l.tokens) / l.rate * float64(time.Second))
		l.mu.Unlock()
		if wait < 50*time.Microsecond {
			wait = 50 * time.Microsecond
		}
		select {
		case <-time.After(wait):
		case <-l.closedCh:
			return ErrLimiterClosed
		case <-cancel:
			// A nil cancel channel blocks forever, so this branch only
			// fires for callers that provided one.
			return ErrLimiterClosed
		}
	}
}
