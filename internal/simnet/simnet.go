// Package simnet is an in-memory network substrate with per-node bandwidth
// limits and per-link latency.
//
// The Pado paper's evaluation runs on an EC2 cluster where the decisive
// costs are data movement costs: checkpoint traffic funneling through a
// handful of stable-storage nodes, shuffle pulls from many executors, and
// pushes into a small pool of reserved executors. simnet reproduces those
// costs in-process: every node has an egress and an ingress token bucket
// shared by all of its flows, and every byte of every stream is charged
// against both endpoints' buckets. Closing a node (a container eviction)
// breaks all of its streams, mirroring the loss of a machine.
//
// The API is deliberately net-like: nodes Listen and Dial, and Conn is a
// bidirectional byte stream, so higher layers read and write framed
// messages exactly as they would over TCP.
package simnet

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Errors returned by network operations.
var (
	ErrNodeDown      = errors.New("simnet: node is down")
	ErrNoSuchNode    = errors.New("simnet: no such node")
	ErrConnClosed    = errors.New("simnet: connection closed")
	ErrNotListening  = errors.New("simnet: node is not listening")
	ErrAlreadyExists = errors.New("simnet: node already exists")
	// ErrInjected is returned by operations killed by an injected fault
	// (internal/chaos). Engines treat it like any other transient network
	// failure: retry or relaunch, never abort.
	ErrInjected = errors.New("simnet: injected fault")
)

// Config holds network-wide defaults.
type Config struct {
	// Latency is the one-way propagation delay applied to every chunk.
	Latency time.Duration
	// DefaultEgress and DefaultIngress are the per-node bandwidth limits
	// in bytes per second applied by AddNode. Zero means unlimited.
	DefaultEgress  int64
	DefaultIngress int64
	// ChunkSize is the granularity at which writes are charged against
	// the token buckets. Defaults to 32KiB.
	ChunkSize int
}

func (c Config) chunkSize() int {
	if c.ChunkSize <= 0 {
		return 32 << 10
	}
	return c.ChunkSize
}

// Network is a collection of nodes that can dial each other.
type Network struct {
	cfg   Config
	mu    sync.Mutex
	nodes map[string]*Node

	// Fault injection (internal/chaos). nFaults is the fast path: with no
	// faults installed, Write and Dial pay one atomic load.
	nFaults atomic.Int32
	fmu     sync.Mutex
	faults  []*faultRule
}

// New creates an empty network.
func New(cfg Config) *Network {
	return &Network{cfg: cfg, nodes: make(map[string]*Node)}
}

// LinkFault describes one scripted network fault. From and To select
// links by node-id prefix ("" matches every node), so a single rule can
// degrade a whole class of links (e.g. everything from transient nodes
// "t" into reserved nodes "r").
type LinkFault struct {
	// From and To are node-id prefixes selecting the affected links.
	From, To string
	// ExceptFrom and ExceptTo, when non-empty, exempt links whose source
	// (resp. destination) id has the given prefix even if From/To match.
	// Gray-failure rules use them to break a node's data plane while
	// sparing its control-plane link to the master.
	ExceptFrom, ExceptTo string
	// ExtraLatency is added to the delivery deadline of every matching
	// chunk (link delay / throttle injection).
	ExtraLatency time.Duration
	// DropEvery, when > 0, fails every DropEvery-th matching chunk write
	// with ErrInjected (1 = every write). The counter is per-rule, so a
	// fixed schedule of writes sees a deterministic failure pattern.
	DropEvery int
	// FailDial fails matching Dial calls with ErrInjected.
	FailDial bool
}

// faultRule is an installed LinkFault plus its private write counter.
type faultRule struct {
	f      LinkFault
	writes int64 // guarded by Network.fmu
}

func (r *faultRule) matches(from, to string) bool {
	if !strings.HasPrefix(from, r.f.From) || !strings.HasPrefix(to, r.f.To) {
		return false
	}
	if r.f.ExceptFrom != "" && strings.HasPrefix(from, r.f.ExceptFrom) {
		return false
	}
	if r.f.ExceptTo != "" && strings.HasPrefix(to, r.f.ExceptTo) {
		return false
	}
	return true
}

// InjectFault installs f and returns a function removing it. Removal is
// idempotent. Installed faults affect in-flight connections immediately
// (they are consulted per chunk, not per stream).
func (n *Network) InjectFault(f LinkFault) (remove func()) {
	r := &faultRule{f: f}
	n.fmu.Lock()
	n.faults = append(n.faults, r)
	n.fmu.Unlock()
	n.nFaults.Add(1)
	var once sync.Once
	return func() {
		once.Do(func() {
			n.fmu.Lock()
			for i, q := range n.faults {
				if q == r {
					n.faults = append(n.faults[:i], n.faults[i+1:]...)
					break
				}
			}
			n.fmu.Unlock()
			n.nFaults.Add(-1)
		})
	}
}

// writeFault consults the installed faults for one chunk on from->to,
// returning extra delivery latency and/or an injection error.
func (n *Network) writeFault(from, to string) (time.Duration, error) {
	if n.nFaults.Load() == 0 {
		return 0, nil
	}
	n.fmu.Lock()
	defer n.fmu.Unlock()
	var extra time.Duration
	var err error
	for _, r := range n.faults {
		if !r.matches(from, to) {
			continue
		}
		extra += r.f.ExtraLatency
		if r.f.DropEvery > 0 {
			r.writes++
			if r.writes%int64(r.f.DropEvery) == 0 && err == nil {
				err = fmt.Errorf("%w: drop on link %s->%s", ErrInjected, from, to)
			}
		}
	}
	return extra, err
}

// dialFault reports whether an installed fault kills a dial from->to.
func (n *Network) dialFault(from, to string) error {
	if n.nFaults.Load() == 0 {
		return nil
	}
	n.fmu.Lock()
	defer n.fmu.Unlock()
	for _, r := range n.faults {
		if r.f.FailDial && r.matches(from, to) {
			return fmt.Errorf("%w: dial %s->%s", ErrInjected, from, to)
		}
	}
	return nil
}

// AddNode adds a node with the network's default bandwidth limits.
func (n *Network) AddNode(id string) (*Node, error) {
	return n.AddNodeBW(id, n.cfg.DefaultEgress, n.cfg.DefaultIngress)
}

// AddNodeBW adds a node with explicit egress/ingress limits in bytes per
// second (0 = unlimited).
func (n *Network) AddNodeBW(id string, egress, ingress int64) (*Node, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.nodes[id]; ok {
		return nil, fmt.Errorf("%w: %s", ErrAlreadyExists, id)
	}
	nd := &Node{
		id:      id,
		net:     n,
		egress:  NewLimiter(egress, 0),
		ingress: NewLimiter(ingress, 0),
		down:    make(chan struct{}),
		conns:   make(map[*Conn]struct{}),
	}
	n.nodes[id] = nd
	return nd, nil
}

// Node returns the node with the given id, or nil if absent or removed.
func (n *Network) Node(id string) *Node {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.nodes[id]
}

// RemoveNode closes the node and removes it from the network.
func (n *Network) RemoveNode(id string) {
	n.mu.Lock()
	nd := n.nodes[id]
	delete(n.nodes, id)
	n.mu.Unlock()
	if nd != nil {
		nd.Close()
	}
}

// SetWedged marks (or unmarks) a node as hung: writes touching the node
// block — with the connection held open — until the node is un-wedged,
// closed, or removed. Unlike Close, peers get no error and no EOF; they
// just stop hearing from the node, which is exactly the gray behavior a
// failure detector must catch. Returns false if the node does not exist.
func (n *Network) SetWedged(id string, wedged bool) bool {
	n.mu.Lock()
	nd := n.nodes[id]
	n.mu.Unlock()
	if nd == nil {
		return false
	}
	nd.wedged.Store(wedged)
	return true
}

// Dial opens a stream from node `from` to node `to`. The remote endpoint
// is delivered to to's Listener; Dial fails if to is not listening.
func (n *Network) Dial(from, to string) (*Conn, error) {
	n.mu.Lock()
	src := n.nodes[from]
	dst := n.nodes[to]
	n.mu.Unlock()
	if src == nil {
		return nil, fmt.Errorf("dial from %q: %w", from, ErrNoSuchNode)
	}
	if dst == nil {
		return nil, fmt.Errorf("dial to %q: %w", to, ErrNoSuchNode)
	}
	if err := n.dialFault(from, to); err != nil {
		return nil, err
	}
	return src.dial(dst)
}

// Node is a network endpoint with its own bandwidth budget.
type Node struct {
	id  string
	net *Network

	egress  *Limiter
	ingress *Limiter

	mu       sync.Mutex
	down     chan struct{}
	closed   bool
	listener *Listener
	conns    map[*Conn]struct{}

	bytesSent atomic.Int64
	bytesRecv atomic.Int64

	// wedged simulates a hung process: the node stops moving bytes on
	// all of its streams — without closing them or going down — so peers
	// observe silence, not errors. See Network.SetWedged.
	wedged atomic.Bool
}

// ID returns the node's identifier.
func (nd *Node) ID() string { return nd.id }

// BytesSent reports the total payload bytes written by this node.
func (nd *Node) BytesSent() int64 { return nd.bytesSent.Load() }

// BytesRecv reports the total payload bytes received by this node.
func (nd *Node) BytesRecv() int64 { return nd.bytesRecv.Load() }

// Down returns a channel closed when the node goes down.
func (nd *Node) Down() <-chan struct{} { return nd.down }

// Closed reports whether the node has been closed.
func (nd *Node) Closed() bool {
	nd.mu.Lock()
	defer nd.mu.Unlock()
	return nd.closed
}

// Listen starts accepting inbound connections on the node. Only one
// listener per node is supported; calling Listen again returns the same
// listener.
func (nd *Node) Listen() (*Listener, error) {
	nd.mu.Lock()
	defer nd.mu.Unlock()
	if nd.closed {
		return nil, ErrNodeDown
	}
	if nd.listener == nil {
		nd.listener = &Listener{node: nd, ch: make(chan *Conn, 64)}
	}
	return nd.listener, nil
}

// Close takes the node down: all its connections fail, its listener stops
// accepting, and pending bandwidth waiters are released. Close is
// idempotent.
func (nd *Node) Close() {
	nd.mu.Lock()
	if nd.closed {
		nd.mu.Unlock()
		return
	}
	nd.closed = true
	close(nd.down)
	conns := make([]*Conn, 0, len(nd.conns))
	for c := range nd.conns {
		conns = append(conns, c)
	}
	nd.conns = make(map[*Conn]struct{})
	nd.mu.Unlock()

	nd.egress.Close()
	nd.ingress.Close()
	for _, c := range conns {
		c.closeWithError(ErrNodeDown)
	}
}

func (nd *Node) dial(dst *Node) (*Conn, error) {
	dst.mu.Lock()
	l := dst.listener
	dstClosed := dst.closed
	dst.mu.Unlock()
	if dstClosed {
		return nil, fmt.Errorf("dial to %q: %w", dst.id, ErrNodeDown)
	}
	if l == nil {
		return nil, fmt.Errorf("dial to %q: %w", dst.id, ErrNotListening)
	}

	ab := newPipe() // src -> dst
	ba := newPipe() // dst -> src
	local := &Conn{local: nd, remote: dst, rd: ba, wr: ab, net: nd.net}
	remote := &Conn{local: dst, remote: nd, rd: ab, wr: ba, net: nd.net}
	local.peer, remote.peer = remote, local

	nd.mu.Lock()
	if nd.closed {
		nd.mu.Unlock()
		return nil, fmt.Errorf("dial from %q: %w", nd.id, ErrNodeDown)
	}
	nd.conns[local] = struct{}{}
	nd.mu.Unlock()

	dst.mu.Lock()
	if dst.closed {
		dst.mu.Unlock()
		nd.dropConn(local)
		local.closeWithError(ErrNodeDown)
		return nil, fmt.Errorf("dial to %q: %w", dst.id, ErrNodeDown)
	}
	dst.conns[remote] = struct{}{}
	dst.mu.Unlock()

	select {
	case l.ch <- remote:
	case <-dst.down:
		nd.dropConn(local)
		local.closeWithError(ErrNodeDown)
		return nil, fmt.Errorf("dial to %q: %w", dst.id, ErrNodeDown)
	}
	return local, nil
}

func (nd *Node) dropConn(c *Conn) {
	nd.mu.Lock()
	delete(nd.conns, c)
	nd.mu.Unlock()
}

// Listener accepts inbound connections for a node.
type Listener struct {
	node *Node
	ch   chan *Conn
}

// Accept blocks until a connection arrives, the node goes down, or cancel
// is closed.
func (l *Listener) Accept(cancel <-chan struct{}) (*Conn, error) {
	select {
	case c := <-l.ch:
		return c, nil
	case <-l.node.down:
		// Drain any connection racing with shutdown.
		select {
		case c := <-l.ch:
			return c, nil
		default:
		}
		return nil, ErrNodeDown
	case <-cancel:
		return nil, ErrConnClosed
	}
}

// Conn is one endpoint of a bidirectional stream between two nodes.
type Conn struct {
	local  *Node
	remote *Node
	peer   *Conn
	net    *Network
	rd     *pipe // data flowing toward this endpoint
	wr     *pipe // data flowing away from this endpoint

	closeOnce sync.Once
}

// LocalID and RemoteID identify the endpoints.
func (c *Conn) LocalID() string  { return c.local.id }
func (c *Conn) RemoteID() string { return c.remote.id }

// Write sends b to the remote endpoint, charging the local egress and
// remote ingress token buckets chunk by chunk. It blocks while bandwidth
// is unavailable and fails if either node goes down or the stream closes.
func (c *Conn) Write(b []byte) (int, error) {
	chunk := c.net.cfg.chunkSize()
	latency := c.net.cfg.Latency
	written := 0
	for len(b) > 0 {
		if err := c.waitWedged(); err != nil {
			return written, err
		}
		n := len(b)
		if n > chunk {
			n = chunk
		}
		extra, ferr := c.net.writeFault(c.local.id, c.remote.id)
		if ferr != nil {
			return written, ferr
		}
		if err := c.local.egress.Acquire(n, c.local.down); err != nil {
			return written, c.writeErr(err)
		}
		if err := c.remote.ingress.Acquire(n, c.remote.down); err != nil {
			return written, c.writeErr(err)
		}
		data := make([]byte, n)
		copy(data, b[:n])
		if err := c.wr.push(data, time.Now().Add(latency+extra)); err != nil {
			return written, err
		}
		c.local.bytesSent.Add(int64(n))
		c.remote.bytesRecv.Add(int64(n))
		written += n
		b = b[n:]
	}
	return written, nil
}

// waitWedged blocks while either endpoint is wedged (a simulated hang).
// It returns nil once both endpoints are responsive again, and an error
// if either node goes down or the stream breaks while waiting — so a
// wedged node's eventual eviction still unblocks stuck writers.
func (c *Conn) waitWedged() error {
	for c.local.wedged.Load() || c.remote.wedged.Load() {
		select {
		case <-c.local.down:
			return ErrNodeDown
		case <-c.remote.down:
			return ErrNodeDown
		case <-time.After(time.Millisecond):
			if c.wr.broken() {
				return ErrConnClosed
			}
		}
	}
	return nil
}

func (c *Conn) writeErr(err error) error {
	if errors.Is(err, ErrLimiterClosed) {
		return ErrNodeDown
	}
	return err
}

// Read reads available bytes, honoring the per-chunk delivery latency.
func (c *Conn) Read(b []byte) (int, error) {
	return c.rd.read(b)
}

// Alive reports whether the stream is still usable: both endpoints are up
// and neither direction has been closed or broken. A true result is
// advisory — the peer can go down between the check and the next use — so
// callers must still handle write/read errors; connection pools use it to
// cheaply discard conns whose peer was already evicted or restarted.
func (c *Conn) Alive() bool {
	if c.local.Closed() || c.remote.Closed() {
		return false
	}
	return !c.rd.broken() && !c.wr.broken()
}

// Close shuts down both directions of the stream. The remote side sees EOF
// on reads of data written before Close and ErrConnClosed afterwards.
func (c *Conn) Close() error {
	c.closeOnce.Do(func() {
		c.wr.closeSend()
		c.rd.closeWithError(ErrConnClosed)
		c.local.dropConn(c)
		c.remote.dropConn(c.peer)
	})
	return nil
}

// CloseWrite half-closes the stream: the remote reader drains buffered
// data and then sees EOF, while this endpoint can continue reading.
func (c *Conn) CloseWrite() error {
	c.wr.closeSend()
	return nil
}

func (c *Conn) closeWithError(err error) {
	c.wr.closeWithError(err)
	c.rd.closeWithError(err)
}
