package simnet

import (
	"io"
	"sync"
	"time"
)

// pipe is a unidirectional, latency-aware byte queue. Writers push chunks
// tagged with a delivery time; readers block until a chunk is both present
// and deliverable. Chunks are enqueued in write order and delivery times
// are monotonic per pipe, so stream ordering is preserved.
type pipe struct {
	mu     sync.Mutex
	cond   *sync.Cond
	chunks []timedChunk
	// cur holds the remainder of a partially consumed chunk.
	cur      []byte
	sendDone bool  // writer half-closed: drained readers see io.EOF
	err      error // terminal error: reads and writes fail immediately
}

type timedChunk struct {
	data []byte
	at   time.Time
}

func newPipe() *pipe {
	p := &pipe{}
	p.cond = sync.NewCond(&p.mu)
	return p
}

func (p *pipe) push(data []byte, at time.Time) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.err != nil {
		return p.err
	}
	if p.sendDone {
		return ErrConnClosed
	}
	p.chunks = append(p.chunks, timedChunk{data: data, at: at})
	p.cond.Broadcast()
	return nil
}

func (p *pipe) read(b []byte) (int, error) {
	if len(b) == 0 {
		return 0, nil
	}
	p.mu.Lock()
	for {
		if len(p.cur) > 0 {
			n := copy(b, p.cur)
			p.cur = p.cur[n:]
			p.mu.Unlock()
			return n, nil
		}
		if len(p.chunks) > 0 {
			ch := p.chunks[0]
			wait := time.Until(ch.at)
			if wait > 0 {
				// Honor the link latency without holding the lock.
				p.mu.Unlock()
				time.Sleep(wait)
				p.mu.Lock()
				continue
			}
			p.chunks = p.chunks[1:]
			p.cur = ch.data
			continue
		}
		if p.err != nil {
			err := p.err
			p.mu.Unlock()
			return 0, err
		}
		if p.sendDone {
			p.mu.Unlock()
			return 0, io.EOF
		}
		p.cond.Wait()
	}
}

// closeSend half-closes the pipe: no further pushes, readers drain then
// see io.EOF.
func (p *pipe) closeSend() {
	p.mu.Lock()
	p.sendDone = true
	p.cond.Broadcast()
	p.mu.Unlock()
}

// broken reports whether the pipe can no longer carry data: it hit a
// terminal error or its writer half-closed.
func (p *pipe) broken() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.err != nil || p.sendDone
}

// closeWithError makes subsequent reads fail with err once buffered data
// is drained, and pushes fail immediately. A pipe already terminated keeps
// its first error.
func (p *pipe) closeWithError(err error) {
	p.mu.Lock()
	if p.err == nil {
		p.err = err
	}
	p.cond.Broadcast()
	p.mu.Unlock()
}
