package simnet

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"sync"
	"testing"
	"time"
)

func pair(t *testing.T, net *Network, from, to string) (*Conn, *Conn) {
	t.Helper()
	l, err := net.Node(to).Listen()
	if err != nil {
		t.Fatal(err)
	}
	var server *Conn
	done := make(chan struct{})
	go func() {
		defer close(done)
		server, _ = l.Accept(nil)
	}()
	client, err := net.Dial(from, to)
	if err != nil {
		t.Fatal(err)
	}
	<-done
	if server == nil {
		t.Fatal("accept returned nil")
	}
	return client, server
}

func twoNodes(t *testing.T, cfg Config) *Network {
	t.Helper()
	net := New(cfg)
	if _, err := net.AddNode("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := net.AddNode("b"); err != nil {
		t.Fatal(err)
	}
	return net
}

func TestStreamRoundTrip(t *testing.T) {
	net := twoNodes(t, Config{})
	c, s := pair(t, net, "a", "b")
	msg := []byte("hello simnet")
	go func() {
		c.Write(msg)
		c.CloseWrite()
	}()
	got, err := io.ReadAll(readerFor(s))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Errorf("got %q", got)
	}
}

type connReader struct{ c *Conn }

func (r connReader) Read(p []byte) (int, error) { return r.c.Read(p) }
func readerFor(c *Conn) io.Reader               { return connReader{c} }

func TestLargeTransferIntegrity(t *testing.T) {
	net := twoNodes(t, Config{ChunkSize: 1024})
	c, s := pair(t, net, "a", "b")
	payload := make([]byte, 256<<10)
	rand.New(rand.NewSource(1)).Read(payload)
	go func() {
		c.Write(payload)
		c.CloseWrite()
	}()
	got, err := io.ReadAll(readerFor(s))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("payload corrupted in transit")
	}
}

func TestBandwidthThrottling(t *testing.T) {
	// 1MB through a 2MB/s egress should take roughly 500ms minus the
	// initial burst allowance.
	net := New(Config{ChunkSize: 32 << 10})
	if _, err := net.AddNodeBW("a", 2<<20, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := net.AddNodeBW("b", 0, 0); err != nil {
		t.Fatal(err)
	}
	c, s := pair(t, net, "a", "b")
	go io.Copy(io.Discard, readerFor(s))

	payload := make([]byte, 1<<20)
	start := time.Now()
	if _, err := c.Write(payload); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if elapsed < 300*time.Millisecond {
		t.Errorf("1MB at 2MB/s finished in %v; throttle ineffective", elapsed)
	}
	if elapsed > 2*time.Second {
		t.Errorf("transfer took %v; throttle too aggressive", elapsed)
	}
}

func TestSharedBandwidthContention(t *testing.T) {
	// Two flows into one ingress-limited node should each see about
	// half the bandwidth.
	net := New(Config{ChunkSize: 16 << 10})
	net.AddNodeBW("a", 0, 0)
	net.AddNodeBW("b", 0, 0)
	net.AddNodeBW("sink", 0, 2<<20)

	send := func(from string, n int, done chan<- time.Duration) {
		c, s := pair(t, net, from, "sink")
		go io.Copy(io.Discard, readerFor(s))
		start := time.Now()
		c.Write(make([]byte, n))
		done <- time.Since(start)
	}
	done := make(chan time.Duration, 2)
	go send("a", 512<<10, done)
	go send("b", 512<<10, done)
	d1, d2 := <-done, <-done
	total := d1
	if d2 > total {
		total = d2
	}
	// 1MB total through 2MB/s shared ingress: >=300ms.
	if total < 300*time.Millisecond {
		t.Errorf("contended transfers finished in %v; ingress not shared", total)
	}
}

func TestLatency(t *testing.T) {
	net := twoNodes(t, Config{Latency: 50 * time.Millisecond})
	c, s := pair(t, net, "a", "b")
	start := time.Now()
	go c.Write([]byte("x"))
	buf := make([]byte, 1)
	if _, err := s.Read(buf); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 40*time.Millisecond {
		t.Errorf("read completed in %v despite 50ms latency", elapsed)
	}
}

func TestNodeCloseBreaksConns(t *testing.T) {
	net := twoNodes(t, Config{})
	c, s := pair(t, net, "a", "b")
	net.Node("a").Close()

	buf := make([]byte, 1)
	if _, err := s.Read(buf); err == nil {
		t.Error("read from dead peer should fail")
	}
	if _, err := c.Write([]byte("x")); err == nil {
		t.Error("write from dead node should fail")
	}
	if !net.Node("a").Closed() {
		t.Error("node should report closed")
	}
}

func TestDialErrors(t *testing.T) {
	net := twoNodes(t, Config{})
	if _, err := net.Dial("a", "missing"); !errors.Is(err, ErrNoSuchNode) {
		t.Errorf("dial to unknown: %v", err)
	}
	if _, err := net.Dial("missing", "a"); !errors.Is(err, ErrNoSuchNode) {
		t.Errorf("dial from unknown: %v", err)
	}
	// b exists but is not listening.
	if _, err := net.Dial("a", "b"); !errors.Is(err, ErrNotListening) {
		t.Errorf("dial to non-listener: %v", err)
	}
	net.Node("b").Listen()
	net.Node("b").Close()
	if _, err := net.Dial("a", "b"); !errors.Is(err, ErrNodeDown) {
		t.Errorf("dial to closed: %v", err)
	}
}

func TestRemoveNode(t *testing.T) {
	net := twoNodes(t, Config{})
	net.RemoveNode("b")
	if net.Node("b") != nil {
		t.Error("removed node still present")
	}
	if _, err := net.AddNode("b"); err != nil {
		t.Errorf("re-adding removed id: %v", err)
	}
	if _, err := net.AddNode("a"); !errors.Is(err, ErrAlreadyExists) {
		t.Errorf("duplicate add: %v", err)
	}
}

func TestByteAccounting(t *testing.T) {
	net := twoNodes(t, Config{})
	c, s := pair(t, net, "a", "b")
	go func() {
		c.Write(make([]byte, 1000))
		c.CloseWrite()
	}()
	io.Copy(io.Discard, readerFor(s))
	if got := net.Node("a").BytesSent(); got != 1000 {
		t.Errorf("BytesSent = %d", got)
	}
	if got := net.Node("b").BytesRecv(); got != 1000 {
		t.Errorf("BytesRecv = %d", got)
	}
}

func TestListenerAcceptCancel(t *testing.T) {
	net := twoNodes(t, Config{})
	l, _ := net.Node("b").Listen()
	cancel := make(chan struct{})
	errs := make(chan error)
	go func() {
		_, err := l.Accept(cancel)
		errs <- err
	}()
	close(cancel)
	select {
	case err := <-errs:
		if err == nil {
			t.Error("canceled accept returned nil error")
		}
	case <-time.After(time.Second):
		t.Fatal("accept did not honor cancel")
	}
}

func TestHalfClose(t *testing.T) {
	net := twoNodes(t, Config{})
	c, s := pair(t, net, "a", "b")
	// Client sends then half-closes; server can still respond.
	c.Write([]byte("ping"))
	c.CloseWrite()
	buf := make([]byte, 4)
	if _, err := io.ReadFull(readerFor(s), buf); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Read(make([]byte, 1)); err != io.EOF {
		t.Errorf("expected EOF after half close, got %v", err)
	}
	if _, err := s.Write([]byte("pong")); err != nil {
		t.Fatalf("server write after client half-close: %v", err)
	}
	if _, err := io.ReadFull(readerFor(c), buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "pong" {
		t.Errorf("got %q", buf)
	}
}

func TestConcurrentConnsNoInterleaving(t *testing.T) {
	net := twoNodes(t, Config{ChunkSize: 64})
	l, _ := net.Node("b").Listen()
	var wg sync.WaitGroup
	const flows = 8
	for i := 0; i < flows; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			conn, err := l.Accept(nil)
			if err != nil {
				t.Error(err)
				return
			}
			data, err := io.ReadAll(readerFor(conn))
			if err != nil {
				t.Error(err)
				return
			}
			// Each flow sends a run of one repeated byte; interleaving
			// across conns would corrupt the run.
			for _, b := range data[1:] {
				if b != data[0] {
					t.Errorf("flow bytes interleaved")
					return
				}
			}
		}(i)
	}
	for i := 0; i < flows; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := net.Dial("a", "b")
			if err != nil {
				t.Error(err)
				return
			}
			payload := bytes.Repeat([]byte{byte('A' + i)}, 1000)
			c.Write(payload)
			c.Close()
		}(i)
	}
	wg.Wait()
}

func TestLimiterUnlimited(t *testing.T) {
	l := NewLimiter(0, 0)
	if !l.Unlimited() {
		t.Error("rate 0 should be unlimited")
	}
	start := time.Now()
	if err := l.Acquire(1<<30, nil); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > 50*time.Millisecond {
		t.Error("unlimited limiter blocked")
	}
}

func TestLimiterOversizedRequest(t *testing.T) {
	// A request larger than the burst must not deadlock.
	l := NewLimiter(1<<20, 1024)
	done := make(chan struct{})
	go func() {
		l.Acquire(64<<10, nil)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(3 * time.Second):
		t.Fatal("oversized acquire deadlocked")
	}
}

func TestLimiterClose(t *testing.T) {
	l := NewLimiter(10, 1) // very slow
	errs := make(chan error)
	go func() { errs <- l.Acquire(1000, nil) }()
	time.Sleep(10 * time.Millisecond)
	l.Close()
	select {
	case err := <-errs:
		if !errors.Is(err, ErrLimiterClosed) {
			t.Errorf("got %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("close did not release waiter")
	}
}

func TestLimiterCancel(t *testing.T) {
	l := NewLimiter(10, 1)
	cancel := make(chan struct{})
	errs := make(chan error)
	go func() { errs <- l.Acquire(1000, cancel) }()
	time.Sleep(10 * time.Millisecond)
	close(cancel)
	select {
	case err := <-errs:
		if err == nil {
			t.Error("canceled acquire returned nil")
		}
	case <-time.After(time.Second):
		t.Fatal("cancel did not release waiter")
	}
}
