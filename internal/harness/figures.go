package harness

import (
	"fmt"
	"strings"

	"pado/internal/trace"
)

// Row is one measured cell of a figure.
type Row struct {
	Outcome Outcome
	Err     error
}

// Table collects the rows of one regenerated figure.
type Table struct {
	Title string
	Rows  []Row
}

// String renders the table.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.Title)
	for _, r := range t.Rows {
		if r.Err != nil {
			fmt.Fprintf(&b, "  ERROR: %v\n", r.Err)
			continue
		}
		fmt.Fprintf(&b, "  %s\n", r.Outcome)
	}
	return b.String()
}

// Get returns the outcome for an engine (and optional workload/rate
// filters); ok is false when absent or failed.
func (t *Table) Get(match func(Params) bool) (Outcome, bool) {
	for _, r := range t.Rows {
		if r.Err == nil && match(r.Outcome.Params) {
			return r.Outcome, true
		}
	}
	return Outcome{}, false
}

// AllRates are the eviction rates of Figures 5-7.
var AllRates = []trace.Rate{trace.RateNone, trace.RateLow, trace.RateMedium, trace.RateHigh}

// AllEngines are the engines of Figures 5-7.
var AllEngines = []Engine{EngineSpark, EngineSparkCheckpoint, EnginePado}

// EvictionSweep regenerates one of Figures 5-7: JCT and relaunched-task
// ratio for every engine across eviction rates, for one workload, on 40
// transient + 5 reserved containers.
func EvictionSweep(w Workload, base Params) *Table {
	t := &Table{Title: fmt.Sprintf("%s: JCT and relaunched tasks vs eviction rate (%d transient + %d reserved)",
		w, defaultInt(base.Transient, 40), defaultInt(base.Reserved, 5))}
	for _, rate := range AllRates {
		for _, eng := range AllEngines {
			p := base
			p.Engine = eng
			p.Workload = w
			p.Rate = rate
			out, err := Run(p)
			t.Rows = append(t.Rows, Row{Outcome: out, Err: err})
		}
	}
	return t
}

// Figure5 regenerates the ALS eviction-rate sweep.
func Figure5(base Params) *Table { return EvictionSweep(WorkloadALS, base) }

// Figure6 regenerates the MLR eviction-rate sweep.
func Figure6(base Params) *Table { return EvictionSweep(WorkloadMLR, base) }

// Figure7 regenerates the MR eviction-rate sweep.
func Figure7(base Params) *Table { return EvictionSweep(WorkloadMR, base) }

// Figure8 regenerates the reserved-container sweep: JCT of
// Spark-checkpoint and Pado on every workload with 3-7 reserved
// containers under the high eviction rate.
func Figure8(base Params) *Table {
	t := &Table{Title: "JCT vs number of reserved containers (40 transient, high eviction rate)"}
	for _, w := range []Workload{WorkloadALS, WorkloadMLR, WorkloadMR} {
		for _, reserved := range []int{3, 4, 5, 6, 7} {
			for _, eng := range []Engine{EngineSparkCheckpoint, EnginePado} {
				p := base
				p.Engine = eng
				p.Workload = w
				p.Rate = trace.RateHigh
				p.Reserved = reserved
				out, err := Run(p)
				out.Params.Reserved = reserved
				t.Rows = append(t.Rows, Row{Outcome: out, Err: err})
			}
		}
	}
	return t
}

// Figure9 regenerates the scalability sweep: Pado's JCT on every
// workload at a fixed 8:1 transient:reserved ratio (27, 45, 63 total
// containers) under the high eviction rate. The workload is scaled up
// (1.5x the default volume) so the smallest cluster is resource-bound and
// the benefit of additional containers is visible, as in the paper's
// full-size runs.
func Figure9(base Params) *Table {
	t := &Table{Title: "Pado scalability at fixed 8:1 ratio (high eviction rate)"}
	shapes := []struct{ tr, rs int }{{24, 3}, {40, 5}, {56, 7}}
	for _, w := range []Workload{WorkloadALS, WorkloadMLR, WorkloadMR} {
		for _, sh := range shapes {
			p := base
			p.Engine = EnginePado
			p.Workload = w
			p.Rate = trace.RateHigh
			p.Transient, p.Reserved = sh.tr, sh.rs
			if p.Size == 0 {
				p.Size = 1
			}
			p.Size *= 1.5
			out, err := Run(p)
			t.Rows = append(t.Rows, Row{Outcome: out, Err: err})
		}
	}
	return t
}

func defaultInt(v, d int) int {
	if v == 0 {
		return d
	}
	return v
}
