package harness

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"pado/internal/core"
	"pado/internal/dag"
	"pado/internal/obs/analyze"
	"pado/internal/runtime"
	"pado/internal/trace"
	"pado/internal/vtime"
)

func tinyParams() Params {
	return Params{
		Transient:      6,
		Reserved:       2,
		Scale:          vtime.NewScale(20 * time.Millisecond),
		TimeoutMinutes: 600,
		Size:           0.08,
		Seed:           99,
	}
}

func TestRunAllEnginesTiny(t *testing.T) {
	workloads := []Workload{WorkloadMR, WorkloadMLR, WorkloadALS}
	if testing.Short() {
		// MR alone exercises every engine path; MLR and ALS only add
		// workload shapes, at several seconds each.
		workloads = []Workload{WorkloadMR}
	}
	for _, eng := range AllEngines {
		for _, w := range workloads {
			p := tinyParams()
			p.Engine = eng
			p.Workload = w
			p.Rate = trace.RateNone
			out, err := Run(p)
			if err != nil {
				t.Fatalf("%v/%v: %v", eng, w, err)
			}
			if out.TimedOut {
				t.Fatalf("%v/%v timed out", eng, w)
			}
			if out.JCTMinutes <= 0 {
				t.Errorf("%v/%v: jct = %v", eng, w, out.JCTMinutes)
			}
			if out.String() == "" {
				t.Error("empty outcome string")
			}
		}
	}
}

func TestRunWithEvictions(t *testing.T) {
	p := tinyParams()
	p.Engine = EnginePado
	p.Workload = WorkloadMR
	p.Rate = trace.RateHigh
	out, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if out.Metrics.Evictions == 0 {
		t.Error("no evictions at the high rate")
	}
}

func TestRunRepeatsAverages(t *testing.T) {
	p := tinyParams()
	p.Engine = EnginePado
	p.Workload = WorkloadMR
	p.Rate = trace.RateNone
	p.Repeats = 2
	out, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if out.JCTMinutes <= 0 || out.TimedOut {
		t.Errorf("averaged outcome = %+v", out)
	}
}

func TestPadoConfigHook(t *testing.T) {
	called := false
	p := tinyParams()
	p.Engine = EnginePado
	p.Workload = WorkloadMR
	p.PadoConfig = func(cfg *runtime.Config) {
		called = true
		cfg.DisablePartialAggregation = true
	}
	if _, err := Run(p); err != nil {
		t.Fatal(err)
	}
	if !called {
		t.Error("PadoConfig hook not invoked")
	}
}

func TestTraceDirWritesExports(t *testing.T) {
	dir := t.TempDir()
	p := tinyParams()
	p.Engine = EnginePado
	p.Workload = WorkloadMR
	p.Rate = trace.RateHigh
	p.TraceDir = dir
	if _, err := Run(p); err != nil {
		t.Fatal(err)
	}

	chrome, err := os.ReadFile(filepath.Join(dir, "pado-mr-high-seed99.trace.json"))
	if err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []struct {
			Name string `json:"name"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(chrome, &parsed); err != nil {
		t.Fatalf("invalid trace JSON: %v", err)
	}
	names := make(map[string]bool)
	for _, ev := range parsed.TraceEvents {
		names[ev.Name] = true
	}
	for _, want := range []string{"task", "push", "container_evicted"} {
		if !names[want] {
			t.Errorf("trace missing %q events", want)
		}
	}

	timeline, err := os.ReadFile(filepath.Join(dir, "pado-mr-high-seed99.timeline.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(timeline, []byte("containers:")) {
		t.Errorf("timeline missing summary:\n%s", timeline)
	}
}

func TestReportDirWritesReport(t *testing.T) {
	dir := t.TempDir()
	p := tinyParams()
	p.Engine = EnginePado
	p.Workload = WorkloadMR
	p.Rate = trace.RateHigh
	p.ReportDir = dir
	out, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	want := filepath.Join(dir, "pado-mr-high-seed99.report.json")
	if out.ReportPath != want {
		t.Errorf("ReportPath = %q, want %q", out.ReportPath, want)
	}
	rep, err := analyze.Load(want)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Engine != "pado" || rep.Workload != "mr" || rep.Rate != "high" || rep.Seed != 99 {
		t.Errorf("report identity = %s/%s/%s seed %d", rep.Engine, rep.Workload, rep.Rate, rep.Seed)
	}
	if rep.JCTNS <= 0 || rep.CritPath.TotalNS <= 0 || len(rep.Stages) == 0 {
		t.Errorf("report is empty: jct=%d cp=%d stages=%d", rep.JCTNS, rep.CritPath.TotalNS, len(rep.Stages))
	}
	if rep.JCTMinutes <= 0 {
		t.Errorf("report has no paper-minute scale: %v", rep.JCTMinutes)
	}
	// The run used RateHigh, so the stream should carry evictions; the
	// report's counters section must agree with the run's snapshot.
	if rep.Containers.Evicted != int(out.Metrics.Evictions) {
		t.Errorf("report saw %d evictions, snapshot %d", rep.Containers.Evicted, out.Metrics.Evictions)
	}
}

// TestCostModelBeatsAllTransient pins a high-eviction cell and checks the
// cost-model policy's promises against the all-transient baseline:
//
//  1. Structurally, its reserved set is a superset of the baseline's, so
//     every recomputation the baseline avoids, the cost model avoids too
//     (its expected JCT can only be lower or equal).
//  2. End to end, it completes no later than the baseline up to the
//     wall-clock scheduling noise of the simulator (the tiny cell's JCT
//     varies about +/-25% run to run, so the assertion carries a noise
//     allowance rather than a strict <=).
//  3. It never uses more reserved slots than the cluster's budget,
//     observable via the reserved_slots_peak / reserved_slots_budget
//     counters the master publishes.
func TestCostModelBeatsAllTransient(t *testing.T) {
	pinned := func() Params {
		p := tinyParams()
		p.Engine = EnginePado
		p.Workload = WorkloadMR
		p.Rate = trace.RateHigh
		p.Repeats = 5
		return p
	}

	// Structural dominance, deterministic: compile both placements for
	// the pinned cell and require cost's reserved set to contain the
	// baseline's.
	p := pinned()
	reservedSet := func(policy string) map[string]bool {
		pol, err := core.PolicyByName(policy)
		if err != nil {
			t.Fatal(err)
		}
		plan, err := core.Compile(p.pipeline().Graph(), core.PlanConfig{
			ReduceParallelism: 2 * p.Reserved,
			Policy:            pol,
			Env:               p.clusterConfig().PlacementEnv(),
		})
		if err != nil {
			t.Fatalf("compile %q: %v", policy, err)
		}
		set := make(map[string]bool)
		order, _ := plan.Graph.TopoSort()
		for _, id := range order {
			if v := plan.Graph.Vertex(id); v.Placement == dag.PlaceReserved {
				set[v.Name] = true
			}
		}
		return set
	}
	costSet, allTSet := reservedSet("cost"), reservedSet("all-transient")
	for name := range allTSet {
		if !costSet[name] {
			t.Errorf("all-transient reserves %q but cost does not; cost must dominate the baseline's reserved set", name)
		}
	}

	run := func(policy string) Outcome {
		p := pinned()
		p.Policy = policy
		out, err := Run(p)
		if err != nil {
			t.Fatalf("policy %q: %v", policy, err)
		}
		if out.TimedOut {
			t.Fatalf("policy %q timed out", policy)
		}
		return out
	}
	cost := run("cost")
	allT := run("all-transient")
	if cost.JCTMinutes > allT.JCTMinutes*1.35 {
		t.Errorf("cost policy jct = %.2f min, all-transient = %.2f min; cost model should not lose at a high eviction rate",
			cost.JCTMinutes, allT.JCTMinutes)
	}

	budget := cost.Metrics.Named["reserved_slots_budget"]
	peak := cost.Metrics.Named["reserved_slots_peak"]
	if budget <= 0 {
		t.Fatalf("reserved_slots_budget counter missing: %v", cost.Metrics.Named)
	}
	if peak <= 0 {
		t.Errorf("reserved_slots_peak counter missing: %v", cost.Metrics.Named)
	}
	if peak > budget {
		t.Errorf("reserved slot peak %d exceeds budget %d", peak, budget)
	}
}

func TestOutcomeStringPolicy(t *testing.T) {
	p := tinyParams()
	p.Engine = EnginePado
	p.Workload = WorkloadMR
	p.Rate = trace.RateNone
	p.Policy = "cost"
	out, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "cost") {
		t.Errorf("outcome string missing policy: %q", out.String())
	}
	p.Policy = ""
	out, err = Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "paper") {
		t.Errorf("outcome string missing default policy label: %q", out.String())
	}
}

// TestReportDirPolicySuffix checks the artifact-name contract: default
// (paper) runs keep their historical file names, non-default policies get
// a "-<policy>" suffix so sweeps don't clobber the baseline.
func TestReportDirPolicySuffix(t *testing.T) {
	dir := t.TempDir()
	p := tinyParams()
	p.Engine = EnginePado
	p.Workload = WorkloadMR
	p.Rate = trace.RateNone
	p.ReportDir = dir
	p.Policy = "all-transient"
	out, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	want := filepath.Join(dir, "pado-mr-none-seed99-all-transient.report.json")
	if out.ReportPath != want {
		t.Errorf("ReportPath = %q, want %q", out.ReportPath, want)
	}
	rep, err := analyze.Load(want)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Policy != "all-transient" {
		t.Errorf("report policy = %q, want all-transient", rep.Policy)
	}
}

func TestTableGet(t *testing.T) {
	tb := &Table{Title: "t"}
	tb.Rows = append(tb.Rows, Row{Outcome: Outcome{Params: Params{Engine: EnginePado, Rate: trace.RateHigh}, JCTMinutes: 5}})
	out, ok := tb.Get(func(p Params) bool { return p.Engine == EnginePado })
	if !ok || out.JCTMinutes != 5 {
		t.Errorf("Get = %+v, %v", out, ok)
	}
	if _, ok := tb.Get(func(p Params) bool { return p.Engine == EngineSpark }); ok {
		t.Error("Get matched missing row")
	}
	if tb.String() == "" {
		t.Error("empty table render")
	}
}

func TestEngineWorkloadStrings(t *testing.T) {
	if EnginePado.String() != "Pado" || EngineSparkCheckpoint.String() != "Spark-checkpoint" {
		t.Error("engine names wrong")
	}
	if WorkloadALS.String() != "ALS" || WorkloadMR.String() != "MR" || WorkloadMLR.String() != "MLR" {
		t.Error("workload names wrong")
	}
}
