// Package harness runs the paper's evaluation (§5): engine × workload ×
// eviction-rate experiments on the simulated datacenter, measuring job
// completion times in paper minutes and relaunched-task ratios, and
// printing the tables behind Figures 5-9.
//
// Absolute times are simulator units — the cluster's bandwidths and the
// workload sizes are calibrated so that the transfer/compute/eviction
// ratios land in the same regime as the paper's EC2 testbed — so the
// claims under test are the paper's qualitative results: orderings,
// approximate factors, and crossover points.
package harness

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"pado/internal/chaos"
	"pado/internal/cluster"
	"pado/internal/core"
	"pado/internal/dataflow"
	"pado/internal/engines/sparklike"
	"pado/internal/introspect"
	"pado/internal/metrics"
	"pado/internal/obs"
	"pado/internal/obs/analyze"
	"pado/internal/runtime"
	"pado/internal/storage"
	"pado/internal/trace"
	"pado/internal/vtime"
	"pado/internal/workloads"
)

// Engine selects the data processing engine under test (§5.1.2).
type Engine int

// Engines of the evaluation.
const (
	EngineSpark Engine = iota
	EngineSparkCheckpoint
	EnginePado
)

// String implements fmt.Stringer.
func (e Engine) String() string {
	switch e {
	case EngineSpark:
		return "Spark"
	case EngineSparkCheckpoint:
		return "Spark-checkpoint"
	case EnginePado:
		return "Pado"
	default:
		return fmt.Sprintf("Engine(%d)", int(e))
	}
}

// Workload selects the application (§5.1.3).
type Workload int

// Workloads of the evaluation.
const (
	WorkloadALS Workload = iota
	WorkloadMLR
	WorkloadMR
)

// String implements fmt.Stringer.
func (w Workload) String() string {
	switch w {
	case WorkloadALS:
		return "ALS"
	case WorkloadMLR:
		return "MLR"
	case WorkloadMR:
		return "MR"
	default:
		return fmt.Sprintf("Workload(%d)", int(w))
	}
}

// Params configures one experiment run.
type Params struct {
	Engine   Engine
	Workload Workload
	Rate     trace.Rate

	// Cluster shape; the paper's default is 40 transient + 5 reserved.
	Transient int
	Reserved  int

	// Scale maps paper minutes to wall time. Defaults to 60ms/minute.
	Scale vtime.Scale
	// TimeoutMinutes caps the run in paper minutes (default 90,
	// matching the paper's "does not finish for more than 90 minutes").
	TimeoutMinutes float64

	// Size scales the default workload volume (1.0 = calibrated
	// default; tests use smaller).
	Size float64

	// Tasks multiplies each workload's partition count while dividing
	// the per-partition record volume by the same factor, holding total
	// data roughly constant. It is a control-plane fan-out knob: a 10x
	// cell runs ~10x the scheduling events over the same bytes, so it
	// isolates master-loop cost from data-plane cost. Default 1.
	Tasks int

	// Policy names the placement policy for the Pado engine (see
	// core.PolicyNames). Empty means the default paper rule. The Spark
	// baselines have no placement layer and ignore it.
	Policy string

	Seed int64

	// Repeats averages the experiment over several seeds (the paper
	// reports 5-run averages). Default 1.
	Repeats int

	// Failure tunes the failure-handling plane (heartbeat detector and
	// RPC retry/backoff policy) on the Pado engine. The zero value means
	// defaults-on; see runtime.FailureConfig for the knobs and their
	// false-positive trade-offs.
	Failure runtime.FailureConfig

	// CommitStore, when non-nil, turns on incremental re-execution
	// (DESIGN.md §14) on the Pado engine: the run probes the store for
	// prior commits of its stages/tasks before launching anything and
	// writes its own outputs back. Handing the SAME store to a later Run
	// is what makes the rerun incremental; the Spark baselines ignore it.
	CommitStore *storage.CommitStore

	// InputDelta marks that fraction of the MR workload's input
	// partitions dirty (content salted by DeltaSalt), simulating an
	// incremental input update between runs against one CommitStore.
	// Zero (the default) leaves the input identical run to run. MR only:
	// the iterative workloads' inputs aren't partition-versioned.
	InputDelta float64
	// DeltaSalt versions the dirty partitions' content.
	DeltaSalt int64

	// PadoConfig mutates the Pado runtime configuration (ablations).
	PadoConfig func(*runtime.Config)

	// TraceDir, when non-empty, enables event tracing on every run and
	// writes one Chrome trace (.trace.json) and one text timeline
	// (.timeline.txt) per run into the directory, named by engine,
	// workload, rate, and seed. The directory is created if needed.
	TraceDir string

	// Chaos, when non-nil, runs the experiment under a scripted fault
	// schedule (internal/chaos). Tracing is forced on (the engine
	// triggers off the event stream); on the Pado engine the invariant
	// checker runs over the recorded trace and its report lands in
	// Outcome.Chaos.
	Chaos *chaos.Plan

	// ReportDir, when non-empty, forces event tracing on and writes one
	// analyzer report (.report.json, see internal/obs/analyze) per run
	// into the directory, named like TraceDir exports. The directory is
	// created if needed.
	ReportDir string

	// ForceTrace enables event tracing even when no TraceDir/ReportDir/
	// Chaos asks for it. RunJobsSerial sets it so the serial baseline
	// pays the same tracing overhead the (always-traced) multi-job run
	// does; without it the speedup comparison is skewed.
	ForceTrace bool

	// HTTPAddr, when non-empty, serves the live introspection plane
	// (internal/introspect: /metrics, /state, /events, ...) on that
	// address for the duration of the run and forces event tracing on
	// (the /events stream taps the tracer's fan-out). Pado engine only:
	// the Spark baselines have no JobManager to inspect. The bound
	// address is printed to stderr ("HTTP :0" picks a free port).
	HTTPAddr string

	// Jobs, when non-empty, switches the experiment to multi-job mode
	// (RunJobs): every spec runs concurrently on ONE shared cluster
	// under one runtime.JobManager, instead of the one-job-per-cluster
	// single path. Workload/Size/Policy above become defaults each spec
	// may override; Engine must be EnginePado.
	Jobs []JobSpec
}

func (p Params) withDefaults() Params {
	if p.Transient == 0 {
		p.Transient = 40
	}
	if p.Reserved == 0 {
		p.Reserved = 5
	}
	if p.Scale.WallPerMinute == 0 {
		p.Scale = vtime.NewScale(60 * time.Millisecond)
	}
	if p.TimeoutMinutes == 0 {
		p.TimeoutMinutes = 90
	}
	if p.Size == 0 {
		p.Size = 1
	}
	if p.Tasks == 0 {
		p.Tasks = 1
	}
	if p.Seed == 0 {
		p.Seed = 424242
	}
	return p
}

// Outcome summarizes one run.
type Outcome struct {
	Params     Params
	JCTMinutes float64
	TimedOut   bool
	Metrics    metrics.Snapshot

	// Chaos carries the invariant checker's report (Pado engine under a
	// chaos plan only; nil otherwise).
	Chaos *chaos.Report
	// Injections lists the faults the chaos engine applied.
	Injections []chaos.Injection
	// ReportPath is the analyzer report written for this run (ReportDir
	// set only; the last repeat's path when averaging).
	ReportPath string
}

// String renders one outcome row.
func (o Outcome) String() string {
	jct := fmt.Sprintf("%.1f", o.JCTMinutes)
	if o.TimedOut {
		jct = fmt.Sprintf(">%.0f", o.JCTMinutes)
	}
	return fmt.Sprintf("%-17s %-4s %-7s %-13s %2dT+%dR jct=%6s min relaunched=%5.0f%% evictions=%d",
		o.Params.Engine, o.Params.Workload, o.Params.Rate, o.Params.policyLabel(),
		o.Params.Transient, o.Params.Reserved, jct,
		o.Metrics.RelaunchRatio()*100, o.Metrics.Evictions)
}

// policyLabel is the placement policy for display: the Pado engine's
// configured policy (defaulting to the paper rule), "-" for engines
// without a placement layer.
func (p Params) policyLabel() string {
	if p.Engine != EnginePado {
		return "-"
	}
	if p.Policy == "" {
		return core.PaperRule{}.Name()
	}
	return p.Policy
}

// Cluster bandwidths in simulator bytes/second, calibrated so the data
// movement costs dominate the way they do on the paper's instances: the
// handful of reserved/storage nodes are the funnel.
const (
	transientBW   = 3 << 20 // 3 MiB/s
	reservedBW    = 3 << 20 // 3 MiB/s
	masterBW      = 6 << 20
	storageDiskBW = 2560 << 10 // GlusterFS-substitute disk throughput
	netLatency    = 500 * time.Microsecond
	// cpuRate is each executor's compute capacity in records/second;
	// it makes the reduce-side compute of record-heavy jobs (MR) a real
	// per-node budget, so few reserved containers means slow reduces
	// (Figure 8(c)).
	cpuRate = 200_000
)

func (p Params) pipeline() *dataflow.Pipeline {
	scale := func(n int) int {
		v := int(float64(n) * p.Size)
		if v < 1 {
			v = 1
		}
		return v
	}
	// fan applies the Tasks multiplier: more partitions, each thinner,
	// same total volume (the per-partition floor of 1 record keeps tiny
	// Size cells valid).
	fan := func(parts, per int) (int, int) {
		if p.Tasks <= 1 {
			return parts, per
		}
		per /= p.Tasks
		if per < 1 {
			per = 1
		}
		return parts * p.Tasks, per
	}
	switch p.Workload {
	case WorkloadALS:
		cfg := workloads.DefaultALSConfig()
		cfg.RatingsPerPart = scale(cfg.RatingsPerPart)
		cfg.Users = scale(cfg.Users)
		cfg.Items = scale(cfg.Items)
		cfg.Partitions, cfg.RatingsPerPart = fan(cfg.Partitions, cfg.RatingsPerPart)
		return workloads.ALS(cfg)
	case WorkloadMLR:
		cfg := workloads.DefaultMLRConfig()
		cfg.SamplesPerPart = scale(cfg.SamplesPerPart)
		if p.Engine == EnginePado {
			// The paper runs MLlib programs (treeAggregate) on the
			// Spark baselines and the Figure 3(b) Beam program on
			// Pado, where partial aggregation plays the tree's role.
			cfg.TreeWidth = 0
		}
		cfg.Partitions, cfg.SamplesPerPart = fan(cfg.Partitions, cfg.SamplesPerPart)
		return workloads.MLR(cfg)
	default:
		cfg := workloads.DefaultMRConfig()
		cfg.LinesPerPart = scale(cfg.LinesPerPart)
		cfg.Partitions, cfg.LinesPerPart = fan(cfg.Partitions, cfg.LinesPerPart)
		cfg.DeltaFrac = p.InputDelta
		cfg.DeltaSalt = p.DeltaSalt
		return workloads.MR(cfg)
	}
}

func (p Params) clusterConfig() cluster.Config {
	return cluster.Config{
		Transient:        p.Transient,
		Reserved:         p.Reserved,
		Slots:            4,
		CPURecordsPerSec: cpuRate,
		TransientBW:      transientBW,
		ReservedBW:       reservedBW,
		MasterBW:         masterBW,
		Latency:          netLatency,
		Lifetimes:        trace.Lifetimes(p.Rate),
		Scale:            p.Scale,
		MinLifetime:      p.Scale.Wall(0.5),
		Seed:             p.Seed,
	}
}

func (p Params) newCluster() (*cluster.Cluster, error) {
	return cluster.New(p.clusterConfig())
}

// Run executes one experiment, averaging over p.Repeats seeds.
func Run(p Params) (Outcome, error) {
	p = p.withDefaults()
	if p.Repeats <= 1 {
		return runOnce(p)
	}
	var sum Outcome
	var jct, relaunch, evictions float64
	timedOut := 0
	for i := 0; i < p.Repeats; i++ {
		q := p
		q.Seed = p.Seed + int64(i)*7919
		out, err := runOnce(q)
		if err != nil {
			return Outcome{}, err
		}
		jct += out.JCTMinutes
		relaunch += out.Metrics.RelaunchRatio()
		evictions += float64(out.Metrics.Evictions)
		if out.TimedOut {
			timedOut++
		}
		sum = out
	}
	n := float64(p.Repeats)
	sum.Params = p
	sum.JCTMinutes = jct / n
	sum.TimedOut = timedOut*2 > p.Repeats // majority timed out
	sum.Metrics.Evictions = int64(evictions / n)
	sum.Metrics.OriginalTasks = 1000
	sum.Metrics.RelaunchedTasks = int64(relaunch / n * 1000)
	return sum, nil
}

func runOnce(p Params) (Outcome, error) {
	pipe := p.pipeline()
	cl, err := p.newCluster()
	if err != nil {
		return Outcome{}, err
	}
	ctx, cancel := context.WithTimeout(context.Background(), p.Scale.Wall(p.TimeoutMinutes))
	defer cancel()

	var tracer *obs.Tracer
	if p.TraceDir != "" || p.ReportDir != "" || p.Chaos != nil || p.ForceTrace ||
		(p.HTTPAddr != "" && p.Engine == EnginePado) {
		tracer = obs.New()
	}

	var engine *chaos.Engine
	if p.Chaos != nil {
		engine = chaos.NewEngine(p.Chaos, cl)
		engine.Attach(tracer)
		defer engine.Stop()
	}

	var snap metrics.Snapshot
	var report *chaos.Report
	var injections []chaos.Injection
	var stageParents map[int][]int
	switch p.Engine {
	case EnginePado:
		cfg, err := p.padoRuntimeConfig(tracer, engine)
		if err != nil {
			return Outcome{}, err
		}
		if p.HTTPAddr != "" {
			// The single-job manager only exists inside runtime.Run;
			// OnManager hands it to the introspection plane as soon as it
			// starts, and the server comes down with the run.
			var srv *introspect.Server
			defer func() { srv.Close() }()
			prev := cfg.OnManager
			cfg.OnManager = func(jm *runtime.JobManager) {
				if prev != nil {
					prev(jm)
				}
				var err error
				srv, err = introspect.Start(introspect.Options{
					Addr: p.HTTPAddr, Manager: jm, Tracer: tracer,
				})
				if err != nil {
					fmt.Fprintf(os.Stderr, "harness: introspection plane: %v\n", err)
					return
				}
				fmt.Fprintf(os.Stderr, "introspection plane listening on http://%s\n", srv.Addr())
			}
		}
		res, err := runtime.Run(ctx, cl, pipe.Graph(), cfg)
		if err != nil {
			return Outcome{}, err
		}
		snap = res.Metrics
		stageParents = make(map[int][]int, len(res.Plan.Stages))
		for _, ps := range res.Plan.Stages {
			stageParents[ps.ID] = ps.Parents
		}
		if engine != nil {
			engine.Stop()
			injections = engine.Injections()
			report = chaos.Check(tracer.Events(), stageParents)
		}
	default:
		cfg := sparklike.Config{Checkpoint: p.Engine == EngineSparkCheckpoint, Tracer: tracer}
		cfg.StorageDiskBW = storageDiskBW
		// Spark's shuffle-fetch retry dance (5s waits on a ~13-minute
		// job) scales to ~0.1 paper minutes per retry.
		cfg.FetchRetries = 1
		cfg.FetchRetryWait = p.Scale.Wall(0.1)
		cfg.Plan.ReduceParallelism = 2 * p.Reserved
		res, err := sparklike.Run(ctx, cl, pipe.Graph(), cfg)
		if err != nil {
			return Outcome{}, err
		}
		snap = res.Metrics
		stageParents = make(map[int][]int, len(res.Plan.Stages))
		for _, ps := range res.Plan.Stages {
			stageParents[ps.ID] = ps.Parents
		}
		if engine != nil {
			engine.Stop()
			injections = engine.Injections()
		}
	}

	if p.TraceDir != "" {
		if err := writeTraces(p, tracer); err != nil {
			return Outcome{}, err
		}
	}

	var reportPath string
	if p.ReportDir != "" {
		var err error
		if reportPath, err = writeReport(p, tracer, stageParents, snap); err != nil {
			return Outcome{}, err
		}
	}

	jct := p.Scale.Minutes(snap.JCT)
	if snap.TimedOut {
		jct = p.TimeoutMinutes
	}
	return Outcome{Params: p, JCTMinutes: jct, TimedOut: snap.TimedOut, Metrics: snap,
		Chaos: report, Injections: injections, ReportPath: reportPath}, nil
}

// padoRuntimeConfig assembles the Pado runtime configuration for one
// experiment cell: reduce parallelism tracking the reserved pool, the
// named placement policy against the cell's capacity env, and the
// paper-time partial-aggregation escape delay (§3.2.7, pinned to 0.1
// paper minutes at the current scale).
func (p Params) padoRuntimeConfig(tracer *obs.Tracer, engine *chaos.Engine) (runtime.Config, error) {
	cfg := runtime.Config{Tracer: tracer}
	if engine != nil {
		cfg.Chaos = engine
	}
	// Pado concentrates reduce tasks on the reserved containers, so its
	// reduce parallelism tracks the reserved pool.
	cfg.Plan.ReduceParallelism = 2 * p.Reserved
	pol, err := core.PolicyByName(p.Policy)
	if err != nil {
		return runtime.Config{}, err
	}
	cfg.Plan.Policy = pol
	cfg.Plan.Env = p.clusterConfig().PlacementEnv()
	cfg.AggMaxDelay = p.Scale.Wall(0.1)
	cfg.Failure = p.Failure
	if p.CommitStore != nil {
		cfg.Commits = p.CommitStore
		// Task-level commits need content-stable boundary payloads;
		// partially aggregated frames fold nondeterministic task covers
		// together, so the incremental path runs on raw boundaries.
		cfg.DisablePartialAggregation = true
	}
	if p.PadoConfig != nil {
		p.PadoConfig(&cfg)
	}
	return cfg, nil
}

// writeReport analyzes one run's event stream and writes the report
// JSON under p.ReportDir, returning the written path.
func writeReport(p Params, tracer *obs.Tracer, stageParents map[int][]int, snap metrics.Snapshot) (string, error) {
	if err := os.MkdirAll(p.ReportDir, 0o755); err != nil {
		return "", err
	}
	opts := analyze.Options{
		StageParents: stageParents,
		Scale:        analyze.ScaleInfo{WallPerMinute: p.Scale.WallPerMinute},
		JCT:          snap.JCT,
		TimedOut:     snap.TimedOut,
		Engine:       strings.ToLower(p.Engine.String()),
		Workload:     strings.ToLower(p.Workload.String()),
		Rate:         p.Rate.String(),
		Seed:         p.Seed,
		Snapshot:     &snap,
	}
	if p.Engine == EnginePado {
		opts.Policy = p.policyLabel()
	}
	rep := analyze.Analyze(tracer.Events(), opts)
	path := filepath.Join(p.ReportDir, exportBase(p)+".report.json")
	return path, rep.Save(path)
}

// exportBase names one run's export files by its experiment cell. A
// non-default placement policy joins the name so policy sweeps over the
// same cell do not collide; the default policy keeps the historical
// four-part name (committed baselines and CI artifacts depend on it).
func exportBase(p Params) string {
	base := strings.ToLower(fmt.Sprintf("%s-%s-%s-seed%d", p.Engine, p.Workload, p.Rate, p.Seed))
	if p.Engine == EnginePado && p.Policy != "" && p.Policy != (core.PaperRule{}).Name() {
		base += "-" + p.Policy
	}
	if p.Tasks > 1 {
		base += fmt.Sprintf("-tasks%d", p.Tasks)
	}
	if p.InputDelta > 0 {
		base += fmt.Sprintf("-delta%g", p.InputDelta)
	}
	return base
}

// writeTraces exports one run's event stream as a Chrome trace and a text
// timeline under p.TraceDir.
func writeTraces(p Params, tracer *obs.Tracer) error {
	if err := os.MkdirAll(p.TraceDir, 0o755); err != nil {
		return err
	}
	events := tracer.Events()
	base := exportBase(p)
	chrome, err := os.Create(filepath.Join(p.TraceDir, base+".trace.json"))
	if err != nil {
		return err
	}
	if err := obs.WriteChromeTrace(chrome, events, p.Scale); err != nil {
		chrome.Close()
		return err
	}
	if err := chrome.Close(); err != nil {
		return err
	}
	timeline, err := os.Create(filepath.Join(p.TraceDir, base+".timeline.txt"))
	if err != nil {
		return err
	}
	if err := obs.WriteTimeline(timeline, events, p.Scale); err != nil {
		timeline.Close()
		return err
	}
	return timeline.Close()
}
