package harness

import (
	"path/filepath"
	"testing"
	"time"

	"pado/internal/trace"
	"pado/internal/vtime"
)

func multiParams(t *testing.T) Params {
	t.Helper()
	return Params{
		Engine:         EnginePado,
		Rate:           trace.RateNone,
		Transient:      8,
		Reserved:       2,
		Size:           0.05,
		Scale:          vtime.NewScale(10 * time.Millisecond),
		TimeoutMinutes: 600,
		Seed:           424242,
		Jobs: []JobSpec{
			{Workload: WorkloadMR},
			{Workload: WorkloadMR},
		},
	}
}

// TestRunJobsSharedCluster is the end-to-end multi-job smoke: two MR
// jobs on one shared cluster must both complete with per-job invariants
// held, distinct job ids, and per-job + aggregate reports on disk.
func TestRunJobsSharedCluster(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-job harness run skipped in short mode")
	}
	p := multiParams(t)
	p.ReportDir = t.TempDir()

	out, err := RunJobs(p)
	if err != nil {
		t.Fatalf("RunJobs: %v", err)
	}
	if !out.OK() {
		t.Fatalf("multi-job run not OK:\n%s", out)
	}
	if len(out.Jobs) != 2 {
		t.Fatalf("got %d job outcomes, want 2", len(out.Jobs))
	}
	if out.Jobs[0].JobID == out.Jobs[1].JobID {
		t.Errorf("jobs share an id: %d", out.Jobs[0].JobID)
	}
	if out.MakespanMinutes <= 0 {
		t.Errorf("makespan = %v, want > 0", out.MakespanMinutes)
	}
	for _, j := range out.Jobs {
		if j.Digest == "" {
			t.Errorf("job %s: empty determinism digest", j.Name)
		}
		if j.Chaos == nil || !j.Chaos.OK() {
			t.Errorf("job %s: invariants not verified: %v", j.Name, j.Chaos)
		}
		if j.ReportPath == "" {
			t.Errorf("job %s: no report written", j.Name)
		} else if _, err := filepath.Glob(j.ReportPath); err != nil {
			t.Errorf("job %s: bad report path: %v", j.Name, err)
		}
	}
	if out.AggregatePath == "" {
		t.Error("no aggregate report written")
	}
}

// TestRunJobsSerialBaseline: the serial baseline runs each spec on its
// own cluster and sums the JCTs.
func TestRunJobsSerialBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("serial baseline run skipped in short mode")
	}
	p := multiParams(t)
	outs, total, err := RunJobsSerial(p)
	if err != nil {
		t.Fatalf("RunJobsSerial: %v", err)
	}
	if len(outs) != 2 {
		t.Fatalf("got %d outcomes, want 2", len(outs))
	}
	var sum float64
	for _, o := range outs {
		if o.TimedOut {
			t.Errorf("serial job timed out")
		}
		sum += o.JCTMinutes
	}
	if total != sum {
		t.Errorf("total = %v, want sum of JCTs %v", total, sum)
	}
}

// TestRunJobsValidation pins the mode's preconditions.
func TestRunJobsValidation(t *testing.T) {
	p := multiParams(t)
	p.Jobs = nil
	if _, err := RunJobs(p); err == nil {
		t.Error("RunJobs with no specs should fail")
	}
	p = multiParams(t)
	p.Engine = EngineSpark
	if _, err := RunJobs(p); err == nil {
		t.Error("RunJobs on a non-Pado engine should fail")
	}
}
