package harness

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"pado/internal/chaos"
	"pado/internal/introspect"
	"pado/internal/metrics"
	"pado/internal/obs"
	"pado/internal/obs/analyze"
	"pado/internal/runtime"
)

// JobSpec describes one job of a multi-job experiment. Zero-valued
// fields inherit the enclosing Params defaults.
type JobSpec struct {
	Workload Workload
	// Size scales this job's workload volume (0 = Params.Size).
	Size float64
	// Policy overrides the placement policy ("" = Params.Policy).
	Policy string
	// Weight is the job's fair-scheduling share (0 = 1).
	Weight float64
	// Priority orders the manager's admission queue.
	Priority int
	// ReservedSlots is the job's admission demand against the cell's
	// reserved-slot budget (0 = an even share of the budget, so that
	// every spec of the batch can admit concurrently).
	ReservedSlots int
	// StaggerMinutes delays this job's submission by paper minutes
	// after the experiment starts.
	StaggerMinutes float64
}

func (s JobSpec) name(i int) string {
	return fmt.Sprintf("%s-%d", strings.ToLower(s.Workload.String()), i+1)
}

// jobParams derives per-spec experiment params from the shared defaults.
func (p Params) jobParams(s JobSpec) Params {
	q := p
	q.Engine = EnginePado
	q.Workload = s.Workload
	if s.Size > 0 {
		q.Size = s.Size
	}
	if s.Policy != "" {
		q.Policy = s.Policy
	}
	return q
}

// JobOutcome is one job's result within a multi-job run.
type JobOutcome struct {
	Spec  JobSpec
	Name  string
	JobID int

	JCTMinutes float64
	TimedOut   bool
	Metrics    metrics.Snapshot

	// Chaos is the per-job invariant verdict (CheckJob over the shared
	// trace) and Digest its determinism fingerprint (verdict + canonical
	// output).
	Chaos  *chaos.Report
	Digest string

	// ReportPath is this job's analyzer report (ReportDir set only).
	ReportPath string

	// Err is the job's failure (abort, rejection, manager shutdown).
	Err error
}

// MultiOutcome summarizes one multi-job run on a shared cluster.
type MultiOutcome struct {
	Params Params
	Jobs   []JobOutcome

	// MakespanMinutes is first-submission-to-last-completion in paper
	// minutes: the concurrent cost of the whole batch.
	MakespanMinutes float64

	// AggregatePath is the whole-fleet analyzer report (ReportDir only).
	AggregatePath string

	// Injections lists applied chaos faults (fleet-wide).
	Injections []chaos.Injection
}

// OK reports whether every job completed without error or timeout and
// every per-job invariant check passed.
func (m MultiOutcome) OK() bool {
	for _, j := range m.Jobs {
		if j.Err != nil || j.TimedOut {
			return false
		}
		if j.Chaos != nil && !j.Chaos.OK() {
			return false
		}
	}
	return true
}

// TotalJCTMinutes sums the per-job completion times (the serial-cost
// equivalent of the batch, as experienced by each submitter).
func (m MultiOutcome) TotalJCTMinutes() float64 {
	var sum float64
	for _, j := range m.Jobs {
		sum += j.JCTMinutes
	}
	return sum
}

// Speedup compares a serial baseline's total runtime against this run's
// makespan (>1 means sharing the cluster beat running the jobs one
// after another).
func (m MultiOutcome) Speedup(serialTotalMinutes float64) float64 {
	if m.MakespanMinutes <= 0 {
		return 0
	}
	return serialTotalMinutes / m.MakespanMinutes
}

// String renders one row per job plus the makespan summary.
func (m MultiOutcome) String() string {
	var b strings.Builder
	for _, j := range m.Jobs {
		jct := fmt.Sprintf("%.1f", j.JCTMinutes)
		status := "ok"
		switch {
		case j.Err != nil:
			status = "error: " + j.Err.Error()
		case j.TimedOut:
			status = "TIMED OUT"
			jct = fmt.Sprintf(">%.0f", j.JCTMinutes)
		case j.Chaos != nil && !j.Chaos.OK():
			status = fmt.Sprintf("%d invariant violation(s)", len(j.Chaos.Violations))
		}
		fmt.Fprintf(&b, "job %-8s id=%d jct=%6s min relaunched=%5.0f%% %s\n",
			j.Name, j.JobID, jct, j.Metrics.RelaunchRatio()*100, status)
	}
	fmt.Fprintf(&b, "makespan=%.1f min total-jct=%.1f min", m.MakespanMinutes, m.TotalJCTMinutes())
	return b.String()
}

// RunJobs executes p.Jobs concurrently on one shared cluster under a
// single runtime.JobManager: one admission-controlled, weighted-fair
// multi-job master instead of the single path's one-cluster-per-job.
// Tracing is always on (per-job invariant checks and digests need the
// merged event stream); chaos plans apply fleet-wide, with per-job
// targeting via Trigger.Job/Fault.Job.
func RunJobs(p Params) (MultiOutcome, error) {
	p = p.withDefaults()
	if len(p.Jobs) == 0 {
		return MultiOutcome{}, fmt.Errorf("harness: RunJobs needs at least one JobSpec")
	}
	if p.Engine != EnginePado {
		return MultiOutcome{}, fmt.Errorf("harness: multi-job mode requires the Pado engine")
	}

	cl, err := p.newCluster()
	if err != nil {
		return MultiOutcome{}, err
	}
	tracer := obs.New()
	fleet := &metrics.Job{}
	tracer.FeedCounters(fleet)

	var engine *chaos.Engine
	if p.Chaos != nil {
		engine = chaos.NewEngine(p.Chaos, cl)
		engine.Attach(tracer)
		defer engine.Stop()
	}

	env := p.clusterConfig().PlacementEnv()
	// Specs without an explicit demand get an even carve of the cell's
	// reserved-slot budget: left to the manager's default, every job
	// would demand the whole budget and the batch would serialize.
	share := 0
	if env.ReservedSlotBudget > 0 {
		share = env.ReservedSlotBudget / len(p.Jobs)
		if share < 1 {
			share = 1
		}
	}

	jm, err := runtime.NewJobManager(cl, runtime.ManagerConfig{
		Env:     env,
		Tracer:  tracer,
		Metrics: fleet,
		Failure: p.Failure,
	})
	if err != nil {
		return MultiOutcome{}, err
	}
	defer jm.Close()

	if p.HTTPAddr != "" {
		srv, err := introspect.Start(introspect.Options{
			Addr: p.HTTPAddr, Manager: jm, Tracer: tracer,
		})
		if err != nil {
			return MultiOutcome{}, err
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "introspection plane listening on http://%s\n", srv.Addr())
	}

	ctx, cancel := context.WithTimeout(context.Background(), p.Scale.Wall(p.TimeoutMinutes))
	defer cancel()

	type jobRes struct {
		res    *runtime.Result
		handle *runtime.JobHandle
		err    error
	}
	results := make([]jobRes, len(p.Jobs))
	start := time.Now()
	var wg sync.WaitGroup
	for i, spec := range p.Jobs {
		wg.Add(1)
		go func(i int, spec JobSpec) {
			defer wg.Done()
			if spec.StaggerMinutes > 0 {
				select {
				case <-time.After(p.Scale.Wall(spec.StaggerMinutes)):
				case <-ctx.Done():
					results[i].err = ctx.Err()
					return
				}
			}
			q := p.jobParams(spec)
			cfg, err := q.padoRuntimeConfig(tracer, engine)
			if err != nil {
				results[i].err = err
				return
			}
			met := &metrics.Job{}
			demand := spec.ReservedSlots
			if demand == 0 {
				demand = share
			}
			h, err := jm.Submit(q.pipeline().Graph(), cfg, runtime.JobOptions{
				Name:          spec.name(i),
				Weight:        spec.Weight,
				Priority:      spec.Priority,
				ReservedSlots: demand,
				Metrics:       met,
			})
			if err != nil {
				results[i].err = err
				return
			}
			results[i].handle = h
			results[i].res, results[i].err = h.Wait(ctx)
		}(i, spec)
	}
	wg.Wait()
	makespan := time.Since(start)

	if engine != nil {
		engine.Stop()
	}
	events := tracer.Events()

	out := MultiOutcome{Params: p, MakespanMinutes: p.Scale.Minutes(makespan)}
	if engine != nil {
		out.Injections = engine.Injections()
	}
	for i, spec := range p.Jobs {
		jo := JobOutcome{Spec: spec, Name: spec.name(i), Err: results[i].err}
		if h := results[i].handle; h != nil {
			jo.JobID = h.ID()
		}
		if res := results[i].res; res != nil {
			jo.Metrics = res.Metrics
			jo.TimedOut = res.Metrics.TimedOut
			jo.JCTMinutes = p.Scale.Minutes(res.Metrics.JCT)
			if jo.TimedOut {
				jo.JCTMinutes = p.TimeoutMinutes
			}
			parents := make(map[int][]int, len(res.Plan.Stages))
			for _, ps := range res.Plan.Stages {
				parents[ps.ID] = ps.Parents
			}
			jo.Chaos = chaos.CheckJob(events, jo.JobID, parents)
			jo.Digest = jo.Chaos.Digest(chaos.Canonical(res.Outputs))
			if p.ReportDir != "" {
				q := p.jobParams(spec)
				path, err := writeJobReport(q, events, parents, res.Metrics, jo.JobID, jo.Name)
				if err != nil {
					return MultiOutcome{}, err
				}
				jo.ReportPath = path
			}
		}
		out.Jobs = append(out.Jobs, jo)
	}

	if p.ReportDir != "" {
		snap := fleet.Snapshot(makespan, false)
		path, err := writeJobReport(p, events, nil, snap, 0, "aggregate")
		if err != nil {
			return MultiOutcome{}, err
		}
		out.AggregatePath = path
	}
	return out, nil
}

// writeJobReport writes one job-scoped (or, with job 0, fleet-aggregate)
// analyzer report into p.ReportDir.
func writeJobReport(p Params, events []obs.Event, stageParents map[int][]int, snap metrics.Snapshot, job int, label string) (string, error) {
	opts := analyze.Options{
		StageParents: stageParents,
		Scale:        analyze.ScaleInfo{WallPerMinute: p.Scale.WallPerMinute},
		JCT:          snap.JCT,
		TimedOut:     snap.TimedOut,
		Engine:       strings.ToLower(p.Engine.String()),
		Workload:     strings.ToLower(p.Workload.String()),
		Rate:         p.Rate.String(),
		Seed:         p.Seed,
		Job:          job,
		Policy:       p.policyLabel(),
		Snapshot:     &snap,
	}
	if job == 0 {
		opts.Workload = "multi"
		opts.Policy = ""
	}
	rep := analyze.Analyze(events, opts)
	if err := os.MkdirAll(p.ReportDir, 0o755); err != nil {
		return "", fmt.Errorf("harness: report dir: %w", err)
	}
	base := exportBase(p)
	if job == 0 {
		// The aggregate spans workloads; exportBase's single-workload
		// name would mislabel it.
		base = strings.ToLower(fmt.Sprintf("%s-multi-%s-seed%d", p.Engine, p.Rate, p.Seed))
	}
	path := filepath.Join(p.ReportDir, base+"-"+label+".report.json")
	return path, rep.Save(path)
}

// RunJobsSerial runs the same specs one after another, each on a fresh
// cluster of the same shape and seed (the classic one-job-per-cluster
// path), and returns the outcomes plus the summed JCT in paper minutes.
// It is the baseline RunJobs' speedup is measured against; chaos plans
// are ignored (they script multi-job interleavings).
func RunJobsSerial(p Params) ([]Outcome, float64, error) {
	p = p.withDefaults()
	var outs []Outcome
	var total float64
	for i, spec := range p.Jobs {
		q := p.jobParams(spec)
		q.Jobs = nil
		q.Chaos = nil
		q.ForceTrace = true
		if q.ReportDir != "" {
			// Serial reports would collide with the multi-job names;
			// the serial baseline is about JCT only.
			q.ReportDir = ""
		}
		out, err := runOnce(q)
		if err != nil {
			return nil, 0, fmt.Errorf("harness: serial job %s: %w", spec.name(i), err)
		}
		outs = append(outs, out)
		total += out.JCTMinutes
	}
	return outs, total, nil
}
