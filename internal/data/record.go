// Package data defines the record model and serialization layer shared by
// every engine in the repository.
//
// Records are key/value pairs. All cross-node movement (pushes, shuffle
// pulls, checkpoints, broadcasts) carries records in an encoded form
// produced by a Coder, so transfer sizes are real byte counts and the
// bandwidth model in simnet sees realistic volumes.
package data

import (
	"fmt"
	"hash/fnv"
	"math"
)

// Record is a single element of a distributed collection. Key may be nil
// for keyless collections (e.g. global aggregation inputs).
type Record struct {
	Key   any
	Value any
}

// KV constructs a Record.
func KV(key, value any) Record { return Record{Key: key, Value: value} }

// String renders the record for debugging.
func (r Record) String() string { return fmt.Sprintf("(%v, %v)", r.Key, r.Value) }

// HashKey maps a record key to a stable 64-bit hash used for partitioning.
// The supported key types cover everything the built-in coders produce.
func HashKey(k any) uint64 {
	h := fnv.New64a()
	switch v := k.(type) {
	case nil:
		return 0
	case string:
		_, _ = h.Write([]byte(v))
	case int:
		writeUint64(h, uint64(int64(v)))
	case int32:
		writeUint64(h, uint64(int64(v)))
	case int64:
		writeUint64(h, uint64(v))
	case uint64:
		writeUint64(h, v)
	case float64:
		writeUint64(h, math.Float64bits(v))
	case bool:
		if v {
			writeUint64(h, 1)
		} else {
			writeUint64(h, 0)
		}
	default:
		_, _ = fmt.Fprintf(h, "%v", v)
	}
	return h.Sum64()
}

type byteWriter interface{ Write([]byte) (int, error) }

func writeUint64(w byteWriter, v uint64) {
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
	_, _ = w.Write(b[:])
}

// Partition maps a key to one of n partitions.
func Partition(key any, n int) int {
	if n <= 1 {
		return 0
	}
	return int(HashKey(key) % uint64(n))
}
