package data

import (
	"bytes"
	"fmt"
)

// Coder serializes whole records. Engines use the coder attached to each
// collection to encode task outputs for transfer and decode them on the
// receiving side.
type Coder interface {
	// Name identifies the coder for diagnostics.
	Name() string
	EncodeRecord(e *Encoder, r Record) error
	DecodeRecord(d *Decoder) (Record, error)
}

// ValueCoder serializes one component (key or value) of a record.
type ValueCoder interface {
	Name() string
	EncodeValue(e *Encoder, v any) error
	DecodeValue(d *Decoder) (any, error)
}

// KVCoder combines a key coder and a value coder into a record coder.
type KVCoder struct {
	K ValueCoder
	V ValueCoder
}

// Name implements Coder.
func (c KVCoder) Name() string { return fmt.Sprintf("kv<%s,%s>", c.K.Name(), c.V.Name()) }

// EncodeRecord implements Coder.
func (c KVCoder) EncodeRecord(e *Encoder, r Record) error {
	if err := c.K.EncodeValue(e, r.Key); err != nil {
		return err
	}
	return c.V.EncodeValue(e, r.Value)
}

// DecodeRecord implements Coder.
func (c KVCoder) DecodeRecord(d *Decoder) (Record, error) {
	k, err := c.K.DecodeValue(d)
	if err != nil {
		return Record{}, err
	}
	v, err := c.V.DecodeValue(d)
	if err != nil {
		return Record{}, err
	}
	return Record{Key: k, Value: v}, nil
}

// Built-in value coders. Each is a stateless singleton.
var (
	StringCoder   ValueCoder = stringCoder{}
	Int64Coder    ValueCoder = int64Coder{}
	Float64Coder  ValueCoder = float64Coder{}
	Float64sCoder ValueCoder = float64sCoder{}
	BytesCoder    ValueCoder = bytesCoder{}
	NilCoder      ValueCoder = nilCoder{}
)

type stringCoder struct{}

func (stringCoder) Name() string { return "string" }
func (stringCoder) EncodeValue(e *Encoder, v any) error {
	s, ok := v.(string)
	if !ok {
		return typeErr("string", v)
	}
	return e.String(s)
}
func (stringCoder) DecodeValue(d *Decoder) (any, error) { return d.String() }

type int64Coder struct{}

func (int64Coder) Name() string { return "int64" }
func (int64Coder) EncodeValue(e *Encoder, v any) error {
	switch n := v.(type) {
	case int64:
		return e.Varint(n)
	case int:
		return e.Varint(int64(n))
	default:
		return typeErr("int64", v)
	}
}
func (int64Coder) DecodeValue(d *Decoder) (any, error) { return d.Varint() }

type float64Coder struct{}

func (float64Coder) Name() string { return "float64" }
func (float64Coder) EncodeValue(e *Encoder, v any) error {
	f, ok := v.(float64)
	if !ok {
		return typeErr("float64", v)
	}
	return e.Float64(f)
}
func (float64Coder) DecodeValue(d *Decoder) (any, error) { return d.Float64() }

type float64sCoder struct{}

func (float64sCoder) Name() string { return "[]float64" }
func (float64sCoder) EncodeValue(e *Encoder, v any) error {
	f, ok := v.([]float64)
	if !ok {
		return typeErr("[]float64", v)
	}
	return e.Float64s(f)
}
func (float64sCoder) DecodeValue(d *Decoder) (any, error) { return d.Float64s() }

type bytesCoder struct{}

func (bytesCoder) Name() string { return "bytes" }
func (bytesCoder) EncodeValue(e *Encoder, v any) error {
	b, ok := v.([]byte)
	if !ok {
		return typeErr("[]byte", v)
	}
	return e.Bytes(b)
}
func (bytesCoder) DecodeValue(d *Decoder) (any, error) { return d.Bytes(0) }

type nilCoder struct{}

func (nilCoder) Name() string                      { return "nil" }
func (nilCoder) EncodeValue(*Encoder, any) error   { return nil }
func (nilCoder) DecodeValue(*Decoder) (any, error) { return nil, nil }
func typeErr(want string, got any) error {
	return fmt.Errorf("data: coder expected %s, got %T", want, got)
}

// EncodeAll encodes records into a single byte buffer: a uvarint count
// followed by the records back to back. The encode runs through the
// shared buffer pool, so only the returned slice is a fresh allocation.
func EncodeAll(c Coder, recs []Record) ([]byte, error) {
	return Encoded(func(e *Encoder) error {
		if err := e.Uvarint(uint64(len(recs))); err != nil {
			return err
		}
		for _, r := range recs {
			if err := c.EncodeRecord(e, r); err != nil {
				return err
			}
		}
		return nil
	})
}

// DecodeAll decodes a buffer produced by EncodeAll.
func DecodeAll(c Coder, b []byte) ([]Record, error) {
	d := NewDecoder(bytes.NewReader(b))
	n, err := d.Uvarint()
	if err != nil {
		return nil, err
	}
	if n > 1<<30 {
		return nil, fmt.Errorf("data: record count %d too large", n)
	}
	// Preallocate from the declared count, but never more slots than the
	// payload could possibly hold (each record costs at least one byte) —
	// a corrupt count must not translate into a giant allocation.
	hint := n
	if hint > uint64(len(b)) {
		hint = uint64(len(b))
	}
	recs := make([]Record, 0, hint)
	for i := uint64(0); i < n; i++ {
		r, err := c.DecodeRecord(d)
		if err != nil {
			return nil, fmt.Errorf("data: decoding record %d of %d: %w", i, n, err)
		}
		recs = append(recs, r)
	}
	return recs, nil
}
