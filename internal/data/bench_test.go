package data

import (
	"bytes"
	"fmt"
	"testing"
)

func benchRecords(n int) []Record {
	recs := make([]Record, n)
	for i := range recs {
		recs[i] = KV(fmt.Sprintf("key-%05d", i%997), int64(i))
	}
	return recs
}

func BenchmarkEncodeAll(b *testing.B) {
	c := KVCoder{K: StringCoder, V: Int64Coder}
	recs := benchRecords(1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EncodeAll(c, recs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEncodeAllFresh is the pre-pool baseline: a throwaway buffer
// and Encoder per call. Kept as the comparison lane for BenchmarkEncodeAll.
func BenchmarkEncodeAllFresh(b *testing.B) {
	c := KVCoder{K: StringCoder, V: Int64Coder}
	recs := benchRecords(1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		e := NewEncoder(&buf)
		if err := e.Uvarint(uint64(len(recs))); err != nil {
			b.Fatal(err)
		}
		for _, r := range recs {
			if err := c.EncodeRecord(e, r); err != nil {
				b.Fatal(err)
			}
		}
		if err := e.Flush(); err != nil {
			b.Fatal(err)
		}
		_ = buf.Bytes()
	}
}

func BenchmarkDecodeAll(b *testing.B) {
	c := KVCoder{K: StringCoder, V: Int64Coder}
	payload, err := EncodeAll(c, benchRecords(1000))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeAll(c, payload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPartition(b *testing.B) {
	recs := benchRecords(1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var sink int
		for _, r := range recs {
			sink += Partition(r.Key, 8)
		}
		_ = sink
	}
}
