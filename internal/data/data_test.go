package data

import (
	"bytes"
	"math"
	"reflect"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, c Coder, recs []Record) []Record {
	t.Helper()
	payload, err := EncodeAll(c, recs)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	out, err := DecodeAll(c, payload)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	return out
}

func TestKVStringInt64RoundTrip(t *testing.T) {
	c := KVCoder{K: StringCoder, V: Int64Coder}
	in := []Record{KV("a", int64(1)), KV("", int64(-5)), KV("日本語", int64(1<<60))}
	out := roundTrip(t, c, in)
	if !reflect.DeepEqual(in, out) {
		t.Errorf("got %v, want %v", out, in)
	}
}

func TestEmptyRecordSet(t *testing.T) {
	c := KVCoder{K: StringCoder, V: Int64Coder}
	out := roundTrip(t, c, nil)
	if len(out) != 0 {
		t.Errorf("expected empty, got %v", out)
	}
}

func TestFloat64sRoundTrip(t *testing.T) {
	c := KVCoder{K: NilCoder, V: Float64sCoder}
	in := []Record{
		{Value: []float64{}},
		{Value: []float64{1.5, -2.25, math.MaxFloat64, math.SmallestNonzeroFloat64}},
	}
	out := roundTrip(t, c, in)
	for i := range in {
		got := out[i].Value.([]float64)
		want := in[i].Value.([]float64)
		if len(got) != len(want) {
			t.Fatalf("record %d: len %d != %d", i, len(got), len(want))
		}
		for j := range want {
			if got[j] != want[j] {
				t.Errorf("record %d[%d]: %v != %v", i, j, got[j], want[j])
			}
		}
	}
}

// Property: any (string,int64) record set round-trips exactly.
func TestRoundTripProperty(t *testing.T) {
	c := KVCoder{K: StringCoder, V: Int64Coder}
	err := quick.Check(func(keys []string, vals []int64) bool {
		n := len(keys)
		if len(vals) < n {
			n = len(vals)
		}
		in := make([]Record, n)
		for i := 0; i < n; i++ {
			in[i] = KV(keys[i], vals[i])
		}
		payload, err := EncodeAll(c, in)
		if err != nil {
			return false
		}
		out, err := DecodeAll(c, payload)
		if err != nil || len(out) != n {
			return false
		}
		for i := range out {
			if out[i].Key != in[i].Key || out[i].Value != in[i].Value {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Error(err)
	}
}

// Property: bytes values round-trip through the primitive codec.
func TestCodecPrimitivesProperty(t *testing.T) {
	err := quick.Check(func(u uint64, v int64, f float64, b []byte, s string) bool {
		var buf bytes.Buffer
		e := NewEncoder(&buf)
		if e.Uvarint(u) != nil || e.Varint(v) != nil || e.Float64(f) != nil ||
			e.Bytes(b) != nil || e.String(s) != nil || e.Flush() != nil {
			return false
		}
		d := NewDecoder(bytes.NewReader(buf.Bytes()))
		gu, err := d.Uvarint()
		if err != nil || gu != u {
			return false
		}
		gv, err := d.Varint()
		if err != nil || gv != v {
			return false
		}
		gf, err := d.Float64()
		if err != nil || (gf != f && !(math.IsNaN(gf) && math.IsNaN(f))) {
			return false
		}
		gb, err := d.Bytes(0)
		if err != nil || !bytes.Equal(gb, b) {
			return false
		}
		gs, err := d.String()
		return err == nil && gs == s
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Error(err)
	}
}

func TestCoderTypeErrors(t *testing.T) {
	var buf bytes.Buffer
	e := NewEncoder(&buf)
	if err := StringCoder.EncodeValue(e, 42); err == nil {
		t.Error("string coder should reject int")
	}
	if err := Int64Coder.EncodeValue(e, "x"); err == nil {
		t.Error("int64 coder should reject string")
	}
	if err := Float64sCoder.EncodeValue(e, 1.0); err == nil {
		t.Error("[]float64 coder should reject float64")
	}
	if err := BytesCoder.EncodeValue(e, "s"); err == nil {
		t.Error("bytes coder should reject string")
	}
}

func TestInt64CoderAcceptsInt(t *testing.T) {
	c := KVCoder{K: NilCoder, V: Int64Coder}
	out := roundTrip(t, c, []Record{{Value: 42}})
	if out[0].Value.(int64) != 42 {
		t.Errorf("got %v", out[0].Value)
	}
}

func TestDecodeCorruptLength(t *testing.T) {
	c := KVCoder{K: StringCoder, V: Int64Coder}
	// A huge record count should be rejected, not allocated.
	var buf bytes.Buffer
	e := NewEncoder(&buf)
	e.Uvarint(1 << 40)
	e.Flush()
	if _, err := DecodeAll(c, buf.Bytes()); err == nil {
		t.Error("expected error decoding truncated payload")
	}
}

func TestDecoderBytesLimit(t *testing.T) {
	var buf bytes.Buffer
	e := NewEncoder(&buf)
	e.Uvarint(1 << 20)
	e.Flush()
	d := NewDecoder(bytes.NewReader(buf.Bytes()))
	if _, err := d.Bytes(1024); err == nil {
		t.Error("expected limit error")
	}
}

func TestHashKeyStability(t *testing.T) {
	// Same logical key must hash identically across calls and across
	// int/int64 representations.
	if HashKey("abc") != HashKey("abc") {
		t.Error("string hash unstable")
	}
	if HashKey(int(7)) != HashKey(int64(7)) {
		t.Error("int and int64 hash differently")
	}
	if HashKey(nil) != 0 {
		t.Error("nil key should hash to 0")
	}
}

func TestPartitionRange(t *testing.T) {
	err := quick.Check(func(key string, n uint8) bool {
		parts := int(n%31) + 1
		p := Partition(key, parts)
		return p >= 0 && p < parts
	}, &quick.Config{MaxCount: 500})
	if err != nil {
		t.Error(err)
	}
	if Partition("x", 0) != 0 || Partition("x", 1) != 0 {
		t.Error("degenerate partition counts should map to 0")
	}
}

func TestPartitionSpread(t *testing.T) {
	// Hash partitioning should spread distinct keys over partitions.
	counts := make([]int, 8)
	for i := 0; i < 4096; i++ {
		counts[Partition(int64(i), 8)]++
	}
	for p, c := range counts {
		if c < 256 {
			t.Errorf("partition %d underloaded: %d", p, c)
		}
	}
}
