package data

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Encoder writes primitive values in a compact varint-based wire format.
// It buffers internally; call Flush before handing the underlying writer
// to anyone else.
type Encoder struct {
	w   *bufio.Writer
	tmp [binary.MaxVarintLen64]byte
}

// NewEncoder returns an Encoder writing to w.
func NewEncoder(w io.Writer) *Encoder {
	if bw, ok := w.(*bufio.Writer); ok {
		return &Encoder{w: bw}
	}
	return &Encoder{w: bufio.NewWriterSize(w, 16<<10)}
}

// Reset discards unflushed state and redirects the Encoder to w, reusing
// the internal buffer. It lets pooled Encoders serve many destinations
// without reallocating their 16KiB write buffers.
func (e *Encoder) Reset(w io.Writer) {
	if bw, ok := w.(*bufio.Writer); ok {
		e.w = bw
		return
	}
	if e.w == nil {
		e.w = bufio.NewWriterSize(w, 16<<10)
		return
	}
	e.w.Reset(w)
}

// Flush writes any buffered data to the underlying writer.
func (e *Encoder) Flush() error { return e.w.Flush() }

// Uvarint writes an unsigned varint.
func (e *Encoder) Uvarint(v uint64) error {
	n := binary.PutUvarint(e.tmp[:], v)
	_, err := e.w.Write(e.tmp[:n])
	return err
}

// Varint writes a signed varint.
func (e *Encoder) Varint(v int64) error {
	n := binary.PutVarint(e.tmp[:], v)
	_, err := e.w.Write(e.tmp[:n])
	return err
}

// Float64 writes an IEEE-754 double.
func (e *Encoder) Float64(v float64) error {
	binary.LittleEndian.PutUint64(e.tmp[:8], math.Float64bits(v))
	_, err := e.w.Write(e.tmp[:8])
	return err
}

// Bytes writes a length-prefixed byte slice.
func (e *Encoder) Bytes(b []byte) error {
	if err := e.Uvarint(uint64(len(b))); err != nil {
		return err
	}
	_, err := e.w.Write(b)
	return err
}

// String writes a length-prefixed string.
func (e *Encoder) String(s string) error {
	if err := e.Uvarint(uint64(len(s))); err != nil {
		return err
	}
	_, err := e.w.WriteString(s)
	return err
}

// Byte writes a single byte.
func (e *Encoder) Byte(b byte) error { return e.w.WriteByte(b) }

// Float64s writes a length-prefixed slice of doubles.
func (e *Encoder) Float64s(v []float64) error {
	if err := e.Uvarint(uint64(len(v))); err != nil {
		return err
	}
	for _, f := range v {
		if err := e.Float64(f); err != nil {
			return err
		}
	}
	return nil
}

// byteReader is what a Decoder needs from its source. *bytes.Reader and
// *bufio.Reader both satisfy it, so in-memory decodes (the common case:
// DecodeAll over an already-received payload) skip the extra bufio layer
// and its 16KiB buffer allocation entirely.
type byteReader interface {
	io.Reader
	io.ByteReader
}

// Decoder reads values produced by Encoder.
type Decoder struct {
	r   byteReader
	tmp [8]byte
}

// NewDecoder returns a Decoder reading from r. Sources that already
// support byte-at-a-time reads (*bytes.Reader, *bufio.Reader) are used
// directly; anything else — e.g. a network conn — is wrapped in a
// bufio.Reader.
func NewDecoder(r io.Reader) *Decoder {
	if br, ok := r.(byteReader); ok {
		return &Decoder{r: br}
	}
	return &Decoder{r: bufio.NewReaderSize(r, 16<<10)}
}

// Uvarint reads an unsigned varint.
func (d *Decoder) Uvarint() (uint64, error) { return binary.ReadUvarint(d.r) }

// Varint reads a signed varint.
func (d *Decoder) Varint() (int64, error) { return binary.ReadVarint(d.r) }

// Float64 reads a double.
func (d *Decoder) Float64() (float64, error) {
	if _, err := io.ReadFull(d.r, d.tmp[:8]); err != nil {
		return 0, err
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(d.tmp[:8])), nil
}

// Byte reads a single byte.
func (d *Decoder) Byte() (byte, error) { return d.r.ReadByte() }

// Bytes reads a length-prefixed byte slice. maxLen guards against corrupt
// streams; pass 0 for the 1GiB default.
func (d *Decoder) Bytes(maxLen int) ([]byte, error) {
	n, err := d.Uvarint()
	if err != nil {
		return nil, err
	}
	limit := uint64(maxLen)
	if limit == 0 {
		limit = 1 << 30
	}
	if n > limit {
		return nil, fmt.Errorf("data: length %d exceeds limit %d", n, limit)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(d.r, b); err != nil {
		return nil, err
	}
	return b, nil
}

// String reads a length-prefixed string.
func (d *Decoder) String() (string, error) {
	b, err := d.Bytes(0)
	return string(b), err
}

// Float64s reads a length-prefixed slice of doubles.
func (d *Decoder) Float64s() ([]float64, error) {
	n, err := d.Uvarint()
	if err != nil {
		return nil, err
	}
	if n > 1<<27 {
		return nil, fmt.Errorf("data: float64 slice length %d too large", n)
	}
	v := make([]float64, n)
	for i := range v {
		if v[i], err = d.Float64(); err != nil {
			return nil, err
		}
	}
	return v, nil
}
