package data

import (
	"bytes"
	"sync"
)

// encodeState pairs a reusable byte buffer with an Encoder permanently
// aimed at it, so a pooled encode reuses both the accumulation buffer
// and the Encoder's internal bufio buffer.
type encodeState struct {
	buf bytes.Buffer
	enc *Encoder
}

var encodePool = sync.Pool{
	New: func() any {
		s := &encodeState{}
		s.enc = NewEncoder(&s.buf)
		return s
	},
}

// Encoded runs fn against a pooled Encoder and returns an exact-size copy
// of everything fn wrote. It replaces the throwaway bytes.Buffer +
// Encoder pair on hot encode paths (EncodeAll, push-frame blocks): the
// growing buffer and the Encoder's 16KiB write buffer are both recycled
// across calls, so steady-state encoding allocates only the result slice.
func Encoded(fn func(e *Encoder) error) ([]byte, error) {
	s := encodePool.Get().(*encodeState)
	defer encodePool.Put(s)
	s.buf.Reset()
	s.enc.Reset(&s.buf)
	if err := fn(s.enc); err != nil {
		return nil, err
	}
	if err := s.enc.Flush(); err != nil {
		return nil, err
	}
	out := make([]byte, s.buf.Len())
	copy(out, s.buf.Bytes())
	return out, nil
}
